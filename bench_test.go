package mflow

// This file is the benchmark harness regenerating the paper's evaluation:
// one testing.B benchmark per table/figure (run with `go test -bench=.`).
// Reported custom metrics carry the figures' headline quantities (Gbps,
// latency, out-of-order counts) so `go test -bench` output doubles as a
// summary of the reproduction. The bench package renders the full tables;
// the mflowbench command writes them to disk.

import (
	"testing"

	"mflow/internal/bench"
	"mflow/internal/sim"
)

func benchRunner() *bench.Runner {
	return &bench.Runner{Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond}
}

// BenchmarkFig4Throughput regenerates Fig. 4: state-of-the-art single-flow
// throughput and CPU breakdowns (native / vanilla / RPS / FALCON).
func BenchmarkFig4Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tables := r.Fig4()
		v := Run(Scenario{System: Vanilla, Proto: TCP, Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond})
		n := Run(Scenario{System: Native, Proto: TCP, Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond})
		b.ReportMetric(v.Gbps, "vanilla-Gbps")
		b.ReportMetric(n.Gbps, "native-Gbps")
		_ = tables
	}
}

// BenchmarkFig7Batch regenerates Fig. 7: out-of-order deliveries versus the
// micro-flow batch size.
func BenchmarkFig7Batch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tab := r.Fig7()
		_ = tab
	}
	small := Run(Scenario{System: MFlow, Proto: TCP, MFlow: MFlowConfig{BatchSize: 1},
		Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond})
	big := Run(Scenario{System: MFlow, Proto: TCP, MFlow: MFlowConfig{BatchSize: 256},
		Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond})
	b.ReportMetric(float64(small.OOOSKBs), "ooo-batch1")
	b.ReportMetric(float64(big.OOOSKBs), "ooo-batch256")
}

// BenchmarkFig8Throughput regenerates Fig. 8: MFLOW against every baseline.
func BenchmarkFig8Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_ = r.Fig8()
	}
	m := Run(Scenario{System: MFlow, Proto: TCP, Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond})
	u := Run(Scenario{System: MFlow, Proto: UDP, Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond})
	b.ReportMetric(m.Gbps, "mflow-TCP-Gbps")
	b.ReportMetric(u.Gbps, "mflow-UDP-Gbps")
}

// BenchmarkFig9Latency regenerates Fig. 9: latency under maximum load.
func BenchmarkFig9Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_ = r.Fig9()
	}
	m := Run(Scenario{System: MFlow, Proto: TCP, Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond})
	v := Run(Scenario{System: Vanilla, Proto: TCP, Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond})
	b.ReportMetric(float64(m.Latency.Median())/1000, "mflow-p50-µs")
	b.ReportMetric(float64(v.Latency.Median())/1000, "vanilla-p50-µs")
}

// BenchmarkFig10MultiFlow regenerates Fig. 10: multi-flow TCP scaling.
func BenchmarkFig10MultiFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_ = r.Fig10()
	}
}

// BenchmarkFig11WebServing regenerates Fig. 11: the web-serving benchmark.
func BenchmarkFig11WebServing(b *testing.B) {
	var tot float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tables := r.Fig11()
		_ = tables
		w := RunWebServing(WebConfig{System: MFlow, Warmup: 2 * sim.Millisecond, Measure: 10 * sim.Millisecond})
		tot = w.TotalSuccessPerSec
	}
	b.ReportMetric(tot, "mflow-success-op/s")
}

// BenchmarkFig12Balance regenerates Fig. 12: CPU load balance under ten
// concurrent flows.
func BenchmarkFig12Balance(b *testing.B) {
	var f, m float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tab := r.Fig12()
		_ = tab
		fr := Run(Scenario{System: FalconDev, Proto: TCP, Flows: 10, KernelCores: 10, AppCores: 5,
			Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond})
		mr := Run(Scenario{System: MFlow, Proto: TCP, Flows: 10, KernelCores: 10, AppCores: 5,
			Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond})
		f, m = fr.KernelCPUStddev, mr.KernelCPUStddev
	}
	b.ReportMetric(f, "falcon-stddev")
	b.ReportMetric(m, "mflow-stddev")
}

// BenchmarkFig13DataCaching regenerates Fig. 13: memcached latency.
func BenchmarkFig13DataCaching(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tab := r.Fig13()
		_ = tab
		c := RunDataCaching(CachingConfig{System: MFlow, Clients: 10,
			Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond})
		avg = float64(c.Avg) / 1000
	}
	b.ReportMetric(avg, "mflow-avg-µs")
}

// BenchmarkAblations regenerates the design-choice ablations from DESIGN.md.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_ = r.Ablations()
	}
}
