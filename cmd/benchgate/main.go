// Command benchgate compares a `go test -bench` run against a committed
// baseline and exits non-zero on regressions: time/op beyond the tolerance,
// or any allocs/op increase (the engine's allocation discipline is exact).
//
// Typical CI usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/sim/ > current.txt
//	benchgate -baseline bench_baseline.txt -current current.txt
//
// Refresh the baseline by committing a new redirect of the same command.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mflow/internal/benchgate"
)

func main() {
	var (
		basePath  = flag.String("baseline", "bench_baseline.txt", "committed baseline (`go test -bench` output)")
		curPath   = flag.String("current", "-", "current run to check ('-' reads stdin)")
		tolerance = flag.Float64("tolerance", 0.20, "relative time/op increase tolerated")
	)
	flag.Parse()

	baseline, err := parseFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	current, err := parseFile(*curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(baseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmarks in baseline %s\n", *basePath)
		os.Exit(2)
	}

	benchgate.Report(os.Stdout, baseline, current)
	regs := benchgate.Compare(baseline, current, *tolerance)
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) vs %s:\n", len(regs), *basePath)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within tolerance (time +%.0f%%, allocs exact)\n",
		len(baseline), *tolerance*100)
}

func parseFile(path string) (map[string]benchgate.Result, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return benchgate.Parse(r)
}
