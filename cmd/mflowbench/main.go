// Command mflowbench regenerates the paper's evaluation: every measured
// table and figure (Figs. 4, 7, 8, 9, 10, 11, 12, 13) plus the design
// ablations, printed as aligned text tables (optionally CSV).
//
// Examples:
//
//	mflowbench                  # everything, default windows
//	mflowbench -fig 8           # just Fig. 8
//	mflowbench -fig ablations   # just the ablation studies
//	mflowbench -measure-ms 24   # longer (more stable) measurement windows
//	mflowbench -csv             # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"mflow/internal/bench"
	"mflow/internal/sim"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 4|7|8|9|10|11|12|13|queues|ablations|extensions|chaos|all")
		measure = flag.Int("measure-ms", 12, "measured window per run (simulated ms)")
		warmup  = flag.Int("warmup-ms", 3, "warmup per run (simulated ms)")
		seed    = flag.Uint64("seed", 42, "simulation seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	r := bench.NewRunner()
	r.Warmup = sim.Duration(*warmup) * sim.Millisecond
	r.Measure = sim.Duration(*measure) * sim.Millisecond
	r.Seed = *seed

	var tables []*bench.Table
	switch *fig {
	case "4":
		tables = r.Fig4()
	case "7":
		tables = []*bench.Table{r.Fig7()}
	case "8":
		tables = r.Fig8()
	case "9":
		tables = r.Fig9()
	case "10":
		tables = r.Fig10()
	case "11":
		tables = r.Fig11()
	case "12":
		tables = []*bench.Table{r.Fig12()}
	case "13":
		tables = []*bench.Table{r.Fig13()}
	case "queues":
		tables = []*bench.Table{r.Queues()}
	case "ablations":
		tables = r.Ablations()
	case "extensions":
		tables = r.Extensions()
	case "chaos":
		tables = r.Chaos()
	case "all":
		tables = r.All()
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}

	for _, t := range tables {
		if *csv {
			fmt.Printf("# %s — %s\n%s\n", t.ID, t.Title, t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
}
