// Command mflowbench regenerates the paper's evaluation: every measured
// table and figure (Figs. 4, 7, 8, 9, 10, 11, 12, 13) plus the design
// ablations, printed as aligned text tables (optionally CSV). Runs
// execute on a parallel deterministic harness: the figure's scenario
// matrix fans out over a worker pool, yet the output is byte-identical
// to a serial run with the same seed.
//
// Examples:
//
//	mflowbench                  # everything, default windows
//	mflowbench -fig 8           # just Fig. 8
//	mflowbench -fig ablations   # just the ablation studies
//	mflowbench -measure-ms 24   # longer (more stable) measurement windows
//	mflowbench -csv             # machine-readable output
//	mflowbench -parallel 8      # 8 pool workers (default GOMAXPROCS)
//	mflowbench -json out/       # also write out/BENCH_<fig>.json
//	mflowbench -compare out/BENCH_all.json   # fail on >10% regressions
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"mflow/internal/bench"
	"mflow/internal/harness"
	"mflow/internal/prof"
	"mflow/internal/sim"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 4|7|8|9|10|11|12|13|queues|ablations|extensions|chaos|overload|fabric|wire|all")
		measure   = flag.Int("measure-ms", 12, "measured window per run (simulated ms)")
		warmup    = flag.Int("warmup-ms", 3, "warmup per run (simulated ms)")
		seed      = flag.Uint64("seed", 42, "simulation seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel  = flag.Int("parallel", harness.DefaultWorkers(), "worker-pool width (1 = serial; output is identical either way)")
		jsonDir   = flag.String("json", "", "directory to write BENCH_<fig>.json artifact into")
		compare   = flag.String("compare", "", "baseline BENCH_*.json to compare against; exit 1 on regressions")
		tolerance = flag.Float64("tolerance", 0.10, "relative throughput drop tolerated by -compare")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run phase to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile after the run phase to this file")
	)
	flag.Parse()

	if err := validateFlags(*tolerance, *parallel, *measure, *warmup); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	r := bench.NewRunner()
	r.Warmup = sim.Duration(*warmup) * sim.Millisecond
	r.Measure = sim.Duration(*measure) * sim.Millisecond
	r.Seed = *seed
	r.Parallel = *parallel

	start := time.Now()
	tables, err := r.Tables(*fig)
	// The profiles cover the scenario-running phase, which is where all the
	// simulation time and allocation go; rendering and comparison are not
	// worth profiling and must not dilute the data.
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Timing and scheduler telemetry go to stderr only: stdout and the
	// JSON artifact must be byte-identical across worker counts.
	fmt.Fprintf(os.Stderr, "mflowbench: fig=%s workers=%d wall=%s\n", *fig, *parallel, time.Since(start).Round(time.Millisecond))
	if st, segs := r.SchedTelemetry(); st.Scheduled > 0 && segs > 0 {
		fmt.Fprintf(os.Stderr,
			"mflowbench: sched events=%d coalesced=%d (%.1f%%) inlined=%d (%.1f%%) heap-ops=%d peak-heap=%d heap-ops/pkt=%.2f\n",
			st.Scheduled,
			st.Coalesced, 100*float64(st.Coalesced)/float64(st.Scheduled),
			st.Inlined, 100*float64(st.Inlined)/float64(st.Scheduled),
			st.HeapOps(), st.PeakHeap,
			float64(st.HeapOps())/float64(segs))
	}

	for _, t := range tables {
		if *csv {
			fmt.Printf("# %s — %s\n%s\n", t.ID, t.Title, t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}

	var artifact *bench.Artifact
	if *jsonDir != "" || *compare != "" {
		artifact = r.Artifact(*fig, tables)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		path := filepath.Join(*jsonDir, fmt.Sprintf("BENCH_%s.json", *fig))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := artifact.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "mflowbench: wrote %s (%d runs, %d app runs)\n", path, len(artifact.Runs), len(artifact.Apps))
	}
	if *compare != "" {
		baseline, err := bench.LoadArtifact(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		regs := bench.Compare(baseline, artifact, *tolerance)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "mflowbench: %d regression(s) beyond %.0f%% vs %s:\n", len(regs), 100**tolerance, *compare)
			for _, g := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", g)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mflowbench: no regressions beyond %.0f%% vs %s\n", 100**tolerance, *compare)
	}
}

// validateFlags rejects nonsense before the harness spins up: the regression
// tolerance must be a finite non-negative fraction, the worker pool at least
// one wide, and the simulated windows non-negative with a positive measured
// window (a zero-length measurement divides by zero in every rate).
func validateFlags(tolerance float64, parallel, measureMs, warmupMs int) error {
	if math.IsNaN(tolerance) || math.IsInf(tolerance, 0) || tolerance < 0 {
		return fmt.Errorf("-tolerance must be a finite non-negative fraction, got %v", tolerance)
	}
	if parallel < 1 {
		return fmt.Errorf("-parallel must be at least 1, got %d", parallel)
	}
	if measureMs <= 0 {
		return fmt.Errorf("-measure-ms must be positive, got %d", measureMs)
	}
	if warmupMs < 0 {
		return fmt.Errorf("-warmup-ms must be non-negative, got %d", warmupMs)
	}
	return nil
}
