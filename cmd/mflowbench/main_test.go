package main

import (
	"math"
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                string
		tolerance           float64
		parallel            int
		measureMs, warmupMs int
		wantErr             string
	}{
		{"defaults", 0.10, 4, 12, 3, ""},
		{"zero tolerance strict gate", 0, 1, 12, 0, ""},
		{"negative tolerance", -0.1, 4, 12, 3, "-tolerance"},
		{"NaN tolerance", math.NaN(), 4, 12, 3, "-tolerance"},
		{"infinite tolerance", math.Inf(1), 4, 12, 3, "-tolerance"},
		{"zero workers", 0.10, 0, 12, 3, "-parallel"},
		{"negative workers", 0.10, -2, 12, 3, "-parallel"},
		{"zero measure window", 0.10, 4, 0, 3, "-measure-ms"},
		{"negative warmup", 0.10, 4, 12, -1, "-warmup-ms"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.tolerance, c.parallel, c.measureMs, c.warmupMs)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error mentioning %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}
