// Command mflowinspect answers "where did the latency go": it runs scenarios
// with the causal critical-path profiler attached and renders per-packet
// latency attribution — breakdown tables per system × protocol, the slowest
// packets' full timelines, anomaly flight-recorder summaries — without
// perturbing the run (probed and unprobed runs measure identically).
//
// Examples:
//
//	mflowinspect                          # MFLOW TCP 64KB breakdown + exemplars
//	mflowinspect -system rps -proto udp   # another system/protocol
//	mflowinspect -chaos burst             # under fault injection
//	mflowinspect -perfetto flight.json    # export anomaly snapshots (Perfetto)
//	mflowinspect -fig 7                   # MFLOW reorder-wait vs batch size, vs RPS
//	mflowinspect -compare BENCH_all.json  # regenerate + fail on any table drift
//	mflowinspect -compare OLD.json -against NEW.json   # diff two artifacts
package main

import (
	"flag"
	"fmt"
	"os"

	"mflow/internal/bench"
	"mflow/internal/causal"
	"mflow/internal/fault"
	"mflow/internal/harness"
	"mflow/internal/overlay"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

func main() {
	var (
		system    = flag.String("system", "mflow", "steering system: native|vanilla|rps|falcon-dev|falcon-func|mflow|slim")
		proto     = flag.String("proto", "tcp", "protocol: tcp|udp")
		size      = flag.Int("size", 65536, "message size (bytes)")
		flows     = flag.Int("flows", 1, "concurrent flows")
		batch     = flag.Int("batch", 0, "MFLOW micro-flow batch size (0 = default)")
		chaos     = flag.String("chaos", "", "fault profile: random|burst (default lossless)")
		measure   = flag.Int("measure-ms", 12, "measured window (simulated ms)")
		warmup    = flag.Int("warmup-ms", 3, "warmup (simulated ms)")
		seed      = flag.Uint64("seed", 42, "simulation seed")
		exemplars = flag.Int("exemplars", causal.DefaultExemplarsPerFlow, "slowest-packet timelines kept per flow")
		perfetto  = flag.String("perfetto", "", "write flight-recorder snapshots as a Perfetto trace to this file")
		fig       = flag.String("fig", "", "figure-style causal comparison (7: reorder-wait vs batch size, MFLOW vs RPS)")
		compare   = flag.String("compare", "", "baseline BENCH_*.json: regenerate at its seed/windows and fail on breakdown or table drift")
		against   = flag.String("against", "", "with -compare: diff against this artifact instead of regenerating")
		tolerance = flag.Float64("tolerance", 0.10, "relative throughput drop tolerated by -compare")
	)
	flag.Parse()

	switch {
	case *compare != "":
		os.Exit(runCompare(*compare, *against, *tolerance))
	case *fig == "7":
		os.Exit(runFig7(*seed, *warmup, *measure))
	case *fig != "":
		fmt.Fprintf(os.Stderr, "mflowinspect: unknown -fig %q (supported: 7)\n", *fig)
		os.Exit(2)
	}

	sys, err := steering.ParseSystem(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pr := skb.TCP
	switch *proto {
	case "tcp", "TCP":
	case "udp", "UDP":
		pr = skb.UDP
	default:
		fmt.Fprintf(os.Stderr, "mflowinspect: unknown -proto %q\n", *proto)
		os.Exit(2)
	}
	sc := overlay.Scenario{
		System: sys, Proto: pr, MsgSize: *size, Flows: *flows,
		MFlow:  overlay.MFlowConfig{BatchSize: *batch},
		Seed:   *seed,
		Warmup: sim.Duration(*warmup) * sim.Millisecond, Measure: sim.Duration(*measure) * sim.Millisecond,
	}
	if *chaos != "" {
		plan, ok := fault.ChaosProfiles()[*chaos]
		if !ok {
			fmt.Fprintf(os.Stderr, "mflowinspect: unknown -chaos %q (random|burst)\n", *chaos)
			os.Exit(2)
		}
		sc.Faults = plan
	}
	os.Exit(runLive(sc, *exemplars, *perfetto))
}

// runLive executes one probed scenario and prints its causal attribution.
func runLive(sc overlay.Scenario, exemplars int, perfetto string) int {
	p := &causal.Profiler{ExemplarsPerFlow: exemplars}
	fr := causal.NewFlightRecorder()
	res := overlay.RunProbed(sc, overlay.Probes{Causal: p, Flight: fr})

	fmt.Println(res.String())
	fmt.Printf("packets: %d delivered, %d GRO-absorbed, %d dropped\n\n",
		p.DeliveredPkts, p.AbsorbedPkts, p.DroppedPkts)
	fmt.Println(bench.BreakdownTable(res).Render())

	if ex := p.Exemplars(); len(ex) > 0 {
		fmt.Printf("slowest packets (%d per flow):\n", exemplars)
		for _, r := range ex {
			fmt.Print(causal.RenderTimeline(r))
		}
		fmt.Println()
	}
	if kinds := fr.TriggerKinds(); len(kinds) > 0 {
		fmt.Println("flight-recorder triggers:")
		for _, k := range kinds {
			fmt.Printf("  %-14s %d (snapshots kept: see -perfetto)\n", k, fr.Triggers[k])
		}
	} else {
		fmt.Println("flight-recorder triggers: none")
	}
	if perfetto != "" {
		f, err := os.Create(perfetto)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := fr.Export(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "mflowinspect: wrote %s (%d snapshots)\n", perfetto, len(fr.Snapshots))
	}
	if v := p.Violations(); v > 0 {
		fmt.Fprintf(os.Stderr, "mflowinspect: %d attribution violation(s); first: %s\n", v, p.FirstViolation())
		return 1
	}
	return 0
}

// fig7Batches mirrors the paper's Fig. 7 sweep.
var fig7Batches = []int{1, 4, 16, 64, 256, 1024, 4096}

// runFig7 renders the causal view of the paper's Fig. 7: how much of MFLOW's
// latency is reassembly reorder-wait at each micro-flow batch size, against
// the RPS baseline — whose waits are steering handoffs, not reassembly.
func runFig7(seed uint64, warmupMs, measureMs int) int {
	warmup := sim.Duration(warmupMs) * sim.Millisecond
	measure := sim.Duration(measureMs) * sim.Millisecond
	probe := func(sc overlay.Scenario) (*overlay.Result, *causal.Profiler) {
		sc.Seed, sc.Warmup, sc.Measure = seed, warmup, measure
		p := causal.NewProfiler()
		res := overlay.RunProbed(sc, overlay.Probes{Causal: p})
		if v := p.Violations(); v > 0 {
			fmt.Fprintf(os.Stderr, "mflowinspect: %d violation(s): %s\n", v, p.FirstViolation())
			os.Exit(1)
		}
		return res, p
	}
	sumKind := func(res *overlay.Result, kind causal.SegKind) (total sim.Duration) {
		for _, st := range res.Breakdown {
			if st.Kind == kind {
				total += st.Total
			}
		}
		return total
	}
	e2e := func(p *causal.Profiler) sim.Duration {
		if p.DeliveredPkts == 0 {
			return 0
		}
		return p.SumE2E / sim.Duration(p.DeliveredPkts)
	}

	t := &bench.Table{
		ID:    "fig7-causal",
		Title: "Fig. 7, causally: MFLOW reorder-wait vs batch size (TCP 64KB), RPS for contrast",
		Columns: []string{"system", "batch", "reorder-wait us",
			"handoff us", "mean e2e us", "Gbps"},
	}
	us := func(d sim.Duration) string { return fmt.Sprintf("%.1f", float64(d)/1000) }
	var mflow256, rps *overlay.Result
	for _, b := range fig7Batches {
		res, p := probe(overlay.Scenario{
			System: steering.MFlow, Proto: skb.TCP, MsgSize: 65536,
			MFlow: overlay.MFlowConfig{BatchSize: b},
		})
		if b == 256 {
			mflow256 = res
		}
		t.Rows = append(t.Rows, []string{
			"mflow", fmt.Sprintf("%d", b),
			us(sumKind(res, causal.SegReorderWait)),
			us(sumKind(res, causal.SegHandoff)),
			us(e2e(p)), fmt.Sprintf("%.2f", res.Gbps),
		})
	}
	{
		res, p := probe(overlay.Scenario{System: steering.RPS, Proto: skb.TCP, MsgSize: 65536})
		rps = res
		t.Rows = append(t.Rows, []string{
			"rps", "-",
			us(sumKind(res, causal.SegReorderWait)),
			us(sumKind(res, causal.SegHandoff)),
			us(e2e(p)), fmt.Sprintf("%.2f", res.Gbps),
		})
	}
	t.Notes = append(t.Notes,
		"MFLOW's wait is batch reassembly (reorder-wait at the merge point); RPS packets",
		"never wait on reordering — their cross-core cost is the steer + IPI handoff.",
		fmt.Sprintf("mflow handoff mechanism: %s; rps: %s",
			steering.HandoffLabel(steering.MFlow), steering.HandoffLabel(steering.RPS)))
	fmt.Println(t.Render())

	fmt.Println(bench.BreakdownTable(mflow256).Render())
	fmt.Println(bench.BreakdownTable(rps).Render())
	return 0
}

// runCompare loads a baseline artifact and either regenerates it at the same
// figure/seed/windows (probed — proving probes don't drift results) or diffs
// it against a second artifact. Any cell-level table drift, breakdown drift,
// or throughput regression beyond tolerance fails.
func runCompare(basePath, againstPath string, tol float64) int {
	base, err := bench.LoadArtifact(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cur *bench.Artifact
	if againstPath != "" {
		if cur, err = bench.LoadArtifact(againstPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		r := bench.NewRunner()
		r.Seed = base.Seed
		r.Warmup = sim.Duration(base.WarmupMs * float64(sim.Millisecond))
		r.Measure = sim.Duration(base.MeasureMs * float64(sim.Millisecond))
		r.Parallel = harness.DefaultWorkers()
		r.Causal = true
		tables, err := r.Tables(base.Figure)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		cur = r.Artifact(base.Figure, tables)
	}
	drift := bench.DiffTables(base.Tables, cur.Tables)
	drift = append(drift, bench.DiffBreakdowns(base, cur)...)
	for _, g := range bench.Compare(base, cur, tol) {
		drift = append(drift, g.String())
	}
	if len(drift) > 0 {
		fmt.Fprintf(os.Stderr, "mflowinspect: %d drift line(s) vs %s:\n", len(drift), basePath)
		for _, d := range drift {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		return 1
	}
	fmt.Printf("mflowinspect: no drift vs %s (%d tables, %d runs)\n", basePath, len(base.Tables), len(base.Runs))
	return 0
}
