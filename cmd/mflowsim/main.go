// Command mflowsim runs one packet-processing scenario on the simulated
// testbed and prints its measurements: throughput, latency distribution,
// per-core CPU breakdown and ordering statistics.
//
// Examples:
//
//	mflowsim -system mflow -proto tcp -size 65536
//	mflowsim -system vanilla -proto udp -size 65536 -cpu
//	mflowsim -system mflow -proto tcp -batch 16 -split 3
//	mflowsim -system mflow -flows 10 -kernel-cores 10 -app-cores 5
//	mflowsim -system mflow -proto tcp -metrics out.json
//	mflowsim -system mflow -proto tcp -flows 3 -hosts 3
//	mflowsim -system mflow -hosts 4 -placement incast -underlay 10,5,512
//
// With -metrics the run attaches an observability registry and writes the
// full metric snapshot for the measured window — per-stage latency and
// inter-stage queueing histograms, sampled queue depths (NIC ring, backlogs,
// sockets) and pipeline counters — as deterministic JSON.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"mflow/internal/fabric"
	"mflow/internal/fault"
	"mflow/internal/metrics"
	"mflow/internal/obs"
	"mflow/internal/overlay"
	"mflow/internal/overload"
	"mflow/internal/prof"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

func main() {
	var (
		system  = flag.String("system", "mflow", "system under test: native|vanilla|rps|falcon-dev|falcon-func|mflow")
		proto   = flag.String("proto", "tcp", "transport: tcp|udp")
		size    = flag.Int("size", 65536, "message size in bytes")
		flows   = flag.Int("flows", 1, "concurrent flows")
		kcores  = flag.Int("kernel-cores", 0, "kernel (softirq) cores (default 6; 10 for multi-flow)")
		acores  = flag.Int("app-cores", 0, "application cores (default 1)")
		window  = flag.Int("window", 0, "TCP sender window in segments (default 2048)")
		batch   = flag.Int("batch", 0, "mflow micro-flow batch size (default 256)")
		split   = flag.Int("split", 0, "mflow splitting cores (default 2)")
		shared  = flag.Bool("shared-queue", false, "pin all overlay flows to one RSS queue (Docker outer-hash pathology)")
		seed    = flag.Uint64("seed", 42, "simulation seed")
		measure = flag.Int("measure-ms", 24, "measured window (simulated milliseconds)")
		warmup  = flag.Int("warmup-ms", 4, "warmup (simulated milliseconds)")
		cpu     = flag.Bool("cpu", false, "print the per-core CPU utilization breakdown")
		metOut  = flag.String("metrics", "", "attach the observability registry and write its measured-window snapshot (queue depths, per-stage latency, NIC/device counters) as JSON to this file")
		pcapOut = flag.String("pcap", "", "write wire-mode traffic to this pcap file (implies wire mode)")
		wire    = flag.Bool("wire", false, "wire mode: real bytes end to end with integrity checks")
		detect  = flag.Bool("autodetect", false, "split only detector-promoted elephant flows")
		modelTX = flag.Bool("modeltx", false, "model the sender-side transmit pipeline explicitly")

		hosts     = flag.Int("hosts", 1, "simulated hosts sharing one clock (>= 2 enables the multi-host fabric)")
		placement = flag.String("placement", "", "fabric flow placement: pair|incast (requires -hosts >= 2)")
		underlay  = flag.String("underlay", "", "fabric underlay as gbps,latency_us,queue_kb (e.g. 40,5,512; requires -hosts >= 2)")

		loss      = flag.Float64("loss", 0, "uniform wire-frame drop probability (enables fault injection)")
		burst     = flag.String("burst", "", "Gilbert-Elliott burst loss as pGoodBad,pBadGood,lossBad (e.g. 0.002,0.1,0.75)")
		dup       = flag.Float64("dup", 0, "wire-frame duplication probability")
		corrupt   = flag.Float64("corrupt", 0, "wire-frame corruption probability (detected by -wire checksums)")
		stall     = flag.Float64("stall", 0, "per-execution kernel-core stall probability (20us mean stalls)")
		faultseed = flag.Uint64("faultseed", 0, "extra seed for the fault injector's own PRNG")
		ovName    = flag.String("overload", "", "enable overload control with a named profile: "+overloadNames())

		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile after the run to this file")
	)
	flag.Parse()

	if err := validateFlags(*size, *flows, *loss, *dup, *corrupt, *stall); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fcfg, err := fabricConfig(*hosts, *placement, *underlay)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sys, err := steering.ParseSystem(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var p skb.Proto
	switch strings.ToLower(*proto) {
	case "tcp":
		p = skb.TCP
	case "udp":
		p = skb.UDP
	default:
		fmt.Fprintf(os.Stderr, "unknown proto %q\n", *proto)
		os.Exit(2)
	}

	var capture *os.File
	if *pcapOut != "" {
		f, err := os.Create(*pcapOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		capture = f
		defer f.Close()
		*wire = true
	}

	sc := overlay.Scenario{
		System:      sys,
		Proto:       p,
		MsgSize:     *size,
		Flows:       *flows,
		KernelCores: *kcores,
		AppCores:    *acores,
		Window:      *window,
		SharedQueue: *shared,
		Seed:        *seed,
		WireMode:    *wire,
		Warmup:      sim.Duration(*warmup) * sim.Millisecond,
		Measure:     sim.Duration(*measure) * sim.Millisecond,
		ModelTX:     *modelTX,
		Fabric:      fcfg,
		MFlow:       overlay.MFlowConfig{BatchSize: *batch, SplitCores: *split, AutoDetect: *detect},
	}
	if *flows > 1 && *kcores == 0 {
		sc.KernelCores = 10
		sc.AppCores = 5
	}
	if *loss > 0 || *burst != "" || *dup > 0 || *corrupt > 0 || *stall > 0 {
		plan := &fault.Plan{
			Seed: *faultseed,
			Wire: fault.Profile{Drop: *loss, Dup: *dup, Corrupt: *corrupt},
		}
		if *burst != "" {
			ge, err := parseBurst(*burst)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			plan.Wire.Burst = ge
		}
		if *stall > 0 {
			plan.StallProb = *stall
			plan.StallMean = 20 * sim.Microsecond
		}
		sc.Faults = plan
	}
	if *ovName != "" {
		cfg, ok := overload.Profiles()[*ovName]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown -overload profile %q: want %s\n", *ovName, overloadNames())
			os.Exit(2)
		}
		sc.Overload = cfg
	}

	if capture != nil {
		sc.Capture = capture
	}
	if *metOut != "" {
		sc.Obs = obs.New()
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res := overlay.Run(sc)
	stopProf()
	fmt.Printf("scenario   %s\n", res.Scenario.Name())
	fmt.Printf("throughput %.2f Gbps (%.0f msg/s, %d segments)\n", res.Gbps, res.MsgPerSec, res.DeliveredSegments)
	fmt.Printf("latency    p50=%v  mean=%v  p99=%v\n",
		sim.Duration(res.Latency.Median()), sim.Duration(int64(res.Latency.Mean())), sim.Duration(res.Latency.P99()))
	fmt.Printf("gro        factor %.1f\n", res.GROFactor)
	fmt.Printf("ordering   merge-point OOO: %d skbs / %d segments; delivered OOO: %d; tcp ofo: %d; merges: %d\n",
		res.OOOSKBs, res.OOOSegments, res.DeliveredOutOfOrder, res.TCPOFOSegments, res.ReassemblySwitches)
	fmt.Printf("drops      ring=%d socket=%d backlog=%d\n", res.DropsRing, res.DropsSock, res.DropsBacklog)
	fmt.Printf("kernel cpu total=%.0f%% stddev=%.1fpp\n", res.KernelCPUTotal, res.KernelCPUStddev)
	if sc.Faults.Enabled() {
		fmt.Printf("faults     injected=%d (drops=%d) retransmits=%d (rto=%d fast=%d) holes=%d stale=%d ofo-pruned=%d dup-segs=%d reasm-errs=%d\n",
			res.FaultsInjected, res.FaultDrops, res.Retransmits, res.RTOTimeouts,
			res.FastRetransmits, res.HolesReleased, res.StaleReleased, res.OFOPruned,
			res.TCPDupSegments, res.ReassemblyErrors)
	}
	if sc.Overload.Enabled() {
		fmt.Printf("overload   offered=%d accepted=%d adm-drops=%d aqm-drops=%d gated=%d poll=%d/%d resteers=%d collapse/restore=%d/%d mem-peak=%dKB sojourn-p99=%v\n",
			res.OfferedFrames, res.AcceptedFrames, res.DropsAdmission, res.DropsAQM,
			res.OverloadGated, res.PollModeEntered, res.PollModeExited,
			res.WatchdogResteers, res.DegradeCollapses, res.DegradeRestores,
			res.MemPeakBytes/1024, sim.Duration(res.AQMSojournP99))
	}
	if sc.Fabric.Enabled() {
		fmt.Printf("fabric     hosts=%d underlay sent=%d delivered=%d drops=%d copies=%d in-flight=%d/%d fdb floods=%d learned=%d aged=%d\n",
			sc.Fabric.Hosts, res.UnderlaySent, res.UnderlayDelivered, res.UnderlayDrops,
			res.UnderlayFloodCopies, res.UnderlayInFlightStart, res.UnderlayInFlightEnd,
			res.FDBFloods, res.FDBLearned, res.FDBAged)
	}
	if *wire {
		fmt.Printf("wire       integrity errors: %d\n", res.WireErrors)
	}
	if *pcapOut != "" {
		fmt.Printf("pcap       written to %s\n", *pcapOut)
	}
	if *cpu {
		fmt.Print(metrics.FormatCPU(res.CPU))
	}
	if *metOut != "" {
		f, err := os.Create(*metOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := res.Obs.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("queues     %s\n", queueSummary(res.Obs))
		fmt.Printf("metrics    written to %s (%d series)\n", *metOut, len(res.Obs))
	}
}

// validateFlags rejects nonsense before any simulation state is built:
// sizes and flow counts must be positive, probabilities finite and in [0,1].
func validateFlags(size, flows int, loss, dup, corrupt, stall float64) error {
	if size <= 0 {
		return fmt.Errorf("-size must be positive, got %d", size)
	}
	if flows <= 0 {
		return fmt.Errorf("-flows must be positive, got %d", flows)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"loss", loss}, {"dup", dup}, {"corrupt", corrupt}, {"stall", stall}} {
		if err := validateProb(p.name, p.v); err != nil {
			return err
		}
	}
	return nil
}

// validateProb checks that a probability-valued flag is finite and in [0,1].
func validateProb(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
		return fmt.Errorf("-%s must be a probability in [0,1], got %v", name, v)
	}
	return nil
}

// fabricConfig builds the multi-host fabric config from the -hosts,
// -placement and -underlay flags. One host (the default) returns nil —
// the single-host path untouched by the fabric — and then rejects the
// fabric-only flags, which would otherwise be ignored silently.
func fabricConfig(hosts int, placement, underlay string) (*fabric.Config, error) {
	if hosts < 1 {
		return nil, fmt.Errorf("-hosts must be at least 1, got %d", hosts)
	}
	if hosts == 1 {
		if placement != "" {
			return nil, fmt.Errorf("-placement requires -hosts >= 2")
		}
		if underlay != "" {
			return nil, fmt.Errorf("-underlay requires -hosts >= 2")
		}
		return nil, nil
	}
	if hosts > 64 {
		return nil, fmt.Errorf("-hosts must be at most 64, got %d", hosts)
	}
	cfg := &fabric.Config{Hosts: hosts}
	switch placement {
	case "", fabric.PlacePair:
	case fabric.PlaceIncast:
		cfg.Placement = fabric.PlaceIncast
	default:
		return nil, fmt.Errorf("unknown -placement %q: want pair|incast", placement)
	}
	if underlay != "" {
		parts := strings.Split(underlay, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -underlay %q: want gbps,latency_us,queue_kb", underlay)
		}
		vals := make([]float64, 3)
		names := []string{"underlay gbps", "underlay latency_us", "underlay queue_kb"}
		for i, part := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, fmt.Errorf("bad -underlay %q: %s is not a number", underlay, part)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return nil, fmt.Errorf("bad -underlay %q: %s must be positive and finite", underlay, names[i])
			}
			vals[i] = v
		}
		cfg.LinkGbps = vals[0]
		cfg.LinkLatency = sim.Duration(vals[1] * float64(sim.Microsecond))
		cfg.LinkQueueBytes = int(vals[2]) << 10
	}
	return cfg, nil
}

// parseBurst parses the -burst argument: exactly three comma-separated
// probabilities pGoodBad,pBadGood,lossBad, each finite and in [0,1].
func parseBurst(s string) (*fault.GilbertElliott, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad -burst %q: want pGoodBad,pBadGood,lossBad", s)
	}
	vals := make([]float64, 3)
	names := []string{"burst pGoodBad", "burst pBadGood", "burst lossBad"}
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -burst %q: %s is not a number", s, part)
		}
		if err := validateProb(names[i], v); err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return &fault.GilbertElliott{PGoodBad: vals[0], PBadGood: vals[1], LossBad: vals[2]}, nil
}

// overloadNames lists the available -overload profiles, sorted for a stable
// usage string.
func overloadNames() string {
	var names []string
	for name := range overload.Profiles() {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

// queueSummary picks the NIC ring and the deepest backlog out of the
// sampled queue-depth series for the one-line report.
func queueSummary(snap obs.Snapshot) string {
	var parts []string
	var worst string
	var worstP99 int64 = -1
	for _, name := range snap.Names() {
		if !strings.HasPrefix(name, "queue_depth{") {
			continue
		}
		m := snap[name]
		q := strings.TrimSuffix(strings.TrimPrefix(name, "queue_depth{queue="), "}")
		switch {
		case strings.HasPrefix(q, "nic_ring"):
			if m.Max > 0 {
				parts = append(parts, fmt.Sprintf("%s p99=%d max=%d", q, m.P99, m.Max))
			}
		case strings.HasPrefix(q, "backlog:"):
			if m.P99 > worstP99 {
				worstP99, worst = m.P99, fmt.Sprintf("%s p99=%d max=%d", q, m.P99, m.Max)
			}
		}
	}
	if worst != "" {
		parts = append(parts, worst)
	}
	if len(parts) == 0 {
		return "(all sampled queues empty)"
	}
	return strings.Join(parts, "; ")
}
