package main

import (
	"math"
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                      string
		size, flows               int
		loss, dup, corrupt, stall float64
		wantErr                   string
	}{
		{"defaults", 65536, 1, 0, 0, 0, 0, ""},
		{"all max probs", 1500, 4, 1, 1, 1, 1, ""},
		{"zero size", 0, 1, 0, 0, 0, 0, "-size"},
		{"negative size", -1, 1, 0, 0, 0, 0, "-size"},
		{"zero flows", 65536, 0, 0, 0, 0, 0, "-flows"},
		{"loss over one", 65536, 1, 1.5, 0, 0, 0, "-loss"},
		{"negative dup", 65536, 1, 0, -0.1, 0, 0, "-dup"},
		{"corrupt NaN", 65536, 1, 0, 0, math.NaN(), 0, "-corrupt"},
		{"stall infinite", 65536, 1, 0, 0, 0, math.Inf(1), "-stall"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.size, c.flows, c.loss, c.dup, c.corrupt, c.stall)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error mentioning %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestParseBurst(t *testing.T) {
	ge, err := parseBurst("0.002,0.1,0.75")
	if err != nil {
		t.Fatalf("valid burst rejected: %v", err)
	}
	if ge.PGoodBad != 0.002 || ge.PBadGood != 0.1 || ge.LossBad != 0.75 {
		t.Fatalf("burst parsed wrong: %+v", ge)
	}
	if ge, err := parseBurst(" 0.1, 0.2, 0.3 "); err != nil || ge.LossBad != 0.3 {
		t.Fatalf("whitespace-tolerant parse failed: %+v, %v", ge, err)
	}

	for _, bad := range []string{
		"",                // empty
		"0.1,0.2",         // too few fields
		"0.1,0.2,0.3,0.4", // too many fields
		"0.1,x,0.3",       // not a number
		"0.1,0.2,1.5",     // out of range
		"0.1,-0.2,0.3",    // negative
		"NaN,0.2,0.3",     // not finite
	} {
		if _, err := parseBurst(bad); err == nil {
			t.Errorf("parseBurst(%q) accepted invalid input", bad)
		}
	}
}

func TestOverloadNames(t *testing.T) {
	names := overloadNames()
	for _, want := range []string{"pressure", "livelock"} {
		if !strings.Contains(names, want) {
			t.Errorf("overload profile list %q missing %q", names, want)
		}
	}
}
