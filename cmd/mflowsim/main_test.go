package main

import (
	"math"
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                      string
		size, flows               int
		loss, dup, corrupt, stall float64
		wantErr                   string
	}{
		{"defaults", 65536, 1, 0, 0, 0, 0, ""},
		{"all max probs", 1500, 4, 1, 1, 1, 1, ""},
		{"zero size", 0, 1, 0, 0, 0, 0, "-size"},
		{"negative size", -1, 1, 0, 0, 0, 0, "-size"},
		{"zero flows", 65536, 0, 0, 0, 0, 0, "-flows"},
		{"loss over one", 65536, 1, 1.5, 0, 0, 0, "-loss"},
		{"negative dup", 65536, 1, 0, -0.1, 0, 0, "-dup"},
		{"corrupt NaN", 65536, 1, 0, 0, math.NaN(), 0, "-corrupt"},
		{"stall infinite", 65536, 1, 0, 0, 0, math.Inf(1), "-stall"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.size, c.flows, c.loss, c.dup, c.corrupt, c.stall)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error mentioning %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestParseBurst(t *testing.T) {
	ge, err := parseBurst("0.002,0.1,0.75")
	if err != nil {
		t.Fatalf("valid burst rejected: %v", err)
	}
	if ge.PGoodBad != 0.002 || ge.PBadGood != 0.1 || ge.LossBad != 0.75 {
		t.Fatalf("burst parsed wrong: %+v", ge)
	}
	if ge, err := parseBurst(" 0.1, 0.2, 0.3 "); err != nil || ge.LossBad != 0.3 {
		t.Fatalf("whitespace-tolerant parse failed: %+v, %v", ge, err)
	}

	for _, bad := range []string{
		"",                // empty
		"0.1,0.2",         // too few fields
		"0.1,0.2,0.3,0.4", // too many fields
		"0.1,x,0.3",       // not a number
		"0.1,0.2,1.5",     // out of range
		"0.1,-0.2,0.3",    // negative
		"NaN,0.2,0.3",     // not finite
	} {
		if _, err := parseBurst(bad); err == nil {
			t.Errorf("parseBurst(%q) accepted invalid input", bad)
		}
	}
}

func TestOverloadNames(t *testing.T) {
	names := overloadNames()
	for _, want := range []string{"pressure", "livelock"} {
		if !strings.Contains(names, want) {
			t.Errorf("overload profile list %q missing %q", names, want)
		}
	}
}

func TestFabricConfig(t *testing.T) {
	// Default single host: no fabric, and the fabric-only flags are
	// rejected rather than silently ignored.
	if cfg, err := fabricConfig(1, "", ""); err != nil || cfg != nil {
		t.Fatalf("fabricConfig(1) = %+v, %v; want nil, nil", cfg, err)
	}
	if _, err := fabricConfig(1, "incast", ""); err == nil || !strings.Contains(err.Error(), "-placement") {
		t.Errorf("placement without hosts accepted: %v", err)
	}
	if _, err := fabricConfig(1, "", "40,5,512"); err == nil || !strings.Contains(err.Error(), "-underlay") {
		t.Errorf("underlay without hosts accepted: %v", err)
	}

	cfg, err := fabricConfig(3, "incast", " 10, 2.5, 64 ")
	if err != nil {
		t.Fatalf("valid fabric flags rejected: %v", err)
	}
	if cfg.Hosts != 3 || cfg.Placement != "incast" {
		t.Errorf("hosts/placement parsed wrong: %+v", cfg)
	}
	if cfg.LinkGbps != 10 || cfg.LinkLatency != 2500 || cfg.LinkQueueBytes != 64<<10 {
		t.Errorf("underlay parsed wrong: %+v", cfg)
	}

	// Bare -hosts keeps the underlay at package defaults (zero here,
	// filled by WithDefaults at run time) and pair placement.
	cfg, err = fabricConfig(2, "", "")
	if err != nil || cfg.Hosts != 2 || cfg.Placement != "" || cfg.LinkGbps != 0 {
		t.Errorf("bare -hosts 2 parsed wrong: %+v, %v", cfg, err)
	}

	for _, bad := range []struct {
		hosts               int
		placement, underlay string
	}{
		{0, "", ""},           // no hosts
		{-2, "", ""},          // negative
		{65, "", ""},          // over the cap
		{2, "ring", ""},       // unknown placement
		{2, "", "40,5"},       // too few fields
		{2, "", "40,5,512,9"}, // too many fields
		{2, "", "x,5,512"},    // not a number
		{2, "", "0,5,512"},    // zero rate
		{2, "", "40,-5,512"},  // negative latency
		{2, "", "40,5,Inf"},   // not finite
	} {
		if _, err := fabricConfig(bad.hosts, bad.placement, bad.underlay); err == nil {
			t.Errorf("fabricConfig(%d, %q, %q) accepted invalid input",
				bad.hosts, bad.placement, bad.underlay)
		}
	}
}
