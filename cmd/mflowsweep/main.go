// Command mflowsweep runs a parameter grid over MFLOW's two main knobs —
// micro-flow batch size and splitting-core count — and emits CSV suitable
// for plotting, one row per configuration with throughput, latency and
// ordering statistics.
//
// Examples:
//
//	mflowsweep -proto tcp > sweep.csv
//	mflowsweep -proto udp -batches 1,64,256 -cores 1,2,3,4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mflow/internal/harness"
	"mflow/internal/overlay"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		proto    = flag.String("proto", "tcp", "transport: tcp|udp")
		size     = flag.Int("size", 65536, "message size in bytes")
		batches  = flag.String("batches", "1,16,64,256,1024", "comma-separated batch sizes")
		cores    = flag.String("cores", "1,2,3,4", "comma-separated splitting-core counts")
		kcores   = flag.Int("kernel-cores", 10, "kernel core pool")
		measure  = flag.Int("measure-ms", 12, "measured window (simulated ms)")
		seed     = flag.Uint64("seed", 42, "simulation seed")
		parallel = flag.Int("parallel", harness.DefaultWorkers(), "worker-pool width (1 = serial; output is identical either way)")
	)
	flag.Parse()

	p := skb.TCP
	if strings.EqualFold(*proto, "udp") {
		p = skb.UDP
	}
	bs, err := parseInts(*batches)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -batches:", err)
		os.Exit(2)
	}
	cs, err := parseInts(*cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -cores:", err)
		os.Exit(2)
	}

	// The grid fans out over the harness pool; results come back in
	// submission order, so the CSV rows are identical at any -parallel.
	type cell struct{ batch, cores int }
	var grid []cell
	for _, b := range bs {
		for _, c := range cs {
			grid = append(grid, cell{b, c})
		}
	}
	results := harness.Map(*parallel, grid, func(_ int, g cell) *overlay.Result {
		return overlay.Run(overlay.Scenario{
			System:      steering.MFlow,
			Proto:       p,
			MsgSize:     *size,
			KernelCores: *kcores,
			Seed:        *seed,
			Warmup:      3 * sim.Millisecond,
			Measure:     sim.Duration(*measure) * sim.Millisecond,
			MFlow:       overlay.MFlowConfig{BatchSize: g.batch, SplitCores: g.cores},
		})
	})

	fmt.Println("proto,msg_size,batch,split_cores,gbps,msg_per_sec,p50_us,p99_us,ooo_deliveries,merge_switches,gro_factor,drops")
	for i, res := range results {
		fmt.Printf("%s,%d,%d,%d,%.3f,%.0f,%.1f,%.1f,%d,%d,%.1f,%d\n",
			p, *size, grid[i].batch, grid[i].cores,
			res.Gbps, res.MsgPerSec,
			float64(res.Latency.Median())/1000, float64(res.Latency.P99())/1000,
			res.OOOSKBs, res.ReassemblySwitches, res.GROFactor,
			res.DropsRing+res.DropsBacklog+res.DropsSock)
	}
}
