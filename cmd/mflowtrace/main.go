// Command mflowtrace runs a short scenario with per-packet tracing enabled
// and prints the journeys of the first segments of a flow — which softirq
// stage handled them, on which core, at what simulated time. It makes
// MFLOW's splitting visible: consecutive micro-flows fan out to different
// cores and re-converge at the merge point.
//
// Example:
//
//	mflowtrace -system mflow -proto tcp -segs 6
//	mflowtrace -system falcon-dev -proto udp -segs 4
//	mflowtrace -system mflow -proto tcp -export trace.json
//
// With -export the run also records per-core execution intervals and writes
// a Chrome trace-event JSON file — one track per core, one per flow — that
// loads directly in ui.perfetto.dev or chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mflow/internal/obs"
	"mflow/internal/overlay"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
	"mflow/internal/trace"
)

func main() {
	var (
		system = flag.String("system", "mflow", "system under test")
		proto  = flag.String("proto", "tcp", "transport: tcp|udp")
		size   = flag.Int("size", 65536, "message size in bytes")
		segs   = flag.Int("segs", 4, "number of segments to print journeys for")
		batch  = flag.Int("batch", 0, "mflow micro-flow batch size")
		export = flag.String("export", "", "write a Perfetto/chrome://tracing-loadable trace-event JSON timeline (per-core busy tracks + per-flow packet tracks) to this file")
	)
	flag.Parse()

	sys, err := steering.ParseSystem(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := skb.TCP
	if strings.EqualFold(*proto, "udp") {
		p = skb.UDP
	}

	tr := trace.New()
	tr.OnlyFlow = 1
	// Trace enough segments to cover a couple of micro-flow boundaries.
	span := uint64(*segs)
	if *batch > 0 {
		span += uint64(*batch)
	} else {
		span += 256
	}
	tr.OnlySeqBelow = span

	sc := overlay.Scenario{
		System: sys, Proto: p, MsgSize: *size,
		Tracer: tr,
		MFlow:  overlay.MFlowConfig{BatchSize: *batch},
		Warmup: 1 * sim.Millisecond, Measure: 1 * sim.Millisecond,
	}
	var clog *obs.CoreLog
	if *export != "" {
		clog = &obs.CoreLog{}
		sc.CoreLog = clog
	}
	overlay.Run(sc)

	fmt.Printf("traced %d events across stages %v\n\n", len(tr.Events()), tr.Stages())
	for s := 0; s < *segs; s++ {
		fmt.Print(tr.RenderJourney(1, uint64(s)))
	}
	// And one segment from the next micro-flow, to show the fan-out.
	if *batch != 1 {
		b := uint64(*batch)
		if b == 0 {
			b = 256
		}
		fmt.Printf("\n(next micro-flow)\n")
		fmt.Print(tr.RenderJourney(1, b))
	}

	fmt.Println("\nper-core stage occupancy (traced packets):")
	occ := tr.CoreOccupancy()
	cores := make([]int, 0, len(occ))
	for c := range occ {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, c := range cores {
		fmt.Printf("  core %d: %v\n", c, occ[c])
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := obs.ExportChromeTrace(f, tr.Events(), clog); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nexported %d core intervals + %d packet events to %s (open in ui.perfetto.dev or chrome://tracing)\n",
			len(clog.Intervals), len(tr.Events()), *export)
	}
}
