// Command mflowtrace runs a short scenario with per-packet tracing enabled
// and prints the journeys of the first segments of a flow — which softirq
// stage handled them, on which core, at what simulated time. It makes
// MFLOW's splitting visible: consecutive micro-flows fan out to different
// cores and re-converge at the merge point.
//
// Example:
//
//	mflowtrace -system mflow -proto tcp -segs 6
//	mflowtrace -system falcon-dev -proto udp -segs 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mflow/internal/overlay"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
	"mflow/internal/trace"
)

func main() {
	var (
		system = flag.String("system", "mflow", "system under test")
		proto  = flag.String("proto", "tcp", "transport: tcp|udp")
		size   = flag.Int("size", 65536, "message size in bytes")
		segs   = flag.Int("segs", 4, "number of segments to print journeys for")
		batch  = flag.Int("batch", 0, "mflow micro-flow batch size")
	)
	flag.Parse()

	sys, err := steering.ParseSystem(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := skb.TCP
	if strings.EqualFold(*proto, "udp") {
		p = skb.UDP
	}

	tr := trace.New()
	tr.OnlyFlow = 1
	// Trace enough segments to cover a couple of micro-flow boundaries.
	span := uint64(*segs)
	if *batch > 0 {
		span += uint64(*batch)
	} else {
		span += 256
	}
	tr.OnlySeqBelow = span

	overlay.Run(overlay.Scenario{
		System: sys, Proto: p, MsgSize: *size,
		Tracer: tr,
		MFlow:  overlay.MFlowConfig{BatchSize: *batch},
		Warmup: 1 * sim.Millisecond, Measure: 1 * sim.Millisecond,
	})

	fmt.Printf("traced %d events across stages %v\n\n", len(tr.Events()), tr.Stages())
	for s := 0; s < *segs; s++ {
		fmt.Print(tr.RenderJourney(1, uint64(s)))
	}
	// And one segment from the next micro-flow, to show the fan-out.
	if *batch != 1 {
		b := uint64(*batch)
		if b == 0 {
			b = 256
		}
		fmt.Printf("\n(next micro-flow)\n")
		fmt.Print(tr.RenderJourney(1, b))
	}

	fmt.Println("\nper-core stage occupancy (traced packets):")
	occ := tr.CoreOccupancy()
	cores := make([]int, 0, len(occ))
	for c := range occ {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, c := range cores {
		fmt.Printf("  core %d: %v\n", c, occ[c])
	}
}
