// Batch tuning: the paper's Fig. 7 study — sweep MFLOW's micro-flow batch
// size and watch out-of-order deliveries, GRO effectiveness and throughput
// trade off. Demonstrates driving custom scenario parameters through the
// public API.
package main

import (
	"fmt"

	"mflow"
)

func main() {
	fmt.Println("Micro-flow batch size vs out-of-order delivery (TCP, 64KB messages)")
	fmt.Println()
	fmt.Printf("%-10s  %14s  %12s  %10s  %10s\n",
		"batch", "OOO deliveries", "GRO factor", "Gbps", "merges")

	for _, batch := range []int{1, 4, 16, 64, 256, 1024, 4096} {
		res := mflow.Run(mflow.Scenario{
			System:  mflow.MFlow,
			Proto:   mflow.TCP,
			MsgSize: 64 * 1024,
			MFlow:   mflow.MFlowConfig{BatchSize: batch},
		})
		fmt.Printf("%-10d  %14d  %12.1f  %10.2f  %10d\n",
			batch, res.OOOSKBs, res.GROFactor, res.Gbps, res.ReassemblySwitches)
	}

	fmt.Println()
	fmt.Println("Small batches split at packet granularity: massive reordering and")
	fmt.Println("no GRO merging. At the paper's choice of 256, order-preservation")
	fmt.Println("overhead is negligible and GRO optimization is preserved.")
}
