// Data caching: the paper's Fig. 13 scenario — a containerized memcached
// server (4 threads, 550-byte objects) under GET load from a growing client
// population, comparing request latency across steering systems.
package main

import (
	"fmt"

	"mflow"
)

func main() {
	systems := []mflow.System{mflow.Vanilla, mflow.FalconDev, mflow.MFlow}

	fmt.Println("CloudSuite-style data caching (memcached) over a Docker overlay")
	fmt.Println("network: request latency avg/p99 in µs")
	fmt.Println()
	fmt.Printf("%-8s", "clients")
	for _, sys := range systems {
		fmt.Printf("  %18s", sys)
	}
	fmt.Println()

	for _, clients := range []int{1, 2, 5, 10} {
		fmt.Printf("%-8d", clients)
		var base *mflow.CachingResult
		for _, sys := range systems {
			res := mflow.RunDataCaching(mflow.CachingConfig{System: sys, Clients: clients})
			if sys == mflow.Vanilla {
				base = res
			}
			fmt.Printf("  %8.0f/%-9.0f", float64(res.Avg)/1000, float64(res.P99)/1000)
			if sys == mflow.MFlow && base != nil {
				fmt.Printf("(avg %+.0f%%)", (float64(res.Avg)/float64(base.Avg)-1)*100)
			}
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("The benefit grows with load: more clients stress the in-kernel")
	fmt.Println("stack, and MFLOW's packet-level parallelism absorbs it.")
}
