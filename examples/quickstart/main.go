// Quickstart: compare a single elephant flow's throughput across the
// vanilla container overlay network, FALCON, and MFLOW — the paper's
// headline experiment (Fig. 8a at 64 KB) — using the public API.
package main

import (
	"fmt"

	"mflow"
)

func main() {
	fmt.Println("Single 64KB-message TCP flow through a VxLAN container overlay:")
	fmt.Println()

	for _, sys := range mflow.Systems {
		res := mflow.Run(mflow.Scenario{
			System:  sys,
			Proto:   mflow.TCP,
			MsgSize: 64 * 1024,
		})
		fmt.Printf("  %-12s %6.2f Gbps   p50 %-10v gro x%.0f\n",
			sys, res.Gbps, mflow.Duration(res.Latency.Median()), res.GROFactor)
	}

	fmt.Println()
	fmt.Println("MFLOW splits the flow into micro-flows processed in parallel on")
	fmt.Println("multiple cores and reassembles them in batches before the TCP")
	fmt.Println("layer — pushing an overlay flow past even the native network.")
}
