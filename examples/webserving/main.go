// Web serving: the paper's Fig. 11 scenario — a containerized web stack
// (web tier + memcached + mysql on one overlay network) serving closed-loop
// users, comparing success-operation rates and response times across
// steering systems.
package main

import (
	"fmt"

	"mflow"
)

func main() {
	systems := []mflow.System{mflow.Vanilla, mflow.FalconDev, mflow.MFlow}
	results := map[mflow.System]*mflow.WebResult{}
	for _, sys := range systems {
		results[sys] = mflow.RunWebServing(mflow.WebConfig{System: sys})
	}

	fmt.Println("CloudSuite-style web serving over a Docker overlay network")
	fmt.Printf("(%d users; success = completed within the op deadline)\n\n", results[mflow.Vanilla].Config.Users)

	fmt.Printf("%-16s", "operation")
	for _, sys := range systems {
		fmt.Printf("  %12s", sys)
	}
	fmt.Println("  (success op/s)")
	ops := results[systems[0]].Ops
	for i := range ops {
		fmt.Printf("%-16s", ops[i].Name)
		for _, sys := range systems {
			fmt.Printf("  %12.0f", results[sys].Ops[i].SuccessPerSec)
		}
		fmt.Println()
	}

	v := results[mflow.Vanilla].TotalSuccessPerSec
	f := results[mflow.FalconDev].TotalSuccessPerSec
	m := results[mflow.MFlow].TotalSuccessPerSec
	fmt.Printf("\ntotals: vanilla %.0f, falcon %.0f, mflow %.0f op/s (%.1fx vanilla, %.2fx falcon)\n",
		v, f, m, m/v, m/f)

	fmt.Println("\naverage response time (µs):")
	for i := range ops {
		fmt.Printf("%-16s", ops[i].Name)
		for _, sys := range systems {
			fmt.Printf("  %12.0f", float64(results[sys].Ops[i].AvgResponse)/1000)
		}
		fmt.Println()
	}
}
