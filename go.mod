module mflow

go 1.22
