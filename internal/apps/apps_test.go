package apps

import (
	"testing"

	"mflow/internal/sim"
	"mflow/internal/steering"
)

// quickWeb shrinks the web benchmark for unit tests.
func quickWeb(sys steering.System) WebConfig {
	return WebConfig{
		System: sys,
		Users:  150,
		Warmup: 3 * sim.Millisecond, Measure: 12 * sim.Millisecond,
	}
}

func quickCaching(sys steering.System, clients int) CachingConfig {
	return CachingConfig{
		System: sys, Clients: clients,
		Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond,
	}
}

func TestWebServingRuns(t *testing.T) {
	r := RunWebServing(quickWeb(steering.Vanilla))
	if len(r.Ops) != len(DefaultWebOps()) {
		t.Fatalf("got %d op results, want %d", len(r.Ops), len(DefaultWebOps()))
	}
	for _, op := range r.Ops {
		if op.Issued == 0 {
			t.Errorf("%s: no operations issued", op.Name)
		}
		if op.Completed > op.Issued {
			t.Errorf("%s: completed %d > issued %d", op.Name, op.Completed, op.Issued)
		}
		if op.Successful > op.Completed {
			t.Errorf("%s: successful %d > completed %d", op.Name, op.Successful, op.Completed)
		}
	}
	if r.TotalSuccessPerSec <= 0 {
		t.Error("no successful operations at all")
	}
}

func TestWebServingDeterminism(t *testing.T) {
	a := RunWebServing(quickWeb(steering.MFlow))
	b := RunWebServing(quickWeb(steering.MFlow))
	if a.TotalSuccessPerSec != b.TotalSuccessPerSec {
		t.Errorf("same config diverged: %.0f vs %.0f", a.TotalSuccessPerSec, b.TotalSuccessPerSec)
	}
}

func TestWebServingPaperShape(t *testing.T) {
	// Fig. 11: MFLOW achieves a much higher success-operation rate than
	// the vanilla overlay, and beats FALCON; response times drop.
	v := RunWebServing(quickWeb(steering.Vanilla))
	f := RunWebServing(quickWeb(steering.FalconDev))
	m := RunWebServing(quickWeb(steering.MFlow))
	if !(m.TotalSuccessPerSec > 1.5*v.TotalSuccessPerSec) {
		t.Errorf("MFLOW success rate %.0f should be >1.5x vanilla %.0f",
			m.TotalSuccessPerSec, v.TotalSuccessPerSec)
	}
	if !(m.TotalSuccessPerSec > f.TotalSuccessPerSec) {
		t.Errorf("MFLOW success rate %.0f should beat FALCON %.0f",
			m.TotalSuccessPerSec, f.TotalSuccessPerSec)
	}
	// Average response time: MFLOW under vanilla for every op type.
	for i := range m.Ops {
		if m.Ops[i].Completed == 0 || v.Ops[i].Completed == 0 {
			continue
		}
		if !(m.Ops[i].AvgResponse < v.Ops[i].AvgResponse) {
			t.Errorf("%s: MFLOW response %v should be under vanilla %v",
				m.Ops[i].Name, m.Ops[i].AvgResponse, v.Ops[i].AvgResponse)
		}
	}
}

func TestWebOpMixDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, op := range DefaultWebOps() {
		if seen[op.Name] {
			t.Errorf("duplicate op %q", op.Name)
		}
		seen[op.Name] = true
		if op.RequestB <= 0 || op.ResponseB <= 0 || op.Deadline <= 0 {
			t.Errorf("%s: incomplete op definition", op.Name)
		}
		if op.TargetTime >= op.Deadline {
			t.Errorf("%s: target %v must be below deadline %v", op.Name, op.TargetTime, op.Deadline)
		}
	}
}

func TestDataCachingRuns(t *testing.T) {
	r := RunDataCaching(quickCaching(steering.Vanilla, 2))
	if r.RequestsPerSec <= 0 {
		t.Fatal("no requests completed")
	}
	if r.Latency.Count() == 0 || r.Avg <= 0 || r.P99 < r.Avg/2 {
		t.Errorf("latency stats malformed: avg=%v p99=%v n=%d", r.Avg, r.P99, r.Latency.Count())
	}
}

func TestDataCachingPaperShape(t *testing.T) {
	// Fig. 13: MFLOW cuts average and tail latency vs vanilla, more so
	// with more clients, and beats FALCON.
	for _, clients := range []int{1, 10} {
		v := RunDataCaching(quickCaching(steering.Vanilla, clients))
		f := RunDataCaching(quickCaching(steering.FalconDev, clients))
		m := RunDataCaching(quickCaching(steering.MFlow, clients))
		if !(m.Avg < v.Avg) || !(m.P99 < v.P99) {
			t.Errorf("clients=%d: MFLOW avg/p99 %v/%v should be under vanilla %v/%v",
				clients, m.Avg, m.P99, v.Avg, v.P99)
		}
		if !(m.Avg < f.Avg) {
			t.Errorf("clients=%d: MFLOW avg %v should be under FALCON %v", clients, m.Avg, f.Avg)
		}
	}
	// Benefit grows with load: relative improvement at 10 clients should
	// be at least that at 1 client (within tolerance).
	v1 := RunDataCaching(quickCaching(steering.Vanilla, 1))
	m1 := RunDataCaching(quickCaching(steering.MFlow, 1))
	v10 := RunDataCaching(quickCaching(steering.Vanilla, 10))
	m10 := RunDataCaching(quickCaching(steering.MFlow, 10))
	red1 := 1 - float64(m1.Avg)/float64(v1.Avg)
	red10 := 1 - float64(m10.Avg)/float64(v10.Avg)
	if red10 < red1-0.10 {
		t.Errorf("latency reduction should not shrink with load: %.0f%% @1 vs %.0f%% @10",
			red1*100, red10*100)
	}
}

func TestCachingConfigDefaults(t *testing.T) {
	c := CachingConfig{}.withDefaults()
	if c.Clients != 1 || c.ValueB != 550 || c.Threads != 4 {
		t.Errorf("defaults wrong: %+v", c)
	}
	w := WebConfig{}.withDefaults()
	if w.Users != 400 || len(w.Ops) == 0 {
		t.Errorf("web defaults wrong: users=%d ops=%d", w.Users, len(w.Ops))
	}
}
