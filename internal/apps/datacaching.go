package apps

import (
	"fmt"

	"mflow/internal/metrics"
	"mflow/internal/overlay"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// CachingConfig parameterizes the data-caching (memcached) benchmark:
// closed-loop clients issue GET requests over overlay connections into a
// memcached container (4 threads, 550-byte objects, per the paper's
// configuration) and measure request latency.
type CachingConfig struct {
	// System is the packet-steering configuration under test.
	System steering.System
	// Clients is the number of load-generating client machines (the
	// paper sweeps 1..10); each opens ConnsPerClient connections and
	// keeps Outstanding requests in flight per connection.
	Clients        int
	ConnsPerClient int
	Outstanding    int
	// RequestB / ValueB are the GET request and object sizes (550-byte
	// values per the paper).
	RequestB int
	ValueB   int
	// ServiceTime is memcached's per-request CPU on an app core; Threads
	// is its thread count (app cores used).
	ServiceTime sim.Duration
	Threads     int
	// KernelCores sizes the softirq pool.
	KernelCores int
	// MFlow overrides MFLOW's splitting configuration (see WebConfig).
	MFlow   *overlay.MFlowConfig
	Costs   *overlay.CostModel
	Seed    uint64
	Warmup  sim.Duration
	Measure sim.Duration
}

func (c CachingConfig) withDefaults() CachingConfig {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.ConnsPerClient <= 0 {
		c.ConnsPerClient = 4
	}
	if c.Outstanding <= 0 {
		c.Outstanding = 8
	}
	if c.RequestB <= 0 {
		c.RequestB = 128
	}
	if c.ValueB <= 0 {
		c.ValueB = 550
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = 2 * sim.Microsecond
	}
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.KernelCores <= 0 {
		c.KernelCores = 6
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Warmup <= 0 {
		c.Warmup = 4 * sim.Millisecond
	}
	if c.Measure <= 0 {
		c.Measure = 20 * sim.Millisecond
	}
	return c
}

// CachingResult is the benchmark outcome.
type CachingResult struct {
	Config CachingConfig
	// Latency is the distribution of client-visible request latencies.
	Latency *metrics.Histogram
	// Avg and P99 are the paper's Fig. 13 metrics.
	Avg sim.Duration
	P99 sim.Duration
	// RequestsPerSec is the achieved GET rate.
	RequestsPerSec float64
}

// String renders a one-line summary.
func (r *CachingResult) String() string {
	return fmt.Sprintf("datacaching/%s clients=%d %.0f req/s avg=%v p99=%v",
		r.Config.System, r.Config.Clients, r.RequestsPerSec, r.Avg, r.P99)
}

// RunDataCachingDebug runs the benchmark and exposes the host cores for
// utilization inspection (development aid).
func RunDataCachingDebug(cfg CachingConfig, cores *[]*sim.Core) *CachingResult {
	return runDataCaching(cfg, cores)
}

// RunDataCaching executes the data-caching benchmark.
func RunDataCaching(cfg CachingConfig) *CachingResult {
	return runDataCaching(cfg, nil)
}

func runDataCaching(cfg CachingConfig, coresOut *[]*sim.Core) *CachingResult {
	cfg = cfg.withDefaults()
	flows := cfg.Clients * cfg.ConnsPerClient
	st := overlay.NewStack(overlay.Scenario{
		System:      cfg.System,
		Proto:       skb.TCP,
		Flows:       flows,
		KernelCores: cfg.KernelCores,
		AppCores:    cfg.Threads,
		SharedQueue: true, // default Docker/VxLAN outer-hash regime
		MFlow:       appMFlow(cfg.MFlow, cfg.KernelCores),
		Costs:       cfg.Costs,
		Seed:        cfg.Seed,
	})
	sched := st.Sched()
	cfgCosts := st.Scenario().Costs
	if coresOut != nil {
		*coresOut = st.Cores()
	}

	lat := metrics.NewHistogram()
	measStart := sim.Time(cfg.Warmup)
	measEnd := sim.Time(cfg.Warmup + cfg.Measure)
	var completed uint64

	type pend struct {
		sent     sim.Time
		measured bool
	}
	pending := make([]map[uint64]*pend, flows)
	var issue func(f int)
	for f := 0; f < flows; f++ {
		f := f
		pending[f] = map[uint64]*pend{}
		st.OnMessage(f, func(msgID uint64, at sim.Time) {
			p, ok := pending[f][msgID]
			if !ok {
				return
			}
			delete(pending[f], msgID)
			// memcached thread services the GET, then the 550-byte
			// response crosses back to the client.
			core := st.AppCore(f)
			core.Run(cfg.ServiceTime+sim.Duration(txPerByte*float64(cfg.ValueB)), "memcached", func(end sim.Time) {
				doneAt := end.Add(cfgCosts.NetDelay)
				sched.At(doneAt, func() {
					if p.measured && doneAt < measEnd.Add(40*sim.Millisecond) {
						lat.Record(int64(doneAt.Sub(p.sent)))
						completed++
					}
					issue(f) // closed loop: next request on this slot
				})
			})
		})
	}
	issue = func(f int) {
		if sched.Now() >= measEnd {
			return
		}
		now := sched.Now()
		id := st.Send(f, cfg.RequestB)
		pending[f][id] = &pend{sent: now, measured: now >= measStart}
	}

	for f := 0; f < flows; f++ {
		f := f
		for k := 0; k < cfg.Outstanding; k++ {
			stagger := sim.Duration(sched.Rand.Float64() * 50_000)
			sched.After(stagger, func() { issue(f) })
		}
	}
	sched.RunUntil(measEnd.Add(40 * sim.Millisecond))

	res := &CachingResult{Config: cfg, Latency: lat}
	res.Avg = sim.Duration(lat.Mean())
	res.P99 = sim.Duration(lat.P99())
	res.RequestsPerSec = float64(completed) / cfg.Measure.Seconds()
	return res
}
