// Package apps implements the paper's two application-level workloads on
// top of the simulated overlay stack: a CloudSuite-style Web Serving
// benchmark (an nginx/Elgg web tier backed by memcached and mysql
// containers, driven by closed-loop users issuing typed operations) and a
// CloudSuite-style Data Caching benchmark (a memcached server under GET
// load from 1-10 clients). Both measure how the receive-path steering
// system (vanilla / FALCON / MFLOW) changes application-visible latency and
// success rates (paper Figs. 11 and 13).
package apps

import (
	"fmt"

	"mflow/internal/metrics"
	"mflow/internal/overlay"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// WebOp is one operation type of the web-serving mix. An operation is a
// user request to the web tier, which consults the cache tier and (for
// heavier ops) the database tier — both living in containers reached over
// the same overlay network — before responding to the user.
type WebOp struct {
	Name string
	// RequestB is the user→web request size; CacheB and DBB are the
	// response sizes the web tier pulls from memcached and mysql (0
	// skips that tier); ResponseB is the page returned to the user.
	RequestB  int
	CacheB    int
	DBB       int
	ResponseB int
	// ServerCost is the web tier's CPU per operation (PHP rendering).
	ServerCost sim.Duration
	// TargetTime is the benchmark's target processing time; time beyond
	// it is reported as "delay time". Deadline marks an operation as
	// unsuccessful (timeout) for the success-rate metric.
	TargetTime sim.Duration
	Deadline   sim.Duration
}

// DefaultWebOps mirrors the CloudSuite Web Serving operation mix (login,
// browse, chat, update, ...) with sizes scaled to the Elgg pages the
// benchmark serves.
func DefaultWebOps() []WebOp {
	return []WebOp{
		{Name: "BrowseToElgg", RequestB: 512, CacheB: 24576, DBB: 0, ResponseB: 49152, ServerCost: 8 * sim.Microsecond, TargetTime: 1500 * sim.Microsecond, Deadline: 6 * sim.Millisecond},
		{Name: "Login", RequestB: 1024, CacheB: 8192, DBB: 16384, ResponseB: 32768, ServerCost: 11 * sim.Microsecond, TargetTime: 2 * sim.Millisecond, Deadline: 6 * sim.Millisecond},
		{Name: "CheckWire", RequestB: 512, CacheB: 16384, DBB: 0, ResponseB: 24576, ServerCost: 6 * sim.Microsecond, TargetTime: 1500 * sim.Microsecond, Deadline: 6 * sim.Millisecond},
		{Name: "PostWire", RequestB: 2048, CacheB: 4096, DBB: 24576, ResponseB: 16384, ServerCost: 10 * sim.Microsecond, TargetTime: 2 * sim.Millisecond, Deadline: 6 * sim.Millisecond},
		{Name: "SendChat", RequestB: 1024, CacheB: 8192, DBB: 8192, ResponseB: 8192, ServerCost: 7 * sim.Microsecond, TargetTime: 1500 * sim.Microsecond, Deadline: 6 * sim.Millisecond},
		{Name: "UpdateActivity", RequestB: 2048, CacheB: 16384, DBB: 32768, ResponseB: 24576, ServerCost: 12 * sim.Microsecond, TargetTime: 2500 * sim.Microsecond, Deadline: 8 * sim.Millisecond},
	}
}

// WebConfig parameterizes a web-serving run.
type WebConfig struct {
	// System is the packet-steering configuration under test.
	System steering.System
	// Users is the closed-loop user population (the paper runs 200).
	Users int
	// ThinkTime is the mean exponential think time between a user's
	// operations.
	ThinkTime sim.Duration
	// UserFlows / CacheFlows / DBFlows are the connection counts from
	// each tier into the web host (requests and tier responses traverse
	// the web host's overlay receive path).
	UserFlows  int
	CacheFlows int
	DBFlows    int
	// KernelCores / AppCores size the web host; the web tier's
	// application threads compete for the app cores.
	KernelCores int
	AppCores    int
	// Ops overrides the operation mix (nil = DefaultWebOps).
	Ops []WebOp
	// MFlow overrides MFLOW's splitting configuration. The default uses
	// every kernel core but the dispatcher as a splitting core with
	// single-stage branches — the many-small-flows regime wants breadth,
	// not the elephant-tuned pipelined pairs.
	MFlow *overlay.MFlowConfig
	// Costs overrides the cost table; Seed fixes the run.
	Costs *overlay.CostModel
	Seed  uint64
	// Warmup and Measure delimit the measured window.
	Warmup  sim.Duration
	Measure sim.Duration
}

func (c WebConfig) withDefaults() WebConfig {
	if c.Users <= 0 {
		c.Users = 400
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = 500 * sim.Microsecond
	}
	if c.UserFlows <= 0 {
		c.UserFlows = 12
	}
	if c.CacheFlows <= 0 {
		c.CacheFlows = 2
	}
	if c.DBFlows <= 0 {
		c.DBFlows = 2
	}
	if c.KernelCores <= 0 {
		c.KernelCores = 6
	}
	if c.AppCores <= 0 {
		c.AppCores = 4
	}
	if c.Ops == nil {
		c.Ops = DefaultWebOps()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Warmup <= 0 {
		c.Warmup = 5 * sim.Millisecond
	}
	if c.Measure <= 0 {
		c.Measure = 30 * sim.Millisecond
	}
	return c
}

// appMFlow picks the application-regime MFLOW configuration: breadth-first
// splitting over every kernel core but the dispatcher, single-stage
// branches (no pipelined pairs), as suits many concurrent smaller flows.
func appMFlow(override *overlay.MFlowConfig, kernelCores int) overlay.MFlowConfig {
	if override != nil {
		return *override
	}
	n := kernelCores - 1
	if n < 2 {
		n = 2
	}
	return overlay.MFlowConfig{SplitCores: n, FullPath: true}
}

// cacheServiceTime / dbServiceTime model the remote tiers' own service
// latency (lookup / query execution) before their responses hit the wire.
const (
	cacheServiceTime = 12 * sim.Microsecond
	dbServiceTime    = 120 * sim.Microsecond
	txPerByte        = 0.02 // web-tier transmit cost, ns per response byte
)

// WebOpResult aggregates one operation type's outcome.
type WebOpResult struct {
	Name string
	// Issued / Completed / Successful count operations started in the
	// measured window (successful = completed within the op deadline).
	Issued     uint64
	Completed  uint64
	Successful uint64
	// SuccessPerSec is the paper's "success operation rate".
	SuccessPerSec float64
	// AvgResponse and AvgDelay are the mean response time and the mean
	// time beyond the op's target (Fig. 11b/11c).
	AvgResponse sim.Duration
	AvgDelay    sim.Duration
	// Response is the full response-time distribution.
	Response *metrics.Histogram
}

// WebResult is a full web-serving run outcome.
type WebResult struct {
	Config             WebConfig
	Ops                []WebOpResult
	TotalSuccessPerSec float64
}

// String renders a one-line summary.
func (r *WebResult) String() string {
	return fmt.Sprintf("webserving/%s users=%d success=%.0f op/s",
		r.Config.System, r.Config.Users, r.TotalSuccessPerSec)
}

// opState tracks one in-flight operation through its tier hops.
type opState struct {
	op       *WebOp
	user     int
	started  sim.Time
	measured bool
}

// RunWebServing executes the web-serving benchmark against the given
// steering system and reports per-operation success rates and latencies.
func RunWebServing(cfg WebConfig) *WebResult {
	cfg = cfg.withDefaults()
	flows := cfg.UserFlows + cfg.CacheFlows + cfg.DBFlows
	st := overlay.NewStack(overlay.Scenario{
		System:      cfg.System,
		Proto:       skb.TCP,
		Flows:       flows,
		KernelCores: cfg.KernelCores,
		AppCores:    cfg.AppCores,
		SharedQueue: true, // default Docker/VxLAN outer-hash regime
		MFlow:       appMFlow(cfg.MFlow, cfg.KernelCores),
		Costs:       cfg.Costs,
		Seed:        cfg.Seed,
	})
	sched := st.Sched()
	rnd := sched.Rand

	type key struct {
		flow  int
		msgID uint64
	}
	waiting := map[key]func(at sim.Time){}
	expect := func(flow int, msgID uint64, fn func(at sim.Time)) {
		waiting[key{flow, msgID}] = fn
	}
	for f := 0; f < flows; f++ {
		f := f
		st.OnMessage(f, func(msgID uint64, at sim.Time) {
			k := key{f, msgID}
			if fn, ok := waiting[k]; ok {
				delete(waiting, k)
				fn(at)
			}
		})
	}

	stats := make([]WebOpResult, len(cfg.Ops))
	for i := range stats {
		stats[i] = WebOpResult{Name: cfg.Ops[i].Name, Response: metrics.NewHistogram()}
	}
	var delays []float64
	_ = delays
	delaySum := make([]float64, len(cfg.Ops))

	measStart := sim.Time(cfg.Warmup)
	measEnd := sim.Time(cfg.Warmup + cfg.Measure)
	opIdx := func(u, n int) int { return (u + n) % len(cfg.Ops) }

	var startOp func(u, n int)
	finish := func(os *opState, idx int, at sim.Time) {
		if !os.measured {
			return
		}
		resp := at.Sub(os.started)
		stats[idx].Completed++
		stats[idx].Response.Record(int64(resp))
		if resp <= os.op.Deadline {
			stats[idx].Successful++
		}
		if d := resp - os.op.TargetTime; d > 0 {
			delaySum[idx] += float64(d)
		}
	}

	startOp = func(u, n int) {
		if sched.Now() >= measEnd {
			return
		}
		idx := opIdx(u, n)
		op := &cfg.Ops[idx]
		os := &opState{op: op, user: u, started: sched.Now()}
		os.measured = sched.Now() >= measStart && sched.Now() < measEnd
		if os.measured {
			stats[idx].Issued++
		}
		next := func() {
			think := sim.Duration(float64(cfg.ThinkTime) * rnd.ExpFloat64())
			sched.After(think, func() { startOp(u, n+1) })
		}

		uf := u % cfg.UserFlows
		// 1. The user's request traverses the overlay into the web tier.
		reqID := st.Send(uf, op.RequestB)
		expect(uf, reqID, func(sim.Time) {
			// 2. Web tier burns half its CPU then pulls from the cache
			// tier: the cache's response travels the overlay back in.
			app := st.AppCore(uf)
			app.Run(op.ServerCost/2, "web-app", func(sim.Time) {
				cf := cfg.UserFlows + (u % cfg.CacheFlows)
				sched.After(st.Scenario().Costs.NetDelay+cacheServiceTime, func() {
					cID := st.Send(cf, op.CacheB)
					expect(cf, cID, func(sim.Time) {
						afterTiers := func() {
							// 4. Compose and transmit the page.
							tx := op.ServerCost/2 + sim.Duration(txPerByte*float64(op.ResponseB))
							app.Run(tx, "web-app", func(end sim.Time) {
								done := end.Add(st.Scenario().Costs.NetDelay)
								sched.At(done, func() { finish(os, idx, done); next() })
							})
						}
						if op.DBB > 0 {
							// 3. Heavier ops also query the database tier.
							df := cfg.UserFlows + cfg.CacheFlows + (u % cfg.DBFlows)
							sched.After(st.Scenario().Costs.NetDelay+dbServiceTime, func() {
								dID := st.Send(df, op.DBB)
								expect(df, dID, func(sim.Time) { afterTiers() })
							})
						} else {
							afterTiers()
						}
					})
				})
			})
		})
	}

	for u := 0; u < cfg.Users; u++ {
		u := u
		stagger := sim.Duration(rnd.Float64() * float64(cfg.ThinkTime))
		sched.After(stagger, func() { startOp(u, 0) })
	}

	// Let in-flight operations finish after the window closes.
	sched.RunUntil(measEnd.Add(60 * sim.Millisecond))

	res := &WebResult{Config: cfg}
	window := (cfg.Measure).Seconds()
	for i := range stats {
		s := stats[i]
		s.SuccessPerSec = float64(s.Successful) / window
		if s.Completed > 0 {
			s.AvgResponse = sim.Duration(s.Response.Mean())
			s.AvgDelay = sim.Duration(delaySum[i] / float64(s.Completed))
		}
		res.Ops = append(res.Ops, s)
		res.TotalSuccessPerSec += s.SuccessPerSec
	}
	return res
}
