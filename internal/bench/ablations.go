package bench

import (
	"fmt"

	"mflow/internal/overlay"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// Ablations benchmarks the design choices DESIGN.md calls out: batch
// reassembly vs the kernel's per-packet out-of-order queue, early vs late
// merging (UDP), IRQ-splitting vs flow-splitting only (TCP), splitting-core
// count, and the driver completion-update batching factor.
func (r *Runner) Ablations() []*Table {
	return []*Table{
		r.AblationReassembly(),
		r.AblationLateMerge(),
		r.AblationIRQSplit(),
		r.AblationSplitCores(),
		r.AblationCompletion(),
	}
}

func (r *Runner) mflowTCP(m overlay.MFlowConfig) *overlay.Result {
	return r.run(mflowScenario(skb.TCP, m))
}

func (r *Runner) mflowUDP(m overlay.MFlowConfig) *overlay.Result {
	return r.run(mflowScenario(skb.UDP, m))
}

func mflowScenario(proto skb.Proto, m overlay.MFlowConfig) overlay.Scenario {
	return overlay.Scenario{System: steering.MFlow, Proto: proto, MsgSize: 65536, MFlow: m}
}

// The ablation sweeps, shared with the prefetch plans (plan.go).
var (
	ablationSplitCores = []int{1, 2, 3, 4}
	ablationCompletion = []int{1, 8, 32, 128, 512}
)

// completionScenario is the driver completion-batching ablation cell: one
// splitting core isolates the skb-allocation stage so the update cost is
// visible against it.
func completionScenario(n int) overlay.Scenario {
	costs := overlay.DefaultCosts()
	costs.CompletionEvery = n
	return overlay.Scenario{
		System: steering.MFlow, Proto: skb.TCP, MsgSize: 65536,
		MFlow: overlay.MFlowConfig{SplitCores: 1},
		Costs: costs,
	}
}

// AblationReassembly compares MFLOW's batch-based reassembler against the
// kernel's per-packet out-of-order queue (paper §III-B's motivation).
func (r *Runner) AblationReassembly() *Table {
	t := &Table{ID: "ablation-reassembly", Title: "Batch reassembly vs kernel per-packet ofo queue (TCP 64KB)"}
	t.Columns = []string{"order restoration", "Gbps", "p50 latency (µs)", "tcp ofo skbs"}
	batch := r.mflowTCP(overlay.MFlowConfig{})
	perPkt := r.mflowTCP(overlay.MFlowConfig{PerPacketReorder: true})
	row := func(name string, res *overlay.Result) []string {
		return []string{name, gbps(res.Gbps),
			fmt.Sprintf("%.0f", float64(res.Latency.Median())/1000),
			fmt.Sprintf("%d", res.TCPOFOSegments)}
	}
	t.Rows = append(t.Rows, row("batch reassembler (mflow)", batch))
	t.Rows = append(t.Rows, row("per-packet ofo queue", perPkt))
	t.Notes = append(t.Notes, "The merging counter restores order per batch; the ofo queue pays per packet.")
	return t
}

// AblationLateMerge compares merging right after the heavy device against
// merging at the socket (the paper's late-merge optimization for UDP).
func (r *Runner) AblationLateMerge() *Table {
	t := &Table{ID: "ablation-latemerge", Title: "Early vs late micro-flow merging (UDP 64KB, equal 4-core budget)"}
	t.Columns = []string{"merge point", "kernel cores", "Gbps", "p50 latency (µs)"}
	// Early merging needs an extra core for the post-merge path, so the
	// fair comparison holds the kernel-core budget constant: late merge
	// turns that core into a third splitting core (the paper's point —
	// late merging parallelizes the full path with the same cores).
	late := r.mflowUDP(overlay.MFlowConfig{LateMerge: true, SplitCores: 3})
	early := r.mflowUDP(overlay.MFlowConfig{EarlyMerge: true, SplitCores: 2})
	row := func(name, cores string, res *overlay.Result) []string {
		return []string{name, cores, gbps(res.Gbps), fmt.Sprintf("%.0f", float64(res.Latency.Median())/1000)}
	}
	t.Rows = append(t.Rows, row("late (at socket, 3 split cores)", "1+3", late))
	t.Rows = append(t.Rows, row("early (after VxLAN, 2 split + 1 merge-tail)", "1+2+1", early))
	t.Notes = append(t.Notes, "Late merging spends every core on parallel full-path work (paper §III-B).")
	return t
}

// AblationIRQSplit compares full IRQ-splitting (pre-skb) against the
// flow-splitting function alone (post-skb) for TCP.
func (r *Runner) AblationIRQSplit() *Table {
	t := &Table{ID: "ablation-irqsplit", Title: "IRQ-splitting (pre-skb) vs flow-splitting only (TCP 64KB)"}
	t.Columns = []string{"splitting mechanism", "Gbps"}
	full := r.mflowTCP(overlay.MFlowConfig{})
	flowOnly := r.mflowTCP(overlay.MFlowConfig{FlowSplitOnly: true})
	t.Rows = append(t.Rows, []string{"IRQ-splitting, full-path scaling", gbps(full.Gbps)})
	t.Rows = append(t.Rows, []string{"flow-splitting only (skb alloc serialized)", gbps(flowOnly.Gbps)})
	t.Notes = append(t.Notes,
		"Without pre-skb splitting the skb-allocation core throttles TCP, as with FALCON-func.")
	return t
}

// AblationSplitCores sweeps the number of splitting cores (paper §III-A:
// benefits diminish beyond a few cores).
func (r *Runner) AblationSplitCores() *Table {
	t := &Table{ID: "ablation-cores", Title: "Splitting-core count (UDP 64KB, device scaling)"}
	t.Columns = []string{"split cores", "Gbps", "gain vs previous"}
	prev := 0.0
	for _, n := range ablationSplitCores {
		res := r.mflowUDP(overlay.MFlowConfig{SplitCores: n})
		gain := "-"
		if prev > 0 {
			gain = pct(res.Gbps / prev)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), gbps(res.Gbps), gain})
		prev = res.Gbps
	}
	t.Notes = append(t.Notes, "Two cores already beat every baseline; returns diminish beyond that (paper §V-A).")
	return t
}

// AblationCompletion sweeps the driver completion-update batching factor
// (the paper updates the driver every 128 requests to limit contention).
func (r *Runner) AblationCompletion() *Table {
	t := &Table{ID: "ablation-completion", Title: "Driver completion-update batching (TCP 64KB, IRQ-splitting)"}
	t.Columns = []string{"update every N requests", "Gbps"}
	for _, n := range ablationCompletion {
		res := r.run(completionScenario(n))
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), gbps(res.Gbps)})
	}
	t.Notes = append(t.Notes, "Per-request updates serialize on the driver state; batching (default 128) amortizes them.")
	return t
}
