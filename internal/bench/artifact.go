package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mflow/internal/overlay"
	"mflow/internal/sim"
)

// ArtifactSchema versions the BENCH_*.json layout; bump it when record
// fields change incompatibly so Compare can refuse mismatched baselines.
const ArtifactSchema = "mflow-bench/v1"

// Artifact is the machine-readable companion to a figure's text tables:
// one record per scenario run (keyed by the scenario's stable cache key)
// plus the application-benchmark records and the rendered tables. It
// deliberately carries no timestamps, host identifiers or worker counts —
// for a given (figure, seed, windows) the bytes are identical whether the
// harness ran serial or parallel, which is what the golden determinism
// test asserts.
type Artifact struct {
	Schema    string  `json:"schema"`
	Figure    string  `json:"figure"`
	Seed      uint64  `json:"seed"`
	WarmupMs  float64 `json:"warmup_ms"`
	MeasureMs float64 `json:"measure_ms"`
	// Provenance states which engine and configuration produced the runs.
	// It is derived purely from the Runner's configuration — no timestamps
	// or host identifiers — so regenerating with the same settings still
	// yields byte-identical artifacts.
	Provenance string        `json:"provenance,omitempty"`
	Runs       []RunRecord   `json:"runs"`
	Apps       []AppRecord   `json:"apps,omitempty"`
	Tables     []TableRecord `json:"tables"`
}

// RunRecord is one overlay scenario's measured outcome.
type RunRecord struct {
	Key     string `json:"key"`
	Name    string `json:"name"`
	System  string `json:"system"`
	Proto   string `json:"proto"`
	MsgSize int    `json:"msg_size"`
	Flows   int    `json:"flows"`

	Gbps         float64 `json:"gbps"`
	MsgPerSec    float64 `json:"msg_per_sec"`
	LatencyP50Us float64 `json:"latency_p50_us"`
	LatencyP99Us float64 `json:"latency_p99_us"`

	KernelCPUTotal  float64 `json:"kernel_cpu_total"`
	KernelCPUStddev float64 `json:"kernel_cpu_stddev"`
	GROFactor       float64 `json:"gro_factor"`

	OOOSKBs             uint64 `json:"ooo_skbs"`
	DeliveredOutOfOrder uint64 `json:"delivered_ooo"`
	DropsRing           uint64 `json:"drops_ring"`
	DropsSock           uint64 `json:"drops_sock"`
	DropsBacklog        uint64 `json:"drops_backlog"`

	FaultsInjected  uint64 `json:"faults_injected,omitempty"`
	Retransmits     uint64 `json:"retransmits,omitempty"`
	RTOTimeouts     uint64 `json:"rto_timeouts,omitempty"`
	FastRetransmits uint64 `json:"fast_retransmits,omitempty"`
	HolesReleased   uint64 `json:"holes_released,omitempty"`
	StaleReleased   uint64 `json:"stale_released,omitempty"`
	OFOPruned       uint64 `json:"ofo_pruned,omitempty"`

	// Queue depths from the observability snapshot; zero when the run
	// was not observed.
	RingP99    int64 `json:"ring_p99,omitempty"`
	RingMax    int64 `json:"ring_max,omitempty"`
	BacklogP99 int64 `json:"backlog_p99,omitempty"`
	BacklogMax int64 `json:"backlog_max,omitempty"`

	// Breakdown is the causal latency decomposition, present only when the
	// run was probed (Runner.Causal); unprobed artifacts are byte-identical
	// to pre-causal ones.
	Breakdown []BreakdownRecord `json:"breakdown,omitempty"`
}

// AppRecord is one application-benchmark outcome (Figs. 11 and 13).
type AppRecord struct {
	Key     string  `json:"key"`
	Kind    string  `json:"kind"` // "web" | "caching"
	System  string  `json:"system"`
	Clients int     `json:"clients,omitempty"`
	PerSec  float64 `json:"per_sec"`
	AvgUs   float64 `json:"avg_us,omitempty"`
	P99Us   float64 `json:"p99_us,omitempty"`
}

// TableRecord mirrors a rendered Table.
type TableRecord struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

func runRecord(key string, res *overlay.Result) RunRecord {
	sc := res.Scenario
	rec := RunRecord{
		Key:     key,
		Name:    sc.Name(),
		System:  sc.System.String(),
		Proto:   sc.Proto.String(),
		MsgSize: sc.MsgSize,
		Flows:   sc.Flows,

		Gbps:      res.Gbps,
		MsgPerSec: res.MsgPerSec,

		KernelCPUTotal:  res.KernelCPUTotal,
		KernelCPUStddev: res.KernelCPUStddev,
		GROFactor:       res.GROFactor,

		OOOSKBs:             res.OOOSKBs,
		DeliveredOutOfOrder: res.DeliveredOutOfOrder,
		DropsRing:           res.DropsRing,
		DropsSock:           res.DropsSock,
		DropsBacklog:        res.DropsBacklog,

		FaultsInjected:  res.FaultsInjected,
		Retransmits:     res.Retransmits,
		RTOTimeouts:     res.RTOTimeouts,
		FastRetransmits: res.FastRetransmits,
		HolesReleased:   res.HolesReleased,
		StaleReleased:   res.StaleReleased,
		OFOPruned:       res.OFOPruned,
	}
	if res.Latency != nil && res.Latency.Count() > 0 {
		rec.LatencyP50Us = float64(res.Latency.Median()) / 1000
		rec.LatencyP99Us = float64(res.Latency.P99()) / 1000
	}
	if res.Obs != nil {
		rec.RingP99, rec.RingMax, _, rec.BacklogP99, rec.BacklogMax = queueStats(res)
	}
	rec.Breakdown = breakdownRecords(res.Breakdown)
	return rec
}

// Artifact assembles the named figure's artifact from the Runner's warm
// caches and the already-rendered tables. Runs appear in plan order (the
// figure's deterministic enumeration), deduplicated by key — the same
// order a serial build consumed them in, so the encoding is independent
// of worker count.
func (r *Runner) Artifact(fig string, tables []*Table) *Artifact {
	a := &Artifact{
		Schema:    ArtifactSchema,
		Figure:    fig,
		Seed:      r.Seed,
		WarmupMs:  float64(r.Warmup) / float64(sim.Millisecond),
		MeasureMs: float64(r.Measure) / float64(sim.Millisecond),
		Provenance: fmt.Sprintf(
			"mflowbench deterministic DES harness (fast-path engine, typed event heap); fig=%s seed=%d warmup=%gms measure=%gms, overload control and fault injection disabled unless a run's key says otherwise",
			fig, r.Seed,
			float64(r.Warmup)/float64(sim.Millisecond),
			float64(r.Measure)/float64(sim.Millisecond)),
	}
	p := planFor(fig)
	seen := map[string]bool{}
	for _, pr := range p.runs {
		key := r.normalize(pr.sc).Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		res, ok := r.cached(key)
		if !ok {
			// The figure was built before Artifact was called, so a miss
			// means the plan drifted from the figure; run it now rather
			// than emit a hole (TestPlansCoverFigures catches the drift).
			res = r.run(pr.sc)
		}
		a.Runs = append(a.Runs, runRecord(key, res))
	}
	for _, sys := range p.web {
		res := r.web(sys)
		a.Apps = append(a.Apps, AppRecord{
			Key:    webKey(res.Config),
			Kind:   "web",
			System: res.Config.System.String(),
			PerSec: res.TotalSuccessPerSec,
		})
	}
	for _, cj := range p.caching {
		res := r.caching(cj.sys, cj.clients)
		a.Apps = append(a.Apps, AppRecord{
			Key:     cachingKey(res.Config),
			Kind:    "caching",
			System:  res.Config.System.String(),
			Clients: res.Config.Clients,
			PerSec:  res.RequestsPerSec,
			AvgUs:   float64(res.Avg) / 1000,
			P99Us:   float64(res.P99) / 1000,
		})
	}
	for _, t := range tables {
		a.Tables = append(a.Tables, TableRecord{
			ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes,
		})
	}
	return a
}

// WriteJSON emits the artifact as indented JSON. The encoding is fully
// deterministic: struct fields encode in declaration order and slices in
// plan order.
func (a *Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// LoadArtifact reads a BENCH_*.json file written by WriteJSON.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if a.Schema != ArtifactSchema {
		return nil, fmt.Errorf("bench: %s has schema %q, want %q", path, a.Schema, ArtifactSchema)
	}
	return &a, nil
}

// Regression is one run whose headline metric fell more than the allowed
// tolerance below the baseline.
type Regression struct {
	Key      string
	Name     string
	Metric   string
	Baseline float64
	Current  float64
	Drop     float64 // relative: (baseline - current) / baseline
}

func (g Regression) String() string {
	return fmt.Sprintf("%s: %s %.3f -> %.3f (-%.1f%%)", g.Name, g.Metric, g.Baseline, g.Current, 100*g.Drop)
}

// Compare flags current runs whose throughput regressed beyond tol
// (relative) against the baseline. Runs are matched by scenario key; keys
// present on only one side are ignored (the matrix changed, not the
// performance). Throughput-class metrics only — counters and latencies
// shift legitimately with scheduling changes, but a goodput collapse is
// what the artifact gate exists to catch.
func Compare(baseline, current *Artifact, tol float64) []Regression {
	base := make(map[string]RunRecord, len(baseline.Runs))
	for _, rec := range baseline.Runs {
		base[rec.Key] = rec
	}
	var out []Regression
	for _, cur := range current.Runs {
		b, ok := base[cur.Key]
		if !ok {
			continue
		}
		metric, bv, cv := "gbps", b.Gbps, cur.Gbps
		if bv == 0 {
			metric, bv, cv = "msg_per_sec", b.MsgPerSec, cur.MsgPerSec
		}
		if bv <= 0 {
			continue
		}
		if drop := (bv - cv) / bv; drop > tol {
			out = append(out, Regression{
				Key: cur.Key, Name: cur.Name, Metric: metric,
				Baseline: bv, Current: cv, Drop: drop,
			})
		}
	}
	baseApps := make(map[string]AppRecord, len(baseline.Apps))
	for _, rec := range baseline.Apps {
		baseApps[rec.Key] = rec
	}
	for _, cur := range current.Apps {
		b, ok := baseApps[cur.Key]
		if !ok || b.PerSec <= 0 {
			continue
		}
		if drop := (b.PerSec - cur.PerSec) / b.PerSec; drop > tol {
			out = append(out, Regression{
				Key: cur.Key, Name: fmt.Sprintf("%s/%s", cur.Kind, cur.System), Metric: "per_sec",
				Baseline: b.PerSec, Current: cur.PerSec, Drop: drop,
			})
		}
	}
	return out
}
