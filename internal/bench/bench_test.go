package bench

import (
	"strconv"
	"strings"
	"testing"

	"mflow/internal/sim"
)

func quickRunner() *Runner {
	return &Runner{Warmup: 2 * sim.Millisecond, Measure: 5 * sim.Millisecond}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"note line"},
	}
	out := tab.Render()
	for _, want := range []string{"== x — demo ==", "long-column", "333", "note line"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,long-column\n1,2\n") {
		t.Errorf("csv wrong:\n%s", csv)
	}
}

func TestHelpers(t *testing.T) {
	if gbps(12.345) != "12.35" {
		t.Errorf("gbps format: %s", gbps(12.345))
	}
	if pct(1.81) != "+81%" {
		t.Errorf("pct format: %s", pct(1.81))
	}
	if sizeLabel(65536) != "64KB" || sizeLabel(16) != "16B" {
		t.Error("size labels wrong")
	}
	lines := splitLines("a\nb\n")
	if len(lines) != 2 || lines[1] != "b" {
		t.Errorf("splitLines: %v", lines)
	}
}

func TestRunnerCaches(t *testing.T) {
	r := quickRunner()
	a := r.single(0, 0, 65536)
	b := r.single(0, 0, 65536)
	if a != b {
		t.Error("identical scenarios should hit the cache")
	}
}

func TestFig7ShapeMonotone(t *testing.T) {
	r := quickRunner()
	tab := r.Fig7()
	if len(tab.Rows) < 5 {
		t.Fatal("fig7 rows missing")
	}
	first, _ := strconv.Atoi(tab.Rows[0][1])
	var at256 int
	for _, row := range tab.Rows {
		if row[0] == "256" {
			at256, _ = strconv.Atoi(row[1])
		}
	}
	if at256 >= first {
		t.Errorf("OOO deliveries should fall from batch 1 (%d) to 256 (%d)", first, at256)
	}
}

func TestFig8SummaryShape(t *testing.T) {
	r := quickRunner()
	tables := r.Fig8()
	var sum *Table
	for _, tab := range tables {
		if tab.ID == "fig8a-summary" {
			sum = tab
		}
	}
	if sum == nil {
		t.Fatal("summary table missing")
	}
	// Every "measured" gain cell must be positive.
	for _, row := range sum.Rows[:4] {
		if !strings.HasPrefix(row[2], "+") {
			t.Errorf("%s measured %s, want a gain", row[0], row[2])
		}
	}
}

func TestFig12BalanceShape(t *testing.T) {
	r := quickRunner()
	tab := r.Fig12()
	if len(tab.Rows) != 2 {
		t.Fatal("fig12 should compare FALCON and MFLOW")
	}
	fstd, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	mstd, _ := strconv.ParseFloat(tab.Rows[1][2], 64)
	if !(mstd < fstd) {
		t.Errorf("MFLOW stddev %.1f should be below FALCON %.1f", mstd, fstd)
	}
}

func TestAblationTablesRender(t *testing.T) {
	r := quickRunner()
	for _, tab := range []*Table{
		r.AblationReassembly(),
		r.AblationLateMerge(),
		r.AblationIRQSplit(),
	} {
		if len(tab.Rows) < 2 {
			t.Errorf("%s: too few rows", tab.ID)
		}
		if out := tab.Render(); len(out) == 0 {
			t.Errorf("%s: empty render", tab.ID)
		}
	}
}

func TestAblationSplitCoresMonotoneStart(t *testing.T) {
	r := quickRunner()
	tab := r.AblationSplitCores()
	one, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	two, _ := strconv.ParseFloat(tab.Rows[1][1], 64)
	if !(two > one) {
		t.Errorf("2 split cores (%.2f) should beat 1 (%.2f)", two, one)
	}
}
