package bench

import (
	"fmt"

	"mflow/internal/causal"
	"mflow/internal/overlay"
	"mflow/internal/steering"
)

// BreakdownRecord is one (segment kind, stage) row of a probed run's causal
// latency breakdown, as serialized into artifacts. Durations are in
// microseconds to match the artifact's latency fields.
type BreakdownRecord struct {
	Kind    string  `json:"kind"`
	Stage   string  `json:"stage"`
	Count   uint64  `json:"count"`
	TotalUs float64 `json:"total_us"`
	MaxUs   float64 `json:"max_us"`
}

// breakdownRecords converts a run's aggregated KindStats (already sorted by
// kind then stage) into artifact records.
func breakdownRecords(stats []causal.KindStat) []BreakdownRecord {
	if len(stats) == 0 {
		return nil
	}
	out := make([]BreakdownRecord, 0, len(stats))
	for _, st := range stats {
		out = append(out, BreakdownRecord{
			Kind:    st.Kind.String(),
			Stage:   st.Stage,
			Count:   st.Count,
			TotalUs: float64(st.Total) / 1000,
			MaxUs:   float64(st.Max) / 1000,
		})
	}
	return out
}

// BreakdownTable renders one probed run's causal breakdown as a table:
// where this system × protocol's end-to-end latency actually went, one row
// per (segment kind, stage), with each kind's share of total in-stack time.
func BreakdownTable(res *overlay.Result) *Table {
	sc := res.Scenario
	t := &Table{
		ID:      fmt.Sprintf("breakdown-%s-%s", sc.System, sc.Proto),
		Title:   fmt.Sprintf("causal latency breakdown — %s", sc.Name()),
		Columns: []string{"kind", "stage", "count", "total_us", "max_us", "share"},
	}
	var total float64
	for _, st := range res.Breakdown {
		total += float64(st.Total)
	}
	for _, st := range res.Breakdown {
		share := 0.0
		if total > 0 {
			share = 100 * float64(st.Total) / total
		}
		t.Rows = append(t.Rows, []string{
			st.Kind.String(),
			st.Stage,
			fmt.Sprintf("%d", st.Count),
			fmt.Sprintf("%.1f", float64(st.Total)/1000),
			fmt.Sprintf("%.2f", float64(st.Max)/1000),
			fmt.Sprintf("%.1f%%", share),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("handoff mechanism: %s", steering.HandoffLabel(sc.System)))
	return t
}

// DiffTables compares two rendered table sets cell-exactly, matched by
// table ID, and returns one human-readable line per drift. Tables present
// on only one side are reported too — a baseline regenerated at the same
// seed and windows must reproduce every table byte for byte.
func DiffTables(base, cur []TableRecord) []string {
	bi := make(map[string]TableRecord, len(base))
	for _, t := range base {
		bi[t.ID] = t
	}
	ci := make(map[string]TableRecord, len(cur))
	for _, t := range cur {
		ci[t.ID] = t
	}
	var drift []string
	for _, t := range base {
		c, ok := ci[t.ID]
		if !ok {
			drift = append(drift, fmt.Sprintf("table %s: missing from current", t.ID))
			continue
		}
		drift = append(drift, diffTable(t, c)...)
	}
	for _, t := range cur {
		if _, ok := bi[t.ID]; !ok {
			drift = append(drift, fmt.Sprintf("table %s: not in baseline", t.ID))
		}
	}
	return drift
}

func diffTable(b, c TableRecord) []string {
	var drift []string
	if len(b.Columns) != len(c.Columns) {
		return []string{fmt.Sprintf("table %s: %d columns vs %d", b.ID, len(b.Columns), len(c.Columns))}
	}
	if len(b.Rows) != len(c.Rows) {
		return []string{fmt.Sprintf("table %s: %d rows vs %d", b.ID, len(b.Rows), len(c.Rows))}
	}
	for i, col := range b.Columns {
		if col != c.Columns[i] {
			drift = append(drift, fmt.Sprintf("table %s: column %d %q vs %q", b.ID, i, col, c.Columns[i]))
		}
	}
	for i, row := range b.Rows {
		if len(row) != len(c.Rows[i]) {
			drift = append(drift, fmt.Sprintf("table %s row %d: %d cells vs %d", b.ID, i, len(row), len(c.Rows[i])))
			continue
		}
		for j, cell := range row {
			if cell != c.Rows[i][j] {
				drift = append(drift, fmt.Sprintf("table %s row %d col %s: %q vs %q",
					b.ID, i, b.Columns[j], cell, c.Rows[i][j]))
			}
		}
	}
	return drift
}

// DiffBreakdowns compares two artifacts' per-run breakdown records, matched
// by scenario key then (kind, stage) row; runs without breakdowns on either
// side are skipped (unprobed baselines carry none). Count drift is exact;
// microsecond totals compare at the serialized precision.
func DiffBreakdowns(base, cur *Artifact) []string {
	bi := make(map[string]RunRecord, len(base.Runs))
	for _, r := range base.Runs {
		bi[r.Key] = r
	}
	var drift []string
	for _, c := range cur.Runs {
		b, ok := bi[c.Key]
		if !ok || len(b.Breakdown) == 0 || len(c.Breakdown) == 0 {
			continue
		}
		if len(b.Breakdown) != len(c.Breakdown) {
			drift = append(drift, fmt.Sprintf("%s: %d breakdown rows vs %d", c.Name, len(b.Breakdown), len(c.Breakdown)))
			continue
		}
		for i, br := range b.Breakdown {
			cr := c.Breakdown[i]
			if br != cr {
				drift = append(drift, fmt.Sprintf("%s: breakdown %s/%s %+v vs %+v",
					c.Name, br.Kind, br.Stage, br, cr))
			}
		}
	}
	return drift
}
