package bench

import (
	"fmt"
	"sort"

	"mflow/internal/fault"
	"mflow/internal/overlay"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// chaosWindows keeps the matrix affordable: 6 systems × 2 protocols ×
// 3 profiles is 36 runs, each over a 2ms+6ms window.
const (
	chaosWarmup  = 2 * sim.Millisecond
	chaosMeasure = 6 * sim.Millisecond
)

// Chaos runs the fault-injection acceptance matrix: every steering system ×
// protocol × fault profile, reporting goodput retention against the
// lossless run and the recovery work each system performed (retransmits,
// RTO expiries, reassembler hole releases, stale deliveries, pruned
// out-of-order entries). A TCP cell also asserts the in-order delivery
// contract: the ooo column must read 0.
// chaosNames returns the chaos profile names in deterministic (sorted)
// order — the iteration order of the matrix and of its prefetch plan.
func chaosNames(profiles map[string]*fault.Plan) []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (r *Runner) Chaos() []*Table {
	profiles := fault.ChaosProfiles()
	names := chaosNames(profiles)

	var tables []*Table
	for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
		tab := &Table{
			ID:    fmt.Sprintf("chaos-%s", proto),
			Title: fmt.Sprintf("%s goodput under fault injection (retained fraction of lossless)", proto),
			Columns: []string{"system", "profile", "Gbps", "retained",
				"retx", "rto", "fast", "holes", "stale", "pruned", "ooo", "faults"},
		}
		for _, sys := range steering.Systems {
			lossless := r.chaosRun(sys, proto, nil)
			for _, name := range names {
				res := r.chaosRun(sys, proto, profiles[name])
				retained := 0.0
				if lossless.Gbps > 0 {
					retained = res.Gbps / lossless.Gbps
				}
				tab.Rows = append(tab.Rows, []string{
					sys.String(), name,
					fmt.Sprintf("%.2f", res.Gbps),
					fmt.Sprintf("%.2f", retained),
					fmt.Sprintf("%d", res.Retransmits),
					fmt.Sprintf("%d", res.RTOTimeouts),
					fmt.Sprintf("%d", res.FastRetransmits),
					fmt.Sprintf("%d", res.HolesReleased),
					fmt.Sprintf("%d", res.StaleReleased),
					fmt.Sprintf("%d", res.OFOPruned),
					fmt.Sprintf("%d", res.DeliveredOutOfOrder),
					fmt.Sprintf("%d", res.FaultsInjected),
				})
			}
		}
		tab.Notes = append(tab.Notes,
			"retained = lossy Gbps / lossless Gbps for the same system",
			"profiles: random = uniform 1% loss + 0.2% dup; burst = Gilbert-Elliott, mean burst 10 frames")
		if proto == skb.TCP {
			tab.Notes = append(tab.Notes,
				"ooo counts out-of-order deliveries at the socket: TCP's contract requires 0")
		}
		tables = append(tables, tab)
	}
	return tables
}

func (r *Runner) chaosRun(sys steering.System, proto skb.Proto, plan *fault.Plan) *overlay.Result {
	return r.run(chaosScenario(sys, proto, plan))
}

// chaosScenario is one cell of the fault-injection matrix, shared with
// the prefetch plan.
func chaosScenario(sys steering.System, proto skb.Proto, plan *fault.Plan) overlay.Scenario {
	return overlay.Scenario{
		System: sys, Proto: proto, MsgSize: 65536,
		Warmup: chaosWarmup, Measure: chaosMeasure,
		Faults: plan,
	}
}
