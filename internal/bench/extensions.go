package bench

import (
	"fmt"

	"mflow/internal/overlay"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// Extensions benchmarks features beyond the paper's evaluation: the Slim
// (NSDI'19) related-work baseline, the paper's stated future work
// (parallelizing the receiver's single data-copying thread), elephant-flow
// auto-detection, and the explicit sender-side transmit pipeline.
func (r *Runner) Extensions() []*Table {
	return []*Table{
		r.ExtensionSlim(),
		r.ExtensionCopyThreads(),
		r.ExtensionAutoDetect(),
		r.ExtensionSenderSide(),
	}
}

// The extension matrices, shared with the prefetch plans (plan.go).
var (
	extSlimSystems   = []steering.System{steering.Native, steering.Slim, steering.Vanilla, steering.MFlow}
	extCopyThreads   = []int{1, 2, 3}
	extAutoScenarios = []overlay.Scenario{
		{System: steering.MFlow, Proto: skb.UDP, MsgSize: 65536},
		{System: steering.MFlow, Proto: skb.UDP, MsgSize: 65536,
			MFlow: overlay.MFlowConfig{AutoDetect: true}},
		{System: steering.MFlow, Proto: skb.UDP, MsgSize: 65536,
			MFlow: overlay.MFlowConfig{AutoDetect: true, ElephantBps: 50e9}},
	}
	extTXScenarios = []overlay.Scenario{
		{System: steering.MFlow, Proto: skb.TCP, MsgSize: 65536},
		{System: steering.MFlow, Proto: skb.TCP, MsgSize: 16},
		{System: steering.Vanilla, Proto: skb.UDP, MsgSize: 65536},
	}
)

// copyThreadsScenario is the parallel delivery-copy extension cell.
func copyThreadsScenario(n int) overlay.Scenario {
	return overlay.Scenario{
		System: steering.MFlow, Proto: skb.TCP, MsgSize: 65536,
		AppCores:    n,
		CopyThreads: n,
		MFlow:       overlay.MFlowConfig{SplitCores: 3},
		KernelCores: 8,
	}
}

// ExtensionAutoDetect compares always-on splitting against splitting only
// detector-promoted elephants — the identification the paper's "any
// identified (elephant) flow" presumes.
func (r *Runner) ExtensionAutoDetect() *Table {
	t := &Table{ID: "ext-autodetect", Title: "Elephant detection: split everything vs split promoted flows only (UDP 64KB)"}
	t.Columns = []string{"policy", "Gbps", "merge-point OOO", "delivered OOO"}
	always := r.run(extAutoScenarios[0])
	auto := r.run(extAutoScenarios[1])
	mouse := r.run(extAutoScenarios[2])
	row := func(name string, res *overlay.Result) []string {
		return []string{name, gbps(res.Gbps), fmt.Sprintf("%d", res.OOOSKBs), fmt.Sprintf("%d", res.DeliveredOutOfOrder)}
	}
	t.Rows = append(t.Rows, row("split always (paper default)", always))
	t.Rows = append(t.Rows, row("auto-detect (1 Gbps threshold; promoted)", auto))
	t.Rows = append(t.Rows, row("auto-detect, threshold above offered rate (mouse)", mouse))
	t.Notes = append(t.Notes,
		"Elephants get full splitting; mice skip it entirely (zero reordering, no IPIs) while",
		"still flowing through the reassembler so reclassification stays order-safe.")
	return t
}

// ExtensionSenderSide swaps the aggregate client-cost model for the
// explicit transmit pipeline (socket path, GSO, container egress, qdisc,
// NIC TX, wire) and locates the sender-side bottleneck the paper's
// conclusion describes.
func (r *Runner) ExtensionSenderSide() *Table {
	t := &Table{ID: "ext-txpath", Title: "Explicit sender-side pipeline (ModelTX) vs aggregate client model"}
	t.Columns = []string{"scenario", "aggregate model", "explicit TX pipeline"}
	names := []string{"MFLOW TCP 64KB (Gbps)", "MFLOW TCP 16B (Kmsg/s)", "vanilla UDP 64KB (Gbps)"}
	for i, sc := range extTXScenarios {
		c := struct {
			name string
			sc   overlay.Scenario
		}{names[i], sc}
		agg := r.run(c.sc)
		scTX := c.sc
		scTX.ModelTX = true
		tx := r.run(scTX)
		fmtv := func(res *overlay.Result) string {
			if c.sc.MsgSize == 16 {
				return fmt.Sprintf("%.0f", res.MsgPerSec/1000)
			}
			return gbps(res.Gbps)
		}
		t.Rows = append(t.Rows, []string{c.name, fmtv(agg), fmtv(tx)})
	}
	t.Notes = append(t.Notes,
		"With the explicit pipeline, small-message TCP is bottlenecked in the sender's socket",
		"path and UDP by the sender egress chain — the bottlenecks the paper's conclusion names.")
	return t
}

// ExtensionSlim compares Slim's overlay bypass against MFLOW: near-native
// for TCP, inapplicable to UDP (paper §VI discussion).
func (r *Runner) ExtensionSlim() *Table {
	t := &Table{ID: "ext-slim", Title: "Slim (NSDI'19) overlay bypass vs MFLOW (64KB)"}
	t.Columns = []string{"system", "TCP Gbps", "UDP Gbps", "notes"}
	for _, sys := range extSlimSystems {
		tcp := r.single(sys, skb.TCP, 65536)
		udp := r.single(sys, skb.UDP, 65536)
		note := ""
		switch sys {
		case steering.Slim:
			note = "UDP unsupported: falls back to vanilla overlay"
		case steering.MFlow:
			note = "keeps the overlay yet beats native for TCP"
		}
		t.Rows = append(t.Rows, []string{sys.String(), gbps(tcp.Gbps), gbps(udp.Gbps), note})
	}
	t.Notes = append(t.Notes,
		"Slim removes packet transformation (near-native TCP) but cannot serve connectionless protocols",
		"and gives up overlay manageability; MFLOW preserves the overlay and its tooling.")
	return t
}

// ExtensionCopyThreads parallelizes the user-space delivery copy — the
// residual bottleneck the paper's conclusion identifies — and shows MFLOW's
// TCP throughput scaling past the single-thread ceiling.
func (r *Runner) ExtensionCopyThreads() *Table {
	t := &Table{ID: "ext-copythreads", Title: "Future work: parallel delivery-copy threads (MFLOW, TCP 64KB)"}
	t.Columns = []string{"copy threads", "Gbps", "app-core bound?"}
	for _, n := range extCopyThreads {
		res := r.run(copyThreadsScenario(n))
		bound := "yes (single copy thread saturates core 0)"
		if n > 1 {
			bound = "shifts back into the kernel path"
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), gbps(res.Gbps), bound})
	}
	t.Notes = append(t.Notes,
		"The paper: 'a new bottleneck arises due to data copying from the kernel to the user-space",
		"application' — parallel copy threads (its future work) lift that ceiling.")
	return t
}
