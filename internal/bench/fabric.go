package bench

import (
	"fmt"

	"mflow/internal/fabric"
	"mflow/internal/overlay"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// fabricWindows match chaos and overload: the figure is about scale-out
// shape and incast saturation, not statistical stability, so short windows
// keep the host-count sweep affordable.
const (
	fabricWarmup  = 2 * sim.Millisecond
	fabricMeasure = 6 * sim.Millisecond
)

// fabricHosts is the scale-out sweep; 1 is the single-host (nil-Fabric)
// baseline the multi-host points are read against.
var fabricHosts = []int{1, 2, 3, 4}

// fabricIncastHosts sweeps the N→1 incast regime.
var fabricIncastHosts = []int{2, 3, 4}

// fabricSystems compares the serialized baseline, classic RPS steering and
// MFLOW's split path as the fabric scales out.
var fabricSystems = []steering.System{steering.Vanilla, steering.RPS, steering.MFlow}

// fabricScaleScenario is one point of the scale-out curve: hosts paired
// ring-wise (every host sends one flow and receives one), one flow per
// host so offered load grows with the fabric. hosts == 1 leaves Fabric nil
// — the probe-pure single-host path.
func fabricScaleScenario(sys steering.System, hosts int) overlay.Scenario {
	sc := overlay.Scenario{
		System: sys, Proto: skb.TCP, MsgSize: 65536,
		Flows:  hosts,
		Warmup: fabricWarmup, Measure: fabricMeasure,
	}
	if hosts >= 2 {
		sc.Fabric = &fabric.Config{Hosts: hosts}
	}
	return sc
}

// fabricIncastScenario is one point of the N→1 incast table: every flow
// lands on host 0 while hosts 1..N-1 send two flows each, over a 10 Gbps
// underlay so the receiver's downlink is the bottleneck.
func fabricIncastScenario(hosts int) overlay.Scenario {
	return overlay.Scenario{
		System: steering.MFlow, Proto: skb.TCP, MsgSize: 65536,
		Flows:  2 * (hosts - 1),
		Warmup: fabricWarmup, Measure: fabricMeasure,
		Fabric: &fabric.Config{
			Hosts:     hosts,
			Placement: fabric.PlaceIncast,
			LinkGbps:  10,
		},
	}
}

// Fabric builds the multi-host figure: aggregate goodput versus host count
// under pair placement (the scale-out curve), and the N→1 incast table
// where one receiver's downlink saturates and the underlay tail-drops.
func (r *Runner) Fabric() []*Table {
	scale := &Table{
		ID:    "fabric-scaleout",
		Title: "Multi-host scale-out: aggregate goodput vs host count (pair placement, one flow per host, TCP 64KB)",
		Columns: []string{"hosts", "vanilla Gbps", "rps Gbps", "mflow Gbps",
			"underlay frames", "fdb floods", "fdb learned"},
	}
	for _, n := range fabricHosts {
		row := make([]string, 0, len(scale.Columns))
		row = append(row, fmt.Sprintf("%d", n))
		var last *overlay.Result
		for _, sys := range fabricSystems {
			res := r.run(fabricScaleScenario(sys, n))
			row = append(row, gbps(res.Gbps))
			last = res
		}
		// Fabric counters from the MFLOW run; the 1-host baseline has no
		// underlay at all.
		row = append(row,
			fmt.Sprintf("%d", last.UnderlaySent),
			fmt.Sprintf("%d", last.FDBFloods),
			fmt.Sprintf("%d", last.FDBLearned))
		scale.Rows = append(scale.Rows, row)
	}
	scale.Notes = append(scale.Notes,
		"hosts=1 is the single-host baseline (Fabric disabled): zero underlay frames, identical code path to every other figure. Multi-host points pay underlay propagation and reliable-delivery overheads on top, so read the curve host-to-host rather than against row 1.",
		"pair placement chains hosts ring-wise, so each extra host adds one sender and one receiver; aggregate goodput grows with the fabric while per-host work stays flat.",
		"fdb floods/learned are run totals: the flood-then-learn transient plays out during warmup, after which forwarding is unicast.")

	incast := &Table{
		ID:    "fabric-incast",
		Title: "N→1 incast on a 10 Gbps underlay (MFLOW TCP, two flows per sender, all received on host 0)",
		Columns: []string{"hosts", "senders", "flows", "Gbps",
			"underlay sent", "delivered", "drops", "in flight (end)"},
	}
	for _, n := range fabricIncastHosts {
		res := r.run(fabricIncastScenario(n))
		incast.Rows = append(incast.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", n-1),
			fmt.Sprintf("%d", 2*(n-1)),
			gbps(res.Gbps),
			fmt.Sprintf("%d", res.UnderlaySent),
			fmt.Sprintf("%d", res.UnderlayDelivered),
			fmt.Sprintf("%d", res.UnderlayDrops),
			fmt.Sprintf("%d", res.UnderlayInFlightEnd),
		})
	}
	incast.Notes = append(incast.Notes,
		"every sender's uplink feeds host 0's 10 Gbps downlink: once offered load crosses the downlink rate the bounded queue fills and tail-drops, and goodput plateaus at the receiver's drain rate.",
		"frame conservation holds per run: sent + in-flight(start) == delivered + drops + in-flight(end).")
	return []*Table{scale, incast}
}
