package bench

import (
	"fmt"
	"strings"

	"mflow/internal/apps"
	"mflow/internal/metrics"
	"mflow/internal/overlay"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// MsgSizes is the message-size sweep of the paper's Figs. 4, 8 and 9.
var MsgSizes = []int{16, 1024, 4096, 65536}

// The figure matrices below are shared between the figure builders and
// the prefetch plans (plan.go); TestPlansCoverFigures keeps them honest.
var (
	// fig4Systems is the paper's state of the art — everything but MFLOW.
	fig4Systems = []steering.System{steering.Native, steering.Vanilla, steering.RPS, steering.FalconDev, steering.FalconFunc}
	// fig7Batches is Fig. 7's micro-flow batch-size sweep.
	fig7Batches = []int{1, 4, 16, 64, 256, 1024, 4096}
	// fig10Sizes / fig10Flows / fig10Systems span Fig. 10's multi-flow grid.
	fig10Sizes   = []int{16, 4096, 65536}
	fig10Flows   = []int{1, 5, 10, 15, 20}
	fig10Systems = []steering.System{steering.Vanilla, steering.FalconDev, steering.MFlow}
	// appSystems are the systems the application benchmarks compare.
	appSystems = []steering.System{steering.Vanilla, steering.FalconDev, steering.MFlow}
	// fig12Systems is the CPU-balance comparison pair.
	fig12Systems = []steering.System{steering.FalconDev, steering.MFlow}
	// fig13Clients is the data-caching client sweep.
	fig13Clients = []int{1, 5, 10}
)

// fig10Scenario is the shared multi-flow scenario shape of Figs. 10/12.
func fig10Scenario(sys steering.System, size, flows int) overlay.Scenario {
	return overlay.Scenario{
		System: sys, Proto: skb.TCP, MsgSize: size,
		Flows: flows, KernelCores: 10, AppCores: 5,
	}
}

func sizeLabel(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dKB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}

// throughputTable renders one protocol's size×system throughput sweep.
func (r *Runner) throughputTable(id, title string, proto skb.Proto, systems []steering.System) *Table {
	t := &Table{ID: id, Title: title}
	t.Columns = []string{"msg size"}
	for _, s := range systems {
		t.Columns = append(t.Columns, s.String()+" (Gbps)")
	}
	for _, size := range MsgSizes {
		row := []string{sizeLabel(size)}
		for _, s := range systems {
			row = append(row, gbps(r.single(s, proto, size).Gbps))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// cpuNotes renders a per-core utilization breakdown for a scenario result.
func cpuNotes(label string, res *overlay.Result) []string {
	notes := []string{label + ":"}
	for _, line := range splitLines(metrics.FormatCPU(res.CPU)) {
		notes = append(notes, line)
	}
	return notes
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == '\n' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(c)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// Fig4 reproduces Fig. 4: single-flow throughput and CPU utilization of the
// state-of-the-art systems (no MFLOW yet — that is Fig. 8).
func (r *Runner) Fig4() []*Table {
	systems := fig4Systems
	tcp := r.throughputTable("fig4a-tcp", "Single-flow TCP throughput, state of the art", skb.TCP, systems)
	udp := r.throughputTable("fig4a-udp", "Single-flow UDP throughput, state of the art (3 clients)", skb.UDP, systems)

	cpu := &Table{ID: "fig4b", Title: "CPU utilization breakdown at 64KB (per core, per softirq)"}
	cpu.Columns = []string{"system", "kernel cores busy", "stddev (pp)"}
	for _, sys := range systems {
		res := r.single(sys, skb.TCP, 65536)
		hot := 0
		for _, c := range res.CPU[1:] {
			if c.Total > 0.10 {
				hot++
			}
		}
		cpu.Rows = append(cpu.Rows, []string{sys.String(), fmt.Sprintf("%d", hot), fmt.Sprintf("%.1f", res.KernelCPUStddev)})
		cpu.Notes = append(cpu.Notes, cpuNotes("TCP/"+sys.String(), res)...)
	}
	return []*Table{tcp, udp, cpu}
}

// Fig7 reproduces Fig. 7: out-of-order deliveries at the merge point versus
// the micro-flow batch size (TCP, 64KB messages).
func (r *Runner) Fig7() *Table {
	t := &Table{ID: "fig7", Title: "Out-of-order delivery vs micro-flow batch size (TCP 64KB)"}
	t.Columns = []string{"batch size", "OOO deliveries", "OOO segments", "reassembly switches", "throughput (Gbps)"}
	for _, b := range fig7Batches {
		res := r.run(overlay.Scenario{
			System: steering.MFlow, Proto: skb.TCP, MsgSize: 65536,
			MFlow: overlay.MFlowConfig{BatchSize: b},
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%d", res.OOOSKBs),
			fmt.Sprintf("%d", res.OOOSegments),
			fmt.Sprintf("%d", res.ReassemblySwitches),
			gbps(res.Gbps),
		})
	}
	t.Notes = append(t.Notes,
		"Paper: OOO work becomes negligible at batch >= 256; small batches also defeat GRO.")
	return t
}

// Fig8 reproduces Fig. 8: MFLOW against every baseline (8a) and its per-core
// CPU breakdown in the full-path (TCP) and device-scaling (UDP) layouts (8b).
func (r *Runner) Fig8() []*Table {
	tcp := r.throughputTable("fig8a-tcp", "Single-flow TCP throughput incl. MFLOW", skb.TCP, steering.Systems)
	udp := r.throughputTable("fig8a-udp", "Single-flow UDP throughput incl. MFLOW (3 clients)", skb.UDP, steering.Systems)

	// Headline ratios at 64KB.
	sum := &Table{ID: "fig8a-summary", Title: "Headline comparisons at 64KB (paper: TCP +81%/UDP +139% over vanilla; TCP 29.8 vs native 26.6)"}
	sum.Columns = []string{"metric", "paper", "measured"}
	gT := func(s steering.System) float64 { return r.single(s, skb.TCP, 65536).Gbps }
	gU := func(s steering.System) float64 { return r.single(s, skb.UDP, 65536).Gbps }
	sum.Rows = [][]string{
		{"TCP mflow vs vanilla", "+81%", pct(gT(steering.MFlow) / gT(steering.Vanilla))},
		{"UDP mflow vs vanilla", "+139%", pct(gU(steering.MFlow) / gU(steering.Vanilla))},
		{"TCP mflow vs falcon", "+22%", pct(gT(steering.MFlow) / gT(steering.FalconFunc))},
		{"UDP mflow vs falcon", "+21%", pct(gU(steering.MFlow) / gU(steering.FalconDev))},
		{"TCP mflow (Gbps)", "29.8", gbps(gT(steering.MFlow))},
		{"TCP native (Gbps)", "26.6", gbps(gT(steering.Native))},
	}

	cpu := &Table{ID: "fig8b", Title: "MFLOW per-core CPU breakdown at 64KB"}
	cpu.Columns = []string{"config", "GRO factor", "merge switches"}
	tcpRes := r.single(steering.MFlow, skb.TCP, 65536)
	udpRes := r.single(steering.MFlow, skb.UDP, 65536)
	cpu.Rows = [][]string{
		{"TCP full-path scaling", fmt.Sprintf("%.1f", tcpRes.GROFactor), fmt.Sprintf("%d", tcpRes.ReassemblySwitches)},
		{"UDP device scaling", fmt.Sprintf("%.1f", udpRes.GROFactor), fmt.Sprintf("%d", udpRes.ReassemblySwitches)},
	}
	cpu.Notes = append(cpu.Notes, cpuNotes("TCP full path", tcpRes)...)
	cpu.Notes = append(cpu.Notes, cpuNotes("UDP device scaling", udpRes)...)
	return []*Table{tcp, udp, sum, cpu}
}

// Fig9 reproduces Fig. 9: per-message latency under maximum load.
func (r *Runner) Fig9() []*Table {
	var tables []*Table
	for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
		t := &Table{
			ID:    fmt.Sprintf("fig9-%s", proto),
			Title: fmt.Sprintf("%s latency under max load (median / p99, µs)", proto),
		}
		t.Columns = []string{"msg size"}
		for _, s := range steering.Systems {
			t.Columns = append(t.Columns, s.String())
		}
		for _, size := range MsgSizes {
			row := []string{sizeLabel(size)}
			for _, s := range steering.Systems {
				res := r.single(s, proto, size)
				row = append(row, fmt.Sprintf("%.0f/%.0f",
					float64(res.Latency.Median())/1000,
					float64(res.Latency.P99())/1000))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"Paper: MFLOW cuts vanilla-overlay median latency ~46% and p99 ~21% at 64KB TCP.")
		tables = append(tables, t)
	}
	return tables
}

// Fig10 reproduces Fig. 10: multi-flow TCP throughput (5 app cores, 10
// kernel cores) for 16B / 4KB / 64KB messages.
func (r *Runner) Fig10() []*Table {
	flowCounts := fig10Flows
	systems := fig10Systems
	var tables []*Table
	for _, size := range fig10Sizes {
		t := &Table{
			ID:    fmt.Sprintf("fig10-%s", sizeLabel(size)),
			Title: fmt.Sprintf("Multi-flow TCP aggregate throughput, %s messages (Gbps)", sizeLabel(size)),
		}
		t.Columns = []string{"flows"}
		for _, s := range systems {
			t.Columns = append(t.Columns, s.String())
		}
		for _, n := range flowCounts {
			row := []string{fmt.Sprintf("%d", n)}
			for _, s := range systems {
				row = append(row, gbps(r.run(fig10Scenario(s, size, n)).Gbps))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"Paper: MFLOW's advantage shrinks as flows grow (24% @5 flows, 11% @10, 5% @20 for 4KB).")
		tables = append(tables, t)
	}
	return tables
}

// Fig12 reproduces Fig. 12: per-core CPU load balance under 10 concurrent
// 64KB TCP flows — FALCON vs MFLOW standard deviation.
func (r *Runner) Fig12() *Table {
	t := &Table{ID: "fig12", Title: "CPU load balance, 10 flows x 64KB TCP on 10 kernel cores"}
	t.Columns = []string{"system", "kernel CPU total (%)", "stddev (pp)", "throughput (Gbps)"}
	for _, s := range fig12Systems {
		res := r.run(fig10Scenario(s, 65536, 10))
		t.Rows = append(t.Rows, []string{
			s.String(),
			fmt.Sprintf("%.0f", res.KernelCPUTotal),
			fmt.Sprintf("%.1f", res.KernelCPUStddev),
			gbps(res.Gbps),
		})
		t.Notes = append(t.Notes, cpuNotes(s.String(), res)...)
	}
	t.Notes = append(t.Notes, "Paper: stddev of per-core utilization 20.5 (FALCON) vs 11.6 (MFLOW).")
	return t
}

// Fig11 reproduces Fig. 11: the web-serving benchmark (success operation
// rate, response time, delay time per operation type).
func (r *Runner) Fig11() []*Table {
	systems := appSystems
	results := map[steering.System]*apps.WebResult{}
	for _, s := range systems {
		results[s] = r.web(s)
	}
	ops := results[systems[0]].Ops

	succ := &Table{ID: "fig11a", Title: "Web serving: success operations/sec per op type"}
	resp := &Table{ID: "fig11b", Title: "Web serving: average response time (µs)"}
	delay := &Table{ID: "fig11c", Title: "Web serving: average delay time beyond target (µs)"}
	for _, t := range []*Table{succ, resp, delay} {
		t.Columns = []string{"operation"}
		for _, s := range systems {
			t.Columns = append(t.Columns, s.String())
		}
	}
	for i := range ops {
		rs := []string{ops[i].Name}
		rr := []string{ops[i].Name}
		rd := []string{ops[i].Name}
		for _, s := range systems {
			op := results[s].Ops[i]
			rs = append(rs, fmt.Sprintf("%.0f", op.SuccessPerSec))
			rr = append(rr, fmt.Sprintf("%.0f", float64(op.AvgResponse)/1000))
			rd = append(rd, fmt.Sprintf("%.0f", float64(op.AvgDelay)/1000))
		}
		succ.Rows = append(succ.Rows, rs)
		resp.Rows = append(resp.Rows, rr)
		delay.Rows = append(delay.Rows, rd)
	}
	succ.Notes = append(succ.Notes,
		fmt.Sprintf("Totals: vanilla=%.0f falcon=%.0f mflow=%.0f op/s (paper: MFLOW 2.3-7.5x vanilla, 1.5-3.6x FALCON)",
			results[steering.Vanilla].TotalSuccessPerSec,
			results[steering.FalconDev].TotalSuccessPerSec,
			results[steering.MFlow].TotalSuccessPerSec))
	resp.Notes = append(resp.Notes, "Paper: MFLOW cuts average response time 35-65% vs vanilla, 22-54% vs FALCON.")
	delay.Notes = append(delay.Notes, "Paper: MFLOW cuts average delay time up to 75% vs vanilla, 36-73% vs FALCON.")
	return []*Table{succ, resp, delay}
}

// Fig13 reproduces Fig. 13: the data-caching (memcached) benchmark's
// average and 99th-percentile latency for 1-10 clients.
func (r *Runner) Fig13() *Table {
	t := &Table{ID: "fig13", Title: "Data caching (memcached): request latency (avg / p99, µs)"}
	systems := appSystems
	t.Columns = []string{"clients"}
	for _, s := range systems {
		t.Columns = append(t.Columns, s.String())
	}
	for _, n := range fig13Clients {
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range systems {
			res := r.caching(s, n)
			row = append(row, fmt.Sprintf("%.0f/%.0f",
				float64(res.Avg)/1000, float64(res.P99)/1000))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"Paper: MFLOW cuts p99 26% at 1 client; avg/p99 48%/47% at 10 clients; 22%/33% vs FALCON.")
	return t
}

// queueStats digs the NIC-ring and worst-backlog depth series out of a
// result's observability snapshot (zeros if the run was not observed).
func queueStats(res *overlay.Result) (ringP99, ringMax int64, worst string, worstP99, worstMax int64) {
	worst = "-"
	// Iterate in sorted-name order: map order would make the worst-backlog
	// pick nondeterministic when two backlogs tie on both p99 and max.
	for _, name := range res.Obs.Names() {
		m := res.Obs[name]
		if !strings.HasPrefix(name, "queue_depth{queue=") {
			continue
		}
		q := strings.TrimSuffix(strings.TrimPrefix(name, "queue_depth{queue="), "}")
		switch {
		case strings.HasPrefix(q, "nic_ring"):
			if m.P99 > ringP99 {
				ringP99 = m.P99
			}
			if m.Max > ringMax {
				ringMax = m.Max
			}
		case strings.HasPrefix(q, "backlog:"):
			if m.P99 > worstP99 || (m.P99 == worstP99 && m.Max > worstMax) {
				worstP99, worstMax = m.P99, m.Max
				worst = strings.TrimPrefix(q, "backlog:")
			}
		}
	}
	return
}

// Queues reports sampled queue occupancy — NIC descriptor ring and the
// hottest softirq backlog — alongside throughput for every system at 64KB.
// This is the observability layer's view of the paper's §II argument: the
// serialized systems throttle with deep standing queues on one core, while
// MFLOW spreads shallower queues across the splitting cores.
func (r *Runner) Queues() *Table {
	t := &Table{ID: "queues", Title: "Sampled queue occupancy at 64KB (p99/max depth over the measured window)"}
	t.Columns = []string{"system", "proto", "Gbps", "ring p99/max", "hottest backlog", "backlog p99/max"}
	for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
		for _, s := range steering.Systems {
			res := r.runObserved(overlay.Scenario{System: s, Proto: proto, MsgSize: 65536})
			ringP99, ringMax, worst, wP99, wMax := queueStats(res)
			t.Rows = append(t.Rows, []string{
				s.String(), proto.String(), gbps(res.Gbps),
				fmt.Sprintf("%d/%d", ringP99, ringMax),
				worst,
				fmt.Sprintf("%d/%d", wP99, wMax),
			})
		}
	}
	t.Notes = append(t.Notes,
		"Depths are periodic simulated-time samples (obs queue-depth sampler); ring = NIC descriptor ring.")
	return t
}

// All regenerates every figure in paper order.
func (r *Runner) All() []*Table {
	var out []*Table
	out = append(out, r.Fig4()...)
	out = append(out, r.Fig7())
	out = append(out, r.Fig8()...)
	out = append(out, r.Fig9()...)
	out = append(out, r.Fig10()...)
	out = append(out, r.Fig11()...)
	out = append(out, r.Fig12())
	out = append(out, r.Fig13())
	out = append(out, r.Queues())
	out = append(out, r.Ablations()...)
	out = append(out, r.Extensions()...)
	return out
}
