package bench

import (
	"fmt"

	"mflow/internal/overlay"
	"mflow/internal/overload"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// overloadWindows match the chaos matrix: the figure is about control-law
// behavior under saturation, not statistical stability, so short windows
// keep the client sweep affordable.
const (
	overloadWarmup  = 2 * sim.Millisecond
	overloadMeasure = 6 * sim.Millisecond
)

// overloadClients is the offered-load sweep of the livelock curve.
var overloadClients = []int{1, 2, 4, 6, 8}

// overloadSystems are the systems the pressure table compares: the
// serialized baseline, classic RPS steering, and MFLOW's split path.
var overloadSystems = []steering.System{steering.Vanilla, steering.RPS, steering.MFlow}

// livelockScenario is one point of the receive-livelock curve: vanilla UDP
// under interrupt-per-frame delivery, with or without polling mitigation.
// Single-frame messages (1500B) make goodput proportional to delivered
// packets — the unit the original livelock experiment plots — instead of
// collapsing whenever one frame of a large message is shed.
func livelockScenario(clients int, mitigated bool) overlay.Scenario {
	return overlay.Scenario{
		System: steering.Vanilla, Proto: skb.UDP, MsgSize: 1500,
		UDPClients: clients,
		Warmup:     overloadWarmup, Measure: overloadMeasure,
		Overload: overload.LivelockConfig(mitigated),
	}
}

// pressureScenario is one cell of the pressure matrix: the full "pressure"
// profile (memory budget + CoDel AQM + degradation + watchdog) under 2x
// offered load.
func pressureScenario(sys steering.System, proto skb.Proto) overlay.Scenario {
	return overlay.Scenario{
		System: sys, Proto: proto, MsgSize: 65536,
		Window: 4096, UDPClients: 6,
		Warmup: overloadWarmup, Measure: overloadMeasure,
		Overload: overload.Profiles()["pressure"],
	}
}

// Overload builds the overload-control figure: the Mogul/Ramakrishnan
// receive-livelock curve (interrupt-per-frame throughput collapses with
// offered load; masked-IRQ polling plateaus), and the overload matrix under
// the "pressure" profile (memory budget, CoDel AQM, reassembler degradation
// and the stall watchdog) at 2x offered load.
func (r *Runner) Overload() []*Table {
	curve := &Table{
		ID:    "overload-livelock",
		Title: "Receive livelock: interrupt-per-frame vs polling mode (vanilla UDP, 1500B datagrams)",
		Columns: []string{"clients", "irq/frame Gbps", "polling Gbps",
			"irq/frame IRQs", "polling IRQs", "polling ring drops"},
	}
	for _, n := range overloadClients {
		raw := r.runObserved(livelockScenario(n, false))
		polled := r.runObserved(livelockScenario(n, true))
		curve.Rows = append(curve.Rows, []string{
			fmt.Sprintf("%d", n),
			gbps(raw.Gbps), gbps(polled.Gbps),
			fmt.Sprintf("%.0f", raw.Obs["nic_irqs"].Value),
			fmt.Sprintf("%.0f", polled.Obs["nic_irqs"].Value),
			fmt.Sprintf("%d", polled.DropsRing),
		})
	}
	curve.Notes = append(curve.Notes,
		"irq/frame charges the IRQ top half for every offered frame (no NAPI moderation): past saturation the core spends its cycles on interrupts for frames it then drops — the Mogul/Ramakrishnan livelock collapse.",
		"polling masks IRQs once softirq occupancy crosses the threshold and drains the ring on the NAPI budget, so goodput plateaus instead of collapsing; excess load is shed at the full descriptor ring without costing an interrupt (IRQ counts are measured-window; past saturation the mode engages during warmup and stays).")

	press := &Table{
		ID:    "overload-pressure",
		Title: "Overload control under 2x offered load (pressure profile: memory budget + CoDel + degradation + watchdog)",
		Columns: []string{"system", "proto", "Gbps", "adm drops", "aqm drops",
			"gated", "sojourn p99 (us)", "collapses", "restores", "resteers", "mem peak (KB)"},
	}
	for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
		for _, sys := range overloadSystems {
			res := r.run(pressureScenario(sys, proto))
			press.Rows = append(press.Rows, []string{
				sys.String(), proto.String(), gbps(res.Gbps),
				fmt.Sprintf("%d", res.DropsAdmission),
				fmt.Sprintf("%d", res.DropsAQM),
				fmt.Sprintf("%d", res.OverloadGated),
				fmt.Sprintf("%.0f", float64(res.AQMSojournP99)/1000),
				fmt.Sprintf("%d", res.DegradeCollapses),
				fmt.Sprintf("%d", res.DegradeRestores),
				fmt.Sprintf("%d", res.WatchdogResteers),
				fmt.Sprintf("%d", res.MemPeakBytes/1024),
			})
		}
	}
	press.Notes = append(press.Notes,
		"adm drops: frames rejected at NIC admission by the skb memory budget; gated: enqueues refused while critical pressure caps standing backlogs.",
		"frame conservation holds per run: offered == accepted + ring drops + adm drops.")
	return []*Table{curve, press}
}
