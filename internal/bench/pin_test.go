package bench

import (
	"fmt"
	"reflect"
	"testing"

	"mflow/internal/overlay"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// TestCommittedArtifactPin re-runs a handful of the committed BENCH_all.json
// scenarios at the artifact's own seed and windows and requires bit-exact
// agreement: the same cache key and the same run record. This is the
// in-tree guard that Scenario.Fabric (nil in every "all" run) left the
// single-host path untouched — CI's full `mflowinspect -compare` sweep
// covers the remaining runs.
func TestCommittedArtifactPin(t *testing.T) {
	if testing.Short() {
		t.Skip("re-runs full-window scenarios")
	}
	art, err := LoadArtifact("../../BENCH_all.json")
	if err != nil {
		t.Fatalf("committed artifact unreadable: %v", err)
	}
	byKey := map[string]RunRecord{}
	for _, rec := range art.Runs {
		byKey[rec.Key] = rec
	}
	r := &Runner{
		Warmup:  sim.Duration(art.WarmupMs * float64(sim.Millisecond)),
		Measure: sim.Duration(art.MeasureMs * float64(sim.Millisecond)),
		Seed:    art.Seed,
	}
	for _, sc := range []overlay.Scenario{
		{System: steering.Native, Proto: skb.TCP, MsgSize: 65536},
		{System: steering.MFlow, Proto: skb.TCP, MsgSize: 65536},
		{System: steering.RPS, Proto: skb.UDP, MsgSize: 65536},
		{System: steering.MFlow, Proto: skb.UDP, MsgSize: 65536},
	} {
		sc := sc
		t.Run(fmt.Sprintf("%v-%v", sc.System, sc.Proto), func(t *testing.T) {
			t.Parallel()
			key := r.normalize(sc).Key()
			rec, ok := byKey[key]
			if !ok {
				t.Fatalf("key missing from committed artifact — nil-Fabric key changed?\n  %s", key)
			}
			// Observed: the 64KB sweep overlaps the "queues" figure, so the
			// committed records carry queue-depth fields.
			got := runRecord(key, r.runObserved(sc))
			if !reflect.DeepEqual(got, rec) {
				t.Errorf("run record drifted from committed artifact:\n got %+v\nwant %+v", got, rec)
			}
		})
	}
}
