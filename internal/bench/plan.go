package bench

import (
	"mflow/internal/apps"
	"mflow/internal/fault"
	"mflow/internal/harness"
	"mflow/internal/obs"
	"mflow/internal/overlay"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// A plan enumerates every run a figure performs: the overlay scenario
// matrix plus the application-benchmark jobs (Figs. 11/13). Prefetch
// executes a plan on the harness worker pool before the figure is
// formatted, so the figure builder finds a warm cache and does pure
// serial formatting — the parallel path's output is byte-identical to
// the serial one.
//
// Plans mirror the loops in figures.go/ablations.go/extensions.go/
// chaos.go through the shared matrix variables; TestPlansCoverFigures
// asserts, for every figure, that the plan's key set equals the key set
// the figure actually consumed — a scenario added to a figure without
// its plan (or vice versa) fails the build's tests, not silently
// degrades to serial execution.
type plan struct {
	// runs are the overlay scenarios; observed entries additionally
	// require an obs registry even on a non-observing Runner (Queues).
	runs []plannedRun
	// web / caching are the application-benchmark jobs.
	web     []steering.System
	caching []cachingJob
}

type plannedRun struct {
	sc       overlay.Scenario
	observed bool
}

type cachingJob struct {
	sys     steering.System
	clients int
}

func (p *plan) add(scs ...overlay.Scenario) {
	for _, sc := range scs {
		p.runs = append(p.runs, plannedRun{sc: sc})
	}
}

func (p *plan) addObserved(scs ...overlay.Scenario) {
	for _, sc := range scs {
		p.runs = append(p.runs, plannedRun{sc: sc, observed: true})
	}
}

// merge appends q's jobs to p.
func (p *plan) merge(q plan) {
	p.runs = append(p.runs, q.runs...)
	p.web = append(p.web, q.web...)
	p.caching = append(p.caching, q.caching...)
}

// sizeSweep is the size×system×protocol matrix of Figs. 4, 8 and 9.
func sizeSweep(systems []steering.System) []overlay.Scenario {
	var out []overlay.Scenario
	for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
		for _, size := range MsgSizes {
			for _, s := range systems {
				out = append(out, overlay.Scenario{System: s, Proto: proto, MsgSize: size})
			}
		}
	}
	return out
}

// planFor returns the named figure's plan. Unknown figures yield an
// empty plan — Tables will reject the name anyway.
func planFor(fig string) plan {
	var p plan
	switch fig {
	case "4":
		p.add(sizeSweep(fig4Systems)...)
	case "7":
		for _, b := range fig7Batches {
			p.add(overlay.Scenario{
				System: steering.MFlow, Proto: skb.TCP, MsgSize: 65536,
				MFlow: overlay.MFlowConfig{BatchSize: b},
			})
		}
	case "8", "9":
		p.add(sizeSweep(steering.Systems)...)
	case "10":
		for _, size := range fig10Sizes {
			for _, n := range fig10Flows {
				for _, s := range fig10Systems {
					p.add(fig10Scenario(s, size, n))
				}
			}
		}
	case "11":
		p.web = append(p.web, appSystems...)
	case "12":
		for _, s := range fig12Systems {
			p.add(fig10Scenario(s, 65536, 10))
		}
	case "13":
		for _, n := range fig13Clients {
			for _, s := range appSystems {
				p.caching = append(p.caching, cachingJob{sys: s, clients: n})
			}
		}
	case "queues":
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			for _, s := range steering.Systems {
				p.addObserved(overlay.Scenario{System: s, Proto: proto, MsgSize: 65536})
			}
		}
	case "ablations":
		// AblationReassembly + AblationIRQSplit (TCP).
		p.add(mflowScenario(skb.TCP, overlay.MFlowConfig{}))
		p.add(mflowScenario(skb.TCP, overlay.MFlowConfig{PerPacketReorder: true}))
		p.add(mflowScenario(skb.TCP, overlay.MFlowConfig{FlowSplitOnly: true}))
		// AblationLateMerge (UDP, equal core budget).
		p.add(mflowScenario(skb.UDP, overlay.MFlowConfig{LateMerge: true, SplitCores: 3}))
		p.add(mflowScenario(skb.UDP, overlay.MFlowConfig{EarlyMerge: true, SplitCores: 2}))
		// AblationSplitCores.
		for _, n := range ablationSplitCores {
			p.add(mflowScenario(skb.UDP, overlay.MFlowConfig{SplitCores: n}))
		}
		// AblationCompletion.
		for _, n := range ablationCompletion {
			p.add(completionScenario(n))
		}
	case "extensions":
		for _, sys := range extSlimSystems {
			for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
				p.add(overlay.Scenario{System: sys, Proto: proto, MsgSize: 65536})
			}
		}
		for _, n := range extCopyThreads {
			p.add(copyThreadsScenario(n))
		}
		p.add(extAutoScenarios...)
		for _, sc := range extTXScenarios {
			p.add(sc)
			tx := sc
			tx.ModelTX = true
			p.add(tx)
		}
	case "chaos":
		profiles := fault.ChaosProfiles()
		names := chaosNames(profiles)
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			for _, sys := range steering.Systems {
				p.add(chaosScenario(sys, proto, nil))
				for _, name := range names {
					p.add(chaosScenario(sys, proto, profiles[name]))
				}
			}
		}
	case "overload":
		for _, n := range overloadClients {
			p.addObserved(livelockScenario(n, false))
			p.addObserved(livelockScenario(n, true))
		}
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			for _, sys := range overloadSystems {
				p.add(pressureScenario(sys, proto))
			}
		}
	case "wire":
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			for _, sys := range wireSystems {
				p.add(wireScenario(sys, proto, false))
				p.add(wireScenario(sys, proto, true))
			}
		}
		for _, sys := range []steering.System{steering.Vanilla, steering.RPS, steering.MFlow} {
			p.add(wireFabricScenario(sys))
		}
	case "fabric":
		for _, n := range fabricHosts {
			for _, sys := range fabricSystems {
				p.add(fabricScaleScenario(sys, n))
			}
		}
		for _, n := range fabricIncastHosts {
			p.add(fabricIncastScenario(n))
		}
	case "all":
		// All() runs figures in paper order; chaos, overload, fabric and
		// wire are separate (their scenarios carry fault plans / overload
		// configs / multi-host fabrics / wire bytes, so the committed
		// all-figure artifact stays disabled-path pure).
		for _, sub := range []string{"4", "7", "8", "9", "10", "11", "12", "13", "queues", "ablations", "extensions"} {
			p.merge(planFor(sub))
		}
	}
	return p
}

// workers resolves the Runner's pool width for Prefetch.
func (r *Runner) workers() int {
	if r.Parallel > 1 {
		return r.Parallel
	}
	return 1
}

// Prefetch executes every run the named figures need on the harness
// worker pool and fills the Runner's caches. Each job owns a value-copied
// scenario, its own seeded RNGs (derived from the scenario seed) and a
// private obs registry — no mutable state is shared across jobs — and
// results are aggregated back in submission order. Keys already cached
// and duplicates across figures are skipped before dispatch.
func (r *Runner) Prefetch(figs ...string) {
	type outcome struct {
		key      string
		observed bool
		res      *overlay.Result
		web      *apps.WebResult
		caching  *apps.CachingResult
	}
	type scJob struct {
		key      string
		sc       overlay.Scenario
		observed bool
	}

	var scJobs []scJob
	index := map[string]int{}
	var webJobs []steering.System
	var cachingJobs []cachingJob
	seenApp := map[string]bool{}

	for _, fig := range figs {
		p := planFor(fig)
		for _, pr := range p.runs {
			sc := r.normalize(pr.sc)
			key := sc.Key()
			if i, ok := index[key]; ok {
				// The same scenario may appear observed in one figure and
				// plain in another; the stronger requirement wins.
				if pr.observed {
					scJobs[i].observed = true
				}
				continue
			}
			if res, ok := r.cached(key); ok && (res.Obs != nil || !pr.observed) {
				continue
			}
			index[key] = len(scJobs)
			scJobs = append(scJobs, scJob{key: key, sc: sc, observed: pr.observed})
		}
		for _, sys := range p.web {
			key := webKey(r.webConfig(sys))
			r.mu.Lock()
			_, have := r.webs[key]
			r.mu.Unlock()
			if have || seenApp[key] {
				continue
			}
			seenApp[key] = true
			webJobs = append(webJobs, sys)
		}
		for _, cj := range p.caching {
			key := cachingKey(r.cachingConfig(cj.sys, cj.clients))
			r.mu.Lock()
			_, have := r.cachegs[key]
			r.mu.Unlock()
			if have || seenApp[key] {
				continue
			}
			seenApp[key] = true
			cachingJobs = append(cachingJobs, cj)
		}
	}

	var jobs []harness.Job[outcome]
	for _, j := range scJobs {
		j := j
		jobs = append(jobs, harness.Job[outcome]{Name: j.key, Run: func() outcome {
			sc := j.sc
			if r.Observe || j.observed {
				sc.Obs = obs.New() // private registry per job
			}
			return outcome{key: j.key, observed: j.observed, res: overlay.Run(sc)}
		}})
	}
	for _, sys := range webJobs {
		cfg := r.webConfig(sys)
		key := webKey(cfg)
		jobs = append(jobs, harness.Job[outcome]{Name: key, Run: func() outcome {
			return outcome{key: key, web: apps.RunWebServing(cfg)}
		}})
	}
	for _, cj := range cachingJobs {
		cfg := r.cachingConfig(cj.sys, cj.clients)
		key := cachingKey(cfg)
		jobs = append(jobs, harness.Job[outcome]{Name: key, Run: func() outcome {
			return outcome{key: key, caching: apps.RunDataCaching(cfg)}
		}})
	}
	if len(jobs) == 0 {
		return
	}
	for _, out := range harness.Run(r.workers(), jobs) {
		switch {
		case out.res != nil:
			r.store(out.key, out.res, out.observed)
		case out.web != nil:
			r.storeWeb(out.key, out.web)
		case out.caching != nil:
			r.storeCaching(out.key, out.caching)
		}
	}
}
