package bench

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"

	"mflow/internal/sim"
)

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// fastRunner keeps the full-figure tests affordable: the matrices are what
// matter, not statistical stability.
func fastRunner() *Runner {
	return &Runner{Warmup: 1 * sim.Millisecond, Measure: 2 * sim.Millisecond, Seed: 42}
}

// cacheKeys returns every overlay-scenario key the Runner has executed,
// plus app-benchmark keys.
func cacheKeys(r *Runner) map[string]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make(map[string]bool, len(r.cache)+len(r.webs)+len(r.cachegs))
	for k := range r.cache {
		keys[k] = true
	}
	for k := range r.webs {
		keys[k] = true
	}
	for k := range r.cachegs {
		keys[k] = true
	}
	return keys
}

// planKeys returns the key set planFor(fig) enumerates under r's defaults.
func planKeys(r *Runner, fig string) map[string]bool {
	p := planFor(fig)
	keys := map[string]bool{}
	for _, pr := range p.runs {
		keys[r.normalize(pr.sc).Key()] = true
	}
	for _, sys := range p.web {
		keys[webKey(r.webConfig(sys))] = true
	}
	for _, cj := range p.caching {
		keys[cachingKey(r.cachingConfig(cj.sys, cj.clients))] = true
	}
	return keys
}

// TestPlansCoverFigures pins each figure's prefetch plan to the runs the
// figure actually consumes: building the figure serially on a fresh Runner
// must populate exactly the plan's key set. A scenario added to a figure
// without its plan (or vice versa) fails here instead of silently running
// serially (or prefetching dead work).
func TestPlansCoverFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every figure")
	}
	for _, fig := range Figures {
		if fig == "all" {
			continue // union of the others; covered piecewise
		}
		fig := fig
		t.Run(fig, func(t *testing.T) {
			t.Parallel()
			r := fastRunner()
			if _, err := r.Tables(fig); err != nil {
				t.Fatal(err)
			}
			got, want := cacheKeys(r), planKeys(r, fig)
			for k := range want {
				if !got[k] {
					t.Errorf("plan enumerates a run the figure never executes:\n  %s", k)
				}
			}
			for k := range got {
				if !want[k] {
					t.Errorf("figure executed a run missing from its plan:\n  %s", k)
				}
			}
		})
	}
}

// renderAll builds fig with the given worker count and returns the full
// text rendering plus the artifact JSON bytes.
func renderAll(t *testing.T, fig string, workers int) (string, []byte) {
	t.Helper()
	r := fastRunner()
	r.Parallel = workers
	tables, err := r.Tables(fig)
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	for _, tab := range tables {
		text.WriteString(tab.Render())
		text.WriteByte('\n')
	}
	var buf bytes.Buffer
	if err := r.Artifact(fig, tables).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return text.String(), buf.Bytes()
}

// TestParallelMatchesSerialGolden is the harness's headline guarantee:
// for the same seed and windows, an 8-worker run renders byte-identical
// tables and artifact JSON to a serial run. The figures chosen cover the
// sweep cache (4), a single-table matrix (7), observed runs (queues), the
// app benchmarks (13) and shared-scenario dedup across builders (12).
func TestParallelMatchesSerialGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several figures twice")
	}
	for _, fig := range []string{"4", "7", "12", "13", "queues"} {
		fig := fig
		t.Run(fig, func(t *testing.T) {
			t.Parallel()
			serialText, serialJSON := renderAll(t, fig, 1)
			parText, parJSON := renderAll(t, fig, 8)
			if serialText != parText {
				t.Errorf("parallel table rendering diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serialText, parText)
			}
			if !bytes.Equal(serialJSON, parJSON) {
				t.Errorf("parallel artifact JSON diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serialJSON, parJSON)
			}
		})
	}
}

// TestRunnerSharedAcrossFigures exercises the shared-state fix: one Runner
// building several figures from concurrent goroutines (with a Prefetch
// racing alongside) must not trip the race detector and must produce the
// same tables as a serial build. Run with -race to get the full check.
func TestRunnerSharedAcrossFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several figures concurrently")
	}
	figs := []string{"7", "12", "queues"}

	serial := map[string]string{}
	rs := fastRunner()
	for _, fig := range figs {
		tables, err := rs.Tables(fig)
		if err != nil {
			t.Fatal(err)
		}
		var text strings.Builder
		for _, tab := range tables {
			text.WriteString(tab.Render())
		}
		serial[fig] = text.String()
	}

	r := fastRunner()
	r.Parallel = 4
	got := make([]string, len(figs))
	var wg sync.WaitGroup
	wg.Add(len(figs) + 1)
	go func() {
		defer wg.Done()
		r.Prefetch(figs...)
	}()
	for i, fig := range figs {
		i, fig := i, fig
		go func() {
			defer wg.Done()
			tables, err := r.Tables(fig)
			if err != nil {
				t.Error(err)
				return
			}
			var text strings.Builder
			for _, tab := range tables {
				text.WriteString(tab.Render())
			}
			got[i] = text.String()
		}()
	}
	wg.Wait()
	for i, fig := range figs {
		if got[i] != serial[fig] {
			t.Errorf("fig %s: concurrent build diverged from serial:\n--- serial ---\n%s\n--- concurrent ---\n%s", fig, serial[fig], got[i])
		}
	}
}

// TestCompareFlagsRegressions checks the artifact regression gate end to
// end: identical artifacts pass, a >tolerance throughput drop is flagged.
func TestCompareFlagsRegressions(t *testing.T) {
	r := fastRunner()
	tables, err := r.Tables("7")
	if err != nil {
		t.Fatal(err)
	}
	baseline := r.Artifact("7", tables)
	current := r.Artifact("7", tables)
	if regs := Compare(baseline, current, 0.10); len(regs) != 0 {
		t.Fatalf("identical artifacts flagged: %v", regs)
	}
	current.Runs[0].Gbps = baseline.Runs[0].Gbps * 0.5
	regs := Compare(baseline, current, 0.10)
	if len(regs) != 1 {
		t.Fatalf("want 1 regression, got %d: %v", len(regs), regs)
	}
	if regs[0].Key != baseline.Runs[0].Key || regs[0].Metric != "gbps" {
		t.Errorf("wrong regression flagged: %+v", regs[0])
	}
	// A drop within tolerance passes.
	current.Runs[0].Gbps = baseline.Runs[0].Gbps * 0.95
	if regs := Compare(baseline, current, 0.10); len(regs) != 0 {
		t.Errorf("5%% drop within 10%% tolerance flagged: %v", regs)
	}
}

// TestArtifactRoundTrip pins WriteJSON/LoadArtifact symmetry and the
// schema check.
func TestArtifactRoundTrip(t *testing.T) {
	r := fastRunner()
	tables, err := r.Tables("7")
	if err != nil {
		t.Fatal(err)
	}
	a := r.Artifact("7", tables)
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/BENCH_7.json"
	if err := writeFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	back, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != len(a.Runs) || back.Figure != "7" || back.Seed != 42 {
		t.Errorf("round trip mangled artifact: %d runs, fig %q, seed %d", len(back.Runs), back.Figure, back.Seed)
	}
	var rewrote bytes.Buffer
	if err := back.WriteJSON(&rewrote); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), rewrote.Bytes()) {
		t.Error("re-encoding a loaded artifact changed its bytes")
	}
	// Wrong schema is refused.
	if err := writeFile(path, bytes.Replace(buf.Bytes(), []byte(ArtifactSchema), []byte("mflow-bench/v0"), 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArtifact(path); err == nil {
		t.Error("mismatched schema accepted")
	}
}
