package bench

import (
	"fmt"
	"sync"

	"mflow/internal/apps"
	"mflow/internal/causal"
	"mflow/internal/obs"
	"mflow/internal/overlay"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// Runner executes and caches scenario runs so figures sharing sweeps
// (4/8/9) pay for them once. It is safe for concurrent use: figures may
// be built from multiple goroutines, and Prefetch fans a figure's whole
// scenario matrix out over the harness worker pool before the figure is
// formatted serially from the warm cache — which is why parallel output
// is byte-identical to a serial run with the same seed and windows.
type Runner struct {
	// Warmup / Measure control run windows (defaults 3ms / 12ms; use
	// longer windows for final numbers).
	Warmup  sim.Duration
	Measure sim.Duration
	// Seed fixes all runs.
	Seed uint64
	// Observe attaches a fresh obs.Registry to every run (NewRunner
	// enables it), so figure results carry queue-depth and per-stage
	// latency series alongside Gbps — see Queues().
	Observe bool
	// Parallel is the worker-pool width Tables uses to prefetch a
	// figure's scenario matrix. <= 1 keeps the classic serial path;
	// harness.DefaultWorkers() (GOMAXPROCS) is the natural setting.
	// Determinism does not depend on it.
	Parallel int
	// Causal attaches a fresh causal profiler to every run, so results and
	// artifact records carry per-(kind, stage) latency breakdowns. Probes
	// never perturb measured numbers; off by default so standard artifacts
	// stay byte-identical.
	Causal bool

	mu      sync.Mutex
	cache   map[string]*overlay.Result
	webs    map[string]*apps.WebResult
	cachegs map[string]*apps.CachingResult
}

// NewRunner returns a Runner with default windows and observability on.
func NewRunner() *Runner {
	return &Runner{Warmup: 3 * sim.Millisecond, Measure: 12 * sim.Millisecond, Observe: true}
}

// normalize applies the Runner's default windows and seed to a scenario,
// by value: job construction copies everything it needs, so pool workers
// never share mutable state with the Runner or with each other. The
// result is what both the cache key and the job are built from.
func (r *Runner) normalize(sc overlay.Scenario) overlay.Scenario {
	if sc.Warmup == 0 {
		sc.Warmup = r.Warmup
	}
	if sc.Measure == 0 {
		sc.Measure = r.Measure
	}
	if sc.Seed == 0 {
		sc.Seed = r.Seed
	}
	return sc
}

// cached returns the result stored for key, if any.
func (r *Runner) cached(key string) (*overlay.Result, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.cache[key]
	return res, ok
}

// store records res under key and returns the cache's winner. Without
// overwrite the first stored result wins (runs are deterministic, so any
// two results for one key are identical — keeping the first avoids
// re-pointing callers); overwrite replaces a result that lacks the obs
// registry an observed re-run carries.
func (r *Runner) store(key string, res *overlay.Result, overwrite bool) *overlay.Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cache == nil {
		r.cache = make(map[string]*overlay.Result)
	}
	if prev, ok := r.cache[key]; ok && !overwrite {
		return prev
	}
	r.cache[key] = res
	return res
}

func (r *Runner) run(sc overlay.Scenario) *overlay.Result {
	sc = r.normalize(sc)
	// The key is computed before a registry is attached: a fresh registry
	// pointer per run must not defeat caching.
	key := sc.Key()
	if res, ok := r.cached(key); ok {
		return res
	}
	if r.Observe && sc.Obs == nil {
		sc.Obs = obs.New()
	}
	return r.store(key, overlay.RunProbed(sc, r.probes()), false)
}

// SchedTelemetry sums scheduler self-accounting over every cached overlay
// run (counters add, peak heap depth takes the max) and returns the total
// wire segments those runs delivered, the denominator for a
// heap-ops-per-packet figure. Application-level runs (web serving, data
// caching) are not included — they drive their own schedulers.
func (r *Runner) SchedTelemetry() (st sim.SchedStats, segments uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, res := range r.cache {
		st.Merge(res.Sched)
		segments += res.DeliveredSegments
	}
	return st, segments
}

// probes returns a fresh per-run probe set when causal attribution is on.
// One profiler per run: packet ids restart with each scheduler.
func (r *Runner) probes() overlay.Probes {
	if !r.Causal {
		return overlay.Probes{}
	}
	return overlay.Probes{Causal: causal.NewProfiler()}
}

// runObserved is run with a per-call observability guarantee: the result
// always carries an obs snapshot, re-running an unobserved cache entry if
// needed. Queues uses it instead of flipping r.Observe mid-matrix — the
// old implementation mutated shared Runner state between runs and would
// race once figures execute concurrently.
func (r *Runner) runObserved(sc overlay.Scenario) *overlay.Result {
	sc = r.normalize(sc)
	key := sc.Key()
	if res, ok := r.cached(key); ok && res.Obs != nil {
		return res
	}
	sc.Obs = obs.New()
	return r.store(key, overlay.RunProbed(sc, r.probes()), true)
}

func (r *Runner) single(sys steering.System, proto skb.Proto, size int) *overlay.Result {
	return r.run(overlay.Scenario{System: sys, Proto: proto, MsgSize: size})
}

// webConfig is the Fig. 11 configuration for one system; the doubled
// measure window matches the application benchmark's original setup.
func (r *Runner) webConfig(sys steering.System) apps.WebConfig {
	return apps.WebConfig{
		System: sys,
		Warmup: r.Warmup, Measure: 2 * r.Measure,
		Seed: r.Seed,
	}
}

func webKey(cfg apps.WebConfig) string {
	return fmt.Sprintf("web|sys=%v|warmup=%d|measure=%d|seed=%d",
		cfg.System, cfg.Warmup, cfg.Measure, cfg.Seed)
}

// web memoizes RunWebServing the way run memoizes overlay scenarios.
func (r *Runner) web(sys steering.System) *apps.WebResult {
	cfg := r.webConfig(sys)
	key := webKey(cfg)
	r.mu.Lock()
	res, ok := r.webs[key]
	r.mu.Unlock()
	if ok {
		return res
	}
	return r.storeWeb(key, apps.RunWebServing(cfg))
}

func (r *Runner) storeWeb(key string, res *apps.WebResult) *apps.WebResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.webs == nil {
		r.webs = make(map[string]*apps.WebResult)
	}
	if prev, ok := r.webs[key]; ok {
		return prev
	}
	r.webs[key] = res
	return res
}

// cachingConfig is the Fig. 13 configuration for one system/client count.
func (r *Runner) cachingConfig(sys steering.System, clients int) apps.CachingConfig {
	return apps.CachingConfig{
		System: sys, Clients: clients,
		Warmup: r.Warmup, Measure: r.Measure,
		Seed: r.Seed,
	}
}

func cachingKey(cfg apps.CachingConfig) string {
	return fmt.Sprintf("caching|sys=%v|clients=%d|warmup=%d|measure=%d|seed=%d",
		cfg.System, cfg.Clients, cfg.Warmup, cfg.Measure, cfg.Seed)
}

// caching memoizes RunDataCaching.
func (r *Runner) caching(sys steering.System, clients int) *apps.CachingResult {
	cfg := r.cachingConfig(sys, clients)
	key := cachingKey(cfg)
	r.mu.Lock()
	res, ok := r.cachegs[key]
	r.mu.Unlock()
	if ok {
		return res
	}
	return r.storeCaching(key, apps.RunDataCaching(cfg))
}

func (r *Runner) storeCaching(key string, res *apps.CachingResult) *apps.CachingResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cachegs == nil {
		r.cachegs = make(map[string]*apps.CachingResult)
	}
	if prev, ok := r.cachegs[key]; ok {
		return prev
	}
	r.cachegs[key] = res
	return res
}

// Figures lists every figure identifier Tables accepts, in paper order.
var Figures = []string{"4", "7", "8", "9", "10", "11", "12", "13", "queues", "ablations", "extensions", "chaos", "overload", "fabric", "wire", "all"}

// Tables builds the named figure's tables. When r.Parallel > 1, the
// figure's scenario matrix (see plan.go) is first executed on the harness
// worker pool; formatting then reads the warm cache serially, keeping the
// output byte-identical to a fully serial run.
func (r *Runner) Tables(fig string) ([]*Table, error) {
	if r.Parallel > 1 {
		r.Prefetch(fig)
	}
	switch fig {
	case "4":
		return r.Fig4(), nil
	case "7":
		return []*Table{r.Fig7()}, nil
	case "8":
		return r.Fig8(), nil
	case "9":
		return r.Fig9(), nil
	case "10":
		return r.Fig10(), nil
	case "11":
		return r.Fig11(), nil
	case "12":
		return []*Table{r.Fig12()}, nil
	case "13":
		return []*Table{r.Fig13()}, nil
	case "queues":
		return []*Table{r.Queues()}, nil
	case "ablations":
		return r.Ablations(), nil
	case "extensions":
		return r.Extensions(), nil
	case "chaos":
		return r.Chaos(), nil
	case "overload":
		return r.Overload(), nil
	case "fabric":
		return r.Fabric(), nil
	case "wire":
		return r.Wire(), nil
	case "all":
		return r.All(), nil
	}
	return nil, fmt.Errorf("bench: unknown figure %q", fig)
}
