// Package bench regenerates every measured table and figure of the paper's
// evaluation (§V): single-flow throughput and CPU breakdowns (Figs. 4, 8),
// the batch-size/out-of-order study (Fig. 7), latency under load (Fig. 9),
// multi-flow scaling (Fig. 10), CPU balance (Fig. 12), and the two
// application benchmarks (Figs. 11, 13), plus ablations over MFLOW's design
// choices. Each experiment returns a Table renderable as text or CSV.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's rendered result.
type Table struct {
	// ID is the figure identifier ("fig8a-tcp"); Title describes it.
	ID    string
	Title string
	// Columns and Rows are the tabular data (all strings, pre-formatted).
	Columns []string
	Rows    [][]string
	// Notes carry free-form lines printed under the table (CPU
	// breakdowns, paper-vs-measured commentary).
	Notes []string
}

// Render returns an aligned plain-text rendering.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// CSV returns a comma-separated rendering (quotes-free fields assumed).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// gbps formats a throughput cell.
func gbps(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a relative change cell ("+81%").
func pct(ratio float64) string { return fmt.Sprintf("%+.0f%%", (ratio-1)*100) }
