package bench

import (
	"fmt"

	"mflow/internal/fabric"
	"mflow/internal/overlay"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// Short windows, like chaos/overload/fabric: the wire figure is about
// byte-path integrity and model invariance, not statistical stability.
const (
	wireWarmup  = 2 * sim.Millisecond
	wireMeasure = 6 * sim.Millisecond
)

// wireSystems spans the steering spectrum the byte path must survive:
// host networking (no encap), the serialized overlay baseline, classic
// RPS and MFLOW's split path.
var wireSystems = []steering.System{steering.Native, steering.Vanilla, steering.RPS, steering.MFlow}

// wireScenario is one cell of the wire matrix: the standard 64KB message
// workload with real bytes attached when wire is true.
func wireScenario(sys steering.System, proto skb.Proto, wire bool) overlay.Scenario {
	return overlay.Scenario{
		System: sys, Proto: proto, MsgSize: 65536,
		WireMode: wire,
		Warmup:   wireWarmup, Measure: wireMeasure,
	}
}

// wireFabricScenario sends two wire-bearing flows across a two-host
// fabric, so the bytes also traverse the VTEP push and the remote
// validated pull.
func wireFabricScenario(sys steering.System) overlay.Scenario {
	sc := wireScenario(sys, skb.TCP, true)
	sc.Flows = 2
	sc.Fabric = &fabric.Config{Hosts: 2}
	return sc
}

// Wire builds the zero-copy byte-path figure: every run in the matrix
// carries real frames — payloads written into headroom-reserved arenas,
// headers pushed in place, GRO chaining frag references, decap a
// validated pull — and the integrity columns must read zero. The
// synthetic columns double as the model-invariance check: attaching
// bytes must not move Gbps, because skb contents are timing-inert.
//
// This figure is deliberately not part of `-fig all`, so the committed
// all-figure artifact stays byte-identical across byte-path work.
func (r *Runner) Wire() []*Table {
	single := &Table{
		ID:    "wire-integrity",
		Title: "Wire mode: end-to-end byte integrity and model invariance (64KB messages)",
		Columns: []string{"system", "proto", "synthetic Gbps", "wire Gbps",
			"wire/synthetic", "wire errors", "GRO factor"},
	}
	for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
		for _, sys := range wireSystems {
			syn := r.run(wireScenario(sys, proto, false))
			wire := r.run(wireScenario(sys, proto, true))
			single.Rows = append(single.Rows, []string{
				fmt.Sprint(sys),
				fmt.Sprint(proto),
				gbps(syn.Gbps),
				gbps(wire.Gbps),
				fmt.Sprintf("%.3f", wire.Gbps/syn.Gbps),
				fmt.Sprintf("%d", wire.WireErrors),
				fmt.Sprintf("%.2f", wire.GROFactor),
			})
		}
	}
	single.Notes = append(single.Notes,
		"wire/synthetic must stay within noise of 1.000: frame bytes ride the same skbs the synthetic run schedules, and stage costs depend only on Segs/WireLen, so the byte path may not perturb the performance model.",
		"wire errors counts decap failures plus socket payload-verification failures over the measured window; any nonzero value is a byte-path bug, not a statistic.")

	fab := &Table{
		ID:    "wire-fabric",
		Title: "Wire mode across a 2-host fabric (TCP 64KB, two flows): VTEP in-place encap, remote validated decap",
		Columns: []string{"system", "Gbps", "wire errors", "underlay frames",
			"GRO factor"},
	}
	for _, sys := range []steering.System{steering.Vanilla, steering.RPS, steering.MFlow} {
		res := r.run(wireFabricScenario(sys))
		fab.Rows = append(fab.Rows, []string{
			fmt.Sprint(sys),
			gbps(res.Gbps),
			fmt.Sprintf("%d", res.WireErrors),
			fmt.Sprintf("%d", res.UnderlaySent),
			fmt.Sprintf("%.2f", res.GROFactor),
		})
	}
	fab.Notes = append(fab.Notes,
		"the sender reserves outer-header headroom when it lays down the inner frame, so the TX host's VTEP push is an O(1) pointer move — crossing the fabric adds no copy.",
		"decap on the owner host validates every chained GRO part before trimming any of them; an error would leave the super-packet whole and count here.")
	return []*Table{single, fab}
}
