// Package benchgate parses `go test -bench` output and compares it against
// a committed baseline, so CI can fail on engine performance regressions:
// a >tolerance increase in time/op, or any increase at all in allocs/op —
// the engine's allocation discipline is exact, so it is gated exactly.
package benchgate

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Result is one benchmark line's measurements. Bytes and Allocs are -1 when
// the run lacked -benchmem.
type Result struct {
	Name        string
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp int64
}

// Parse reads `go test -bench` output and returns results keyed by
// benchmark name (the -GOMAXPROCS suffix stripped, so baselines transfer
// across machines).
func Parse(r io.Reader) (map[string]Result, error) {
	out := map[string]Result{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		res := Result{Name: trimProcs(fields[0]), BytesPerOp: -1, AllocsPerOp: -1}
		ok := false
		for i := 2; i < len(fields); i++ {
			v := fields[i-1]
			switch fields[i] {
			case "ns/op":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op %q in %q", v, line)
				}
				res.NsPerOp, ok = f, true
			case "B/op":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("bad B/op %q in %q", v, line)
				}
				res.BytesPerOp = f
			case "allocs/op":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op %q in %q", v, line)
				}
				res.AllocsPerOp = n
			}
		}
		if ok {
			out[res.Name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// trimProcs drops the trailing -N GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Compare returns one human-readable regression per violated gate:
// benchmarks missing from current, time/op beyond baseline*(1+tolerance),
// or allocs/op above baseline at all. Benchmarks only in current are new
// and pass (commit a refreshed baseline to start gating them).
func Compare(baseline, current map[string]Result, tolerance float64) []string {
	var regs []string
	for _, name := range sortedNames(baseline) {
		base := baseline[name]
		cur, found := current[name]
		if !found {
			regs = append(regs, fmt.Sprintf("%s: present in baseline but not in current run", name))
			continue
		}
		if limit := base.NsPerOp * (1 + tolerance); cur.NsPerOp > limit {
			regs = append(regs, fmt.Sprintf("%s: time/op %.1fns -> %.1fns (+%.0f%%, tolerance %.0f%%)",
				name, base.NsPerOp, cur.NsPerOp, (cur.NsPerOp/base.NsPerOp-1)*100, tolerance*100))
		}
		if base.AllocsPerOp >= 0 && cur.AllocsPerOp > base.AllocsPerOp {
			regs = append(regs, fmt.Sprintf("%s: allocs/op %d -> %d (any increase fails)",
				name, base.AllocsPerOp, cur.AllocsPerOp))
		}
	}
	return regs
}

// Report renders the side-by-side comparison for every baselined benchmark.
func Report(w io.Writer, baseline, current map[string]Result) {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tbase ns/op\tcur ns/op\tbase allocs\tcur allocs\n")
	for _, name := range sortedNames(baseline) {
		base := baseline[name]
		cur, found := current[name]
		if !found {
			fmt.Fprintf(tw, "%s\t%.1f\t(missing)\t%s\t-\n", name, base.NsPerOp, allocs(base))
			continue
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%s\t%s\n", name, base.NsPerOp, cur.NsPerOp, allocs(base), allocs(cur))
	}
	tw.Flush()
}

func allocs(r Result) string {
	if r.AllocsPerOp < 0 {
		return "-"
	}
	return strconv.FormatInt(r.AllocsPerOp, 10)
}

func sortedNames(m map[string]Result) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
