package benchgate

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mflow/internal/sim
BenchmarkScheduler-8        	 3595329	        62.27 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedulerClosure-8 	 2416280	        94.49 ns/op	      16 B/op	       1 allocs/op
BenchmarkCoreExec           	 9999999	       101.0 ns/op
PASS
ok  	mflow/internal/sim	4.005s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	s := got["BenchmarkScheduler"]
	if s.NsPerOp != 62.27 || s.AllocsPerOp != 0 || s.BytesPerOp != 0 {
		t.Errorf("BenchmarkScheduler parsed as %+v", s)
	}
	c := got["BenchmarkCoreExec"]
	if c.NsPerOp != 101.0 || c.AllocsPerOp != -1 || c.BytesPerOp != -1 {
		t.Errorf("benchmark without -benchmem parsed as %+v", c)
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkScheduler-8":    "BenchmarkScheduler",
		"BenchmarkScheduler-128":  "BenchmarkScheduler",
		"BenchmarkScheduler":      "BenchmarkScheduler",
		"BenchmarkEndToEnd/a-b-4": "BenchmarkEndToEnd/a-b",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareGates(t *testing.T) {
	base := map[string]Result{
		"A": {Name: "A", NsPerOp: 100, AllocsPerOp: 0},
		"B": {Name: "B", NsPerOp: 100, AllocsPerOp: 2},
		"C": {Name: "C", NsPerOp: 100, AllocsPerOp: 1},
	}
	cur := map[string]Result{
		"A": {Name: "A", NsPerOp: 115, AllocsPerOp: 0}, // within 20% time, allocs equal: ok
		"B": {Name: "B", NsPerOp: 130, AllocsPerOp: 2}, // time regression
		"C": {Name: "C", NsPerOp: 90, AllocsPerOp: 2},  // alloc regression despite faster
		"D": {Name: "D", NsPerOp: 1, AllocsPerOp: 99},  // new benchmark: not gated
	}
	regs := Compare(base, cur, 0.20)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	if !strings.Contains(regs[0], "B: time/op") {
		t.Errorf("first regression %q, want B time/op", regs[0])
	}
	if !strings.Contains(regs[1], "C: allocs/op 1 -> 2") {
		t.Errorf("second regression %q, want C allocs/op", regs[1])
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := map[string]Result{"A": {Name: "A", NsPerOp: 100, AllocsPerOp: 0}}
	regs := Compare(base, map[string]Result{}, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "not in current") {
		t.Fatalf("missing benchmark not flagged: %v", regs)
	}
}

func TestReportRenders(t *testing.T) {
	base := map[string]Result{"A": {Name: "A", NsPerOp: 100, AllocsPerOp: 0}}
	cur := map[string]Result{"A": {Name: "A", NsPerOp: 90, AllocsPerOp: 0}}
	var sb strings.Builder
	Report(&sb, base, cur)
	out := sb.String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "90.0") {
		t.Errorf("report missing data:\n%s", out)
	}
}
