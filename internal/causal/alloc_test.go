package causal

import (
	"testing"

	"mflow/internal/skb"
)

// BenchmarkCausalOff pins the cost of the disabled profiler: every hook the
// hot path can reach, called through nil receivers exactly as an unprobed
// run calls them. The benchgate baseline pins this at 0 allocs/op — the
// probes must be free when off.
func BenchmarkCausalOff(b *testing.B) {
	var p *Profiler
	var fr *FlightRecorder
	s := &skb.SKB{PktID: 1, FlowID: 1, Segs: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MarkWait(s, "stage", 10, true, false, 3)
		p.Mark(s, SegService, "stage", 20)
		p.MarkBlame(s, "reassembler", 30, 2)
		p.NoteIdleWake(s)
		p.NoteBatched(s)
		p.MarkServe(s, 40, 50)
		p.Complete(s, 60)
		p.Drop(s, 60, "x")
		p.Absorb(s)
		fr.Trigger("drop-ring", 1, 1, 60)
	}
}
