// Package causal is the per-packet critical-path profiler: it decomposes
// each skb's end-to-end latency into exclusive wall-clock segments — NIC
// ring wait, per-stage queueing vs. service, steering/IPI handoff cost, GRO
// hold, reassembler reorder-wait (with blame attributed to the packet whose
// arrival filled the hole), socket backlog wait, and delivery copy — and
// checks conservation: a packet's segments tile [ArrivedAt, delivered]
// exactly, so they sum to its end-to-end latency with zero residual
// (simulated time is integer nanoseconds; the check is exact, not
// approximate).
//
// The profiler is an observation layer only: it never schedules events,
// charges cores, or mutates skbs beyond the skb.CP record slot, so a probed
// run produces byte-identical results to an unprobed one. All methods
// tolerate a nil receiver — call sites gate on a single nil check and the
// disabled path costs nothing else (pinned by BenchmarkCausalOff).
package causal

import (
	"fmt"
	"sort"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

// SegKind classifies one exclusive latency segment.
type SegKind uint8

// The segment taxonomy (DESIGN.md §9). Every nanosecond of a packet's
// in-stack lifetime belongs to exactly one kind.
const (
	// SegRingWait is time parked in the NIC descriptor ring before the
	// driver softirq first touched the frame (IRQ delay + NAPI backlog).
	SegRingWait SegKind = iota
	// SegQueue is time waiting in a softirq/backlog queue for the stage's
	// core, after any handoff latency has been split off.
	SegQueue
	// SegService is time the packet itself was being processed on a core
	// (device costs, per-stage work).
	SegService
	// SegHandoff is cross-core steering latency: the IPI/softirq-raise
	// window between an enqueue that woke an idle worker and the poll
	// becoming runnable, plus FALCON's explicit per-skb pipeline handoff.
	SegHandoff
	// SegGROHold is time a packet already on a core waited inside a GRO
	// batch for coalescing to finish before phase-2 processing.
	SegGROHold
	// SegReorderWait is time parked behind a missing predecessor — in the
	// MFLOW reassembler or the TCP OFO queue. Blame carries the packet id
	// whose arrival released it (0: a gap-timeout or flush did).
	SegReorderWait
	// SegSockWait is time in the socket receive backlog before the
	// delivery-copy worker served the packet.
	SegSockWait
	// SegCopy is the socket delivery copy (for MFLOW TCP this includes
	// the TCP processing folded into the copy thread's cost).
	SegCopy
	// SegOther is the residual closing a timeline whose final event is
	// not an instrumented boundary (kept so conservation always holds).
	SegOther
)

// String names the segment kind as rendered in breakdown tables.
func (k SegKind) String() string {
	switch k {
	case SegRingWait:
		return "ring-wait"
	case SegQueue:
		return "queue"
	case SegService:
		return "service"
	case SegHandoff:
		return "handoff"
	case SegGROHold:
		return "gro-hold"
	case SegReorderWait:
		return "reorder-wait"
	case SegSockWait:
		return "sock-wait"
	case SegCopy:
		return "copy"
	case SegOther:
		return "other"
	}
	return fmt.Sprintf("seg(%d)", int(k))
}

// Segment is one exclusive interval of a packet's timeline.
type Segment struct {
	Kind  SegKind
	Stage string
	Start sim.Time
	End   sim.Time
	// Blame, for SegReorderWait, is the packet id whose arrival released
	// the wait (the hole's filler); 0 means no single packet — a
	// gap-timeout or end-of-run flush did.
	Blame uint64
}

// Dur returns the segment's length.
func (s Segment) Dur() sim.Duration { return s.End.Sub(s.Start) }

// Outcome is how a packet record was closed.
type Outcome uint8

// Record outcomes.
const (
	// Delivered: the packet reached userspace (the socket tap).
	Delivered Outcome = iota
	// Absorbed: GRO merged the packet into a preceding super-packet; its
	// remaining lifetime is accounted on the absorbing head.
	Absorbed
	// Dropped: an admission queue, the wire, or a discard path ate it.
	Dropped
)

// Rec is one packet's attribution record. It lives in skb.CP while the
// packet is in flight and is recycled through the profiler's freelist once
// closed (unless retained as a tail exemplar).
type Rec struct {
	// Pkt is the NIC arrival id the record is keyed on — pool reuse is
	// detected by comparing it against skb.PktID, never by pointer.
	Pkt  uint64
	Flow uint64
	Seq  uint64
	Segs int

	Arrived sim.Time
	Done    sim.Time
	Outcome Outcome
	// Where names the drop point when Outcome == Dropped.
	Where string

	// Timeline is the exclusive segment decomposition; segments are
	// contiguous and tile [Arrived, Done] exactly.
	Timeline []Segment

	// last is the attribution cursor: everything before it is already
	// classified. Marks extend it monotonically.
	last sim.Time
	// wake notes that the most recent enqueue woke an idle worker, so the
	// head of the next wait is handoff (IPI/softirq raise), not queueing.
	wake bool
	// batched notes the packet finished a stage's phase-1 work and is
	// held inside the poll batch (GRO coalescing window).
	batched bool
}

// E2E returns the packet's end-to-end in-stack latency.
func (r *Rec) E2E() sim.Duration { return r.Done.Sub(r.Arrived) }

// KindStat is one (segment kind, stage) aggregate of a run's breakdown.
type KindStat struct {
	Kind  SegKind
	Stage string
	// Count is the number of segments aggregated; Total their summed
	// duration; Max the longest single segment.
	Count uint64
	Total sim.Duration
	Max   sim.Duration
}

type aggKey struct {
	kind  SegKind
	stage string
}

// DefaultExemplarsPerFlow is how many slowest-packet timelines each flow
// retains when Profiler.ExemplarsPerFlow is unset.
const DefaultExemplarsPerFlow = 3

// Profiler accumulates per-packet attribution for one run. It is not safe
// for concurrent use (the simulator is single-goroutine per run) and must
// not be shared across runs whose packet ids restart.
type Profiler struct {
	// ExemplarsPerFlow is the k of tail-exemplar capture: the k slowest
	// delivered packets per flow keep their full timelines (<= 0 means
	// DefaultExemplarsPerFlow).
	ExemplarsPerFlow int
	// OnComplete, if set, observes every delivered packet's closed record
	// before aggregation (the conservation property test re-sums there).
	// The record is only valid for the duration of the call.
	OnComplete func(*Rec)

	// DeliveredPkts / AbsorbedPkts / DroppedPkts count closed records by
	// outcome; SumE2E totals delivered end-to-end latency.
	DeliveredPkts uint64
	AbsorbedPkts  uint64
	DroppedPkts   uint64
	SumE2E        sim.Duration

	agg       map[aggKey]*KindStat
	exemplars map[uint64][]*Rec

	violations     uint64
	firstViolation string

	free []*Rec
}

// NewProfiler returns a profiler with defaults.
func NewProfiler() *Profiler { return &Profiler{} }

// violate records a conservation/monotonicity violation. Violations mean an
// instrumentation bug, never a property of the simulated workload; tests
// assert the count stays zero.
func (p *Profiler) violate(format string, args ...any) {
	p.violations++
	if p.firstViolation == "" {
		p.firstViolation = fmt.Sprintf(format, args...)
	}
}

// Violations returns the number of attribution violations observed.
func (p *Profiler) Violations() uint64 {
	if p == nil {
		return 0
	}
	return p.violations
}

// FirstViolation describes the first violation ("" if none).
func (p *Profiler) FirstViolation() string {
	if p == nil {
		return ""
	}
	return p.firstViolation
}

// getRec pops a recycled record or allocates one.
func (p *Profiler) getRec() *Rec {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		tl := r.Timeline[:0]
		*r = Rec{Timeline: tl}
		return r
	}
	return &Rec{}
}

// recycle returns a closed record to the freelist.
func (p *Profiler) recycle(r *Rec) { p.free = append(p.free, r) }

// rec returns the packet's live record, creating one anchored at ArrivedAt
// on first touch. A record keyed to a different PktID (skb pool aliasing —
// a component retained the skb past a terminal Put) is a violation; the
// stale record is abandoned and a fresh one started.
func (p *Profiler) rec(s *skb.SKB) *Rec {
	if r, ok := s.CP.(*Rec); ok {
		if r.Pkt == s.PktID {
			return r
		}
		p.violate("pkt %d inherited record of pkt %d (skb pool aliasing)", s.PktID, r.Pkt)
	}
	r := p.getRec()
	r.Pkt, r.Flow, r.Seq, r.Segs = s.PktID, s.FlowID, s.Seq, s.Segs
	r.Arrived, r.last = s.ArrivedAt, s.ArrivedAt
	s.CP = r
	return r
}

// push appends [r.last, to) as one segment and advances the cursor.
// Zero-length segments are skipped; a backwards mark is a violation.
func (p *Profiler) push(r *Rec, kind SegKind, stage string, to sim.Time, blame uint64) {
	if to < r.last {
		p.violate("pkt %d: %v mark at %v behind cursor %v (stage %s)", r.Pkt, kind, to, r.last, stage)
		return
	}
	if to == r.last {
		return
	}
	r.Timeline = append(r.Timeline, Segment{Kind: kind, Stage: stage, Start: r.last, End: to, Blame: blame})
	r.last = to
}

// Mark classifies [cursor, to) as kind at stage.
func (p *Profiler) Mark(s *skb.SKB, kind SegKind, stage string, to sim.Time) {
	if p == nil {
		return
	}
	p.push(p.rec(s), kind, stage, to, 0)
}

// MarkBlame classifies [cursor, to) as reorder-wait released by packet
// blame (0 = gap-timeout/flush). Zero-length waits (the packet was
// deliverable on its own arrival) record nothing.
func (p *Profiler) MarkBlame(s *skb.SKB, stage string, to sim.Time, blame uint64) {
	if p == nil {
		return
	}
	p.push(p.rec(s), SegReorderWait, stage, to, blame)
}

// NoteIdleWake flags that the packet's enqueue is waking an idle worker, so
// the head of its coming wait is handoff latency (IPI/softirq raise) rather
// than queueing behind earlier packets. Called before the Enqueue.
func (p *Profiler) NoteIdleWake(s *skb.SKB) {
	if p == nil {
		return
	}
	p.rec(s).wake = true
}

// NoteBatched flags that the packet finished a stage's phase-1 work and now
// sits inside the poll batch; on a GRO stage the gap to phase-2 is the GRO
// hold window.
func (p *Profiler) NoteBatched(s *skb.SKB) {
	if p == nil {
		return
	}
	p.rec(s).batched = true
}

// MarkWait classifies the gap [cursor, start) a packet spent before a
// stage's first execution on its behalf:
//
//	ring-fed stage, empty timeline  → ring-wait (descriptor ring + IRQ delay)
//	held in a GRO stage's batch     → gro-hold
//	enqueue woke an idle worker     → handoff for min(wakeDelay, gap),
//	                                  then queue for the remainder
//	otherwise                       → queue
//
// The wake/batched flags are consumed even when the gap is empty.
func (p *Profiler) MarkWait(s *skb.SKB, stage string, start sim.Time, ringFed, groStage bool, wakeDelay sim.Duration) {
	if p == nil {
		return
	}
	r := p.rec(s)
	wasWake, wasBatched := r.wake, r.batched
	r.wake, r.batched = false, false
	if start < r.last {
		p.violate("pkt %d: wait mark at %v behind cursor %v (stage %s)", r.Pkt, start, r.last, stage)
		return
	}
	if start == r.last {
		return
	}
	switch {
	case ringFed && len(r.Timeline) == 0:
		p.push(r, SegRingWait, stage, start, 0)
	case wasBatched && groStage:
		p.push(r, SegGROHold, stage, start, 0)
	default:
		if wasWake && wakeDelay > 0 {
			mid := r.last.Add(wakeDelay)
			if mid > start {
				mid = start
			}
			p.push(r, SegHandoff, stage, mid, 0)
		}
		p.push(r, SegQueue, stage, start, 0)
	}
}

// MarkServe classifies a socket delivery-copy execution window: the gap to
// start is socket backlog wait, [start, end) is the copy itself.
func (p *Profiler) MarkServe(s *skb.SKB, start, end sim.Time) {
	if p == nil {
		return
	}
	r := p.rec(s)
	p.push(r, SegSockWait, "socket", start, 0)
	p.push(r, SegCopy, "socket", end, 0)
}

// Complete closes a packet's record at its userspace delivery instant,
// verifies conservation (segments are contiguous from Arrived and sum
// exactly to the end-to-end latency), aggregates it into the breakdown,
// and retains it if it is among the flow's k slowest.
func (p *Profiler) Complete(s *skb.SKB, at sim.Time) {
	if p == nil {
		return
	}
	r := p.rec(s)
	s.CP = nil
	if at < r.last {
		p.violate("pkt %d: completed at %v behind cursor %v", r.Pkt, at, r.last)
		at = r.last
	}
	p.push(r, SegOther, "tail", at, 0)
	r.Done = at
	r.Outcome = Delivered
	// The skb's coverage may have grown (GRO) since the record was
	// created; re-read it at the terminal point.
	r.Seq, r.Segs = s.Seq, s.Segs

	// Conservation self-check: the timeline must tile [Arrived, Done]
	// with no gap, overlap, or residual. Exact — simulated time is
	// integer nanoseconds.
	prev := r.Arrived
	var sum sim.Duration
	for _, seg := range r.Timeline {
		if seg.Start != prev || seg.End < seg.Start {
			p.violate("pkt %d: timeline broken at %v (%v %s)", r.Pkt, seg.Start, seg.Kind, seg.Stage)
		}
		prev = seg.End
		sum += seg.End.Sub(seg.Start)
	}
	if prev != at || sum != at.Sub(r.Arrived) {
		p.violate("pkt %d: segments sum to %v, e2e is %v", r.Pkt, sum, at.Sub(r.Arrived))
	}

	if p.OnComplete != nil {
		p.OnComplete(r)
	}
	p.DeliveredPkts++
	p.SumE2E += r.E2E()
	if p.agg == nil {
		p.agg = make(map[aggKey]*KindStat)
	}
	for _, seg := range r.Timeline {
		k := aggKey{seg.Kind, seg.Stage}
		st := p.agg[k]
		if st == nil {
			st = &KindStat{Kind: seg.Kind, Stage: seg.Stage}
			p.agg[k] = st
		}
		st.Count++
		d := seg.Dur()
		st.Total += d
		if d > st.Max {
			st.Max = d
		}
	}
	p.keepOrRecycle(r)
}

// keepOrRecycle retains r if it ranks among its flow's k slowest delivered
// packets, displacing (and recycling) the fastest incumbent otherwise.
func (p *Profiler) keepOrRecycle(r *Rec) {
	k := p.ExemplarsPerFlow
	if k <= 0 {
		k = DefaultExemplarsPerFlow
	}
	if p.exemplars == nil {
		p.exemplars = make(map[uint64][]*Rec)
	}
	ex := p.exemplars[r.Flow]
	if len(ex) < k {
		p.exemplars[r.Flow] = insertExemplar(ex, r)
		return
	}
	// ex is sorted by descending E2E; the last entry is the fastest kept.
	if tail := ex[len(ex)-1]; r.E2E() > tail.E2E() {
		p.recycle(tail)
		p.exemplars[r.Flow] = insertExemplar(ex[:len(ex)-1], r)
		return
	}
	p.recycle(r)
}

// insertExemplar inserts r into ex keeping descending E2E order (ties keep
// arrival order — the earlier packet stays first).
func insertExemplar(ex []*Rec, r *Rec) []*Rec {
	i := sort.Search(len(ex), func(i int) bool { return ex[i].E2E() < r.E2E() })
	ex = append(ex, nil)
	copy(ex[i+1:], ex[i:])
	ex[i] = r
	return ex
}

// Absorb closes a packet merged away by GRO: its lifetime after the merge
// belongs to the absorbing super-packet, so the record ends at its own last
// mark (the merge happens within the same poll round).
func (p *Profiler) Absorb(s *skb.SKB) {
	if p == nil {
		return
	}
	r := p.rec(s)
	s.CP = nil
	r.Done = r.last
	r.Outcome = Absorbed
	p.AbsorbedPkts++
	p.recycle(r)
}

// Drop closes a packet that left the stack at a drop point.
func (p *Profiler) Drop(s *skb.SKB, at sim.Time, where string) {
	if p == nil {
		return
	}
	r := p.rec(s)
	s.CP = nil
	if at > r.last {
		p.push(r, SegOther, where, at, 0)
	}
	r.Done = r.last
	r.Outcome = Dropped
	r.Where = where
	p.DroppedPkts++
	p.recycle(r)
}

// ResetStats discards everything aggregated so far — breakdown, exemplars,
// outcome counters — while keeping in-flight packet records intact. The
// runner calls it at the warmup/measure boundary so breakdowns cover the
// measurement window only. Violations are cumulative and not reset.
func (p *Profiler) ResetStats() {
	if p == nil {
		return
	}
	p.agg = nil
	for _, ex := range p.exemplars {
		for _, r := range ex {
			p.recycle(r)
		}
	}
	p.exemplars = nil
	p.DeliveredPkts, p.AbsorbedPkts, p.DroppedPkts = 0, 0, 0
	p.SumE2E = 0
}

// Breakdown returns the per-(kind, stage) aggregates of every delivered
// packet's timeline, sorted by kind then stage (deterministic output from
// the unordered aggregation map).
func (p *Profiler) Breakdown() []KindStat {
	if p == nil {
		return nil
	}
	out := make([]KindStat, 0, len(p.agg))
	for _, st := range p.agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// Exemplars returns the retained slowest-packet records, flows in ascending
// id order, each flow's records slowest-first.
func (p *Profiler) Exemplars() []*Rec {
	if p == nil {
		return nil
	}
	flows := make([]uint64, 0, len(p.exemplars))
	for f := range p.exemplars {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	var out []*Rec
	for _, f := range flows {
		out = append(out, p.exemplars[f]...)
	}
	return out
}
