package causal

import (
	"strings"
	"testing"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

func mkSKB(pkt uint64, at sim.Time) *skb.SKB {
	return &skb.SKB{PktID: pkt, FlowID: 1, Seq: pkt - 1, Segs: 1, ArrivedAt: at}
}

// TestConservationExact drives one packet through every mark type and
// checks the timeline tiles [Arrived, Done] exactly.
func TestConservationExact(t *testing.T) {
	p := NewProfiler()
	var got *Rec
	p.OnComplete = func(r *Rec) {
		var sum sim.Duration
		prev := r.Arrived
		for _, seg := range r.Timeline {
			if seg.Start != prev {
				t.Errorf("segment starts at %v, previous ended at %v", seg.Start, prev)
			}
			prev = seg.End
			sum += seg.Dur()
		}
		if prev != r.Done {
			t.Errorf("timeline ends at %v, record done at %v", prev, r.Done)
		}
		if sum != r.E2E() {
			t.Errorf("segments sum to %v, e2e is %v", sum, r.E2E())
		}
		cp := *r
		got = &cp
	}

	s := mkSKB(7, 100)
	p.MarkWait(s, "driver", 150, true, false, 0)   // ring-wait 50
	p.Mark(s, SegService, "driver", 180)           // service 30
	p.MarkBlame(s, "reassembler", 300, 9)          // reorder-wait 120, blame 9
	p.MarkServe(s, 350, 400)                       // sock-wait 50, copy 50
	p.Complete(s, 425)                             // other 25

	if got == nil {
		t.Fatal("OnComplete never fired")
	}
	if v := p.Violations(); v != 0 {
		t.Fatalf("%d violations: %s", v, p.FirstViolation())
	}
	kinds := []SegKind{SegRingWait, SegService, SegReorderWait, SegSockWait, SegCopy, SegOther}
	if len(got.Timeline) != len(kinds) {
		t.Fatalf("timeline has %d segments, want %d: %+v", len(got.Timeline), len(kinds), got.Timeline)
	}
	for i, k := range kinds {
		if got.Timeline[i].Kind != k {
			t.Errorf("segment %d is %v, want %v", i, got.Timeline[i].Kind, k)
		}
	}
	if got.Timeline[2].Blame != 9 {
		t.Errorf("reorder-wait blame = %d, want 9", got.Timeline[2].Blame)
	}
	if s.CP != nil {
		t.Error("Complete left skb.CP set")
	}
	if p.DeliveredPkts != 1 {
		t.Errorf("DeliveredPkts = %d, want 1", p.DeliveredPkts)
	}
}

// TestMarkWaitPolicy exercises the wait-classification branches.
func TestMarkWaitPolicy(t *testing.T) {
	p := NewProfiler()

	// Not ring-fed: plain queue.
	s := mkSKB(1, 0)
	p.MarkWait(s, "st", 10, false, false, 0)
	if k := p.rec(s).Timeline[0].Kind; k != SegQueue {
		t.Errorf("plain wait classified %v, want queue", k)
	}

	// Idle wake: handoff head then queue remainder.
	s2 := mkSKB(2, 0)
	p.NoteIdleWake(s2)
	p.MarkWait(s2, "st", 10, false, false, 3)
	tl := p.rec(s2).Timeline
	if len(tl) != 2 || tl[0].Kind != SegHandoff || tl[0].Dur() != 3 || tl[1].Kind != SegQueue || tl[1].Dur() != 7 {
		t.Errorf("wake wait = %+v, want handoff(3)+queue(7)", tl)
	}

	// Wake longer than the gap: handoff clamped to the whole gap.
	s3 := mkSKB(3, 0)
	p.NoteIdleWake(s3)
	p.MarkWait(s3, "st", 2, false, false, 5)
	tl = p.rec(s3).Timeline
	if len(tl) != 1 || tl[0].Kind != SegHandoff || tl[0].Dur() != 2 {
		t.Errorf("clamped wake wait = %+v, want handoff(2)", tl)
	}

	// Batched in a GRO stage: gro-hold.
	s4 := mkSKB(4, 0)
	p.Mark(s4, SegService, "st", 5)
	p.NoteBatched(s4)
	p.MarkWait(s4, "st", 12, false, true, 0)
	tl = p.rec(s4).Timeline
	if tl[len(tl)-1].Kind != SegGROHold {
		t.Errorf("batched GRO wait classified %v, want gro-hold", tl[len(tl)-1].Kind)
	}

	// Flags consumed even on empty gaps.
	s5 := mkSKB(5, 0)
	p.NoteIdleWake(s5)
	p.MarkWait(s5, "st", 0, false, false, 3) // empty gap
	p.MarkWait(s5, "st", 4, false, false, 3) // wake already consumed
	tl = p.rec(s5).Timeline
	if len(tl) != 1 || tl[0].Kind != SegQueue {
		t.Errorf("consumed-flag wait = %+v, want one queue segment", tl)
	}

	if v := p.Violations(); v != 0 {
		t.Fatalf("%d violations: %s", v, p.FirstViolation())
	}
}

// TestPoolAliasingDetected proves the profiler keys on PktID, not the skb
// pointer: a pooled skb reused for a new arrival without closing the old
// record is detected, flagged, and restarted fresh.
func TestPoolAliasingDetected(t *testing.T) {
	p := NewProfiler()
	s := mkSKB(1, 0)
	p.Mark(s, SegService, "st", 10)

	// The pool would zero the skb; simulate a component that leaked the CP
	// slot past Put by copying it onto the next arrival.
	cp := s.CP
	s2 := mkSKB(2, 20)
	s2.CP = cp
	p.Mark(s2, SegService, "st", 30)

	if p.Violations() != 1 {
		t.Fatalf("violations = %d, want 1 (pool aliasing)", p.Violations())
	}
	if !strings.Contains(p.FirstViolation(), "aliasing") {
		t.Errorf("violation message %q does not mention aliasing", p.FirstViolation())
	}
	r := p.rec(s2)
	if r.Pkt != 2 || len(r.Timeline) != 1 {
		t.Errorf("fresh record not started: %+v", r)
	}
}

// TestBackwardsMarkViolates: a mark behind the cursor is recorded as a
// violation, never a negative segment.
func TestBackwardsMarkViolates(t *testing.T) {
	p := NewProfiler()
	s := mkSKB(1, 100)
	p.Mark(s, SegService, "st", 200)
	p.Mark(s, SegService, "st", 150)
	if p.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", p.Violations())
	}
	for _, seg := range p.rec(s).Timeline {
		if seg.End < seg.Start {
			t.Errorf("negative segment %+v", seg)
		}
	}
}

// TestExemplarsTopK checks per-flow slowest-k retention and ordering.
func TestExemplarsTopK(t *testing.T) {
	p := &Profiler{ExemplarsPerFlow: 2}
	e2es := []sim.Duration{50, 10, 90, 30, 70}
	for i, d := range e2es {
		s := mkSKB(uint64(i+1), 0)
		p.Mark(s, SegService, "st", sim.Time(0).Add(d))
		p.Complete(s, sim.Time(0).Add(d))
	}
	ex := p.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("kept %d exemplars, want 2", len(ex))
	}
	if ex[0].E2E() != 90 || ex[1].E2E() != 70 {
		t.Errorf("exemplars e2e = %v, %v; want 90, 70", ex[0].E2E(), ex[1].E2E())
	}
	if p.DeliveredPkts != uint64(len(e2es)) {
		t.Errorf("DeliveredPkts = %d, want %d", p.DeliveredPkts, len(e2es))
	}
}

// TestAbsorbAndDrop close records with the right outcome counters and clear
// the CP slot.
func TestAbsorbAndDrop(t *testing.T) {
	p := NewProfiler()
	s := mkSKB(1, 0)
	p.Mark(s, SegService, "st", 10)
	p.Absorb(s)
	if p.AbsorbedPkts != 1 || s.CP != nil {
		t.Errorf("absorb: counter=%d cp=%v", p.AbsorbedPkts, s.CP)
	}

	s2 := mkSKB(2, 0)
	p.MarkWait(s2, "st", 5, false, false, 0)
	p.Drop(s2, 9, "backlog")
	if p.DroppedPkts != 1 || s2.CP != nil {
		t.Errorf("drop: counter=%d cp=%v", p.DroppedPkts, s2.CP)
	}
	if v := p.Violations(); v != 0 {
		t.Fatalf("%d violations: %s", v, p.FirstViolation())
	}
}

// TestResetStatsKeepsInFlight: stats reset at the warmup boundary, but a
// packet mid-flight completes cleanly afterwards.
func TestResetStatsKeepsInFlight(t *testing.T) {
	p := NewProfiler()
	done := mkSKB(1, 0)
	p.Mark(done, SegService, "st", 10)
	p.Complete(done, 10)

	inflight := mkSKB(2, 5)
	p.Mark(inflight, SegService, "st", 8)

	p.ResetStats()
	if p.DeliveredPkts != 0 || len(p.Breakdown()) != 0 || len(p.Exemplars()) != 0 {
		t.Errorf("reset left stats: %d delivered, %d rows, %d exemplars",
			p.DeliveredPkts, len(p.Breakdown()), len(p.Exemplars()))
	}

	p.Mark(inflight, SegService, "st", 20)
	p.Complete(inflight, 20)
	if p.DeliveredPkts != 1 {
		t.Errorf("post-reset DeliveredPkts = %d, want 1", p.DeliveredPkts)
	}
	if v := p.Violations(); v != 0 {
		t.Fatalf("%d violations: %s", v, p.FirstViolation())
	}
}

// TestNilProfilerSafe: every exported method tolerates a nil receiver.
func TestNilProfilerSafe(t *testing.T) {
	var p *Profiler
	s := mkSKB(1, 0)
	p.Mark(s, SegService, "st", 10)
	p.MarkBlame(s, "st", 10, 0)
	p.MarkWait(s, "st", 10, true, true, 5)
	p.MarkServe(s, 10, 20)
	p.NoteIdleWake(s)
	p.NoteBatched(s)
	p.Complete(s, 20)
	p.Absorb(s)
	p.Drop(s, 20, "x")
	p.ResetStats()
	if p.Breakdown() != nil || p.Exemplars() != nil || p.Violations() != 0 || p.FirstViolation() != "" {
		t.Error("nil profiler returned non-zero state")
	}
	if s.CP != nil {
		t.Error("nil profiler touched the skb")
	}
}

// TestRenderers smoke-checks the plain-text renderings.
func TestRenderers(t *testing.T) {
	p := NewProfiler()
	s := mkSKB(3, 0)
	p.MarkWait(s, "driver", 10, true, false, 0)
	p.MarkBlame(s, "reassembler", 30, 8)
	p.Complete(s, 40)

	ex := p.Exemplars()
	if len(ex) != 1 {
		t.Fatalf("exemplars = %d, want 1", len(ex))
	}
	tl := RenderTimeline(ex[0])
	for _, want := range []string{"pkt 3", "ring-wait", "reorder-wait", "released by pkt 8"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
	bd := RenderBreakdown(p.Breakdown())
	for _, want := range []string{"ring-wait", "reorder-wait", "other", "share"} {
		if !strings.Contains(bd, want) {
			t.Errorf("breakdown missing %q:\n%s", want, bd)
		}
	}
}
