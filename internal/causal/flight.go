// Anomaly-triggered flight recorder: a fixed-size ring of recent core
// executions per core, snapshotted deterministically (simulated-time only —
// no wall clocks) when an anomaly fires: a drop, an RTO, a reassembler
// gap-timeout, or a wire corruption. Snapshots export as Perfetto
// flow-annotated slices that load alongside the observability layer's
// per-core and per-flow tracks.
package causal

import (
	"fmt"
	"io"
	"sort"

	"mflow/internal/obs"
	"mflow/internal/sim"
)

// DefaultRingSize is the per-core event ring capacity when
// FlightRecorder.RingSize is unset.
const DefaultRingSize = 256

// DefaultMaxSnapshots bounds retained snapshots when MaxSnapshots is unset
// (triggers past the bound still count, they just stop snapshotting — the
// first anomalies are the diagnostic ones).
const DefaultMaxSnapshots = 16

// FlightEvent is one core execution interval captured in a ring.
type FlightEvent struct {
	Tag   string
	Start sim.Time
	End   sim.Time
}

// coreRing is a fixed-capacity overwrite-oldest buffer of FlightEvents.
type coreRing struct {
	buf  []FlightEvent
	next int
	full bool
}

func (r *coreRing) push(e FlightEvent) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// snapshot returns the ring's contents oldest-first.
func (r *coreRing) snapshot() []FlightEvent {
	if !r.full {
		return append([]FlightEvent(nil), r.buf[:r.next]...)
	}
	out := make([]FlightEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// CoreSnapshot is one core's recent-execution window at trigger time.
type CoreSnapshot struct {
	Core   int
	Events []FlightEvent
}

// Snapshot is the flight recorder's capture of one anomaly: what every core
// was running just before it fired. Cores are in ascending id order.
type Snapshot struct {
	// Kind names the trigger ("drop-ring", "drop-backlog", "drop-sock",
	// "drop-split", "tcp-dup", "rto", "gap-timeout", "corruption").
	Kind string
	// Pkt / Flow identify the packet the anomaly hit (Pkt 0 when the
	// trigger has no single packet, e.g. an RTO).
	Pkt  uint64
	Flow uint64
	At   sim.Time

	Cores []CoreSnapshot
}

// FlightRecorder captures per-core execution history into fixed rings and
// snapshots them on anomaly triggers. All methods tolerate a nil receiver.
// It observes cores by chaining their ExecLog hooks, composing with an
// already-attached obs.CoreLog.
type FlightRecorder struct {
	// RingSize is the per-core ring capacity (<= 0: DefaultRingSize).
	RingSize int
	// MaxSnapshots bounds retained snapshots (<= 0: DefaultMaxSnapshots).
	MaxSnapshots int

	// Snapshots holds the captures, in trigger order.
	Snapshots []Snapshot
	// Triggers counts every trigger by kind, including ones past the
	// snapshot bound.
	Triggers map[string]uint64

	rings map[int]*coreRing
	order []int
}

// NewFlightRecorder returns a recorder with defaults.
func NewFlightRecorder() *FlightRecorder { return &FlightRecorder{} }

// Attach starts recording the given cores, chaining after any ExecLog hook
// already installed (e.g. obs.CoreLog). Call once, after other observers.
func (fr *FlightRecorder) Attach(cores ...*sim.Core) {
	if fr == nil {
		return
	}
	size := fr.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	if fr.rings == nil {
		fr.rings = make(map[int]*coreRing)
	}
	for _, c := range cores {
		if _, dup := fr.rings[c.ID]; dup {
			continue
		}
		ring := &coreRing{buf: make([]FlightEvent, size)}
		fr.rings[c.ID] = ring
		fr.order = append(fr.order, c.ID)
		prev := c.ExecLog
		if prev == nil {
			c.ExecLog = func(_ int, tag string, start, end sim.Time) {
				ring.push(FlightEvent{Tag: tag, Start: start, End: end})
			}
		} else {
			c.ExecLog = func(id int, tag string, start, end sim.Time) {
				prev(id, tag, start, end)
				ring.push(FlightEvent{Tag: tag, Start: start, End: end})
			}
		}
	}
	sort.Ints(fr.order)
}

// Trigger records an anomaly. The first MaxSnapshots triggers capture every
// attached core's ring (cores iterated in sorted id order — deterministic);
// later triggers only count.
func (fr *FlightRecorder) Trigger(kind string, pkt, flow uint64, at sim.Time) {
	if fr == nil {
		return
	}
	if fr.Triggers == nil {
		fr.Triggers = make(map[string]uint64)
	}
	fr.Triggers[kind]++
	max := fr.MaxSnapshots
	if max <= 0 {
		max = DefaultMaxSnapshots
	}
	if len(fr.Snapshots) >= max {
		return
	}
	snap := Snapshot{Kind: kind, Pkt: pkt, Flow: flow, At: at}
	for _, id := range fr.order {
		snap.Cores = append(snap.Cores, CoreSnapshot{Core: id, Events: fr.rings[id].snapshot()})
	}
	fr.Snapshots = append(fr.Snapshots, snap)
}

// TriggerKinds returns the observed trigger kinds, sorted.
func (fr *FlightRecorder) TriggerKinds() []string {
	if fr == nil {
		return nil
	}
	kinds := make([]string, 0, len(fr.Triggers))
	for k := range fr.Triggers {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// ChromeEvents renders every snapshot as Perfetto slices: one process per
// snapshot (pids from obs.PidFlight up, so they sit alongside the existing
// per-core and per-flow tracks), one thread per captured core plus a
// "trigger" thread carrying the anomaly instant, and a flow arrow ("s"/"f")
// linking the trigger to the latest execution it interrupted. Deterministic:
// snapshots are in trigger order and cores in sorted id order.
func (fr *FlightRecorder) ChromeEvents() []obs.ChromeEvent {
	if fr == nil {
		return nil
	}
	var out []obs.ChromeEvent
	usT := func(t sim.Time) float64 { return float64(t) / 1e3 }
	for i, snap := range fr.Snapshots {
		pid := obs.PidFlight + i
		out = append(out, obs.ChromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("flight %d: %s pkt=%d flow=%d", i, snap.Kind, snap.Pkt, snap.Flow)},
		})
		out = append(out, obs.ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "trigger"},
		})
		out = append(out, obs.ChromeEvent{
			Name: snap.Kind, Cat: "flight-trigger", Ph: "X",
			Ts: usT(snap.At), Dur: 0.001, Pid: pid, Tid: 0,
			Args: map[string]any{"pkt": snap.Pkt, "flow": snap.Flow},
		})
		out = append(out, obs.ChromeEvent{
			Name: "anomaly", Cat: "flight", Ph: "s", ID: i + 1,
			Ts: usT(snap.At), Pid: pid, Tid: 0,
		})
		// The flow arrow lands on the latest execution captured across
		// all cores (ties: lowest core id) — "what was running when it
		// fired".
		latestCore, latestIdx := -1, -1
		var latestEnd sim.Time
		for _, cs := range snap.Cores {
			tid := int64(cs.Core + 1)
			out = append(out, obs.ChromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("core %d", cs.Core)},
			})
			for j, e := range cs.Events {
				out = append(out, obs.ChromeEvent{
					Name: e.Tag, Cat: "flight", Ph: "X",
					Ts: usT(e.Start), Dur: usT(e.End) - usT(e.Start),
					Pid: pid, Tid: tid,
				})
				if e.End > latestEnd || latestCore < 0 {
					latestCore, latestIdx, latestEnd = cs.Core, j, e.End
				}
			}
		}
		if latestCore >= 0 {
			e := fr.eventAt(snap, latestCore, latestIdx)
			out = append(out, obs.ChromeEvent{
				Name: "anomaly", Cat: "flight", Ph: "f", ID: i + 1, BP: "e",
				Ts: usT(e.Start), Pid: pid, Tid: int64(latestCore + 1),
			})
		}
	}
	return out
}

// eventAt returns snapshot event idx of the given core.
func (fr *FlightRecorder) eventAt(snap Snapshot, core, idx int) FlightEvent {
	for _, cs := range snap.Cores {
		if cs.Core == core {
			return cs.Events[idx]
		}
	}
	return FlightEvent{}
}

// Export writes the snapshots as a Chrome/Perfetto JSON trace.
func (fr *FlightRecorder) Export(w io.Writer) error {
	return obs.WriteChromeTrace(w, fr.ChromeEvents())
}
