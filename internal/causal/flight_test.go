package causal

import (
	"bytes"
	"strings"
	"testing"

	"mflow/internal/sim"
)

// driveFlight builds two cores, runs a fixed execution pattern past the ring
// size, and fires two triggers. Used twice by the determinism test.
func driveFlight(ringSize int) *FlightRecorder {
	sched := sim.NewScheduler(1)
	c0 := sim.NewCore(0, sched)
	c1 := sim.NewCore(1, sched)
	fr := &FlightRecorder{RingSize: ringSize, MaxSnapshots: 4}
	fr.Attach(c0, c1)
	fr.Attach(c0) // duplicate attach must be a no-op
	for i := 0; i < ringSize+3; i++ {
		c0.Exec(10, "alloc")
		c1.Exec(7, "vxlan")
	}
	fr.Trigger("drop-ring", 42, 1, c0.FreeAt())
	c0.Exec(5, "gro")
	fr.Trigger("rto", 0, 2, c0.FreeAt())
	return fr
}

func TestFlightRingOverwritesOldest(t *testing.T) {
	fr := driveFlight(8)
	if len(fr.Snapshots) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(fr.Snapshots))
	}
	snap := fr.Snapshots[0]
	if len(snap.Cores) != 2 || snap.Cores[0].Core != 0 || snap.Cores[1].Core != 1 {
		t.Fatalf("cores not in sorted order: %+v", snap.Cores)
	}
	ev := snap.Cores[0].Events
	if len(ev) != 8 {
		t.Fatalf("ring kept %d events, want 8", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Start < ev[i-1].End {
			t.Errorf("ring not oldest-first at %d: %+v then %+v", i, ev[i-1], ev[i])
		}
	}
	if fr.Triggers["drop-ring"] != 1 || fr.Triggers["rto"] != 1 {
		t.Errorf("trigger counts = %v", fr.Triggers)
	}
	if got := fr.TriggerKinds(); len(got) != 2 || got[0] != "drop-ring" || got[1] != "rto" {
		t.Errorf("TriggerKinds = %v", got)
	}
}

func TestFlightSnapshotCapAndCounting(t *testing.T) {
	sched := sim.NewScheduler(1)
	c := sim.NewCore(0, sched)
	fr := &FlightRecorder{RingSize: 4, MaxSnapshots: 2}
	fr.Attach(c)
	for i := 0; i < 5; i++ {
		c.Exec(1, "x")
		fr.Trigger("drop-ring", uint64(i), 1, c.FreeAt())
	}
	if len(fr.Snapshots) != 2 {
		t.Errorf("snapshots = %d, want cap 2", len(fr.Snapshots))
	}
	if fr.Triggers["drop-ring"] != 5 {
		t.Errorf("trigger count = %d, want all 5 counted", fr.Triggers["drop-ring"])
	}
}

// TestFlightExportDeterministic: two identical runs export byte-identical
// Perfetto traces (snapshot order, core order, event order all pinned).
func TestFlightExportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := driveFlight(16).Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := driveFlight(16).Export(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical runs exported different traces")
	}
	out := a.String()
	for _, want := range []string{
		`"flight 0: drop-ring pkt=42 flow=1"`, // process meta
		`"flight 1: rto pkt=0 flow=2"`,
		`"ph":"s"`, `"ph":"f"`, `"bp":"e"`, // flow arrow pair
		`"trigger"`, `"core 0"`, `"core 1"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s", want)
		}
	}
}

func TestNilFlightRecorderSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Attach()
	fr.Trigger("x", 1, 1, 0)
	if fr.TriggerKinds() != nil || fr.ChromeEvents() != nil {
		t.Error("nil recorder returned non-nil state")
	}
	var buf bytes.Buffer
	if err := fr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[]") {
		t.Errorf("nil export = %q, want empty event array", buf.String())
	}
}
