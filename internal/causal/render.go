package causal

import (
	"fmt"
	"strings"

	"mflow/internal/sim"
)

// RenderTimeline formats one packet's segment decomposition as an indented
// timeline: offset from arrival, duration, kind, stage, and reorder blame.
func RenderTimeline(r *Rec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pkt %d flow %d seq %d segs %d: e2e %v\n",
		r.Pkt, r.Flow, r.Seq, r.Segs, r.E2E())
	for _, seg := range r.Timeline {
		blame := ""
		if seg.Kind == SegReorderWait {
			if seg.Blame != 0 {
				blame = fmt.Sprintf("  (released by pkt %d)", seg.Blame)
			} else {
				blame = "  (released by gap-timeout/flush)"
			}
		}
		fmt.Fprintf(&b, "  +%-12v %-12v %-12s %-12s%s\n",
			seg.Start.Sub(r.Arrived), seg.Dur(), seg.Kind, seg.Stage, blame)
	}
	return b.String()
}

// RenderBreakdown formats a breakdown as aligned rows with each row's share
// of the summed segment time — the plain-text view mflowinspect prints and
// tests fingerprint for determinism.
func RenderBreakdown(stats []KindStat) string {
	var total sim.Duration
	for _, st := range stats {
		total += st.Total
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-12s %10s %14s %12s %7s\n",
		"kind", "stage", "count", "total", "max", "share")
	for _, st := range stats {
		share := 0.0
		if total > 0 {
			share = 100 * float64(st.Total) / float64(total)
		}
		fmt.Fprintf(&b, "%-14v %-12s %10d %14v %12v %6.2f%%\n",
			st.Kind, st.Stage, st.Count, st.Total, st.Max, share)
	}
	return b.String()
}
