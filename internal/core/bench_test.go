package core

import (
	"testing"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

func BenchmarkSplitterDispatch(b *testing.B) {
	s := sim.NewScheduler(1)
	cores := sim.NewCores(3, s)
	sp := &Splitter{BatchSize: 256, Core: cores[0]}
	for i := 1; i < 3; i++ {
		sp.Targets = append(sp.Targets, sim.NewWorker("t", cores[i], s,
			func(*skb.SKB) sim.Duration { return 1 }, func(*skb.SKB, sim.Time) {}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Dispatch(&skb.SKB{FlowID: 1, Seq: uint64(i), Segs: 1})
		if i%4096 == 4095 {
			s.Run() // drain targets so queues stay bounded
		}
	}
}

func BenchmarkReassemblerInOrder(b *testing.B) {
	r := NewReassembler(2, 256, func(*skb.SKB) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &skb.SKB{FlowID: 1, Seq: uint64(i), Segs: 1}
		s.MicroFlow = r.counter // always current: pure pass-through cost
		s.MicroFlow = uint64(i)/256 + 1
		if err := r.Arrive(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReassemblerReordered(b *testing.B) {
	// Whole micro-flows arrive in swapped pairs (the later one first):
	// worst-case buffering for the merging counter.
	const batch = 64
	r := NewReassembler(2, batch, func(*skb.SKB) {})
	sp := &Splitter{BatchSize: batch}
	feed := func(mf uint64) {
		start := (mf - 1) * batch
		for j := uint64(0); j < batch; j++ {
			s := &skb.SKB{FlowID: 1, Seq: start + j, Segs: 1}
			s.MicroFlow = sp.MicroFlowOf(s.Seq)
			if err := r.Arrive(s); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	mf := uint64(1)
	for i := 0; i < b.N; i += 2 * batch {
		feed(mf + 1) // buffered: its turn has not come
		feed(mf)     // drains both
		mf += 2
	}
}
