// Package core implements MFLOW, the paper's contribution: packet-level
// parallelism for a single network flow inside the (simulated) kernel
// receive path.
//
// MFLOW splits the packets of one flow into micro-flows — batches of
// consecutive segments — and processes different micro-flows on different
// cores in parallel, then restores arrival order with a batch-based
// reassembler before the stateful TCP layer or user-space delivery. Three
// mechanisms from the paper are implemented:
//
//   - Splitter: the flow-splitting function, a re-purposed stage transition
//     (netif_rx) that stamps each skb with a micro-flow ID and enqueues it
//     on a per-core, per-device splitting queue (paper Fig. 6a).
//   - The same Splitter placed *before* skb allocation acts as the
//     IRQ-splitting function: it dispatches lightweight driver requests to
//     per-core request rings so even skb allocation parallelizes
//     (paper Fig. 6b); the overlay topology chooses the placement.
//   - Reassembler: per-core buffer queues plus a global merging counter
//     that drains whole micro-flows in ID order, re-establishing the
//     original packet order at batch granularity instead of per-packet
//     (paper Fig. 6c).
package core

import (
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// DefaultBatchSize is the paper's chosen micro-flow batch size: 256
// segments, at which point order-preservation overhead becomes negligible
// (paper Fig. 7).
const DefaultBatchSize = 256

// Splitter divides one flow's segment stream into micro-flows and spreads
// them round-robin across splitting queues on separate cores.
type Splitter struct {
	// BatchSize is the number of consecutive segments per micro-flow.
	BatchSize int
	// Targets are the per-core splitting queues (paper Fig. 6a step 1).
	// Micro-flow k goes to Targets[(k-1) % len(Targets)].
	Targets []*sim.Worker[*skb.SKB]
	// Core is the dispatching core (charged DispatchCost per skb and
	// IPICost when waking an idle target).
	Core *sim.Core
	// DispatchCost is the per-skb cost of enqueueing onto a splitting
	// queue. For IRQ-splitting this is small: requests are lightweight
	// descriptors, not skbs (paper §III-A, footnote 3).
	DispatchCost sim.Duration
	// IPICost is charged when a softirq must be raised on an idle target
	// core via inter-processor interrupt.
	IPICost sim.Duration

	// Gate, when set, reports whether the flow currently classifies as
	// an elephant (see Detector). While the gate is closed the splitter
	// routes every micro-flow to target 0 — single-core processing, but
	// still through the reassembler, so classification changes (applied
	// at micro-flow boundaries) never reorder packets.
	Gate func() bool

	// TrackRoutes forces per-micro-flow route memoization even without a
	// Gate, so Route answers from the memo and Override can re-steer. The
	// overload watchdog needs this: the formula route is no longer the
	// truth once a stalled branch's micro-flows have been moved.
	TrackRoutes bool

	// Collapsed, while true, routes every NEW micro-flow to target 0 —
	// the reassembler's graceful-degradation mode (splitting degree 1,
	// pass-through ≈ RPS). Applied at micro-flow boundaries like the Gate,
	// so collapsing and restoring never reorder packets.
	Collapsed bool
	// CollapsedMicroFlows counts micro-flows routed to target 0 by
	// Collapsed (degradation pressure, distinct from MiceMicroFlows).
	CollapsedMicroFlows uint64

	// Recycle, if set, receives skbs rejected at a full splitting queue
	// (dead on arrival — nothing below the socket retransmits) so the
	// run's pool can reuse them.
	Recycle func(*skb.SKB)

	// OnIdleWake, if set, observes each dispatch that wakes an idle
	// splitting queue (the IPI the causal profiler charges the following
	// wait's head to). Observation only; nil in unprobed runs.
	OnIdleWake func(*skb.SKB)

	// Dispatched counts skbs sent to splitting queues; IPIs counts
	// remote wakeups raised.
	Dispatched uint64
	IPIs       uint64
	// MiceMicroFlows counts micro-flows routed unsplit by the gate.
	MiceMicroFlows uint64

	routes map[uint64]int
	maxMF  uint64
}

// RouteState describes what the splitter knows about a micro-flow's route.
type RouteState int

// Route lookup outcomes.
const (
	// RouteFuture: the micro-flow has not been dispatched yet.
	RouteFuture RouteState = iota
	// RouteKnown: the micro-flow was dispatched to the returned target.
	RouteKnown
	// RouteExpired: dispatched long ago; the memo was pruned.
	RouteExpired
)

// Route reports where micro-flow mf was (or will deterministically be)
// routed. The reassembler uses it to distinguish "still in flight" from
// "lost upstream" when a gate sends traffic off-formula.
func (sp *Splitter) Route(mf uint64) (int, RouteState) {
	if sp.Gate == nil && !sp.TrackRoutes {
		if mf > sp.maxMF {
			return sp.TargetOf(mf), RouteFuture
		}
		return sp.TargetOf(mf), RouteKnown
	}
	if mf > sp.maxMF {
		return 0, RouteFuture
	}
	if t, ok := sp.routes[mf]; ok {
		return t, RouteKnown
	}
	return 0, RouteExpired
}

// MicroFlowOf returns the 1-based micro-flow ID of a segment sequence.
func (sp *Splitter) MicroFlowOf(seq uint64) uint64 {
	b := sp.BatchSize
	if b <= 0 {
		b = DefaultBatchSize
	}
	return seq/uint64(b) + 1
}

// TargetOf returns the splitting-queue index serving micro-flow mf.
func (sp *Splitter) TargetOf(mf uint64) int {
	return int((mf - 1) % uint64(len(sp.Targets)))
}

// routeOf picks (and memoizes) the target for a micro-flow. The decision is
// made once, at the micro-flow's first segment, so a gate flipping
// mid-batch cannot scatter one micro-flow across cores.
func (sp *Splitter) routeOf(mf uint64) int {
	if mf > sp.maxMF {
		sp.maxMF = mf
	}
	if sp.Gate == nil && !sp.TrackRoutes {
		return sp.TargetOf(mf)
	}
	if sp.routes == nil {
		sp.routes = make(map[uint64]int)
	}
	if tgt, ok := sp.routes[mf]; ok {
		return tgt
	}
	tgt := 0
	switch {
	case sp.Gate != nil && !sp.Gate():
		sp.MiceMicroFlows++
	case sp.Collapsed:
		sp.CollapsedMicroFlows++
	default:
		tgt = sp.TargetOf(mf)
	}
	sp.routes[mf] = tgt
	if mf > sp.maxMF {
		sp.maxMF = mf
	}
	if len(sp.routes) > 4096 {
		for k := range sp.routes {
			if k+2048 < mf {
				delete(sp.routes, k)
			}
		}
	}
	return tgt
}

// Override pins micro-flow mf's route to tgt, superseding both the formula
// and any memoized decision. The overload watchdog uses it so segments of a
// re-steered micro-flow still in flight land on the new branch.
func (sp *Splitter) Override(mf uint64, tgt int) {
	if sp.routes == nil {
		sp.routes = make(map[uint64]int)
	}
	sp.routes[mf] = tgt
	if mf > sp.maxMF {
		sp.maxMF = mf
	}
}

// Dispatch stamps s with its micro-flow ID and enqueues it on the owning
// splitting queue, raising an IPI if the target was idle.
func (sp *Splitter) Dispatch(s *skb.SKB) {
	mf := sp.MicroFlowOf(s.Seq)
	s.MicroFlow = mf
	s.Branch = sp.routeOf(mf)
	t := sp.Targets[s.Branch]
	s.QueuedAt = t.Sched.Now()
	if sp.Core != nil && sp.DispatchCost > 0 {
		sp.Core.Exec(sp.DispatchCost, "mflow-split")
	}
	if t.Idle() {
		sp.IPIs++
		if sp.Core != nil && sp.IPICost > 0 {
			sp.Core.Exec(sp.IPICost, "ipi")
		}
		if sp.OnIdleWake != nil {
			sp.OnIdleWake(s)
		}
	}
	sp.Dispatched++
	if !t.Enqueue(s) && sp.Recycle != nil {
		sp.Recycle(s)
	}
}
