package core

import (
	"testing"
	"testing/quick"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

func seg(seq uint64, segs int) *skb.SKB {
	return &skb.SKB{FlowID: 1, Proto: skb.TCP, Seq: seq, Segs: segs, WireLen: 1500 * segs, PayloadLen: 1448 * segs}
}

func newSplitter(t *testing.T, nTargets, batch int) (*Splitter, *sim.Scheduler, [][]uint64) {
	t.Helper()
	s := sim.NewScheduler(1)
	cores := sim.NewCores(nTargets+1, s)
	got := make([][]uint64, nTargets)
	sp := &Splitter{BatchSize: batch, Core: cores[0]}
	for i := 0; i < nTargets; i++ {
		i := i
		w := sim.NewWorker("split", cores[i+1], s,
			func(*skb.SKB) sim.Duration { return 10 },
			func(sk *skb.SKB, _ sim.Time) { got[i] = append(got[i], sk.Seq) })
		sp.Targets = append(sp.Targets, w)
	}
	return sp, s, got
}

func TestSplitterMicroFlowIDs(t *testing.T) {
	sp := &Splitter{BatchSize: 4}
	cases := []struct {
		seq  uint64
		want uint64
	}{{0, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1023, 256}}
	for _, c := range cases {
		if got := sp.MicroFlowOf(c.seq); got != c.want {
			t.Errorf("MicroFlowOf(%d)=%d, want %d", c.seq, got, c.want)
		}
	}
}

func TestSplitterDefaultBatch(t *testing.T) {
	sp := &Splitter{}
	if sp.MicroFlowOf(255) != 1 || sp.MicroFlowOf(256) != 2 {
		t.Error("default batch size should be 256")
	}
}

func TestSplitterRoundRobinByMicroFlow(t *testing.T) {
	sp, s, got := newSplitter(t, 2, 4)
	s.At(0, func() {
		for i := uint64(0); i < 16; i++ {
			sp.Dispatch(seg(i, 1))
		}
	})
	s.Run()
	// mf1 (0-3) -> t0, mf2 (4-7) -> t1, mf3 (8-11) -> t0, mf4 -> t1
	want0 := []uint64{0, 1, 2, 3, 8, 9, 10, 11}
	want1 := []uint64{4, 5, 6, 7, 12, 13, 14, 15}
	for i, w := range want0 {
		if got[0][i] != w {
			t.Fatalf("target0 got %v, want %v", got[0], want0)
		}
	}
	for i, w := range want1 {
		if got[1][i] != w {
			t.Fatalf("target1 got %v, want %v", got[1], want1)
		}
	}
	if sp.Dispatched != 16 {
		t.Errorf("Dispatched=%d", sp.Dispatched)
	}
}

func TestSplitterStampsMicroFlow(t *testing.T) {
	sp, s, _ := newSplitter(t, 2, 4)
	sk := seg(5, 1)
	s.At(0, func() { sp.Dispatch(sk) })
	s.Run()
	if sk.MicroFlow != 2 {
		t.Errorf("MicroFlow=%d, want 2", sk.MicroFlow)
	}
}

func TestSplitterChargesDispatchAndIPI(t *testing.T) {
	sp, s, _ := newSplitter(t, 2, 1)
	sp.DispatchCost = 100
	sp.IPICost = 50
	s.At(0, func() {
		sp.Dispatch(seg(0, 1)) // target0 idle: dispatch+IPI
		sp.Dispatch(seg(1, 1)) // target1 idle: dispatch+IPI
	})
	s.Run()
	if sp.IPIs != 2 {
		t.Errorf("IPIs=%d, want 2", sp.IPIs)
	}
	if got := sp.Core.BusyTotal(); got != 300 {
		t.Errorf("dispatch core busy %v, want 300", got)
	}
}

func TestSplitterNoIPIWhenTargetBusy(t *testing.T) {
	sp, s, _ := newSplitter(t, 1, 1)
	sp.IPICost = 50
	s.At(0, func() {
		sp.Dispatch(seg(0, 1))
		sp.Dispatch(seg(1, 1)) // target already scheduled: no IPI
	})
	s.Run()
	if sp.IPIs != 1 {
		t.Errorf("IPIs=%d, want 1", sp.IPIs)
	}
}

func collect(out *[]*skb.SKB) func(*skb.SKB) {
	return func(s *skb.SKB) { *out = append(*out, s) }
}

func TestReassemblerInOrderPassThrough(t *testing.T) {
	var out []*skb.SKB
	r := NewReassembler(2, 4, collect(&out))
	// mf1 on q0: seqs 0-3; mf2 on q1: 4-7 — arrive perfectly in order.
	for i := uint64(0); i < 8; i++ {
		s := seg(i, 1)
		s.MicroFlow = i/4 + 1
		if err := r.Arrive(s); err != nil {
			t.Fatal(err)
		}
	}
	if len(out) != 8 {
		t.Fatalf("delivered %d, want 8", len(out))
	}
	for i, s := range out {
		if s.Seq != uint64(i) {
			t.Fatalf("order broken: %v at %d", s.Seq, i)
		}
	}
	if r.OOOSKBs != 0 {
		t.Errorf("OOOSKBs=%d, want 0", r.OOOSKBs)
	}
	if r.Buffered() != 0 {
		t.Errorf("Buffered=%d", r.Buffered())
	}
}

func TestReassemblerHoldsEarlyMicroFlow(t *testing.T) {
	var out []*skb.SKB
	r := NewReassembler(2, 2, collect(&out))
	// mf2 segments arrive first (its core was faster).
	s2a, s2b := seg(2, 1), seg(3, 1)
	s2a.MicroFlow, s2b.MicroFlow = 2, 2
	r.Arrive(s2a)
	r.Arrive(s2b)
	if len(out) != 0 {
		t.Fatal("mf2 must wait for mf1")
	}
	s1a, s1b := seg(0, 1), seg(1, 1)
	s1a.MicroFlow, s1b.MicroFlow = 1, 1
	r.Arrive(s1a)
	if len(out) != 1 {
		t.Fatalf("first in-order segment should flow immediately, got %d", len(out))
	}
	r.Arrive(s1b)
	if len(out) != 4 {
		t.Fatalf("delivered %d, want all 4", len(out))
	}
	for i, s := range out {
		if s.Seq != uint64(i) {
			t.Fatalf("order %v", out)
		}
	}
	if r.Counter() != 3 {
		t.Errorf("counter=%d, want 3", r.Counter())
	}
	// The two mf1 segments arrived after mf2's higher sequences: two
	// inversions by the reordering metric.
	if r.OOOSegments != 2 {
		t.Errorf("OOOSegments=%d, want 2", r.OOOSegments)
	}
}

func TestReassemblerGROStraddlesBatches(t *testing.T) {
	var out []*skb.SKB
	r := NewReassembler(1, 4, collect(&out))
	// Single splitting core: one super-packet covers mf1+mf2 (segs 0-7).
	s := seg(0, 8)
	s.MicroFlow = 1
	r.Arrive(s)
	if len(out) != 1 {
		t.Fatal("straddling super-packet must deliver")
	}
	if r.Counter() != 3 {
		t.Errorf("counter=%d, want 3 (crossed two batch boundaries)", r.Counter())
	}
	next := seg(8, 1)
	next.MicroFlow = 3
	r.Arrive(next)
	if len(out) != 2 {
		t.Error("stream must continue after straddle")
	}
}

func TestReassemblerPartialFinalBatchRotates(t *testing.T) {
	var out []*skb.SKB
	r := NewReassembler(2, 4, collect(&out))
	r.Strict = true // assert the contiguity invariant below via panic
	// mf1 ends short: only segs 0-1 (flow paused), then mf... actually a
	// short mf1 means the flow ended; rotation happens when a later
	// micro-flow appears at mf1's queue head. mf3 shares q0 with mf1.
	a := seg(0, 1)
	a.MicroFlow = 1
	r.Arrive(a)
	if len(out) != 1 {
		t.Fatal("seg 0 in order")
	}
	// mf2 complete on q1 but waits for mf1's remainder...
	for i := uint64(4); i < 8; i++ {
		s := seg(i, 1)
		s.MicroFlow = 2
		r.Arrive(s)
	}
	if len(out) != 1 {
		t.Fatal("mf2 must wait: mf1 might still produce seg 1-3")
	}
	// ...until mf3 shows up at q0's head, proving mf1 ended short.
	// (A real flow always fills batches except at stream end; this
	// exercises the head-ID rotation rule.)
	b := seg(8, 1)
	b.MicroFlow = 3
	// seq 8 != expected 1 -> delivering would violate contiguity; the
	// reassembler treats head-ID mismatch as end-of-micro-flow but the
	// stream is genuinely gapped here, so it panics on the invariant.
	defer func() {
		if recover() == nil {
			t.Error("gapped stream should trip the contiguity invariant")
		}
	}()
	r.Arrive(b)
}

func TestReassemblerFlush(t *testing.T) {
	var out []*skb.SKB
	r := NewReassembler(2, 4, collect(&out))
	// Only mf2 arrived; mf1 lost upstream (end of run).
	for i := uint64(4); i < 6; i++ {
		s := seg(i, 1)
		s.MicroFlow = 2
		r.Arrive(s)
	}
	if n := r.Flush(); n != 2 {
		t.Fatalf("flushed %d, want 2", n)
	}
	if len(out) != 2 || out[0].Seq != 4 || out[1].Seq != 5 {
		t.Errorf("flush order wrong: %v", out)
	}
	if r.Buffered() != 0 {
		t.Error("flush must empty buffers")
	}
}

func TestReassemblerRejectsUnstamped(t *testing.T) {
	r := NewReassembler(2, 4, func(*skb.SKB) {})
	if err := r.Arrive(seg(0, 1)); err == nil {
		t.Error("unstamped skb must be rejected")
	}
}

func TestReassemblerChargesMergeCosts(t *testing.T) {
	s := sim.NewScheduler(1)
	core := sim.NewCore(0, s)
	var out []*skb.SKB
	r := NewReassembler(2, 2, collect(&out))
	r.Core = core
	r.SwitchCost = 100
	r.PerSKB = 10
	s.At(0, func() {
		for i := uint64(0); i < 4; i++ {
			sk := seg(i, 1)
			sk.MicroFlow = i/2 + 1
			r.Arrive(sk)
		}
	})
	s.Run()
	// 4 skbs * 10 + 2 switches * 100
	if got := core.BusyTotal(); got != 240 {
		t.Errorf("merge cost %v, want 240", got)
	}
	if r.Switches != 2 {
		t.Errorf("Switches=%d, want 2", r.Switches)
	}
}

// Property: for any number of queues, batch size, and any interleaving of
// the per-queue FIFO streams, the reassembler emits segments in exactly
// original order (followed by Flush for a partial tail).
func TestReassemblerOrderProperty(t *testing.T) {
	f := func(seed uint64, nq8, batch8, n16 uint8) bool {
		nq := int(nq8%4) + 1
		batch := int(batch8%7) + 1
		n := int(n16%120) + 1
		rnd := sim.NewRand(seed)

		sp := &Splitter{BatchSize: batch}
		queues := make([][]*skb.SKB, nq)
		for i := 0; i < n; i++ {
			s := seg(uint64(i), 1)
			s.MicroFlow = sp.MicroFlowOf(s.Seq)
			qi := int((s.MicroFlow - 1) % uint64(nq))
			queues[qi] = append(queues[qi], s)
		}
		var out []*skb.SKB
		r := NewReassembler(nq, batch, collect(&out))
		// Random fair interleave of the queue streams (per-queue FIFO).
		idx := make([]int, nq)
		remaining := n
		for remaining > 0 {
			qi := rnd.Intn(nq)
			if idx[qi] >= len(queues[qi]) {
				continue
			}
			if err := r.Arrive(queues[qi][idx[qi]]); err != nil {
				return false
			}
			idx[qi]++
			remaining--
		}
		r.Flush()
		if len(out) != n {
			return false
		}
		for i, s := range out {
			if s.Seq != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: micro-flow assignment is a partition — every segment maps to
// exactly one target, and consecutive in-batch segments share a target.
func TestSplitterPartitionProperty(t *testing.T) {
	f := func(batch16 uint16, ncores8 uint8, seqRaw uint32) bool {
		batch := int(batch16%512) + 1
		ncores := int(ncores8%6) + 1
		sp := &Splitter{BatchSize: batch, Targets: make([]*sim.Worker[*skb.SKB], ncores)}
		seq := uint64(seqRaw)
		mf := sp.MicroFlowOf(seq)
		if mf != seq/uint64(batch)+1 {
			return false
		}
		tgt := sp.TargetOf(mf)
		if tgt < 0 || tgt >= ncores {
			return false
		}
		// Same batch, same target.
		first := (mf - 1) * uint64(batch)
		return sp.TargetOf(sp.MicroFlowOf(first)) == tgt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
