package core

import (
	"mflow/internal/sim"
)

// Detector classifies flows as elephants or mice from their observed
// arrival rate. The paper splits "any identified (elephant) flow"
// (§III-A); this is the identification: per-flow byte counting over fixed
// windows, an EWMA of the windowed rate, and promotion/demotion with
// hysteresis so a flow hovering at the threshold does not flap between
// split and unsplit processing.
type Detector struct {
	// ThresholdBps promotes a flow to elephant when its EWMA rate
	// exceeds it (default 1 Gbps); demotion happens below half of it.
	ThresholdBps float64
	// Window is the rate-measurement window (default 1 ms).
	Window sim.Duration
	// Alpha is the EWMA weight of the newest window (default 0.5).
	Alpha float64

	// Promotions / Demotions count classification changes.
	Promotions uint64
	Demotions  uint64

	flows map[uint64]*flowStat
}

type flowStat struct {
	windowStart sim.Time
	windowBytes uint64
	rateBps     float64
	elephant    bool
	sawWindow   bool
}

// NewDetector returns a detector with the default policy.
func NewDetector() *Detector {
	return &Detector{
		ThresholdBps: 1e9,
		Window:       sim.Millisecond,
		Alpha:        0.5,
	}
}

func (d *Detector) stat(flowID uint64) *flowStat {
	if d.flows == nil {
		d.flows = make(map[uint64]*flowStat)
	}
	st := d.flows[flowID]
	if st == nil {
		st = &flowStat{}
		d.flows[flowID] = st
	}
	return st
}

// Observe records bytes of a flow arriving at the given instant, rolling
// the measurement window and updating the classification as needed.
func (d *Detector) Observe(flowID uint64, bytes int, now sim.Time) {
	st := d.stat(flowID)
	win := d.Window
	if win <= 0 {
		win = sim.Millisecond
	}
	for now.Sub(st.windowStart) >= win {
		// Close the current window into the EWMA (empty elapsed
		// windows decay the rate toward zero).
		rate := float64(st.windowBytes) * 8 / win.Seconds()
		alpha := d.Alpha
		if alpha <= 0 || alpha > 1 {
			alpha = 0.5
		}
		if !st.sawWindow {
			st.rateBps = rate
			st.sawWindow = true
		} else {
			st.rateBps = alpha*rate + (1-alpha)*st.rateBps
		}
		st.windowBytes = 0
		st.windowStart = st.windowStart.Add(win)
		if now.Sub(st.windowStart) >= 100*win {
			// Long idle gap: jump rather than looping per window.
			st.windowStart = now
			st.rateBps = 0
		}
		d.reclassify(st)
	}
	st.windowBytes += uint64(bytes)
}

func (d *Detector) reclassify(st *flowStat) {
	thr := d.ThresholdBps
	if thr <= 0 {
		thr = 1e9
	}
	switch {
	case !st.elephant && st.rateBps > thr:
		st.elephant = true
		d.Promotions++
	case st.elephant && st.rateBps < thr/2:
		st.elephant = false
		d.Demotions++
	}
}

// IsElephant reports the flow's current classification.
func (d *Detector) IsElephant(flowID uint64) bool {
	if d.flows == nil {
		return false
	}
	st := d.flows[flowID]
	return st != nil && st.elephant
}

// Rate returns the flow's current EWMA rate in bits per second.
func (d *Detector) Rate(flowID uint64) float64 {
	if d.flows == nil {
		return 0
	}
	if st := d.flows[flowID]; st != nil {
		return st.rateBps
	}
	return 0
}
