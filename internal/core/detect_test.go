package core

import (
	"testing"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

func TestDetectorPromotesElephant(t *testing.T) {
	d := NewDetector() // 1 Gbps threshold, 1 ms window
	// 2 Gbps: 250 KB per 1 ms window.
	now := sim.Time(0)
	for w := 0; w < 6; w++ {
		for i := 0; i < 170; i++ {
			d.Observe(1, 1500, now)
			now = now.Add(5 * sim.Microsecond)
		}
		now = sim.Time((w + 1)) * sim.Time(sim.Millisecond)
	}
	if !d.IsElephant(1) {
		t.Fatalf("2 Gbps flow not promoted (rate=%.2g)", d.Rate(1))
	}
	if d.Promotions != 1 {
		t.Errorf("Promotions=%d, want 1", d.Promotions)
	}
}

func TestDetectorIgnoresMice(t *testing.T) {
	d := NewDetector()
	// ~12 Mbps: one 1500B packet per millisecond.
	for w := 0; w < 20; w++ {
		d.Observe(2, 1500, sim.Time(w)*sim.Time(sim.Millisecond))
	}
	if d.IsElephant(2) {
		t.Fatal("12 Mbps mouse was promoted")
	}
	if d.IsElephant(999) {
		t.Fatal("unknown flow classified as elephant")
	}
}

func TestDetectorDemotionHysteresis(t *testing.T) {
	d := NewDetector()
	d.Alpha = 1 // no smoothing: windows take effect immediately
	// Promote at 2 Gbps.
	feed := func(bps float64, startMs, ms int) {
		perWindow := int(bps / 8 / 1000 / 1500) // packets of 1500B per 1ms
		for w := 0; w < ms; w++ {
			base := sim.Time(startMs+w) * sim.Time(sim.Millisecond)
			for i := 0; i < perWindow; i++ {
				d.Observe(3, 1500, base.Add(sim.Duration(i)))
			}
		}
		// Roll the final window.
		d.Observe(3, 0, sim.Time(startMs+ms)*sim.Time(sim.Millisecond))
	}
	feed(2e9, 0, 3)
	if !d.IsElephant(3) {
		t.Fatal("not promoted at 2 Gbps")
	}
	// 0.7 Gbps is below the 1 Gbps threshold but above the 0.5 Gbps
	// demotion line: classification must hold (hysteresis).
	feed(0.7e9, 3, 3)
	if !d.IsElephant(3) {
		t.Fatal("demoted inside the hysteresis band")
	}
	// 0.2 Gbps demotes.
	feed(0.2e9, 6, 3)
	if d.IsElephant(3) {
		t.Fatal("not demoted at 0.2 Gbps")
	}
	if d.Demotions != 1 {
		t.Errorf("Demotions=%d, want 1", d.Demotions)
	}
}

func TestDetectorIdleGapDecays(t *testing.T) {
	d := NewDetector()
	d.Alpha = 1
	for i := 0; i < 200; i++ {
		d.Observe(4, 1500, sim.Time(i)*5000)
	}
	d.Observe(4, 0, sim.Time(sim.Millisecond)) // roll: 2.4 Gbps window
	if !d.IsElephant(4) {
		t.Fatal("not promoted")
	}
	// A long silence then one packet: the rate must have decayed.
	d.Observe(4, 1500, sim.Time(500*sim.Millisecond))
	if d.Rate(4) > 1e9 {
		t.Errorf("rate %.2g did not decay across idle gap", d.Rate(4))
	}
}

func TestSplitterGateRoutesMiceToBranchZero(t *testing.T) {
	sp, s, got := newSplitter(t, 2, 4)
	elephant := false
	sp.Gate = func() bool { return elephant }
	s.At(0, func() {
		for i := uint64(0); i < 8; i++ { // mf1, mf2 gated
			sp.Dispatch(seg(i, 1))
		}
		elephant = true
		for i := uint64(8); i < 16; i++ { // mf3, mf4 split
			sp.Dispatch(seg(i, 1))
		}
	})
	s.Run()
	// Gated micro-flows (1,2) all to target 0; elephant mf3 -> target 0
	// (formula), mf4 -> target 1.
	if len(got[0]) != 12 || len(got[1]) != 4 {
		t.Fatalf("routing wrong: %d/%d", len(got[0]), len(got[1]))
	}
	if sp.MiceMicroFlows != 2 {
		t.Errorf("MiceMicroFlows=%d, want 2", sp.MiceMicroFlows)
	}
}

func TestTagRoutedReassemblyAcrossGateFlip(t *testing.T) {
	// Micro-flows 1,2 travel branch 0 (gated); 3 on branch 0, 4 on
	// branch 1 (elephant). Arrivals interleave; order must be restored.
	var out []*skb.SKB
	r := NewReassembler(2, 2, collect(&out))
	r.TagRouting = true
	mk := func(seq uint64, mf uint64, branch int) *skb.SKB {
		s := seg(seq, 1)
		s.MicroFlow = mf
		s.Branch = branch
		return s
	}
	// Branch 1 (mf4: seqs 6,7) finishes early; branch 0 carries 1,2,3.
	r.Arrive(mk(6, 4, 1))
	r.Arrive(mk(7, 4, 1))
	for seq := uint64(0); seq < 6; seq++ {
		r.Arrive(mk(seq, seq/2+1, 0))
	}
	if len(out) != 8 {
		t.Fatalf("delivered %d, want 8", len(out))
	}
	for i, s := range out {
		if s.Seq != uint64(i) {
			t.Fatalf("order broken at %d: %v", i, s.Seq)
		}
	}
}

func TestTagRoutedStrictWaitsOnEmptyQueue(t *testing.T) {
	var out []*skb.SKB
	r := NewReassembler(2, 2, collect(&out))
	r.TagRouting = true
	// mf2 on branch 1 arrives first; mf1 (branch 0) still in flight.
	a := seg(2, 1)
	a.MicroFlow, a.Branch = 2, 1
	r.Arrive(a)
	if len(out) != 0 {
		t.Fatal("must wait for mf1")
	}
	b := seg(0, 1)
	b.MicroFlow, b.Branch = 1, 0
	c := seg(1, 1)
	c.MicroFlow, c.Branch = 1, 0
	r.Arrive(b)
	r.Arrive(c)
	d := seg(3, 1)
	d.MicroFlow, d.Branch = 2, 1
	r.Arrive(d)
	if len(out) != 4 {
		t.Fatalf("delivered %d, want 4", len(out))
	}
	for i, s := range out {
		if s.Seq != uint64(i) {
			t.Fatalf("order %v", out)
		}
	}
}
