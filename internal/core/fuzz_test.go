package core

import (
	"testing"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

// splitmix64 is the interleaving PRNG: the fuzzer mutates its seed, not
// the interleave itself, so every byte of input is load-bearing.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fuzzStream is a generated reassembler workload: a split flow's skbs in
// the per-queue FIFO order the splitting cores would emit them, plus the
// fault decisions applied to it.
type fuzzStream struct {
	numQueues int
	batch     int
	allowGaps bool
	useTimer  bool
	tagged    bool
	// queues[i] is queue i's arrival stream (FIFO per splitting core —
	// the contract the real pipeline guarantees).
	queues [][]*skb.SKB
	// arrivals is how many skbs the stream feeds in total.
	arrivals int
	// totalSegs is the wire-segment count of the lossless stream.
	totalSegs uint64
	// drops / dups count the faults injected (gap mode only).
	drops, dups int
}

// buildStream decodes fuzz bytes into a workload that honors the
// reassembler's input contract: micro-flow IDs are Seq/batch+1 (the
// Splitter's stamp), each micro-flow travels one queue, and every queue
// is FIFO. Without allowGaps the stream is lossless — the mode where
// Strict must hold; with allowGaps, drops and duplicated (retransmitted)
// skbs are injected.
func buildStream(data []byte) *fuzzStream {
	if len(data) < 11 {
		return nil
	}
	st := &fuzzStream{
		numQueues: 1 + int(data[0]%4),
		batch:     1 + int(data[1]%8),
		allowGaps: data[2]&1 != 0,
		useTimer:  data[2]&2 != 0,
		tagged:    data[2]&4 != 0,
	}
	var seed splitmix64
	for i := 0; i < 8; i++ {
		seed = splitmix64(uint64(seed)<<8 | uint64(data[3+i]))
	}
	rng := seed

	// Segment-size bytes: each remaining byte becomes one skb covering
	// 1..4 wire segments (GRO super-packets straddle batch boundaries).
	body := data[11:]
	if len(body) > 512 {
		body = body[:512] // cap the stream so one input stays fast
	}
	st.queues = make([][]*skb.SKB, st.numQueues)
	seq := uint64(0)
	for _, b := range body {
		segs := 1 + int(b%4)
		mf := seq/uint64(st.batch) + 1
		s := &skb.SKB{
			FlowID: 1, Seq: seq, Segs: segs, PayloadLen: segs * 1448,
			MicroFlow: mf, Branch: int((mf - 1) % uint64(st.numQueues)),
		}
		seq += uint64(segs)
		st.totalSegs += uint64(segs)

		if st.allowGaps && rng.next()%8 == 0 {
			st.drops++ // lost upstream: never reaches the merge point
			continue
		}
		qi := s.Branch
		st.queues[qi] = append(st.queues[qi], s)
		st.arrivals++
		if st.allowGaps && rng.next()%16 == 0 {
			// A retransmission: the same data arrives again later on the
			// same queue (copied — the reassembler may hold both).
			dup := *s
			st.queues[qi] = append(st.queues[qi], &dup)
			st.arrivals++
			st.dups++
		}
	}
	if st.arrivals == 0 {
		return nil
	}
	return st
}

// interleave merges the per-queue streams into one arrival order, PRNG-
// driven but FIFO within each queue — exactly the nondeterminism the
// parallel splitting cores introduce.
func (st *fuzzStream) interleave(rng *splitmix64) []*skb.SKB {
	heads := make([]int, st.numQueues)
	out := make([]*skb.SKB, 0, st.arrivals)
	for len(out) < st.arrivals {
		qi := int(rng.next() % uint64(st.numQueues))
		for heads[qi] >= len(st.queues[qi]) {
			qi = (qi + 1) % st.numQueues
		}
		out = append(out, st.queues[qi][heads[qi]])
		heads[qi]++
	}
	return out
}

// FuzzReassembler drives the batch reassembler with generated split
// streams — random skb sizes, queue interleavings, duplication and gap
// patterns — and checks its core contract: it never panics, conserves
// every skb exactly once (through delivery or Flush), and delivers an
// in-order stream whose only inversions are the explicitly accounted
// fault paths (stale retransmissions, hole releases, duplicates).
func FuzzReassembler(f *testing.F) {
	// Seed corpus: the chaos-profile shapes. Bytes are
	// [queues, batch, flags, seed×8, segment sizes...].
	f.Add([]byte{2, 4, 0, 1, 2, 3, 4, 5, 6, 7, 8, 0, 1, 2, 3, 0, 1, 2, 3})        // lossless, strict
	f.Add([]byte{3, 3, 1, 9, 9, 9, 9, 9, 9, 9, 9, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})  // random loss + dup
	f.Add([]byte{4, 8, 3, 0, 0, 0, 0, 0, 0, 0, 42, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3}) // burst loss + gap timer
	f.Add([]byte{2, 5, 4, 7, 7, 7, 7, 7, 7, 7, 7, 2, 0, 2, 0, 2, 0, 2, 0})        // tag-routed lossless
	f.Add([]byte{1, 1, 5, 8, 8, 8, 8, 8, 8, 8, 8, 0, 0, 0, 0})                    // single queue, gaps
	f.Fuzz(func(t *testing.T, data []byte) {
		st := buildStream(data)
		if st == nil {
			t.Skip("input too small to form a stream")
		}
		var rng splitmix64
		for i := 0; i < 8; i++ {
			rng = splitmix64(uint64(rng)<<8 | uint64(data[3+i]))
		}
		rng = splitmix64(uint64(rng) ^ 0xa5a5a5a5a5a5a5a5)
		arrivals := st.interleave(&rng)

		var delivered []*skb.SKB
		r := NewReassembler(st.numQueues, st.batch, func(s *skb.SKB) {
			delivered = append(delivered, s)
		})
		r.AllowGaps = st.allowGaps
		r.Strict = !st.allowGaps // lossless streams must satisfy the strict invariants
		r.TagRouting = st.tagged

		var sched *sim.Scheduler
		if st.useTimer && st.allowGaps {
			sched = sim.NewScheduler(1)
			r.Sched = sched
			r.GapTimeout = 50 * sim.Microsecond
		}

		feed := func() {
			for _, s := range arrivals {
				if err := r.Arrive(s); err != nil {
					t.Fatalf("Arrive(%v): %v", s, err)
				}
			}
		}
		if sched != nil {
			// Arrivals spaced in simulated time so the gap timer can fire
			// between them.
			at := sim.Time(0)
			for _, s := range arrivals {
				s := s
				sched.At(at, func() {
					if err := r.Arrive(s); err != nil {
						t.Fatalf("Arrive(%v): %v", s, err)
					}
				})
				at = at.Add(sim.Duration(rng.next() % 20e3)) // 0–20µs apart
			}
			sched.Run()
		} else {
			feed()
		}

		// Conservation before Flush: nothing vanished, nothing doubled.
		if len(delivered)+r.Buffered() != st.arrivals {
			t.Fatalf("delivered %d + buffered %d != arrivals %d",
				len(delivered), r.Buffered(), st.arrivals)
		}
		r.Flush()
		if len(delivered) != st.arrivals {
			t.Fatalf("after Flush: delivered %d != arrivals %d", len(delivered), st.arrivals)
		}
		seen := make(map[*skb.SKB]bool, len(delivered))
		for _, s := range delivered {
			if seen[s] {
				t.Fatalf("skb %v delivered twice", s)
			}
			seen[s] = true
		}

		// Order: inversions only on the accounted fault paths. In the
		// lossless mode that bound is zero, which makes the stream fully
		// in-order; contiguity is then checked exactly.
		inversions := uint64(0)
		for i := 1; i < len(delivered); i++ {
			if delivered[i].Seq < delivered[i-1].Seq {
				inversions++
			}
		}
		allowed := r.StaleSKBs + r.HolesReleased + uint64(st.dups)
		if inversions > allowed {
			t.Fatalf("%d order inversions, only %d accounted (stale=%d holes=%d dups=%d)",
				inversions, allowed, r.StaleSKBs, r.HolesReleased, st.dups)
		}
		if !st.allowGaps {
			if r.Errors != 0 {
				t.Fatalf("lossless stream recorded %d violations, first: %v", r.Errors, r.FirstErr)
			}
			if r.DeliveredSegments != st.totalSegs {
				t.Fatalf("DeliveredSegments = %d, want %d", r.DeliveredSegments, st.totalSegs)
			}
			for i, s := range delivered {
				want := uint64(0)
				if i > 0 {
					want = delivered[i-1].EndSeq()
				}
				if s.Seq != want {
					t.Fatalf("delivery %d: seq %d, want contiguous %d", i, s.Seq, want)
				}
			}
		}
	})
}
