package core

import (
	"fmt"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

// Reassembler restores a split flow's original segment order using the
// paper's batch-based mechanism (Fig. 6c): one buffer queue per splitting
// core and a global merging counter holding the micro-flow ID currently
// being merged. Because every micro-flow travels one core's FIFO path, each
// buffer queue receives its micro-flows in order; the merger therefore only
// ever inspects queue heads — it drains the current micro-flow's queue until
// the head carries a different ID (or the batch's segment coverage
// completes), then rotates to the next queue. Cost-wise this is a per-batch
// operation: a SwitchCost per micro-flow rotation plus a small PerSKB move,
// in contrast to the kernel's per-packet out-of-order queue.
type Reassembler struct {
	// BatchSize is the splitter's micro-flow batch size (segments).
	BatchSize int
	// Deliver receives skbs in restored order (e.g. the TCP layer for
	// early merging, or the socket receive queue for late merging).
	Deliver func(*skb.SKB)
	// Core is the merging thread's CPU (the paper adds merging to the
	// existing delivery thread, tcp_recvmsg/udp_recvmsg).
	Core *sim.Core
	// SwitchCost is charged per micro-flow rotation; PerSKB per skb
	// moved from a buffer queue to the next stage.
	SwitchCost sim.Duration
	PerSKB     sim.Duration
	// AllowGaps tolerates missing segments inside a micro-flow
	// (connectionless flows can lose datagrams to queue overflow, and
	// fault-injected TCP paths see holes that retransmission later
	// fills out of band).
	AllowGaps bool
	// Strict panics on contiguity violations (stale segments, unexpected
	// gaps) instead of recording them — the lossless-run invariant check
	// used by tests. Without Strict a violation outside AllowGaps mode is
	// recorded in Errors/FirstErr and the merger degrades to the
	// AllowGaps behavior, so a single fault cannot kill a bench run.
	Strict bool
	// GapTimeout, when set together with Sched, bounds how long the
	// merger stalls on a hole: if no segment is delivered for a full
	// GapTimeout while skbs sit buffered, the lowest-sequence head is
	// force-released and the counter jumps past the hole (recorded in
	// HolesReleased). Zero disables the timer (the lossless default).
	GapTimeout sim.Duration
	// Sched drives the gap-release timer in simulated time.
	Sched *sim.Scheduler
	// TagRouting files arrivals by the skb's Branch tag instead of the
	// round-robin formula — required when a Splitter gate (elephant
	// detection) routes micro-flows off-formula.
	TagRouting bool
	// RouteOf, when set with TagRouting, lets the merger ask the
	// splitter where a micro-flow was routed, distinguishing "still in
	// flight" from "lost upstream" (see Splitter.Route).
	RouteOf func(mf uint64) (int, RouteState)
	// Budget, when positive, hard-bounds parked skbs: after each arrival
	// pumps, buffered heads are force-released (the gap-timeout path, out
	// of band) until occupancy returns to the budget — graceful degradation
	// instead of unbounded growth. Releases are counted in BudgetReleased
	// on top of HolesReleased.
	Budget int

	// OOOSegments counts wire segments that arrived at the merge point
	// while an earlier segment was still outstanding — the paper's
	// Fig. 7 metric. OOOSKBs counts the skbs carrying them.
	OOOSegments uint64
	OOOSKBs     uint64
	// DeliveredSegments counts segments passed downstream.
	DeliveredSegments uint64
	// Switches counts micro-flow rotations performed.
	Switches uint64
	// StaleSKBs counts skbs delivered behind the merging counter after
	// loss made their batch look complete (gap-tolerant paths only).
	StaleSKBs uint64
	// HolesReleased counts gap-timeout force-releases.
	HolesReleased uint64
	// BudgetReleased counts force-releases caused by the Budget bound.
	BudgetReleased uint64
	// Errors counts contiguity violations recorded in non-Strict mode;
	// FirstErr keeps the first one for diagnostics.
	Errors   uint64
	FirstErr error
	// BufferedPeak is the maximum total skbs parked across all queues.
	BufferedPeak int

	// OnDeliver, when set, observes every delivery with the id of the
	// packet whose arrival made it possible (the blame for the delivered
	// skb's reorder-wait; 0 when a gap-timeout or flush released it, not
	// an arrival). Observation only; nil in unprobed runs.
	OnDeliver func(head *skb.SKB, blamePkt uint64)
	// OnHoleReleased, when set, observes each gap-timeout force-release
	// (the anomaly flight-recorder trigger).
	OnHoleReleased func(head *skb.SKB)

	// blamePkt is the arrival currently pumping the merger (0 outside
	// Arrive — gap-timer and flush deliveries have no arrival to blame).
	blamePkt uint64

	queues      [][]*skb.SKB
	counter     uint64 // micro-flow currently merged (1-based)
	expectedSeq uint64 // next segment sequence to deliver
	arrivedMax  uint64 // highest EndSeq seen at the merge point
	buffered    int
	gapArmed    bool
	gapMark     uint64 // DeliveredSegments when the gap timer was armed
	gapFrontier uint64 // arrivedMax when the gap timer was armed
	gapH        gapTimerH
}

// deliver passes head downstream, first reporting it to the OnDeliver
// observer together with the arrival that unblocked it.
func (r *Reassembler) deliver(head *skb.SKB) {
	if r.OnDeliver != nil {
		r.OnDeliver(head, r.blamePkt)
	}
	r.Deliver(head)
}

// gapTimerH fires the reassembler's stall check through the scheduler's
// closure-free path (the timer re-arms on every buffered arrival, so a
// per-arm closure would be a steady allocation in lossy runs).
type gapTimerH struct{ r *Reassembler }

// Handle implements sim.Handler.
func (h gapTimerH) Handle(any, sim.Time) { h.r.onGapTimer() }

// NewReassembler returns a reassembler for a flow split across numQueues
// splitting cores with the given batch size.
func NewReassembler(numQueues, batchSize int, deliver func(*skb.SKB)) *Reassembler {
	if numQueues <= 0 {
		numQueues = 1
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &Reassembler{
		BatchSize: batchSize,
		Deliver:   deliver,
		queues:    make([][]*skb.SKB, numQueues),
		counter:   1,
	}
}

// Buffered returns the number of skbs currently parked awaiting their turn.
func (r *Reassembler) Buffered() int { return r.buffered }

// Counter returns the micro-flow ID currently being merged.
func (r *Reassembler) Counter() uint64 { return r.counter }

// ExpectedSeq returns the next segment sequence the merger will deliver.
func (r *Reassembler) ExpectedSeq() uint64 { return r.expectedSeq }

// Arrive accepts an skb from a splitting core's processing path and pumps
// the merger. skbs must carry the MicroFlow stamp from the Splitter.
func (r *Reassembler) Arrive(s *skb.SKB) error {
	if s.MicroFlow == 0 {
		return fmt.Errorf("reassembler: %v has no micro-flow stamp", s)
	}
	if s.Seq < r.arrivedMax {
		// A segment already arrived with a higher sequence: this
		// arrival is an inversion (the classic reordering metric).
		r.OOOSKBs++
		r.OOOSegments += uint64(s.Segs)
	}
	if end := s.EndSeq(); end > r.arrivedMax {
		r.arrivedMax = end
	}
	qi := int((s.MicroFlow - 1) % uint64(len(r.queues)))
	if r.TagRouting {
		qi = s.Branch % len(r.queues)
	}
	r.queues[qi] = append(r.queues[qi], s)
	r.buffered++
	if r.buffered > r.BufferedPeak {
		r.BufferedPeak = r.buffered
	}
	r.blamePkt = s.PktID
	r.pump()
	r.blamePkt = 0
	for r.Budget > 0 && r.buffered > r.Budget {
		r.BudgetReleased++
		r.releaseHole()
	}
	if r.buffered > 0 {
		r.armGapTimer()
	}
	return nil
}

// violation records a contiguity violation: panic under Strict (the
// lossless-run invariant check), otherwise count it and let the caller
// degrade to the gap-tolerant behavior.
func (r *Reassembler) violation(format string, args ...any) {
	if r.Strict {
		panic(fmt.Sprintf(format, args...))
	}
	r.Errors++
	if r.FirstErr == nil {
		r.FirstErr = fmt.Errorf(format, args...)
	}
}

// armGapTimer schedules a stall check GapTimeout from now (one pending
// event at most). When the timer finds no segment was delivered for a full
// period while skbs sat buffered, it force-releases the hole.
func (r *Reassembler) armGapTimer() {
	if r.gapArmed || r.GapTimeout <= 0 || r.Sched == nil {
		return
	}
	r.gapArmed = true
	r.gapMark = r.DeliveredSegments
	r.gapFrontier = r.arrivedMax
	if r.gapH.r == nil {
		r.gapH.r = r
	}
	r.Sched.AfterHandler(r.GapTimeout, r.gapH, nil)
}

func (r *Reassembler) onGapTimer() {
	r.gapArmed = false
	if r.buffered == 0 {
		return
	}
	if r.DeliveredSegments != r.gapMark {
		// The merger made progress since arming; keep watching.
		r.armGapTimer()
		return
	}
	// Stalled for a full period. Every buffered head below the arrival
	// frontier recorded at arming is either a late retransmission the
	// merger already skipped past, or data blocked on a segment that
	// predates everything received since — pipeline skew is far smaller
	// than the timeout, so that segment is lost, not delayed. Release all
	// of them in one pass (a serial one-hole-per-timeout release cannot
	// keep up with steady loss); heads at or past the frontier are younger
	// and get their own full period.
	limit := r.gapFrontier
	for r.buffered > 0 {
		head := r.lowestHead()
		if head == nil || head.Seq >= limit {
			break
		}
		r.releaseHole()
	}
	if r.buffered > 0 {
		r.armGapTimer()
	}
}

// lowestHead returns the lowest-sequence buffered queue head, or nil.
func (r *Reassembler) lowestHead() *skb.SKB {
	var best *skb.SKB
	for _, q := range r.queues {
		if len(q) == 0 {
			continue
		}
		if best == nil || q[0].Seq < best.Seq {
			best = q[0]
		}
	}
	return best
}

// releaseHole delivers the lowest-sequence buffered head out of band and
// jumps the merging counter past the hole that stalled it, then pumps.
// The segments lost in the hole stay lost (UDP) or return later as
// retransmissions, which the stale path delivers.
func (r *Reassembler) releaseHole() {
	best := -1
	for i, q := range r.queues {
		if len(q) == 0 {
			continue
		}
		if best == -1 || q[0].Seq < r.queues[best][0].Seq {
			best = i
		}
	}
	if best == -1 {
		return
	}
	head := r.queues[best][0]
	r.queues[best] = r.queues[best][1:]
	r.buffered--
	r.HolesReleased++
	if head.MicroFlow > r.counter {
		r.counter = head.MicroFlow
		r.Switches++
	}
	if end := head.EndSeq(); end > r.expectedSeq {
		r.expectedSeq = end
	}
	r.DeliveredSegments += uint64(head.Segs)
	if r.Core != nil && r.PerSKB > 0 {
		r.Core.Exec(r.PerSKB, "mflow-merge")
	}
	if r.OnHoleReleased != nil {
		r.OnHoleReleased(head)
	}
	r.deliver(head)
	for r.expectedSeq >= r.counter*uint64(r.BatchSize) {
		r.advance()
	}
	r.pump()
}

// pump drains whole micro-flows in counter order while queue heads allow.
func (r *Reassembler) pump() {
	if r.TagRouting {
		r.pumpTagged()
		return
	}
	for {
		qi := int((r.counter - 1) % uint64(len(r.queues)))
		q := r.queues[qi]
		if len(q) == 0 {
			return // current micro-flow still in flight on its core
		}
		head := q[0]
		if head.MicroFlow > r.counter {
			// The queue is FIFO per core, so a later micro-flow at the
			// head means the current one ended short (final partial
			// batch or datagram loss): rotate.
			r.advance()
			continue
		}
		if head.MicroFlow < r.counter {
			// A micro-flow the merger already rotated past (loss made an
			// earlier batch look complete, or a retransmission arrived
			// long after its batch): deliver it immediately rather than
			// stalling the stream.
			if !r.AllowGaps {
				r.violation("reassembler: stale %v behind counter %d", head, r.counter)
			}
			r.StaleSKBs++
			r.queues[qi] = q[1:]
			r.buffered--
			r.DeliveredSegments += uint64(head.Segs)
			if r.Core != nil && r.PerSKB > 0 {
				r.Core.Exec(r.PerSKB, "mflow-merge")
			}
			r.deliver(head)
			continue
		}
		if head.Seq != r.expectedSeq {
			if !r.AllowGaps {
				// Within a micro-flow the core's FIFO preserves order; a
				// gap here means segment loss, which a lossless TCP path
				// never produces.
				r.violation("reassembler: head %v but expected seq %d", head, r.expectedSeq)
			}
			// Loss upstream: skip over the hole (forward only).
			if head.Seq > r.expectedSeq {
				r.expectedSeq = head.Seq
			}
		}
		r.queues[qi] = q[1:]
		r.buffered--
		r.expectedSeq = head.EndSeq()
		r.DeliveredSegments += uint64(head.Segs)
		if r.Core != nil && r.PerSKB > 0 {
			r.Core.Exec(r.PerSKB, "mflow-merge")
		}
		r.deliver(head)
		// Advance over every batch boundary the delivery crossed (a
		// GRO super-packet can straddle boundaries when one core
		// serves adjacent micro-flows).
		for r.expectedSeq >= r.counter*uint64(r.BatchSize) {
			r.advance()
		}
	}
}

// pumpTagged is the merge loop for tag-routed arrivals, where the counter's
// micro-flow may live on any queue (a Splitter gate routes mice
// off-formula). The per-branch FIFO argument still holds: while the
// counter's micro-flow is in flight on its branch, that branch's buffer
// queue can only hold earlier micro-flows; so if every non-empty queue head
// is ahead of the counter, the counter's micro-flow is complete and the
// merger rotates.
func (r *Reassembler) pumpTagged() {
	for {
		progressed := false
		// Drain any stale heads (micro-flows rotated past under loss).
		for i := range r.queues {
			for len(r.queues[i]) > 0 && r.queues[i][0].MicroFlow < r.counter {
				if !r.AllowGaps {
					r.violation("reassembler: stale %v behind counter %d", r.queues[i][0], r.counter)
				}
				head := r.queues[i][0]
				r.queues[i] = r.queues[i][1:]
				r.buffered--
				r.StaleSKBs++
				r.DeliveredSegments += uint64(head.Segs)
				if r.Core != nil && r.PerSKB > 0 {
					r.Core.Exec(r.PerSKB, "mflow-merge")
				}
				r.deliver(head)
				progressed = true
			}
		}
		// Locate the queue carrying the counter's micro-flow.
		cur := -1
		anyEmpty := false
		for i, q := range r.queues {
			if len(q) == 0 {
				anyEmpty = true
				continue
			}
			if q[0].MicroFlow == r.counter {
				cur = i
				break
			}
		}
		if cur == -1 {
			if r.RouteOf != nil {
				tgt, state := r.RouteOf(r.counter)
				switch state {
				case RouteFuture:
					return // not dispatched yet
				case RouteExpired:
					r.advance() // ancient and absent: lost
					continue
				default:
					if len(r.queues[tgt%len(r.queues)]) == 0 {
						return // in flight on its branch
					}
					r.advance() // its branch moved past it: lost
					continue
				}
			}
			if anyEmpty {
				if progressed {
					continue
				}
				return // the counter's micro-flow may still be in flight
			}
			r.advance() // every head is ahead: the micro-flow is complete
			continue
		}
		head := r.queues[cur][0]
		if head.Seq != r.expectedSeq {
			if !r.AllowGaps {
				r.violation("reassembler: head %v but expected seq %d", head, r.expectedSeq)
			}
			if head.Seq > r.expectedSeq {
				r.expectedSeq = head.Seq
			}
		}
		r.queues[cur] = r.queues[cur][1:]
		r.buffered--
		r.expectedSeq = head.EndSeq()
		r.DeliveredSegments += uint64(head.Segs)
		if r.Core != nil && r.PerSKB > 0 {
			r.Core.Exec(r.PerSKB, "mflow-merge")
		}
		r.deliver(head)
		for r.expectedSeq >= r.counter*uint64(r.BatchSize) {
			r.advance()
		}
	}
}

func (r *Reassembler) advance() {
	r.counter++
	r.Switches++
	if r.Core != nil && r.SwitchCost > 0 {
		r.Core.Exec(r.SwitchCost, "mflow-merge")
	}
}

// Flush delivers everything still buffered in sequence order, used at the
// end of a run when the final micro-flow is partial. It returns the number
// of skbs flushed.
func (r *Reassembler) Flush() int {
	n := 0
	for r.buffered > 0 {
		// Find the queue whose head has the lowest sequence.
		best := -1
		for i, q := range r.queues {
			if len(q) == 0 {
				continue
			}
			if best == -1 || q[0].Seq < r.queues[best][0].Seq {
				best = i
			}
		}
		if best == -1 {
			break
		}
		head := r.queues[best][0]
		r.queues[best] = r.queues[best][1:]
		r.buffered--
		r.expectedSeq = head.EndSeq()
		r.DeliveredSegments += uint64(head.Segs)
		r.deliver(head)
		n++
	}
	return n
}
