package core

import (
	"testing"
	"testing/quick"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

func mfseg(seq uint64, mf uint64) *skb.SKB {
	return &skb.SKB{FlowID: 1, Seq: seq, Segs: 1, PayloadLen: 1448, MicroFlow: mf}
}

func TestReassemblerNonStrictRecordsGapInsteadOfPanicking(t *testing.T) {
	var out []*skb.SKB
	r := NewReassembler(2, 4, collect(&out))
	// Same gapped stream as TestReassemblerPartialFinalBatchRotates, but
	// without Strict: the violation must be recorded, not panic.
	a := mfseg(0, 1)
	r.Arrive(a)
	for i := uint64(4); i < 8; i++ {
		r.Arrive(mfseg(i, 2))
	}
	b := mfseg(8, 3)
	r.Arrive(b) // head-ID rotation exposes the 1..3 gap
	if r.Errors == 0 || r.FirstErr == nil {
		t.Fatalf("gap must be recorded: errors=%d err=%v", r.Errors, r.FirstErr)
	}
	// Degraded like AllowGaps: the stream continues past the hole.
	if len(out) != 6 {
		t.Fatalf("delivered %d skbs, want 6 (hole skipped)", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Seq < out[i-1].Seq {
			t.Fatalf("delivery left order: %d after %d", out[i].Seq, out[i-1].Seq)
		}
	}
}

func TestReassemblerAllowGapsStaleRelease(t *testing.T) {
	var out []*skb.SKB
	r := NewReassembler(2, 4, collect(&out))
	r.AllowGaps = true
	// mf1 delivers only seg 0; mf2 (q1) completes; mf3 (q0) appears, so
	// the merger rotates past mf1's remainder. Then mf1's seg 1 shows up
	// late (a retransmission): it must be delivered as stale, not panic.
	r.Arrive(mfseg(0, 1))
	for i := uint64(4); i < 8; i++ {
		r.Arrive(mfseg(i, 2))
	}
	r.Arrive(mfseg(8, 3))
	late := mfseg(1, 1)
	r.Arrive(late)
	if r.StaleSKBs != 1 {
		t.Fatalf("StaleSKBs = %d, want 1", r.StaleSKBs)
	}
	found := false
	for _, s := range out {
		if s == late {
			found = true
		}
	}
	if !found {
		t.Fatal("late retransmission must still be delivered")
	}
}

func TestReassemblerGapTimeoutReleasesHole(t *testing.T) {
	sched := sim.NewScheduler(1)
	var out []*skb.SKB
	r := NewReassembler(2, 4, collect(&out))
	r.AllowGaps = true
	r.GapTimeout = 100 * sim.Microsecond
	r.Sched = sched
	// mf1 (q0) lost entirely; mf2's segments sit parked on q1 with no
	// further arrivals to force a rotation — without the timer this
	// stalls forever.
	sched.At(0, func() {
		for i := uint64(4); i < 8; i++ {
			r.Arrive(mfseg(i, 2))
		}
	})
	sched.RunUntil(sim.Time(50 * sim.Microsecond))
	if len(out) != 0 {
		t.Fatal("merger released the hole before the gap timeout")
	}
	sched.RunUntil(sim.Time(sim.Millisecond))
	if len(out) != 4 {
		t.Fatalf("gap timeout released %d skbs, want 4", len(out))
	}
	if r.HolesReleased == 0 {
		t.Fatal("HolesReleased not counted")
	}
	if r.Buffered() != 0 {
		t.Fatalf("still %d buffered after release", r.Buffered())
	}
	for i := 1; i < len(out); i++ {
		if out[i].Seq < out[i-1].Seq {
			t.Fatalf("release broke order: %v after %v", out[i].Seq, out[i-1].Seq)
		}
	}
}

func TestReassemblerGapTimeoutWaitsWhileProgressing(t *testing.T) {
	sched := sim.NewScheduler(1)
	var out []*skb.SKB
	r := NewReassembler(2, 4, collect(&out))
	r.AllowGaps = true
	r.GapTimeout = 100 * sim.Microsecond
	r.Sched = sched
	// Feed in-order micro-flows slowly (one every 60µs, under the
	// timeout): the timer must keep re-arming without releasing.
	for i := 0; i < 8; i++ {
		seq := uint64(i)
		sched.At(sim.Time(sim.Duration(i*60)*sim.Microsecond), func() {
			r.Arrive(mfseg(seq, seq/4+1))
		})
	}
	sched.RunUntil(sim.Time(sim.Millisecond))
	if r.HolesReleased != 0 {
		t.Fatalf("timer released %d holes on a healthy stream", r.HolesReleased)
	}
	if len(out) != 8 {
		t.Fatalf("delivered %d, want 8", len(out))
	}
}

func TestReassemblerFlushUnderLoss(t *testing.T) {
	var out []*skb.SKB
	r := NewReassembler(3, 4, collect(&out))
	r.AllowGaps = true
	// Holes everywhere: segments {1,2}, {6}, {9,10,11} lost upstream.
	for _, seq := range []uint64{0, 3, 4, 5, 7, 8, 12, 13} {
		r.Arrive(mfseg(seq, seq/4+1))
	}
	r.Flush()
	if r.Buffered() != 0 {
		t.Fatalf("%d skbs left after Flush", r.Buffered())
	}
	if len(out) != 8 {
		t.Fatalf("delivered %d skbs, want all 8 survivors", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Seq < out[i-1].Seq {
			t.Fatalf("flush broke order: %d after %d", out[i].Seq, out[i-1].Seq)
		}
	}
}

// TestReassemblerDeliveryMonotonicUnderLoss is the property test: for any
// loss pattern over a batched stream, delivery (including the final Flush)
// stays monotonic in sequence order — per splitting branch the FIFO
// invariant holds, and the merger never delivers a smaller sequence after
// a larger one except via the explicitly counted stale path.
func TestReassemblerDeliveryMonotonicUnderLoss(t *testing.T) {
	const (
		queues = 3
		batch  = 4
		total  = 96
	)
	check := func(lossBits uint64, seed uint64) bool {
		var out []*skb.SKB
		r := NewReassembler(queues, batch, collect(&out))
		r.AllowGaps = true
		survivors := 0
		for seq := uint64(0); seq < total; seq++ {
			if lossBits&(1<<(seq%64)) != 0 && (seq/64)%2 == seed%2 {
				continue // lost upstream
			}
			mf := seq/batch + 1
			r.Arrive(mfseg(seq, mf))
			survivors++
		}
		r.Flush()
		if len(out) != survivors {
			return false
		}
		stale := 0
		for i := 1; i < len(out); i++ {
			if out[i].Seq < out[i-1].Seq {
				stale++
			}
		}
		// The pump path must stay monotonic; only stale deliveries (which
		// the reassembler counts) may break order.
		return uint64(stale) <= r.StaleSKBs
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
