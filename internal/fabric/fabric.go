// Package fabric models a multi-host underlay: N simulated hosts share one
// deterministic DES clock and exchange VxLAN-encapsulated frames over a
// leaf-switch wire model. Each host owns an uplink and a downlink serializer
// (bandwidth-limited, byte-bounded queue with tail drop) joined by a
// propagation delay, so a TX host's encap output is carried — serialized,
// delayed, possibly dropped — into the RX host's NIC ring, where the usual
// RPS/FALCON/MFLOW steering applies.
//
// The package holds the pure wire/FDB machinery; internal/overlay wires it
// into scenarios through Scenario.Fabric. A nil or zero Config builds
// nothing: single-host runs never touch this package.
package fabric

import (
	"fmt"

	"mflow/internal/netdev"
	"mflow/internal/packet"
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// Placement names for Config.Placement.
const (
	// PlacePair spreads flows ring-wise: flow f is received on host f%N
	// and sent from the next host — every host both sends and receives,
	// the scale-out regime.
	PlacePair = "pair"
	// PlaceIncast receives every flow on host 0 and spreads senders over
	// hosts 1..N-1 — the N→1 incast regime that saturates one receiver.
	PlaceIncast = "incast"
)

// Config describes the fabric. The zero value (and a nil pointer) disable
// it entirely: the scenario runs single-host, bit-for-bit identical to a
// build without this package.
type Config struct {
	// Hosts is the number of simulated hosts; >= 2 enables the fabric.
	Hosts int
	// Placement selects cross-host flow placement: PlacePair (default) or
	// PlaceIncast.
	Placement string
	// LinkGbps is each host's uplink/downlink serialization rate
	// (default 40). sim time is nanoseconds, so 1 Gbps == 1 bit/ns and
	// serialization math stays exact.
	LinkGbps float64
	// LinkLatency is the one-way propagation delay across the underlay
	// (default 5µs).
	LinkLatency sim.Duration
	// LinkQueueBytes bounds each link's standing queue; frames that would
	// push the backlog past it are tail-dropped (default 512 KiB).
	LinkQueueBytes int
	// FDBMaxAge ages VTEP FDB entries (zero, the default, never ages):
	// an expired destination floods again until relearned.
	FDBMaxAge sim.Duration
}

// Enabled reports whether the config actually builds a fabric.
func (c *Config) Enabled() bool { return c != nil && c.Hosts >= 2 }

// WithDefaults returns the config with unset knobs filled.
func (c Config) WithDefaults() Config {
	if c.Placement == "" {
		c.Placement = PlacePair
	}
	if c.LinkGbps <= 0 {
		c.LinkGbps = 40
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = 5 * sim.Microsecond
	}
	if c.LinkQueueBytes <= 0 {
		c.LinkQueueBytes = 512 << 10
	}
	return c
}

// Place returns flow f's (tx, rx) host pair under the config's placement.
func (c Config) Place(f int) (tx, rx int) {
	n := c.Hosts
	if c.Placement == PlaceIncast {
		if n < 2 {
			return 0, 0
		}
		return 1 + f%(n-1), 0
	}
	rx = f % n
	return (rx + 1) % n, rx
}

// ContainerMAC derives the deterministic MAC of flow f's endpoint on a
// host: locally administered, host and flow encoded in the low bytes. rx
// selects the receiving container (true) or the sending client (false).
func ContainerMAC(flow uint64, host int, rx bool) packet.MAC {
	side := byte(0xc1) // client
	if rx {
		side = 0xc0 // container
	}
	return packet.MAC{0x02, side, byte(host), byte(flow >> 16), byte(flow >> 8), byte(flow)}
}

// Link is a fluid serializer with a byte-bounded tail-drop queue: one
// direction of one host's underlay attachment. The horizon is the time the
// serializer frees; backlog is (horizon-now)·rate, and a frame that would
// push it past QueueBytes is dropped before consuming any bandwidth.
type Link struct {
	Name       string
	Gbps       float64
	QueueBytes int

	horizon sim.Time

	// TxFrames/TxBytes count serialized frames (flood copies included);
	// Drops counts tail drops at this link's queue.
	TxFrames uint64
	TxBytes  uint64
	Drops    uint64
}

// Send serializes a frame of the given size starting no earlier than now,
// returning the departure time (serialization complete) and whether the
// queue accepted it.
func (l *Link) Send(now sim.Time, bytes int) (sim.Time, bool) {
	if l.horizon < now {
		l.horizon = now
	}
	// Backlog in bytes: queued time × rate. 1 Gbps is exactly 1 bit/ns.
	backlog := int(float64(l.horizon.Sub(now)) * l.Gbps / 8)
	if l.QueueBytes > 0 && backlog+bytes > l.QueueBytes {
		l.Drops++
		return 0, false
	}
	l.horizon = l.horizon.Add(sim.Duration(float64(bytes) * 8 / l.Gbps))
	l.TxFrames++
	l.TxBytes += uint64(bytes)
	return l.horizon, true
}

// Depth returns the queued backlog in bytes at now.
func (l *Link) Depth(now sim.Time) int {
	if l.horizon <= now {
		return 0
	}
	return int(float64(l.horizon.Sub(now)) * l.Gbps / 8)
}

// Underlay connects N hosts through per-host uplink/downlink serializers
// and a propagation delay between them (host → switch → host). Frames are
// events on the shared scheduler; delivery lands in DeliverTo, which the
// overlay wiring points at the destination host's NIC chain.
type Underlay struct {
	sched *sim.Scheduler
	lat   sim.Duration
	up    []*Link
	down  []*Link

	// DeliverTo hands a frame that survived both serializers to the
	// destination host's receive edge (fault wrap → arrival sequencing →
	// NIC ring). Set by the overlay wiring before traffic starts.
	DeliverTo func(dst int, s *skb.SKB)
	// Drop retires a frame tail-dropped inside the underlay (returns it
	// to the run's SKB pool). Set by the overlay wiring.
	Drop func(s *skb.SKB)

	// Sent counts real frames offered to the wire toward their owner
	// (flood copies excluded); Delivered those handed to DeliverTo; Drops
	// tail drops of real frames at either serializer (copies dropped at a
	// full link are not counted — no data was lost). Conservation holds
	// at every instant: Sent == Delivered + Drops + InFlight().
	Sent      uint64
	Delivered uint64
	Drops     uint64
	// FloodCopies counts head-end-replication copies serialized for
	// non-owner peers while a destination was unlearned.
	FloodCopies uint64

	inFlight int
	free     []*transit
}

// NewUnderlay builds the wire model for n hosts from cfg (assumed
// defaulted) on the shared scheduler.
func NewUnderlay(n int, cfg Config, sched *sim.Scheduler) *Underlay {
	u := &Underlay{sched: sched, lat: cfg.LinkLatency}
	for i := 0; i < n; i++ {
		u.up = append(u.up, &Link{
			Name: fmt.Sprintf("h%d-up", i), Gbps: cfg.LinkGbps, QueueBytes: cfg.LinkQueueBytes,
		})
		u.down = append(u.down, &Link{
			Name: fmt.Sprintf("h%d-down", i), Gbps: cfg.LinkGbps, QueueBytes: cfg.LinkQueueBytes,
		})
	}
	return u
}

// Up and Down expose the per-host links (observability, tests).
func (u *Underlay) Up(i int) *Link   { return u.up[i] }
func (u *Underlay) Down(i int) *Link { return u.down[i] }

// InFlight returns the number of real frames currently inside the underlay
// (accepted by an uplink, not yet delivered or dropped).
func (u *Underlay) InFlight() int { return u.inFlight }

// transit carries one frame (or one flood-copy accounting token, s == nil)
// across the underlay's two serialization hops. It is its own event
// handler and returns to a freelist after the final hop.
type transit struct {
	u     *Underlay
	s     *skb.SKB
	bytes int
	dst   int
	hop   int // 0: arrived at the switch (enqueue downlink); 1: deliver
}

// Handle implements sim.Handler.
func (t *transit) Handle(_ any, now sim.Time) {
	u := t.u
	switch t.hop {
	case 0:
		dep, ok := u.down[t.dst].Send(now, t.bytes)
		if !ok {
			if t.s != nil {
				u.Drops++
				u.inFlight--
				u.drop(t.s)
			}
			u.put(t)
			return
		}
		if t.s == nil {
			// A flood copy ends at the downlink: its bandwidth is
			// accounted, no frame materializes.
			u.put(t)
			return
		}
		t.hop = 1
		u.sched.AtHandler(dep, t, nil)
	case 1:
		u.inFlight--
		u.Delivered++
		s := t.s
		dst := t.dst
		u.put(t)
		u.DeliverTo(dst, s)
	}
}

func (u *Underlay) drop(s *skb.SKB) {
	if u.Drop != nil {
		u.Drop(s)
	}
}

func (u *Underlay) get() *transit {
	if n := len(u.free); n > 0 {
		t := u.free[n-1]
		u.free = u.free[:n-1]
		return t
	}
	return &transit{u: u}
}

func (u *Underlay) put(t *transit) {
	t.s, t.bytes, t.dst, t.hop = nil, 0, 0, 0
	u.free = append(u.free, t)
}

// Send carries s from host tx toward host dst: uplink serialization, the
// propagation delay, downlink serialization, then DeliverTo. Returns false
// if the uplink queue tail-dropped the frame — ownership then stays with
// the caller (the traffic.Ingress contract: a false Deliver means the
// sender recycles the skb itself). Frames the underlay accepted are its
// own to retire: downlink tail-drops route through the Drop hook.
func (u *Underlay) Send(now sim.Time, tx, dst int, s *skb.SKB) bool {
	u.Sent++
	dep, ok := u.up[tx].Send(now, s.WireLen)
	if !ok {
		u.Drops++
		return false
	}
	u.inFlight++
	t := u.get()
	t.s, t.bytes, t.dst = s, s.WireLen, dst
	u.sched.AtHandler(dep.Add(u.lat), t, nil)
	return true
}

// SendCopy accounts one head-end-replication copy toward a non-owner peer:
// it consumes uplink and downlink bandwidth like a real frame but carries
// no skb — the owner's copy is the only one that materializes, so flooding
// costs wire capacity without double-delivering data.
func (u *Underlay) SendCopy(now sim.Time, tx, dst, bytes int) {
	dep, ok := u.up[tx].Send(now, bytes)
	if !ok {
		return
	}
	u.FloodCopies++
	t := u.get()
	t.bytes, t.dst = bytes, dst
	u.sched.AtHandler(dep.Add(u.lat), t, nil)
}

// learnEvt retro-teaches a TX host's FDB after a flooded frame reached its
// owner — the stand-in for the reply frame that would carry the learning
// in a real deployment (the simulator's ACK path is an abstract callback,
// not a wire frame). Scheduled one propagation delay after delivery.
type learnEvt struct {
	b    *netdev.Bridge
	mac  packet.MAC
	port int
}

// Handle implements sim.Handler.
func (e *learnEvt) Handle(_ any, now sim.Time) {
	e.b.LearnAt(e.mac, e.port, now)
}

// ScheduleLearn arms a reverse-learn event after the underlay's one-way
// latency: bridge b learns mac→port as if the owner's reply frame had just
// arrived.
func (u *Underlay) ScheduleLearn(b *netdev.Bridge, mac packet.MAC, port int) {
	u.sched.AfterHandler(u.lat, &learnEvt{b: b, mac: mac, port: port}, nil)
}
