package fabric

import (
	"testing"

	"mflow/internal/fault"
	"mflow/internal/netdev"
	"mflow/internal/packet"
	"mflow/internal/sim"
	"mflow/internal/skb"
)

func TestConfigEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config must be disabled")
	}
	if (&Config{}).Enabled() {
		t.Error("zero config must be disabled")
	}
	if (&Config{Hosts: 1}).Enabled() {
		t.Error("one host is not a fabric")
	}
	if !(&Config{Hosts: 2}).Enabled() {
		t.Error("two hosts must enable the fabric")
	}
}

func TestConfigDefaultsAndPlacement(t *testing.T) {
	c := Config{Hosts: 3}.WithDefaults()
	if c.Placement != PlacePair || c.LinkGbps != 40 ||
		c.LinkLatency != 5*sim.Microsecond || c.LinkQueueBytes != 512<<10 {
		t.Errorf("defaults not applied: %+v", c)
	}
	// Pair: rx = f%N, tx the next host ring-wise; never tx == rx.
	for f := 0; f < 9; f++ {
		tx, rx := c.Place(f)
		if rx != f%3 || tx != (rx+1)%3 {
			t.Errorf("pair flow %d placed tx=%d rx=%d", f, tx, rx)
		}
	}
	inc := Config{Hosts: 4, Placement: PlaceIncast}.WithDefaults()
	for f := 0; f < 9; f++ {
		tx, rx := inc.Place(f)
		if rx != 0 || tx == 0 || tx != 1+f%3 {
			t.Errorf("incast flow %d placed tx=%d rx=%d", f, tx, rx)
		}
	}
}

func TestContainerMACDistinct(t *testing.T) {
	seen := map[packet.MAC]bool{}
	for f := uint64(1); f <= 8; f++ {
		for h := 0; h < 4; h++ {
			for _, rx := range []bool{true, false} {
				m := ContainerMAC(f, h, rx)
				if seen[m] {
					t.Fatalf("duplicate MAC %v for flow=%d host=%d rx=%v", m, f, h, rx)
				}
				seen[m] = true
			}
		}
	}
}

// TestLinkSerialization pins the fluid serializer's exact math: sim time is
// nanoseconds, so a 1 Gbps link serializes 1 bit per nanosecond.
func TestLinkSerialization(t *testing.T) {
	l := &Link{Gbps: 1, QueueBytes: 1000}
	dep, ok := l.Send(0, 125) // 1000 bits at 1 bit/ns
	if !ok || dep != 1000 {
		t.Fatalf("first frame dep=%v ok=%v, want 1000ns", dep, ok)
	}
	dep, ok = l.Send(0, 125) // queues behind the first
	if !ok || dep != 2000 {
		t.Fatalf("second frame dep=%v ok=%v, want 2000ns", dep, ok)
	}
	if d := l.Depth(0); d != 250 {
		t.Errorf("Depth(0) = %d bytes, want 250", d)
	}
	if d := l.Depth(1000); d != 125 {
		t.Errorf("Depth(1000) = %d bytes, want 125", d)
	}
	if d := l.Depth(3000); d != 0 {
		t.Errorf("Depth(3000) = %d bytes, want 0 after drain", d)
	}
	// A frame that would push the backlog past QueueBytes tail-drops
	// without consuming bandwidth.
	if _, ok := l.Send(0, 800); ok {
		t.Fatal("backlog 250+800 > 1000 bytes must tail-drop")
	}
	if l.Drops != 1 || l.TxFrames != 2 || l.TxBytes != 250 {
		t.Errorf("counters drops=%d frames=%d bytes=%d", l.Drops, l.TxFrames, l.TxBytes)
	}
	// The drop left the horizon untouched: the next fitting frame queues
	// exactly behind the second.
	if dep, ok := l.Send(0, 125); !ok || dep != 3000 {
		t.Errorf("post-drop frame dep=%v ok=%v, want 3000ns", dep, ok)
	}
}

func testUnderlay(n int, cfg Config) (*Underlay, *sim.Scheduler) {
	sched := sim.NewScheduler(1)
	return NewUnderlay(n, cfg.WithDefaults(), sched), sched
}

// TestUnderlayDeliveryOrderAndLatency sends a burst host0→host1 and checks
// per-flow FIFO delivery, exact first-frame latency (uplink serialization +
// propagation + downlink serialization) and conservation.
func TestUnderlayDeliveryOrderAndLatency(t *testing.T) {
	cfg := Config{Hosts: 2, LinkGbps: 1, LinkLatency: 5 * sim.Microsecond}
	u, sched := testUnderlay(2, cfg)
	var got []uint64
	var at []sim.Time
	u.DeliverTo = func(dst int, s *skb.SKB) {
		if dst != 1 {
			t.Fatalf("frame for host 1 delivered to %d", dst)
		}
		got = append(got, s.Seq)
		at = append(at, sched.Now())
	}
	u.Drop = func(*skb.SKB) { t.Fatal("lossless config dropped") }
	for i := 0; i < 10; i++ {
		s := &skb.SKB{FlowID: 1, Seq: uint64(i), Segs: 1, WireLen: 125}
		if !u.Send(sched.Now(), 0, 1, s) {
			t.Fatalf("frame %d rejected at uplink", i)
		}
	}
	sched.RunUntil(sim.Time(1 * sim.Millisecond))
	if len(got) != 10 || u.Delivered != 10 || u.Sent != 10 || u.InFlight() != 0 {
		t.Fatalf("delivered %d (counter %d, sent %d, inflight %d), want 10",
			len(got), u.Delivered, u.Sent, u.InFlight())
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("delivery order broken at %d: got seq %d", i, seq)
		}
	}
	// 125 B at 1 Gbps = 1000ns per serializer, plus 5µs propagation.
	if want := sim.Time(1000 + 5000 + 1000); at[0] != want {
		t.Errorf("first delivery at %v, want %v", at[0], want)
	}
	// Back-to-back frames pace out at the serialization interval.
	if gap := at[1].Sub(at[0]); gap != 1000 {
		t.Errorf("inter-delivery gap %v, want 1000ns", gap)
	}
}

// TestUnderlayDropOwnership pins the skb-ownership contract: an uplink
// tail-drop returns false and leaves the frame with the caller; a downlink
// tail-drop (the incast case) retires through the Drop hook.
func TestUnderlayDropOwnership(t *testing.T) {
	cfg := Config{Hosts: 3, LinkGbps: 1, LinkLatency: sim.Microsecond, LinkQueueBytes: 300}
	u, sched := testUnderlay(3, cfg)
	delivered, dropped := 0, 0
	u.DeliverTo = func(_ int, s *skb.SKB) { delivered++ }
	u.Drop = func(s *skb.SKB) { dropped++ }

	// Uplink drop: host 0's uplink holds 300 bytes; the third 125-byte
	// frame must be refused synchronously.
	okCount := 0
	for i := 0; i < 3; i++ {
		if u.Send(sched.Now(), 0, 1, &skb.SKB{FlowID: 1, Seq: uint64(i), Segs: 1, WireLen: 125}) {
			okCount++
		}
	}
	if okCount != 2 || u.Drops != 1 {
		t.Fatalf("uplink accepted %d frames (drops=%d), want 2 accepted 1 dropped", okCount, u.Drops)
	}
	if dropped != 0 {
		t.Fatal("uplink tail-drop must NOT retire via the Drop hook (caller owns the skb)")
	}

	// Downlink drop: hosts 0 and 2 both blast host 1; its downlink queue
	// cannot hold both bursts, so some frames die inside the underlay and
	// MUST retire through Drop.
	for i := 0; i < 4; i++ {
		u.Send(sched.Now(), 0, 1, &skb.SKB{FlowID: 1, Segs: 1, WireLen: 75})
		u.Send(sched.Now(), 2, 1, &skb.SKB{FlowID: 2, Segs: 1, WireLen: 75})
	}
	sched.RunUntil(sim.Time(1 * sim.Millisecond))
	if dropped == 0 {
		t.Fatal("incast onto one downlink never dropped")
	}
	if u.Sent != u.Delivered+u.Drops+uint64(u.InFlight()) {
		t.Fatalf("conservation broken: sent=%d delivered=%d drops=%d inflight=%d",
			u.Sent, u.Delivered, u.Drops, u.InFlight())
	}
	if delivered == 0 {
		t.Fatal("no frames survived the incast")
	}
}

// TestFloodCopiesConsumeBandwidthOnly checks head-end replication: copies
// serialize on the links (delaying real traffic) but never deliver and are
// invisible to Sent/Delivered conservation.
func TestFloodCopiesConsumeBandwidthOnly(t *testing.T) {
	cfg := Config{Hosts: 3, LinkGbps: 1, LinkLatency: sim.Microsecond}
	u, sched := testUnderlay(3, cfg)
	var deliveries []sim.Time
	u.DeliverTo = func(_ int, s *skb.SKB) { deliveries = append(deliveries, sched.Now()) }
	u.Drop = func(*skb.SKB) { t.Fatal("unexpected drop") }

	// Copy first, then the real frame: the copy's serialization delays it.
	u.SendCopy(0, 0, 2, 125)
	if !u.Send(0, 0, 1, &skb.SKB{FlowID: 1, Segs: 1, WireLen: 125}) {
		t.Fatal("real frame rejected")
	}
	sched.RunUntil(sim.Time(1 * sim.Millisecond))
	if u.FloodCopies != 1 || u.Sent != 1 || u.Delivered != 1 {
		t.Fatalf("copies=%d sent=%d delivered=%d, want 1/1/1", u.FloodCopies, u.Sent, u.Delivered)
	}
	if len(deliveries) != 1 {
		t.Fatalf("flood copy materialized: %d deliveries", len(deliveries))
	}
	// Real frame queued behind the copy: 2×1000ns uplink + 1µs + 1000ns.
	if want := sim.Time(2000 + 1000 + 1000); deliveries[0] != want {
		t.Errorf("delivery at %v, want %v (copy must serialize first)", deliveries[0], want)
	}
	if u.Up(0).TxFrames != 2 {
		t.Errorf("uplink serialized %d frames, want 2 (copy + real)", u.Up(0).TxFrames)
	}
}

// TestScheduleLearn verifies the reverse-learn event: the bridge learns the
// MAC one propagation delay later, not immediately.
func TestScheduleLearn(t *testing.T) {
	cfg := Config{Hosts: 2, LinkLatency: 3 * sim.Microsecond}
	u, sched := testUnderlay(2, cfg)
	b := netdev.NewBridge()
	b.AttachPort(func(*skb.SKB) {})
	b.AttachPort(func(*skb.SKB) {})
	mac := ContainerMAC(1, 1, true)
	u.ScheduleLearn(b, mac, 1)
	if _, ok := b.Lookup(mac); ok {
		t.Fatal("bridge learned before the propagation delay elapsed")
	}
	sched.RunUntil(sim.Time(2 * sim.Microsecond))
	if _, ok := b.Lookup(mac); ok {
		t.Fatal("bridge learned too early")
	}
	sched.RunUntil(sim.Time(4 * sim.Microsecond))
	if p, ok := b.Lookup(mac); !ok || p != 1 {
		t.Fatalf("bridge did not learn after latency: port=%d ok=%v", p, ok)
	}
}

// TestVxLANWireRoundTrip carries encapsulated frames across the underlay
// under injected loss (the chaos wire profiles) with two sender hosts
// interleaving arrivals at one receiver: every frame that survives decaps
// back to its original length, and conservation holds end to end.
func TestVxLANWireRoundTrip(t *testing.T) {
	for name, plan := range fault.ChaosProfiles() {
		if !plan.WireActive() {
			continue
		}
		cfg := Config{Hosts: 3, LinkGbps: 10, LinkLatency: 2 * sim.Microsecond}
		u, sched := testUnderlay(3, cfg)
		inj := fault.NewInjector(*plan, 42)

		const inner = 1500
		vx := &netdev.VXLAN{VNI: 7}
		var survived, decapErrs int
		var rxFault fault.Ingress = deliverFunc(func(s *skb.SKB) bool {
			if err := vx.Decap(s); err != nil {
				decapErrs++
				return false
			}
			if s.WireLen != inner*s.Segs {
				t.Fatalf("%s: round-trip length %d, want %d", name, s.WireLen, inner*s.Segs)
			}
			survived++
			return true
		})
		tap := inj.Wrap(rxFault)
		injDropped := 0
		u.DeliverTo = func(_ int, s *skb.SKB) {
			if !tap.Deliver(s) {
				injDropped++
			}
		}
		u.Drop = func(*skb.SKB) {}

		sent := 0
		for i := 0; i < 200; i++ {
			tx := 1 + i%2 // hosts 1 and 2 interleave toward host 0
			s := &skb.SKB{FlowID: uint64(tx), Seq: uint64(i), Segs: 1, WireLen: inner}
			vx.Encap(s)
			if s.WireLen != inner+packet.OverlayOverhead {
				t.Fatalf("%s: encap length %d", name, s.WireLen)
			}
			if u.Send(sched.Now(), tx, 0, s) {
				sent++
			}
			sched.RunUntil(sched.Now().Add(500))
		}
		sched.RunUntil(sched.Now().Add(sim.Duration(1 * sim.Millisecond)))
		if u.Sent != u.Delivered+u.Drops+uint64(u.InFlight()) {
			t.Fatalf("%s: underlay conservation broken", name)
		}
		if survived == 0 {
			t.Fatalf("%s: nothing survived the round trip", name)
		}
		if survived+injDropped != int(u.Delivered)+int(vx.Errors) {
			t.Fatalf("%s: delivery accounting: survived=%d +injDropped=%d != delivered=%d +vxErrs=%d",
				name, survived, injDropped, u.Delivered, vx.Errors)
		}
	}
}

// deliverFunc adapts a func to the fault.Ingress interface.
type deliverFunc func(*skb.SKB) bool

func (f deliverFunc) Deliver(s *skb.SKB) bool { return f(s) }

// BenchmarkFabricOff pins the disabled path at zero allocations: a
// single-host run's only contact with this package is the nil-config
// Enabled check, and the underlay's per-frame Link ops must stay
// allocation-free for fabric runs too. The CI bench gate enforces
// 0 allocs/op.
func BenchmarkFabricOff(b *testing.B) {
	var cfg *Config
	l := &Link{Gbps: 40, QueueBytes: 512 << 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// One 1500B frame per 400ns: under the 300ns serialization time at
		// 40 Gbps, so the queue never builds and nothing drops.
		now := sim.Time(i) * 400
		if cfg.Enabled() {
			b.Fatal("disabled config reported enabled")
		}
		if _, ok := l.Send(now, 1500); !ok {
			b.Fatal("uncongested link dropped")
		}
		if l.Depth(now) < 0 {
			b.Fatal("negative depth")
		}
	}
}
