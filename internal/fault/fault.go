// Package fault is the deterministic fault-injection subsystem: it models
// the failures real overlay networks see — random and bursty link loss,
// frame duplication, payload corruption, and CPU interference ("core
// stalls") — at well-defined points of the simulated receive path. Every
// decision draws from the injector's own seeded PRNG, never from the
// scheduler's, so two runs with the same scenario seed and the same fault
// plan take identical fault decisions, and a plan with every rate at zero
// leaves a run bit-for-bit identical to an uninjected one.
//
// Injection points (chosen where real stacks lose packets):
//
//	wire     — before NIC arrival: drop (uniform or Gilbert–Elliott burst),
//	           duplicate, corrupt (detectable by wire-mode checksums)
//	ring     — NIC descriptor-ring admission (DMA/overrun-style loss)
//	backlog  — softirq backlog enqueue (netif_rx drops)
//	socket   — socket receive-queue enqueue (rmem pressure; UDP paths only,
//	           TCP advertises a window instead of dropping acked data)
//
// Core stalls and IRQ jitter are applied through sim.Core's existing
// interference/jitter knobs on the kernel-core pool.
package fault

import (
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// Defaults used when a Plan enables faults but leaves the recovery knobs
// unset.
const (
	// DefaultRTO is the sender's initial retransmission timeout before any
	// RTT sample exists.
	DefaultRTO = 2 * sim.Millisecond
	// DefaultGapTimeout is how long the MFLOW reassembler waits on an
	// empty buffer queue before rotating past the hole.
	DefaultGapTimeout = 500 * sim.Microsecond
	// DefaultOFOCap bounds the kernel TCP out-of-order queue under faults
	// (tcp_max_ofo-style pruning).
	DefaultOFOCap = 4096
)

// GilbertElliott is the classic two-state burst-loss channel: the link
// moves between a Good and a Bad state with per-packet transition
// probabilities, and drops packets with a state-dependent probability.
// Mean burst length is 1/PBadGood packets; the stationary fraction of time
// spent in the bad state is PGoodBad/(PGoodBad+PBadGood).
type GilbertElliott struct {
	// PGoodBad / PBadGood are the per-packet state transition
	// probabilities (good→bad and bad→good).
	PGoodBad float64
	PBadGood float64
	// LossGood / LossBad are the per-packet drop probabilities in each
	// state (classic Gilbert: LossGood=0, LossBad near 1).
	LossGood float64
	LossBad  float64
}

// MeanLoss returns the model's stationary packet-loss probability.
func (g *GilbertElliott) MeanLoss() float64 {
	if g == nil {
		return 0
	}
	den := g.PGoodBad + g.PBadGood
	if den <= 0 {
		return g.LossGood
	}
	bad := g.PGoodBad / den
	return (1-bad)*g.LossGood + bad*g.LossBad
}

// Profile describes the wire-level faults applied to each arriving frame.
type Profile struct {
	// Drop is a uniform per-frame drop probability.
	Drop float64
	// Burst, when set, adds Gilbert–Elliott burst loss on top of Drop.
	Burst *GilbertElliott
	// Dup is the per-frame duplication probability (the duplicate is a
	// deep copy delivered immediately after the original).
	Dup float64
	// Corrupt is the per-frame corruption probability. In wire mode the
	// frame's bytes are flipped inside the outer IPv4 header so the
	// existing header checksum / decap validation catches it downstream;
	// without wire bytes a corrupted frame is dropped (the NIC/stack
	// would discard it on checksum failure).
	Corrupt float64
}

// active reports whether the profile can affect any frame.
func (p Profile) active() bool {
	return p.Drop > 0 || p.Dup > 0 || p.Corrupt > 0 ||
		(p.Burst != nil && (p.Burst.LossGood > 0 || p.Burst.LossBad > 0))
}

// Plan configures every fault point of one scenario run.
type Plan struct {
	// Seed perturbs the injector's PRNG independently of the scenario
	// seed (zero is fine; the scenario seed still applies).
	Seed uint64

	// Wire is the lossy-link profile applied before NIC arrival.
	Wire Profile
	// RingDrop / BacklogDrop / SockDrop are per-enqueue drop
	// probabilities at the NIC descriptor ring, the softirq backlog
	// queues, and the (UDP) socket receive queue.
	RingDrop    float64
	BacklogDrop float64
	SockDrop    float64

	// StallProb adds per-execution interference ("core stall") on every
	// kernel core with exponentially distributed duration of mean
	// StallMean; IRQJitter widens the cores' log-normal execution jitter.
	StallProb float64
	StallMean sim.Duration
	IRQJitter float64

	// RTO overrides the TCP sender's initial retransmission timeout
	// (DefaultRTO when zero). GapTimeout overrides the reassembler's
	// hole-release timer (DefaultGapTimeout when zero). OFOCap overrides
	// the TCP out-of-order queue bound (DefaultOFOCap when zero).
	RTO        sim.Duration
	GapTimeout sim.Duration
	OFOCap     int
}

// Enabled reports whether the plan injects any fault at all. A nil plan or
// a plan with every rate at zero is inert: the topology builder wires
// nothing, so the run is bit-for-bit identical to one without a plan.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.Wire.active() || p.RingDrop > 0 || p.BacklogDrop > 0 || p.SockDrop > 0 ||
		p.StallProb > 0 || p.IRQJitter > 0
}

// WireActive reports whether the plan's wire profile can affect any frame
// (the topology builder only interposes the wire tap when it can).
func (p *Plan) WireActive() bool { return p != nil && p.Wire.active() }

// RTOOrDefault returns the plan's initial RTO, defaulted.
func (p *Plan) RTOOrDefault() sim.Duration {
	if p != nil && p.RTO > 0 {
		return p.RTO
	}
	return DefaultRTO
}

// GapTimeoutOrDefault returns the plan's reassembler hole-release timeout,
// defaulted.
func (p *Plan) GapTimeoutOrDefault() sim.Duration {
	if p != nil && p.GapTimeout > 0 {
		return p.GapTimeout
	}
	return DefaultGapTimeout
}

// OFOCapOrDefault returns the plan's TCP out-of-order queue bound,
// defaulted.
func (p *Plan) OFOCapOrDefault() int {
	if p != nil && p.OFOCap > 0 {
		return p.OFOCap
	}
	return DefaultOFOCap
}

// ChaosProfiles returns the named fault plans of the chaos harness: the
// acceptance matrix every system × protocol must survive. "random" is
// uniform 1% frame loss with light duplication; "burst" is a
// Gilbert–Elliott channel with mean burst length 10 frames and ~2%
// stationary loss. Callers get fresh plans each time (safe to mutate).
func ChaosProfiles() map[string]*Plan {
	return map[string]*Plan{
		"random": {
			Wire: Profile{Drop: 0.01, Dup: 0.002},
		},
		"burst": {
			Wire: Profile{
				Burst: &GilbertElliott{PGoodBad: 0.002, PBadGood: 0.1, LossBad: 0.75},
			},
		},
	}
}

// Ingress matches traffic.Ingress structurally (declared here so the fault
// package does not depend on the traffic package).
type Ingress interface {
	Deliver(*skb.SKB) bool
}

// Injector takes the per-packet fault decisions for one run. It is
// single-goroutine like the simulation; one run, one injector.
type Injector struct {
	plan Plan
	rng  *sim.Rand
	bad  bool // Gilbert–Elliott channel state

	// Per-point fault counters.
	WireDrops    uint64
	BurstDrops   uint64
	WireDups     uint64
	WireCorrupts uint64
	RingDrops    uint64
	BacklogDrops uint64
	SockDrops    uint64
}

// NewInjector returns an injector for plan, seeded from the scenario seed
// mixed with the plan's own seed. The injector's PRNG is independent of the
// scheduler's, so fault decisions never perturb execution jitter draws.
func NewInjector(plan Plan, scenarioSeed uint64) *Injector {
	return &Injector{
		plan: plan,
		rng:  sim.NewRand(scenarioSeed ^ plan.Seed ^ 0xfa017fa017fa017f),
	}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Total returns the number of faults injected so far across all points.
func (in *Injector) Total() uint64 {
	return in.WireDrops + in.BurstDrops + in.WireDups + in.WireCorrupts +
		in.RingDrops + in.BacklogDrops + in.SockDrops
}

// Drops returns the injected drops (everything except duplications;
// corruptions count, since a corrupted frame is either discarded or
// delivered unusable).
func (in *Injector) Drops() uint64 {
	return in.WireDrops + in.BurstDrops + in.WireCorrupts +
		in.RingDrops + in.BacklogDrops + in.SockDrops
}

// dropWire advances the burst channel one packet and decides a wire drop.
func (in *Injector) dropWire() (drop, burst bool) {
	p := in.plan.Wire
	if g := p.Burst; g != nil {
		if in.bad {
			if in.rng.Float64() < g.PBadGood {
				in.bad = false
			}
		} else if in.rng.Float64() < g.PGoodBad {
			in.bad = true
		}
		loss := g.LossGood
		if in.bad {
			loss = g.LossBad
		}
		if loss > 0 && in.rng.Float64() < loss {
			return true, true
		}
	}
	if p.Drop > 0 && in.rng.Float64() < p.Drop {
		return true, false
	}
	return false, false
}

// DropRing decides (and counts) a NIC-ring admission drop.
func (in *Injector) DropRing() bool {
	if in.plan.RingDrop > 0 && in.rng.Float64() < in.plan.RingDrop {
		in.RingDrops++
		return true
	}
	return false
}

// DropBacklog decides (and counts) a softirq-backlog enqueue drop.
func (in *Injector) DropBacklog() bool {
	if in.plan.BacklogDrop > 0 && in.rng.Float64() < in.plan.BacklogDrop {
		in.BacklogDrops++
		return true
	}
	return false
}

// DropSock decides (and counts) a socket receive-queue enqueue drop.
func (in *Injector) DropSock() bool {
	if in.plan.SockDrop > 0 && in.rng.Float64() < in.plan.SockDrop {
		in.SockDrops++
		return true
	}
	return false
}

// Clone deep-copies an skb (including wire bytes) for duplication. A plain
// struct copy would alias the original's arena and frag chain, so the copy
// goes through skb.Clone, which rebuilds the byte stream in the clone's
// own arena (headroom preserved).
func Clone(s *skb.SKB) *skb.SKB {
	return s.Clone()
}

// wireTap applies the wire profile in front of an ingress point.
type wireTap struct {
	in   *Injector
	next Ingress
}

// Wrap returns an ingress that applies the plan's wire profile (drop,
// duplicate, corrupt) to every frame before handing it to next. Frames the
// tap drops report false, like a NIC rejecting them.
func (in *Injector) Wrap(next Ingress) Ingress {
	return &wireTap{in: in, next: next}
}

// Deliver implements Ingress.
func (t *wireTap) Deliver(s *skb.SKB) bool {
	in := t.in
	if drop, burst := in.dropWire(); drop {
		if burst {
			in.BurstDrops++
		} else {
			in.WireDrops++
		}
		return false
	}
	if in.plan.Wire.Dup > 0 && in.rng.Float64() < in.plan.Wire.Dup {
		in.WireDups++
		t.next.Deliver(Clone(s))
	}
	if in.plan.Wire.Corrupt > 0 && in.rng.Float64() < in.plan.Wire.Corrupt {
		in.WireCorrupts++
		if s.Data == nil {
			// No wire bytes to flip: the frame would fail its checksum
			// in hardware or at the IP layer — model it as a drop.
			return false
		}
		in.corrupt(s.Data)
	}
	return t.next.Deliver(s)
}

// corrupt flips one byte inside the frame's leading IPv4 header region so
// the header checksum (validated by the wire-mode parse path) catches it.
func (in *Injector) corrupt(data []byte) {
	// Ethernet header is 14 bytes; the IPv4 header follows. Flip within
	// the first header's 20 bytes (never past the buffer).
	off := 14 + in.rng.Intn(20)
	if off >= len(data) {
		off = in.rng.Intn(len(data))
	}
	data[off] ^= 0xff
}
