package fault

import (
	"math"
	"testing"

	"mflow/internal/skb"
)

// sink records everything delivered through a tap.
type sink struct {
	got []*skb.SKB
}

func (s *sink) Deliver(sk *skb.SKB) bool {
	s.got = append(s.got, sk)
	return true
}

func frames(n int) []*skb.SKB {
	out := make([]*skb.SKB, n)
	for i := range out {
		out[i] = &skb.SKB{FlowID: 1, Seq: uint64(i), Segs: 1, PayloadLen: 1448}
	}
	return out
}

func TestEnabledSemantics(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Fatal("nil plan must be disabled")
	}
	if (&Plan{}).Enabled() {
		t.Fatal("zero plan must be disabled")
	}
	if (&Plan{Seed: 7, RTO: DefaultRTO, OFOCap: 10}).Enabled() {
		t.Fatal("recovery knobs alone must not enable injection")
	}
	if (&Plan{Wire: Profile{Burst: &GilbertElliott{PGoodBad: 0.1, PBadGood: 0.1}}}).Enabled() {
		t.Fatal("burst model with zero loss probs must be disabled")
	}
	for _, p := range []*Plan{
		{Wire: Profile{Drop: 0.01}},
		{Wire: Profile{Dup: 0.01}},
		{Wire: Profile{Corrupt: 0.01}},
		{Wire: Profile{Burst: &GilbertElliott{PGoodBad: 0.01, PBadGood: 0.1, LossBad: 1}}},
		{RingDrop: 0.01},
		{BacklogDrop: 0.01},
		{SockDrop: 0.01},
		{StallProb: 0.01},
		{IRQJitter: 0.1},
	} {
		if !p.Enabled() {
			t.Fatalf("plan %+v should be enabled", *p)
		}
	}
}

func TestDefaults(t *testing.T) {
	var p *Plan
	if p.RTOOrDefault() != DefaultRTO || p.GapTimeoutOrDefault() != DefaultGapTimeout || p.OFOCapOrDefault() != DefaultOFOCap {
		t.Fatal("nil plan must yield defaults")
	}
	q := &Plan{RTO: 123, GapTimeout: 456, OFOCap: 7}
	if q.RTOOrDefault() != 123 || q.GapTimeoutOrDefault() != 456 || q.OFOCapOrDefault() != 7 {
		t.Fatal("set knobs must be returned verbatim")
	}
}

func TestDeterministicDecisions(t *testing.T) {
	plan := Plan{Wire: Profile{Drop: 0.05, Dup: 0.02, Corrupt: 0.01}, RingDrop: 0.03}
	run := func() ([]uint64, uint64) {
		in := NewInjector(plan, 42)
		s := &sink{}
		tap := in.Wrap(s)
		for _, f := range frames(5000) {
			tap.Deliver(f)
		}
		var rings uint64
		for i := 0; i < 1000; i++ {
			if in.DropRing() {
				rings++
			}
		}
		seqs := make([]uint64, len(s.got))
		for i, f := range s.got {
			seqs[i] = f.Seq
		}
		return seqs, rings
	}
	a, ra := run()
	b, rb := run()
	if len(a) != len(b) || ra != rb {
		t.Fatalf("same seed diverged: %d vs %d delivered, %d vs %d ring drops", len(a), len(b), ra, rb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c, _ := run2(plan, 43)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical decisions")
		}
	}
}

func run2(plan Plan, seed uint64) ([]uint64, uint64) {
	in := NewInjector(plan, seed)
	s := &sink{}
	tap := in.Wrap(s)
	for _, f := range frames(5000) {
		tap.Deliver(f)
	}
	seqs := make([]uint64, len(s.got))
	for i, f := range s.got {
		seqs[i] = f.Seq
	}
	return seqs, in.Total()
}

func TestUniformDropRate(t *testing.T) {
	const n, p = 200000, 0.01
	in := NewInjector(Plan{Wire: Profile{Drop: p}}, 1)
	s := &sink{}
	tap := in.Wrap(s)
	for _, f := range frames(n) {
		tap.Deliver(f)
	}
	got := float64(in.WireDrops) / n
	if math.Abs(got-p) > p/2 {
		t.Fatalf("uniform drop rate %.4f, want ≈ %.4f", got, p)
	}
	if in.Total() != in.WireDrops || in.Drops() != in.WireDrops {
		t.Fatalf("counter accounting off: total=%d drops=%d wire=%d", in.Total(), in.Drops(), in.WireDrops)
	}
}

func TestGilbertElliottBurstStatistics(t *testing.T) {
	// Mean burst ≈ 1/PBadGood = 10 packets; stationary loss ≈ MeanLoss().
	g := &GilbertElliott{PGoodBad: 0.002, PBadGood: 0.1, LossBad: 0.75}
	const n = 400000
	in := NewInjector(Plan{Wire: Profile{Burst: g}}, 9)
	s := &sink{}
	tap := in.Wrap(s)
	dropped := make([]bool, n)
	for i, f := range frames(n) {
		before := in.BurstDrops
		tap.Deliver(f)
		dropped[i] = in.BurstDrops > before
	}
	want := g.MeanLoss()
	got := float64(in.BurstDrops) / n
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("GE stationary loss %.4f, want ≈ %.4f", got, want)
	}
	// Burstiness: losses must cluster far more than a uniform channel with
	// the same rate — measure P(drop[i+1] | drop[i]).
	var pairs, both int
	for i := 0; i+1 < n; i++ {
		if dropped[i] {
			pairs++
			if dropped[i+1] {
				both++
			}
		}
	}
	cond := float64(both) / float64(pairs)
	if cond < 3*want {
		t.Fatalf("loss not bursty: P(drop|drop)=%.3f vs stationary %.4f", cond, want)
	}
}

func TestDuplicationDeepCopies(t *testing.T) {
	in := NewInjector(Plan{Wire: Profile{Dup: 1}}, 3)
	s := &sink{}
	tap := in.Wrap(s)
	orig := &skb.SKB{FlowID: 1, Seq: 5, Segs: 1, PayloadLen: 100, Data: []byte{1, 2, 3}}
	tap.Deliver(orig)
	if len(s.got) != 2 || in.WireDups != 1 {
		t.Fatalf("dup=1 should deliver twice, got %d (dups=%d)", len(s.got), in.WireDups)
	}
	clone, second := s.got[0], s.got[1]
	if clone == second {
		t.Fatal("duplicate must be a distinct skb")
	}
	if clone.Seq != orig.Seq || string(clone.Data) != string(orig.Data) {
		t.Fatal("duplicate must carry the same seq and bytes")
	}
	clone.Data[0] = 0xee
	if orig.Data[0] == 0xee {
		t.Fatal("duplicate shares the wire-byte buffer with the original")
	}
}

func TestCorruptionFlipsHeaderByteOrDrops(t *testing.T) {
	in := NewInjector(Plan{Wire: Profile{Corrupt: 1}}, 4)
	s := &sink{}
	tap := in.Wrap(s)

	data := make([]byte, 60)
	orig := append([]byte(nil), data...)
	withBytes := &skb.SKB{FlowID: 1, Seq: 1, Data: data}
	if !tap.Deliver(withBytes) || len(s.got) != 1 {
		t.Fatal("corrupted wire frame must still be delivered (detectable downstream)")
	}
	diff, diffAt := 0, -1
	for i := range data {
		if data[i] != orig[i] {
			diff++
			diffAt = i
		}
	}
	if diff != 1 {
		t.Fatalf("corruption must flip exactly one byte, flipped %d", diff)
	}
	if diffAt < 14 || diffAt >= 34 {
		t.Fatalf("corruption at offset %d, want inside the outer IPv4 header [14,34)", diffAt)
	}

	noBytes := &skb.SKB{FlowID: 1, Seq: 2}
	if tap.Deliver(noBytes) {
		t.Fatal("corrupting a byteless frame must drop it")
	}
	if in.WireCorrupts != 2 {
		t.Fatalf("corrupt counter = %d, want 2", in.WireCorrupts)
	}
}

func TestPointDropRates(t *testing.T) {
	in := NewInjector(Plan{RingDrop: 0.02, BacklogDrop: 0.03, SockDrop: 0.05}, 8)
	const n = 100000
	for i := 0; i < n; i++ {
		in.DropRing()
		in.DropBacklog()
		in.DropSock()
	}
	check := func(name string, got uint64, p float64) {
		rate := float64(got) / n
		if math.Abs(rate-p) > p/2 {
			t.Fatalf("%s rate %.4f, want ≈ %.4f", name, rate, p)
		}
	}
	check("ring", in.RingDrops, 0.02)
	check("backlog", in.BacklogDrops, 0.03)
	check("sock", in.SockDrops, 0.05)
	if in.Total() != in.RingDrops+in.BacklogDrops+in.SockDrops {
		t.Fatal("Total must sum all point counters")
	}
}

func TestMeanLoss(t *testing.T) {
	if (&GilbertElliott{LossGood: 0.25}).MeanLoss() != 0.25 {
		t.Fatal("degenerate GE (no transitions) must report LossGood")
	}
	g := &GilbertElliott{PGoodBad: 0.1, PBadGood: 0.1, LossBad: 1}
	if math.Abs(g.MeanLoss()-0.5) > 1e-12 {
		t.Fatalf("MeanLoss = %v, want 0.5", g.MeanLoss())
	}
	var nilG *GilbertElliott
	if nilG.MeanLoss() != 0 {
		t.Fatal("nil GE must report 0")
	}
}
