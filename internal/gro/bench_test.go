package gro

import (
	"testing"

	"mflow/internal/skb"
)

func benchBatch(n int) []*skb.SKB {
	batch := make([]*skb.SKB, n)
	for i := range batch {
		batch[i] = &skb.SKB{FlowID: 1, Proto: skb.TCP, Seq: uint64(i), Segs: 1, WireLen: 1500, PayloadLen: 1448}
	}
	return batch
}

func BenchmarkCoalesce64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		batch := benchBatch(64)
		b.StartTimer()
		g := New()
		_ = g.Coalesce(batch)
	}
}

// BenchmarkGROMerge is the steady-state copy-free merge path with real
// pooled arenas: 64 same-flow wire-bearing segments per batch coalesce
// into one frag-chained super-packet, which is then recycled. With a warm
// pool the whole cycle — Get, Reserve, extend the payload window,
// Coalesce, recycle — allocates nothing; pinned at 0 B/op in
// bench_baseline.txt.
func BenchmarkGROMerge(b *testing.B) {
	const batchLen = 64
	pool := &skb.Pool{}
	g := New()
	g.Recycle = pool.Put
	batch := make([]*skb.SKB, batchLen)
	round := func() {
		for j := range batch {
			s := pool.Get()
			s.FlowID, s.Proto = 1, skb.TCP
			s.Seq, s.Segs = uint64(j), 1
			s.WireLen, s.PayloadLen = 1500, 1448
			s.Reserve(0, 1448)
			s.Put(1448)
			batch[j] = s
		}
		for _, h := range g.Coalesce(batch) {
			pool.Put(h)
		}
	}
	round() // warm the pool, the arena freelist, and the head table
	b.SetBytes(batchLen * 1448)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
}

func BenchmarkCoalesceInterleaved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		batch := make([]*skb.SKB, 64)
		seqs := map[uint64]uint64{}
		for j := range batch {
			flow := uint64(j % 4)
			batch[j] = &skb.SKB{FlowID: flow, Proto: skb.TCP, Seq: seqs[flow], Segs: 1, WireLen: 1500, PayloadLen: 1448}
			seqs[flow]++
		}
		b.StartTimer()
		g := New()
		_ = g.Coalesce(batch)
	}
}
