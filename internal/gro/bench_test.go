package gro

import (
	"testing"

	"mflow/internal/skb"
)

func benchBatch(n int) []*skb.SKB {
	batch := make([]*skb.SKB, n)
	for i := range batch {
		batch[i] = &skb.SKB{FlowID: 1, Proto: skb.TCP, Seq: uint64(i), Segs: 1, WireLen: 1500, PayloadLen: 1448}
	}
	return batch
}

func BenchmarkCoalesce64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		batch := benchBatch(64)
		b.StartTimer()
		g := New()
		_ = g.Coalesce(batch)
	}
}

func BenchmarkCoalesceInterleaved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		batch := make([]*skb.SKB, 64)
		seqs := map[uint64]uint64{}
		for j := range batch {
			flow := uint64(j % 4)
			batch[j] = &skb.SKB{FlowID: flow, Proto: skb.TCP, Seq: seqs[flow], Segs: 1, WireLen: 1500, PayloadLen: 1448}
			seqs[flow]++
		}
		b.StartTimer()
		g := New()
		_ = g.Coalesce(batch)
	}
}
