// Package gro implements generic receive offload: coalescing consecutive
// same-flow TCP segments of a NAPI poll batch into larger super-packets so
// that downstream per-packet stage costs are paid once per super-packet.
// Mirroring the kernel behaviour the paper leans on (§II footnote 2), GRO is
// effective for TCP but passes UDP through untouched — which is why
// device-level pipelining (FALCON) helps UDP yet fails to relieve TCP's
// skb-alloc+GRO core, and why MFLOW needs pre-skb IRQ splitting for TCP.
package gro

import "mflow/internal/skb"

// DefaultMaxBytes caps a GRO super-packet at 64 KB, like the kernel.
const DefaultMaxBytes = 65536

// GRO coalesces poll batches. The zero value is a disabled engine; use New.
type GRO struct {
	// MaxBytes caps the payload a single super-packet may accumulate.
	MaxBytes int
	// Enabled turns coalescing on. Disabled, Coalesce is the identity.
	Enabled bool

	// SegsIn counts wire segments offered; SkbsOut counts skbs emitted.
	// SegsIn/SkbsOut is the achieved amortization factor.
	SegsIn  uint64
	SkbsOut uint64

	// Recycle, if set, receives each skb absorbed into a super-packet
	// (its coverage lives on in the merge head) so the run's pool can
	// reuse it.
	Recycle func(*skb.SKB)
}

// New returns an enabled GRO engine with the default byte cap.
func New() *GRO {
	return &GRO{MaxBytes: DefaultMaxBytes, Enabled: true}
}

// Factor returns the achieved merge factor so far (1 if nothing processed).
func (g *GRO) Factor() float64 {
	if g.SkbsOut == 0 {
		return 1
	}
	return float64(g.SegsIn) / float64(g.SkbsOut)
}

// Coalesce merges the batch, preserving first-arrival order of the emitted
// skbs. Only in-order continuations merge (skb.CanMerge): same flow, TCP,
// same encapsulation state, no message boundary in between, and within the
// byte cap. Like kernel GRO, the engine holds state only within one batch —
// everything flushes when the poll round ends.
func (g *GRO) Coalesce(batch []*skb.SKB) []*skb.SKB {
	for _, s := range batch {
		g.SegsIn += uint64(s.Segs)
	}
	if !g.Enabled || len(batch) <= 1 {
		g.SkbsOut += uint64(len(batch))
		return batch
	}
	max := g.MaxBytes
	if max <= 0 {
		max = DefaultMaxBytes
	}
	out := batch[:0]
	heads := make(map[uint64]*skb.SKB, 4) // per-flow in-progress super-packet
	for _, s := range batch {
		if h, ok := heads[s.FlowID]; ok && h.CanMerge(s) && h.PayloadLen+s.PayloadLen <= max {
			h.Merge(s)
			if g.Recycle != nil {
				g.Recycle(s)
			}
			continue
		}
		out = append(out, s)
		heads[s.FlowID] = s
	}
	g.SkbsOut += uint64(len(out))
	return out
}
