// Package gro implements generic receive offload: coalescing consecutive
// same-flow TCP segments of a NAPI poll batch into larger super-packets so
// that downstream per-packet stage costs are paid once per super-packet.
// Mirroring the kernel behaviour the paper leans on (§II footnote 2), GRO is
// effective for TCP but passes UDP through untouched — which is why
// device-level pipelining (FALCON) helps UDP yet fails to relieve TCP's
// skb-alloc+GRO core, and why MFLOW needs pre-skb IRQ splitting for TCP.
package gro

import "mflow/internal/skb"

// DefaultMaxBytes caps a GRO super-packet at 64 KB, like the kernel.
const DefaultMaxBytes = 65536

// GRO coalesces poll batches. The zero value is a disabled engine; use New.
type GRO struct {
	// MaxBytes caps the payload a single super-packet may accumulate.
	MaxBytes int
	// Enabled turns coalescing on. Disabled, Coalesce is the identity.
	Enabled bool

	// SegsIn counts wire segments offered; SkbsOut counts skbs emitted.
	// SegsIn/SkbsOut is the achieved amortization factor.
	SegsIn  uint64
	SkbsOut uint64

	// Recycle, if set, receives each skb absorbed into a super-packet
	// (its coverage lives on in the merge head) so the run's pool can
	// reuse it.
	Recycle func(*skb.SKB)

	// heads is the per-batch in-progress super-packet table, reused
	// across Coalesce calls so the steady state allocates nothing. Flow
	// counts per poll batch are small, so a linear scan beats a map.
	heads []flowHead
}

// flowHead pairs a flow with its current merge head within one batch.
type flowHead struct {
	flow uint64
	s    *skb.SKB
}

// New returns an enabled GRO engine with the default byte cap.
func New() *GRO {
	return &GRO{MaxBytes: DefaultMaxBytes, Enabled: true}
}

// Factor returns the achieved merge factor so far (1 if nothing processed).
func (g *GRO) Factor() float64 {
	if g.SkbsOut == 0 {
		return 1
	}
	return float64(g.SegsIn) / float64(g.SkbsOut)
}

// Coalesce merges the batch, preserving first-arrival order of the emitted
// skbs. Only in-order continuations merge (skb.CanMerge): same flow, TCP,
// same encapsulation state, no message boundary in between, and within the
// byte cap. Like kernel GRO, the engine holds state only within one batch —
// everything flushes when the poll round ends.
//
// A merge is copy-free: skb.Merge chains the absorbed segment's byte
// window onto the head as a frag reference (the kernel's frag-list shape),
// so a wire-mode super-packet is one head frame plus N chained frames, and
// only the terminal reader ever walks or materializes the stream.
func (g *GRO) Coalesce(batch []*skb.SKB) []*skb.SKB {
	for _, s := range batch {
		g.SegsIn += uint64(s.Segs)
	}
	if !g.Enabled || len(batch) <= 1 {
		g.SkbsOut += uint64(len(batch))
		return batch
	}
	max := g.MaxBytes
	if max <= 0 {
		max = DefaultMaxBytes
	}
	out := batch[:0]
	heads := g.heads[:0] // per-flow in-progress super-packet, capacity reused
	for _, s := range batch {
		hi := -1
		for i := range heads {
			if heads[i].flow == s.FlowID {
				hi = i
				break
			}
		}
		if hi >= 0 {
			if h := heads[hi].s; h.CanMerge(s) && h.PayloadLen+s.PayloadLen <= max {
				h.Merge(s)
				if g.Recycle != nil {
					g.Recycle(s)
				}
				continue
			}
		}
		out = append(out, s)
		if hi >= 0 {
			heads[hi].s = s
		} else {
			heads = append(heads, flowHead{flow: s.FlowID, s: s})
		}
	}
	for i := range heads {
		heads[i].s = nil // don't pin emitted skbs past the batch
	}
	g.heads = heads[:0]
	g.SkbsOut += uint64(len(out))
	return out
}
