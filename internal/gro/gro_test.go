package gro

import (
	"testing"
	"testing/quick"

	"mflow/internal/skb"
)

func tcpSeg(flow, seq uint64) *skb.SKB {
	return &skb.SKB{FlowID: flow, Proto: skb.TCP, Seq: seq, Segs: 1, WireLen: 1500, PayloadLen: 1448}
}

func udpSeg(flow, seq uint64) *skb.SKB {
	s := tcpSeg(flow, seq)
	s.Proto = skb.UDP
	return s
}

func TestCoalesceMergesConsecutiveTCP(t *testing.T) {
	g := New()
	batch := []*skb.SKB{tcpSeg(1, 0), tcpSeg(1, 1), tcpSeg(1, 2), tcpSeg(1, 3)}
	out := g.Coalesce(batch)
	if len(out) != 1 {
		t.Fatalf("got %d skbs, want 1", len(out))
	}
	if out[0].Segs != 4 || out[0].PayloadLen != 4*1448 {
		t.Errorf("merged skb wrong: %+v", out[0])
	}
	if g.Factor() != 4 {
		t.Errorf("factor %.1f, want 4", g.Factor())
	}
}

func TestCoalesceUDPPassesThrough(t *testing.T) {
	g := New()
	out := g.Coalesce([]*skb.SKB{udpSeg(1, 0), udpSeg(1, 1), udpSeg(1, 2)})
	if len(out) != 3 {
		t.Fatalf("UDP must not merge, got %d skbs", len(out))
	}
}

func TestCoalesceRespectsByteCap(t *testing.T) {
	g := New()
	g.MaxBytes = 3000 // two 1448-byte payloads fit, three don't
	out := g.Coalesce([]*skb.SKB{tcpSeg(1, 0), tcpSeg(1, 1), tcpSeg(1, 2), tcpSeg(1, 3)})
	if len(out) != 2 {
		t.Fatalf("got %d skbs, want 2 under 3000-byte cap", len(out))
	}
	if out[0].Segs != 2 || out[1].Segs != 2 {
		t.Errorf("split %d/%d, want 2/2", out[0].Segs, out[1].Segs)
	}
}

func TestCoalesceInterleavedFlows(t *testing.T) {
	g := New()
	out := g.Coalesce([]*skb.SKB{
		tcpSeg(1, 0), tcpSeg(2, 0), tcpSeg(1, 1), tcpSeg(2, 1),
	})
	if len(out) != 2 {
		t.Fatalf("got %d skbs, want 2 (one per flow)", len(out))
	}
	if out[0].FlowID != 1 || out[1].FlowID != 2 {
		t.Error("first-arrival order not preserved")
	}
	if out[0].Segs != 2 || out[1].Segs != 2 {
		t.Error("interleaved same-flow segments should merge")
	}
}

func TestCoalesceStopsAtGap(t *testing.T) {
	g := New()
	out := g.Coalesce([]*skb.SKB{tcpSeg(1, 0), tcpSeg(1, 2)}) // seq 1 missing
	if len(out) != 2 {
		t.Fatal("gap must not merge")
	}
}

func TestCoalesceStopsAtMessageBoundary(t *testing.T) {
	g := New()
	a := tcpSeg(1, 0)
	a.MsgEnd = true
	out := g.Coalesce([]*skb.SKB{a, tcpSeg(1, 1)})
	if len(out) != 2 {
		t.Fatal("message boundary must flush the super-packet")
	}
}

func TestDisabledGROIsIdentity(t *testing.T) {
	g := &GRO{}
	batch := []*skb.SKB{tcpSeg(1, 0), tcpSeg(1, 1)}
	out := g.Coalesce(batch)
	if len(out) != 2 {
		t.Fatal("disabled GRO must not merge")
	}
	if g.Factor() != 1 {
		t.Errorf("factor %.2f, want 1", g.Factor())
	}
}

func TestCoalesceEmptyAndSingle(t *testing.T) {
	g := New()
	if out := g.Coalesce(nil); len(out) != 0 {
		t.Error("empty batch")
	}
	if out := g.Coalesce([]*skb.SKB{tcpSeg(1, 5)}); len(out) != 1 {
		t.Error("single skb")
	}
}

// Property: coalescing conserves segments and bytes and preserves per-flow
// segment order.
func TestCoalesceConservationProperty(t *testing.T) {
	f := func(flowsRaw []uint8) bool {
		if len(flowsRaw) > 64 {
			flowsRaw = flowsRaw[:64]
		}
		g := New()
		nextSeq := map[uint64]uint64{}
		var batch []*skb.SKB
		totalSegs := 0
		for _, fr := range flowsRaw {
			flow := uint64(fr % 3)
			s := tcpSeg(flow, nextSeq[flow])
			nextSeq[flow]++
			batch = append(batch, s)
			totalSegs++
		}
		out := g.Coalesce(batch)
		gotSegs := 0
		gotBytes := 0
		lastEnd := map[uint64]uint64{}
		for _, s := range out {
			gotSegs += s.Segs
			gotBytes += s.WireLen
			if end, ok := lastEnd[s.FlowID]; ok && s.Seq < end {
				return false // per-flow order violated
			}
			lastEnd[s.FlowID] = s.EndSeq()
		}
		return gotSegs == totalSegs && gotBytes == totalSegs*1500
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
