// Package harness is the parallel deterministic experiment-execution
// engine. The paper's evaluation — and this repository's reproduction of
// it — is dozens of mutually independent discrete-event simulations, each
// a pure function of its scenario (topology, seed, windows). Replaying
// them strictly serially leaves every core but one idle, the exact
// pathology the paper diagnoses in the kernel's receive path. The harness
// fans such jobs out over a bounded worker pool and hands the results
// back in submission order, so a matrix executed on eight workers is
// indistinguishable — output byte for output byte — from the same matrix
// executed serially.
//
// Determinism is the contract, and it rests on two rules the callers
// uphold and the pool enforces by shape:
//
//  1. Jobs share nothing mutable. Each job owns a value-copied scenario,
//     its own seeded RNGs (simulation and fault-injection PRNGs are
//     derived from the scenario seed, never from a global source) and a
//     private obs.Registry. The pool adds no shared state of its own.
//  2. Aggregation order is submission order, never completion order.
//     Map writes each job's result into its submission slot; iteration
//     over the returned slice replays the serial order exactly.
//
// A panic inside a job does not deadlock the pool: every worker drains,
// then the lowest-index panic is re-raised on the calling goroutine so
// failures are reported deterministically too.
package harness

import (
	"fmt"
	"runtime"
	"sync"
)

// DefaultWorkers is the pool width used when none is given: GOMAXPROCS,
// i.e. "as many simulations in flight as the hardware allows".
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Map runs fn(i, items[i]) for every item on a pool of at most workers
// goroutines and returns the results indexed like items (submission
// order). workers <= 0 selects DefaultWorkers(); workers == 1 — or a
// single item — runs every job inline on the calling goroutine, which is
// the serial reference path the parallel output is measured against.
// fn must be safe for concurrent invocation and must not share mutable
// state across items.
func Map[T, R any](workers int, items []T, fn func(int, T) R) []R {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]R, len(items))
	if workers <= 1 {
		for i, it := range items {
			out[i] = fn(i, it)
		}
		return out
	}
	idx := make(chan int)
	panics := make([]any, len(items))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if p := recover(); p != nil {
							panics[i] = p
						}
					}()
					out[i] = fn(i, items[i])
				}()
			}
		}()
	}
	for i := range items {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("harness: job %d panicked: %v", i, p))
		}
	}
	return out
}

// Job is one named unit of work. The name is a stable identifier (a
// scenario key, a figure id) used for aggregation and diagnostics.
type Job[R any] struct {
	Name string
	Run  func() R
}

// Run executes jobs on the pool and returns their results in submission
// order. It is Map specialized to pre-bound closures.
func Run[R any](workers int, jobs []Job[R]) []R {
	return Map(workers, jobs, func(_ int, j Job[R]) R { return j.Run() })
}
