package harness

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesSubmissionOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 100} {
		out := Map(workers, items, func(_ int, v int) int { return v * v })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	items := make([]int, 50)
	Map(workers, items, func(_ int, _ int) int {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return 0
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, pool width %d", p, workers)
	}
}

func TestMapSerialRunsInline(t *testing.T) {
	// workers == 1 must execute on the calling goroutine in item order —
	// the serial reference path.
	var order []int
	var mu sync.Mutex
	Map(1, []int{0, 1, 2, 3}, func(i int, _ int) int {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
		return 0
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestMapParallelMatchesSerial(t *testing.T) {
	items := make([]uint64, 64)
	for i := range items {
		items[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	fn := func(_ int, v uint64) uint64 { // splitmix-style pure function
		v += 0x9e3779b97f4a7c15
		v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
		return v ^ (v >> 27)
	}
	serial := Map(1, items, fn)
	parallel := Map(8, items, fn)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %x != parallel %x", i, serial[i], parallel[i])
		}
	}
}

func TestMapRepanicsLowestIndex(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic not propagated")
		}
		msg, _ := p.(string)
		if !strings.Contains(msg, "job 3") {
			t.Fatalf("want lowest-index panic (job 3), got %v", p)
		}
	}()
	Map(4, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(i int, _ int) int {
		if i >= 3 {
			panic("boom")
		}
		return 0
	})
}

func TestRunJobs(t *testing.T) {
	jobs := []Job[string]{
		{Name: "a", Run: func() string { return "A" }},
		{Name: "b", Run: func() string { return "B" }},
	}
	out := Run(2, jobs)
	if out[0] != "A" || out[1] != "B" {
		t.Fatalf("job results out of order: %v", out)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers must be >= 1")
	}
	if out := Map(0, []int{1, 2}, func(_ int, v int) int { return v }); len(out) != 2 {
		t.Fatal("workers<=0 must still run everything")
	}
}
