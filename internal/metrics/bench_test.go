package metrics

import "testing"

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i%1_000_000 + 100))
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram()
	for i := int64(0); i < 1_000_000; i++ {
		h.Record(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

func BenchmarkHistogramMerge(b *testing.B) {
	a, c := NewHistogram(), NewHistogram()
	for i := int64(0); i < 100_000; i++ {
		c.Record(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Merge(c)
	}
}
