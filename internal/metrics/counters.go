package metrics

import (
	"fmt"
	"sort"

	"mflow/internal/sim"
)

// Throughput accumulates delivered bytes/messages over a measurement window
// and converts them to rates.
type Throughput struct {
	Bytes    uint64
	Messages uint64
	Packets  uint64
	start    sim.Time
	end      sim.Time
}

// NewThroughput returns a counter whose window opens at start.
func NewThroughput(start sim.Time) *Throughput {
	return &Throughput{start: start}
}

// Add records a delivered unit of traffic.
func (t *Throughput) Add(bytes int, packets int) {
	t.Bytes += uint64(bytes)
	t.Packets += uint64(packets)
	t.Messages++
}

// Close fixes the end of the measurement window.
func (t *Throughput) Close(end sim.Time) { t.end = end }

// Window returns the window length.
func (t *Throughput) Window() sim.Duration { return t.end.Sub(t.start) }

// Gbps returns delivered goodput in gigabits per second of simulated time.
func (t *Throughput) Gbps() float64 {
	w := t.Window().Seconds()
	if w <= 0 {
		return 0
	}
	return float64(t.Bytes) * 8 / w / 1e9
}

// MsgPerSec returns delivered messages per second of simulated time.
func (t *Throughput) MsgPerSec() float64 {
	w := t.Window().Seconds()
	if w <= 0 {
		return 0
	}
	return float64(t.Messages) / w
}

// CPUSample is one core's utilization over a measurement window, broken down
// by accounting tag (softirq/device name).
type CPUSample struct {
	Core  int
	Total float64            // fraction of the window the core was busy
	ByTag map[string]float64 // per-tag fractions, summing to ~Total
}

// SnapshotCPU computes per-core utilization over [since, until] given the
// per-core busy totals captured at the window start.
func SnapshotCPU(cores []*sim.Core, busyAtSince []sim.Duration, tagsAtSince []map[string]sim.Duration, since, until sim.Time) []CPUSample {
	out := make([]CPUSample, len(cores))
	win := float64(until.Sub(since))
	for i, c := range cores {
		s := CPUSample{Core: c.ID, ByTag: map[string]float64{}}
		if win > 0 {
			s.Total = c.Utilization(busyAtSince[i], since, until)
			for tag, d := range c.BusyByTag() {
				var base sim.Duration
				if tagsAtSince != nil && tagsAtSince[i] != nil {
					base = tagsAtSince[i][tag]
				}
				if f := float64(d-base) / win; f > 1e-9 {
					s.ByTag[tag] = f
				}
			}
		}
		out[i] = s
	}
	return out
}

// CaptureBusy snapshots per-core cumulative busy time (pass to SnapshotCPU as
// the window-start baseline).
func CaptureBusy(cores []*sim.Core) ([]sim.Duration, []map[string]sim.Duration) {
	busy := make([]sim.Duration, len(cores))
	tags := make([]map[string]sim.Duration, len(cores))
	for i, c := range cores {
		busy[i] = c.BusyTotal()
		tags[i] = c.BusyByTag()
	}
	return busy, tags
}

// FormatCPU renders utilization samples as a compact multi-line table.
func FormatCPU(samples []CPUSample) string {
	var out string
	for _, s := range samples {
		if s.Total < 0.005 {
			continue
		}
		out += fmt.Sprintf("  core %d: %5.1f%%", s.Core, s.Total*100)
		tags := make([]string, 0, len(s.ByTag))
		for tag := range s.ByTag {
			tags = append(tags, tag)
		}
		sort.Strings(tags)
		for _, tag := range tags {
			out += fmt.Sprintf("  %s=%.1f%%", tag, s.ByTag[tag]*100)
		}
		out += "\n"
	}
	if out == "" {
		out = "  (all cores idle)\n"
	}
	return out
}
