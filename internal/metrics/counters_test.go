package metrics

import (
	"math"
	"strings"
	"testing"

	"mflow/internal/sim"
)

func TestThroughputRates(t *testing.T) {
	tp := NewThroughput(0)
	for i := 0; i < 1000; i++ {
		tp.Add(1500, 1)
	}
	tp.Close(sim.Time(1 * sim.Millisecond))
	// 1.5 MB in 1 ms = 12 Gbps
	if g := tp.Gbps(); math.Abs(g-12) > 0.01 {
		t.Errorf("Gbps=%.3f, want 12", g)
	}
	if m := tp.MsgPerSec(); math.Abs(m-1e6) > 1 {
		t.Errorf("MsgPerSec=%.0f, want 1e6", m)
	}
	if tp.Packets != 1000 {
		t.Errorf("Packets=%d, want 1000", tp.Packets)
	}
}

func TestThroughputZeroWindow(t *testing.T) {
	tp := NewThroughput(100)
	tp.Add(1500, 1)
	tp.Close(100)
	if tp.Gbps() != 0 || tp.MsgPerSec() != 0 {
		t.Error("zero window must not divide by zero")
	}
}

func TestSnapshotCPU(t *testing.T) {
	s := sim.NewScheduler(1)
	cores := sim.NewCores(2, s)
	s.At(0, func() {
		cores[0].Exec(400, "skb")
		cores[1].Exec(100, "vxlan")
		cores[1].Exec(100, "veth")
	})
	s.Run()
	busy, tags := CaptureBusy(cores)
	// more work after the baseline capture
	s.At(1000, func() {
		cores[0].Exec(500, "skb")
	})
	s.Run()
	samples := SnapshotCPU(cores, busy, tags, 0, 1000)
	// window [0,1000] excludes post-capture work? No: busy/tags captured at
	// t=after first run, so the second burst is excluded from deltas.
	if math.Abs(samples[0].Total-0) > 1e-9 {
		// baseline captured after first run, so delta is the second burst only;
		// but the second burst happened after until=1000... Exec at t=1000 counts.
		_ = samples
	}
	// Simpler check: capture before everything.
	s2 := sim.NewScheduler(1)
	c2 := sim.NewCores(1, s2)
	b2, t2 := CaptureBusy(c2)
	s2.At(0, func() { c2[0].Exec(250, "skb") })
	s2.Run()
	got := SnapshotCPU(c2, b2, t2, 0, 1000)
	if math.Abs(got[0].Total-0.25) > 1e-9 {
		t.Errorf("utilization %.3f, want 0.25", got[0].Total)
	}
	if math.Abs(got[0].ByTag["skb"]-0.25) > 1e-9 {
		t.Errorf("tag utilization %.3f, want 0.25", got[0].ByTag["skb"])
	}
}

func TestFormatCPU(t *testing.T) {
	samples := []CPUSample{
		{Core: 0, Total: 0.5, ByTag: map[string]float64{"copy": 0.5}},
		{Core: 1, Total: 0.001, ByTag: map[string]float64{}},
	}
	out := FormatCPU(samples)
	if !strings.Contains(out, "core 0") || !strings.Contains(out, "copy") {
		t.Errorf("unexpected format: %q", out)
	}
	if strings.Contains(out, "core 1") {
		t.Error("near-idle core should be omitted")
	}
	if !strings.Contains(FormatCPU(nil), "idle") {
		t.Error("empty samples should say idle")
	}
}

func TestSnapshotCPUZeroWindow(t *testing.T) {
	s := sim.NewScheduler(1)
	cores := sim.NewCores(1, s)
	busy, tags := CaptureBusy(cores)
	s.At(0, func() { cores[0].Exec(100, "skb") })
	s.Run()
	got := SnapshotCPU(cores, busy, tags, 500, 500)
	if got[0].Total != 0 || len(got[0].ByTag) != 0 {
		t.Errorf("zero-length window must yield zero utilization: %+v", got[0])
	}
}

func TestSnapshotCPUNilTagBaseline(t *testing.T) {
	s := sim.NewScheduler(1)
	cores := sim.NewCores(1, s)
	s.At(0, func() { cores[0].Exec(250, "vxlan") })
	s.Run()
	busy := make([]sim.Duration, 1) // zero baseline, but no tag baseline at all
	got := SnapshotCPU(cores, busy, nil, 0, 1000)
	if math.Abs(got[0].Total-0.25) > 1e-9 {
		t.Errorf("total %.3f, want 0.25", got[0].Total)
	}
	if math.Abs(got[0].ByTag["vxlan"]-0.25) > 1e-9 {
		t.Errorf("nil tagsAtSince must treat baseline as zero: %+v", got[0].ByTag)
	}
	// A nil inner map (core captured before any work) behaves the same.
	got2 := SnapshotCPU(cores, busy, []map[string]sim.Duration{nil}, 0, 1000)
	if math.Abs(got2[0].ByTag["vxlan"]-0.25) > 1e-9 {
		t.Errorf("nil inner tag map: %+v", got2[0].ByTag)
	}
}
