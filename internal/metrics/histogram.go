// Package metrics provides the measurement primitives used by every
// experiment: log-bucketed latency histograms with percentile queries,
// throughput counters, per-core CPU utilization snapshots and small
// statistics helpers (mean/stddev). All of it is allocation-light so the
// simulator can record per-packet without distorting benchmark results.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Histogram is a log-bucketed histogram of non-negative int64 samples
// (typically nanoseconds). Buckets grow geometrically: each power of two is
// split into subBuckets linear sub-buckets, giving a bounded relative error
// of about 1/subBuckets while using a few KB of memory regardless of range.
type Histogram struct {
	counts []uint64
	n      uint64
	sum    float64
	min    int64
	max    int64
}

const (
	subBuckets = 32 // per power of two => <3.2% relative quantile error
	exactMax   = 2 * subBuckets
	numBuckets = exactMax + (63-6+1)*subBuckets
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint64, numBuckets),
		min:    math.MaxInt64,
	}
}

// bucketOf maps a value to its bucket: values < 64 are exact; beyond that,
// each power of two is divided into 32 linear sub-buckets (HdrHistogram
// layout), keeping buckets contiguous.
func bucketOf(v int64) int {
	if v < exactMax {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // >= 6
	frac := (v - (1 << exp)) >> (exp - 5)
	return exactMax + (exp-6)*subBuckets + int(frac)
}

// bucketLow returns the smallest value mapping to bucket b (inverse of
// bucketOf, used to reconstruct quantiles).
func bucketLow(b int) int64 {
	if b < exactMax {
		return int64(b)
	}
	exp := 6 + (b-exactMax)/subBuckets
	frac := int64((b - exactMax) % subBuckets)
	return (1 << exp) + frac<<(exp-5)
}

// Record adds one sample. Negative samples are clamped to zero. Recording
// on a nil histogram is a no-op, so optional instrumentation can hold a nil
// *Histogram and record unconditionally.
func (h *Histogram) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds n identical samples of value v in one update — used when one
// post-GRO skb stands for several wire segments and the distribution should
// count per segment. Negative samples are clamped to zero; a nil histogram
// or n == 0 is a no-op.
func (h *Histogram) RecordN(v int64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	b := bucketOf(v)
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	h.counts[b] += n
	h.n += n
	h.sum += float64(v) * float64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean of the samples (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest recorded sample (0 if empty).
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 if empty).
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an approximation of the q-quantile (0 <= q <= 1) with
// relative error bounded by the bucket width (~3%). Returns 0 if empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum > rank {
			lo := bucketLow(b)
			hi := bucketLow(b + 1)
			mid := lo + (hi-lo)/2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// Median is Quantile(0.5).
func (h *Histogram) Median() int64 { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.n > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p99=%d max=%d",
		h.n, h.Mean(), h.Median(), h.P99(), h.max)
}

// MeanStddev returns the mean and population standard deviation of xs.
func MeanStddev(xs []float64) (mean, stddev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0-100) of xs by sorting a copy.
// Intended for small slices (per-run summaries), not per-packet data.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := p / 100 * float64(len(cp)-1)
	lo := int(idx)
	if lo >= len(cp)-1 {
		return cp[len(cp)-1]
	}
	frac := idx - float64(lo)
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}
