package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	if h.Count() != 1000 {
		t.Errorf("count %d, want 1000", h.Count())
	}
	if m := h.Mean(); math.Abs(m-500.5) > 0.01 {
		t.Errorf("mean %.2f, want 500.5", m)
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Errorf("min/max %d/%d, want 1/1000", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	for i := int64(0); i < 100000; i++ {
		h.Record(i)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		got := float64(h.Quantile(q))
		want := q * 100000
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("q=%v: got %.0f, want %.0f (err > 5%%)", q, got, want)
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		h := NewHistogram()
		for _, s := range samples {
			h.Record(int64(s))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			if v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Error("negative sample should clamp to 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(0); i < 100; i++ {
		a.Record(i)
		b.Record(i + 1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Errorf("merged count %d, want 200", a.Count())
	}
	if a.Min() != 0 || a.Max() != 1099 {
		t.Errorf("merged min/max %d/%d, want 0/1099", a.Min(), a.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(42)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("reset did not clear")
	}
}

func TestBucketRoundtrip(t *testing.T) {
	// bucketLow(bucketOf(v)) <= v < bucketLow(bucketOf(v)+1)
	for _, v := range []int64{0, 1, 31, 32, 33, 100, 1000, 1 << 20, 1<<40 + 12345} {
		b := bucketOf(v)
		if bucketLow(b) > v {
			t.Errorf("bucketLow(%d)=%d > v=%d", b, bucketLow(b), v)
		}
		if bucketLow(b+1) <= v {
			t.Errorf("bucketLow(%d)=%d <= v=%d", b+1, bucketLow(b+1), v)
		}
	}
}

func TestMeanStddev(t *testing.T) {
	m, s := MeanStddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-9 || math.Abs(s-2) > 1e-9 {
		t.Errorf("got mean %.2f stddev %.2f, want 5/2", m, s)
	}
	if m, s := MeanStddev(nil); m != 0 || s != 0 {
		t.Error("empty input should give zeros")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if p := Percentile(xs, 50); math.Abs(p-30) > 1e-9 {
		t.Errorf("p50=%.1f, want 30", p)
	}
	if p := Percentile(xs, 100); p != 50 {
		t.Errorf("p100=%.1f, want 50", p)
	}
	if p := Percentile(xs, 0); p != 10 {
		t.Errorf("p0=%.1f, want 10", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{0, 0.5, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%g)=%d, want 0", q, v)
		}
	}
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram accessors must return 0")
	}
}

func TestQuantileExtremes(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{10, 500, 90000} {
		h.Record(v)
	}
	if got := h.Quantile(0); got != 10 {
		t.Errorf("Quantile(0)=%d, want min 10", got)
	}
	if got := h.Quantile(1); got != 90000 {
		t.Errorf("Quantile(1)=%d, want max 90000", got)
	}
	// Out-of-range q clamps to the extremes rather than misbehaving.
	if h.Quantile(-0.5) != 10 || h.Quantile(2) != 90000 {
		t.Error("out-of-range q must clamp to min/max")
	}
}

func TestQuantileSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(12345)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 12345 {
			t.Errorf("single-sample Quantile(%g)=%d, want 12345", q, v)
		}
	}
}

func TestQuantileBucketBoundaries(t *testing.T) {
	// Values straddling the exact/log boundary (exactMax=64) and power-of-two
	// bucket edges must round-trip within the documented relative error.
	h := NewHistogram()
	vals := []int64{63, 64, 65, 127, 128, 129, 1023, 1024, 1025}
	for _, v := range vals {
		h.Record(v)
	}
	if h.Min() != 63 || h.Max() != 1025 {
		t.Fatalf("min/max wrong: %d/%d", h.Min(), h.Max())
	}
	for i, v := range vals {
		// quantile hitting exactly sample i
		q := (float64(i) + 0.5) / float64(len(vals))
		got := h.Quantile(q)
		if err := math.Abs(float64(got-v)) / float64(v); err > 1.0/subBuckets {
			t.Errorf("Quantile(%g)=%d for sample %d: relative error %.3f", q, got, v, err)
		}
	}
}

func TestRecordN(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.RecordN(500, 4)
	for i := 0; i < 4; i++ {
		b.Record(500)
	}
	if a.Count() != b.Count() || a.Sum() != b.Sum() || a.Median() != b.Median() {
		t.Errorf("RecordN(500,4) != 4×Record(500): %v vs %v", a, b)
	}
	a.RecordN(100, 0) // no-op
	if a.Count() != 4 {
		t.Error("RecordN with n=0 must be a no-op")
	}
	a.RecordN(-7, 2) // clamps to zero
	if a.Min() != 0 || a.Count() != 6 {
		t.Errorf("negative RecordN: min=%d count=%d", a.Min(), a.Count())
	}
	var nilH *Histogram
	nilH.RecordN(1, 1) // must not panic
}
