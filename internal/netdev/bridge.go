package netdev

import (
	"mflow/internal/packet"
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// fdbEntry is one learned MAC→port binding with its last refresh time.
type fdbEntry struct {
	port int
	seen sim.Time
}

// Bridge is a learning Ethernet bridge (the docker0-style virtual switch
// that connects the VxLAN device to the containers' veth endpoints). It
// learns source MACs per port and forwards by destination MAC, flooding
// unknown destinations to every other port. With MaxAge set, entries not
// refreshed within MaxAge expire (the kernel's bridge ageing timer) and the
// next frame toward them floods again.
type Bridge struct {
	ports []func(*skb.SKB)
	fdb   map[packet.MAC]fdbEntry

	// MaxAge is the FDB ageing horizon; zero disables ageing (entries are
	// permanent, the pre-fabric behaviour).
	MaxAge sim.Duration

	// Forwarded counts unicast deliveries; Flooded counts frames sent to
	// all ports for an unknown destination. Learned counts new FDB
	// insertions (refreshes excluded); Aged counts entries expired by
	// MaxAge.
	Forwarded uint64
	Flooded   uint64
	Learned   uint64
	Aged      uint64
}

// NewBridge returns an empty bridge.
func NewBridge() *Bridge {
	return &Bridge{fdb: make(map[packet.MAC]fdbEntry)}
}

// AttachPort adds a port whose egress is deliver and returns its number.
func (b *Bridge) AttachPort(deliver func(*skb.SKB)) int {
	b.ports = append(b.ports, deliver)
	return len(b.ports) - 1
}

// LearnAt records (or refreshes) src→port at the given time.
func (b *Bridge) LearnAt(src packet.MAC, port int, now sim.Time) {
	if _, ok := b.fdb[src]; !ok {
		b.Learned++
	}
	b.fdb[src] = fdbEntry{port: port, seen: now}
}

// Lookup returns the port a MAC was learned on, ignoring ageing.
func (b *Bridge) Lookup(mac packet.MAC) (int, bool) {
	e, ok := b.fdb[mac]
	return e.port, ok
}

// LookupAt returns the port a MAC was learned on, expiring the entry first
// if it aged out before now.
func (b *Bridge) LookupAt(mac packet.MAC, now sim.Time) (int, bool) {
	e, ok := b.fdb[mac]
	if !ok {
		return 0, false
	}
	if b.MaxAge > 0 && now.Sub(e.seen) > b.MaxAge {
		delete(b.fdb, mac)
		b.Aged++
		return 0, false
	}
	return e.port, true
}

// Forward switches a frame arriving on inPort with the given addresses:
// learns src→inPort, then delivers to dst's learned port or floods.
// Ageing-oblivious (time zero); fabric paths use ForwardAt.
func (b *Bridge) Forward(inPort int, src, dst packet.MAC, s *skb.SKB) {
	b.ForwardAt(inPort, src, dst, s, 0)
}

// ForwardAt is Forward with an explicit clock so MaxAge can expire stale
// entries: an aged-out destination floods exactly like a never-learned one.
func (b *Bridge) ForwardAt(inPort int, src, dst packet.MAC, s *skb.SKB, now sim.Time) {
	b.LearnAt(src, inPort, now)
	if p, ok := b.LookupAt(dst, now); ok && p != inPort {
		b.Forwarded++
		b.ports[p](s)
		return
	}
	b.Flooded++
	for i, deliver := range b.ports {
		if i != inPort {
			deliver(s)
		}
	}
}

// Veth is a virtual Ethernet pair: frames transmitted into one end appear at
// the other end's receive hook, which is how a container's network namespace
// is stitched to the host bridge.
type Veth struct {
	// Name tags the pair in accounting.
	Name string
	// HostRx/ContainerRx receive frames crossing the pair in each
	// direction.
	HostRx      func(*skb.SKB)
	ContainerRx func(*skb.SKB)

	// ToContainer / ToHost count crossings.
	ToContainer uint64
	ToHost      uint64
}

// XmitToContainer carries a frame from the host end into the container.
func (v *Veth) XmitToContainer(s *skb.SKB) {
	v.ToContainer++
	if v.ContainerRx != nil {
		v.ContainerRx(s)
	}
}

// XmitToHost carries a frame from the container end out to the host.
func (v *Veth) XmitToHost(s *skb.SKB) {
	v.ToHost++
	if v.HostRx != nil {
		v.HostRx(s)
	}
}
