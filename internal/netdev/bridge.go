package netdev

import (
	"mflow/internal/packet"
	"mflow/internal/skb"
)

// Bridge is a learning Ethernet bridge (the docker0-style virtual switch
// that connects the VxLAN device to the containers' veth endpoints). It
// learns source MACs per port and forwards by destination MAC, flooding
// unknown destinations to every other port.
type Bridge struct {
	ports []func(*skb.SKB)
	fdb   map[packet.MAC]int

	// Forwarded counts unicast deliveries; Flooded counts frames sent to
	// all ports for an unknown destination.
	Forwarded uint64
	Flooded   uint64
}

// NewBridge returns an empty bridge.
func NewBridge() *Bridge {
	return &Bridge{fdb: make(map[packet.MAC]int)}
}

// AttachPort adds a port whose egress is deliver and returns its number.
func (b *Bridge) AttachPort(deliver func(*skb.SKB)) int {
	b.ports = append(b.ports, deliver)
	return len(b.ports) - 1
}

// Lookup returns the port a MAC was learned on.
func (b *Bridge) Lookup(mac packet.MAC) (int, bool) {
	p, ok := b.fdb[mac]
	return p, ok
}

// Forward switches a frame arriving on inPort with the given addresses:
// learns src→inPort, then delivers to dst's learned port or floods.
func (b *Bridge) Forward(inPort int, src, dst packet.MAC, s *skb.SKB) {
	b.fdb[src] = inPort
	if p, ok := b.fdb[dst]; ok && p != inPort {
		b.Forwarded++
		b.ports[p](s)
		return
	}
	b.Flooded++
	for i, deliver := range b.ports {
		if i != inPort {
			deliver(s)
		}
	}
}

// Veth is a virtual Ethernet pair: frames transmitted into one end appear at
// the other end's receive hook, which is how a container's network namespace
// is stitched to the host bridge.
type Veth struct {
	// Name tags the pair in accounting.
	Name string
	// HostRx/ContainerRx receive frames crossing the pair in each
	// direction.
	HostRx      func(*skb.SKB)
	ContainerRx func(*skb.SKB)

	// ToContainer / ToHost count crossings.
	ToContainer uint64
	ToHost      uint64
}

// XmitToContainer carries a frame from the host end into the container.
func (v *Veth) XmitToContainer(s *skb.SKB) {
	v.ToContainer++
	if v.ContainerRx != nil {
		v.ContainerRx(s)
	}
}

// XmitToHost carries a frame from the container end out to the host.
func (v *Veth) XmitToHost(s *skb.SKB) {
	v.ToHost++
	if v.HostRx != nil {
		v.HostRx(s)
	}
}
