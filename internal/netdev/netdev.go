// Package netdev implements the software network devices that make up a
// container overlay network data path: the VxLAN tunnel device
// (encapsulation/decapsulation), the learning Linux bridge, and veth pairs.
// Each device couples a semantic action (what happens to the packet) with a
// cost model (how long the softirq stage takes), so correctness is testable
// on real state/bytes while performance emerges from the simulation.
package netdev

import (
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// Cost models one stage's processing time for an skb:
//
//	PerSKB + PerSeg×segments + PerByte×bytes
//
// PerSKB is paid once per skb and is therefore amortized by GRO merging;
// PerSeg scales with the original wire-segment count regardless of merging;
// PerByte captures data-touching work (checksums, copies) that no batching
// can amortize. The distinction is load-bearing: it is why GRO rescues TCP's
// per-packet costs but the VxLAN device stays expensive (paper §II).
type Cost struct {
	PerSKB  sim.Duration
	PerSeg  sim.Duration
	PerByte float64 // nanoseconds per byte
}

// Add returns the component-wise sum of two cost models (used when one
// execution context performs several stages' work, e.g. MFLOW's delivery
// thread doing TCP processing plus the user-space copy).
func (c Cost) Add(o Cost) Cost {
	return Cost{
		PerSKB:  c.PerSKB + o.PerSKB,
		PerSeg:  c.PerSeg + o.PerSeg,
		PerByte: c.PerByte + o.PerByte,
	}
}

// Of returns the cost of processing s.
func (c Cost) Of(s *skb.SKB) sim.Duration {
	d := c.PerSKB + c.PerSeg*sim.Duration(s.Segs)
	if c.PerByte != 0 {
		d += sim.Duration(c.PerByte * float64(s.WireLen))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Device is a named software network device: a semantic action with a cost.
type Device struct {
	// Name tags CPU accounting for this device's softirq.
	Name string
	// Cost is the device's processing cost model.
	Cost Cost
	// Action optionally transforms the skb (decap, header rewrite, ...).
	Action func(*skb.SKB)

	// SKBs / Segs / Bytes count the traffic this device instance has
	// processed (per Apply call); the observability layer aggregates them
	// across instances into device_* counters.
	SKBs  uint64
	Segs  uint64
	Bytes uint64
}

// CostOf returns the device's cost for s.
func (d *Device) CostOf(s *skb.SKB) sim.Duration { return d.Cost.Of(s) }

// Apply runs the device's semantic action on s.
func (d *Device) Apply(s *skb.SKB) {
	d.SKBs++
	d.Segs += uint64(s.Segs)
	d.Bytes += uint64(s.WireLen)
	if d.Action != nil {
		d.Action(s)
	}
}
