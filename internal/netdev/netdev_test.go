package netdev

import (
	"testing"

	"mflow/internal/packet"
	"mflow/internal/skb"
)

func TestCostOf(t *testing.T) {
	c := Cost{PerSKB: 100, PerSeg: 10, PerByte: 0.1}
	s := &skb.SKB{Segs: 4, WireLen: 6000}
	// 100 + 4*10 + 0.1*6000 = 740
	if got := c.Of(s); got != 740 {
		t.Errorf("cost %v, want 740", got)
	}
}

func TestCostOfZeroAndNegativeClamp(t *testing.T) {
	var c Cost
	if c.Of(&skb.SKB{Segs: 1, WireLen: 100}) != 0 {
		t.Error("zero cost model should cost 0")
	}
}

func TestDeviceApply(t *testing.T) {
	called := false
	d := &Device{Name: "x", Action: func(*skb.SKB) { called = true }}
	d.Apply(&skb.SKB{})
	if !called {
		t.Error("action not invoked")
	}
	(&Device{Name: "y"}).Apply(&skb.SKB{}) // nil action must not panic
}

func TestVXLANDecapSynthetic(t *testing.T) {
	v := &VXLAN{VNI: 7}
	s := &skb.SKB{Segs: 2, WireLen: 3000 + 2*packet.OverlayOverhead, Encap: true}
	if err := v.Decap(s); err != nil {
		t.Fatal(err)
	}
	if s.Encap {
		t.Error("skb still encapsulated")
	}
	if s.WireLen != 3000 {
		t.Errorf("wire len %d, want 3000", s.WireLen)
	}
	if v.Decapped != 1 {
		t.Errorf("Decapped=%d", v.Decapped)
	}
	if err := v.Decap(s); err == nil {
		t.Error("double decap must fail")
	}
}

func TestVXLANEncapDecapWire(t *testing.T) {
	src := packet.FlowAddr{MAC: packet.MAC{2, 0, 0, 0, 0, 1}, IP: packet.Addr4(172, 17, 0, 2), Port: 1000}
	dst := packet.FlowAddr{MAC: packet.MAC{2, 0, 0, 0, 0, 2}, IP: packet.Addr4(172, 17, 0, 3), Port: 2000}
	inner := packet.BuildUDPFrame(src, dst, 1, []byte("payload"))

	v := &VXLAN{
		VNI:   42,
		Local: packet.Addr4(10, 0, 0, 1), Remote: packet.Addr4(10, 0, 0, 2),
		LocalMAC: packet.MAC{2, 0, 0, 0, 1, 1}, RemoteMAC: packet.MAC{2, 0, 0, 0, 1, 2},
	}
	s := &skb.SKB{Segs: 1, WireLen: len(inner), Data: append([]byte(nil), inner...)}
	v.Encap(s)
	if !s.Encap || s.WireLen != len(inner)+packet.OverlayOverhead {
		t.Fatalf("encap accounting wrong: %+v", s)
	}
	if len(s.Data) != len(inner)+packet.OverlayOverhead {
		t.Fatalf("encap bytes wrong: %d", len(s.Data))
	}
	if err := v.Decap(s); err != nil {
		t.Fatal(err)
	}
	if string(s.Data) != string(inner) {
		t.Error("decap did not recover inner frame")
	}
	if s.WireLen != len(inner) {
		t.Errorf("wire len %d after decap, want %d", s.WireLen, len(inner))
	}
}

func TestVXLANDecapWrongVNI(t *testing.T) {
	inner := packet.BuildUDPFrame(
		packet.FlowAddr{IP: packet.Addr4(1, 1, 1, 1), Port: 1},
		packet.FlowAddr{IP: packet.Addr4(2, 2, 2, 2), Port: 2}, 0, []byte("x"))
	frame := packet.EncapVXLAN(packet.MAC{}, packet.MAC{}, packet.Addr4(10, 0, 0, 1), packet.Addr4(10, 0, 0, 2), 99, 0, inner)
	v := &VXLAN{VNI: 7}
	s := &skb.SKB{Segs: 1, WireLen: len(frame), Encap: true, Data: frame}
	if err := v.Decap(s); err == nil {
		t.Fatal("wrong VNI must be rejected")
	}
	if v.Errors != 1 {
		t.Errorf("Errors=%d, want 1", v.Errors)
	}
	if !s.Encap {
		t.Error("failed decap must leave skb encapsulated")
	}
}

func TestVXLANRxDevice(t *testing.T) {
	v := &VXLAN{VNI: 1}
	d := v.RxDevice(Cost{PerSKB: 50})
	s := &skb.SKB{Segs: 1, WireLen: 1500 + packet.OverlayOverhead, Encap: true}
	if d.CostOf(s) != 50 {
		t.Error("cost not applied")
	}
	d.Apply(s)
	if s.Encap {
		t.Error("RxDevice action must decap")
	}
	if d.Name != "vxlan" {
		t.Error("device name")
	}
}

func TestBridgeLearnsAndForwards(t *testing.T) {
	b := NewBridge()
	var got0, got1, got2 []*skb.SKB
	p0 := b.AttachPort(func(s *skb.SKB) { got0 = append(got0, s) })
	p1 := b.AttachPort(func(s *skb.SKB) { got1 = append(got1, s) })
	b.AttachPort(func(s *skb.SKB) { got2 = append(got2, s) })

	macA := packet.MAC{2, 0, 0, 0, 0, 0xa}
	macB := packet.MAC{2, 0, 0, 0, 0, 0xb}

	// Unknown destination floods to all other ports.
	s1 := &skb.SKB{Seq: 1}
	b.Forward(p0, macA, macB, s1)
	if b.Flooded != 1 || len(got1) != 1 || len(got2) != 1 || len(got0) != 0 {
		t.Fatalf("flood wrong: flooded=%d ports=%d/%d/%d", b.Flooded, len(got0), len(got1), len(got2))
	}
	// macA is now learned on p0: replies unicast back.
	s2 := &skb.SKB{Seq: 2}
	b.Forward(p1, macB, macA, s2)
	if b.Forwarded != 1 || len(got0) != 1 {
		t.Fatalf("unicast wrong: forwarded=%d got0=%d", b.Forwarded, len(got0))
	}
	if p, ok := b.Lookup(macB); !ok || p != p1 {
		t.Error("macB not learned on p1")
	}
	// Destination learned on the ingress port: flood (split horizon).
	b.Forward(p0, macA, macA, &skb.SKB{})
	if b.Flooded != 2 {
		t.Error("same-port destination should flood, not loop back")
	}
}

func TestVethCrossings(t *testing.T) {
	var hostGot, contGot int
	v := &Veth{Name: "veth0"}
	v.HostRx = func(*skb.SKB) { hostGot++ }
	v.ContainerRx = func(*skb.SKB) { contGot++ }
	v.XmitToContainer(&skb.SKB{})
	v.XmitToContainer(&skb.SKB{})
	v.XmitToHost(&skb.SKB{})
	if contGot != 2 || hostGot != 1 {
		t.Errorf("crossings %d/%d, want 2/1", contGot, hostGot)
	}
	if v.ToContainer != 2 || v.ToHost != 1 {
		t.Errorf("counters %d/%d", v.ToContainer, v.ToHost)
	}
	(&Veth{}).XmitToHost(&skb.SKB{}) // nil hooks must not panic
}

func TestBridgeFDBAging(t *testing.T) {
	b := NewBridge()
	b.MaxAge = 1000
	var got0, got1, got2 int
	p0 := b.AttachPort(func(*skb.SKB) { got0++ })
	p1 := b.AttachPort(func(*skb.SKB) { got1++ })
	b.AttachPort(func(*skb.SKB) { got2++ })
	_ = p1

	macA := packet.MAC{2, 0, 0, 0, 0, 0xa}
	macB := packet.MAC{2, 0, 0, 0, 0, 0xb}

	// Teach macB on p1 at t=0, then forward toward it within MaxAge:
	// unicast.
	b.LearnAt(macB, p1, 0)
	if b.Learned != 1 {
		t.Fatalf("Learned=%d, want 1", b.Learned)
	}
	b.ForwardAt(p0, macA, macB, &skb.SKB{}, 500)
	if b.Forwarded != 1 || got1 != 1 || got2 != 0 {
		t.Fatalf("fresh entry should unicast: forwarded=%d got1=%d got2=%d", b.Forwarded, got1, got2)
	}
	// Refreshing via LearnAt does not recount Learned.
	b.LearnAt(macB, p1, 600)
	if b.Learned != 2 { // macA was learned by ForwardAt above
		t.Fatalf("Learned=%d, want 2 (refresh must not count)", b.Learned)
	}
	// Past MaxAge the entry expires: the next lookup deletes it, counts
	// Aged, and forwarding floods again.
	b.ForwardAt(p0, macA, macB, &skb.SKB{}, 2000)
	if b.Aged != 1 || b.Flooded != 1 || got1 != 2 || got2 != 1 {
		t.Fatalf("aged entry should flood: aged=%d flooded=%d got1=%d got2=%d",
			b.Aged, b.Flooded, got1, got2)
	}
	if _, ok := b.Lookup(macB); ok {
		t.Error("aged entry still present ageing-obliviously")
	}
	// Relearning after ageing counts as a fresh insertion.
	b.LearnAt(macB, p1, 2100)
	if b.Learned != 3 {
		t.Errorf("Learned=%d, want 3 after relearn", b.Learned)
	}
	// MaxAge == 0 never ages (the pre-fabric permanent FDB).
	b2 := NewBridge()
	b2.AttachPort(func(*skb.SKB) {})
	b2.LearnAt(macA, 0, 0)
	if _, ok := b2.LookupAt(macA, 1<<60); !ok || b2.Aged != 0 {
		t.Error("MaxAge=0 bridge expired an entry")
	}
}
