package netdev

import (
	"fmt"

	"mflow/internal/packet"
	"mflow/internal/skb"
)

// VXLAN is the overlay tunnel device. On the receive path it terminates the
// outer UDP tunnel and recovers the inner Ethernet frame addressed to a
// container; on the transmit path it wraps inner frames in outer headers.
// In synthetic runs the transformation adjusts the skb's byte accounting; in
// wire mode it operates on the real RFC 7348 layout.
type VXLAN struct {
	// VNI is the VxLAN network identifier this device terminates.
	VNI uint32
	// Local/Remote are the outer (host) addresses of the tunnel.
	Local, Remote       packet.IPv4Addr
	LocalMAC, RemoteMAC packet.MAC

	// Decapped / Encapped count processed frames; Errors counts frames
	// whose wire bytes failed to parse or carried the wrong VNI.
	Decapped uint64
	Encapped uint64
	Errors   uint64

	ipID uint16
}

// Decap strips the outer encapsulation from s in place. It returns an error
// (leaving the skb encapsulated) if wire bytes are present and invalid.
func (v *VXLAN) Decap(s *skb.SKB) error {
	if !s.Encap {
		return fmt.Errorf("vxlan: decap of non-encapsulated %v", s)
	}
	if s.Data != nil {
		// A GRO super-packet carries several back-to-back outer frames;
		// decapsulate every one.
		vni, inner, err := packet.DecapVXLANAll(s.Data)
		if err != nil {
			v.Errors++
			return err
		}
		if vni != v.VNI {
			v.Errors++
			return fmt.Errorf("vxlan: VNI %d arrived at device for VNI %d", vni, v.VNI)
		}
		s.Data = inner
	}
	s.Encap = false
	s.WireLen -= packet.OverlayOverhead * s.Segs
	if s.WireLen < 0 {
		s.WireLen = 0
	}
	v.Decapped++
	return nil
}

// Encap wraps s in outer headers in place (transmit path).
func (v *VXLAN) Encap(s *skb.SKB) {
	if s.Encap {
		return
	}
	if s.Data != nil {
		v.ipID++
		s.Data = packet.EncapVXLAN(v.LocalMAC, v.RemoteMAC, v.Local, v.Remote, v.VNI, v.ipID, s.Data)
	}
	s.Encap = true
	s.WireLen += packet.OverlayOverhead * s.Segs
	v.Encapped++
}

// RxDevice packages the decap action with its cost model as a Device.
func (v *VXLAN) RxDevice(cost Cost) *Device {
	return &Device{
		Name: "vxlan",
		Cost: cost,
		Action: func(s *skb.SKB) {
			// Errors are counted on the device; in the simulated data
			// path all frames are well-formed by construction.
			_ = v.Decap(s)
		},
	}
}
