package netdev

import (
	"fmt"

	"mflow/internal/packet"
	"mflow/internal/skb"
)

// VXLAN is the overlay tunnel device. On the receive path it terminates the
// outer UDP tunnel and recovers the inner Ethernet frame addressed to a
// container; on the transmit path it wraps inner frames in outer headers.
// In synthetic runs the transformation adjusts the skb's byte accounting; in
// wire mode it operates on the real RFC 7348 layout.
type VXLAN struct {
	// VNI is the VxLAN network identifier this device terminates.
	VNI uint32
	// Local/Remote are the outer (host) addresses of the tunnel.
	Local, Remote       packet.IPv4Addr
	LocalMAC, RemoteMAC packet.MAC

	// Decapped / Encapped count processed frames; Errors counts frames
	// whose wire bytes failed to parse or carried the wrong VNI.
	Decapped uint64
	Encapped uint64
	Errors   uint64

	ipID uint16
}

// Decap strips the outer encapsulation from s in place. It returns an error
// (leaving the skb untouched) if wire bytes are present and invalid.
//
// On the zero-copy path a GRO super-packet is a frag chain whose every part
// is one outer frame: decap validates each part's headers, then trims
// OverlayOverhead bytes off its front — a validated skb_pull per frame,
// no allocation, no payload copy. Validation of every part completes
// before any part is trimmed, so a bad frame leaves the skb whole.
func (v *VXLAN) Decap(s *skb.SKB) error {
	if !s.Encap {
		return fmt.Errorf("vxlan: decap of non-encapsulated %v", s)
	}
	parts := s.Parts()
	for i := 0; i < parts; i++ {
		part := s.Part(i)
		n, err := packet.FrameLen(part)
		if err != nil {
			v.Errors++
			return err
		}
		if n != len(part) {
			// A part holding several back-to-back frames (a pre-chained
			// buffer from a legacy caller) cannot be trimmed in place:
			// fall back to the copying decap for the whole stream.
			return v.decapLinearized(s)
		}
		vni, _, err := packet.DecapVXLAN(part)
		if err != nil {
			v.Errors++
			return err
		}
		if vni != v.VNI {
			v.Errors++
			return fmt.Errorf("vxlan: VNI %d arrived at device for VNI %d", vni, v.VNI)
		}
	}
	for i := 0; i < parts; i++ {
		s.TrimPartFront(i, packet.OverlayOverhead)
	}
	s.Encap = false
	s.WireLen -= packet.OverlayOverhead * s.Segs
	if s.WireLen < 0 {
		s.WireLen = 0
	}
	v.Decapped++
	return nil
}

// decapLinearized is the cold path for skbs whose head window carries
// several back-to-back outer frames (built by direct Data assignment, not
// the arena): materialize, decap with the copying walker, and replace the
// stream.
func (v *VXLAN) decapLinearized(s *skb.SKB) error {
	vni, inner, err := packet.DecapVXLANAll(s.Bytes())
	if err != nil {
		v.Errors++
		return err
	}
	if vni != v.VNI {
		v.Errors++
		return fmt.Errorf("vxlan: VNI %d arrived at device for VNI %d", vni, v.VNI)
	}
	s.SetBytes(inner)
	s.Encap = false
	s.WireLen -= packet.OverlayOverhead * s.Segs
	if s.WireLen < 0 {
		s.WireLen = 0
	}
	v.Decapped++
	return nil
}

// Encap wraps s in outer headers in place (transmit path): the outer
// Ethernet/IPv4/UDP/VxLAN headers are written into the skb's reserved
// headroom by an skb_push-shaped Push — no allocation, no payload copy
// when the headroom was reserved up front. Only the head window is
// encapsulated; transmit-side skbs carry no frag chain.
func (v *VXLAN) Encap(s *skb.SKB) {
	if s.Encap {
		return
	}
	if s.Data != nil {
		v.ipID++
		hdr := s.Push(packet.OverlayOverhead)
		packet.EncapVXLANInPlace(hdr, v.LocalMAC, v.RemoteMAC, v.Local, v.Remote, v.VNI, v.ipID,
			s.Data[packet.OverlayOverhead:])
	}
	s.Encap = true
	s.WireLen += packet.OverlayOverhead * s.Segs
	v.Encapped++
}

// RxDevice packages the decap action with its cost model as a Device.
func (v *VXLAN) RxDevice(cost Cost) *Device {
	return &Device{
		Name: "vxlan",
		Cost: cost,
		Action: func(s *skb.SKB) {
			// Errors are counted on the device; in the simulated data
			// path all frames are well-formed by construction.
			_ = v.Decap(s)
		},
	}
}
