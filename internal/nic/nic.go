// Package nic models the physical network interface controller and its
// driver, after the Mellanox ConnectX-5 / mlx5 driver used in the paper's
// testbed: per-queue descriptor rings filled by DMA, hardware interrupts
// that arm NAPI polling, receive-side scaling (RSS) that hashes flows onto
// queues/cores, and the driver request queue that MFLOW's IRQ-splitting
// function taps into before skbs exist.
package nic

import (
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// Config describes the NIC hardware.
type Config struct {
	// Queues is the number of hardware RX queues (RSS spreads flows
	// across them; a single flow always lands on one queue).
	Queues int
	// RingSize bounds each queue's descriptor ring; arrivals beyond it
	// are dropped on the floor, exactly like ring-buffer overrun.
	RingSize int
	// IRQCost is charged to the handling core each time a hardware
	// interrupt fires (ring transitions empty→non-empty with NAPI idle).
	IRQCost sim.Duration
	// IRQDelay is the latency between frame arrival and the interrupt
	// handler running.
	IRQDelay sim.Duration
	// IRQCoalesce keeps NAPI armed after the ring drains, so closely
	// spaced bursts do not pay one interrupt each (rx-usecs moderation).
	IRQCoalesce sim.Duration
}

// DefaultConfig mirrors the testbed NIC at the fidelity the experiments
// need: enough queues for RSS to matter, a 1024-descriptor ring.
func DefaultConfig() Config {
	return Config{
		Queues:      8,
		RingSize:    4096,
		IRQCost:     1500,
		IRQDelay:    800,
		IRQCoalesce: 15 * sim.Microsecond,
	}
}

// NIC is a receive-side physical NIC. Arriving frames are hashed onto a
// queue; each queue drains through a driver worker (the first softirq)
// installed by the topology builder.
type NIC struct {
	cfg     Config
	sched   *sim.Scheduler
	drivers []*sim.Worker[*skb.SKB]

	pins map[uint64]int

	// pktSeq issues skb.PktID: a monotonic arrival counter covering every
	// frame the NIC looks at (including ones the ring then drops), so ids
	// are unique but not dense.
	pktSeq uint64

	// PktSeq, when set, replaces the private pktSeq with a sequence shared
	// across NICs. Multi-host fabric runs point every host's NIC at one
	// counter so PktIDs stay unique run-wide (the causal profiler and the
	// flight recorder key records on them); single-host runs leave it nil
	// and behave exactly as before.
	PktSeq *uint64

	// OnDrop, when set, observes frames rejected by a full descriptor ring
	// (after PktID/ArrivedAt are stamped). Used by the causal profiler and
	// the anomaly flight recorder; nil in unprobed runs.
	OnDrop func(*skb.SKB)

	// Admit, when set, is the overload subsystem's memory-accounting gate:
	// it is consulted after PktID/ArrivedAt are stamped and before the ring
	// enqueue. Returning false drops the frame at admission (counted in
	// AdmissionDropped, distinct from ring overrun in Dropped) — the
	// simulator's net.core.rmem / tcp_mem budget check. Nil admits all.
	Admit func(*skb.SKB) bool

	// PerFrameIRQ switches the NIC to interrupt-per-frame delivery: the IRQ
	// cost is charged for EVERY offered frame (accepted or not) instead of
	// only on idle→busy ring transitions — the pre-NAPI regime in which
	// receive livelock occurs (Mogul & Ramakrishnan). MaskIRQs suppresses
	// the charge while the driver runs in polling mode.
	PerFrameIRQ bool
	irqMasked   bool

	// Received counts frames accepted into a ring; Dropped counts ring
	// overruns; IRQs counts hardware interrupts raised. Offered counts every
	// frame presented to the NIC and AdmissionDropped those the Admit gate
	// rejected, so Offered == Received + Dropped + AdmissionDropped always
	// holds (drop-accounting conservation; asserted in the chaos matrix).
	Received         uint64
	Dropped          uint64
	IRQs             uint64
	Offered          uint64
	AdmissionDropped uint64
}

// MaskIRQs enables or disables interrupt masking: while masked no IRQ cost
// is charged and no IRQ counted — the driver is expected to poll on its own
// schedule (worker kicks still schedule poll rounds, which is exactly
// budgeted polling mode).
func (n *NIC) MaskIRQs(masked bool) { n.irqMasked = masked }

// IRQsMasked reports whether interrupts are currently masked.
func (n *NIC) IRQsMasked() bool { return n.irqMasked }

// PinFlow steers a flow to a fixed queue, overriding the RSS hash — the
// simulator's equivalent of an ethtool n-tuple steering rule, used by the
// experiment topologies for deterministic placement.
func (n *NIC) PinFlow(flowID uint64, queue int) {
	if n.pins == nil {
		n.pins = make(map[uint64]int)
	}
	n.pins[flowID] = queue
}

// New returns a NIC with cfg; driver workers are attached per queue with
// AttachDriver before traffic starts.
func New(cfg Config, sched *sim.Scheduler) *NIC {
	if cfg.Queues <= 0 {
		cfg.Queues = 1
	}
	return &NIC{
		cfg:     cfg,
		sched:   sched,
		drivers: make([]*sim.Worker[*skb.SKB], cfg.Queues),
	}
}

// Config returns the NIC's configuration.
func (n *NIC) Config() Config { return n.cfg }

// AttachDriver installs the driver softirq worker for queue q. The worker's
// queue IS the descriptor ring: the NIC enforces RingSize through it.
func (n *NIC) AttachDriver(q int, w *sim.Worker[*skb.SKB]) {
	w.Cap = n.cfg.RingSize
	w.WakeDelay = n.cfg.IRQDelay
	w.IdleGrace = n.cfg.IRQCoalesce
	n.drivers[q] = w
}

// Driver returns the worker attached to queue q.
func (n *NIC) Driver(q int) *sim.Worker[*skb.SKB] { return n.drivers[q] }

// RingDepth returns the current occupancy of queue q's descriptor ring
// (0 if no driver is attached) — the signal the observability layer's
// queue-depth sampler probes.
func (n *NIC) RingDepth(q int) int {
	if q < 0 || q >= len(n.drivers) || n.drivers[q] == nil {
		return 0
	}
	return n.drivers[q].Len()
}

// QueueFor returns the RX queue an arriving frame of the given flow hashes
// to. All frames of one flow map to one queue — RSS achieves inter-flow
// parallelism only, which is precisely the limitation MFLOW addresses.
func (n *NIC) QueueFor(flowID uint64) int {
	if q, ok := n.pins[flowID]; ok {
		return q
	}
	return int(Hash64(flowID) % uint64(n.cfg.Queues))
}

// Deliver places an arriving frame into its queue's ring, raising an IRQ if
// NAPI was idle. It reports whether the frame was accepted.
//
// The skb travels by reference from here on: the ring, the softirq stages
// and the socket all pass the same *skb.SKB, and any wire bytes it carries
// stay in the arena the sender wrote them into. Nothing on the device path
// may copy Data — header changes are Push/Pull pointer moves and GRO
// merges chain frag references (see internal/skb).
func (n *NIC) Deliver(s *skb.SKB) bool {
	n.Offered++
	q := n.QueueFor(s.FlowID)
	w := n.drivers[q]
	if w == nil {
		n.Dropped++
		return false
	}
	s.ArrivedAt = n.sched.Now()
	if n.PktSeq != nil {
		*n.PktSeq++
		s.PktID = *n.PktSeq
	} else {
		n.pktSeq++
		s.PktID = n.pktSeq
	}
	if n.PerFrameIRQ && !n.irqMasked {
		// Interrupt-per-frame: the top half runs for every arrival before
		// the frame even reaches the ring — dropped frames still cost their
		// interrupt, which is the livelock mechanism.
		n.IRQs++
		if n.cfg.IRQCost > 0 {
			w.Core.Exec(n.cfg.IRQCost, "irq")
		}
	}
	if n.Admit != nil && !n.Admit(s) {
		n.AdmissionDropped++
		if n.OnDrop != nil {
			n.OnDrop(s)
		}
		return false
	}
	wasIdle := w.Idle()
	if !w.Enqueue(s) {
		n.Dropped++
		if n.OnDrop != nil {
			n.OnDrop(s)
		}
		return false
	}
	n.Received++
	if wasIdle && !n.PerFrameIRQ && !n.irqMasked {
		// The IRQ top half runs on the queue's core; NAPI (the worker
		// poll) follows after IRQDelay, which Worker already applies.
		n.IRQs++
		if n.cfg.IRQCost > 0 {
			w.Core.Exec(n.cfg.IRQCost, "irq")
		}
	}
	return true
}

// Hash64 is a 64-bit finalizer-style hash (splitmix64 mix), the simulator's
// stand-in for the NIC's Toeplitz RSS hash.
func Hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CompletionBatcher models the driver-update contention point the paper's
// IRQ-splitting function mitigates: after a request's skb is created the
// driver must be told the descriptor can be reused. MFLOW batches these
// updates (default every 128 requests) to avoid cross-core contention.
type CompletionBatcher struct {
	// Every is the batching factor (number of requests per update).
	Every int
	// UpdateCost is the cost of one driver update, charged to the core
	// performing the update.
	UpdateCost sim.Duration
	count      int
	// Updates counts driver updates performed.
	Updates uint64
}

// Completed records one consumed request on core, charging an update when
// the batch fills.
func (c *CompletionBatcher) Completed(core *sim.Core) {
	every := c.Every
	if every <= 0 {
		every = 128
	}
	c.count++
	if c.count >= every {
		c.count = 0
		c.Updates++
		if c.UpdateCost > 0 {
			core.Exec(c.UpdateCost, "drv-update")
		}
	}
}
