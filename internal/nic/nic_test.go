package nic

import (
	"testing"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

func testNIC(t *testing.T, cfg Config, cores int) (*NIC, *sim.Scheduler, []*sim.Core, *[]uint64) {
	t.Helper()
	s := sim.NewScheduler(1)
	cs := sim.NewCores(cores, s)
	n := New(cfg, s)
	var got []uint64
	for q := 0; q < cfg.Queues; q++ {
		core := cs[q%cores]
		w := sim.NewWorker("drv", core, s,
			func(*skb.SKB) sim.Duration { return 100 },
			func(sk *skb.SKB, _ sim.Time) { got = append(got, sk.Seq) })
		n.AttachDriver(q, w)
	}
	return n, s, cs, &got
}

func TestNICDeliversThroughDriver(t *testing.T) {
	n, s, _, got := testNIC(t, Config{Queues: 1, RingSize: 64, IRQCost: 10, IRQDelay: 5}, 1)
	s.At(0, func() {
		for i := uint64(0); i < 10; i++ {
			n.Deliver(&skb.SKB{FlowID: 1, Seq: i, Segs: 1})
		}
	})
	s.Run()
	if len(*got) != 10 {
		t.Fatalf("delivered %d, want 10", len(*got))
	}
	for i, seq := range *got {
		if seq != uint64(i) {
			t.Fatalf("out of order at %d: %v", i, *got)
		}
	}
	if n.Received != 10 || n.Dropped != 0 {
		t.Errorf("Received=%d Dropped=%d", n.Received, n.Dropped)
	}
}

func TestNICRingOverrunDrops(t *testing.T) {
	n, s, _, _ := testNIC(t, Config{Queues: 1, RingSize: 16, IRQCost: 0, IRQDelay: 1000}, 1)
	s.At(0, func() {
		for i := uint64(0); i < 100; i++ {
			n.Deliver(&skb.SKB{FlowID: 1, Seq: i, Segs: 1})
		}
	})
	s.Run()
	if n.Dropped != 84 {
		t.Errorf("Dropped=%d, want 84 (ring holds 16)", n.Dropped)
	}
}

func TestNICIRQOnlyWhenIdle(t *testing.T) {
	n, s, _, _ := testNIC(t, Config{Queues: 1, RingSize: 64, IRQCost: 10, IRQDelay: 50}, 1)
	s.At(0, func() {
		for i := uint64(0); i < 10; i++ {
			n.Deliver(&skb.SKB{FlowID: 1, Seq: i, Segs: 1})
		}
	})
	s.Run()
	if n.IRQs != 1 {
		t.Errorf("IRQs=%d, want 1 (NAPI suppresses interrupts while polling)", n.IRQs)
	}
	// Deliver again after everything drained: a new IRQ must fire.
	s.At(10000, func() { n.Deliver(&skb.SKB{FlowID: 1, Seq: 100, Segs: 1}) })
	s.Run()
	if n.IRQs != 2 {
		t.Errorf("IRQs=%d after idle redelivery, want 2", n.IRQs)
	}
}

func TestNICSingleFlowSingleQueue(t *testing.T) {
	cfg := DefaultConfig()
	n, s, _, _ := testNIC(t, cfg, 4)
	q := n.QueueFor(42)
	for i := 0; i < 100; i++ {
		if n.QueueFor(42) != q {
			t.Fatal("flow's queue must be stable")
		}
	}
	_ = s
}

func TestNICRSSSpreadsFlows(t *testing.T) {
	cfg := DefaultConfig()
	s := sim.NewScheduler(1)
	n := New(cfg, s)
	seen := map[int]int{}
	for f := uint64(0); f < 1000; f++ {
		seen[n.QueueFor(f)]++
	}
	if len(seen) != cfg.Queues {
		t.Fatalf("RSS used %d queues, want %d", len(seen), cfg.Queues)
	}
	for q, cnt := range seen {
		if cnt < 60 || cnt > 200 {
			t.Errorf("queue %d got %d of 1000 flows — poor spread", q, cnt)
		}
	}
}

func TestNICDeliverWithoutDriverDrops(t *testing.T) {
	s := sim.NewScheduler(1)
	n := New(Config{Queues: 1, RingSize: 8}, s)
	if n.Deliver(&skb.SKB{FlowID: 1}) {
		t.Error("delivery without driver should fail")
	}
	if n.Dropped != 1 {
		t.Errorf("Dropped=%d, want 1", n.Dropped)
	}
}

func TestNICStampsArrival(t *testing.T) {
	n, s, _, _ := testNIC(t, Config{Queues: 1, RingSize: 8, IRQDelay: 1}, 1)
	sk := &skb.SKB{FlowID: 1, Segs: 1}
	s.At(777, func() { n.Deliver(sk) })
	s.Run()
	if sk.ArrivedAt != 777 {
		t.Errorf("ArrivedAt=%v, want 777", sk.ArrivedAt)
	}
}

func TestCompletionBatcher(t *testing.T) {
	s := sim.NewScheduler(1)
	c := sim.NewCore(1, s)
	cb := &CompletionBatcher{Every: 4, UpdateCost: 50}
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			cb.Completed(c)
		}
	})
	s.Run()
	if cb.Updates != 2 {
		t.Errorf("Updates=%d, want 2 (10 completions / every 4)", cb.Updates)
	}
	if c.BusyTotal() != 100 {
		t.Errorf("busy=%v, want 100", c.BusyTotal())
	}
}

func TestCompletionBatcherDefaultEvery(t *testing.T) {
	s := sim.NewScheduler(1)
	c := sim.NewCore(1, s)
	cb := &CompletionBatcher{UpdateCost: 1}
	s.At(0, func() {
		for i := 0; i < 128; i++ {
			cb.Completed(c)
		}
	})
	s.Run()
	if cb.Updates != 1 {
		t.Errorf("Updates=%d, want 1 at default batching of 128", cb.Updates)
	}
}

func TestHash64Mixes(t *testing.T) {
	if Hash64(1) == Hash64(2) {
		t.Error("hash collision on trivial inputs")
	}
	if Hash64(7) != Hash64(7) {
		t.Error("hash must be deterministic")
	}
}

// TestNICSharedPktSeq pins the fabric-mode contract: NICs pointed at one
// shared counter issue run-wide unique PktIDs in arrival order, while a
// private-sequence NIC is unaffected.
func TestNICSharedPktSeq(t *testing.T) {
	var shared uint64
	n1, s1, _, _ := testNIC(t, Config{Queues: 1, RingSize: 64}, 1)
	n2, s2, _, _ := testNIC(t, Config{Queues: 1, RingSize: 64}, 1)
	n1.PktSeq = &shared
	n2.PktSeq = &shared
	a := &skb.SKB{FlowID: 1, Segs: 1}
	b := &skb.SKB{FlowID: 1, Segs: 1}
	c := &skb.SKB{FlowID: 1, Segs: 1}
	s1.At(0, func() { n1.Deliver(a) })
	s2.At(0, func() { n2.Deliver(b) })
	s1.At(1, func() { n1.Deliver(c) })
	s1.Run() // delivers a then c
	s2.Run() // then b
	if a.PktID != 1 || c.PktID != 2 || b.PktID != 3 {
		t.Errorf("shared sequence issued a=%d c=%d b=%d, want 1/2/3", a.PktID, c.PktID, b.PktID)
	}
	if shared != 3 {
		t.Errorf("shared counter = %d, want 3", shared)
	}
	// A NIC without the override keeps its private sequence.
	n3, s3, _, _ := testNIC(t, Config{Queues: 1, RingSize: 64}, 1)
	d := &skb.SKB{FlowID: 1, Segs: 1}
	s3.At(0, func() { n3.Deliver(d) })
	s3.Run()
	if d.PktID != 1 {
		t.Errorf("private sequence issued %d, want 1", d.PktID)
	}
	if shared != 3 {
		t.Errorf("private NIC touched the shared counter: %d", shared)
	}
}
