package obs

import "mflow/internal/sim"

// DefaultMaxIntervals bounds a CoreLog's memory: a 2ms traced window at
// ~10 executions per skb stays well under this.
const DefaultMaxIntervals = 1 << 20

// Interval is one contiguous span of work charged to a core: the simulated
// execution of one device/softirq cost on one CPU.
type Interval struct {
	Core       int
	Tag        string
	Start, End sim.Time
}

// CoreLog collects per-core busy intervals from sim.Core execution, the raw
// material for the Perfetto timeline's one-track-per-core view. Attach it to
// a run's cores before traffic starts.
type CoreLog struct {
	// MaxIntervals bounds memory (default DefaultMaxIntervals); further
	// executions are counted in Skipped. A zero-value CoreLog is usable.
	MaxIntervals int
	// Intervals holds the recorded spans in execution order.
	Intervals []Interval
	// Skipped counts executions dropped once the cap was reached.
	Skipped uint64
}

// Attach installs the log as each core's execution observer.
func (l *CoreLog) Attach(cores ...*sim.Core) {
	for _, c := range cores {
		c.ExecLog = l.add
	}
}

func (l *CoreLog) add(core int, tag string, start, end sim.Time) {
	max := l.MaxIntervals
	if max <= 0 {
		max = DefaultMaxIntervals
	}
	if len(l.Intervals) >= max {
		l.Skipped++
		return
	}
	l.Intervals = append(l.Intervals, Interval{Core: core, Tag: tag, Start: start, End: end})
}
