// Package obs is the unified observability layer for the simulated receive
// path: a hierarchically named metric registry (counters, gauges and the
// log-bucketed metrics.Histogram behind one interface), a simulated-time
// queue-depth sampler, and a Perfetto/Chrome trace-event exporter. The paper
// argues entirely through measurements of this path — per-core softirq
// utilization, backlog/ring occupancy, per-stage latency (PAPER.md §2,
// Figs. 2-4) — and this package is how every experiment, benchmark and CLI in
// the repository observes those signals through one object.
//
// A Registry is single-goroutine like the simulation itself: one run, one
// scheduler, one registry. Parallel experiments each own a registry.
// All accessors are nil-receiver safe so call sites can thread an optional
// *Registry without branching; a nil registry yields nil metrics, and
// recording on a nil metric is a no-op.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"

	"mflow/internal/metrics"
)

// Counter is a monotonically increasing metric (packets seen, drops, IRQs).
type Counter struct{ n uint64 }

// Add increments the counter by n. Safe on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.n += n
	}
}

// Inc increments the counter by one. Safe on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter's value — used to mirror an externally
// accumulated monotonic total (e.g. a NIC's Received field) into the
// registry at snapshot points. Safe on a nil counter.
func (c *Counter) Set(v uint64) {
	if c != nil {
		c.n = v
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is a point-in-time value (current depth, a configuration constant).
type Gauge struct{ v float64 }

// Set stores v. Safe on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Registry holds one simulation run's metrics under canonical names. Names
// are hierarchical ("nic/ring" style is fine) and may carry labels, rendered
// canonically as name{k=v,k2=v2} with keys sorted — the same name+labels
// always resolves to the same metric instance.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*metrics.Histogram

	probes   []probe
	sampling bool
	// Samples counts sampler ticks taken so far.
	Samples uint64
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*metrics.Histogram),
	}
}

// Name renders the canonical metric name for name plus label key/value
// pairs: name{k=v,k2=v2}, label keys sorted. With no labels it is just name.
func Name(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, (len(kv)+1)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the counter for name+labels.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	full := Name(name, kv...)
	c := r.counters[full]
	if c == nil {
		c = &Counter{}
		r.counters[full] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for name+labels.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	full := Name(name, kv...)
	g := r.gauges[full]
	if g == nil {
		g = &Gauge{}
		r.gauges[full] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram for name+labels.
// Returns nil on a nil registry (metrics.Histogram recording is nil-safe).
func (r *Registry) Histogram(name string, kv ...string) *metrics.Histogram {
	if r == nil {
		return nil
	}
	full := Name(name, kv...)
	h := r.hists[full]
	if h == nil {
		h = metrics.NewHistogram()
		r.hists[full] = h
	}
	return h
}

// GapTo returns a recorder for stage_gap{from,to} histograms with the "to"
// side fixed, caching the per-"from" histogram lookup so hot paths pay one
// map probe on a small local map instead of re-rendering the canonical name
// per packet. On a nil registry the recorder is a no-op.
func (r *Registry) GapTo(to string) func(from string, v int64) {
	if r == nil {
		return func(string, int64) {}
	}
	cache := make(map[string]*metrics.Histogram)
	return func(from string, v int64) {
		h := cache[from]
		if h == nil {
			h = r.Histogram("stage_gap", "from", from, "to", to)
			cache[from] = h
		}
		h.Record(v)
	}
}

// Metric is one metric's snapshotted state. Counters and gauges carry Value;
// histograms carry Count/Sum/Mean and the distribution summary.
type Metric struct {
	Kind  string  `json:"kind"`
	Value float64 `json:"value,omitempty"`
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	Min   int64   `json:"min,omitempty"`
	P50   int64   `json:"p50,omitempty"`
	P99   int64   `json:"p99,omitempty"`
	Max   int64   `json:"max,omitempty"`
}

// Snapshot is a point-in-time view of every metric in a registry, keyed by
// canonical name.
type Snapshot map[string]Metric

// Snapshot captures the registry's current state. Returns nil on a nil
// registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	s := make(Snapshot, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		s[name] = Metric{Kind: "counter", Value: float64(c.Value())}
	}
	for name, g := range r.gauges {
		s[name] = Metric{Kind: "gauge", Value: g.Value()}
	}
	for name, h := range r.hists {
		s[name] = Metric{
			Kind:  "histogram",
			Count: h.Count(),
			Sum:   h.Sum(),
			Mean:  h.Mean(),
			Min:   h.Min(),
			P50:   h.Median(),
			P99:   h.P99(),
			Max:   h.Max(),
		}
	}
	return s
}

// Diff returns the change from prev to s: counter values and histogram
// counts/sums subtract (histogram means are recomputed over the window);
// gauges and histogram quantiles keep s's (cumulative) values, since the
// log-bucketed histogram cannot reconstruct window-local percentiles.
// Metrics absent from prev are taken whole; metrics absent from s are
// dropped.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for name, m := range s {
		p, ok := prev[name]
		if ok {
			switch m.Kind {
			case "counter":
				m.Value -= p.Value
			case "histogram":
				m.Count -= p.Count
				m.Sum -= p.Sum
				if m.Count > 0 {
					m.Mean = m.Sum / float64(m.Count)
				} else {
					m.Mean = 0
				}
			}
		}
		out[name] = m
	}
	return out
}

// Get looks up a metric by name+labels.
func (s Snapshot) Get(name string, kv ...string) (Metric, bool) {
	m, ok := s[Name(name, kv...)]
	return m, ok
}

// Names returns the snapshot's metric names, sorted.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s))
	for name := range s {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WriteJSON renders the snapshot as indented JSON. encoding/json sorts map
// keys, so the output is deterministic for a deterministic run.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
