package obs

import (
	"strings"
	"testing"

	"mflow/internal/sim"
)

func TestNameCanonical(t *testing.T) {
	if got := Name("x"); got != "x" {
		t.Errorf("bare name: %q", got)
	}
	a := Name("stage_gap", "from", "nic", "to", "alloc")
	b := Name("stage_gap", "to", "alloc", "from", "nic")
	if a != b {
		t.Errorf("label order must not matter: %q vs %q", a, b)
	}
	if a != "stage_gap{from=nic,to=alloc}" {
		t.Errorf("canonical form wrong: %q", a)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	c1 := r.Counter("drops", "queue", "ring")
	c1.Add(3)
	c2 := r.Counter("drops", "queue", "ring")
	if c1 != c2 || c2.Value() != 3 {
		t.Error("same name+labels must resolve to the same counter")
	}
	if r.Counter("drops", "queue", "other") == c1 {
		t.Error("different labels must resolve to different counters")
	}
	h1 := r.Histogram("lat", "stage", "gro")
	h1.Record(10)
	if r.Histogram("lat", "stage", "gro").Count() != 1 {
		t.Error("same histogram expected")
	}
	g := r.Gauge("speed")
	g.Set(2.5)
	if r.Gauge("speed").Value() != 2.5 {
		t.Error("same gauge expected")
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Record(1)
	r.GapTo("a")("b", 1)
	r.SampleQueue("q", func() int { return 0 })
	r.StartSampler(sim.NewScheduler(1), 0)
	r.StopSampler()
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	r := New()
	c := r.Counter("pkts")
	h := r.Histogram("lat")
	g := r.Gauge("util")
	c.Add(10)
	h.Record(100)
	h.Record(200)
	g.Set(0.5)

	s0 := r.Snapshot()
	c.Add(5)
	h.RecordN(300, 3)
	g.Set(0.9)
	s1 := r.Snapshot()

	d := s1.Diff(s0)
	if m, _ := d.Get("pkts"); m.Value != 5 {
		t.Errorf("counter diff: %+v", m)
	}
	if m, _ := d.Get("lat"); m.Count != 3 || m.Sum != 900 || m.Mean != 300 {
		t.Errorf("histogram diff: %+v", m)
	}
	if m, _ := d.Get("util"); m.Value != 0.9 {
		t.Errorf("gauge diff keeps latest: %+v", m)
	}
	// A metric born after the baseline snapshot is taken whole.
	r.Counter("late").Add(7)
	d2 := r.Snapshot().Diff(s0)
	if m, _ := d2.Get("late"); m.Value != 7 {
		t.Errorf("new metric diff: %+v", m)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	r := New()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Histogram("h").Record(50)
	var w1, w2 strings.Builder
	if err := r.Snapshot().WriteJSON(&w1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Error("JSON rendering must be deterministic")
	}
	if !strings.Contains(w1.String(), `"kind": "histogram"`) {
		t.Errorf("missing histogram kind:\n%s", w1.String())
	}
}

func TestSamplerRecordsDepths(t *testing.T) {
	r := New()
	sched := sim.NewScheduler(1)
	depth := 0
	r.SampleQueue("q", func() int { return depth })
	r.StartSampler(sched, 10)

	// Depth ramps 1,2,3,... on each tick boundary.
	for i := 1; i <= 100; i++ {
		i := i
		sched.At(sim.Time(10*i-1), func() { depth = i })
	}
	sched.RunUntil(1000)
	snap := r.Snapshot()
	m, ok := snap.Get("queue_depth", "queue", "q")
	if !ok {
		t.Fatalf("no queue_depth series: %v", snap.Names())
	}
	if m.Count != r.Samples || m.Count < 90 {
		t.Errorf("samples=%d count=%d", r.Samples, m.Count)
	}
	if m.Max < 90 || m.P99 < 50 {
		t.Errorf("depth distribution wrong: %+v", m)
	}

	r.StopSampler()
	before := r.Samples
	sched.RunUntil(2000)
	if r.Samples != before {
		t.Error("sampler kept running after stop")
	}
}

func TestSamplerDoubleStart(t *testing.T) {
	r := New()
	sched := sim.NewScheduler(1)
	r.SampleQueue("q", func() int { return 1 })
	r.StartSampler(sched, 100)
	r.StartSampler(sched, 100) // must not double-tick
	sched.RunUntil(1000)
	if r.Samples != 10 {
		t.Errorf("got %d samples, want 10", r.Samples)
	}
}

func TestGapToCachesAndRecords(t *testing.T) {
	r := New()
	rec := r.GapTo("merge")
	rec("alloc", 10)
	rec("alloc", 20)
	rec("gro", 5)
	if n := r.Histogram("stage_gap", "from", "alloc", "to", "merge").Count(); n != 2 {
		t.Errorf("alloc→merge count %d", n)
	}
	if n := r.Histogram("stage_gap", "from", "gro", "to", "merge").Count(); n != 1 {
		t.Errorf("gro→merge count %d", n)
	}
}
