package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mflow/internal/trace"
)

// The exported timeline groups tracks into two synthetic "processes": the
// host CPUs (one thread per core, busy intervals as complete slices) and the
// traced flows (one thread per flow, per-packet stage observations as
// instant events).
const (
	PidCores = 1
	PidFlows = 2
	// PidFlight is the first pid used by the flight recorder's anomaly
	// snapshots (one synthetic process per snapshot, counting up), chosen
	// above the fixed tracks so all exports compose in one timeline.
	PidFlight = 3
)

// ChromeEvent is one entry of the Chrome trace-event JSON format
// (the "JSON Array Format" Perfetto and chrome://tracing both load).
// Timestamps and durations are in microseconds, per the format.
type ChromeEvent struct {
	Name  string         `json:"name,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	// ID links flow events ("s"/"t"/"f" phases) into one arrow; BP is the
	// flow binding point ("e" binds to the enclosing slice).
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace-event JSON object.
type chromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// us converts simulated nanoseconds to the format's microseconds.
func us(ns int64) float64 { return float64(ns) / 1e3 }

// ChromeTraceEvents converts tracer events plus core busy intervals into
// Chrome trace events: metadata naming the tracks, one "X" complete slice
// per core execution interval, and one "i" instant event per traced packet
// observation on its flow's track. Either input may be nil/empty.
func ChromeTraceEvents(events []trace.Event, log *CoreLog) []ChromeEvent {
	var out []ChromeEvent
	meta := func(pid int, tid int64, key, name string) {
		out = append(out, ChromeEvent{
			Ph: "M", Name: key, Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}

	if log != nil && len(log.Intervals) > 0 {
		meta(PidCores, 0, "process_name", "cores")
		cores := map[int]bool{}
		for _, iv := range log.Intervals {
			cores[iv.Core] = true
		}
		ids := make([]int, 0, len(cores))
		for id := range cores {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			meta(PidCores, int64(id), "thread_name", fmt.Sprintf("core %d", id))
		}
		for _, iv := range log.Intervals {
			out = append(out, ChromeEvent{
				Name: iv.Tag, Cat: "exec", Ph: "X",
				Ts: us(int64(iv.Start)), Dur: us(int64(iv.End.Sub(iv.Start))),
				Pid: PidCores, Tid: int64(iv.Core),
			})
		}
	}

	if len(events) > 0 {
		meta(PidFlows, 0, "process_name", "flows")
		flows := map[uint64]bool{}
		for _, e := range events {
			if !flows[e.FlowID] {
				flows[e.FlowID] = true
				meta(PidFlows, int64(e.FlowID), "thread_name", fmt.Sprintf("flow %d", e.FlowID))
			}
		}
		for _, e := range events {
			out = append(out, ChromeEvent{
				Name: e.Stage, Cat: "packet", Ph: "i",
				Ts: us(int64(e.At)), Pid: PidFlows, Tid: int64(e.FlowID),
				Scope: "t",
				Args: map[string]any{
					"seq": e.Seq, "segs": e.Segs, "core": e.Core,
				},
			})
		}
	}
	return out
}

// WriteChromeTrace writes an arbitrary event slice as a loadable
// Chrome/Perfetto trace object — the serialization shared by every
// exporter (nil events become an empty array, never null).
func WriteChromeTrace(w io.Writer, events []ChromeEvent) error {
	t := chromeTrace{TraceEvents: events, DisplayTimeUnit: "ns"}
	if t.TraceEvents == nil {
		t.TraceEvents = []ChromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// ExportChromeTrace writes events and core intervals as a Chrome
// trace-event JSON object loadable by Perfetto (ui.perfetto.dev) and
// chrome://tracing.
func ExportChromeTrace(w io.Writer, events []trace.Event, log *CoreLog) error {
	t := chromeTrace{
		TraceEvents:     ChromeTraceEvents(events, log),
		DisplayTimeUnit: "ns",
	}
	if t.TraceEvents == nil {
		t.TraceEvents = []ChromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}
