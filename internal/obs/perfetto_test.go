package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"mflow/internal/sim"
	"mflow/internal/trace"
)

// TestExportChromeTraceRoundTrip round-trips the exporter's output through
// encoding/json and checks the trace-event fields Perfetto requires
// (ph/ts/pid), per the acceptance criterion.
func TestExportChromeTraceRoundTrip(t *testing.T) {
	tr := trace.New()
	tr.Record(1000, 0, 1, 0, 1, "nic", 1)
	tr.Record(2500, 0, 1, 0, 1, "vxlan", 2)
	tr.Record(3000, 0, 2, 0, 4, "gro", 1)

	log := &CoreLog{}
	log.add(1, "alloc", 500, 1500)
	log.add(2, "vxlan", 1500, 4000)

	var buf bytes.Buffer
	if err := ExportChromeTrace(&buf, tr.Events(), log); err != nil {
		t.Fatal(err)
	}

	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	var nX, nI, nM int
	for _, e := range parsed.TraceEvents {
		ph, ok := e["ph"].(string)
		if !ok || ph == "" {
			t.Fatalf("event missing ph: %v", e)
		}
		if _, ok := e["ts"].(float64); !ok {
			t.Fatalf("event missing numeric ts: %v", e)
		}
		pid, ok := e["pid"].(float64)
		if !ok || pid <= 0 {
			t.Fatalf("event missing positive pid: %v", e)
		}
		switch ph {
		case "X":
			nX++
			if d, ok := e["dur"].(float64); !ok || d <= 0 {
				t.Errorf("complete event without positive dur: %v", e)
			}
		case "i":
			nI++
		case "M":
			nM++
		}
	}
	if nX != 2 || nI != 3 || nM == 0 {
		t.Errorf("event mix wrong: X=%d i=%d M=%d", nX, nI, nM)
	}

	// Timestamps are microseconds: the 1000ns tracer event lands at ts=1.
	for _, e := range parsed.TraceEvents {
		if e["ph"] == "i" && e["name"] == "nic" {
			if e["ts"].(float64) != 1.0 {
				t.Errorf("ns→µs conversion wrong: ts=%v", e["ts"])
			}
		}
	}
}

// TestExportChromeTraceEmpty exports nothing and still produces a valid,
// loadable document.
func TestExportChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportChromeTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if _, ok := parsed["traceEvents"].([]any); !ok {
		t.Errorf("traceEvents must be an array even when empty: %v", parsed)
	}
}

func TestCoreLogCapAndAttach(t *testing.T) {
	l := &CoreLog{MaxIntervals: 2}
	sched := sim.NewScheduler(1)
	core := sim.NewCore(3, sched)
	l.Attach(core)
	for i := 0; i < 5; i++ {
		core.Exec(10, "work")
	}
	if len(l.Intervals) != 2 || l.Skipped != 3 {
		t.Errorf("cap failed: %d intervals, %d skipped", len(l.Intervals), l.Skipped)
	}
	iv := l.Intervals[0]
	if iv.Core != 3 || iv.Tag != "work" || iv.End <= iv.Start {
		t.Errorf("interval wrong: %+v", iv)
	}
}
