package obs

import (
	"mflow/internal/metrics"
	"mflow/internal/sim"
)

// DefaultSampleInterval is the queue-depth probe period when StartSampler is
// given a non-positive interval: fine enough to see softirq-scale queue
// build-up (a NAPI poll round is a handful of microseconds) without the
// sampling dominating the event count.
const DefaultSampleInterval = 2 * sim.Microsecond

// probe is one sampled queue: a depth function and the histogram its
// occupancy time-series accumulates into.
type probe struct {
	hist  *metrics.Histogram
	depth func() int
}

// SampleQueue registers queue's depth function for periodic sampling.
// Samples accumulate into queue_depth{queue=<name>}, whose snapshot exposes
// the max/mean/p99 occupancy the paper reasons about (backlog and ring
// build-up under a serialized flow). No-op on a nil registry.
func (r *Registry) SampleQueue(queue string, depth func() int) {
	if r == nil || depth == nil {
		return
	}
	r.probes = append(r.probes, probe{
		hist:  r.Histogram("queue_depth", "queue", queue),
		depth: depth,
	})
}

// samplerTick is the sampler's self-rescheduling event, on the scheduler's
// closure-free path: one allocation per StartSampler instead of one closure
// per tick.
type samplerTick struct {
	r        *Registry
	sched    *sim.Scheduler
	interval sim.Duration
}

// Handle implements sim.Handler.
func (t *samplerTick) Handle(any, sim.Time) {
	if !t.r.sampling {
		return
	}
	for _, p := range t.r.probes {
		p.hist.Record(int64(p.depth()))
	}
	t.r.Samples++
	t.sched.AfterHandler(t.interval, t, nil)
}

// StartSampler begins periodic sampling of every registered queue on sched's
// simulated clock (interval <= 0 selects DefaultSampleInterval). The sampler
// reschedules itself until StopSampler is called or the scheduler's horizon
// ends; starting an already-running sampler is a no-op.
func (r *Registry) StartSampler(sched *sim.Scheduler, interval sim.Duration) {
	if r == nil || r.sampling || len(r.probes) == 0 {
		return
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	r.sampling = true
	sched.AfterHandler(interval, &samplerTick{r: r, sched: sched, interval: interval}, nil)
}

// StopSampler halts periodic sampling (the pending tick becomes a no-op).
func (r *Registry) StopSampler() {
	if r != nil {
		r.sampling = false
	}
}
