package overlay

import (
	"fmt"
	"testing"

	"mflow/internal/skb"
	"mflow/internal/steering"
)

// TestCalibrationTable prints the headline single-flow numbers for eyeball
// calibration (go test -run Calibration -v).
func TestCalibrationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration table in -short mode")
	}
	for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
		for _, sys := range steering.Systems {
			r := Run(Scenario{System: sys, Proto: proto, MsgSize: 65536})
			fmt.Printf("%-4s %-12s %7.2f Gbps  p50=%-10v p99=%-10v gro=%.1f ooo=%-6d ofo=%-5d drops(ring/sock/bl)=%d/%d/%d kstd=%.1f\n",
				proto, sys, r.Gbps,
				r.Latency.Median(), r.Latency.P99(), r.GROFactor,
				r.OOOSegments, r.TCPOFOSegments,
				r.DropsRing, r.DropsSock, r.DropsBacklog, r.KernelCPUStddev)
		}
	}
}
