package overlay

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mflow/internal/causal"
	"mflow/internal/fault"
	"mflow/internal/harness"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// causalScenario is one conservation-matrix cell: short windows — the
// property is exact segment tiling, not statistical stability.
func causalScenario(sys steering.System, proto skb.Proto, plan *fault.Plan) Scenario {
	return Scenario{
		System: sys, Proto: proto, MsgSize: 65536,
		Warmup: 1 * sim.Millisecond, Measure: 2 * sim.Millisecond,
		Faults: plan,
		Seed:   42,
	}
}

// TestCausalConservationMatrix runs every steering system × protocol ×
// chaos profile with the profiler attached and property-checks conservation
// on every delivered packet: segments are contiguous from arrival and sum
// exactly — integer nanoseconds, zero tolerance — to the end-to-end
// latency. The profiler's internal self-check feeds Violations; OnComplete
// re-sums independently so the test does not trust that check alone.
func TestCausalConservationMatrix(t *testing.T) {
	type cell struct {
		sys   steering.System
		proto skb.Proto
		chaos string
	}
	profiles := fault.ChaosProfiles()
	var cells []cell
	for _, sys := range steering.ExtendedSystems {
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			cells = append(cells, cell{sys, proto, ""})
			for name := range profiles {
				cells = append(cells, cell{sys, proto, name})
			}
		}
	}

	type verdict struct {
		delivered uint64
		violation string
		mismatch  string
	}
	verdicts := harness.Map(8, cells, func(_ int, c cell) verdict {
		p := causal.NewProfiler()
		var mismatch string
		p.OnComplete = func(r *causal.Rec) {
			prev := r.Arrived
			var sum sim.Duration
			for _, seg := range r.Timeline {
				if seg.Start != prev || seg.End < seg.Start {
					if mismatch == "" {
						mismatch = "pkt timeline not contiguous"
					}
					return
				}
				prev = seg.End
				sum += seg.Dur()
			}
			if prev != r.Done || sum != r.E2E() {
				if mismatch == "" {
					mismatch = "segments do not sum to e2e"
				}
			}
		}
		RunProbed(causalScenario(c.sys, c.proto, profiles[c.chaos]), Probes{Causal: p})
		return verdict{p.DeliveredPkts, p.FirstViolation(), mismatch}
	})
	for i, c := range cells {
		v := verdicts[i]
		name := c.sys.String() + "/" + c.proto.String() + "/" + c.chaos
		if v.violation != "" {
			t.Errorf("%s: %s", name, v.violation)
		}
		if v.mismatch != "" {
			t.Errorf("%s: %s", name, v.mismatch)
		}
		if v.delivered == 0 {
			t.Errorf("%s: no delivered packets — conservation vacuously true", name)
		}
	}
}

// TestProbedRunMatchesUnprobed pins the probes' purity: attaching the
// profiler and flight recorder changes nothing about the measured result —
// byte-identical fingerprints, covering every counter, latency quantile,
// CPU sample and drop count.
func TestProbedRunMatchesUnprobed(t *testing.T) {
	scenarios := []Scenario{
		causalScenario(steering.MFlow, skb.TCP, nil),
		causalScenario(steering.MFlow, skb.UDP, nil),
		causalScenario(steering.RPS, skb.TCP, nil),
		causalScenario(steering.MFlow, skb.TCP, fault.ChaosProfiles()["random"]),
	}
	for _, sc := range scenarios {
		plain := Run(sc).Fingerprint()
		probed := RunProbed(sc, Probes{
			Causal: causal.NewProfiler(),
			Flight: causal.NewFlightRecorder(),
		}).Fingerprint()
		if plain != probed {
			t.Errorf("%s/%s: probed run diverged from unprobed:\n--- unprobed ---\n%s\n--- probed ---\n%s",
				sc.System, sc.Proto, plain, probed)
		}
	}
}

// TestCausalMFlowReorderWaitVsRPS is the Fig. 7 causal claim: MFLOW packets
// wait on batch reassembly (reorder-wait attributed to the reassembler,
// with blame carried on releasing packets), while RPS — which never
// reorders — shows none.
func TestCausalMFlowReorderWaitVsRPS(t *testing.T) {
	reorderWait := func(sys steering.System) (total sim.Duration, blamed bool) {
		p := causal.NewProfiler()
		p.OnComplete = func(r *causal.Rec) {
			for _, seg := range r.Timeline {
				if seg.Kind == causal.SegReorderWait && seg.Blame != 0 {
					blamed = true
				}
			}
		}
		res := RunProbed(causalScenario(sys, skb.TCP, nil), Probes{Causal: p})
		for _, st := range res.Breakdown {
			if st.Kind == causal.SegReorderWait {
				total += st.Total
				if st.Stage != "reassembler" {
					t.Errorf("%s: reorder-wait at %q, want reassembler", sys, st.Stage)
				}
			}
		}
		if v := p.Violations(); v != 0 {
			t.Fatalf("%s: %d violations: %s", sys, v, p.FirstViolation())
		}
		return total, blamed
	}
	mflowWait, mflowBlamed := reorderWait(steering.MFlow)
	if mflowWait == 0 {
		t.Error("mflow shows no reassembly reorder-wait")
	}
	if !mflowBlamed {
		t.Error("mflow reorder-waits carry no blame packet ids")
	}
	if rpsWait, _ := reorderWait(steering.RPS); rpsWait != 0 {
		t.Errorf("rps shows %v reorder-wait, want none", rpsWait)
	}
}

// causalFingerprint renders everything the profiler and flight recorder
// produced — breakdown, exemplar timelines, trigger counts, the Perfetto
// export — for the double-run determinism comparison.
func causalFingerprint(sc Scenario) string {
	p := causal.NewProfiler()
	fr := causal.NewFlightRecorder()
	RunProbed(sc, Probes{Causal: p, Flight: fr})
	var b strings.Builder
	b.WriteString(causal.RenderBreakdown(p.Breakdown()))
	for _, r := range p.Exemplars() {
		b.WriteString(causal.RenderTimeline(r))
	}
	for _, k := range fr.TriggerKinds() {
		b.WriteString(k)
	}
	var buf bytes.Buffer
	if err := fr.Export(&buf); err != nil {
		return "export error: " + err.Error()
	}
	b.Write(buf.Bytes())
	return b.String()
}

// TestCausalDeterminism: two identical probed runs produce byte-identical
// attribution — breakdown tables, exemplar timelines, and the flight
// recorder's Perfetto export.
func TestCausalDeterminism(t *testing.T) {
	for _, sc := range []Scenario{
		causalScenario(steering.MFlow, skb.TCP, nil),
		causalScenario(steering.MFlow, skb.UDP, fault.ChaosProfiles()["random"]),
	} {
		a := causalFingerprint(sc)
		b := causalFingerprint(sc)
		if a != b {
			t.Errorf("%s/%s: two probed runs rendered differently", sc.System, sc.Proto)
		}
	}
}

// TestFlightGapTimeoutGolden forces reassembler gap-timeouts and pins the
// flight recorder's Perfetto export byte for byte. Single-segment
// micro-flows under heavy uniform loss plus a gap timer tighter than the
// pipeline's own skew guarantee timer-path hole releases (with realistic
// timeouts the merger's advance heuristics resolve holes first — see
// Reassembler.onGapTimer). Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/overlay/ -run TestFlightGapTimeoutGolden
// after an intentional change.
func TestFlightGapTimeoutGolden(t *testing.T) {
	sc := causalScenario(steering.MFlow, skb.UDP, &fault.Plan{
		Wire:       fault.Profile{Drop: 0.05},
		GapTimeout: 2 * sim.Microsecond,
	})
	sc.MFlow.BatchSize = 1
	fr := &causal.FlightRecorder{RingSize: 16, MaxSnapshots: 2}
	RunProbed(sc, Probes{Flight: fr})
	if fr.Triggers["gap-timeout"] == 0 {
		t.Fatalf("burst profile produced no gap-timeouts (triggers: %v)", fr.Triggers)
	}
	var buf bytes.Buffer
	if err := fr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "flight_gap_timeout.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("flight export drifted from %s (%d vs %d bytes); regenerate with UPDATE_GOLDEN=1 if intended",
			golden, buf.Len(), len(want))
	}
}
