package overlay

import (
	"sort"
	"testing"

	"mflow/internal/fault"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// withCoalescingDisabled runs f with scheduler run coalescing (and the
// inline delivery slot) switched off process-wide — the eager
// one-event-per-entry reference behaviour, equivalent to MFLOW_NOCOALESCE.
// Like withPoolDisabled it flips a global read by every run, so callers
// must run serially.
func withCoalescingDisabled(f func()) {
	restore := sim.SetCoalescing(false)
	defer restore()
	f()
}

// TestRunCoalescedFingerprints pins the tentpole's central invariant: run
// coalescing is timing-model-inert. Every steering system × protocol ×
// chaos profile (including the fault-free one) must produce bit-identical
// fingerprints — counters, CPU accounting, latency quantiles, the full obs
// snapshot — with coalescing enabled and force-disabled.
func TestRunCoalescedFingerprints(t *testing.T) {
	if !sim.CoalescingEnabled() {
		t.Skip("MFLOW_NOCOALESCE is set; the comparison needs the lazy side")
	}
	type cell struct {
		sys     steering.System
		proto   skb.Proto
		profile string // "" = fault-free
	}
	profiles := fault.ChaosProfiles()
	names := []string{""}
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)

	var cells []cell
	for _, sys := range steering.ExtendedSystems {
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			for _, name := range names {
				cells = append(cells, cell{sys, proto, name})
			}
		}
	}
	if testing.Short() {
		cells = []cell{
			{steering.MFlow, skb.TCP, ""},
			{steering.MFlow, skb.UDP, "random"},
			{steering.RPS, skb.TCP, "burst"},
		}
	}

	mk := func(c cell) Scenario {
		sc := determinismScenario(c.sys, c.proto)
		if c.profile != "" {
			sc.Faults = profiles[c.profile]
		}
		return sc
	}

	coalesced := make([]string, len(cells))
	for i, c := range cells {
		coalesced[i] = Run(mk(c)).Fingerprint()
	}
	eager := make([]string, len(cells))
	withCoalescingDisabled(func() {
		for i, c := range cells {
			eager[i] = Run(mk(c)).Fingerprint()
		}
	})
	for i, c := range cells {
		if coalesced[i] != eager[i] {
			t.Errorf("%s/%s/%q: coalesced run diverged from eager reference:\n--- coalesced ---\n%s\n--- eager ---\n%s",
				c.sys, c.proto, c.profile, coalesced[i], eager[i])
		}
	}
}

// TestCoalescingTelemetry verifies a run's scheduler self-accounting is
// populated and that coalescing actually reduces heap traffic on a real
// pipeline — the quantitative claim the mflowbench telemetry line reports.
func TestCoalescingTelemetry(t *testing.T) {
	if !sim.CoalescingEnabled() {
		t.Skip("MFLOW_NOCOALESCE is set")
	}
	sc := determinismScenario(steering.MFlow, skb.TCP)
	res := Run(sc)
	st := res.Sched
	if st.Scheduled == 0 || st.HeapOps() == 0 {
		t.Fatalf("scheduler telemetry empty: %+v", st)
	}
	if st.Coalesced == 0 {
		t.Errorf("no run entries coalesced on an MFLOW pipeline: %+v", st)
	}
	if st.Inlined == 0 {
		t.Errorf("no events took the inline slot: %+v", st)
	}

	var eager sim.SchedStats
	withCoalescingDisabled(func() {
		eager = Run(determinismScenario(steering.MFlow, skb.TCP)).Sched
	})
	if eager.Scheduled != st.Scheduled {
		t.Fatalf("logical event counts differ: coalesced %d eager %d", st.Scheduled, eager.Scheduled)
	}
	if st.HeapOps() >= eager.HeapOps() {
		t.Errorf("coalescing did not reduce heap ops: %d vs eager %d", st.HeapOps(), eager.HeapOps())
	}
	if st.PeakHeap > eager.PeakHeap {
		t.Errorf("coalescing grew the peak heap: %d vs eager %d", st.PeakHeap, eager.PeakHeap)
	}
}
