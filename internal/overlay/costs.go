// Package overlay assembles complete experiment topologies: simulated hosts
// with application and kernel cores, a physical NIC, per-flow receive
// pipelines (native or VxLAN overlay) placed on cores according to the
// system under test (vanilla/RPS/FALCON/MFLOW), sockperf-like senders on
// client cores, and the measurement harness that runs warmup + measure
// windows and reports throughput, latency, CPU utilization and ordering
// statistics.
package overlay

import (
	"mflow/internal/netdev"
	"mflow/internal/nic"
	"mflow/internal/sim"
	"mflow/internal/traffic"
)

// CostModel holds every cycle-cost constant of the simulation. The defaults
// are calibrated once against the paper's headline absolute numbers (native
// TCP 26.6 Gbps on one softirq core; vanilla overlay ≈16.5 Gbps; MFLOW
// 29.8 Gbps with the user-space copy thread as the new bottleneck) and then
// left alone — every experiment derives from the same table.
//
// Stage costs distinguish PerSeg (paid per wire segment, immune to GRO),
// PerSKB (paid per skb, amortized by GRO merging) and PerByte
// (data-touching work, never amortized). See netdev.Cost.
type CostModel struct {
	// NIC hardware parameters.
	NIC nic.Config

	// PollOverhead is charged once per softirq poll round; BacklogWake is
	// the enqueue-to-poll latency of a backlog queue on another core.
	PollOverhead sim.Duration
	BacklogWake  sim.Duration

	// Alloc is driver poll + skb allocation, per wire segment — the
	// stage the paper shows cannot be parallelized by FALCON.
	Alloc netdev.Cost
	// GRONative / GROOverlay are GRO's per-segment inspection costs;
	// tunnel-aware GRO must parse outer UDP + VxLAN + inner headers and
	// is substantially more expensive. GROLookupUDP is the failed-match
	// lookup UDP pays (GRO cannot merge UDP, per the paper).
	GRONative    netdev.Cost
	GROOverlay   netdev.Cost
	GROLookupUDP netdev.Cost
	// OuterIPUDP is the outer IP+UDP receive processing of the tunnel.
	OuterIPUDP netdev.Cost
	// VXLAN is tunnel decapsulation; its PerByte term (checksum and
	// header rewriting touch data) is what keeps it heavy under GRO.
	VXLAN netdev.Cost
	// Bridge / Veth / InnerIP are the remaining overlay devices.
	Bridge  netdev.Cost
	Veth    netdev.Cost
	InnerIP netdev.Cost
	// TCPRx / UDPRx are transport-layer receive processing; SockEnq is
	// socket receive-queue insertion.
	TCPRx   netdev.Cost
	UDPRx   netdev.Cost
	SockEnq netdev.Cost
	// Copy is the user-space delivery copy, paid by the single
	// application receive thread (core 0).
	Copy netdev.Cost
	// OOOQueue is the kernel's per-packet out-of-order queue cost at the
	// TCP layer (what MFLOW's batch reassembly avoids).
	OOOQueue sim.Duration

	// RPSSteer is RPS's per-skb hash-and-enqueue; HandoffPerSKB is
	// FALCON's per-skb pipeline transfer between device cores;
	// HandoffPreGROExtra is the additional per-unit cost when the
	// transfer happens before GRO (per wire segment, FALCON-func's
	// first edge).
	RPSSteer           sim.Duration
	HandoffPerSKB      sim.Duration
	HandoffPreGROExtra sim.Duration

	// SplitDispatch is MFLOW's flow-splitting enqueue per skb;
	// IRQDispatch is the IRQ-splitting first-half cost per raw request;
	// IPI is the inter-processor interrupt to wake a splitting core.
	SplitDispatch sim.Duration
	IRQDispatch   sim.Duration
	IPI           sim.Duration
	// MergeSwitch / MergePerSKB are the batch reassembler's costs: one
	// switch per micro-flow rotation, a small move per skb.
	MergeSwitch sim.Duration
	MergePerSKB sim.Duration
	// CompletionUpdate / CompletionEvery batch the split driver's
	// descriptor-release updates (paper: every 128 requests).
	CompletionUpdate sim.Duration
	CompletionEvery  int

	// Client-side costs (the sending machine's CPU) and one-way wire
	// latency.
	TCPClient traffic.ClientCost
	UDPClient traffic.ClientCost
	NetDelay  sim.Duration

	// Kernel-core execution noise: jitter plus occasional interference
	// spikes (unrelated kernel work), the cause of out-of-order
	// completion across splitting cores.
	JitterAmp        float64
	InterferenceProb float64
	InterferenceMean sim.Duration
}

// DefaultCosts returns the calibrated cost table.
func DefaultCosts() *CostModel {
	return &CostModel{
		NIC:          nic.DefaultConfig(),
		PollOverhead: 250,
		BacklogWake:  600,

		Alloc:        netdev.Cost{PerSeg: 300},
		GRONative:    netdev.Cost{PerSeg: 60},
		GROOverlay:   netdev.Cost{PerSeg: 320},
		GROLookupUDP: netdev.Cost{PerSeg: 60},
		OuterIPUDP:   netdev.Cost{PerSKB: 180},
		VXLAN:        netdev.Cost{PerSKB: 1800, PerByte: 0.05},
		Bridge:       netdev.Cost{PerSKB: 350},
		Veth:         netdev.Cost{PerSKB: 350},
		InnerIP:      netdev.Cost{PerSKB: 150},
		TCPRx:        netdev.Cost{PerSKB: 450, PerByte: 0.05},
		UDPRx:        netdev.Cost{PerSKB: 500, PerByte: 0.06},
		SockEnq:      netdev.Cost{PerSKB: 120},
		Copy:         netdev.Cost{PerByte: 0.20},
		OOOQueue:     250,

		RPSSteer:           60,
		HandoffPerSKB:      120,
		HandoffPreGROExtra: 80,

		SplitDispatch:    100,
		IRQDispatch:      100,
		IPI:              400,
		MergeSwitch:      150,
		MergePerSKB:      20,
		CompletionUpdate: 300,
		CompletionEvery:  128,

		TCPClient: traffic.ClientCost{PerMsg: 3500, PerSeg: 60, PerByte: 0.005},
		UDPClient: traffic.ClientCost{PerMsg: 2000, PerSeg: 3500, PerByte: 0.02},
		NetDelay:  5 * sim.Microsecond,

		JitterAmp:        0.06,
		InterferenceProb: 0.0008,
		InterferenceMean: 12 * sim.Microsecond,
	}
}
