package overlay

import (
	"fmt"
	"testing"

	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// TestDebugStages prints per-stage worker statistics for one scenario
// (development aid; run with -run DebugStages -v).
func TestDebugStages(t *testing.T) {
	if testing.Short() {
		t.Skip("debug tool")
	}
	sc := Scenario{
		System: steering.RPS, Proto: skb.UDP, MsgSize: 65536,
		Warmup: 2 * sim.Millisecond, Measure: 8 * sim.Millisecond,
	}.withDefaults()
	h := buildHost(sc, Probes{})
	r := h.run()
	fmt.Println(r, "drops:", r.DropsRing, r.DropsSock, r.DropsBacklog)
	for _, st := range h.stages {
		w := st.worker
		fmt.Printf("stage %-14s core=%d enq=%d proc=%d drop=%d depth=%d/%d polls=%d\n",
			st.name, st.core().ID, w.Enqueued, w.Processed, w.Dropped, w.Len(), w.MaxDepth, w.PollRounds)
	}
	for _, fp := range h.flows {
		fmt.Printf("sock bytes=%d msgs=%d drop=%d qlen=%d\n", fp.sock.Bytes, fp.sock.Msgs, fp.sock.Dropped(), fp.sock.Worker().Len())
	}
	for i, c := range h.cores {
		fmt.Printf("core %d busy=%v tags=%v\n", i, c.BusyTotal(), c.BusyByTag())
	}
}
