package overlay

import (
	"testing"

	"mflow/internal/fault"
	"mflow/internal/harness"
	"mflow/internal/obs"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// determinismScenario is one cell of the cross-cutting matrix: short
// windows (the property is bit-equality, not statistical stability) and
// an obs registry so the fingerprint covers every counter the
// observability layer exports, not just the headline numbers.
func determinismScenario(sys steering.System, proto skb.Proto) Scenario {
	return Scenario{
		System: sys, Proto: proto, MsgSize: 65536,
		Warmup: 1e6, Measure: 2e6, // 1ms + 2ms simulated
		Seed: 42,
		Obs:  obs.New(),
	}
}

// TestMatrixDeterminism runs every steering system × protocol twice with the
// same seed and requires bit-identical results — throughput, latency
// quantiles, CPU samples and the full obs snapshot — then a third time
// through the parallel harness pool, which must change nothing: Run is a
// pure function of its Scenario, no matter which goroutine calls it.
func TestMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full system matrix three times")
	}
	type cell struct {
		sys   steering.System
		proto skb.Proto
	}
	var cells []cell
	for _, sys := range steering.ExtendedSystems {
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			cells = append(cells, cell{sys, proto})
		}
	}

	first := make([]string, len(cells))
	for i, c := range cells {
		first[i] = Run(determinismScenario(c.sys, c.proto)).Fingerprint()
	}
	for i, c := range cells {
		if fp := Run(determinismScenario(c.sys, c.proto)).Fingerprint(); fp != first[i] {
			t.Errorf("%s/%s: second serial run diverged from the first:\n--- first ---\n%s\n--- second ---\n%s",
				c.sys, c.proto, first[i], fp)
		}
	}

	parallel := harness.Map(8, cells, func(_ int, c cell) string {
		return Run(determinismScenario(c.sys, c.proto)).Fingerprint()
	})
	for i, c := range cells {
		if parallel[i] != first[i] {
			t.Errorf("%s/%s: run under the 8-worker harness diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				c.sys, c.proto, first[i], parallel[i])
		}
	}
}

// TestFaultRunDeterminism covers the fault-injected paths: the injector's
// RNG must be derived from the scenario seed, so lossy runs repeat
// bit-identically too.
func TestFaultRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the chaos profiles twice")
	}
	for name, plan := range fault.ChaosProfiles() {
		sc := determinismScenario(steering.MFlow, skb.TCP)
		sc.Faults = plan
		a := Run(sc).Fingerprint()
		sc2 := determinismScenario(steering.MFlow, skb.TCP)
		sc2.Faults = plan
		if b := Run(sc2).Fingerprint(); a != b {
			t.Errorf("profile %s: fault-injected run not deterministic:\n--- first ---\n%s\n--- second ---\n%s", name, a, b)
		}
	}
}
