package overlay

import (
	"testing"

	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// Edge-case and failure-injection coverage for the topology builder and
// runner beyond the happy paths the shape tests exercise.

func TestMFlowOnTinyCorePool(t *testing.T) {
	// Fewer kernel cores than MFLOW's preferred width: offsets wrap onto
	// shared cores; the run must still be correct (ordered, lossless).
	sc := quick(steering.MFlow, skb.TCP)
	sc.KernelCores = 2
	r := Run(sc)
	if r.Gbps <= 0 {
		t.Fatal("no throughput with 2 kernel cores")
	}
	if r.TCPOFOSegments != 0 {
		t.Errorf("ordering broke on wrapped cores: ofo=%d", r.TCPOFOSegments)
	}
	if r.DropsRing+r.DropsBacklog+r.DropsSock != 0 {
		t.Error("TCP must stay lossless even on a tiny pool")
	}
}

func TestSingleKernelCoreDegenerate(t *testing.T) {
	// Everything on one kernel core: every system degenerates towards
	// vanilla; MFLOW must not be pathologically worse (its overheads are
	// bounded).
	v := quick(steering.Vanilla, skb.TCP)
	v.KernelCores = 1
	m := quick(steering.MFlow, skb.TCP)
	m.KernelCores = 1
	rv, rm := Run(v), Run(m)
	if rm.Gbps < rv.Gbps*0.6 {
		t.Errorf("MFLOW on 1 core (%.1f) collapsed vs vanilla (%.1f)", rm.Gbps, rv.Gbps)
	}
}

func TestUDPHeavyLossStress(t *testing.T) {
	// Failure injection: shrink every queue so the UDP path sheds hard;
	// the reassembler must ride through the gaps (AllowGaps/stale paths)
	// without stalling or panicking, and still deliver.
	costs := DefaultCosts()
	costs.NIC.RingSize = 64
	sc := quick(steering.MFlow, skb.UDP)
	sc.Costs = costs
	r := Run(sc)
	if r.DropsRing == 0 {
		t.Error("tiny ring should overrun under three blasting clients")
	}
	if r.Gbps <= 0 {
		t.Error("deliveries must continue despite loss")
	}
}

func TestSlowSplittingCoreStillOrdered(t *testing.T) {
	// One splitting core at half speed: massive cross-branch skew, yet
	// delivery order must be perfectly restored for TCP.
	sc := quick(steering.MFlow, skb.TCP)
	sc.Measure = 4 * sim.Millisecond
	h := buildHost(sc.withDefaults(), Probes{})
	// Kernel cores start after the app cores; slow one splitting core.
	h.cores[sc.withDefaults().AppCores+2].Speed = 0.5
	res := h.run()
	if res.TCPOFOSegments != 0 {
		t.Errorf("skewed cores leaked reordering to TCP: %d", res.TCPOFOSegments)
	}
	if res.OOOSKBs == 0 {
		t.Error("half-speed branch should produce merge-point reordering")
	}
}

func TestManyFlowsFewCores(t *testing.T) {
	sc := Scenario{
		System: steering.MFlow, Proto: skb.TCP, MsgSize: 4096,
		Flows: 12, KernelCores: 3, AppCores: 2,
		Warmup: 1 * sim.Millisecond, Measure: 3 * sim.Millisecond,
	}
	r := Run(sc)
	if r.Gbps <= 0 || r.TCPOFOSegments != 0 {
		t.Errorf("12 flows on 3 cores: gbps=%.2f ofo=%d", r.Gbps, r.TCPOFOSegments)
	}
}

func TestFalconClassesPartition(t *testing.T) {
	for _, k := range []int{3, 4, 6, 10, 16} {
		plan := steering.PlanFor(steering.FalconDev, skb.TCP)
		starts, sizes := falconClasses(plan, k)
		if len(starts) != len(plan.Groups) {
			t.Fatalf("k=%d: wrong class count", k)
		}
		total := 0
		for i, sz := range sizes {
			if sz < 1 {
				t.Errorf("k=%d: class %d empty", k, i)
			}
			if starts[i] != total {
				t.Errorf("k=%d: class %d start %d, want %d", k, i, starts[i], total)
			}
			total += sz
		}
		// The VxLAN class is always exactly one core (host-wide device).
		for i, g := range plan.Groups {
			for _, stg := range g.Stages {
				if stg == steering.StageVXLAN && sizes[i] != 1 {
					t.Errorf("k=%d: vxlan class has %d cores", k, sizes[i])
				}
			}
		}
	}
}

func TestBaseForRegimes(t *testing.T) {
	sc := quick(steering.Vanilla, skb.TCP).withDefaults()
	sc.Flows = 8
	sc.SharedQueue = true
	h := &host{sc: sc}
	for f := 0; f < 8; f++ {
		if h.baseFor(f, true) != 0 {
			t.Fatal("shared queue must pin overlay flows to base 0")
		}
	}
	sc2 := sc
	sc2.SharedQueue = false
	h2 := &host{sc: sc2}
	seen := map[int]bool{}
	for f := 0; f < 8; f++ {
		b := h2.baseFor(f, true)
		if b < 0 || b >= sc2.KernelCores {
			t.Fatalf("base %d out of range", b)
		}
		seen[b] = true
	}
	if len(seen) < 2 {
		t.Error("hashing should spread flows over multiple cores")
	}
}

func TestZeroTrafficStackIdle(t *testing.T) {
	st := NewStack(Scenario{System: steering.Vanilla, Proto: skb.TCP, Flows: 2})
	st.Sched().RunUntil(sim.Time(2 * sim.Millisecond))
	if st.DeliveredBytes(0)+st.DeliveredBytes(1) != 0 {
		t.Error("stack without traffic delivered bytes")
	}
}

func TestCostModelIsolation(t *testing.T) {
	// Scenarios must not mutate the shared default cost table.
	a := DefaultCosts()
	Run(quick(steering.MFlow, skb.UDP))
	b := DefaultCosts()
	if *a != *b {
		t.Error("DefaultCosts drifted across runs")
	}
}

func TestAutoDetectPromotesElephantFlow(t *testing.T) {
	// Three blasting UDP clients: far above the default 1 Gbps threshold;
	// the detector must promote the flow and splitting must engage.
	sc := quick(steering.MFlow, skb.UDP)
	sc.MFlow.AutoDetect = true
	h := buildHost(sc.withDefaults(), Probes{})
	res := h.run()
	fp := h.flows[0]
	if fp.detect == nil || !fp.detect.IsElephant(fp.id) {
		t.Fatal("elephant flow not promoted")
	}
	if res.OOOSKBs == 0 {
		t.Error("promoted flow should actually split (merge-point reordering expected)")
	}
	// Splitting performance must be in the same league as forced splitting.
	forced := Run(quick(steering.MFlow, skb.UDP))
	if res.Gbps < 0.85*forced.Gbps {
		t.Errorf("auto-detected throughput %.2f lags forced splitting %.2f", res.Gbps, forced.Gbps)
	}
}

func TestAutoDetectLeavesMiceUnsplit(t *testing.T) {
	// Raise the threshold above the offered rate: the flow stays a mouse
	// and every micro-flow routes to branch zero — no reordering at all.
	sc := quick(steering.MFlow, skb.UDP)
	sc.MFlow.AutoDetect = true
	sc.MFlow.ElephantBps = 50e9
	h := buildHost(sc.withDefaults(), Probes{})
	res := h.run()
	fp := h.flows[0]
	if fp.detect.IsElephant(fp.id) {
		t.Fatal("flow promoted despite 50 Gbps threshold")
	}
	if fp.split.MiceMicroFlows == 0 {
		t.Error("gate never routed mice micro-flows")
	}
	if res.OOOSKBs != 0 {
		t.Errorf("unsplit mouse produced %d merge-point reorderings", res.OOOSKBs)
	}
	if res.DeliveredOutOfOrder != 0 {
		t.Errorf("mouse datagrams delivered out of order: %d", res.DeliveredOutOfOrder)
	}
}

func TestAutoDetectTCPStaysOrdered(t *testing.T) {
	sc := quick(steering.MFlow, skb.TCP)
	sc.MFlow.AutoDetect = true
	res := Run(sc)
	if res.TCPOFOSegments != 0 {
		t.Errorf("auto-detect leaked reordering into TCP: %d", res.TCPOFOSegments)
	}
	if res.Gbps <= 0 {
		t.Fatal("no throughput")
	}
	// A saturating TCP elephant should be promoted and split: it must
	// land well above the unsplit (vanilla-ish) ceiling.
	van := Run(quick(steering.Vanilla, skb.TCP))
	if res.Gbps < 1.2*van.Gbps {
		t.Errorf("auto-detected TCP (%.1f) did not benefit from splitting (vanilla %.1f)", res.Gbps, van.Gbps)
	}
}

func TestModelTXPreservesShape(t *testing.T) {
	// The explicit sender pipeline must preserve the headline shape:
	// MFLOW still beats vanilla, and 64KB TCP throughput stays in the
	// same league as the aggregate client-cost model.
	base := Run(quick(steering.MFlow, skb.TCP))
	tx := quick(steering.MFlow, skb.TCP)
	tx.ModelTX = true
	withTX := Run(tx)
	if withTX.Gbps < 0.7*base.Gbps || withTX.Gbps > 1.3*base.Gbps {
		t.Errorf("ModelTX shifted MFLOW TCP from %.1f to %.1f Gbps", base.Gbps, withTX.Gbps)
	}
	v := quick(steering.Vanilla, skb.TCP)
	v.ModelTX = true
	rv := Run(v)
	if !(withTX.Gbps > rv.Gbps) {
		t.Errorf("with ModelTX, MFLOW (%.1f) must still beat vanilla (%.1f)", withTX.Gbps, rv.Gbps)
	}
	if withTX.TCPOFOSegments != 0 {
		t.Errorf("TX pipeline must not reorder: ofo=%d", withTX.TCPOFOSegments)
	}
}

func TestModelTXSenderBoundSmallMessages(t *testing.T) {
	// Paper: at 16B the client/sender is the bottleneck. With the
	// explicit TX pipeline the sender-side socket path should dominate.
	sc := quick(steering.MFlow, skb.TCP)
	sc.MsgSize = 16
	sc.ModelTX = true
	r := Run(sc)
	if r.MsgPerSec <= 0 {
		t.Fatal("no messages delivered")
	}
	// No receiver kernel core may be anywhere near saturation: the
	// sender is the limiter.
	for _, c := range r.CPU[1:] {
		if c.Total > 0.90 {
			t.Errorf("receiver core %d at %.0f%% — expected sender-bound regime", c.Core, c.Total*100)
		}
	}
}
