package overlay

import (
	"fmt"

	"mflow/internal/fabric"
	"mflow/internal/netdev"
	"mflow/internal/packet"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/traffic"
)

// fabState is the cross-host machinery of a fabric run: the underlay wire
// model, the per-host VTEP FDBs, and the flow placement maps. All hosts
// share one scheduler, one SKB pool and one PktID sequence, so the run is
// a single deterministic event timeline.
type fabState struct {
	cfg   fabric.Config
	sched *sim.Scheduler
	un    *fabric.Underlay
	hosts []*host

	// bridges[i] is host i's VTEP forwarding database: ports are peer host
	// indices, so ForwardAt's unicast/flood decision IS the head-end
	// replication decision. Entries age with cfg.FDBMaxAge.
	bridges []*netdev.Bridge

	// rxHost/txHost map a flow's wire identity to its placement; rxEdge is
	// the flow's receive-side entry chain on its owner host (fault wrap →
	// arrival sequencing → NIC ring).
	rxHost map[uint64]int
	txHost map[uint64]int
	rxEdge map[uint64]traffic.Ingress

	// lastOK carries the owner-copy Send verdict from a bridge port egress
	// back to fabIngress.Deliver (the DES is single-threaded, so one cell
	// suffices).
	lastOK bool
}

// fabIngress is a sending flow's cross-host ingress chain: VTEP encap
// (accounting always; real outer headers when the run carries wire
// bytes), the TX host's FDB (unicast or head-end-replication flood),
// then the underlay toward the owner host's NIC. It replaces the local
// encapIngress→NIC chain that buildFlowTx wires on a single host.
type fabIngress struct {
	fs      *fabState
	tx, rx  int
	overlay bool
	src     packet.MAC // sending client endpoint
	dst     packet.MAC // receiving container endpoint

	// Outer (host-level) addressing for wire-mode byte encapsulation:
	// the sending host's uplink identity and the owner host's.
	outerSrcMAC, outerDstMAC packet.MAC
	outerSrcIP, outerDstIP   packet.IPv4Addr
	ipID                     uint16
}

// Deliver implements traffic.Ingress. A false return means the underlay's
// uplink tail-dropped the frame and the sender keeps ownership.
func (fi *fabIngress) Deliver(s *skb.SKB) bool {
	fs := fi.fs
	now := fs.sched.Now()
	if !fi.overlay {
		// Host networking (native, Slim-TCP): no VTEP, no FDB — the frame
		// unicasts straight to the owner host.
		return fs.un.Send(now, fi.tx, fi.rx, s)
	}
	// TX-side VTEP encapsulation (the RX pipeline's VXLAN stage decaps).
	// With wire bytes attached the outer headers are written into the
	// skb's reserved headroom — the same in-place push the local vxlan
	// device uses, so crossing the fabric adds no copy either.
	if s.Data != nil {
		fi.ipID++
		hdr := s.Push(packet.OverlayOverhead)
		packet.EncapVXLANInPlace(hdr, fi.outerSrcMAC, fi.outerDstMAC, fi.outerSrcIP, fi.outerDstIP,
			uint32(s.FlowID), fi.ipID, s.Data[packet.OverlayOverhead:])
	}
	s.Encap = true
	s.WireLen += packet.OverlayOverhead * s.Segs
	br := fs.bridges[fi.tx]
	_, known := br.LookupAt(fi.dst, now)
	fs.lastOK = false
	br.ForwardAt(fi.tx, fi.src, fi.dst, s, now)
	if !known {
		// Flood-then-learn: the owner's reply (abstract here — ACKs are
		// callbacks, not wire frames) would teach the VTEP one propagation
		// delay later; model exactly that.
		fs.un.ScheduleLearn(br, fi.dst, fi.rx)
	}
	return fs.lastOK
}

// attachBridge builds host i's VTEP FDB with one port per peer host. The
// owner's copy is the only one that materializes (a real underlay Send);
// flood copies toward other peers consume wire bandwidth only.
func (fs *fabState) attachBridge(i, n int) {
	b := netdev.NewBridge()
	b.MaxAge = fs.cfg.FDBMaxAge
	for j := 0; j < n; j++ {
		i, j := i, j
		b.AttachPort(func(s *skb.SKB) {
			if j == i {
				return
			}
			now := fs.sched.Now()
			if j == fs.rxHost[s.FlowID] {
				fs.lastOK = fs.un.Send(now, i, j, s)
			} else {
				fs.un.SendCopy(now, i, j, s.WireLen)
			}
		})
	}
	fs.bridges = append(fs.bridges, b)
}

// deliver is the underlay's terminal hop: the frame enters the owner
// host's receive edge. The destination VTEP also learns the sending
// client's MAC (the frame's inner source), which is what makes the
// reverse path unicast from the first reply on.
func (fs *fabState) deliver(dst int, s *skb.SKB) {
	h := fs.hosts[dst]
	if s.Encap {
		fs.bridges[dst].LearnAt(fabric.ContainerMAC(s.FlowID, fs.txHost[s.FlowID], false),
			fs.txHost[s.FlowID], fs.sched.Now())
	}
	edge := fs.rxEdge[s.FlowID]
	if edge == nil || !edge.Deliver(s) {
		h.retire(s)
	}
}

// fdbTotals sums the FDB counters across every host's VTEP.
func (fs *fabState) fdbTotals() (floods, learned, aged uint64) {
	for _, b := range fs.bridges {
		floods += b.Flooded
		learned += b.Learned
		aged += b.Aged
	}
	return
}

// syncObs mirrors the fabric's monotonic counters into the registry; like
// host.syncObs it runs at both window boundaries so Snapshot.Diff yields
// per-window deltas.
func (fs *fabState) syncObs(sc Scenario) {
	reg := sc.Obs
	if reg == nil {
		return
	}
	reg.Counter("underlay_sent").Set(fs.un.Sent)
	reg.Counter("underlay_delivered").Set(fs.un.Delivered)
	reg.Counter("underlay_dropped").Set(fs.un.Drops)
	reg.Counter("underlay_flood_copies").Set(fs.un.FloodCopies)
	floods, learned, aged := fs.fdbTotals()
	reg.Counter("fdb_floods").Set(floods)
	reg.Counter("fdb_learned").Set(learned)
	reg.Counter("fdb_aged").Set(aged)
	for i := range fs.hosts {
		reg.Counter(fmt.Sprintf("h%d:underlay_up_drops", i)).Set(fs.un.Up(i).Drops)
		reg.Counter(fmt.Sprintf("h%d:underlay_down_drops", i)).Set(fs.un.Down(i).Drops)
	}
}

// runFabric executes a multi-host scenario: N host shells on one shared
// clock, flows placed across them by the fabric config, the TX side of
// each flow wired through the VTEP/underlay chain into the RX host's NIC.
func runFabric(sc Scenario, pr Probes) *Result {
	fcfg := sc.Fabric.WithDefaults()
	n := fcfg.Hosts
	sched := sim.NewScheduler(sc.Seed)
	var pool *skb.Pool
	if !disablePool {
		pool = &skb.Pool{}
	}
	var pktSeq uint64

	fs := &fabState{
		cfg:    fcfg,
		sched:  sched,
		un:     fabric.NewUnderlay(n, fcfg, sched),
		rxHost: make(map[uint64]int),
		txHost: make(map[uint64]int),
		rxEdge: make(map[uint64]traffic.Ingress),
	}
	fs.un.DeliverTo = fs.deliver
	fs.un.Drop = func(s *skb.SKB) { pool.Put(s) }

	// Pre-compute per-host receive counts so each shell sizes its NIC
	// queues (and RSS pinning space) to the flows it actually serves.
	rxCount := make([]int, n)
	for f := 0; f < sc.Flows; f++ {
		_, rx := fcfg.Place(f)
		rxCount[rx]++
	}
	for i := 0; i < n; i++ {
		hsc := sc
		hsc.Flows = rxCount[i]
		if hsc.Flows == 0 {
			hsc.Flows = 1 // TX-only host: keep one (idle) NIC queue
		}
		h := newHostShell(hsc, pr, hostOpts{
			sched:  sched,
			pool:   pool,
			pktSeq: &pktSeq,
			obsPfx: fmt.Sprintf("h%d:", i),
		})
		h.ackExtra = fcfg.LinkLatency
		fs.hosts = append(fs.hosts, h)
		fs.attachBridge(i, n)
	}

	// Wire flows in global order (determinism): the RX pipeline on the
	// owner host, the receive edge, then the sender on the TX host.
	localIdx := make([]int, n)
	for f := 0; f < sc.Flows; f++ {
		txH, rxH := fcfg.Place(f)
		id := uint64(f + 1)
		fs.rxHost[id] = rxH
		fs.txHost[id] = txH
		rh := fs.hosts[rxH]
		fp := rh.buildFlowRx(localIdx[rxH], id)
		localIdx[rxH]++

		var edge traffic.Ingress = rh.nic
		if sc.Proto == skb.UDP && sc.UDPClients > 1 {
			edge = &arrivalSeq{n: rh.nic}
		}
		if rh.inj != nil && sc.Faults.WireActive() {
			edge = rh.inj.Wrap(edge)
		}
		fs.rxEdge[id] = edge

		if sc.NoTraffic {
			continue
		}
		var ingress traffic.Ingress = &fabIngress{
			fs:      fs,
			tx:      txH,
			rx:      rxH,
			overlay: isOverlay(sc.System, sc.Proto),
			src:     fabric.ContainerMAC(id, txH, false),
			dst:     fabric.ContainerMAC(id, rxH, true),
			// Host-level outer addressing, one identity per host.
			outerSrcMAC: packet.MAC{0x02, 0xee, 0, 0, 0, byte(txH + 1)},
			outerDstMAC: packet.MAC{0x02, 0xee, 0, 0, 0, byte(rxH + 1)},
			outerSrcIP:  packet.Addr4(10, 0, 0, byte(txH+1)),
			outerDstIP:  packet.Addr4(10, 0, 0, byte(rxH+1)),
		}
		if sc.WireMode {
			// Real bytes across the fabric: the builder lays the inner
			// frame into headroom-reserved arenas (VTEP encap is the
			// fabIngress's in-place push), and the owner host's socket
			// verifies payload integrity after the remote decap.
			ingress = newWireBuilder(ingress, id, false)
			fp.sock.Verify = wireVerify(fp)
		}
		fs.hosts[txH].buildFlowTx(f, fp, ingress)
	}
	for _, h := range fs.hosts {
		h.finish()
	}
	return runHosts(sc, sched, fs.hosts, fs)
}
