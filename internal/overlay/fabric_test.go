package overlay

import (
	"testing"

	"mflow/internal/causal"
	"mflow/internal/fabric"
	"mflow/internal/fault"
	"mflow/internal/harness"
	"mflow/internal/obs"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// fabricScenario is one cell of the multi-host matrix: short windows (the
// properties are invariants and bit-equality, not statistical stability),
// one flow per host pair, and an obs registry so fingerprints cover the
// fabric counters too.
func fabricScenario(sys steering.System, proto skb.Proto, hosts int) Scenario {
	return Scenario{
		System: sys, Proto: proto, MsgSize: 65536,
		Flows:  hosts,
		Warmup: 1 * sim.Millisecond, Measure: 2 * sim.Millisecond,
		Seed:   42,
		Obs:    obs.New(),
		Fabric: &fabric.Config{Hosts: hosts},
	}
}

// checkFabricConservation asserts the run's frame-accounting invariants:
// every frame put on the underlay is delivered, dropped, or still in
// flight; every frame offered to a NIC is accepted or dropped at a counted
// point; and TCP's in-order contract holds at every socket.
func checkFabricConservation(t *testing.T, label string, sc Scenario, res *Result) {
	t.Helper()
	if res.UnderlaySent == 0 {
		t.Errorf("%s: no frames crossed the underlay", label)
	}
	lhs := res.UnderlaySent + uint64(res.UnderlayInFlightStart)
	rhs := res.UnderlayDelivered + res.UnderlayDrops + uint64(res.UnderlayInFlightEnd)
	if lhs != rhs {
		t.Errorf("%s: underlay conservation broken: sent=%d +inflight0=%d != delivered=%d +drops=%d +inflight1=%d",
			label, res.UnderlaySent, res.UnderlayInFlightStart,
			res.UnderlayDelivered, res.UnderlayDrops, res.UnderlayInFlightEnd)
	}
	if res.OfferedFrames != res.AcceptedFrames+res.DropsRing+res.DropsAdmission {
		t.Errorf("%s: NIC conservation broken: offered=%d accepted=%d ring=%d admission=%d",
			label, res.OfferedFrames, res.AcceptedFrames, res.DropsRing, res.DropsAdmission)
	}
	if sc.Proto == skb.TCP && res.DeliveredOutOfOrder != 0 {
		t.Errorf("%s: %d segments delivered out of order to TCP sockets", label, res.DeliveredOutOfOrder)
	}
	if res.Gbps <= 0 {
		t.Errorf("%s: no goodput (%.3f Gbps)", label, res.Gbps)
	}
	if isOverlay(sc.System, sc.Proto) {
		if res.FDBLearned == 0 {
			t.Errorf("%s: overlay run learned no FDB entries", label)
		}
		if res.FDBFloods == 0 {
			t.Errorf("%s: overlay run never flooded (flood-then-learn unobservable)", label)
		}
	}
}

// TestFabricConservationMatrix sweeps steering systems × protocols × host
// counts through the parallel harness (the -race CI job runs it on 8
// workers): frame conservation and per-flow ordering must hold in every
// cell.
func TestFabricConservationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fabric matrix")
	}
	type cell struct {
		sys   steering.System
		proto skb.Proto
		hosts int
	}
	var cells []cell
	for _, sys := range []steering.System{steering.Native, steering.Vanilla, steering.RPS, steering.FalconFunc, steering.MFlow} {
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			for _, hosts := range []int{2, 3, 4} {
				cells = append(cells, cell{sys, proto, hosts})
			}
		}
	}
	results := harness.Map(8, cells, func(_ int, c cell) *Result {
		return Run(fabricScenario(c.sys, c.proto, c.hosts))
	})
	for i, c := range cells {
		label := c.sys.String() + "/" + c.proto.String()
		sc := fabricScenario(c.sys, c.proto, c.hosts)
		checkFabricConservation(t, label, sc, results[i])
	}
}

// TestFabricIncastConservation covers the N→1 placement: every sender
// converges on host 0's downlink, which must tail-drop (the incast signal)
// without breaking conservation or TCP ordering.
func TestFabricIncastConservation(t *testing.T) {
	sc := fabricScenario(steering.MFlow, skb.TCP, 4)
	sc.Flows = 6
	sc.Fabric = &fabric.Config{
		Hosts:     4,
		Placement: fabric.PlaceIncast,
		LinkGbps:  10, // tighten the receiver bottleneck
	}
	res := Run(sc)
	checkFabricConservation(t, "incast", sc, res)
	if res.UnderlayDrops == 0 {
		t.Error("6→1 incast over 10 Gbps links never dropped in the underlay")
	}
}

// TestFabricDeterminism runs fabric cells twice serially and once through
// the 8-worker harness: all three fingerprints must be bit-identical.
func TestFabricDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fabric matrix three times")
	}
	type cell struct {
		sys   steering.System
		proto skb.Proto
		hosts int
	}
	var cells []cell
	for _, sys := range []steering.System{steering.RPS, steering.MFlow} {
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			for _, hosts := range []int{2, 3} {
				cells = append(cells, cell{sys, proto, hosts})
			}
		}
	}
	first := make([]string, len(cells))
	for i, c := range cells {
		first[i] = Run(fabricScenario(c.sys, c.proto, c.hosts)).Fingerprint()
	}
	for i, c := range cells {
		if fp := Run(fabricScenario(c.sys, c.proto, c.hosts)).Fingerprint(); fp != first[i] {
			t.Errorf("%s/%s/%d hosts: second serial run diverged:\n--- first ---\n%s\n--- second ---\n%s",
				c.sys, c.proto, c.hosts, first[i], fp)
		}
	}
	parallel := harness.Map(8, cells, func(_ int, c cell) string {
		return Run(fabricScenario(c.sys, c.proto, c.hosts)).Fingerprint()
	})
	for i, c := range cells {
		if parallel[i] != first[i] {
			t.Errorf("%s/%s/%d hosts: harness run diverged from serial",
				c.sys, c.proto, c.hosts)
		}
	}
}

// TestFabricProbedMatchesUnprobed extends the probe-purity contract to
// fabric runs: attaching the causal profiler and the flight recorder must
// not change a multi-host run's measured results.
func TestFabricProbedMatchesUnprobed(t *testing.T) {
	for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
		plain := Run(fabricScenario(steering.MFlow, proto, 3)).Fingerprint()
		probed := RunProbed(fabricScenario(steering.MFlow, proto, 3), Probes{
			Causal: causal.NewProfiler(),
			Flight: causal.NewFlightRecorder(),
		}).Fingerprint()
		if plain != probed {
			t.Errorf("%s: probes perturbed the fabric run:\n--- plain ---\n%s\n--- probed ---\n%s",
				proto, plain, probed)
		}
	}
}

// TestFabricKeyPurity pins the probe-purity contract on scenario identity:
// a nil Fabric and a disabled (zero) config mint the pre-fabric key
// byte-for-byte, and runs are bit-identical; an enabled config changes the
// key.
func TestFabricKeyPurity(t *testing.T) {
	base := determinismScenario(steering.MFlow, skb.TCP)
	nilKey := base.Key()
	zero := base
	zero.Fabric = &fabric.Config{}
	if zero.Key() != nilKey {
		t.Errorf("disabled fabric config changed the scenario key:\nnil:  %s\nzero: %s", nilKey, zero.Key())
	}
	for _, bad := range []string{"Fabric", "fabric"} {
		if containsStr(nilKey, bad) {
			t.Errorf("nil-fabric key mentions %q: %s", bad, nilKey)
		}
	}
	a := Run(determinismScenario(steering.MFlow, skb.TCP)).Fingerprint()
	z := determinismScenario(steering.MFlow, skb.TCP)
	z.Fabric = &fabric.Config{}
	if b := Run(z).Fingerprint(); a != b {
		t.Error("disabled fabric config perturbed a single-host run")
	}
	on := base
	on.Fabric = &fabric.Config{Hosts: 2}
	if on.Key() == nilKey {
		t.Error("enabled fabric config did not change the scenario key")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestFabricUnderFaultProfiles rides the chaos fault profiles on a fabric
// run: injected wire loss at the receive edge stacks on underlay dynamics,
// and conservation plus TCP ordering must still hold.
func TestFabricUnderFaultProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every chaos profile on the fabric")
	}
	for name, plan := range fault.ChaosProfiles() {
		sc := fabricScenario(steering.MFlow, skb.TCP, 3)
		sc.Faults = plan
		res := Run(sc)
		lhs := res.UnderlaySent + uint64(res.UnderlayInFlightStart)
		rhs := res.UnderlayDelivered + res.UnderlayDrops + uint64(res.UnderlayInFlightEnd)
		if lhs != rhs {
			t.Errorf("%s: underlay conservation broken under faults", name)
		}
		if res.DeliveredOutOfOrder != 0 {
			t.Errorf("%s: %d out-of-order deliveries reached TCP sockets", name, res.DeliveredOutOfOrder)
		}
		if res.Gbps <= 0 {
			t.Errorf("%s: fabric run starved under faults", name)
		}
	}
}

// TestFabricFDBAging forces the VTEP FDB through the full
// flood→learn→age→flood cycle with an ageing horizon shorter than the
// run.
func TestFabricFDBAging(t *testing.T) {
	sc := fabricScenario(steering.MFlow, skb.TCP, 2)
	sc.Fabric = &fabric.Config{Hosts: 2, FDBMaxAge: 200 * sim.Microsecond}
	res := Run(sc)
	if res.FDBAged == 0 {
		t.Fatalf("no FDB entries aged with MaxAge=200µs over a 3ms run (learned=%d floods=%d)",
			res.FDBLearned, res.FDBAged)
	}
	if res.FDBFloods <= 1 {
		t.Errorf("aged entries should re-flood: floods=%d", res.FDBFloods)
	}
}

// FuzzFabric feeds random host counts, link parameters and flow placements
// through a fabric run and checks the conservation and ordering
// invariants. The seed corpus covers both placements, both protocols and
// the tightest link queue.
func FuzzFabric(f *testing.F) {
	f.Add(uint8(2), uint8(2), false, false, uint16(40), uint32(64), uint16(5))
	f.Add(uint8(3), uint8(5), true, false, uint16(10), uint32(16), uint16(20))
	f.Add(uint8(4), uint8(4), false, true, uint16(25), uint32(4), uint16(1))
	f.Add(uint8(2), uint8(1), true, true, uint16(1), uint32(2), uint16(50))
	f.Fuzz(func(t *testing.T, hosts, flows uint8, incast, udp bool, gbps uint16, queueKB uint32, latUs uint16) {
		h := 2 + int(hosts)%3  // 2..4
		fl := 1 + int(flows)%6 // 1..6
		placement := fabric.PlacePair
		if incast {
			placement = fabric.PlaceIncast
		}
		proto := skb.TCP
		if udp {
			proto = skb.UDP
		}
		sc := fabricScenario(steering.MFlow, proto, h)
		sc.Flows = fl
		sc.Fabric = &fabric.Config{
			Hosts:          h,
			Placement:      placement,
			LinkGbps:       float64(1 + gbps%100),
			LinkQueueBytes: int(1+queueKB%1024) << 10,
			LinkLatency:    sim.Duration(1+latUs%100) * sim.Microsecond,
		}
		res := Run(sc)
		lhs := res.UnderlaySent + uint64(res.UnderlayInFlightStart)
		rhs := res.UnderlayDelivered + res.UnderlayDrops + uint64(res.UnderlayInFlightEnd)
		if lhs != rhs {
			t.Fatalf("underlay conservation broken: sent=%d +if0=%d != delivered=%d +drops=%d +if1=%d",
				res.UnderlaySent, res.UnderlayInFlightStart,
				res.UnderlayDelivered, res.UnderlayDrops, res.UnderlayInFlightEnd)
		}
		if res.OfferedFrames != res.AcceptedFrames+res.DropsRing+res.DropsAdmission {
			t.Fatalf("NIC conservation broken: offered=%d accepted=%d ring=%d admission=%d",
				res.OfferedFrames, res.AcceptedFrames, res.DropsRing, res.DropsAdmission)
		}
		if proto == skb.TCP && res.DeliveredOutOfOrder != 0 {
			t.Fatalf("%d segments delivered out of order to TCP sockets", res.DeliveredOutOfOrder)
		}
	})
}
