package overlay

import (
	"fmt"
	"sort"
	"testing"

	"mflow/internal/fault"
	"mflow/internal/harness"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// chaosProfiles are the fault profiles the acceptance matrix runs — the
// canonical plans shared with the bench harness (mflowbench -fig chaos).
func chaosProfiles() map[string]*fault.Plan {
	return fault.ChaosProfiles()
}

func chaosScenario(sys steering.System, proto skb.Proto, plan *fault.Plan) Scenario {
	return Scenario{
		System: sys, Proto: proto, MsgSize: 65536,
		Warmup: 2 * sim.Millisecond, Measure: 6 * sim.Millisecond,
		Faults: plan,
	}
}

// TestChaosMatrix is the acceptance harness: every system × protocol ×
// fault profile must finish (no panic), keep delivering (no stalled flow),
// and — for TCP — preserve in-order delivery to the application. The whole
// matrix executes concurrently on the harness pool (runs are independent
// pure functions of their scenario); results come back in submission
// order, so the subtests report deterministically.
func TestChaosMatrix(t *testing.T) {
	profiles := chaosProfiles()
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)

	type cell struct {
		sys   steering.System
		proto skb.Proto
		name  string
	}
	var cells []cell
	for _, sys := range steering.ExtendedSystems {
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			for _, name := range names {
				cells = append(cells, cell{sys, proto, name})
			}
		}
	}
	results := harness.Map(8, cells, func(_ int, c cell) *Result {
		return Run(chaosScenario(c.sys, c.proto, profiles[c.name]))
	})
	for i, c := range cells {
		r := results[i]
		t.Run(fmt.Sprintf("%s/%s/%s", c.sys, c.proto, c.name), func(t *testing.T) {
			if r.DeliveredSegments == 0 {
				t.Fatal("flow stalled: nothing delivered in the measured window")
			}
			if r.FaultsInjected == 0 {
				t.Fatal("injector idle: the fault plan was not wired")
			}
			if r.OfferedFrames != r.AcceptedFrames+r.DropsRing+r.DropsAdmission {
				t.Fatalf("frame conservation violated: offered=%d != accepted=%d + ring=%d + admission=%d",
					r.OfferedFrames, r.AcceptedFrames, r.DropsRing, r.DropsAdmission)
			}
			if c.proto == skb.TCP {
				if r.DeliveredOutOfOrder != 0 {
					t.Fatalf("TCP delivered %d skbs out of order", r.DeliveredOutOfOrder)
				}
				if r.Retransmits == 0 {
					t.Fatal("lossy TCP run recovered nothing: retransmission not wired")
				}
			}
		})
	}
}

// TestChaosThroughputDegradesProportionally checks graceful degradation:
// ~1% wire loss must not collapse MFLOW's TCP goodput — it stays within a
// bounded factor of the lossless run.
func TestChaosThroughputDegradesProportionally(t *testing.T) {
	for _, sys := range []steering.System{steering.Vanilla, steering.MFlow} {
		lossless := Run(chaosScenario(sys, skb.TCP, nil))
		lossy := Run(chaosScenario(sys, skb.TCP, chaosProfiles()["random"]))
		if lossy.Gbps < lossless.Gbps/4 {
			t.Fatalf("%s: 1%% loss collapsed goodput %7.2f -> %7.2f Gbps (more than 4x)",
				sys, lossless.Gbps, lossy.Gbps)
		}
	}
}

// TestZeroFaultPlanIsInert: a plan with every rate at zero must leave the
// run bit-for-bit identical to one without a plan (the injector is never
// created, so no PRNG draw or code path differs).
func TestZeroFaultPlanIsInert(t *testing.T) {
	for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
		base := Run(chaosScenario(steering.MFlow, proto, nil))
		zeroed := Run(chaosScenario(steering.MFlow, proto, &fault.Plan{
			// Recovery knobs alone must not enable injection either.
			RTO: 5 * sim.Millisecond, GapTimeout: sim.Millisecond, OFOCap: 64,
		}))
		if base.DeliveredBytes != zeroed.DeliveredBytes ||
			base.DeliveredSegments != zeroed.DeliveredSegments ||
			base.OOOSegments != zeroed.OOOSegments ||
			base.ReassemblySwitches != zeroed.ReassemblySwitches ||
			base.Latency.Median() != zeroed.Latency.Median() ||
			base.Latency.P99() != zeroed.Latency.P99() {
			t.Fatalf("%v: zero-rate plan perturbed the run:\n  base   %+v bytes=%d segs=%d\n  zeroed %+v bytes=%d segs=%d",
				proto, base.Gbps, base.DeliveredBytes, base.DeliveredSegments,
				zeroed.Gbps, zeroed.DeliveredBytes, zeroed.DeliveredSegments)
		}
		if zeroed.FaultsInjected != 0 || zeroed.Retransmits != 0 {
			t.Fatalf("%v: zero-rate plan injected faults", proto)
		}
	}
}

// TestFaultRunsAreDeterministic: the injector draws from its own seeded
// PRNG, so identical scenarios with identical plans take identical fault
// decisions and deliver identical results.
func TestFaultRunsAreDeterministic(t *testing.T) {
	mk := func() *Result {
		return Run(chaosScenario(steering.MFlow, skb.TCP, chaosProfiles()["burst"]))
	}
	a, b := mk(), mk()
	if a.FaultsInjected != b.FaultsInjected || a.Retransmits != b.Retransmits ||
		a.DeliveredBytes != b.DeliveredBytes || a.DeliveredSegments != b.DeliveredSegments ||
		a.StaleReleased != b.StaleReleased || a.HolesReleased != b.HolesReleased {
		t.Fatalf("two identical fault runs diverged:\n  a: faults=%d retx=%d bytes=%d\n  b: faults=%d retx=%d bytes=%d",
			a.FaultsInjected, a.Retransmits, a.DeliveredBytes,
			b.FaultsInjected, b.Retransmits, b.DeliveredBytes)
	}
}

// TestWireCorruptionCaughtByChecksums: in wire mode, corrupted frames must
// be detected by the decap/verify path (counted, not silently delivered),
// and the run still completes.
func TestWireCorruptionCaughtByChecksums(t *testing.T) {
	sc := chaosScenario(steering.Vanilla, skb.TCP, &fault.Plan{
		Wire: fault.Profile{Corrupt: 0.01},
	})
	sc.WireMode = true
	sc.Warmup, sc.Measure = sim.Millisecond, 3*sim.Millisecond
	r := Run(sc)
	if r.FaultsInjected == 0 {
		t.Fatal("no corruption injected")
	}
	if r.WireErrors == 0 {
		t.Fatal("corrupted frames slipped past the wire-mode integrity checks")
	}
	if r.DeliveredSegments == 0 {
		t.Fatal("corruption stalled the flow")
	}
}

// TestBacklogAndSocketFaultPoints exercises the queue-admission drop points
// on a UDP path: both must count drops and the flow must keep delivering.
func TestBacklogAndSocketFaultPoints(t *testing.T) {
	r := Run(chaosScenario(steering.MFlow, skb.UDP, &fault.Plan{
		RingDrop: 0.002, BacklogDrop: 0.002, SockDrop: 0.002,
	}))
	if r.FaultDrops == 0 {
		t.Fatal("no queue-admission drops injected")
	}
	if r.DeliveredSegments == 0 {
		t.Fatal("queue faults stalled the flow")
	}
}

// TestCoreStallFaults: stall/jitter faults only perturb timing — the run
// completes and still delivers everything the window allows.
func TestCoreStallFaults(t *testing.T) {
	r := Run(chaosScenario(steering.MFlow, skb.TCP, &fault.Plan{
		StallProb: 0.01, StallMean: 20 * sim.Microsecond, IRQJitter: 0.05,
	}))
	if r.DeliveredSegments == 0 {
		t.Fatal("core stalls stalled the flow entirely")
	}
	if r.DeliveredOutOfOrder != 0 {
		t.Fatalf("TCP delivered %d skbs out of order under stalls", r.DeliveredOutOfOrder)
	}
}
