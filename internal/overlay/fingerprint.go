package overlay

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Fingerprint renders a canonical, exhaustive digest of the result: every
// counter, the latency distribution, the per-core CPU breakdown (tags
// sorted) and the full observability snapshot. Two results fingerprint
// equal iff they are the same measurement — floats are rendered through
// their IEEE-754 bit patterns, so equality means bit-identical, never
// approximately equal. The determinism tests compare serial, repeated and
// harness-parallel runs of the same scenario through this digest.
func (r *Result) Fingerprint() string {
	f := func(v float64) string { return fmt.Sprintf("%016x", math.Float64bits(v)) }
	var b strings.Builder
	fmt.Fprintf(&b, "scenario=%s\n", r.Scenario.Key())
	fmt.Fprintf(&b, "gbps=%s msg/s=%s bytes=%d segs=%d\n",
		f(r.Gbps), f(r.MsgPerSec), r.DeliveredBytes, r.DeliveredSegments)
	fmt.Fprintf(&b, "ooo_segs=%d ooo_skbs=%d tcp_ofo=%d switches=%d delivered_ooo=%d\n",
		r.OOOSegments, r.OOOSKBs, r.TCPOFOSegments, r.ReassemblySwitches, r.DeliveredOutOfOrder)
	fmt.Fprintf(&b, "drops ring=%d sock=%d backlog=%d wire_errs=%d\n",
		r.DropsRing, r.DropsSock, r.DropsBacklog, r.WireErrors)
	fmt.Fprintf(&b, "faults=%d fault_drops=%d retx=%d rto=%d fast=%d\n",
		r.FaultsInjected, r.FaultDrops, r.Retransmits, r.RTOTimeouts, r.FastRetransmits)
	fmt.Fprintf(&b, "stale=%d holes=%d pruned=%d dup=%d reasm_errs=%d reasm_err=%v\n",
		r.StaleReleased, r.HolesReleased, r.OFOPruned, r.TCPDupSegments, r.ReassemblyErrors, r.ReassemblyErr)
	fmt.Fprintf(&b, "gro=%s kcpu_total=%s kcpu_stddev=%s\n",
		f(r.GROFactor), f(r.KernelCPUTotal), f(r.KernelCPUStddev))
	fmt.Fprintf(&b, "overload offered=%d accepted=%d adm=%d aqm=%d gated=%d poll_in=%d poll_out=%d resteers=%d resteered=%d collapses=%d restores=%d budget_rel=%d rec_max=%d mem_peak=%d sojourn_p99=%d\n",
		r.OfferedFrames, r.AcceptedFrames, r.DropsAdmission, r.DropsAQM,
		r.OverloadGated, r.PollModeEntered, r.PollModeExited,
		r.WatchdogResteers, r.WatchdogResteeredSKBs,
		r.DegradeCollapses, r.DegradeRestores, r.ReasmBudgetReleased,
		r.WatchdogRecoveryMaxNs, r.MemPeakBytes, r.AQMSojournP99)
	if r.Scenario.Fabric.Enabled() {
		// Conditional so single-host fingerprints (committed artifacts
		// among them) are byte-identical to pre-fabric builds.
		fmt.Fprintf(&b, "fabric sent=%d delivered=%d drops=%d copies=%d floods=%d learned=%d aged=%d inflight=%d/%d\n",
			r.UnderlaySent, r.UnderlayDelivered, r.UnderlayDrops, r.UnderlayFloodCopies,
			r.FDBFloods, r.FDBLearned, r.FDBAged,
			r.UnderlayInFlightStart, r.UnderlayInFlightEnd)
	}
	if r.Latency != nil {
		fmt.Fprintf(&b, "latency count=%d sum=%s min=%d p50=%d p99=%d max=%d\n",
			r.Latency.Count(), f(r.Latency.Sum()),
			r.Latency.Min(), r.Latency.Median(), r.Latency.P99(), r.Latency.Max())
	}
	for _, c := range r.CPU {
		tags := make([]string, 0, len(c.ByTag))
		for tag := range c.ByTag {
			tags = append(tags, tag)
		}
		sort.Strings(tags)
		fmt.Fprintf(&b, "cpu[%d] total=%s", c.Core, f(c.Total))
		for _, tag := range tags {
			fmt.Fprintf(&b, " %s=%s", tag, f(c.ByTag[tag]))
		}
		b.WriteByte('\n')
	}
	for _, name := range r.Obs.Names() {
		m := r.Obs[name]
		fmt.Fprintf(&b, "obs %s kind=%s value=%s count=%d sum=%s min=%d p50=%d p99=%d max=%d\n",
			name, m.Kind, f(m.Value), m.Count, f(m.Sum), m.Min, m.P50, m.P99, m.Max)
	}
	return b.String()
}
