package overlay

import (
	mflow "mflow/internal/core"
	"mflow/internal/gro"
	"mflow/internal/netdev"
	"mflow/internal/nic"
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// buildMFlowFlow wires flow f's receive pipeline with MFLOW enabled and
// returns the first stage (attached to the NIC queue). Three topologies:
//
//   - TCP full-path scaling (paper Fig. 8b left): core(base) runs only the
//     IRQ-splitting first half, dispatching raw driver requests; each
//     parallel branch allocates skbs on one core and runs GRO + the whole
//     overlay device chain on another (PipelinePairs); micro-flows merge
//     before the TCP layer, whose processing rides the delivery thread.
//
//   - TCP flow-splitting only (ablation): skb alloc + GRO stay serialized on
//     core(base); branches run the post-skb device chain.
//
//   - UDP single-device scaling (Fig. 8b right): core(base) runs the first
//     softirq and splits before the heavyweight VxLAN device; branches run
//     VxLAN (+ the rest, with late merge at the socket per the paper) on
//     separate cores.
func (h *host) buildMFlowFlow(f int, fp *flowPath) *stage {
	if h.sc.MFlow.AutoDetect {
		fp.detect = mflow.NewDetector()
		if h.sc.MFlow.ElephantBps > 0 {
			fp.detect.ThresholdBps = h.sc.MFlow.ElephantBps
		}
	}
	if h.sc.Proto == skb.TCP {
		return h.buildMFlowTCP(f, fp)
	}
	return h.buildMFlowUDP(f, fp)
}

// armDetection wires the elephant detector into a flow's splitter and first
// stage: arrivals are observed at the first softirq, and the splitter's
// gate opens only while the flow classifies as an elephant.
func (h *host) armDetection(fp *flowPath, first *stage) {
	if fp.detect == nil {
		return
	}
	fp.split.Gate = func() bool { return fp.detect.IsElephant(fp.id) }
	if fp.reasm != nil {
		fp.reasm.TagRouting = true
		fp.reasm.RouteOf = fp.split.Route
	}
	prev := first.each
	first.each = func(s *skb.SKB, c *sim.Core) {
		fp.detect.Observe(s.FlowID, s.WireLen, h.sched.Now())
		if prev != nil {
			prev(s, c)
		}
	}
}

func (h *host) buildMFlowTCP(f int, fp *flowPath) *stage {
	sc := h.sc
	cfg := sc.Costs
	m := sc.MFlow
	base := h.baseFor(f, true)
	app := h.acore(f)

	// Transport tail in the delivery-thread context: reassembly (or the
	// ablation's kernel ofo queue) feeds TCP bookkeeping, then the socket
	// whose copy cost already includes TCP processing.
	tcpTail := h.tailFor(fp, app)
	var arrive func(*skb.SKB, sim.Time)
	if m.PerPacketReorder || m.NoReassembly {
		arrive = tcpTail
	} else {
		fp.reasm = mflow.NewReassembler(m.SplitCores, m.BatchSize, func(s *skb.SKB) { tcpTail(s, 0) })
		fp.reasm.Core = app
		fp.reasm.SwitchCost = cfg.MergeSwitch
		fp.reasm.PerSKB = cfg.MergePerSKB
		h.armFaultRecovery(fp)
		arrive = func(s *skb.SKB, _ sim.Time) {
			if err := fp.reasm.Arrive(s); err != nil {
				fp.recordArriveErr(err)
			}
		}
	}

	fp.split = &mflow.Splitter{BatchSize: m.BatchSize, IPICost: cfg.IPI}
	comp := &nic.CompletionBatcher{Every: cfg.CompletionEvery, UpdateCost: cfg.CompletionUpdate}

	// rot staggers which core serves a flow's first branch so that many
	// concurrent small flows (which may never fill one micro-flow batch)
	// still spread across the splitting cores.
	rot := func(i int) int { return (i + f) % m.SplitCores }

	if m.FullPath {
		// Parallel branches.
		for i := 0; i < m.SplitCores; i++ {
			var branchHead *stage
			if m.PipelinePairs {
				rest := h.newStageT("mflow-rest", h.kcore(base+1+m.SplitCores+rot(i)), 0, cfg.BacklogWake)
				rest.pre = append(rest.pre, dev("gro", cfg.GROOverlay))
				rest.gro = gro.New()
				h.gros = append(h.gros, rest.gro)
				rest.post = h.overlayChainDevices(fp, true, false)
				rest.out = arrive
				h.stages = append(h.stages, rest)

				alloc := h.newStageT("mflow-alloc", h.kcore(base+1+rot(i)), 0, cfg.BacklogWake)
				alloc.pre = append(alloc.pre, dev("alloc", cfg.Alloc))
				alloc.each = func(s *skb.SKB, c *sim.Core) { comp.Completed(c) }
				alloc.out = rest.feed()
				h.stages = append(h.stages, alloc)
				branchHead = alloc
			} else {
				br := h.newStageT("mflow-branch", h.kcore(base+1+rot(i)), 0, cfg.BacklogWake)
				br.pre = append(br.pre, dev("alloc", cfg.Alloc), dev("gro", cfg.GROOverlay))
				br.gro = gro.New()
				h.gros = append(h.gros, br.gro)
				br.post = h.overlayChainDevices(fp, true, false)
				br.each = func(s *skb.SKB, c *sim.Core) { comp.Completed(c) }
				br.out = arrive
				h.stages = append(h.stages, br)
				branchHead = br
			}
			fp.split.Targets = append(fp.split.Targets, branchHead.worker)
		}
		// IRQ-splitting first half: locate and dispatch raw requests.
		disp := h.newStageT("mflow-disp", h.kcore(base), 0, cfg.BacklogWake)
		disp.pre = append(disp.pre, dev("dispatch", netdev.Cost{PerSeg: cfg.IRQDispatch}))
		fp.split.Core = disp.core()
		disp.out = func(s *skb.SKB, _ sim.Time) { fp.split.Dispatch(s) }
		h.stages = append(h.stages, disp)
		h.armDetection(fp, disp)
		return disp
	}

	// Flow-splitting only: the first softirq (alloc+GRO+outer) stays on
	// core(base); branches run the post-skb chain.
	for i := 0; i < m.SplitCores; i++ {
		br := h.newStageT("mflow-branch", h.kcore(base+1+rot(i)), 0, cfg.BacklogWake)
		br.post = h.overlayChainDevices(fp, false, false)
		br.out = arrive
		h.stages = append(h.stages, br)
		fp.split.Targets = append(fp.split.Targets, br.worker)
	}
	s1 := h.newStageT("mflow-s1", h.kcore(base), 0, cfg.BacklogWake)
	s1.pre = append(s1.pre, dev("alloc", cfg.Alloc), dev("gro", cfg.GROOverlay))
	s1.gro = gro.New()
	h.gros = append(h.gros, s1.gro)
	s1.post = append(s1.post, dev("ip", cfg.OuterIPUDP))
	fp.split.Core = s1.core()
	fp.split.DispatchCost = cfg.SplitDispatch
	s1.out = func(s *skb.SKB, _ sim.Time) { fp.split.Dispatch(s) }
	h.stages = append(h.stages, s1)
	h.armDetection(fp, s1)
	return s1
}

// overlayChainDevices returns the overlay device chain down to the
// socket-queue insert, excluding transport processing (MFLOW TCP runs TCP
// in the delivery thread). withOuter includes the outer IP/UDP receive
// (false when a previous stage already parsed it); withL4 adds UDP
// transport processing for UDP paths.
func (h *host) overlayChainDevices(fp *flowPath, withOuter, withL4 bool) []*netdev.Device {
	cfg := h.sc.Costs
	var devs []*netdev.Device
	if withOuter {
		devs = append(devs, dev("ip", cfg.OuterIPUDP))
	}
	devs = append(devs,
		fp.vxDevice(cfg),
		dev("bridge", cfg.Bridge),
		dev("veth", cfg.Veth),
		dev("ip", cfg.InnerIP))
	if withL4 {
		devs = append(devs, dev("udp", cfg.UDPRx))
	}
	devs = append(devs, dev("sock", cfg.SockEnq))
	return devs
}

func (h *host) buildMFlowUDP(f int, fp *flowPath) *stage {
	sc := h.sc
	cfg := sc.Costs
	m := sc.MFlow
	base := h.baseFor(f, true)
	app := h.acore(f)

	udpTail := h.tailFor(fp, app)
	var arrive func(*skb.SKB, sim.Time)
	var splitDevs []*netdev.Device
	if m.NoReassembly || m.PerPacketReorder {
		// No order restoration: datagrams reach the app as they finish.
		arrive = udpTail
		splitDevs = h.udpSplitChain(fp, true)
	} else if m.LateMerge {
		// The paper's UDP configuration: branches run the whole
		// remaining path; micro-flows merge right before user-space
		// delivery, reusing the backlog queues.
		fp.reasm = mflow.NewReassembler(m.SplitCores, m.BatchSize, func(s *skb.SKB) { udpTail(s, 0) })
		fp.reasm.AllowGaps = true
		fp.reasm.Core = app
		fp.reasm.SwitchCost = cfg.MergeSwitch
		fp.reasm.PerSKB = cfg.MergePerSKB
		h.armFaultRecovery(fp)
		arrive = func(s *skb.SKB, _ sim.Time) {
			if err := fp.reasm.Arrive(s); err != nil {
				fp.recordArriveErr(err)
			}
		}
		splitDevs = h.udpSplitChain(fp, true)
	} else {
		// Early merge (ablation): branches run only VxLAN; merge right
		// after it, then the rest of the path on one further core.
		rest := h.newStageT("mflow-rest", h.kcore(base+1+m.SplitCores), udpBacklogCap, cfg.BacklogWake)
		rest.post = []*netdev.Device{
			dev("bridge", cfg.Bridge),
			dev("veth", cfg.Veth),
			dev("ip", cfg.InnerIP),
			dev("udp", cfg.UDPRx),
			dev("sock", cfg.SockEnq),
		}
		rest.out = udpTail
		h.stages = append(h.stages, rest)
		fp.reasm = mflow.NewReassembler(m.SplitCores, m.BatchSize, func(s *skb.SKB) { rest.worker.Enqueue(s) })
		fp.reasm.AllowGaps = true
		fp.reasm.Core = rest.core()
		fp.reasm.SwitchCost = cfg.MergeSwitch
		fp.reasm.PerSKB = cfg.MergePerSKB
		h.armFaultRecovery(fp)
		arrive = func(s *skb.SKB, _ sim.Time) {
			if err := fp.reasm.Arrive(s); err != nil {
				fp.recordArriveErr(err)
			}
		}
		splitDevs = []*netdev.Device{fp.vxDevice(cfg)}
	}

	fp.split = &mflow.Splitter{BatchSize: m.BatchSize, IPICost: cfg.IPI, DispatchCost: cfg.SplitDispatch}
	rot := func(i int) int { return (i + f) % m.SplitCores }
	// Split the backlog budget across branches so MFLOW buffers no more
	// than the single-queue systems do (bounded queuing delay).
	brCap := udpBacklogCap / m.SplitCores
	if brCap < 256 {
		brCap = 256
	}
	for i := 0; i < m.SplitCores; i++ {
		br := h.newStageT("mflow-branch", h.kcore(base+1+rot(i)), brCap, cfg.BacklogWake)
		br.post = splitDevs
		br.out = arrive
		h.stages = append(h.stages, br)
		fp.split.Targets = append(fp.split.Targets, br.worker)
	}

	// First softirq: alloc + (failed) GRO lookup + outer IP/UDP, then the
	// flow-splitting function in place of the stage transition.
	s1 := h.newStageT("mflow-s1", h.kcore(base), udpBacklogCap, cfg.BacklogWake)
	s1.pre = append(s1.pre,
		dev("alloc", cfg.Alloc),
		dev("gro", cfg.GROLookupUDP))
	s1.post = append(s1.post, dev("ip", cfg.OuterIPUDP))
	fp.split.Core = s1.core()
	s1.out = func(s *skb.SKB, _ sim.Time) { fp.split.Dispatch(s) }
	h.stages = append(h.stages, s1)
	h.armDetection(fp, s1)
	return s1
}

// udpSplitChain is the branch device list when branches run the whole
// remaining UDP path.
func (h *host) udpSplitChain(fp *flowPath, withL4 bool) []*netdev.Device {
	cfg := h.sc.Costs
	devs := []*netdev.Device{
		fp.vxDevice(cfg),
		dev("bridge", cfg.Bridge),
		dev("veth", cfg.Veth),
		dev("ip", cfg.InnerIP),
	}
	if withL4 {
		devs = append(devs, dev("udp", cfg.UDPRx), dev("sock", cfg.SockEnq))
	}
	return devs
}
