package overlay

import (
	"strings"
	"testing"

	"mflow/internal/obs"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
	"mflow/internal/trace"
)

// obsScenario is a small deterministic MFLOW TCP run with the registry on.
func obsScenario() (Scenario, *obs.Registry) {
	reg := obs.New()
	return Scenario{
		System: steering.MFlow, Proto: skb.TCP, MsgSize: 65536,
		Obs:    reg,
		Warmup: 2 * sim.Millisecond, Measure: 5 * sim.Millisecond,
	}, reg
}

// TestObsStageLatencyCountsMatchDeliveries asserts the acceptance criterion:
// per-stage latency histograms are recorded for every packet (no tracer
// attached at all here), and the socket-stage count over the measured window
// equals the delivered segment count exactly.
func TestObsStageLatencyCountsMatchDeliveries(t *testing.T) {
	sc, _ := obsScenario()
	res := Run(sc)
	if res.DeliveredSegments == 0 {
		t.Fatal("scenario delivered nothing")
	}
	m, ok := res.Obs.Get("stage_latency", "stage", "socket")
	if !ok {
		t.Fatalf("no socket stage_latency series; have %v", res.Obs.Names())
	}
	if m.Count != res.DeliveredSegments {
		t.Errorf("stage_latency{socket} count %d != delivered segments %d", m.Count, res.DeliveredSegments)
	}
	// Every pipeline stage must have recorded too, with sane latencies.
	var stages int
	for _, name := range res.Obs.Names() {
		if !strings.HasPrefix(name, "stage_latency{") {
			continue
		}
		stages++
		if res.Obs[name].Count == 0 {
			t.Errorf("%s recorded nothing", name)
		}
		if res.Obs[name].Max <= 0 {
			t.Errorf("%s has non-positive max latency", name)
		}
	}
	if stages < 3 {
		t.Errorf("expected >=3 instrumented stages, got %d", stages)
	}
}

// TestObsQueueDepthsNonZero asserts the other run-level acceptance
// criterion: a MFLOW TCP run samples non-zero p99 depth for the NIC ring
// and for at least one backlog queue.
func TestObsQueueDepthsNonZero(t *testing.T) {
	sc, _ := obsScenario()
	res := Run(sc)
	ring, ok := res.Obs.Get("queue_depth", "queue", "nic_ring0")
	if !ok {
		t.Fatalf("no NIC ring depth series; have %v", res.Obs.Names())
	}
	if ring.P99 <= 0 {
		t.Errorf("NIC ring p99 depth is zero: %+v", ring)
	}
	if ring.Count == 0 {
		t.Error("sampler took no ring samples in the measured window")
	}
	var backlogP99 int64
	for _, name := range res.Obs.Names() {
		if strings.HasPrefix(name, "queue_depth{queue=backlog:") && res.Obs[name].P99 > backlogP99 {
			backlogP99 = res.Obs[name].P99
		}
	}
	if backlogP99 <= 0 {
		t.Error("no backlog queue sampled a non-zero p99 depth")
	}
}

// TestObsStageGapsRecorded checks inter-stage queueing delay series exist
// for the MFLOW pipeline's handoffs (dispatch → branch, branch → socket).
func TestObsStageGapsRecorded(t *testing.T) {
	sc, _ := obsScenario()
	res := Run(sc)
	var gaps []string
	for _, name := range res.Obs.Names() {
		if strings.HasPrefix(name, "stage_gap{") && res.Obs[name].Count > 0 {
			gaps = append(gaps, name)
		}
	}
	if len(gaps) < 2 {
		t.Errorf("expected >=2 stage_gap series, got %v", gaps)
	}
	var toSocket bool
	for _, g := range gaps {
		if strings.Contains(g, "to=socket") {
			toSocket = true
		}
	}
	if !toSocket {
		t.Errorf("no gap series terminating at the socket: %v", gaps)
	}
}

// TestObsCountersAndDevices checks the synced NIC/device counters cover the
// measured window (received > 0, per-device segment counts present).
func TestObsCountersAndDevices(t *testing.T) {
	sc, _ := obsScenario()
	res := Run(sc)
	if m, _ := res.Obs.Get("nic_received"); m.Value <= 0 {
		t.Errorf("nic_received not positive: %+v", m)
	}
	if m, ok := res.Obs.Get("device_segs", "device", "vxlan"); !ok || m.Value <= 0 {
		t.Errorf("vxlan device_segs missing or zero: %+v ok=%v", m, ok)
	}
	if m, _ := res.Obs.Get("socket_delivered_segs"); uint64(m.Value) != res.DeliveredSegments {
		t.Errorf("socket_delivered_segs %v != DeliveredSegments %d", m.Value, res.DeliveredSegments)
	}
}

// TestObsDeterministic runs the same observed scenario twice and expects
// identical snapshots — the registry must not perturb determinism.
func TestObsDeterministic(t *testing.T) {
	sc1, _ := obsScenario()
	sc2, _ := obsScenario()
	var b1, b2 strings.Builder
	if err := Run(sc1).Obs.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := Run(sc2).Obs.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("observed runs with identical seeds diverged")
	}
}

// TestObsDoesNotChangeResults guards the zero-overhead claim the other way:
// attaching a registry must not change the simulation's outcome.
func TestObsDoesNotChangeResults(t *testing.T) {
	sc, _ := obsScenario()
	plain := sc
	plain.Obs = nil
	a := Run(sc)
	b := Run(plain)
	if a.Gbps != b.Gbps || a.DeliveredSegments != b.DeliveredSegments {
		t.Errorf("observability changed the run: %.3f/%d vs %.3f/%d Gbps/segs",
			a.Gbps, a.DeliveredSegments, b.Gbps, b.DeliveredSegments)
	}
}

// TestObsWithTracerAndCoreLog exercises the full export path end to end on
// a UDP scenario: tracer + core log + registry on one run.
func TestObsWithTracerAndCoreLog(t *testing.T) {
	sc, _ := obsScenario()
	sc.Proto = skb.UDP
	sc.Tracer = trace.New()
	sc.Tracer.OnlyFlow = 1
	sc.Tracer.OnlySeqBelow = 64
	sc.CoreLog = &obs.CoreLog{}
	res := Run(sc)
	if res.DeliveredSegments == 0 {
		t.Fatal("UDP scenario delivered nothing")
	}
	if len(sc.Tracer.Events()) == 0 {
		t.Error("tracer recorded nothing")
	}
	if len(sc.CoreLog.Intervals) == 0 {
		t.Error("core log recorded nothing")
	}
	evs := obs.ChromeTraceEvents(sc.Tracer.Events(), sc.CoreLog)
	if len(evs) <= len(sc.Tracer.Events()) {
		t.Errorf("chrome events %d should exceed tracer events %d", len(evs), len(sc.Tracer.Events()))
	}
}
