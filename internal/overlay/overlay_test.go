package overlay

import (
	"testing"

	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// quick returns a scenario with short windows for unit testing.
func quick(sys steering.System, proto skb.Proto) Scenario {
	return Scenario{
		System: sys, Proto: proto, MsgSize: 65536,
		Warmup: 2 * sim.Millisecond, Measure: 6 * sim.Millisecond,
	}
}

func TestScenarioDefaults(t *testing.T) {
	sc := Scenario{Proto: skb.TCP}.withDefaults()
	if sc.MsgSize != 65536 || sc.Flows != 1 || sc.UDPClients != 1 ||
		sc.Window != 2048 || sc.KernelCores != 6 || sc.AppCores != 1 {
		t.Errorf("defaults wrong: %+v", sc)
	}
	if sc.Costs == nil || sc.Seed == 0 {
		t.Error("costs/seed not defaulted")
	}
	udp := Scenario{Proto: skb.UDP}.withDefaults()
	if udp.UDPClients != 3 {
		t.Errorf("UDP should default to the paper's 3 clients, got %d", udp.UDPClients)
	}
}

func TestMFlowConfigDefaults(t *testing.T) {
	tcp := MFlowConfig{}.withDefaults(skb.TCP)
	if tcp.BatchSize != 256 || tcp.SplitCores != 2 {
		t.Errorf("batch/cores defaults wrong: %+v", tcp)
	}
	if !tcp.FullPath || !tcp.PipelinePairs || tcp.LateMerge {
		t.Errorf("TCP should default to full-path scaling: %+v", tcp)
	}
	udp := MFlowConfig{}.withDefaults(skb.UDP)
	if udp.FullPath || !udp.LateMerge {
		t.Errorf("UDP should default to device scaling with late merge: %+v", udp)
	}
	fso := MFlowConfig{FlowSplitOnly: true}.withDefaults(skb.TCP)
	if fso.FullPath || fso.PipelinePairs {
		t.Errorf("FlowSplitOnly must disable IRQ splitting: %+v", fso)
	}
}

func TestScenarioName(t *testing.T) {
	sc := quick(steering.Vanilla, skb.TCP).withDefaults()
	if got := sc.Name(); got != "vanilla/TCP/64KB/flows=1" {
		t.Errorf("Name() = %q", got)
	}
	sc.MsgSize = 16
	if got := sc.Name(); got != "vanilla/TCP/16B/flows=1" {
		t.Errorf("Name() = %q", got)
	}
}

func TestRunDeterminism(t *testing.T) {
	a := Run(quick(steering.MFlow, skb.TCP))
	b := Run(quick(steering.MFlow, skb.TCP))
	if a.Gbps != b.Gbps || a.OOOSKBs != b.OOOSKBs || a.Latency.Median() != b.Latency.Median() {
		t.Errorf("same scenario diverged: %v vs %v", a, b)
	}
	// Seed sensitivity shows on a kernel-core-bound (jittered) system.
	v1 := Run(quick(steering.Vanilla, skb.TCP))
	c := quick(steering.Vanilla, skb.TCP)
	c.Seed = 7
	v2 := Run(c)
	if v1.Gbps == v2.Gbps && v1.Latency.Mean() == v2.Latency.Mean() {
		t.Error("different seeds should perturb results")
	}
}

func TestTCPPathsAreLossless(t *testing.T) {
	for _, sys := range steering.Systems {
		r := Run(quick(sys, skb.TCP))
		if r.DropsRing != 0 || r.DropsSock != 0 || r.DropsBacklog != 0 {
			t.Errorf("%v: TCP path dropped packets (%d/%d/%d) — window must bound queues",
				sys, r.DropsRing, r.DropsSock, r.DropsBacklog)
		}
		if r.Gbps <= 0 {
			t.Errorf("%v: no TCP throughput", sys)
		}
	}
}

func TestTCPDeliveryStaysInOrder(t *testing.T) {
	// After MFLOW's reassembly, the TCP layer must see zero out-of-order
	// arrivals: the merge point absorbs all reordering.
	r := Run(quick(steering.MFlow, skb.TCP))
	if r.TCPOFOSegments != 0 {
		t.Errorf("TCP saw %d out-of-order skbs after reassembly", r.TCPOFOSegments)
	}
	if r.OOOSKBs == 0 {
		t.Error("merge point should have observed some reordering to absorb")
	}
}

func TestUDPReassemblyRestoresOrder(t *testing.T) {
	r := Run(quick(steering.MFlow, skb.UDP))
	if r.OOOSKBs == 0 {
		t.Error("splitting should produce merge-point reordering")
	}
	// Late merge restores order; only loss-induced stale deliveries may
	// leak through, and there should be almost none relative to traffic.
	if r.DeliveredOutOfOrder > r.DeliveredSegments/100 {
		t.Errorf("app saw %d/%d datagrams out of order after reassembly",
			r.DeliveredOutOfOrder, r.DeliveredSegments)
	}

	no := quick(steering.MFlow, skb.UDP)
	no.MFlow.NoReassembly = true
	rn := Run(no)
	if rn.DeliveredOutOfOrder == 0 {
		t.Error("without reassembly the app must see reordering")
	}
}

func TestPaperShapeTCP(t *testing.T) {
	res := map[steering.System]*Result{}
	for _, sys := range steering.Systems {
		res[sys] = Run(quick(sys, skb.TCP))
	}
	g := func(s steering.System) float64 { return res[s].Gbps }

	// Ordering from the paper's Fig. 4a/8a at 64 KB.
	if !(g(steering.Vanilla) < g(steering.RPS)) {
		t.Errorf("vanilla (%.1f) should trail RPS (%.1f)", g(steering.Vanilla), g(steering.RPS))
	}
	if rel := g(steering.FalconDev) / g(steering.RPS); rel < 0.85 || rel > 1.15 {
		t.Errorf("FALCON-dev (%.1f) should roughly match RPS (%.1f) for TCP", g(steering.FalconDev), g(steering.RPS))
	}
	if !(g(steering.FalconFunc) > g(steering.RPS)) {
		t.Errorf("FALCON-func (%.1f) should beat RPS (%.1f)", g(steering.FalconFunc), g(steering.RPS))
	}
	if !(g(steering.MFlow) > g(steering.FalconFunc)) {
		t.Errorf("MFLOW (%.1f) should beat FALCON-func (%.1f)", g(steering.MFlow), g(steering.FalconFunc))
	}
	// The headline: MFLOW exceeds even the native network for TCP.
	if !(g(steering.MFlow) > g(steering.Native)) {
		t.Errorf("MFLOW (%.1f) should beat native (%.1f) for TCP", g(steering.MFlow), g(steering.Native))
	}
	// Vanilla overlay loses ~40% vs native (accept 30-60%).
	drop := 1 - g(steering.Vanilla)/g(steering.Native)
	if drop < 0.30 || drop > 0.60 {
		t.Errorf("vanilla TCP drop vs native = %.0f%%, want 30-60%%", drop*100)
	}
	// MFLOW gains at least 60% over vanilla (paper: +81%).
	if gain := g(steering.MFlow)/g(steering.Vanilla) - 1; gain < 0.60 {
		t.Errorf("MFLOW TCP gain over vanilla = %.0f%%, want >= 60%%", gain*100)
	}
	// Latency: MFLOW well below vanilla at max load (paper Fig. 9).
	if m, v := res[steering.MFlow].Latency.Median(), res[steering.Vanilla].Latency.Median(); !(float64(m) < 0.8*float64(v)) {
		t.Errorf("MFLOW median latency %v should be well under vanilla %v", m, v)
	}
}

func TestPaperShapeUDP(t *testing.T) {
	res := map[steering.System]*Result{}
	for _, sys := range steering.Systems {
		res[sys] = Run(quick(sys, skb.UDP))
	}
	g := func(s steering.System) float64 { return res[s].Gbps }

	// Vanilla overlay loses heavily vs native (paper ~80%; accept >= 55%).
	if drop := 1 - g(steering.Vanilla)/g(steering.Native); drop < 0.55 {
		t.Errorf("vanilla UDP drop vs native = %.0f%%, want >= 55%%", drop*100)
	}
	// RPS helps only slightly (paper +6%; accept 0-35%).
	if gain := g(steering.RPS)/g(steering.Vanilla) - 1; gain < 0 || gain > 0.35 {
		t.Errorf("RPS UDP gain = %.0f%%, want small positive", gain*100)
	}
	// FALCON's device pipelining helps a lot (paper +80%; accept >= 50%).
	if gain := g(steering.FalconDev)/g(steering.Vanilla) - 1; gain < 0.50 {
		t.Errorf("FALCON UDP gain = %.0f%%, want >= 50%%", gain*100)
	}
	// MFLOW beats FALCON (paper +21%; accept >= 10%).
	if gain := g(steering.MFlow)/g(steering.FalconDev) - 1; gain < 0.10 {
		t.Errorf("MFLOW over FALCON = %.0f%%, want >= 10%%", gain*100)
	}
	// But stays below native for UDP (clients/receiver limited).
	if !(g(steering.MFlow) < g(steering.Native)) {
		t.Errorf("MFLOW UDP (%.1f) should stay below native (%.1f)", g(steering.MFlow), g(steering.Native))
	}
}

func TestBatchSizeReducesOOO(t *testing.T) {
	// Fig. 7's mechanism: larger micro-flow batches mean far fewer
	// out-of-order deliveries at the merge point.
	ooo := map[int]uint64{}
	for _, b := range []int{1, 16, 256} {
		sc := quick(steering.MFlow, skb.TCP)
		sc.MFlow.BatchSize = b
		r := Run(sc)
		ooo[b] = r.OOOSKBs
	}
	if !(ooo[1] > ooo[16] && ooo[16] > ooo[256]) {
		t.Errorf("OOO deliveries should fall with batch size: %v", ooo)
	}
	if ooo[256] > ooo[1]/5 {
		t.Errorf("batch 256 (%d) should cut OOO deliveries by >80%% vs batch 1 (%d)", ooo[256], ooo[1])
	}
}

func TestSmallMessagesClientBound(t *testing.T) {
	// Paper: at 16 B the client is the bottleneck and every system
	// performs about the same.
	var rates []float64
	for _, sys := range []steering.System{steering.Native, steering.Vanilla, steering.MFlow} {
		sc := quick(sys, skb.TCP)
		sc.MsgSize = 16
		rates = append(rates, Run(sc).MsgPerSec)
	}
	for i := 1; i < len(rates); i++ {
		ratio := rates[i] / rates[0]
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("16B rates should be comparable across systems: %v", rates)
		}
	}
}

func TestSplitCoresDiminishingReturns(t *testing.T) {
	prev := 0.0
	gains := []float64{}
	for _, n := range []int{1, 2, 3} {
		sc := quick(steering.MFlow, skb.UDP)
		sc.MFlow.SplitCores = n
		g := Run(sc).Gbps
		if prev > 0 {
			gains = append(gains, g/prev-1)
		}
		prev = g
	}
	if gains[0] < 0.15 {
		t.Errorf("second splitting core should help substantially, gain=%.0f%%", gains[0]*100)
	}
	if gains[1] > gains[0] {
		t.Errorf("returns should diminish: %v", gains)
	}
}

func TestMFlowCPUMoreBalanced(t *testing.T) {
	// Fig. 12: MFLOW spreads kernel-core load more evenly than FALCON.
	mk := func(sys steering.System) *Result {
		return Run(Scenario{
			System: sys, Proto: skb.TCP, MsgSize: 65536,
			Flows: 10, KernelCores: 10, AppCores: 5,
			Warmup: 2 * sim.Millisecond, Measure: 6 * sim.Millisecond,
		})
	}
	f := mk(steering.FalconDev)
	m := mk(steering.MFlow)
	if !(m.KernelCPUStddev < f.KernelCPUStddev) {
		t.Errorf("MFLOW stddev %.1f should be below FALCON's %.1f",
			m.KernelCPUStddev, f.KernelCPUStddev)
	}
}

func TestPerPacketReorderCostsThroughput(t *testing.T) {
	batch := Run(quick(steering.MFlow, skb.TCP))
	sc := quick(steering.MFlow, skb.TCP)
	sc.MFlow.PerPacketReorder = true
	perPkt := Run(sc)
	if perPkt.Gbps > batch.Gbps*1.02 {
		t.Errorf("per-packet reordering (%.1f) should not beat batch reassembly (%.1f)",
			perPkt.Gbps, batch.Gbps)
	}
	if perPkt.TCPOFOSegments == 0 {
		t.Error("ablation should exercise the kernel ofo queue")
	}
}

func TestCPUUtilizationAccounting(t *testing.T) {
	r := Run(quick(steering.Vanilla, skb.TCP))
	// Vanilla squeezes everything onto one kernel core: it should be hot
	// and the remaining kernel cores idle.
	hot := 0
	for _, s := range r.CPU[1:] { // skip app core
		if s.Total > 0.5 {
			hot++
		}
	}
	if hot != 1 {
		t.Errorf("vanilla should saturate exactly one kernel core, got %d hot", hot)
	}
	if r.KernelCPUTotal <= 0 {
		t.Error("kernel CPU total missing")
	}
	// App core must show copy work.
	if r.CPU[0].ByTag["copy"] <= 0 {
		t.Error("app core copy accounting missing")
	}
}

func TestGROEffectiveForTCPNotUDP(t *testing.T) {
	tcp := Run(quick(steering.Vanilla, skb.TCP))
	udp := Run(quick(steering.Vanilla, skb.UDP))
	if tcp.GROFactor < 5 {
		t.Errorf("TCP GRO factor %.1f, want substantial merging", tcp.GROFactor)
	}
	if udp.GROFactor != 1 {
		t.Errorf("UDP GRO factor %.1f, want 1 (paper: GRO ineffective for UDP)", udp.GROFactor)
	}
}

func TestUDPOverloadDropsNotTCP(t *testing.T) {
	udp := Run(quick(steering.Vanilla, skb.UDP))
	if udp.DropsRing+udp.DropsBacklog == 0 {
		t.Error("overloaded vanilla UDP should shed load at ring/backlog")
	}
}

func TestMultiFlowAdvantageShrinks(t *testing.T) {
	// Fig. 10: MFLOW's advantage over vanilla shrinks as flows grow and
	// spare CPU disappears.
	gain := func(flows int) float64 {
		mk := func(sys steering.System) float64 {
			return Run(Scenario{
				System: sys, Proto: skb.TCP, MsgSize: 4096,
				Flows: flows, KernelCores: 10, AppCores: 5,
				Warmup: 2 * sim.Millisecond, Measure: 6 * sim.Millisecond,
			}).Gbps
		}
		return mk(steering.MFlow)/mk(steering.Vanilla) - 1
	}
	few := gain(2)
	many := gain(16)
	if !(few > many) {
		t.Errorf("advantage should shrink with flows: %.0f%% @2 vs %.0f%% @16", few*100, many*100)
	}
	if few < 0.1 {
		t.Errorf("MFLOW should clearly win at low flow counts, got %.0f%%", few*100)
	}
}

func TestSlimExtensionBaseline(t *testing.T) {
	// Slim bypasses the overlay: near-native TCP, vanilla-overlay UDP.
	slimTCP := Run(quick(steering.Slim, skb.TCP))
	nativeTCP := Run(quick(steering.Native, skb.TCP))
	if rel := slimTCP.Gbps / nativeTCP.Gbps; rel < 0.9 || rel > 1.1 {
		t.Errorf("Slim TCP (%.1f) should be near native (%.1f)", slimTCP.Gbps, nativeTCP.Gbps)
	}
	slimUDP := Run(quick(steering.Slim, skb.UDP))
	vanUDP := Run(quick(steering.Vanilla, skb.UDP))
	if rel := slimUDP.Gbps / vanUDP.Gbps; rel < 0.9 || rel > 1.1 {
		t.Errorf("Slim UDP (%.1f) must degrade to vanilla overlay (%.1f)", slimUDP.Gbps, vanUDP.Gbps)
	}
}

func TestCopyThreadsLiftCeiling(t *testing.T) {
	// The paper's future work: parallelizing the single delivery-copy
	// thread lifts MFLOW's residual bottleneck.
	one := quick(steering.MFlow, skb.TCP)
	one.KernelCores = 8
	one.MFlow.SplitCores = 3
	two := one
	two.AppCores = 2
	two.CopyThreads = 2
	r1 := Run(one)
	r2 := Run(two)
	if !(r2.Gbps > 1.3*r1.Gbps) {
		t.Errorf("2 copy threads (%.1f) should clearly beat 1 (%.1f)", r2.Gbps, r1.Gbps)
	}
	if r2.TCPOFOSegments != 0 {
		t.Errorf("parallel copy must not corrupt TCP ordering bookkeeping: ofo=%d", r2.TCPOFOSegments)
	}
}
