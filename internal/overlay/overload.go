package overlay

import (
	mflow "mflow/internal/core"
	"mflow/internal/fault"
	"mflow/internal/metrics"
	"mflow/internal/overload"
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// ovState is a run's overload-control manager (nil unless Scenario.Overload
// is enabled): the global skb memory account, the per-queue CoDel AQMs, the
// livelock polling-mode controller, the reassembler degradation hysteresis
// and the stall watchdog. Everything runs off a periodic sim-time tick, so
// managed runs stay fully deterministic.
type ovState struct {
	h    *host
	cfg  overload.Config // normalized
	acct *overload.Accountant

	// sojourn aggregates every AQM-observed queue sojourn across the
	// run's managed stages; aqms lists the per-stage control laws.
	sojourn *metrics.Histogram
	aqms    []*overload.CoDel

	// pressure is the memory account's current level; gated counts
	// enqueues the critical-pressure admission gate refused.
	pressure int
	gated    uint64

	// nicCores are the cores serving NIC descriptor rings; lastBusy holds
	// their BusyTotal at the previous tick for occupancy sampling.
	nicCores []*sim.Core
	lastBusy []sim.Duration
	polling  bool
	// pollEntered / pollExited count livelock-mitigation transitions.
	pollEntered uint64
	pollExited  uint64

	// flows are the managed split flows (degradation + watchdog targets).
	flows []*ovFlow

	resteers      uint64
	resteeredSKBs uint64
	collapses     uint64
	restores      uint64
	recoveryMax   sim.Duration
}

// ovFlow tracks one split flow's watchdog state: per-branch, when the
// branch's core was first seen making no forward progress (0 = healthy).
type ovFlow struct {
	fp         *flowPath
	stallSince []sim.Time
}

// newOvState builds the manager from an enabled config. The accountant is
// always created (with zero budgets it admits everything and reports zero
// pressure), so release hooks never need a nil check of their own.
func newOvState(h *host, cfg overload.Config) *ovState {
	cfg = cfg.Normalized()
	return &ovState{
		h:       h,
		cfg:     cfg,
		acct:    overload.NewAccountant(cfg),
		sojourn: metrics.NewHistogram(),
	}
}

// Handle implements sim.Handler: the manager is its own tick event.
func (ov *ovState) Handle(any, sim.Time) { ov.tick() }

// armOverload wires the manager into the fully built topology. Called after
// armCausal so the pressure gates chain onto any fault-injection gates and
// AQM/watchdog drops are visible to the probes.
func (h *host) armOverload() {
	if h.ov == nil {
		return
	}
	ov := h.ov
	cfg := ov.cfg

	// (1) Memory accounting: charge at NIC admission, reject over budget.
	if cfg.MemBytes > 0 || cfg.MemSKBs > 0 {
		h.nic.Admit = ov.acct.Admit
	}
	// (3) Livelock regime: interrupt-per-frame delivery.
	h.nic.PerFrameIRQ = cfg.IRQPerFrame

	// (2) AQM + pressure gate on every backlog/splitting queue. Ring-fed
	// stages are excluded — the descriptor ring is the NIC's own admission
	// point — but their cores are the occupancy-sampling set.
	seenCore := map[*sim.Core]bool{}
	for _, st := range h.stages {
		if st.ringFed {
			if c := st.core(); !seenCore[c] {
				seenCore[c] = true
				ov.nicCores = append(ov.nicCores, c)
			}
			continue
		}
		if cfg.CoDelTarget > 0 {
			st.aqm = &overload.CoDel{Target: cfg.CoDelTarget, Interval: cfg.CoDelInterval}
			st.aqmSojourn = ov.sojourn
			ov.aqms = append(ov.aqms, st.aqm)
		}
		prev := st.worker.Gate
		w := st.worker
		st.worker.Gate = func(s *skb.SKB) bool {
			if prev != nil && !prev(s) {
				return false
			}
			// Critical pressure closes the queue to standing-backlog growth
			// only: packets already in the stack keep draining toward the
			// socket (which is what releases their memory charge), exactly
			// like enqueue_to_backlog shedding input while delivery
			// continues. Refusing everything would deadlock — ring
			// occupancy alone can pin the account at its budget.
			if ov.pressure >= overload.PressureCritical && w.Len() >= ov.cfg.MinBudget {
				ov.gated++
				return false
			}
			return true
		}
	}
	ov.lastBusy = make([]sim.Duration, len(ov.nicCores))

	// (4)+(5) Degradation and watchdog need route truth: memoized routes,
	// tag-filed reassembly, and gap tolerance (a re-steered micro-flow's
	// stragglers deliver stale and the transport re-orders downstream).
	for _, fp := range h.flows {
		if fp.split != nil && fp.reasm != nil &&
			(cfg.ReasmBudget > 0 || cfg.WatchdogStall > 0) {
			fp.split.TrackRoutes = true
			fp.reasm.TagRouting = true
			fp.reasm.RouteOf = fp.split.Route
			fp.reasm.AllowGaps = true
			if fp.reasm.GapTimeout <= 0 {
				fp.reasm.GapTimeout = fault.DefaultGapTimeout
				fp.reasm.Sched = h.sched
			}
			if cfg.ReasmBudget > 0 {
				// The hard force-release frontier sits at 2× the collapse
				// threshold: degradation reacts first, the release is the
				// backstop.
				fp.reasm.Budget = 2 * cfg.ReasmBudget
			}
			ov.flows = append(ov.flows, &ovFlow{
				fp:         fp,
				stallSince: make([]sim.Time, len(fp.split.Targets)),
			})
		}
		if fp.tcpRx != nil && cfg.OFOBudget > 0 &&
			(fp.tcpRx.OFOCap == 0 || fp.tcpRx.OFOCap > cfg.OFOBudget) {
			fp.tcpRx.OFOCap = cfg.OFOBudget
		}
	}

	h.sched.AfterHandler(cfg.Tick, ov, nil)
}

// tick runs the manager's sampling pass and re-arms itself.
func (ov *ovState) tick() {
	now := ov.h.sched.Now()
	ov.sampleOccupancy(now)
	ov.applyPressure()
	ov.checkDegrade()
	ov.watchdog(now)
	ov.h.sched.AfterHandler(ov.cfg.Tick, ov, nil)
}

// sampleOccupancy measures each NIC-serving core's busy fraction over the
// last tick window and flips polling mode with wide hysteresis: mask IRQs
// when occupancy crosses the threshold, unmask below half of it. The
// measured fraction is newly *booked* exec time, which reads near zero
// while a core drains work booked during an earlier storm — so leaving
// polling mode additionally requires every sampled core's booked horizon
// to have caught up with the present, or a single IRQ burst's backlog
// would flap the mode every other tick while polls starve behind it.
func (ov *ovState) sampleOccupancy(now sim.Time) {
	if !ov.cfg.Polling || len(ov.nicCores) == 0 {
		return
	}
	window := float64(ov.cfg.Tick)
	maxOcc := 0.0
	backlogged := false
	for i, c := range ov.nicCores {
		busy := c.BusyTotal()
		if occ := float64(busy-ov.lastBusy[i]) / window; occ > maxOcc {
			maxOcc = occ
		}
		ov.lastBusy[i] = busy
		if c.FreeAt() > now {
			backlogged = true
		}
	}
	switch {
	case !ov.polling && maxOcc >= ov.cfg.SoftirqThreshold:
		ov.polling = true
		ov.pollEntered++
		ov.h.nic.MaskIRQs(true)
	case ov.polling && maxOcc < ov.cfg.SoftirqThreshold/2 && !backlogged:
		ov.polling = false
		ov.pollExited++
		ov.h.nic.MaskIRQs(false)
	}
}

// applyPressure shrinks every stage's NAPI budget as the memory account
// fills (tcp_mem shape): half budget at moderate pressure, the configured
// floor at critical (where the backlog admission gates also close).
func (ov *ovState) applyPressure() {
	p := ov.acct.Pressure()
	if p == ov.pressure {
		return
	}
	ov.pressure = p
	budget := sim.DefaultBudget
	switch p {
	case overload.PressureModerate:
		budget = sim.DefaultBudget / 2
	case overload.PressureCritical:
		budget = ov.cfg.MinBudget
	}
	for _, st := range ov.h.stages {
		st.worker.Budget = budget
	}
}

// checkDegrade applies the reassembler's graceful-degradation hysteresis:
// buffering over the budget collapses the flow's splitting degree to 1
// (new micro-flows pass through branch 0 ≈ RPS); falling below half the
// budget restores parallelism.
func (ov *ovState) checkDegrade() {
	if ov.cfg.ReasmBudget <= 0 {
		return
	}
	for _, of := range ov.flows {
		r, sp := of.fp.reasm, of.fp.split
		switch {
		case !sp.Collapsed && r.Buffered() > ov.cfg.ReasmBudget:
			sp.Collapsed = true
			ov.collapses++
		case sp.Collapsed && r.Buffered() < ov.cfg.ReasmBudget/2:
			sp.Collapsed = false
			ov.restores++
		}
	}
}

// watchdog detects splitting branches whose core is booked further than
// WatchdogStall into the future (fault-injected stalls, pathological
// queueing) and re-steers their pending micro-flows to the healthiest other
// branch, recording the stall→recovery interval.
func (ov *ovState) watchdog(now sim.Time) {
	if ov.cfg.WatchdogStall <= 0 {
		return
	}
	for _, of := range ov.flows {
		sp := of.fp.split
		for i, w := range sp.Targets {
			if w.Core.FreeAt().Sub(now) <= ov.cfg.WatchdogStall {
				if of.stallSince[i] != 0 {
					if rec := now.Sub(of.stallSince[i]); rec > ov.recoveryMax {
						ov.recoveryMax = rec
					}
					of.stallSince[i] = 0
				}
				continue
			}
			if of.stallSince[i] == 0 {
				of.stallSince[i] = now
			}
			if w.Len() == 0 {
				continue
			}
			to := ov.healthiest(sp, i)
			if to == i {
				continue
			}
			batch := w.StealQueue()
			if len(batch) == 0 {
				continue
			}
			ov.resteers++
			tgt := sp.Targets[to]
			for _, s := range batch {
				s.Branch = to
				if s.MicroFlow != 0 {
					// Future segments of the same micro-flow must follow,
					// and the reassembler must look for it on the new
					// branch.
					sp.Override(s.MicroFlow, to)
				}
				s.QueuedAt = now
				if !tgt.Enqueue(s) {
					if p := ov.h.prof; p != nil {
						p.Drop(s, now, "watchdog")
					}
					ov.h.retire(s)
					continue
				}
				ov.resteeredSKBs++
			}
		}
	}
}

// healthiest returns the branch (≠ avoid) whose core frees up soonest;
// ties break toward the lowest index, keeping the choice deterministic.
func (ov *ovState) healthiest(sp *mflow.Splitter, avoid int) int {
	best := avoid
	var bestFree sim.Time
	for i, w := range sp.Targets {
		if i == avoid {
			continue
		}
		if free := w.Core.FreeAt(); best == avoid || free < bestFree {
			best, bestFree = i, free
		}
	}
	return best
}

// aqmDrops sums the CoDel discards across all managed queues.
func (ov *ovState) aqmDrops() uint64 {
	var n uint64
	for _, a := range ov.aqms {
		n += a.Drops
	}
	return n
}
