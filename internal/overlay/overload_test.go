package overlay

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"mflow/internal/fault"
	"mflow/internal/harness"
	"mflow/internal/obs"
	"mflow/internal/overload"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// overloadScenario is one cell of the overload matrix: the chaos windows
// with an overload config attached.
func overloadScenario(sys steering.System, proto skb.Proto, cfg *overload.Config) Scenario {
	return Scenario{
		System: sys, Proto: proto, MsgSize: 65536,
		Warmup: 2 * sim.Millisecond, Measure: 6 * sim.Millisecond,
		Overload: cfg,
	}
}

// TestOverloadKeyAndFingerprintPure pins the probe-purity contract: a nil
// Overload config and a zero-valued one are both "disabled" — same scenario
// key (with no trace of the field) and bit-identical runs — while an enabled
// config must change the key so bench caching can't conflate the two.
func TestOverloadKeyAndFingerprintPure(t *testing.T) {
	base := overloadScenario(steering.MFlow, skb.TCP, nil)
	zeroed := overloadScenario(steering.MFlow, skb.TCP, &overload.Config{})
	if base.Key() != zeroed.Key() {
		t.Fatalf("zero overload config changed the scenario key:\n  nil:  %s\n  zero: %s",
			base.Key(), zeroed.Key())
	}
	if strings.Contains(base.Key(), "verload") {
		t.Fatalf("disabled scenario key leaks the overload field: %s", base.Key())
	}
	enabled := overloadScenario(steering.MFlow, skb.TCP, &overload.Config{CoDelTarget: 100 * sim.Microsecond})
	if enabled.Key() == base.Key() {
		t.Fatal("enabled overload config did not change the scenario key")
	}

	a := Run(overloadScenario(steering.MFlow, skb.TCP, nil)).Fingerprint()
	b := Run(overloadScenario(steering.MFlow, skb.TCP, &overload.Config{})).Fingerprint()
	if a != b {
		t.Fatalf("zero overload config perturbed the run:\n--- nil ---\n%s\n--- zero ---\n%s", a, b)
	}
}

// TestOverloadDeterminism runs every system × protocol × overload profile
// twice serially and once under the 8-worker harness pool: the manager's
// tick, AQM, polling-mode and watchdog decisions all run in sim-time, so
// managed runs must stay bit-identical like unmanaged ones.
func TestOverloadDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full system x profile matrix three times")
	}
	profiles := overload.Profiles()
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)

	type cell struct {
		sys   steering.System
		proto skb.Proto
		name  string
	}
	var cells []cell
	for _, sys := range steering.ExtendedSystems {
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			for _, name := range names {
				cells = append(cells, cell{sys, proto, name})
			}
		}
	}
	mk := func(c cell) Scenario {
		sc := overloadScenario(c.sys, c.proto, profiles[c.name])
		sc.Warmup, sc.Measure = sim.Millisecond, 2*sim.Millisecond
		sc.Obs = obs.New()
		return sc
	}

	first := make([]string, len(cells))
	for i, c := range cells {
		first[i] = Run(mk(c)).Fingerprint()
	}
	for i, c := range cells {
		if fp := Run(mk(c)).Fingerprint(); fp != first[i] {
			t.Errorf("%s/%s/%s: second serial run diverged:\n--- first ---\n%s\n--- second ---\n%s",
				c.sys, c.proto, c.name, first[i], fp)
		}
	}
	parallel := harness.Map(8, cells, func(_ int, c cell) string {
		return Run(mk(c)).Fingerprint()
	})
	for i, c := range cells {
		if parallel[i] != first[i] {
			t.Errorf("%s/%s/%s: harness run diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				c.sys, c.proto, c.name, first[i], parallel[i])
		}
	}
}

// TestOverloadChaosMatrix is the combined acceptance harness: bursty loss,
// core stalls and 2x offered load with the full pressure profile engaged.
// Every system × protocol must keep delivering, preserve TCP ordering, obey
// frame conservation, and keep the AQM's p99 backlog sojourn within an order
// of magnitude of the CoDel target.
func TestOverloadChaosMatrix(t *testing.T) {
	cfg := overload.Profiles()["pressure"]

	type cell struct {
		sys   steering.System
		proto skb.Proto
	}
	var cells []cell
	for _, sys := range steering.ExtendedSystems {
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			cells = append(cells, cell{sys, proto})
		}
	}
	results := harness.Map(8, cells, func(_ int, c cell) *Result {
		sc := overloadScenario(c.sys, c.proto, cfg)
		// 2x offered load relative to the defaults, plus bursty loss and
		// core stalls on top.
		sc.Window = 4096
		sc.UDPClients = 6
		plan := *fault.ChaosProfiles()["burst"]
		plan.StallProb = 0.01
		plan.StallMean = 20 * sim.Microsecond
		sc.Faults = &plan
		return Run(sc)
	})
	for i, c := range cells {
		r := results[i]
		t.Run(fmt.Sprintf("%s/%s", c.sys, c.proto), func(t *testing.T) {
			if r.DeliveredSegments == 0 {
				t.Fatal("flow stalled: nothing delivered under overload")
			}
			if c.proto == skb.TCP && r.DeliveredOutOfOrder != 0 {
				t.Fatalf("TCP delivered %d skbs out of order under overload", r.DeliveredOutOfOrder)
			}
			if r.OfferedFrames != r.AcceptedFrames+r.DropsRing+r.DropsAdmission {
				t.Fatalf("frame conservation violated: offered=%d != accepted=%d + ring=%d + admission=%d",
					r.OfferedFrames, r.AcceptedFrames, r.DropsRing, r.DropsAdmission)
			}
			if r.AQMSojournP99 > 10*int64(cfg.CoDelTarget) {
				t.Fatalf("AQM failed to control queueing: p99 sojourn %dns > 10x CoDel target %dns",
					r.AQMSojournP99, int64(cfg.CoDelTarget))
			}
		})
	}
}

// TestWatchdogResteersStalledBranch injects long core stalls into a split
// UDP flow and requires the watchdog to notice and re-steer pending
// micro-flows, with the recorded stall→recovery interval bounded in
// sim-time (well inside the run window).
func TestWatchdogResteersStalledBranch(t *testing.T) {
	sc := overloadScenario(steering.MFlow, skb.UDP, &overload.Config{
		WatchdogStall: 200 * sim.Microsecond,
	})
	sc.Faults = &fault.Plan{StallProb: 0.05, StallMean: 500 * sim.Microsecond}
	r := Run(sc)
	if r.WatchdogResteers == 0 {
		t.Fatal("watchdog never re-steered despite 500us core stalls")
	}
	if r.WatchdogResteeredSKBs == 0 {
		t.Fatal("watchdog re-steered but moved no skbs")
	}
	if r.DeliveredSegments == 0 {
		t.Fatal("flow stalled despite watchdog")
	}
	if max := int64(4 * sim.Millisecond); r.WatchdogRecoveryMaxNs > max {
		t.Fatalf("stall recovery took %dns, over the %dns bound", r.WatchdogRecoveryMaxNs, max)
	}
}

// TestLivelockMitigation reproduces the receive-livelock experiment: with
// interrupt-per-frame delivery and heavy offered load, masked-IRQ polling
// mode must deliver at least as much as the unmitigated run while taking
// far fewer interrupts.
func TestLivelockMitigation(t *testing.T) {
	mk := func(mitigated bool) *Result {
		sc := overloadScenario(steering.Vanilla, skb.UDP, overload.LivelockConfig(mitigated))
		sc.UDPClients = 8
		sc.Obs = obs.New()
		return Run(sc)
	}
	raw, polled := mk(false), mk(true)
	if polled.DeliveredBytes < raw.DeliveredBytes {
		t.Fatalf("polling mode delivered less than livelocked run: %d < %d bytes",
			polled.DeliveredBytes, raw.DeliveredBytes)
	}
	if ri, pi := raw.Obs["nic_irqs"].Value, polled.Obs["nic_irqs"].Value; pi >= ri {
		t.Fatalf("polling mode did not shed interrupts: %v IRQs vs %v unmitigated", pi, ri)
	}
}

// FuzzOverload varies the overload knobs and seed on a short split-flow run:
// whatever the budgets and thresholds, the run must not panic, must conserve
// frames, and must never deliver TCP data out of order.
func FuzzOverload(f *testing.F) {
	f.Add(int64(2<<20), int64(100), int64(512), int64(42), true)
	f.Add(int64(0), int64(0), int64(0), int64(1), false)
	f.Add(int64(4096), int64(1), int64(1), int64(7), true)
	f.Add(int64(-5), int64(-3), int64(-1), int64(3), false)
	f.Fuzz(func(t *testing.T, memBytes, targetUS, reasmBudget, seed int64, tcp bool) {
		if memBytes > 64<<20 || targetUS > 1e6 || reasmBudget > 1<<20 {
			t.Skip("budgets beyond any realistic configuration")
		}
		cfg := &overload.Config{
			WatchdogStall: 200 * sim.Microsecond,
		}
		if memBytes > 0 {
			cfg.MemBytes = int(memBytes)
			cfg.MemSKBs = 4096
		}
		if targetUS > 0 {
			cfg.CoDelTarget = sim.Duration(targetUS) * sim.Microsecond
		}
		if reasmBudget > 0 {
			cfg.ReasmBudget = int(reasmBudget)
			cfg.OFOBudget = int(reasmBudget)
		}
		proto := skb.UDP
		if tcp {
			proto = skb.TCP
		}
		sc := overloadScenario(steering.MFlow, proto, cfg)
		sc.Warmup, sc.Measure = sim.Millisecond/2, sim.Millisecond
		sc.Seed = uint64(seed)
		r := Run(sc)
		if r.OfferedFrames != r.AcceptedFrames+r.DropsRing+r.DropsAdmission {
			t.Fatalf("frame conservation violated: offered=%d != accepted=%d + ring=%d + admission=%d",
				r.OfferedFrames, r.AcceptedFrames, r.DropsRing, r.DropsAdmission)
		}
		if proto == skb.TCP && r.DeliveredOutOfOrder != 0 {
			t.Fatalf("TCP delivered %d skbs out of order", r.DeliveredOutOfOrder)
		}
	})
}
