package overlay

import (
	"testing"

	"mflow/internal/fault"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// withPoolDisabled runs f with SKB pooling switched off process-wide,
// restoring the previous state afterwards. Package tests run sequentially,
// so flipping the package variable is safe.
func withPoolDisabled(f func()) {
	prev := disablePool
	disablePool = true
	defer func() { disablePool = prev }()
	f()
}

// TestPoolingDoesNotChangeResults is the pool's correctness oracle: a pooled
// run and an allocation-per-skb run of the same scenario must produce
// bit-identical fingerprints — throughput, latency quantiles, CPU samples
// and the full obs snapshot. Pool.Get returns fully zeroed SKBs and nothing
// in the simulation observes pointer identity, so recycling must be
// invisible.
func TestPoolingDoesNotChangeResults(t *testing.T) {
	type cell struct {
		sys   steering.System
		proto skb.Proto
	}
	cells := []cell{
		{steering.Vanilla, skb.TCP},
		{steering.Vanilla, skb.UDP},
		{steering.MFlow, skb.TCP},
		{steering.MFlow, skb.UDP},
	}
	if !testing.Short() {
		cells = cells[:0]
		for _, sys := range steering.ExtendedSystems {
			for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
				cells = append(cells, cell{sys, proto})
			}
		}
	}
	for _, c := range cells {
		pooled := Run(determinismScenario(c.sys, c.proto)).Fingerprint()
		var unpooled string
		withPoolDisabled(func() {
			unpooled = Run(determinismScenario(c.sys, c.proto)).Fingerprint()
		})
		if pooled != unpooled {
			t.Errorf("%s/%s: pooled run diverged from unpooled:\n--- pooled ---\n%s\n--- unpooled ---\n%s",
				c.sys, c.proto, pooled, unpooled)
		}
	}
}

// Fault-injected paths recycle at extra points (duplicate discards, OFO
// pruning, corrupt-drop), so pin pooled/unpooled equality there too.
func TestPoolingDoesNotChangeFaultResults(t *testing.T) {
	plan := fault.ChaosProfiles()["random"]
	mk := func() Scenario {
		sc := determinismScenario(steering.MFlow, skb.TCP)
		sc.Faults = plan
		return sc
	}
	pooled := Run(mk()).Fingerprint()
	var unpooled string
	withPoolDisabled(func() { unpooled = Run(mk()).Fingerprint() })
	if pooled != unpooled {
		t.Errorf("fault-injected pooled run diverged from unpooled:\n--- pooled ---\n%s\n--- unpooled ---\n%s",
			pooled, unpooled)
	}
}

// TestPoolRecyclesDuringRun proves the pool is actually in the loop: over a
// full run, recycling must outpace fresh allocation (the steady state runs
// on recycled SKBs; Allocs only tracks the high-water mark of in-flight
// buffers), and recycled SKBs must be re-issued, not just parked.
func TestPoolRecyclesDuringRun(t *testing.T) {
	for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
		sc := determinismScenario(steering.MFlow, proto).withDefaults()
		h := buildHost(sc, Probes{})
		h.run()
		if h.pool == nil {
			t.Fatalf("%s: host built without a pool", proto)
		}
		if h.pool.Puts <= h.pool.Allocs {
			t.Errorf("%s: %d Puts vs %d fresh allocations — recycling is not carrying the steady state",
				proto, h.pool.Puts, h.pool.Allocs)
		}
		if reused := h.pool.Puts - uint64(h.pool.Free()); reused == 0 {
			t.Errorf("%s: recycled SKBs were never re-issued", proto)
		}
	}
}

// TestEndToEndAllocCeiling pins each system's whole-run allocation count
// under a generous ceiling (~5x the measured steady state), so an engine
// change that reintroduces per-event or per-skb allocation fails loudly
// rather than silently doubling GC pressure. Exact numbers live in
// BenchmarkEndToEnd; this is only a tripwire.
func TestEndToEndAllocCeiling(t *testing.T) {
	const ceiling = 25_000 // measured: 450–5100 allocs/run across the matrix
	for _, sys := range steering.Systems {
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			sc := Scenario{
				System: sys, Proto: proto, MsgSize: 65536,
				Warmup: 5e5, Measure: 1e6,
				Seed: 42,
			}
			avg := testing.AllocsPerRun(1, func() { Run(sc) })
			if avg > ceiling {
				t.Errorf("%s/%s: %.0f allocs per run, ceiling %d", sys, proto, avg, ceiling)
			}
		}
	}
}

// BenchmarkEndToEnd runs one short full-topology scenario per iteration for
// each steering system — the macro-level allocation and time budget the
// engine work targets (run with -benchmem; gated in CI via cmd/benchgate).
func BenchmarkEndToEnd(b *testing.B) {
	for _, sys := range steering.Systems {
		for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
			b.Run(sys.String()+"/"+proto.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sc := Scenario{
						System: sys, Proto: proto, MsgSize: 65536,
						Warmup: 5e5, Measure: 1e6, // 0.5ms + 1ms simulated
						Seed: 42,
					}
					if Run(sc) == nil {
						b.Fatal("nil result")
					}
				}
			})
		}
	}
}
