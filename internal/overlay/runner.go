package overlay

import (
	"math"

	"mflow/internal/metrics"
	"mflow/internal/netdev"
	"mflow/internal/sim"
)

// Run executes a scenario: build the topology, warm it up, measure, and
// report. Runs are deterministic for a fixed scenario (seed included).
func Run(sc Scenario) *Result {
	return RunProbed(sc, Probes{})
}

// RunProbed runs a scenario with causal probes attached. Probes observe
// every packet's critical path without perturbing the run: for any scenario,
// RunProbed(sc, pr) and Run(sc) produce identical measured results (the
// probed-vs-unprobed fingerprint test pins this).
func RunProbed(sc Scenario, pr Probes) *Result {
	sc = sc.withDefaults()
	h := buildHost(sc, pr)
	return h.run()
}

// snapshot captures the counters that measurement windows are diffed over.
type snapshot struct {
	bytes, msgs, packets uint64
	ring, sock, backlog  uint64
	ooo, oooSKB          uint64
	tcpOFO, switches     uint64
	deliveredOOO         uint64

	// Fault-injection and degradation counters.
	faults, faultDrops      uint64
	retx, rtoTO, fastRetx   uint64
	dupSegs, ofoPruned      uint64
	stale, holes, reasmErrs uint64

	// NIC admission accounting (always measured) and overload-control
	// counters (zero unless the scenario enables overload control).
	offered, accepted, admission uint64
	aqmDrops, ovGated            uint64
	pollEntered, pollExited      uint64
	resteers, resteeredSKBs      uint64
	collapses, restores          uint64
	budgetReleased               uint64
}

func (h *host) counters() snapshot {
	var s snapshot
	for _, fp := range h.flows {
		s.bytes += fp.sock.Bytes
		s.msgs += fp.sock.Msgs
		s.packets += fp.sock.Packets
		s.sock += fp.sock.Dropped()
		if fp.tcpRx != nil {
			s.tcpOFO += fp.tcpRx.OOOArrivals
			s.dupSegs += fp.tcpRx.DupSegments
			s.ofoPruned += fp.tcpRx.OFOPruned
			// TCP's in-order contract is measured at the socket: this
			// must stay zero even under fault injection.
			s.deliveredOOO += fp.sock.OOODelivered
		}
		if fp.tcpTx != nil {
			s.retx += fp.tcpTx.Retransmits
			s.rtoTO += fp.tcpTx.RTOTimeouts
			s.fastRetx += fp.tcpTx.FastRetransmits
		}
		if fp.reasm != nil {
			s.ooo += fp.reasm.OOOSegments
			s.oooSKB += fp.reasm.OOOSKBs
			s.switches += fp.reasm.Switches
			s.stale += fp.reasm.StaleSKBs
			s.holes += fp.reasm.HolesReleased
			s.budgetReleased += fp.reasm.BudgetReleased
			s.reasmErrs += fp.reasm.Errors
			if fp.udpRx != nil {
				s.deliveredOOO += fp.udpRx.OOOArrivals
			}
		} else if fp.udpRx != nil {
			s.ooo += fp.udpRx.OOOArrivals
			s.oooSKB += fp.udpRx.OOOArrivals
			s.deliveredOOO += fp.udpRx.OOOArrivals
		}
		s.reasmErrs += fp.arriveErrs
	}
	s.ring = h.nic.Dropped
	s.offered = h.nic.Offered
	s.accepted = h.nic.Received
	s.admission = h.nic.AdmissionDropped
	for _, st := range h.stages {
		s.backlog += st.worker.Dropped
	}
	if h.inj != nil {
		s.faults = h.inj.Total()
		s.faultDrops = h.inj.Drops()
	}
	if h.ov != nil {
		s.aqmDrops = h.ov.aqmDrops()
		s.ovGated = h.ov.gated
		s.pollEntered = h.ov.pollEntered
		s.pollExited = h.ov.pollExited
		s.resteers = h.ov.resteers
		s.resteeredSKBs = h.ov.resteeredSKBs
		s.collapses = h.ov.collapses
		s.restores = h.ov.restores
	}
	return s
}

func (h *host) run() *Result {
	sc := h.sc

	// Queue-depth sampling runs through warmup and measurement alike; the
	// warmup-boundary snapshot below separates the windows.
	sc.Obs.StartSampler(h.sched, 0)

	// Warmup: let windows fill and queues reach steady state.
	h.sched.RunUntil(sim.Time(sc.Warmup))
	busy0, tags0 := metrics.CaptureBusy(h.cores)
	snap0 := h.counters()
	h.syncObs()
	obs0 := sc.Obs.Snapshot()
	for _, fp := range h.flows {
		fp.sock.Latency.Reset()
	}
	if h.ov != nil {
		// The AQM sojourn distribution covers the measured window only,
		// like the latency histograms.
		h.ov.sojourn.Reset()
	}
	// Like the latency histograms, causal aggregates cover the measured
	// window only; in-flight attribution records survive the reset.
	h.prof.ResetStats()
	start := h.sched.Now()

	// Measurement window.
	end := sim.Time(sc.Warmup + sc.Measure)
	h.sched.RunUntil(end)
	snap1 := h.counters()
	cpu := metrics.SnapshotCPU(h.cores, busy0, tags0, start, end)

	for _, fp := range h.flows {
		for _, stop := range fp.stops {
			stop()
		}
	}

	res := &Result{
		Scenario: sc,
		Latency:  metrics.NewHistogram(),
		CPU:      cpu,
	}
	window := end.Sub(start).Seconds()
	res.DeliveredBytes = snap1.bytes - snap0.bytes
	res.DeliveredSegments = snap1.packets - snap0.packets
	res.Gbps = float64(res.DeliveredBytes) * 8 / window / 1e9
	res.MsgPerSec = float64(snap1.msgs-snap0.msgs) / window
	for _, fp := range h.flows {
		res.Latency.Merge(fp.sock.Latency)
	}
	res.OOOSegments = snap1.ooo - snap0.ooo
	res.OOOSKBs = snap1.oooSKB - snap0.oooSKB
	res.TCPOFOSegments = snap1.tcpOFO - snap0.tcpOFO
	res.ReassemblySwitches = snap1.switches - snap0.switches
	res.DeliveredOutOfOrder = snap1.deliveredOOO - snap0.deliveredOOO
	for _, fp := range h.flows {
		res.WireErrors += fp.sock.VerifyErrors
		if fp.vx != nil {
			res.WireErrors += fp.vx.Errors
		}
	}
	res.DropsRing = snap1.ring - snap0.ring
	res.DropsSock = snap1.sock - snap0.sock
	res.DropsBacklog = snap1.backlog - snap0.backlog
	res.FaultsInjected = snap1.faults - snap0.faults
	res.FaultDrops = snap1.faultDrops - snap0.faultDrops
	res.Retransmits = snap1.retx - snap0.retx
	res.RTOTimeouts = snap1.rtoTO - snap0.rtoTO
	res.FastRetransmits = snap1.fastRetx - snap0.fastRetx
	res.StaleReleased = snap1.stale - snap0.stale
	res.HolesReleased = snap1.holes - snap0.holes
	res.OFOPruned = snap1.ofoPruned - snap0.ofoPruned
	res.TCPDupSegments = snap1.dupSegs - snap0.dupSegs
	res.ReassemblyErrors = snap1.reasmErrs - snap0.reasmErrs
	res.OfferedFrames = snap1.offered - snap0.offered
	res.AcceptedFrames = snap1.accepted - snap0.accepted
	res.DropsAdmission = snap1.admission - snap0.admission
	res.DropsAQM = snap1.aqmDrops - snap0.aqmDrops
	res.OverloadGated = snap1.ovGated - snap0.ovGated
	res.PollModeEntered = snap1.pollEntered - snap0.pollEntered
	res.PollModeExited = snap1.pollExited - snap0.pollExited
	res.WatchdogResteers = snap1.resteers - snap0.resteers
	res.WatchdogResteeredSKBs = snap1.resteeredSKBs - snap0.resteeredSKBs
	res.DegradeCollapses = snap1.collapses - snap0.collapses
	res.DegradeRestores = snap1.restores - snap0.restores
	res.ReasmBudgetReleased = snap1.budgetReleased - snap0.budgetReleased
	if h.ov != nil {
		res.WatchdogRecoveryMaxNs = int64(h.ov.recoveryMax)
		res.MemPeakBytes = h.ov.acct.PeakBytes
		res.AQMSojournP99 = h.ov.sojourn.P99()
	}
	for _, fp := range h.flows {
		if res.ReassemblyErr == nil && fp.reasm != nil {
			res.ReassemblyErr = fp.reasm.FirstErr
		}
		if res.ReassemblyErr == nil {
			res.ReassemblyErr = fp.arriveErr
		}
	}

	// Kernel-core balance (Fig. 12's metric): mean/stddev of per-core
	// utilization percentages across the kernel pool.
	var kutil []float64
	for _, s := range cpu[sc.AppCores:] {
		kutil = append(kutil, s.Total*100)
	}
	_, res.KernelCPUStddev = metrics.MeanStddev(kutil)
	for _, u := range kutil {
		res.KernelCPUTotal += u
	}

	// Achieved GRO merge factor across engines.
	var segs, skbs uint64
	for _, g := range h.gros {
		segs += g.SegsIn
		skbs += g.SkbsOut
	}
	if skbs > 0 {
		res.GROFactor = float64(segs) / float64(skbs)
	} else {
		res.GROFactor = 1
	}
	if math.IsNaN(res.Gbps) {
		res.Gbps = 0
	}
	res.Breakdown = h.prof.Breakdown()
	if sc.Obs != nil {
		sc.Obs.StopSampler()
		h.syncObs()
		res.Obs = sc.Obs.Snapshot().Diff(obs0)
	}
	return res
}

// syncObs mirrors the externally accumulated monotonic stats — NIC, queue
// drops, per-device traffic — into the scenario's registry. It runs at both
// window boundaries so Snapshot.Diff yields correct per-window deltas.
func (h *host) syncObs() {
	reg := h.sc.Obs
	if reg == nil {
		return
	}
	reg.Counter("nic_received").Set(h.nic.Received)
	reg.Counter("nic_dropped").Set(h.nic.Dropped)
	reg.Counter("nic_irqs").Set(h.nic.IRQs)
	// The three NIC drop paths stay distinct: nic_dropped is descriptor-ring
	// overrun, nic_admission_dropped the overload memory budget's rejections
	// (before the ring), and aqm_dropped below the CoDel discards at backlog
	// and splitting queues. nic_offered counts every frame presented, so
	// offered == received + dropped + admission_dropped always holds.
	reg.Counter("nic_offered").Set(h.nic.Offered)
	reg.Counter("nic_admission_dropped").Set(h.nic.AdmissionDropped)

	// Per-stage backlog totals, aggregated across same-named stages
	// (parallel branches, multiple flows).
	enq := map[string]uint64{}
	drop := map[string]uint64{}
	polls := map[string]uint64{}
	seen := map[*netdev.Device]bool{}
	devSegs := map[string]uint64{}
	devSKBs := map[string]uint64{}
	devBytes := map[string]uint64{}
	for _, st := range h.stages {
		enq[st.name] += st.worker.Enqueued
		drop[st.name] += st.worker.Dropped
		polls[st.name] += st.worker.PollRounds
		for _, d := range append(append([]*netdev.Device{}, st.pre...), st.post...) {
			if seen[d] {
				continue
			}
			seen[d] = true
			devSegs[d.Name] += d.Segs
			devSKBs[d.Name] += d.SKBs
			devBytes[d.Name] += d.Bytes
		}
	}
	for name, v := range enq {
		reg.Counter("backlog_enqueued", "stage", name).Set(v)
	}
	for name, v := range drop {
		reg.Counter("backlog_dropped", "stage", name).Set(v)
	}
	for name, v := range polls {
		reg.Counter("poll_rounds", "stage", name).Set(v)
	}
	for name, v := range devSegs {
		reg.Counter("device_segs", "device", name).Set(v)
	}
	for name, v := range devSKBs {
		reg.Counter("device_skbs", "device", name).Set(v)
	}
	for name, v := range devBytes {
		reg.Counter("device_bytes", "device", name).Set(v)
	}

	var sockDrop, sockSegs uint64
	for _, fp := range h.flows {
		sockDrop += fp.sock.Dropped()
		sockSegs += fp.sock.Packets
	}
	reg.Counter("socket_dropped").Set(sockDrop)
	reg.Counter("socket_delivered_segs").Set(sockSegs)

	// Fault-injection and degradation counters (all zero without a fault
	// plan, so fault-free registries are unchanged in shape only when the
	// scenario never carried a plan — values stay zero either way).
	if h.inj != nil {
		s := h.counters()
		reg.Counter("faults_injected").Set(s.faults)
		reg.Counter("fault_drops").Set(s.faultDrops)
		reg.Counter("retransmits").Set(s.retx)
		reg.Counter("rto_timeouts").Set(s.rtoTO)
		reg.Counter("fast_retransmits").Set(s.fastRetx)
		reg.Counter("stale_released").Set(s.stale)
		reg.Counter("holes_released").Set(s.holes)
		reg.Counter("ofo_pruned").Set(s.ofoPruned)
		reg.Counter("tcp_dup_segments").Set(s.dupSegs)
		reg.Counter("reassembly_errors").Set(s.reasmErrs)
	}

	// Overload-control counters (see Result's field docs for semantics).
	if ov := h.ov; ov != nil {
		s := h.counters()
		reg.Counter("aqm_dropped").Set(s.aqmDrops)
		reg.Counter("overload_gated").Set(s.ovGated)
		reg.Counter("poll_mode_entered").Set(s.pollEntered)
		reg.Counter("poll_mode_exited").Set(s.pollExited)
		reg.Counter("watchdog_resteers").Set(s.resteers)
		reg.Counter("watchdog_resteered_skbs").Set(s.resteeredSKBs)
		reg.Counter("degrade_collapses").Set(s.collapses)
		reg.Counter("degrade_restores").Set(s.restores)
		reg.Counter("reasm_budget_released").Set(s.budgetReleased)
		reg.Counter("mem_charged").Set(ov.acct.Charged)
		reg.Counter("mem_released").Set(ov.acct.Released)
	}
}
