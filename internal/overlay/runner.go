package overlay

import (
	"math"

	"mflow/internal/metrics"
	"mflow/internal/netdev"
	"mflow/internal/sim"
)

// Run executes a scenario: build the topology, warm it up, measure, and
// report. Runs are deterministic for a fixed scenario (seed included).
func Run(sc Scenario) *Result {
	return RunProbed(sc, Probes{})
}

// RunProbed runs a scenario with causal probes attached. Probes observe
// every packet's critical path without perturbing the run: for any scenario,
// RunProbed(sc, pr) and Run(sc) produce identical measured results (the
// probed-vs-unprobed fingerprint test pins this).
func RunProbed(sc Scenario, pr Probes) *Result {
	sc = sc.withDefaults()
	if sc.Fabric.Enabled() {
		return runFabric(sc, pr)
	}
	h := buildHost(sc, pr)
	return runHosts(sc, h.sched, []*host{h}, nil)
}

// snapshot captures the counters that measurement windows are diffed over.
type snapshot struct {
	bytes, msgs, packets uint64
	ring, sock, backlog  uint64
	ooo, oooSKB          uint64
	tcpOFO, switches     uint64
	deliveredOOO         uint64

	// Fault-injection and degradation counters.
	faults, faultDrops      uint64
	retx, rtoTO, fastRetx   uint64
	dupSegs, ofoPruned      uint64
	stale, holes, reasmErrs uint64

	// NIC admission accounting (always measured) and overload-control
	// counters (zero unless the scenario enables overload control).
	offered, accepted, admission uint64
	aqmDrops, ovGated            uint64
	pollEntered, pollExited      uint64
	resteers, resteeredSKBs      uint64
	collapses, restores          uint64
	budgetReleased               uint64

	// Fabric underlay counters (zero on single-host runs).
	uSent, uDelivered, uDrops, uCopies uint64
}

// add accumulates another host's counters into s (fabric runs sum their
// per-host snapshots before diffing windows).
func (s *snapshot) add(o snapshot) {
	s.bytes += o.bytes
	s.msgs += o.msgs
	s.packets += o.packets
	s.ring += o.ring
	s.sock += o.sock
	s.backlog += o.backlog
	s.ooo += o.ooo
	s.oooSKB += o.oooSKB
	s.tcpOFO += o.tcpOFO
	s.switches += o.switches
	s.deliveredOOO += o.deliveredOOO
	s.faults += o.faults
	s.faultDrops += o.faultDrops
	s.retx += o.retx
	s.rtoTO += o.rtoTO
	s.fastRetx += o.fastRetx
	s.dupSegs += o.dupSegs
	s.ofoPruned += o.ofoPruned
	s.stale += o.stale
	s.holes += o.holes
	s.reasmErrs += o.reasmErrs
	s.offered += o.offered
	s.accepted += o.accepted
	s.admission += o.admission
	s.aqmDrops += o.aqmDrops
	s.ovGated += o.ovGated
	s.pollEntered += o.pollEntered
	s.pollExited += o.pollExited
	s.resteers += o.resteers
	s.resteeredSKBs += o.resteeredSKBs
	s.collapses += o.collapses
	s.restores += o.restores
	s.budgetReleased += o.budgetReleased
}

// countersAll sums every host's counters, folding in the underlay's when a
// fabric is present.
func countersAll(hosts []*host, fs *fabState) snapshot {
	var s snapshot
	for _, h := range hosts {
		s.add(h.counters())
	}
	if fs != nil {
		s.uSent = fs.un.Sent
		s.uDelivered = fs.un.Delivered
		s.uDrops = fs.un.Drops
		s.uCopies = fs.un.FloodCopies
	}
	return s
}

func (h *host) counters() snapshot {
	var s snapshot
	for _, fp := range h.flows {
		s.bytes += fp.sock.Bytes
		s.msgs += fp.sock.Msgs
		s.packets += fp.sock.Packets
		s.sock += fp.sock.Dropped()
		if fp.tcpRx != nil {
			s.tcpOFO += fp.tcpRx.OOOArrivals
			s.dupSegs += fp.tcpRx.DupSegments
			s.ofoPruned += fp.tcpRx.OFOPruned
			// TCP's in-order contract is measured at the socket: this
			// must stay zero even under fault injection.
			s.deliveredOOO += fp.sock.OOODelivered
		}
		if fp.tcpTx != nil {
			s.retx += fp.tcpTx.Retransmits
			s.rtoTO += fp.tcpTx.RTOTimeouts
			s.fastRetx += fp.tcpTx.FastRetransmits
		}
		if fp.reasm != nil {
			s.ooo += fp.reasm.OOOSegments
			s.oooSKB += fp.reasm.OOOSKBs
			s.switches += fp.reasm.Switches
			s.stale += fp.reasm.StaleSKBs
			s.holes += fp.reasm.HolesReleased
			s.budgetReleased += fp.reasm.BudgetReleased
			s.reasmErrs += fp.reasm.Errors
			if fp.udpRx != nil {
				s.deliveredOOO += fp.udpRx.OOOArrivals
			}
		} else if fp.udpRx != nil {
			s.ooo += fp.udpRx.OOOArrivals
			s.oooSKB += fp.udpRx.OOOArrivals
			s.deliveredOOO += fp.udpRx.OOOArrivals
		}
		s.reasmErrs += fp.arriveErrs
	}
	s.ring = h.nic.Dropped
	s.offered = h.nic.Offered
	s.accepted = h.nic.Received
	s.admission = h.nic.AdmissionDropped
	for _, st := range h.stages {
		s.backlog += st.worker.Dropped
	}
	if h.inj != nil {
		s.faults = h.inj.Total()
		s.faultDrops = h.inj.Drops()
	}
	if h.ov != nil {
		s.aqmDrops = h.ov.aqmDrops()
		s.ovGated = h.ov.gated
		s.pollEntered = h.ov.pollEntered
		s.pollExited = h.ov.pollExited
		s.resteers = h.ov.resteers
		s.resteeredSKBs = h.ov.resteeredSKBs
		s.collapses = h.ov.collapses
		s.restores = h.ov.restores
	}
	return s
}

// run measures a single prebuilt host (tests drive this directly after
// poking at the topology).
func (h *host) run() *Result {
	return runHosts(h.sc, h.sched, []*host{h}, nil)
}

// runHosts executes the measurement protocol over one or more fully built
// hosts sharing sched: warm up, snapshot, measure, diff. Single-host runs
// pass themselves as a one-element slice with a nil fabric; fabric runs
// pass every host plus the cross-host state. sc is the run-wide scenario
// (for fabric runs the global one, with the total flow count).
func runHosts(sc Scenario, sched *sim.Scheduler, hosts []*host, fs *fabState) *Result {
	// Queue-depth sampling runs through warmup and measurement alike; the
	// warmup-boundary snapshot below separates the windows.
	sc.Obs.StartSampler(sched, 0)

	var allCores []*sim.Core
	for _, h := range hosts {
		allCores = append(allCores, h.cores...)
	}

	// Warmup: let windows fill and queues reach steady state.
	sched.RunUntil(sim.Time(sc.Warmup))
	busy0, tags0 := metrics.CaptureBusy(allCores)
	snap0 := countersAll(hosts, fs)
	inFlight0 := 0
	if fs != nil {
		inFlight0 = fs.un.InFlight()
	}
	for _, h := range hosts {
		h.syncObs()
	}
	if fs != nil {
		fs.syncObs(sc)
	}
	obs0 := sc.Obs.Snapshot()
	for _, h := range hosts {
		for _, fp := range h.flows {
			fp.sock.Latency.Reset()
		}
		if h.ov != nil {
			// The AQM sojourn distribution covers the measured window
			// only, like the latency histograms.
			h.ov.sojourn.Reset()
		}
	}
	// Like the latency histograms, causal aggregates cover the measured
	// window only; in-flight attribution records survive the reset. The
	// profiler is shared run-wide, so one reset covers every host.
	hosts[0].prof.ResetStats()
	start := sched.Now()

	// Measurement window.
	end := sim.Time(sc.Warmup + sc.Measure)
	sched.RunUntil(end)
	snap1 := countersAll(hosts, fs)
	inFlight1 := 0
	if fs != nil {
		inFlight1 = fs.un.InFlight()
	}
	cpu := metrics.SnapshotCPU(allCores, busy0, tags0, start, end)

	for _, h := range hosts {
		for _, fp := range h.flows {
			for _, stop := range fp.stops {
				stop()
			}
		}
	}

	res := &Result{
		Scenario: sc,
		Latency:  metrics.NewHistogram(),
		CPU:      cpu,
		Sched:    sched.Stats(),
	}
	window := end.Sub(start).Seconds()
	res.DeliveredBytes = snap1.bytes - snap0.bytes
	res.DeliveredSegments = snap1.packets - snap0.packets
	res.Gbps = float64(res.DeliveredBytes) * 8 / window / 1e9
	res.MsgPerSec = float64(snap1.msgs-snap0.msgs) / window
	for _, h := range hosts {
		for _, fp := range h.flows {
			res.Latency.Merge(fp.sock.Latency)
		}
	}
	res.OOOSegments = snap1.ooo - snap0.ooo
	res.OOOSKBs = snap1.oooSKB - snap0.oooSKB
	res.TCPOFOSegments = snap1.tcpOFO - snap0.tcpOFO
	res.ReassemblySwitches = snap1.switches - snap0.switches
	res.DeliveredOutOfOrder = snap1.deliveredOOO - snap0.deliveredOOO
	for _, h := range hosts {
		for _, fp := range h.flows {
			res.WireErrors += fp.sock.VerifyErrors
			if fp.vx != nil {
				res.WireErrors += fp.vx.Errors
			}
		}
	}
	res.DropsRing = snap1.ring - snap0.ring
	res.DropsSock = snap1.sock - snap0.sock
	res.DropsBacklog = snap1.backlog - snap0.backlog
	res.FaultsInjected = snap1.faults - snap0.faults
	res.FaultDrops = snap1.faultDrops - snap0.faultDrops
	res.Retransmits = snap1.retx - snap0.retx
	res.RTOTimeouts = snap1.rtoTO - snap0.rtoTO
	res.FastRetransmits = snap1.fastRetx - snap0.fastRetx
	res.StaleReleased = snap1.stale - snap0.stale
	res.HolesReleased = snap1.holes - snap0.holes
	res.OFOPruned = snap1.ofoPruned - snap0.ofoPruned
	res.TCPDupSegments = snap1.dupSegs - snap0.dupSegs
	res.ReassemblyErrors = snap1.reasmErrs - snap0.reasmErrs
	res.OfferedFrames = snap1.offered - snap0.offered
	res.AcceptedFrames = snap1.accepted - snap0.accepted
	res.DropsAdmission = snap1.admission - snap0.admission
	res.DropsAQM = snap1.aqmDrops - snap0.aqmDrops
	res.OverloadGated = snap1.ovGated - snap0.ovGated
	res.PollModeEntered = snap1.pollEntered - snap0.pollEntered
	res.PollModeExited = snap1.pollExited - snap0.pollExited
	res.WatchdogResteers = snap1.resteers - snap0.resteers
	res.WatchdogResteeredSKBs = snap1.resteeredSKBs - snap0.resteeredSKBs
	res.DegradeCollapses = snap1.collapses - snap0.collapses
	res.DegradeRestores = snap1.restores - snap0.restores
	res.ReasmBudgetReleased = snap1.budgetReleased - snap0.budgetReleased
	for _, h := range hosts {
		if h.ov == nil {
			continue
		}
		if v := int64(h.ov.recoveryMax); v > res.WatchdogRecoveryMaxNs {
			res.WatchdogRecoveryMaxNs = v
		}
		res.MemPeakBytes += h.ov.acct.PeakBytes
		if p := h.ov.sojourn.P99(); p > res.AQMSojournP99 {
			res.AQMSojournP99 = p
		}
	}
	for _, h := range hosts {
		for _, fp := range h.flows {
			if res.ReassemblyErr == nil && fp.reasm != nil {
				res.ReassemblyErr = fp.reasm.FirstErr
			}
			if res.ReassemblyErr == nil {
				res.ReassemblyErr = fp.arriveErr
			}
		}
	}
	if fs != nil {
		res.UnderlaySent = snap1.uSent - snap0.uSent
		res.UnderlayDelivered = snap1.uDelivered - snap0.uDelivered
		res.UnderlayDrops = snap1.uDrops - snap0.uDrops
		res.UnderlayFloodCopies = snap1.uCopies - snap0.uCopies
		res.UnderlayInFlightStart = inFlight0
		res.UnderlayInFlightEnd = inFlight1
		// FDB counters are run totals, not window deltas: flood-then-learn
		// plays out during warmup and would vanish from a delta.
		res.FDBFloods, res.FDBLearned, res.FDBAged = fs.fdbTotals()
	}

	// Kernel-core balance (Fig. 12's metric): mean/stddev of per-core
	// utilization percentages across the kernel pool (every host's pool in
	// a fabric run — each host contributes its own kernel-core slice).
	perHost := sc.AppCores + sc.KernelCores
	var kutil []float64
	for i := range hosts {
		for _, s := range cpu[i*perHost+sc.AppCores : (i+1)*perHost] {
			kutil = append(kutil, s.Total*100)
		}
	}
	_, res.KernelCPUStddev = metrics.MeanStddev(kutil)
	for _, u := range kutil {
		res.KernelCPUTotal += u
	}

	// Achieved GRO merge factor across engines.
	var segs, skbs uint64
	for _, h := range hosts {
		for _, g := range h.gros {
			segs += g.SegsIn
			skbs += g.SkbsOut
		}
	}
	if skbs > 0 {
		res.GROFactor = float64(segs) / float64(skbs)
	} else {
		res.GROFactor = 1
	}
	if math.IsNaN(res.Gbps) {
		res.Gbps = 0
	}
	res.Breakdown = hosts[0].prof.Breakdown()
	if sc.Obs != nil {
		sc.Obs.StopSampler()
		for _, h := range hosts {
			h.syncObs()
		}
		if fs != nil {
			fs.syncObs(sc)
		}
		res.Obs = sc.Obs.Snapshot().Diff(obs0)
	}
	return res
}

// syncObs mirrors the externally accumulated monotonic stats — NIC, queue
// drops, per-device traffic — into the scenario's registry. It runs at both
// window boundaries so Snapshot.Diff yields correct per-window deltas.
func (h *host) syncObs() {
	reg := h.sc.Obs
	if reg == nil {
		return
	}
	// pfx is empty on a single host; fabric hosts prefix their Set-based
	// counters ("h0:nic_received") so N hosts sharing one registry don't
	// overwrite each other. Record-based histograms aggregate safely and
	// stay unprefixed.
	pfx := h.obsPfx
	reg.Counter(pfx + "nic_received").Set(h.nic.Received)
	reg.Counter(pfx + "nic_dropped").Set(h.nic.Dropped)
	reg.Counter(pfx + "nic_irqs").Set(h.nic.IRQs)
	// The three NIC drop paths stay distinct: nic_dropped is descriptor-ring
	// overrun, nic_admission_dropped the overload memory budget's rejections
	// (before the ring), and aqm_dropped below the CoDel discards at backlog
	// and splitting queues. nic_offered counts every frame presented, so
	// offered == received + dropped + admission_dropped always holds.
	reg.Counter(pfx + "nic_offered").Set(h.nic.Offered)
	reg.Counter(pfx + "nic_admission_dropped").Set(h.nic.AdmissionDropped)

	// Per-stage backlog totals, aggregated across same-named stages
	// (parallel branches, multiple flows).
	enq := map[string]uint64{}
	drop := map[string]uint64{}
	polls := map[string]uint64{}
	seen := map[*netdev.Device]bool{}
	devSegs := map[string]uint64{}
	devSKBs := map[string]uint64{}
	devBytes := map[string]uint64{}
	for _, st := range h.stages {
		enq[st.name] += st.worker.Enqueued
		drop[st.name] += st.worker.Dropped
		polls[st.name] += st.worker.PollRounds
		for _, d := range append(append([]*netdev.Device{}, st.pre...), st.post...) {
			if seen[d] {
				continue
			}
			seen[d] = true
			devSegs[d.Name] += d.Segs
			devSKBs[d.Name] += d.SKBs
			devBytes[d.Name] += d.Bytes
		}
	}
	for name, v := range enq {
		reg.Counter(pfx+"backlog_enqueued", "stage", name).Set(v)
	}
	for name, v := range drop {
		reg.Counter(pfx+"backlog_dropped", "stage", name).Set(v)
	}
	for name, v := range polls {
		reg.Counter(pfx+"poll_rounds", "stage", name).Set(v)
	}
	for name, v := range devSegs {
		reg.Counter(pfx+"device_segs", "device", name).Set(v)
	}
	for name, v := range devSKBs {
		reg.Counter(pfx+"device_skbs", "device", name).Set(v)
	}
	for name, v := range devBytes {
		reg.Counter(pfx+"device_bytes", "device", name).Set(v)
	}

	var sockDrop, sockSegs uint64
	for _, fp := range h.flows {
		sockDrop += fp.sock.Dropped()
		sockSegs += fp.sock.Packets
	}
	reg.Counter(pfx + "socket_dropped").Set(sockDrop)
	reg.Counter(pfx + "socket_delivered_segs").Set(sockSegs)

	// Fault-injection and degradation counters (all zero without a fault
	// plan, so fault-free registries are unchanged in shape only when the
	// scenario never carried a plan — values stay zero either way).
	if h.inj != nil {
		s := h.counters()
		reg.Counter(pfx + "faults_injected").Set(s.faults)
		reg.Counter(pfx + "fault_drops").Set(s.faultDrops)
		reg.Counter(pfx + "retransmits").Set(s.retx)
		reg.Counter(pfx + "rto_timeouts").Set(s.rtoTO)
		reg.Counter(pfx + "fast_retransmits").Set(s.fastRetx)
		reg.Counter(pfx + "stale_released").Set(s.stale)
		reg.Counter(pfx + "holes_released").Set(s.holes)
		reg.Counter(pfx + "ofo_pruned").Set(s.ofoPruned)
		reg.Counter(pfx + "tcp_dup_segments").Set(s.dupSegs)
		reg.Counter(pfx + "reassembly_errors").Set(s.reasmErrs)
	}

	// Overload-control counters (see Result's field docs for semantics).
	if ov := h.ov; ov != nil {
		s := h.counters()
		reg.Counter(pfx + "aqm_dropped").Set(s.aqmDrops)
		reg.Counter(pfx + "overload_gated").Set(s.ovGated)
		reg.Counter(pfx + "poll_mode_entered").Set(s.pollEntered)
		reg.Counter(pfx + "poll_mode_exited").Set(s.pollExited)
		reg.Counter(pfx + "watchdog_resteers").Set(s.resteers)
		reg.Counter(pfx + "watchdog_resteered_skbs").Set(s.resteeredSKBs)
		reg.Counter(pfx + "degrade_collapses").Set(s.collapses)
		reg.Counter(pfx + "degrade_restores").Set(s.restores)
		reg.Counter(pfx + "reasm_budget_released").Set(s.budgetReleased)
		reg.Counter(pfx + "mem_charged").Set(ov.acct.Charged)
		reg.Counter(pfx + "mem_released").Set(ov.acct.Released)
	}
}
