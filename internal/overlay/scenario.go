package overlay

import (
	"fmt"
	"io"
	"strings"

	"mflow/internal/causal"
	"mflow/internal/fabric"
	"mflow/internal/fault"
	"mflow/internal/metrics"
	"mflow/internal/obs"
	"mflow/internal/overload"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
	"mflow/internal/trace"
)

// MFlowConfig selects MFLOW's splitting topology for a scenario.
type MFlowConfig struct {
	// BatchSize is the micro-flow batch size in segments (default 256).
	BatchSize int
	// SplitCores is the number of parallel splitting cores (default 2).
	SplitCores int
	// FullPath enables IRQ-splitting full-path scaling: dispatch raw
	// driver requests before skb allocation and parallelize the whole
	// pipeline, merging before the TCP layer (the paper's TCP
	// configuration, Fig. 5 bottom / Fig. 8b left).
	FullPath bool
	// PipelinePairs further pipelines each parallel branch across two
	// cores — skb allocation on one, the remaining devices on another —
	// the exact Fig. 8b TCP layout. Only meaningful with FullPath.
	PipelinePairs bool
	// LateMerge merges micro-flows at the socket instead of right after
	// the heavy device (the paper's UDP configuration, and the default).
	LateMerge bool
	// EarlyMerge (ablation) merges right after the heavy VxLAN device
	// and runs the rest of the path on one core (overrides LateMerge).
	EarlyMerge bool
	// FlowSplitOnly is an ablation: use only the flow-splitting function
	// (post-skb, at netif_rx) even for TCP, without IRQ splitting — skb
	// allocation stays serialized on the first core.
	FlowSplitOnly bool
	// PerPacketReorder is an ablation: skip the batch reassembler and
	// let the kernel's per-packet out-of-order queue restore order.
	PerPacketReorder bool
	// NoReassembly is an ablation for UDP: deliver micro-flows as they
	// complete with no order restoration at all.
	NoReassembly bool
	// AutoDetect splits only flows the elephant detector promotes
	// (per-flow EWMA rate over ElephantBps); mice take the single-core
	// path through the same reassembler, so reclassification at
	// micro-flow boundaries never reorders packets. The paper splits
	// "any identified (elephant) flow" — this is the identification.
	AutoDetect bool
	// ElephantBps is the promotion threshold (default 1 Gbps).
	ElephantBps float64
}

// withDefaults normalizes an MFlowConfig for the given protocol: the
// paper's defaults are batch 256, two splitting cores, full-path scaling
// for TCP and single-device scaling with late merge for UDP (§V).
func (m MFlowConfig) withDefaults(proto skb.Proto) MFlowConfig {
	if m.BatchSize <= 0 {
		m.BatchSize = 256
	}
	if m.SplitCores <= 0 {
		m.SplitCores = 2
	}
	if proto == skb.TCP {
		if m.FlowSplitOnly {
			m.FullPath = false
			m.PipelinePairs = false
		} else {
			// TCP defaults to the paper's full-path scaling with
			// pipelined branch pairs (Fig. 8b) unless a specific
			// ablation topology was requested.
			if !m.FullPath && !m.PipelinePairs {
				m.FullPath = true
				m.PipelinePairs = true
			}
			if m.PipelinePairs {
				m.FullPath = true
			}
		}
		m.LateMerge = false
	} else {
		m.FullPath = false
		m.PipelinePairs = false
		if m.EarlyMerge {
			m.LateMerge = false
		} else if !m.PerPacketReorder && !m.NoReassembly {
			m.LateMerge = true
		}
	}
	return m
}

// Scenario describes one experiment run.
type Scenario struct {
	// System selects the packet-steering configuration under test.
	System steering.System
	// Proto and MsgSize describe the sockperf-like workload.
	Proto   skb.Proto
	MsgSize int
	// Flows is the number of concurrent flows (default 1).
	Flows int
	// UDPClients is the number of client machines stressing each UDP
	// flow (the paper uses three; default 3 for UDP).
	UDPClients int
	// Window is the TCP sender's outstanding-segment limit (default 512).
	Window int
	// KernelCores / AppCores size the receiving host's core pools
	// (defaults 6 and 1; the multi-flow experiments use 10 and 5).
	KernelCores int
	AppCores    int
	// MFlow configures MFLOW when System == steering.MFlow.
	MFlow MFlowConfig
	// Costs overrides the calibrated cost table (nil = DefaultCosts).
	Costs *CostModel
	// SharedQueue pins every overlay flow's first softirq to the same
	// core, modeling the default Docker/VxLAN pathology where the NIC
	// hashes only outer headers (one host pair ⇒ one RSS queue) — the
	// regime the application-level benchmarks run in. Ignored for the
	// native system, whose flows carry full RSS entropy.
	SharedQueue bool
	// Tracer, when set, records per-packet journeys through the pipeline
	// (subject to the tracer's own filters and cap).
	Tracer *trace.Tracer
	// Obs, when set, attaches the unified observability layer: per-stage
	// latency and inter-stage gap histograms for every packet, periodic
	// queue-depth sampling of the NIC rings / backlogs / socket queues,
	// and NIC/device counters. Nil disables it with zero hot-path cost.
	Obs *obs.Registry
	// CoreLog, when set, records every per-core execution interval for
	// Perfetto/Chrome trace export (obs.ExportChromeTrace).
	CoreLog *obs.CoreLog
	// Capture, when set together with WireMode, streams every frame
	// arriving at the NIC into a pcap capture written to this writer.
	Capture io.Writer
	// CopyThreads parallelizes the user-space delivery copy across this
	// many application cores (the paper's stated future work for the
	// residual core-0 bottleneck). Default 1 — the paper's system.
	CopyThreads int
	// WireMode attaches real wire bytes to every segment: senders build
	// genuine inner frames and VxLAN encapsulation; the tunnel device
	// decapsulates actual bytes; the socket verifies payload integrity
	// on delivery. Slower; used for end-to-end validation.
	WireMode bool
	// ModelTX replaces the aggregate client-cost model with an explicit
	// sender-side transmit pipeline (socket send path, GSO, container
	// egress chain, qdisc, NIC TX, wire serialization) — see txpath.
	ModelTX bool
	// NoTraffic builds the receive topology without the built-in
	// sockperf-like senders; application-level workloads (web serving,
	// data caching) drive the stack through a Stack instead.
	NoTraffic bool
	// Faults, when non-nil and enabled, injects deterministic faults
	// (lossy/bursty/corrupting wire, ring/backlog/socket admission drops,
	// kernel-core stalls) and arms the recovery machinery: the TCP sender
	// retransmits (adaptive RTO + fast retransmit), the reassembler
	// tolerates gaps and releases holes on a timer, and the TCP
	// out-of-order queue is bounded. A nil or all-zero plan wires nothing,
	// leaving the run bit-for-bit identical to a fault-free one.
	Faults *fault.Plan
	// Overload, when non-nil and enabled, wires the deterministic
	// overload-control subsystem (internal/overload): global skb memory
	// accounting at NIC admission, CoDel-style AQM on backlog and
	// splitting queues, receive-livelock mitigation (interrupt-per-frame
	// with polling-mode masking), reassembler graceful degradation, and
	// the stall watchdog that re-steers micro-flows off stalled cores.
	// A nil or zero config wires nothing, leaving the run bit-for-bit
	// identical to one without the subsystem (Key unchanged).
	Overload *overload.Config
	// Fabric, when non-nil with Hosts >= 2, runs the scenario on a
	// multi-host fabric: N simulated hosts share this run's DES clock,
	// each with its own NIC/cores/stack, and flows are placed across
	// hosts — a TX host's VxLAN encap output crosses the underlay wire
	// model (per-link propagation latency, bandwidth serialization,
	// bounded tail-drop queues) into the RX host's NIC ring. A nil or
	// zero config builds the classic single host, bit-for-bit identical
	// to a run minted before the fabric existed (Key unchanged).
	Fabric *fabric.Config
	// Seed makes the run deterministic.
	Seed uint64
	// Warmup precedes measurement; Measure is the measured window.
	Warmup  sim.Duration
	Measure sim.Duration
}

// withDefaults fills unset scenario fields.
func (sc Scenario) withDefaults() Scenario {
	if sc.MsgSize <= 0 {
		sc.MsgSize = 65536
	}
	if sc.Flows <= 0 {
		sc.Flows = 1
	}
	if sc.UDPClients <= 0 {
		if sc.Proto == skb.UDP {
			sc.UDPClients = 3
		} else {
			sc.UDPClients = 1
		}
	}
	if sc.Window <= 0 {
		sc.Window = 2048
	}
	if sc.KernelCores <= 0 {
		sc.KernelCores = 6
	}
	if sc.AppCores <= 0 {
		sc.AppCores = 1
	}
	if sc.Costs == nil {
		sc.Costs = DefaultCosts()
	}
	if sc.Seed == 0 {
		sc.Seed = 42
	}
	if sc.Warmup <= 0 {
		sc.Warmup = 4 * sim.Millisecond
	}
	if sc.Measure <= 0 {
		sc.Measure = 24 * sim.Millisecond
	}
	sc.MFlow = sc.MFlow.withDefaults(sc.Proto)
	return sc
}

// Key renders a stable identity for the scenario's measured
// configuration: every field that can change a run's outcome, by value
// (Costs and Faults dereferenced, so two scenarios built from separate
// but equal cost tables share a key across processes), with the pure
// observability attachments — Obs, Tracer, CoreLog, Capture — excluded:
// attaching a fresh registry must not change a scenario's identity.
// Two scenarios with equal keys produce identical Results; the bench
// cache and the BENCH_*.json baseline comparison both key on it.
func (sc Scenario) Key() string {
	costs := ""
	if sc.Costs != nil {
		costs = fmt.Sprintf("%+v", *sc.Costs)
	}
	faults := ""
	if sc.Faults != nil {
		f := *sc.Faults
		if f.Wire.Burst != nil {
			burst := *f.Wire.Burst
			f.Wire.Burst = nil
			faults = fmt.Sprintf("%+v burst=%+v", f, burst)
		} else {
			faults = fmt.Sprintf("%+v", f)
		}
	}
	ov := ""
	if sc.Overload.Enabled() {
		ov = fmt.Sprintf("%+v", *sc.Overload)
	}
	fab := ""
	if sc.Fabric.Enabled() {
		fab = fmt.Sprintf("%+v", *sc.Fabric)
	}
	sc.Costs = nil
	sc.Faults = nil
	sc.Obs = nil
	sc.Tracer = nil
	sc.CoreLog = nil
	sc.Capture = nil
	sc.Overload = nil
	sc.Fabric = nil
	key := fmt.Sprintf("%+v|costs={%s}|faults={%s}", sc, costs, faults)
	// Strip the nil Overload and Fabric fields from the rendering so every
	// key minted before those subsystems existed stays byte-identical;
	// enabled configs append their own block (by value, like costs and
	// faults).
	key = strings.Replace(key, " Overload:<nil>", "", 1)
	key = strings.Replace(key, " Fabric:<nil>", "", 1)
	if ov != "" {
		key += fmt.Sprintf("|overload={%s}", ov)
	}
	if fab != "" {
		key += fmt.Sprintf("|fabric={%s}", fab)
	}
	return key
}

// Name renders a compact scenario identifier.
func (sc Scenario) Name() string {
	return fmt.Sprintf("%s/%s/%s/flows=%d", sc.System, sc.Proto, sizeLabel(sc.MsgSize), sc.Flows)
}

func sizeLabel(n int) string {
	switch {
	case n >= 1024 && n%1024 == 0:
		return fmt.Sprintf("%dKB", n/1024)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Probes carries a run's optional causal-attribution instrumentation
// (RunProbed). It is deliberately not part of Scenario: a scenario's
// identity (Key) and measured results must not depend on whether anyone was
// watching, so probes ride alongside the scenario rather than inside it.
type Probes struct {
	// Causal, when set, receives every packet's critical-path attribution:
	// per-(kind, stage) latency breakdowns, tail exemplars, conservation
	// checking.
	Causal *causal.Profiler
	// Flight, when set, keeps per-core rings of recent executions and
	// snapshots them deterministically on anomaly triggers (drops, RTOs,
	// reassembly gap-timeouts, wire corruption).
	Flight *causal.FlightRecorder
}

// Result is the measured outcome of one scenario run.
type Result struct {
	Scenario Scenario

	// Gbps is delivered application goodput over the measured window;
	// MsgPerSec the message completion rate.
	Gbps      float64
	MsgPerSec float64
	// Latency is the per-message delivery latency distribution (ns).
	Latency *metrics.Histogram

	// CPU is the per-core utilization over the measured window, with
	// per-softirq breakdown; KernelCPUStddev is the stddev (in
	// percentage points) of utilization across kernel cores (Fig. 12's
	// balance metric); KernelCPUTotal sums kernel-core utilization.
	CPU             []metrics.CPUSample
	KernelCPUStddev float64
	KernelCPUTotal  float64

	// OOOSegments / OOOSKBs count out-of-order arrivals at MFLOW's merge
	// points (in wire segments and in delivery units — post-GRO skbs —
	// respectively; Fig. 7 reports the latter, the number of deliveries
	// the kernel would otherwise have had to reorder).
	// TCPOFOSegments counts skbs parked in the kernel TCP out-of-order
	// queue; ReassemblySwitches counts micro-flow rotations.
	OOOSegments        uint64
	OOOSKBs            uint64
	TCPOFOSegments     uint64
	ReassemblySwitches uint64
	// DeliveredOutOfOrder counts datagrams/segments reaching the
	// application out of order after whatever order restoration the
	// topology does (near-zero for MFLOW's UDP reassembler). For TCP it
	// is measured at the socket and must stay zero — even under fault
	// injection, where the receiver re-orders retransmissions.
	DeliveredOutOfOrder uint64

	// DropsRing / DropsSock / DropsBacklog count losses at the NIC ring,
	// socket receive queue and intermediate backlog queues.
	DropsRing    uint64
	DropsSock    uint64
	DropsBacklog uint64

	// WireErrors counts wire-mode integrity failures (decap errors plus
	// socket payload-verification failures); zero in a correct run
	// without fault injection (corruption faults surface here).
	WireErrors uint64

	// Fault-injection and degradation counters, all diffed over the
	// measured window and zero unless Scenario.Faults is enabled.
	// FaultsInjected counts every injector decision that took effect
	// (drops, duplications, corruptions); FaultDrops only the losses.
	FaultsInjected uint64
	FaultDrops     uint64
	// Retransmits counts resent TCP segments; RTOTimeouts timer-driven
	// recoveries; FastRetransmits triple-dup-ACK recoveries.
	Retransmits     uint64
	RTOTimeouts     uint64
	FastRetransmits uint64
	// StaleReleased counts skbs the reassembler delivered behind its
	// merging counter (late retransmissions); HolesReleased counts
	// gap-timeout force-releases; OFOPruned counts skbs evicted from the
	// bounded TCP out-of-order queue; TCPDupSegments counts duplicate
	// segments the TCP receiver discarded.
	StaleReleased  uint64
	HolesReleased  uint64
	OFOPruned      uint64
	TCPDupSegments uint64
	// ReassemblyErrors counts contiguity violations the reassembler
	// recorded instead of panicking; ReassemblyErr keeps the first one.
	ReassemblyErrors uint64
	ReassemblyErr    error
	// DeliveredBytes / DeliveredSegments over the measured window.
	DeliveredBytes    uint64
	DeliveredSegments uint64

	// Sched is the run's scheduler self-accounting (whole run, warmup
	// included): how much heap traffic run coalescing and the inline slot
	// saved. Telemetry only — never fingerprinted or serialized into
	// benchmark artifacts.
	Sched sim.SchedStats
	// GROFactor is the achieved merge factor.
	GROFactor float64

	// NIC admission accounting (always measured): OfferedFrames counts
	// every frame presented to the NIC over the window, AcceptedFrames
	// those a descriptor ring accepted, and DropsAdmission those the
	// overload memory budget rejected before the ring. Conservation holds:
	// OfferedFrames == AcceptedFrames + DropsRing + DropsAdmission.
	OfferedFrames  uint64
	AcceptedFrames uint64
	DropsAdmission uint64

	// Overload-control counters, all zero unless Scenario.Overload is
	// enabled. DropsAQM counts CoDel discards across backlog and splitting
	// queues (distinct from tail-drop DropsBacklog); OverloadGated counts
	// enqueues refused by the critical-pressure admission gate.
	DropsAQM      uint64
	OverloadGated uint64
	// PollModeEntered / PollModeExited count livelock-mitigation
	// transitions (IRQs masked / unmasked).
	PollModeEntered uint64
	PollModeExited  uint64
	// WatchdogResteers counts stalled-branch rescues; WatchdogResteeredSKBs
	// the skbs moved; WatchdogRecoveryMaxNs the longest observed stall
	// detection→recovery interval in sim-ns.
	WatchdogResteers      uint64
	WatchdogResteeredSKBs uint64
	WatchdogRecoveryMaxNs int64
	// DegradeCollapses / DegradeRestores count splitting-degree collapses
	// to 1 (≈ RPS) and parallelism restorations; ReasmBudgetReleased the
	// skbs the reassembler force-released over its memory budget.
	DegradeCollapses    uint64
	DegradeRestores     uint64
	ReasmBudgetReleased uint64
	// MemPeakBytes is the skb memory account's high-water mark;
	// AQMSojournP99 the p99 queue sojourn (ns) the AQM observed over the
	// measured window.
	MemPeakBytes  int
	AQMSojournP99 int64

	// Fabric counters, all zero unless Scenario.Fabric is enabled.
	// UnderlaySent counts frames put on the underlay toward their owner
	// host over the measured window; UnderlayDelivered those handed to a
	// remote NIC chain; UnderlayDrops tail drops at link queues.
	// Conservation holds across window boundaries:
	// UnderlaySent + UnderlayInFlightStart ==
	//     UnderlayDelivered + UnderlayDrops + UnderlayInFlightEnd.
	UnderlaySent      uint64
	UnderlayDelivered uint64
	UnderlayDrops     uint64
	// UnderlayFloodCopies counts head-end-replication copies serialized
	// for non-owner peers while a destination MAC was unlearned.
	UnderlayFloodCopies uint64
	// UnderlayInFlightStart/End are the frames inside the underlay at the
	// measurement window's boundaries (absolute gauges, not diffs).
	UnderlayInFlightStart int
	UnderlayInFlightEnd   int
	// FDBFloods / FDBLearned / FDBAged count cross-host bridge FDB
	// activity over the whole run (totals, not window deltas — the
	// flood-then-learn transient plays out during warmup): frames flooded
	// for an unknown (or aged) destination, new entries learned, entries
	// expired by FDBMaxAge.
	FDBFloods  uint64
	FDBLearned uint64
	FDBAged    uint64

	// Breakdown is the measured-window causal latency decomposition,
	// aggregated per (segment kind, stage) across delivered packets. Nil
	// unless the run was probed (RunProbed with a causal.Profiler).
	Breakdown []causal.KindStat

	// Obs is the measured-window view of the scenario's registry (counter
	// values and histogram counts diffed over the window; gauges and
	// histogram quantiles cumulative). Nil unless Scenario.Obs was set.
	Obs obs.Snapshot
}

// String summarizes the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("%-28s %7.2f Gbps  p50=%s p99=%s",
		r.Scenario.Name(), r.Gbps,
		sim.Duration(r.Latency.Median()), sim.Duration(r.Latency.P99()))
}
