package overlay

import (
	"mflow/internal/packet"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
	"mflow/internal/traffic"
)

// Stack is a receive host without built-in traffic generators, used by
// application-level workloads (web serving, data caching): the application
// injects messages onto flows and is called back when they reach user
// space, with the full overlay receive pipeline (and the steering system
// under test) in between.
type Stack struct {
	sc   Scenario
	h    *host
	seqs []traffic.SeqAlloc
	msgs []uint64
}

// NewStack builds the receive topology of sc (Flows connections) with no
// senders attached.
func NewStack(sc Scenario) *Stack {
	sc.NoTraffic = true
	sc = sc.withDefaults()
	st := &Stack{sc: sc, h: buildHost(sc, Probes{})}
	st.seqs = make([]traffic.SeqAlloc, sc.Flows)
	st.msgs = make([]uint64, sc.Flows)
	return st
}

// Scenario returns the stack's normalized scenario.
func (st *Stack) Scenario() Scenario { return st.sc }

// Sched returns the simulation scheduler driving the stack.
func (st *Stack) Sched() *sim.Scheduler { return st.h.sched }

// AppCore returns the application core serving flow f (where server-side
// request processing should be charged).
func (st *Stack) AppCore(f int) *sim.Core { return st.h.acore(f) }

// OnMessage registers the delivery callback for flow f: it fires when a
// message injected with Send completes its trip through the stack to user
// space.
func (st *Stack) OnMessage(f int, fn func(msgID uint64, at sim.Time)) {
	st.h.flows[f].sock.OnMessage = func(id uint64, _ *skb.SKB, at sim.Time) { fn(id, at) }
}

// Send injects a size-byte message onto flow f at the current instant (plus
// the one-way wire delay), segmented like the flow's transport would. It
// returns the message ID that OnMessage will observe. The remote sender's
// CPU is not modeled here — application workloads account their own costs.
func (st *Stack) Send(f, size int) uint64 {
	sc := st.sc
	h := st.h
	fp := h.flows[f]
	msgID := st.msgs[f]
	st.msgs[f]++

	segPayload := traffic.MSS
	if sc.Proto == skb.UDP {
		segPayload = traffic.UDPFragPayload
	}
	nseg := (size + segPayload - 1) / segPayload
	if nseg < 1 {
		nseg = 1
	}
	seq := st.seqs[f].Next(nseg)
	now := h.sched.Now()
	remaining := size
	overlay := sc.System != steering.Native
	for i := 0; i < nseg; i++ {
		payload := remaining
		if payload > segPayload {
			payload = segPayload
		}
		remaining -= payload
		s := h.pool.Get()
		s.FlowID = fp.id
		s.Proto = sc.Proto
		s.Seq = seq + uint64(i)
		s.Segs = 1
		s.WireLen = payload + 52
		s.PayloadLen = payload
		s.MsgID = msgID
		s.MsgEnd = i == nseg-1
		s.SentAt = now
		if overlay {
			s.Encap = true
			s.WireLen += packet.OverlayOverhead
		}
		h.sched.AfterHandler(sc.Costs.NetDelay, h.nicH, s)
	}
	return msgID
}

// DeliveredBytes reports flow f's cumulative bytes delivered to user space.
func (st *Stack) DeliveredBytes(f int) uint64 { return st.h.flows[f].sock.Bytes }

// Cores exposes the host's app+kernel cores for utilization reporting.
func (st *Stack) Cores() []*sim.Core { return st.h.cores }
