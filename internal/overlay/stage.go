package overlay

import (
	"mflow/internal/causal"
	"mflow/internal/gro"
	"mflow/internal/metrics"
	"mflow/internal/netdev"
	"mflow/internal/overload"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/trace"
)

// stage is one softirq worker: a queue on a core that, per poll round,
// charges its pre-GRO devices per incoming skb, optionally coalesces with
// GRO, charges its post-GRO devices per resulting skb (applying their
// semantic actions, e.g. VxLAN decap), and hands each result downstream at
// its completion instant. A per-emission handoff cost models explicit
// pipeline transfers (FALCON) or steering (RPS).
type stage struct {
	name   string
	worker *sim.Worker[*skb.SKB]
	sched  *sim.Scheduler

	pre  []*netdev.Device
	gro  *gro.GRO
	post []*netdev.Device

	// each, if set, runs per incoming skb after the pre devices (used
	// for the split driver's completion-update batching).
	each func(*skb.SKB, *sim.Core)

	// handoff is charged on this stage's core per emitted skb.
	handoff sim.Duration

	// tracer records each emitted skb (nil = disabled).
	tracer *trace.Tracer

	// Observability instrumentation, attached when the scenario carries a
	// registry: latency accumulates stage_latency{stage} (time since NIC
	// arrival, weighted per wire segment) for every emitted skb; gap
	// records stage_gap{from,to} (queueing delay since the previous
	// stage's emission) at poll time. obsOn gates the skb bookkeeping so
	// unobserved runs pay nothing.
	latency *metrics.Histogram
	gap     func(from string, v int64)
	obsOn   bool

	out func(*skb.SKB, sim.Time)

	// outH schedules per-skb emissions through the scheduler's
	// closure-free path; the skb rides the event arg.
	outH stageOutH

	// pool recycles skbs this stage drops at its admission queue (nil =
	// no pooling). release, when overload control is wired, returns a
	// dropped skb's memory charge before the pool reuses it.
	pool    *skb.Pool
	release func(*skb.SKB)

	// aqm, when overload control configures the CoDel AQM, applies the
	// control law to each drained batch; aqmSojourn records every
	// measured queue sojourn (shared across the run's managed stages).
	aqm        *overload.CoDel
	aqmSojourn *metrics.Histogram

	// prof, when a run is probed, switches processing to the instrumented
	// twin of process(); nil costs one branch per poll round. ringFed
	// marks the stage whose queue is the NIC descriptor ring (its first
	// wait is ring-wait, not softirq queueing); onDrop observes admission
	// rejections (flight-recorder trigger).
	prof    *causal.Profiler
	ringFed bool
	onDrop  func(*skb.SKB)
}

// stageOutH hands an emitted skb downstream at its completion instant.
type stageOutH struct{ st *stage }

// Handle implements sim.Handler.
func (h stageOutH) Handle(arg any, now sim.Time) {
	h.st.out(arg.(*skb.SKB), now)
}

// newStage builds a stage on core. Cross-core feeders should leave wake as
// the backlog wake delay; the NIC overrides it for ring-fed stages.
func newStage(name string, coreC *sim.Core, sched *sim.Scheduler, cfg *CostModel, cap int, wake sim.Duration) *stage {
	st := &stage{name: name, sched: sched}
	st.worker = &sim.Worker[*skb.SKB]{
		Name:         "softirq",
		Core:         coreC,
		Sched:        sched,
		Budget:       sim.DefaultBudget,
		Cap:          cap,
		PollOverhead: cfg.PollOverhead,
		WakeDelay:    wake,
	}
	st.worker.ProcessBatch = st.process
	st.outH = stageOutH{st}
	return st
}

func (st *stage) core() *sim.Core { return st.worker.Core }

// retire returns a dropped skb to the pool, first releasing its overload
// memory charge when accounting is wired. Both hooks tolerate absence, so
// bare stages (tests) and unpooled runs work unchanged.
func (st *stage) retire(s *skb.SKB) {
	if st.release != nil {
		st.release(s)
	}
	st.pool.Put(s)
}

// aqmFilter applies the CoDel control law to a drained batch: each skb's
// queue sojourn (dequeue minus QueuedAt) is measured, skbs the law discards
// retire before any device work is charged, and survivors' sojourns are
// recorded (the histogram is the delivered path's queueing delay). Called
// identically at the top of process and processProfiled so the probed twin
// stays in sync.
func (st *stage) aqmFilter(batch []*skb.SKB) []*skb.SKB {
	now := st.sched.Now()
	kept := batch[:0]
	for _, s := range batch {
		var sojourn sim.Duration
		if s.QueuedAt > 0 {
			sojourn = now.Sub(s.QueuedAt)
		}
		if st.aqm.Drop(sojourn, now) {
			if p := st.prof; p != nil {
				p.Drop(s, now, st.name)
			}
			if st.onDrop != nil {
				st.onDrop(s)
			}
			st.retire(s)
			continue
		}
		st.aqmSojourn.Record(int64(sojourn))
		kept = append(kept, s)
	}
	return kept
}

func (st *stage) process(batch []*skb.SKB) {
	if st.prof != nil {
		st.processProfiled(batch)
		return
	}
	if st.aqm != nil {
		batch = st.aqmFilter(batch)
	}
	c := st.worker.Core
	if st.obsOn {
		now := st.sched.Now()
		for _, s := range batch {
			if s.LastStage != "" {
				st.gap(s.LastStage, int64(now.Sub(s.LastStageAt)))
			}
		}
	}
	for _, s := range batch {
		for _, d := range st.pre {
			c.Exec(d.CostOf(s), d.Name)
			d.Apply(s)
		}
		if st.each != nil {
			st.each(s, c)
		}
	}
	if st.gro != nil {
		batch = st.gro.Coalesce(batch)
	}
	// The emission loop chains the batch into one scheduler run: emission
	// instants are monotone within a poll round (the core executes FIFO),
	// so one ScheduleRun replaces a heap insert per skb. Mirrored in
	// processProfiled.
	var head, tail *skb.SKB
	var headAt sim.Time
	runN := 0
	for _, s := range batch {
		end := st.sched.Now()
		for _, d := range st.post {
			_, end = c.Exec(d.CostOf(s), d.Name)
			d.Apply(s)
		}
		if st.handoff > 0 {
			_, end = c.Exec(st.handoff, "handoff")
		}
		if len(st.post) == 0 && st.handoff == 0 {
			end = c.FreeAt()
		}
		st.tracer.Record(end, s.PktID, s.FlowID, s.Seq, s.Segs, st.name, c.ID)
		st.latency.RecordN(int64(end.Sub(s.ArrivedAt)), uint64(s.Segs))
		if st.obsOn {
			s.LastStage, s.LastStageAt = st.name, end
		}
		if tail == nil {
			head, headAt = s, end
		} else {
			tail.SetNextRun(s, end)
		}
		tail = s
		runN++
	}
	if runN > 0 {
		st.sched.ScheduleRun(st.outH, head, headAt, runN)
	}
}

// processProfiled is process() with critical-path marks at every wait/exec
// boundary. It is a separate body (rather than inline branches) so the
// disabled path pays exactly one nil check per poll round; any behavioural
// edit here must mirror process() — the probed-vs-unprobed fingerprint test
// pins the two in sync.
func (st *stage) processProfiled(batch []*skb.SKB) {
	if st.aqm != nil {
		batch = st.aqmFilter(batch)
	}
	c := st.worker.Core
	p := st.prof
	wd := st.worker.WakeDelay
	groStage := st.gro != nil
	if st.obsOn {
		now := st.sched.Now()
		for _, s := range batch {
			if s.LastStage != "" {
				st.gap(s.LastStage, int64(now.Sub(s.LastStageAt)))
			}
		}
	}
	for _, s := range batch {
		first := true
		for _, d := range st.pre {
			start, end := c.Exec(d.CostOf(s), d.Name)
			if first {
				first = false
				p.MarkWait(s, st.name, start, st.ringFed, groStage, wd)
			}
			p.Mark(s, causal.SegService, st.name, end)
			d.Apply(s)
		}
		if st.each != nil {
			st.each(s, c)
		}
		if !first {
			// Phase-1 work done; the skb now sits in the poll batch. On a
			// GRO stage the gap until phase 2 is the coalescing hold.
			p.NoteBatched(s)
		}
	}
	if st.gro != nil {
		batch = st.gro.Coalesce(batch)
	}
	// Emission-run chaining, kept in lockstep with process().
	var head, tail *skb.SKB
	var headAt sim.Time
	runN := 0
	for _, s := range batch {
		end := st.sched.Now()
		first := true
		for _, d := range st.post {
			var start sim.Time
			start, end = c.Exec(d.CostOf(s), d.Name)
			if first {
				first = false
				p.MarkWait(s, st.name, start, st.ringFed, groStage, wd)
			}
			p.Mark(s, causal.SegService, st.name, end)
			d.Apply(s)
		}
		if st.handoff > 0 {
			var start sim.Time
			start, end = c.Exec(st.handoff, "handoff")
			if first {
				first = false
				p.MarkWait(s, st.name, start, st.ringFed, groStage, wd)
			}
			p.Mark(s, causal.SegHandoff, st.name, end)
		}
		if len(st.post) == 0 && st.handoff == 0 {
			end = c.FreeAt()
			// No execution of its own in phase 2: everything up to the
			// emission instant is wait (queue/gro-hold/ring classified by
			// the same policy as a first exec would be).
			p.MarkWait(s, st.name, end, st.ringFed, groStage, wd)
		}
		st.tracer.Record(end, s.PktID, s.FlowID, s.Seq, s.Segs, st.name, c.ID)
		st.latency.RecordN(int64(end.Sub(s.ArrivedAt)), uint64(s.Segs))
		if st.obsOn {
			s.LastStage, s.LastStageAt = st.name, end
		}
		if tail == nil {
			head, headAt = s, end
		} else {
			tail.SetNextRun(s, end)
		}
		tail = s
		runN++
	}
	if runN > 0 {
		st.sched.ScheduleRun(st.outH, head, headAt, runN)
	}
}

// feed returns an enqueue function for wiring a previous stage's output
// into this stage. Skbs rejected at the queue (cap or gate) are dead — no
// retransmission below the socket layer — so they return to the pool here.
func (st *stage) feed() func(*skb.SKB, sim.Time) {
	return func(s *skb.SKB, _ sim.Time) {
		if p := st.prof; p != nil && st.worker.Idle() {
			p.NoteIdleWake(s)
		}
		s.QueuedAt = st.sched.Now()
		if !st.worker.Enqueue(s) {
			if p := st.prof; p != nil {
				p.Drop(s, st.sched.Now(), st.name)
			}
			if st.onDrop != nil {
				st.onDrop(s)
			}
			st.retire(s)
		}
	}
}
