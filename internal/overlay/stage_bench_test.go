package overlay

import (
	"testing"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

// BenchmarkStageEmitRun drives one pipeline stage end to end — enqueue,
// NAPI poll, per-skb device work, run-coalesced emission back to the pool —
// and pins the steady state at 0 allocs/op via the bench gate.
func BenchmarkStageEmitRun(b *testing.B) {
	sched := sim.NewScheduler(1)
	core := sim.NewCore(0, sched)
	st := newStage("bench", core, sched, DefaultCosts(), 0, 0)
	pool := &skb.Pool{}
	st.pool = pool
	st.out = func(s *skb.SKB, _ sim.Time) { pool.Put(s) }
	feed := st.feed()

	burst := func(base uint64) {
		for j := uint64(0); j < 64; j++ {
			s := pool.Get()
			s.FlowID = 1
			s.Proto = skb.TCP
			s.Seq = base + j
			s.Segs = 1
			s.WireLen = 1514
			s.PayloadLen = 1448
			feed(s, sched.Now())
		}
		sched.Run()
	}
	burst(0) // warm the pool, worker buffers and core tag map

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		burst(uint64(i+1) * 64)
	}
}
