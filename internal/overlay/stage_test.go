package overlay

import (
	"testing"

	"mflow/internal/gro"
	"mflow/internal/netdev"
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// Direct unit tests for the softirq stage engine (pre → GRO → post →
// handoff → emit), independent of full topologies.

func stageFixture(t *testing.T) (*stage, *sim.Scheduler, *sim.Core, *[]*skb.SKB) {
	t.Helper()
	sched := sim.NewScheduler(1)
	core := sim.NewCore(1, sched)
	cfg := DefaultCosts()
	cfg.PollOverhead = 0
	st := newStage("t", core, sched, cfg, 0, 0)
	var out []*skb.SKB
	st.out = func(s *skb.SKB, _ sim.Time) { out = append(out, s) }
	return st, sched, core, &out
}

func tcpSegs(n int) []*skb.SKB {
	segs := make([]*skb.SKB, n)
	for i := range segs {
		segs[i] = &skb.SKB{FlowID: 1, Proto: skb.TCP, Seq: uint64(i), Segs: 1, WireLen: 1500, PayloadLen: 1448}
	}
	return segs
}

func TestStageChargesPrePerSegmentPostPerSKB(t *testing.T) {
	st, sched, core, out := stageFixture(t)
	st.pre = []*netdev.Device{dev("pre", netdev.Cost{PerSeg: 100})}
	st.gro = gro.New()
	st.post = []*netdev.Device{dev("post", netdev.Cost{PerSKB: 1000})}
	sched.At(0, func() {
		for _, s := range tcpSegs(8) {
			st.worker.Enqueue(s)
		}
	})
	sched.Run()
	if len(*out) != 1 {
		t.Fatalf("GRO should merge the batch to one skb, got %d", len(*out))
	}
	// 8 segments * 100 (pre) + 1 merged skb * 1000 (post).
	if got := core.BusyTotal(); got != 1800 {
		t.Errorf("busy %v, want 1800", got)
	}
	by := core.BusyByTag()
	if by["pre"] != 800 || by["post"] != 1000 {
		t.Errorf("tags wrong: %v", by)
	}
}

func TestStageAppliesDeviceActions(t *testing.T) {
	st, sched, _, out := stageFixture(t)
	decapped := 0
	st.post = []*netdev.Device{{
		Name: "act", Cost: netdev.Cost{PerSKB: 10},
		Action: func(s *skb.SKB) { decapped++; s.Encap = false },
	}}
	s := tcpSegs(1)[0]
	s.Encap = true
	sched.At(0, func() { st.worker.Enqueue(s) })
	sched.Run()
	if decapped != 1 || (*out)[0].Encap {
		t.Error("device action not applied")
	}
}

func TestStageHandoffChargedPerEmission(t *testing.T) {
	st, sched, core, _ := stageFixture(t)
	st.handoff = 50
	sched.At(0, func() {
		for _, s := range tcpSegs(4) {
			st.worker.Enqueue(s)
		}
	})
	sched.Run()
	// No pre/post/gro: 4 emissions * 50 handoff.
	if got := core.BusyByTag()["handoff"]; got != 200 {
		t.Errorf("handoff charged %v, want 200", got)
	}
}

func TestStageEachHookRunsPerIncoming(t *testing.T) {
	st, sched, _, _ := stageFixture(t)
	st.gro = gro.New()
	n := 0
	st.each = func(*skb.SKB, *sim.Core) { n++ }
	sched.At(0, func() {
		for _, s := range tcpSegs(6) {
			st.worker.Enqueue(s)
		}
	})
	sched.Run()
	if n != 6 {
		t.Errorf("each ran %d times, want 6 (per incoming segment, pre-GRO)", n)
	}
}

func TestStageEmitsInOrderAcrossBatches(t *testing.T) {
	st, sched, _, out := stageFixture(t)
	st.worker.Budget = 3
	st.post = []*netdev.Device{dev("p", netdev.Cost{PerSKB: 10})}
	segs := tcpSegs(10)
	for i := range segs {
		segs[i].Proto = skb.UDP // prevent merging
	}
	sched.At(0, func() {
		for _, s := range segs {
			st.worker.Enqueue(s)
		}
	})
	sched.Run()
	if len(*out) != 10 {
		t.Fatalf("emitted %d", len(*out))
	}
	for i, s := range *out {
		if s.Seq != uint64(i) {
			t.Fatalf("emission order broken: %d at %d", s.Seq, i)
		}
	}
}
