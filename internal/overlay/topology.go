package overlay

import (
	"fmt"
	"os"

	"mflow/internal/causal"
	mflow "mflow/internal/core"
	"mflow/internal/fault"
	"mflow/internal/gro"
	"mflow/internal/netdev"
	"mflow/internal/nic"
	"mflow/internal/packet"
	"mflow/internal/pcap"
	"mflow/internal/proto"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
	"mflow/internal/traffic"
	"mflow/internal/txpath"
)

const sameCoreWake = 200 // softirq re-raise latency on the same core

// disablePool turns SKB pooling off process-wide. Tests flip it to prove
// pooled and unpooled runs fingerprint identically; the MFLOW_NOPOOL
// environment variable does the same for command-line A/B comparisons. It is
// deliberately not a Scenario field: scenario keys (and therefore run
// fingerprints) must not depend on an engine-internal toggle.
var disablePool = os.Getenv("MFLOW_NOPOOL") != ""

// udpBacklogCap bounds intermediate queues on UDP paths
// (netdev_max_backlog-style); TCP paths are window-limited instead.
const udpBacklogCap = 1000

// host is a fully wired receive-side machine plus its traffic sources.
type host struct {
	sc      Scenario
	sched   *sim.Scheduler
	cores   []*sim.Core // [0,AppCores) app, [AppCores,..) kernel
	clients []*sim.Core
	nic     *nic.NIC
	flows   []*flowPath
	stages  []*stage
	gros    []*gro.GRO
	capture *pcap.Writer
	inj     *fault.Injector // nil unless sc.Faults is enabled
	ov      *ovState        // nil unless sc.Overload is enabled

	// pool recycles the run's SKBs (nil when pooling is disabled). One
	// pool per host per run — never shared across Schedulers.
	pool *skb.Pool
	// prof / flight are the run's probes (both nil for unprobed runs; see
	// Probes). They observe the pipeline through plain func hooks and never
	// alter its behaviour.
	prof   *causal.Profiler
	flight *causal.FlightRecorder
	// ackFree recycles ackRelay events; nicH is the closure-free wire
	// delivery handler used by Stack.Send.
	ackFree []*ackRelay
	nicH    nicDeliverH

	// Fabric-mode fields; both zero for single-host runs. obsPfx prefixes
	// the host's Set-based registry names ("h0:nic_received") so N hosts
	// sharing one registry don't overwrite each other; ackExtra adds the
	// underlay's one-way latency to the abstract ACK return path of flows
	// this host sends cross-host.
	obsPfx   string
	ackExtra sim.Duration
}

// ackRelay carries one acknowledgement (cumulative or duplicate) across the
// lossless return path's wire delay. The relay itself is the event handler —
// the sequence number is a uint64 and would allocate if boxed into the event
// arg — and returns to a host-local freelist after firing.
type ackRelay struct {
	h   *host
	tx  *traffic.TCPSender
	end uint64
	dup bool
}

// Handle implements sim.Handler.
func (a *ackRelay) Handle(_ any, now sim.Time) {
	if a.dup {
		a.tx.DupAck(a.end)
	} else {
		a.tx.Ack(a.end, now)
	}
	a.h.putAck(a)
}

func (h *host) getAck() *ackRelay {
	if n := len(h.ackFree); n > 0 {
		a := h.ackFree[n-1]
		h.ackFree = h.ackFree[:n-1]
		return a
	}
	return &ackRelay{h: h}
}

func (h *host) putAck(a *ackRelay) {
	a.tx, a.end, a.dup = nil, 0, false
	h.ackFree = append(h.ackFree, a)
}

// nicDeliverH delivers a frame to the host's NIC after the one-way wire
// delay (Stack.Send's per-segment event), recycling frames a full ring
// rejects.
type nicDeliverH struct{ h *host }

// Handle implements sim.Handler.
func (d nicDeliverH) Handle(arg any, _ sim.Time) {
	s := arg.(*skb.SKB)
	if !d.h.nic.Deliver(s) {
		d.h.retire(s)
	}
}

// retire is the host's terminal recycle funnel: it releases any overload
// memory charge the skb still carries, then returns it to the pool. Both
// steps tolerate absence (no overload manager, no pool), so every terminal
// point — socket delivery, drops, GRO absorption — routes through it.
func (h *host) retire(s *skb.SKB) {
	if h.ov != nil {
		h.ov.acct.Release(s)
	}
	h.pool.Put(s)
}

// flowPath is one flow's receive pipeline endpoints and sources.
type flowPath struct {
	id     uint64
	sock   *proto.Socket
	tcpRx  *proto.TCPReceiver
	tcpTx  *traffic.TCPSender
	udpRx  *proto.UDPReceiver
	reasm  *mflow.Reassembler
	split  *mflow.Splitter
	detect *mflow.Detector
	vx     *netdev.VXLAN
	stops  []func()

	// arriveErrs records reassembler Arrive failures (missing micro-flow
	// stamps) instead of panicking mid-run; arriveErr keeps the first.
	arriveErrs uint64
	arriveErr  error
}

// recordArriveErr notes a reassembler admission error; the run degrades
// (the skb is not merged) rather than dying.
func (fp *flowPath) recordArriveErr(err error) {
	fp.arriveErrs++
	if fp.arriveErr == nil {
		fp.arriveErr = err
	}
}

// encapIngress models the sending host's VxLAN encapsulation: frames arrive
// at the receiver's pNIC already wrapped in outer headers.
type encapIngress struct{ inner traffic.Ingress }

// Deliver implements traffic.Ingress.
func (e encapIngress) Deliver(s *skb.SKB) bool {
	s.Encap = true
	s.WireLen += packet.OverlayOverhead * s.Segs
	return e.inner.Deliver(s)
}

// captureTap streams every wire frame entering the NIC into the host's
// pcap capture.
type captureTap struct {
	h     *host
	inner traffic.Ingress
}

// Deliver implements traffic.Ingress.
func (c *captureTap) Deliver(s *skb.SKB) bool {
	if s.Data != nil {
		// Capture errors only mean the sink failed; the simulation
		// proceeds regardless.
		_ = c.h.capture.WritePacket(c.h.sched.Now(), s.Data)
	}
	return c.inner.Deliver(s)
}

// arrivalSeq re-stamps each segment's sequence number with its NIC arrival
// order. Sequence numbers define the flow's in-order contract for splitting
// and reassembly; with several independent clients stressing one UDP flow,
// only arrival order is meaningful.
type arrivalSeq struct {
	n    *nic.NIC
	next uint64
}

// Deliver implements traffic.Ingress.
func (a *arrivalSeq) Deliver(s *skb.SKB) bool {
	s.Seq = a.next
	a.next += uint64(s.Segs)
	return a.n.Deliver(s)
}

func dev(name string, c netdev.Cost) *netdev.Device {
	return &netdev.Device{Name: name, Cost: c}
}

// baseFor returns flow f's IRQ/base kernel-core offset: RSS hashing in the
// normal regime (collisions included — with 10 flows on 10 cores some cores
// carry two flows while others idle, exactly like real hashing), core 0 in
// the shared-queue regime.
func (h *host) baseFor(f int, overlayPath bool) int {
	if h.sc.SharedQueue && overlayPath {
		return 0
	}
	if h.sc.Flows == 1 {
		return 0
	}
	return int(nic.Hash64(uint64(f)+0x9e37) % uint64(h.sc.KernelCores))
}

// kcore returns kernel core at offset i (mod pool size).
func (h *host) kcore(i int) *sim.Core {
	k := h.sc.KernelCores
	return h.cores[h.sc.AppCores+((i%k)+k)%k]
}

// acore returns the app core serving flow f.
func (h *host) acore(f int) *sim.Core {
	return h.cores[f%h.sc.AppCores]
}

func (h *host) newClientCore() *sim.Core {
	c := sim.NewCore(1000+len(h.clients), h.sched)
	h.clients = append(h.clients, c)
	return c
}

// newStageT builds a stage and attaches the scenario tracer and, when the
// scenario carries a registry, the per-stage latency/gap instrumentation.
// Stages sharing a name (parallel branches, the same stage across flows)
// share their histograms, so stage_latency{stage=X} aggregates all of X.
func (h *host) newStageT(name string, coreC *sim.Core, cap int, wake sim.Duration) *stage {
	st := newStage(name, coreC, h.sched, h.sc.Costs, cap, wake)
	st.pool = h.pool
	if h.ov != nil {
		st.release = h.ov.acct.Release
	}
	st.tracer = h.sc.Tracer
	if reg := h.sc.Obs; reg != nil {
		st.obsOn = true
		st.latency = reg.Histogram("stage_latency", "stage", name)
		st.gap = reg.GapTo(name)
	}
	if h.inj != nil && h.sc.Faults.BacklogDrop > 0 {
		// Backlog admission loss (netif_rx-style). The NIC-fed first
		// stage swaps this for the ring gate in buildFlow.
		st.worker.Gate = func(*skb.SKB) bool { return !h.inj.DropBacklog() }
	}
	return st
}

// hostOpts carries fabric-mode construction overrides; the zero value is
// the single-host default (private clock, private pool, private PktID
// sequence, unprefixed registry names).
type hostOpts struct {
	sched  *sim.Scheduler // non-nil: share an existing DES clock
	pool   *skb.Pool      // non-nil: share one SKB pool across hosts
	pktSeq *uint64        // non-nil: share one PktID sequence across NICs
	obsPfx string
}

// buildHost constructs the complete topology for a scenario, attaching any
// probes after the topology is fully wired.
func buildHost(sc Scenario, pr Probes) *host {
	h := newHostShell(sc, pr, hostOpts{})
	for f := 0; f < sc.Flows; f++ {
		h.buildFlow(f)
	}
	h.finish()
	return h
}

// newHostShell builds one host's cores, NIC and per-host subsystems —
// everything except the flows (built per flow index) and the final wiring
// pass (finish). Fabric runs call it once per host against a shared clock.
func newHostShell(sc Scenario, pr Probes, opt hostOpts) *host {
	sched := opt.sched
	if sched == nil {
		sched = sim.NewScheduler(sc.Seed)
	}
	h := &host{sc: sc, sched: sched, obsPfx: opt.obsPfx}
	h.prof, h.flight = pr.Causal, pr.Flight
	h.nicH = nicDeliverH{h}
	if opt.pool != nil {
		h.pool = opt.pool
	} else if !disablePool {
		h.pool = &skb.Pool{}
	}
	if sc.Faults.Enabled() {
		h.inj = fault.NewInjector(*sc.Faults, sc.Seed)
	}
	if sc.Overload.Enabled() {
		// Built before the flows so stage construction can wire the memory
		// account's release hook; the manager itself arms after armCausal.
		h.ov = newOvState(h, *sc.Overload)
	}
	cfg := sc.Costs
	total := sc.AppCores + sc.KernelCores
	h.cores = sim.NewCores(total, h.sched)
	for _, c := range h.cores[sc.AppCores:] {
		c.JitterAmp = cfg.JitterAmp
		c.InterferenceProb = cfg.InterferenceProb
		c.InterferenceMean = cfg.InterferenceMean
		if h.inj != nil {
			// Core-stall / IRQ-jitter faults ride the cores' existing
			// noise knobs: the stall probability adds to the calibrated
			// interference, and the stall mean widens it (a single
			// exponential process stands in for both sources).
			p := sc.Faults
			c.JitterAmp += p.IRQJitter
			c.InterferenceProb += p.StallProb
			if p.StallMean > c.InterferenceMean {
				c.InterferenceMean = p.StallMean
			}
		}
	}
	nicCfg := cfg.NIC
	nicCfg.Queues = sc.Flows
	h.nic = nic.New(nicCfg, h.sched)
	if opt.pktSeq != nil {
		h.nic.PktSeq = opt.pktSeq
	}
	if sc.Capture != nil && sc.WireMode {
		h.capture = pcap.NewWriter(sc.Capture)
	}

	if sc.CoreLog != nil {
		sc.CoreLog.Attach(h.cores...)
	}
	return h
}

// finish runs the post-flow wiring pass: recycle points, probes, overload
// arming, and queue-depth registration. It must run after every flow the
// host serves (or sends) has been built.
func (h *host) finish() {
	sc := h.sc
	// Wire the pool's recycle points now that the full topology exists:
	// final user-space delivery, TCP duplicate/prune discards, GRO-absorbed
	// segments, and splitting-queue rejections all return their skbs here.
	// With overload control wired the hooks are needed even without a pool
	// (every terminal point must release its memory charge), so they route
	// through the retire funnel.
	if h.pool != nil || h.ov != nil {
		put := h.retire
		for _, g := range h.gros {
			g.Recycle = put
		}
		for _, fp := range h.flows {
			fp.sock.Recycle = put
			if fp.tcpRx != nil {
				fp.tcpRx.Recycle = put
			}
			if fp.split != nil {
				fp.split.Recycle = put
			}
		}
	}

	// Causal probes wire last: their hooks chain after the recycle points
	// above (the profiler must close a record before the pool reuses the
	// skb) and after each flow's tracing tap. The overload manager arms
	// after them so its admission gates chain onto any fault gates and its
	// drops are visible to the probes.
	h.armCausal()
	h.armOverload()

	// Register queue-depth probes once the full topology exists: the NIC
	// descriptor rings, every softirq backlog (keyed by stage name and a
	// build-order index so parallel branches stay distinguishable), and
	// each flow's socket receive queue.
	if sc.Obs != nil {
		for q := 0; q < h.nic.Config().Queues; q++ {
			q := q
			sc.Obs.SampleQueue(fmt.Sprintf("%snic_ring%d", h.obsPfx, q), func() int { return h.nic.RingDepth(q) })
		}
		for i, st := range h.stages {
			sc.Obs.SampleQueue(fmt.Sprintf("%sbacklog:%s#%d", h.obsPfx, st.name, i), st.worker.Len)
		}
		for i, fp := range h.flows {
			sc.Obs.SampleQueue(fmt.Sprintf("%ssocket:flow%d", h.obsPfx, i+1), fp.sock.Worker().Len)
		}
	}
}

// buildFlow wires flow f's receive pipeline and its sender(s) on this one
// host — the classic single-host path.
func (h *host) buildFlow(f int) {
	fp := h.buildFlowRx(f, uint64(f+1))
	if h.sc.NoTraffic {
		return
	}
	h.buildFlowTx(f, fp, nil)
}

// buildFlowRx wires a flow's receive pipeline. f is the host-local flow
// index (queue pinning, core placement); id is the flow's run-wide wire
// identity — they coincide on a single host, while fabric hosts receive an
// arbitrary subset of the global flow space.
func (h *host) buildFlowRx(f int, id uint64) *flowPath {
	sc := h.sc
	cfg := sc.Costs
	fp := &flowPath{id: id}
	h.flows = append(h.flows, fp)
	h.nic.PinFlow(fp.id, f)

	// Socket: the app receive thread. MFLOW's TCP full-path config merges
	// before the TCP layer and runs TCP processing in the delivery thread
	// (tcp_recvmsg), so its socket charges TCP + copy.
	copyCost := cfg.Copy
	sockCap := 0
	if sc.Proto == skb.UDP {
		sockCap = udpBacklogCap * 2
	}
	if sc.System == steering.MFlow && sc.Proto == skb.TCP {
		copyCost = cfg.Copy.Add(cfg.TCPRx)
	}
	fp.sock = proto.NewSocket(sc.Proto, h.acore(f), h.sched, copyCost, sockCap)
	for i := 1; i < sc.CopyThreads; i++ {
		fp.sock.AddCopyThread(h.cores[(f+i)%sc.AppCores], copyCost, sockCap)
	}
	if h.inj != nil && sc.Proto == skb.UDP && sc.Faults.SockDrop > 0 {
		// Socket receive-queue loss (rmem pressure). UDP only: a TCP
		// socket never drops in-order data it has implicitly acked — it
		// shrinks the advertised window instead, which the sender's
		// outstanding limit already models.
		fp.sock.Gate(func(*skb.SKB) bool { return !h.inj.DropSock() })
	}
	if tr, reg := sc.Tracer, sc.Obs; tr != nil || reg != nil {
		app := h.acore(f)
		// User-space delivery is the pipeline's final stage: record its
		// latency-since-NIC-arrival per wire segment (so histogram counts
		// line up with delivered segment counts) and the queueing gap
		// from the last kernel stage.
		sockLat := reg.Histogram("stage_latency", "stage", "socket")
		sockGap := reg.GapTo("socket")
		fp.sock.Tap = func(s *skb.SKB, at sim.Time) {
			if tr != nil {
				tr.Record(at, s.PktID, s.FlowID, s.Seq, s.Segs, "socket", app.ID)
			}
			sockLat.RecordN(int64(at.Sub(s.ArrivedAt)), uint64(s.Segs))
			if s.LastStage != "" {
				sockGap(s.LastStage, int64(at.Sub(s.LastStageAt)))
			}
		}
	}

	var first *stage
	if sc.System == steering.MFlow {
		first = h.buildMFlowFlow(f, fp)
	} else {
		first = h.buildPlannedFlow(f, fp)
	}
	h.nic.AttachDriver(f, first.worker)
	// The first stage's queue is the NIC descriptor ring: a probed run
	// classifies its head wait as ring-wait, not softirq queueing.
	first.ringFed = true
	if h.inj != nil {
		// The driver worker's queue is the NIC descriptor ring: its
		// admission gate is the ring-drop point, not a backlog one (undo
		// any backlog gate newStageT installed).
		first.worker.Gate = nil
		if sc.Faults.RingDrop > 0 {
			first.worker.Gate = func(*skb.SKB) bool { return !h.inj.DropRing() }
		}
	}
	return fp
}

// buildFlowTx wires a flow's sender(s) on this host. A nil ingress builds
// the classic local chain into h.nic (encap accounting, wire faults, wire
// mode); fabric runs pass the cross-host chain (VTEP → underlay → remote
// NIC) instead, with fp belonging to the remote receiving host.
func (h *host) buildFlowTx(f int, fp *flowPath, ingress traffic.Ingress) {
	sc := h.sc
	cfg := sc.Costs
	overlay := isOverlay(sc.System, sc.Proto)

	if ingress == nil {
		ingress = h.nic
		if sc.Proto == skb.UDP && sc.UDPClients > 1 {
			// Several clients share the flow: sequence numbers only make
			// sense in NIC arrival order.
			ingress = &arrivalSeq{n: h.nic}
		}
		// The lossy-link tap sits between frame construction and NIC
		// arrival: in wire mode corruption flips real bytes (after the
		// builder attaches them, before the pcap capture sees them), and
		// dropped frames never consume an arrival sequence number.
		wrapFault := func(in traffic.Ingress) traffic.Ingress {
			if h.inj != nil && sc.Faults.WireActive() {
				return h.inj.Wrap(in)
			}
			return in
		}
		switch {
		case sc.WireMode:
			// Real bytes end to end; the builder also performs the
			// encapsulation accounting.
			if h.capture != nil {
				ingress = &captureTap{h: h, inner: ingress}
			}
			ingress = newWireBuilder(wrapFault(ingress), fp.id, overlay)
			fp.sock.Verify = wireVerify(fp)
		case overlay:
			ingress = encapIngress{wrapFault(ingress)}
		default:
			ingress = wrapFault(ingress)
		}
	}
	// Explicit sender-side pipeline: the sender's syscall work and the
	// egress chain replace the aggregate client-cost model.
	txWrap := func(base traffic.Ingress, app *sim.Core) traffic.Ingress {
		if !sc.ModelTX {
			return base
		}
		return txpath.New(app, h.newClientCore(), h.sched, txpath.DefaultCosts(), overlay, base)
	}
	clientCostTCP := cfg.TCPClient
	clientCostUDP := cfg.UDPClient
	if sc.ModelTX {
		// txpath charges the socket path itself; the sender keeps only a
		// residual per-call overhead.
		clientCostTCP = traffic.ClientCost{PerSeg: 8}
		clientCostUDP = traffic.ClientCost{PerSeg: 8}
	}
	if sc.Proto == skb.TCP {
		appCore := h.newClientCore()
		tx := &traffic.TCPSender{
			FlowID:   fp.id,
			MsgSize:  sc.MsgSize,
			Window:   sc.Window,
			Core:     appCore,
			Sched:    h.sched,
			Net:      txWrap(ingress, appCore),
			NetDelay: cfg.NetDelay,
			Cost:     clientCostTCP,
			Pool:     h.pool,
		}
		// Overload control drops packets too (admission budget, AQM,
		// pressure gates), so it needs the reliable sender for the same
		// reason fault injection does: an unrecovered hole deadlocks the
		// window. The fabric's underlay tail-drops as well.
		if h.inj != nil || h.ov != nil || sc.Fabric.Enabled() {
			tx.Reliable = true
			tx.InitialRTO = sc.Faults.RTOOrDefault()
			if fp.tcpRx != nil {
				// Dup ACKs ride the same (lossless) return path as
				// cumulative ACKs and steer fast retransmit at the
				// receiver's missing sequence.
				fp.tcpRx.DupAck = func(e uint64) {
					a := h.getAck()
					a.tx, a.end, a.dup = tx, e, true
					h.sched.AfterHandler(cfg.NetDelay+h.ackExtra, a, nil)
				}
				// The hole map that SACK blocks would carry on those
				// ACKs; the simulator queries the receiver's scoreboard
				// directly, so one recovery sweep repairs every known
				// hole per round trip.
				tx.Missing = fp.tcpRx.Missing
			}
		}
		fp.tcpTx = tx
		fp.sock.Ack = func(end uint64, _ sim.Time) {
			a := h.getAck()
			a.tx, a.end = tx, end
			h.sched.AfterHandler(cfg.NetDelay+h.ackExtra, a, nil)
		}
		h.sched.At(0, tx.Start)
		fp.stops = append(fp.stops, tx.Stop)
	} else {
		seq := &traffic.SeqAlloc{}
		for c := 0; c < sc.UDPClients; c++ {
			appCore := h.newClientCore()
			tx := &traffic.UDPSender{
				FlowID:   fp.id,
				MsgSize:  sc.MsgSize,
				Core:     appCore,
				Sched:    h.sched,
				Net:      txWrap(ingress, appCore),
				NetDelay: cfg.NetDelay,
				Cost:     clientCostUDP,
				Seq:      seq,
				MsgBase:  uint64(c) << 40,
				Pool:     h.pool,
			}
			h.sched.At(0, tx.Start)
			fp.stops = append(fp.stops, tx.Stop)
		}
	}
}

// tailFor returns the delivery function terminating a pipeline: transport
// bookkeeping (ordering for TCP, reordering stats for UDP) then the socket
// queue. core is the CPU context the transport bookkeeping runs in.
func (h *host) tailFor(fp *flowPath, core *sim.Core) func(*skb.SKB, sim.Time) {
	if h.sc.Proto == skb.TCP {
		fp.tcpRx = &proto.TCPReceiver{
			OOOQueueCost: h.sc.Costs.OOOQueue,
			Deliver: func(s *skb.SKB) {
				if !fp.sock.Enqueue(s) {
					h.dropSock(fp, s)
				}
			},
		}
		if h.inj != nil {
			fp.tcpRx.OFOCap = h.sc.Faults.OFOCapOrDefault()
		}
		return func(s *skb.SKB, _ sim.Time) { fp.tcpRx.Rx(s, core) }
	}
	fp.udpRx = &proto.UDPReceiver{
		Deliver: func(s *skb.SKB) {
			if !fp.sock.Enqueue(s) {
				h.dropSock(fp, s)
			}
		},
	}
	return func(s *skb.SKB, _ sim.Time) { fp.udpRx.Rx(s, core) }
}

// dropSock retires a skb rejected at the socket receive queue: the probes
// observe the loss, then the skb returns to the pool.
func (h *host) dropSock(fp *flowPath, s *skb.SKB) {
	if p := h.prof; p != nil {
		p.Drop(s, h.sched.Now(), "socket")
	}
	if fr := h.flight; fr != nil {
		fr.Trigger("drop-sock", s.PktID, fp.id, h.sched.Now())
	}
	h.retire(s)
}

// armCausal attaches the run's probes — the causal profiler and/or the
// anomaly flight recorder — to the fully built topology. Every hook below is
// a plain func field on the probed component: unprobed runs keep them nil
// and pay nothing; probed runs only observe, never alter behaviour.
func (h *host) armCausal() {
	p, fr := h.prof, h.flight
	if p == nil && fr == nil {
		return
	}
	if fr != nil {
		// Per-core execution rings chain onto any CoreLog already attached.
		fr.Attach(h.cores...)
	}
	for _, st := range h.stages {
		st.prof = p
		if fr != nil {
			st := st
			st.onDrop = func(s *skb.SKB) {
				fr.Trigger("drop-backlog", s.PktID, s.FlowID, h.sched.Now())
			}
		}
	}
	h.nic.OnDrop = func(s *skb.SKB) {
		if p != nil {
			p.Drop(s, h.sched.Now(), "nic-ring")
		}
		if fr != nil {
			fr.Trigger("drop-ring", s.PktID, s.FlowID, h.sched.Now())
		}
	}
	for _, fp := range h.flows {
		fp := fp
		if p != nil {
			// Userspace delivery is the terminal attribution point; the
			// profiler closes the record after any tracing tap ran.
			prevTap := fp.sock.Tap
			fp.sock.Tap = func(s *skb.SKB, at sim.Time) {
				if prevTap != nil {
					prevTap(s, at)
				}
				p.Complete(s, at)
			}
			for _, w := range fp.sock.Workers() {
				w.ServeLog = func(s *skb.SKB, start, end sim.Time) {
					p.MarkServe(s, start, end)
				}
			}
		}
		if fp.reasm != nil {
			if p != nil {
				fp.reasm.OnDeliver = func(head *skb.SKB, blame uint64) {
					p.MarkBlame(head, "reassembler", h.sched.Now(), blame)
				}
			}
			if fr != nil {
				fp.reasm.OnHoleReleased = func(head *skb.SKB) {
					fr.Trigger("gap-timeout", head.PktID, head.FlowID, h.sched.Now())
				}
			}
		}
		if fp.tcpRx != nil && p != nil {
			fp.tcpRx.OnDeliverParked = func(parked, filler *skb.SKB) {
				p.MarkBlame(parked, "tcp-ofo", h.sched.Now(), filler.PktID)
			}
			prevRecycle := fp.tcpRx.Recycle
			fp.tcpRx.Recycle = func(s *skb.SKB) {
				p.Drop(s, h.sched.Now(), "tcp-dup")
				if prevRecycle != nil {
					prevRecycle(s)
				}
			}
		}
		if fp.split != nil {
			if p != nil {
				fp.split.OnIdleWake = p.NoteIdleWake
			}
			prevRecycle := fp.split.Recycle
			fp.split.Recycle = func(s *skb.SKB) {
				if p != nil {
					p.Drop(s, h.sched.Now(), "split-queue")
				}
				if fr != nil {
					fr.Trigger("drop-split", s.PktID, s.FlowID, h.sched.Now())
				}
				if prevRecycle != nil {
					prevRecycle(s)
				}
			}
		}
		if fr != nil {
			if prevVerify := fp.sock.Verify; prevVerify != nil {
				fp.sock.Verify = func(s *skb.SKB) error {
					err := prevVerify(s)
					if err != nil {
						fr.Trigger("corruption", s.PktID, s.FlowID, h.sched.Now())
					}
					return err
				}
			}
			if fp.tcpTx != nil {
				id := fp.id
				fp.tcpTx.OnRTO = func() {
					fr.Trigger("rto", 0, id, h.sched.Now())
				}
			}
		}
	}
	if p != nil {
		for _, g := range h.gros {
			prevRecycle := g.Recycle
			g.Recycle = func(s *skb.SKB) {
				p.Absorb(s)
				if prevRecycle != nil {
					prevRecycle(s)
				}
			}
		}
	}
}

// armFaultRecovery relaxes a flow's reassembler for fault-injected runs:
// holes are tolerated (losses are skipped over, retransmissions return as
// stale micro-flows and are delivered out of band for the TCP layer to
// re-order) and the gap timer bounds how long the merger can stall on a
// hole. No-op without an injector or fabric (whose underlay tail-drops can
// punch holes too), so lossless runs keep the strict contiguity invariant.
func (h *host) armFaultRecovery(fp *flowPath) {
	if (h.inj == nil && !h.sc.Fabric.Enabled()) || fp.reasm == nil {
		return
	}
	fp.reasm.AllowGaps = true
	fp.reasm.GapTimeout = h.sc.Faults.GapTimeoutOrDefault()
	explicitGap := h.sc.Faults != nil && h.sc.Faults.GapTimeout != 0
	if h.sc.Proto == skb.TCP && !explicitGap {
		// TCP restores order downstream (the receiver's out-of-order
		// queue), so an over-eager release costs only some re-parking —
		// while every microsecond the merger stalls delays the duplicate
		// ACKs that drive loss recovery. Default far tighter than UDP,
		// where a release turns straight into out-of-order delivery.
		fp.reasm.GapTimeout = h.sc.Faults.GapTimeoutOrDefault() / 8
	}
	fp.reasm.Sched = h.sched
}

// addStageDevices fills a stage's device lists for one plan stage.
func (h *host) addStageDevices(st *stage, fp *flowPath, stg steering.Stage, overlay bool) {
	cfg := h.sc.Costs
	switch stg {
	case steering.StageAlloc:
		st.pre = append(st.pre, dev("alloc", cfg.Alloc))
	case steering.StageGRO:
		if h.sc.Proto == skb.TCP {
			gcost := cfg.GRONative
			if overlay {
				gcost = cfg.GROOverlay
			}
			st.pre = append(st.pre, dev("gro", gcost))
			st.gro = gro.New()
			h.gros = append(h.gros, st.gro)
		} else {
			st.pre = append(st.pre, dev("gro", cfg.GROLookupUDP))
		}
		if overlay {
			st.post = append(st.post, dev("ip", cfg.OuterIPUDP))
		}
	case steering.StageVXLAN:
		st.post = append(st.post, fp.vxDevice(cfg))
	case steering.StageInner:
		if overlay {
			st.post = append(st.post,
				dev("bridge", cfg.Bridge),
				dev("veth", cfg.Veth))
		}
		st.post = append(st.post, dev("ip", cfg.InnerIP))
		if h.sc.Proto == skb.TCP {
			st.post = append(st.post, dev("tcp", cfg.TCPRx))
		} else {
			st.post = append(st.post, dev("udp", cfg.UDPRx))
		}
		st.post = append(st.post, dev("sock", cfg.SockEnq))
	}
}

// vxDevice lazily creates the flow's VxLAN tunnel endpoint device.
func (fp *flowPath) vxDevice(cfg *CostModel) *netdev.Device {
	if fp.vx == nil {
		fp.vx = &netdev.VXLAN{VNI: uint32(fp.id)}
	}
	return fp.vx.RxDevice(cfg.VXLAN)
}

// isOverlay reports whether packets of this system/protocol arrive
// encapsulated (Slim bypasses the overlay for TCP only).
func isOverlay(sys steering.System, proto skb.Proto) bool {
	if sys == steering.Native {
		return false
	}
	if sys == steering.Slim && proto == skb.TCP {
		return false
	}
	return true
}

// falconClasses partitions kernelCores across a handoff plan's stage
// groups: VxLAN classes get exactly one core (one host-wide device), other
// classes share the remainder proportionally to rough stage weights.
func falconClasses(plan steering.Plan, kernelCores int) (starts, sizes []int) {
	ng := len(plan.Groups)
	starts = make([]int, ng)
	sizes = make([]int, ng)
	weights := make([]int, ng)
	wsum := 0
	spare := kernelCores
	for i, g := range plan.Groups {
		vx := false
		w := 1
		for _, stg := range g.Stages {
			if stg == steering.StageVXLAN {
				vx = true
			}
			if stg == steering.StageAlloc || stg == steering.StageGRO {
				w = 2
			}
		}
		if vx {
			sizes[i] = 1
			spare--
		} else {
			weights[i] = w
			wsum += w
		}
	}
	for i := range sizes {
		if sizes[i] == 0 && wsum > 0 {
			sizes[i] = spare * weights[i] / wsum
			if sizes[i] < 1 {
				sizes[i] = 1
			}
		}
	}
	off := 0
	for i := range sizes {
		starts[i] = off
		off += sizes[i]
	}
	return starts, sizes
}

// buildPlannedFlow realizes a static placement plan (native, vanilla, RPS,
// FALCON, Slim) and returns the first stage (the NIC driver softirq).
func (h *host) buildPlannedFlow(f int, fp *flowPath) *stage {
	sc := h.sc
	cfg := sc.Costs
	plan := steering.PlanFor(sc.System, sc.Proto)
	overlay := isOverlay(sc.System, sc.Proto)
	base := h.baseFor(f, overlay)
	cap := 0
	if sc.Proto == skb.UDP {
		cap = udpBacklogCap
	}

	// FALCON pins device classes to cores: the kernel-core pool is
	// partitioned per stage group and flow f's group-i softirq runs on a
	// core of class i. Device classes have unequal weights, which is the
	// source of FALCON's uneven per-core load (paper Fig. 12). The other
	// plans place groups at flow-relative offsets.
	// FALCON pins device classes to cores. The VxLAN device is one
	// host-wide device whose softirq lands on a single core for every
	// flow — precisely the paper's critique: a heavy device still
	// saturates one core. The remaining classes partition the rest of
	// the kernel pool, weighted by their rough stage cost so the heavy
	// first softirq gets more cores.
	starts, sizes := falconClasses(plan, sc.KernelCores)
	coreFor := func(i int, g steering.Group) *sim.Core {
		if !plan.Handoff {
			return h.kcore(base + g.CoreOff)
		}
		return h.kcore(starts[i] + f%sizes[i])
	}

	n := len(plan.Groups)
	stages := make([]*stage, n)
	for i := n - 1; i >= 0; i-- {
		g := plan.Groups[i]
		coreC := coreFor(i, g)
		wake := sim.Duration(sameCoreWake)
		if i > 0 && coreFor(i-1, plan.Groups[i-1]) != coreC {
			wake = cfg.BacklogWake
		}
		st := h.newStageT(fmt.Sprintf("%s-g%d", sc.System, i), coreC, cap, wake)
		preGRO := false
		for _, stg := range g.Stages {
			h.addStageDevices(st, fp, stg, overlay)
			if stg == steering.StageAlloc {
				preGRO = true
			}
			if stg == steering.StageGRO {
				preGRO = false
			}
		}
		if i < n-1 {
			switch {
			case plan.Handoff:
				st.handoff = cfg.HandoffPerSKB
				if preGRO && plan.PreGROHandoff {
					st.handoff += cfg.HandoffPreGROExtra
				}
			case sc.System == steering.RPS && i == 0:
				st.handoff = cfg.RPSSteer
			}
			next := stages[i+1]
			st.out = next.feed()
		} else {
			st.out = h.tailFor(fp, coreC)
		}
		stages[i] = st
		h.stages = append(h.stages, st)
	}
	return stages[0]
}
