package overlay

import (
	"fmt"

	"mflow/internal/packet"
	"mflow/internal/skb"
	"mflow/internal/traffic"
)

// wireBuilder materializes real wire bytes for every segment a sender
// emits: an inner Ethernet/IPv4/TCP-or-UDP frame, wrapped in a genuine
// RFC 7348 VxLAN encapsulation for overlay scenarios. The VxLAN device then
// performs byte-level decapsulation and the socket verifies the payload on
// delivery — end-to-end validation that the simulated data path manipulates
// packets correctly, not just their cost accounting.
type wireBuilder struct {
	n       traffic.Ingress
	overlay bool

	src, dst           packet.FlowAddr
	outerSrc, outerDst packet.IPv4Addr
	outerSrcMAC        packet.MAC
	outerDstMAC        packet.MAC
	vni                uint32
	ipID               uint16
}

func newWireBuilder(n traffic.Ingress, flowID uint64, overlay bool) *wireBuilder {
	b := byte(flowID)
	return &wireBuilder{
		n:       n,
		overlay: overlay,
		src: packet.FlowAddr{
			MAC: packet.MAC{0x02, 0, 0, 0, 1, b}, IP: packet.Addr4(172, 17, 1, b), Port: 40000 + uint16(flowID),
		},
		dst: packet.FlowAddr{
			MAC: packet.MAC{0x02, 0, 0, 0, 2, b}, IP: packet.Addr4(172, 17, 2, b), Port: 5001,
		},
		outerSrc:    packet.Addr4(10, 0, 0, 1),
		outerDst:    packet.Addr4(10, 0, 0, 2),
		outerSrcMAC: packet.MAC{0x02, 0xaa, 0, 0, 0, 1},
		outerDstMAC: packet.MAC{0x02, 0xaa, 0, 0, 0, 2},
		vni:         uint32(flowID),
	}
}

// Deliver implements traffic.Ingress: it attaches the wire bytes, adjusts
// encapsulation accounting, and forwards to the NIC.
//
// The frame is built inside out over the skb's pooled arena, kernel
// style: Reserve positions an empty window behind headroom sized for
// every header the frame will ever need, the payload is written directly
// into the arena, and each header layer is a Push into headroom plus an
// in-place marshal — zero allocations and zero payload copies once the
// pool is warm.
func (w *wireBuilder) Deliver(s *skb.SKB) bool {
	innerHdr := packet.InnerUDPHeaderLen
	if s.Proto == skb.TCP {
		innerHdr = packet.InnerTCPHeaderLen
	}
	// Always reserve room for the outer headers too: even when this
	// builder does not encapsulate (overlay false), a downstream VTEP
	// (the fabric's fabIngress) may push them, and headroom is cheaper
	// than a grow-and-copy per frame.
	s.Reserve(packet.OverlayOverhead+innerHdr, s.PayloadLen)
	traffic.FillPattern(s.Put(s.PayloadLen), s.Seq)
	w.ipID++
	hdr := s.Push(innerHdr)
	if s.Proto == skb.TCP {
		packet.BuildTCPFrameInPlace(hdr, w.src, w.dst, w.ipID,
			uint32(s.Seq*traffic.MSS), 0, packet.TCPAck, s.PayloadLen)
	} else {
		packet.BuildUDPFrameInPlace(hdr, w.src, w.dst, w.ipID, s.PayloadLen)
	}
	if w.overlay {
		outer := s.Push(packet.OverlayOverhead)
		packet.EncapVXLANInPlace(outer, w.outerSrcMAC, w.outerDstMAC, w.outerSrc, w.outerDst,
			w.vni, w.ipID, s.Data[packet.OverlayOverhead:])
		s.Encap = true
		s.WireLen += packet.OverlayOverhead * s.Segs
	}
	return w.n.Deliver(s)
}

// wireVerify returns the socket-side integrity check for wire-mode runs:
// the delivered skb must be decapsulated and its frames' transport payloads
// must cover exactly the bytes the accounting says were delivered. This is
// the stream's single terminal reader: it walks the head window and each
// chained GRO frag part-wise, so even here the super-packet is never
// materialized into one contiguous buffer.
func wireVerify(_ *flowPath) func(*skb.SKB) error {
	return func(s *skb.SKB) error {
		if s.Encap {
			return fmt.Errorf("wire: skb reached the socket still encapsulated: %v", s)
		}
		if s.Data == nil {
			return fmt.Errorf("wire: skb lost its data: %v", s)
		}
		got := 0
		for i, n := 0, s.Parts(); i < n; i++ {
			pb, err := packet.PayloadBytes(s.Part(i))
			if err != nil {
				return fmt.Errorf("wire: corrupt frame at socket (part %d/%d): %w", i, n, err)
			}
			got += pb
		}
		if got != s.PayloadLen {
			return fmt.Errorf("wire: payload %d bytes, accounting says %d", got, s.PayloadLen)
		}
		return nil
	}
}
