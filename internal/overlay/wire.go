package overlay

import (
	"fmt"

	"mflow/internal/packet"
	"mflow/internal/skb"
	"mflow/internal/traffic"
)

// wireBuilder materializes real wire bytes for every segment a sender
// emits: an inner Ethernet/IPv4/TCP-or-UDP frame, wrapped in a genuine
// RFC 7348 VxLAN encapsulation for overlay scenarios. The VxLAN device then
// performs byte-level decapsulation and the socket verifies the payload on
// delivery — end-to-end validation that the simulated data path manipulates
// packets correctly, not just their cost accounting.
type wireBuilder struct {
	n       traffic.Ingress
	overlay bool

	src, dst           packet.FlowAddr
	outerSrc, outerDst packet.IPv4Addr
	outerSrcMAC        packet.MAC
	outerDstMAC        packet.MAC
	vni                uint32
	ipID               uint16
}

func newWireBuilder(n traffic.Ingress, flowID uint64, overlay bool) *wireBuilder {
	b := byte(flowID)
	return &wireBuilder{
		n:       n,
		overlay: overlay,
		src: packet.FlowAddr{
			MAC: packet.MAC{0x02, 0, 0, 0, 1, b}, IP: packet.Addr4(172, 17, 1, b), Port: 40000 + uint16(flowID),
		},
		dst: packet.FlowAddr{
			MAC: packet.MAC{0x02, 0, 0, 0, 2, b}, IP: packet.Addr4(172, 17, 2, b), Port: 5001,
		},
		outerSrc:    packet.Addr4(10, 0, 0, 1),
		outerDst:    packet.Addr4(10, 0, 0, 2),
		outerSrcMAC: packet.MAC{0x02, 0xaa, 0, 0, 0, 1},
		outerDstMAC: packet.MAC{0x02, 0xaa, 0, 0, 0, 2},
		vni:         uint32(flowID),
	}
}

// Deliver implements traffic.Ingress: it attaches the wire bytes, adjusts
// encapsulation accounting, and forwards to the NIC.
func (w *wireBuilder) Deliver(s *skb.SKB) bool {
	payload := make([]byte, s.PayloadLen)
	for i := range payload {
		payload[i] = byte(s.Seq + uint64(i)) // recognizable pattern
	}
	w.ipID++
	var inner []byte
	if s.Proto == skb.TCP {
		inner = packet.BuildTCPFrame(w.src, w.dst, w.ipID,
			uint32(s.Seq*traffic.MSS), 0, packet.TCPAck, payload)
	} else {
		inner = packet.BuildUDPFrame(w.src, w.dst, w.ipID, payload)
	}
	if w.overlay {
		s.Data = packet.EncapVXLAN(w.outerSrcMAC, w.outerDstMAC, w.outerSrc, w.outerDst, w.vni, w.ipID, inner)
		s.Encap = true
		s.WireLen += packet.OverlayOverhead * s.Segs
	} else {
		s.Data = inner
	}
	return w.n.Deliver(s)
}

// wireVerify returns the socket-side integrity check for wire-mode runs:
// the delivered skb must be decapsulated and its frames' transport payloads
// must cover exactly the bytes the accounting says were delivered.
func wireVerify(_ *flowPath) func(*skb.SKB) error {
	return func(s *skb.SKB) error {
		if s.Encap {
			return fmt.Errorf("wire: skb reached the socket still encapsulated: %v", s)
		}
		if s.Data == nil {
			return fmt.Errorf("wire: skb lost its data: %v", s)
		}
		got, err := packet.PayloadBytes(s.Data)
		if err != nil {
			return fmt.Errorf("wire: corrupt frame at socket: %w", err)
		}
		if got != s.PayloadLen {
			return fmt.Errorf("wire: payload %d bytes, accounting says %d", got, s.PayloadLen)
		}
		return nil
	}
}
