package overlay

import (
	"testing"

	"mflow/internal/fabric"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/steering"
)

// wireQuick returns a short wire-mode scenario.
func wireQuick(sys steering.System, proto skb.Proto) Scenario {
	return Scenario{
		System: sys, Proto: proto, MsgSize: 65536,
		WireMode: true,
		Warmup:   1 * sim.Millisecond, Measure: 3 * sim.Millisecond,
	}
}

func TestWireModeEndToEndIntegrity(t *testing.T) {
	// Every system and protocol must move real bytes through the full
	// pipeline — encapsulation, GRO coalescing, byte-level VxLAN
	// decapsulation, splitting/reassembly — with zero integrity errors.
	for _, proto := range []skb.Proto{skb.TCP, skb.UDP} {
		for _, sys := range steering.Systems {
			r := Run(wireQuick(sys, proto))
			if r.Gbps <= 0 {
				t.Errorf("%v/%v wire mode: no throughput", sys, proto)
			}
			if r.WireErrors != 0 {
				t.Errorf("%v/%v wire mode: %d integrity errors", sys, proto, r.WireErrors)
			}
		}
	}
}

func TestWireModeDecapsulatesBytes(t *testing.T) {
	sc := wireQuick(steering.MFlow, skb.TCP).withDefaults()
	h := buildHost(sc, Probes{})
	h.run()
	fp := h.flows[0]
	if fp.vx == nil || fp.vx.Decapped == 0 {
		t.Fatal("VxLAN device never decapsulated real frames")
	}
	if fp.vx.Errors != 0 {
		t.Errorf("VxLAN decap errors: %d", fp.vx.Errors)
	}
	if fp.sock.VerifyErrors != 0 {
		t.Errorf("socket verify errors: %d (%v)", fp.sock.VerifyErrors, fp.sock.FirstVerifyErr)
	}
	if fp.sock.Bytes == 0 {
		t.Error("nothing delivered")
	}
}

func TestWireModeMatchesSyntheticShape(t *testing.T) {
	// Wire mode must not change the performance model, only add bytes:
	// throughput should match the synthetic run closely.
	syn := Run(Scenario{
		System: steering.Vanilla, Proto: skb.TCP, MsgSize: 65536,
		Warmup: 1 * sim.Millisecond, Measure: 3 * sim.Millisecond,
	})
	wire := Run(wireQuick(steering.Vanilla, skb.TCP))
	ratio := wire.Gbps / syn.Gbps
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("wire mode perturbed throughput: %.2f vs %.2f", wire.Gbps, syn.Gbps)
	}
}

func TestWireModeNativeCarriesPlainFrames(t *testing.T) {
	r := Run(wireQuick(steering.Native, skb.UDP))
	if r.WireErrors != 0 {
		t.Errorf("native wire mode: %d integrity errors", r.WireErrors)
	}
}

// Wire mode across the fabric: senders build real frames into
// headroom-reserved arenas, the TX host's VTEP pushes genuine outer
// headers in place, the frames cross the underlay, and the owner host's
// vxlan device performs a validated per-frame pull. Every delivered
// payload must verify at the remote socket.
func TestFabricWireModeEndToEnd(t *testing.T) {
	for _, sys := range []steering.System{steering.Vanilla, steering.RPS, steering.MFlow} {
		sc := wireQuick(sys, skb.TCP)
		sc.Flows = 2
		sc.Fabric = &fabric.Config{Hosts: 2}
		r := Run(sc)
		if r.Gbps <= 0 {
			t.Errorf("%v fabric wire mode: no throughput", sys)
		}
		if r.WireErrors != 0 {
			t.Errorf("%v fabric wire mode: %d integrity errors", sys, r.WireErrors)
		}
		if r.UnderlaySent == 0 {
			t.Errorf("%v fabric wire mode: frames never crossed the underlay", sys)
		}
	}
}

// Native (host-network) fabric wire mode: plain inner frames cross the
// underlay with no VTEP push, and still verify at the remote socket.
func TestFabricWireModeNative(t *testing.T) {
	sc := wireQuick(steering.Native, skb.TCP)
	sc.Flows = 2
	sc.Fabric = &fabric.Config{Hosts: 2}
	r := Run(sc)
	if r.WireErrors != 0 {
		t.Errorf("native fabric wire mode: %d integrity errors", r.WireErrors)
	}
}
