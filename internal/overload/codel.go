package overload

import (
	"math"

	"mflow/internal/sim"
)

// CoDel is the controlled-delay AQM state machine (Nichols & Jacobson,
// CACM 2012) over simulated time. The caller measures each dequeued
// packet's queue sojourn and asks Drop; CoDel answers from two rules:
//
//   - Entry: once the sojourn has stayed at or above Target for a full
//     Interval, enter drop state and drop the head.
//   - Control law: while in drop state, drop again at intervals of
//     Interval/sqrt(count), so persistent standing queues see steadily
//     increasing drop pressure; leaving the target region resets.
//   - Overlimit: a sojourn of a full Interval or more is itself proof of a
//     standing queue — drop immediately without waiting out the entry rule
//     (the analogue of fq_codel's overlimit shedding, and what keeps the
//     delivered-path sojourn bounded under sustained overload the sqrt law
//     alone cannot pace down).
//
// All state is deterministic simulated time — no wall clock, no
// randomness — so AQM'd runs fingerprint identically across replays.
type CoDel struct {
	// Target is the acceptable standing-queue sojourn; Interval the
	// window sojourns must exceed it for before dropping starts.
	Target   sim.Duration
	Interval sim.Duration

	// Drops counts packets the control law discarded.
	Drops uint64

	firstAbove sim.Time // when sojourn first exceeded Target (0 = not yet)
	dropNext   sim.Time // next scheduled drop while in drop state
	dropping   bool
	count      int // drops in the current drop state (drives the sqrt law)
	lastCount  int
}

// Drop reports whether the packet dequeued now with the given queue
// sojourn should be discarded.
func (c *CoDel) Drop(sojourn sim.Duration, now sim.Time) bool {
	if c == nil || c.Target <= 0 {
		return false
	}
	if sojourn < c.Target {
		c.firstAbove = 0
		c.dropping = false
		return false
	}
	if c.Interval > 0 && sojourn >= c.Interval {
		c.Drops++
		return true
	}
	if c.firstAbove == 0 {
		c.firstAbove = now.Add(c.Interval)
		return false
	}
	if !c.dropping {
		if now < c.firstAbove {
			return false
		}
		// Sojourn stayed above target for a full interval: enter drop
		// state. Re-entering shortly after leaving resumes near the
		// previous drop rate instead of restarting from 1 (the standard
		// CoDel hysteresis).
		c.dropping = true
		if c.count > 2 && now.Sub(c.dropNext) < 8*c.Interval {
			c.count -= 2
		} else {
			c.count = 1
		}
		c.lastCount = c.count
		c.dropNext = now.Add(c.controlLaw())
		c.Drops++
		return true
	}
	if now >= c.dropNext {
		c.count++
		c.dropNext = c.dropNext.Add(c.controlLaw())
		c.Drops++
		return true
	}
	return false
}

// controlLaw paces drops at Interval/sqrt(count).
func (c *CoDel) controlLaw() sim.Duration {
	return sim.Duration(float64(c.Interval) / math.Sqrt(float64(c.count)))
}
