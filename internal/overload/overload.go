// Package overload implements deterministic overload control and
// self-healing for the simulated receive path, mirroring the kernel
// mechanisms production stacks survive saturation with:
//
//   - Global skb memory accounting (net.core.rmem / tcp_mem shape): a
//     per-host bytes+count budget charged at NIC admission and released at
//     socket delivery or drop, with pressure thresholds that shrink the
//     effective NAPI budget and gate backlog/splitting-queue admission.
//   - CoDel-style AQM on backlog and splitting queues: packets whose
//     queue sojourn stays above a target for a full interval are dropped,
//     with the classic sqrt control law pacing subsequent drops.
//   - Receive-livelock mitigation (Mogul & Ramakrishnan): when softirq
//     occupancy on the NIC-serving cores exceeds a threshold over a
//     sampling window, IRQs are masked and the driver runs in budgeted
//     polling mode, so useful work keeps getting cycles.
//   - Reassembler graceful degradation and a stall watchdog live in the
//     overlay wiring (internal/overlay/overload.go) and use this package's
//     configuration.
//
// Everything is pure simulated time and seeded state — runs are
// deterministic — and the whole subsystem is probe-pure: a nil or zero
// Config leaves a run bit-for-bit identical to one without the subsystem
// (Scenario.Key unchanged, BenchmarkOverloadOff pins the disabled path at
// zero allocations).
package overload

import (
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// Config selects and parameterizes the overload-control mechanisms. The
// zero value disables everything (Enabled reports false), keeping scenario
// keys and fingerprints byte-identical to pre-overload runs.
type Config struct {
	// MemBytes / MemSKBs bound the global skb memory charged at NIC
	// admission (0 = unaccounted). Frames that would exceed either budget
	// are dropped at admission, before the descriptor ring.
	MemBytes int
	MemSKBs  int
	// PressureLow / PressureHigh are fractions of the memory budget at
	// which the host enters pressure level 1 (NAPI budgets halve) and
	// level 2 (budgets floor at MinBudget and backlog admission gates
	// close). Defaults 0.5 / 0.9.
	PressureLow  float64
	PressureHigh float64
	// MinBudget is the floor the NAPI budget shrinks to under critical
	// pressure (default 8).
	MinBudget int

	// CoDelTarget / CoDelInterval parameterize the AQM on backlog and
	// splitting queues: a queue whose head sojourn exceeds Target for a
	// full Interval enters drop state (0 disables the AQM).
	CoDelTarget   sim.Duration
	CoDelInterval sim.Duration

	// IRQPerFrame switches the NIC to interrupt-per-frame delivery (no
	// NAPI moderation) — the regime in which receive livelock occurs: the
	// IRQ cost is charged for every offered frame, accepted or not.
	IRQPerFrame bool
	// Polling enables livelock mitigation: when softirq occupancy on a
	// NIC-serving core exceeds SoftirqThreshold over a sampling window,
	// IRQs are masked and the driver polls on its own schedule; IRQs
	// unmask once occupancy falls below half the threshold.
	Polling bool
	// SoftirqThreshold is the occupancy fraction that trips polling mode
	// (default 0.85).
	SoftirqThreshold float64

	// ReasmBudget bounds the batch reassembler's parked skbs: above it the
	// flow's splitting degree collapses to 1 (pass-through ≈ RPS) and the
	// reassembler force-releases its frontier at 2× the budget; parallelism
	// restores once buffering falls below half the budget. 0 disables.
	ReasmBudget int
	// OFOBudget caps the TCP receiver's out-of-order queue (0 keeps the
	// fault plan's cap, if any).
	OFOBudget int

	// WatchdogStall is the forward-progress horizon: a splitting branch
	// whose core is booked further than this into the future is declared
	// stalled and its pending micro-flows re-steer to the healthiest
	// branch. 0 disables the watchdog.
	WatchdogStall sim.Duration

	// Tick is the manager's sampling period for pressure, occupancy,
	// degradation and watchdog checks (default 50µs).
	Tick sim.Duration
}

// Enabled reports whether any overload mechanism is configured. A nil or
// zero config wires nothing.
func (c *Config) Enabled() bool {
	return c != nil && *c != Config{}
}

// Normalized returns the config with defaults applied to every field a
// configured mechanism depends on.
func (c Config) Normalized() Config {
	if c.Tick <= 0 {
		c.Tick = 50 * sim.Microsecond
	}
	if c.PressureLow <= 0 {
		c.PressureLow = 0.5
	}
	if c.PressureHigh <= 0 {
		c.PressureHigh = 0.9
	}
	if c.MinBudget <= 0 {
		c.MinBudget = 8
	}
	if c.CoDelTarget > 0 && c.CoDelInterval <= 0 {
		c.CoDelInterval = 10 * c.CoDelTarget
	}
	if c.SoftirqThreshold <= 0 {
		c.SoftirqThreshold = 0.85
	}
	return c
}

// Profiles returns the named overload configurations the bench matrix and
// the -overload command-line flag use. Two profiles keep the matrix
// affordable: "pressure" exercises budgets + AQM + degradation + watchdog,
// "livelock" the interrupt-per-frame regime with polling-mode mitigation.
func Profiles() map[string]*Config {
	return map[string]*Config{
		"pressure": {
			MemBytes:      2 << 20,
			MemSKBs:       4096,
			CoDelTarget:   100 * sim.Microsecond,
			CoDelInterval: sim.Millisecond,
			ReasmBudget:   512,
			OFOBudget:     512,
			WatchdogStall: 300 * sim.Microsecond,
		},
		"livelock": {
			IRQPerFrame: true,
			Polling:     true,
		},
	}
}

// LivelockConfig returns the livelock-figure configuration: interrupt-
// per-frame delivery, with or without polling-mode mitigation.
func LivelockConfig(mitigated bool) *Config {
	return &Config{IRQPerFrame: true, Polling: mitigated}
}

// Accountant is the global skb memory account (tcp_mem shape): bytes and
// skb count charged at NIC admission, released at socket delivery or any
// drop. All methods tolerate a nil receiver, so the disabled path costs a
// nil check and nothing else.
type Accountant struct {
	// MemBytes / MemSKBs are the budgets (0 = that dimension unbounded).
	MemBytes int
	MemSKBs  int
	// PressureLow / PressureHigh are the level-1 / level-2 thresholds as
	// fractions of the tighter budget.
	PressureLow  float64
	PressureHigh float64

	bytes int
	skbs  int

	// Charged / Released count admissions and releases; AdmissionDropped
	// counts frames rejected because a budget was exhausted. PeakBytes /
	// PeakSKBs track high-water marks.
	Charged          uint64
	Released         uint64
	AdmissionDropped uint64
	PeakBytes        int
	PeakSKBs         int
}

// NewAccountant builds an accountant from a normalized config.
func NewAccountant(cfg Config) *Accountant {
	return &Accountant{
		MemBytes:     cfg.MemBytes,
		MemSKBs:      cfg.MemSKBs,
		PressureLow:  cfg.PressureLow,
		PressureHigh: cfg.PressureHigh,
	}
}

// Admit charges s against the budget, stamping the skb with its charge so
// Release can balance the account exactly even after GRO grows the skb's
// WireLen. It reports false — and counts an admission drop — when either
// budget would be exceeded.
func (a *Accountant) Admit(s *skb.SKB) bool {
	if a == nil {
		return true
	}
	if (a.MemBytes > 0 && a.bytes+s.WireLen > a.MemBytes) ||
		(a.MemSKBs > 0 && a.skbs+1 > a.MemSKBs) {
		a.AdmissionDropped++
		return false
	}
	a.bytes += s.WireLen
	a.skbs++
	a.Charged++
	if a.bytes > a.PeakBytes {
		a.PeakBytes = a.bytes
	}
	if a.skbs > a.PeakSKBs {
		a.PeakSKBs = a.skbs
	}
	s.MemCharge = s.WireLen
	s.Accounted = true
	return true
}

// Release returns s's charge to the budget. Unaccounted skbs (never
// admitted, or already released) are ignored, so every terminal point can
// call it unconditionally.
func (a *Accountant) Release(s *skb.SKB) {
	if a == nil || s == nil || !s.Accounted {
		return
	}
	a.bytes -= s.MemCharge
	a.skbs--
	a.Released++
	s.Accounted = false
	s.MemCharge = 0
}

// Usage returns the fraction of the tighter configured budget in use
// (0 when nothing is bounded).
func (a *Accountant) Usage() float64 {
	if a == nil {
		return 0
	}
	u := 0.0
	if a.MemBytes > 0 {
		u = float64(a.bytes) / float64(a.MemBytes)
	}
	if a.MemSKBs > 0 {
		if su := float64(a.skbs) / float64(a.MemSKBs); su > u {
			u = su
		}
	}
	return u
}

// Pressure levels.
const (
	PressureNone     = 0 // below PressureLow
	PressureModerate = 1 // NAPI budgets halve
	PressureCritical = 2 // budgets floor, backlog admission gates close
)

// Pressure maps current usage onto a pressure level.
func (a *Accountant) Pressure() int {
	if a == nil {
		return PressureNone
	}
	switch u := a.Usage(); {
	case u >= a.PressureHigh:
		return PressureCritical
	case u >= a.PressureLow:
		return PressureModerate
	default:
		return PressureNone
	}
}

// Bytes / SKBs return the live charge.
func (a *Accountant) Bytes() int {
	if a == nil {
		return 0
	}
	return a.bytes
}

// SKBs returns the live skb count.
func (a *Accountant) SKBs() int {
	if a == nil {
		return 0
	}
	return a.skbs
}
