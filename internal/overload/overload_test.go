package overload

import (
	"testing"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

func TestConfigEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config must be disabled")
	}
	if (&Config{}).Enabled() {
		t.Error("zero config must be disabled")
	}
	if !(&Config{MemBytes: 1}).Enabled() {
		t.Error("config with a budget must be enabled")
	}
	if !(&Config{IRQPerFrame: true}).Enabled() {
		t.Error("config with IRQPerFrame must be enabled")
	}
}

func TestConfigNormalizedDefaults(t *testing.T) {
	c := Config{MemBytes: 100, CoDelTarget: 10}.Normalized()
	if c.Tick <= 0 || c.PressureLow <= 0 || c.PressureHigh <= c.PressureLow ||
		c.MinBudget <= 0 || c.CoDelInterval != 100 || c.SoftirqThreshold <= 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestProfilesEnabled(t *testing.T) {
	for name, cfg := range Profiles() {
		if !cfg.Enabled() {
			t.Errorf("profile %q is not enabled", name)
		}
	}
}

func TestAccountantChargeRelease(t *testing.T) {
	a := NewAccountant(Config{MemBytes: 3000, MemSKBs: 2}.Normalized())
	s1 := &skb.SKB{WireLen: 1500}
	s2 := &skb.SKB{WireLen: 1500}
	s3 := &skb.SKB{WireLen: 100}
	if !a.Admit(s1) || !a.Admit(s2) {
		t.Fatal("within-budget admissions rejected")
	}
	if !s1.Accounted || s1.MemCharge != 1500 {
		t.Errorf("admitted skb not stamped: %+v", s1)
	}
	if a.Admit(s3) {
		t.Error("third skb should exceed MemSKBs=2")
	}
	if a.AdmissionDropped != 1 {
		t.Errorf("AdmissionDropped = %d, want 1", a.AdmissionDropped)
	}
	if a.Bytes() != 3000 || a.SKBs() != 2 || a.PeakBytes != 3000 {
		t.Errorf("account state bytes=%d skbs=%d peak=%d", a.Bytes(), a.SKBs(), a.PeakBytes)
	}
	// GRO growth after admission must not unbalance the account: the skb
	// releases the stamped charge, not its current WireLen.
	s1.WireLen += 4500
	a.Release(s1)
	a.Release(s1) // double release is a no-op
	a.Release(s2)
	if a.Bytes() != 0 || a.SKBs() != 0 {
		t.Errorf("account did not drain: bytes=%d skbs=%d", a.Bytes(), a.SKBs())
	}
	if a.Charged != 2 || a.Released != 2 {
		t.Errorf("charged=%d released=%d, want 2/2", a.Charged, a.Released)
	}
	// Release of a never-admitted skb is a no-op.
	a.Release(s3)
	if a.Released != 2 {
		t.Error("unaccounted release must be ignored")
	}
}

func TestAccountantPressureLevels(t *testing.T) {
	a := NewAccountant(Config{MemBytes: 1000}.Normalized())
	if a.Pressure() != PressureNone {
		t.Errorf("empty account pressure = %d", a.Pressure())
	}
	a.Admit(&skb.SKB{WireLen: 500})
	if a.Pressure() != PressureModerate {
		t.Errorf("50%% usage pressure = %d, want moderate", a.Pressure())
	}
	a.Admit(&skb.SKB{WireLen: 400})
	if a.Pressure() != PressureCritical {
		t.Errorf("90%% usage pressure = %d, want critical", a.Pressure())
	}
}

func TestAccountantNilSafe(t *testing.T) {
	var a *Accountant
	s := &skb.SKB{WireLen: 1}
	if !a.Admit(s) {
		t.Error("nil accountant must admit everything")
	}
	a.Release(s)
	if a.Pressure() != PressureNone || a.Usage() != 0 || a.Bytes() != 0 || a.SKBs() != 0 {
		t.Error("nil accountant must report zero state")
	}
}

func TestCoDelBelowTargetNeverDrops(t *testing.T) {
	c := &CoDel{Target: 100, Interval: 1000}
	for now := sim.Time(0); now < 100000; now += 10 {
		if c.Drop(50, now) {
			t.Fatalf("dropped a below-target sojourn at %v", now)
		}
	}
	if c.Drops != 0 {
		t.Errorf("Drops = %d, want 0", c.Drops)
	}
}

func TestCoDelSustainedStandingQueueDrops(t *testing.T) {
	c := &CoDel{Target: 100, Interval: 1000}
	// Sojourn pinned above target: no drop during the first interval,
	// then the entry drop, then sqrt-law spaced drops.
	var drops []sim.Time
	for now := sim.Time(0); now < 10000; now += 10 {
		if c.Drop(500, now) {
			drops = append(drops, now)
		}
	}
	if len(drops) < 3 {
		t.Fatalf("sustained standing queue produced only %d drops", len(drops))
	}
	if drops[0] < 1000 {
		t.Errorf("first drop at %v, before a full interval elapsed", drops[0])
	}
	// The control law accelerates: later inter-drop gaps must not exceed
	// earlier ones.
	for i := 2; i < len(drops); i++ {
		if gap, prev := drops[i]-drops[i-1], drops[i-1]-drops[i-2]; gap > prev {
			t.Errorf("drop spacing grew: %v then %v", prev, gap)
		}
	}
	if c.Drops != uint64(len(drops)) {
		t.Errorf("Drops = %d, want %d", c.Drops, len(drops))
	}
}

func TestCoDelRecoversWhenQueueDrains(t *testing.T) {
	c := &CoDel{Target: 100, Interval: 1000}
	for now := sim.Time(0); now < 5000; now += 10 {
		c.Drop(500, now)
	}
	if !c.dropping {
		t.Fatal("expected drop state after sustained overshoot")
	}
	if c.Drop(10, 5000) {
		t.Error("below-target sojourn dropped")
	}
	if c.dropping {
		t.Error("drop state must clear once sojourn falls below target")
	}
	// And it must take a fresh full interval to re-enter.
	if c.Drop(500, 5100) || c.Drop(500, 5200) {
		t.Error("re-entry dropped before a full interval above target")
	}
}

func TestCoDelNilAndDisabled(t *testing.T) {
	var c *CoDel
	if c.Drop(1000, 0) {
		t.Error("nil CoDel must never drop")
	}
	d := &CoDel{}
	if d.Drop(1000, 0) {
		t.Error("zero-target CoDel must never drop")
	}
}

// BenchmarkOverloadOff pins the disabled path at zero allocations: the
// nil-safe operations every packet would touch when overload control is
// off must cost nil checks only. The CI bench gate enforces 0 allocs/op.
func BenchmarkOverloadOff(b *testing.B) {
	var cfg *Config
	var a *Accountant
	var c *CoDel
	s := &skb.SKB{WireLen: 1500}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if cfg.Enabled() {
			b.Fatal("disabled config reported enabled")
		}
		if !a.Admit(s) {
			b.Fatal("nil accountant rejected")
		}
		a.Release(s)
		if c.Drop(1000, sim.Time(i)) {
			b.Fatal("nil CoDel dropped")
		}
	}
}
