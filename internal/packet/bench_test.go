package packet

import "testing"

var benchInner = BuildTCPFrame(
	FlowAddr{MAC: MAC{2, 0, 0, 0, 0, 1}, IP: Addr4(172, 17, 0, 2), Port: 40000},
	FlowAddr{MAC: MAC{2, 0, 0, 0, 0, 2}, IP: Addr4(172, 17, 0, 3), Port: 5001},
	1, 0, 0, TCPAck, make([]byte, 1448))

func BenchmarkEncapVXLAN(b *testing.B) {
	b.SetBytes(int64(len(benchInner)))
	for i := 0; i < b.N; i++ {
		_ = EncapVXLAN(MAC{}, MAC{}, Addr4(10, 0, 0, 1), Addr4(10, 0, 0, 2), 1, uint16(i), benchInner)
	}
}

func BenchmarkDecapVXLAN(b *testing.B) {
	frame := EncapVXLAN(MAC{}, MAC{}, Addr4(10, 0, 0, 1), Addr4(10, 0, 0, 2), 1, 0, benchInner)
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecapVXLAN(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	buf := make([]byte, 1500)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		_ = Checksum(buf)
	}
}

func BenchmarkParseInner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, _, _, err := ParseInner(benchInner); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalkFrames(b *testing.B) {
	var buf []byte
	for i := 0; i < 16; i++ {
		buf = append(buf, benchInner...)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WalkFrames(buf, func([]byte) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
