package packet

import "testing"

var benchInner = BuildTCPFrame(
	FlowAddr{MAC: MAC{2, 0, 0, 0, 0, 1}, IP: Addr4(172, 17, 0, 2), Port: 40000},
	FlowAddr{MAC: MAC{2, 0, 0, 0, 0, 2}, IP: Addr4(172, 17, 0, 3), Port: 5001},
	1, 0, 0, TCPAck, make([]byte, 1448))

func BenchmarkEncapVXLAN(b *testing.B) {
	b.SetBytes(int64(len(benchInner)))
	for i := 0; i < b.N; i++ {
		_ = EncapVXLAN(MAC{}, MAC{}, Addr4(10, 0, 0, 1), Addr4(10, 0, 0, 2), 1, uint16(i), benchInner)
	}
}

func BenchmarkDecapVXLAN(b *testing.B) {
	frame := EncapVXLAN(MAC{}, MAC{}, Addr4(10, 0, 0, 1), Addr4(10, 0, 0, 2), 1, 0, benchInner)
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecapVXLAN(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncapWire is the steady-state zero-copy transmit path at the
// byte level: payload fill, inner TCP headers and outer VxLAN headers all
// written in place into one preallocated buffer laid out like an skb
// arena. Pinned at 0 B/op in bench_baseline.txt — any allocation on this
// path is a regression.
func BenchmarkEncapWire(b *testing.B) {
	const payloadLen = 1448
	src := FlowAddr{MAC: MAC{2, 0, 0, 0, 0, 1}, IP: Addr4(172, 17, 0, 2), Port: 40000}
	dst := FlowAddr{MAC: MAC{2, 0, 0, 0, 0, 2}, IP: Addr4(172, 17, 0, 3), Port: 5001}
	buf := make([]byte, OverlayOverhead+InnerTCPHeaderLen+payloadLen)
	payload := buf[OverlayOverhead+InnerTCPHeaderLen:]
	innerHdr := buf[OverlayOverhead : OverlayOverhead+InnerTCPHeaderLen]
	inner := buf[OverlayOverhead:]
	outerHdr := buf[:OverlayOverhead]
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range payload {
			payload[j] = byte(i + j)
		}
		BuildTCPFrameInPlace(innerHdr, src, dst, uint16(i), uint32(i), 0, TCPAck, payloadLen)
		EncapVXLANInPlace(outerHdr, MAC{}, MAC{}, Addr4(10, 0, 0, 1), Addr4(10, 0, 0, 2), 1, uint16(i), inner)
	}
}

// BenchmarkDecapWire is the receive-side counterpart: validate one outer
// frame's full header stack and recover the inner frame as a subslice — a
// validated pull, no byte moved. Pinned at 0 B/op in bench_baseline.txt.
func BenchmarkDecapWire(b *testing.B) {
	frame := EncapVXLAN(MAC{}, MAC{}, Addr4(10, 0, 0, 1), Addr4(10, 0, 0, 2), 1, 0, benchInner)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := FrameLen(frame)
		if err != nil || n != len(frame) {
			b.Fatal("frame length validation failed")
		}
		vni, inner, err := DecapVXLAN(frame)
		if err != nil || vni != 1 || len(inner) != len(benchInner) {
			b.Fatal("decap failed")
		}
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	buf := make([]byte, 1500)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		_ = Checksum(buf)
	}
}

func BenchmarkParseInner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, _, _, err := ParseInner(benchInner); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalkFrames(b *testing.B) {
	var buf []byte
	for i := 0; i < 16; i++ {
		buf = append(buf, benchInner...)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WalkFrames(buf, func([]byte) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
