package packet

// FlowAddr identifies one end of a transport flow.
type FlowAddr struct {
	MAC  MAC
	IP   IPv4Addr
	Port uint16
}

// Inner frame header totals: the fixed prefix BuildUDPFrameInPlace /
// BuildTCPFrameInPlace write in front of the payload.
const (
	InnerUDPHeaderLen = EthernetHeaderLen + IPv4HeaderLen + UDPHeaderLen
	InnerTCPHeaderLen = EthernetHeaderLen + IPv4HeaderLen + TCPHeaderLen
)

// BuildUDPFrame assembles a complete inner Ethernet/IPv4/UDP frame carrying
// payload from src to dst.
func BuildUDPFrame(src, dst FlowAddr, ipID uint16, payload []byte) []byte {
	buf := make([]byte, InnerUDPHeaderLen+len(payload))
	copy(buf[InnerUDPHeaderLen:], payload)
	BuildUDPFrameInPlace(buf[:InnerUDPHeaderLen], src, dst, ipID, len(payload))
	return buf
}

// BuildUDPFrameInPlace writes the inner Ethernet/IPv4/UDP headers for a
// payload of payloadLen bytes into hdr (exactly InnerUDPHeaderLen bytes).
// On the zero-copy path hdr is skb headroom immediately preceding a
// payload already built in place, so no byte of payload moves.
func BuildUDPFrameInPlace(hdr []byte, src, dst FlowAddr, ipID uint16, payloadLen int) {
	if len(hdr) != InnerUDPHeaderLen {
		panic("packet: BuildUDPFrameInPlace hdr must be InnerUDPHeaderLen bytes")
	}
	buf := hdr[:0:len(hdr)]
	eth := Ethernet{Dst: dst.MAC, Src: src.MAC, EtherType: EtherTypeIPv4}
	buf = eth.Marshal(buf)
	ip := IPv4{
		TotalLen: uint16(IPv4HeaderLen + UDPHeaderLen + payloadLen),
		ID:       ipID,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      src.IP,
		Dst:      dst.IP,
	}
	buf = ip.Marshal(buf)
	udp := UDP{SrcPort: src.Port, DstPort: dst.Port, Length: uint16(UDPHeaderLen + payloadLen)}
	if buf = udp.Marshal(buf); len(buf) != InnerUDPHeaderLen {
		panic("packet: inner UDP header marshal did not fill the prefix exactly")
	}
}

// BuildTCPFrame assembles a complete inner Ethernet/IPv4/TCP frame carrying
// payload from src to dst with the given sequence number.
func BuildTCPFrame(src, dst FlowAddr, ipID uint16, seq, ack uint32, flags byte, payload []byte) []byte {
	buf := make([]byte, InnerTCPHeaderLen+len(payload))
	copy(buf[InnerTCPHeaderLen:], payload)
	BuildTCPFrameInPlace(buf[:InnerTCPHeaderLen], src, dst, ipID, seq, ack, flags, len(payload))
	return buf
}

// BuildTCPFrameInPlace writes the inner Ethernet/IPv4/TCP headers for a
// payload of payloadLen bytes into hdr (exactly InnerTCPHeaderLen bytes);
// the in-place counterpart of BuildTCPFrame.
func BuildTCPFrameInPlace(hdr []byte, src, dst FlowAddr, ipID uint16, seq, ack uint32, flags byte, payloadLen int) {
	if len(hdr) != InnerTCPHeaderLen {
		panic("packet: BuildTCPFrameInPlace hdr must be InnerTCPHeaderLen bytes")
	}
	buf := hdr[:0:len(hdr)]
	eth := Ethernet{Dst: dst.MAC, Src: src.MAC, EtherType: EtherTypeIPv4}
	buf = eth.Marshal(buf)
	ip := IPv4{
		TotalLen: uint16(IPv4HeaderLen + TCPHeaderLen + payloadLen),
		ID:       ipID,
		Flags:    FlagDF,
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      src.IP,
		Dst:      dst.IP,
	}
	buf = ip.Marshal(buf)
	tcp := TCP{SrcPort: src.Port, DstPort: dst.Port, Seq: seq, Ack: ack, Flags: flags, Window: 65535}
	if buf = tcp.Marshal(buf); len(buf) != InnerTCPHeaderLen {
		panic("packet: inner TCP header marshal did not fill the prefix exactly")
	}
}

// ParseInner decodes an inner Ethernet frame down to its transport payload,
// returning the headers encountered. tcp is meaningful only when
// ip.Protocol == ProtoTCP, udp only for ProtoUDP.
func ParseInner(frame []byte) (eth Ethernet, ip IPv4, tcp TCP, udp UDP, payload []byte, err error) {
	eth, p, err := ParseEthernet(frame)
	if err != nil {
		return
	}
	ip, p, err = ParseIPv4(p)
	if err != nil {
		return
	}
	switch ip.Protocol {
	case ProtoTCP:
		tcp, payload, err = ParseTCP(p)
	case ProtoUDP:
		udp, payload, err = ParseUDP(p)
	default:
		payload = p
	}
	return
}
