package packet

// FlowAddr identifies one end of a transport flow.
type FlowAddr struct {
	MAC  MAC
	IP   IPv4Addr
	Port uint16
}

// BuildUDPFrame assembles a complete inner Ethernet/IPv4/UDP frame carrying
// payload from src to dst.
func BuildUDPFrame(src, dst FlowAddr, ipID uint16, payload []byte) []byte {
	buf := make([]byte, 0, EthernetHeaderLen+IPv4HeaderLen+UDPHeaderLen+len(payload))
	eth := Ethernet{Dst: dst.MAC, Src: src.MAC, EtherType: EtherTypeIPv4}
	buf = eth.Marshal(buf)
	ip := IPv4{
		TotalLen: uint16(IPv4HeaderLen + UDPHeaderLen + len(payload)),
		ID:       ipID,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      src.IP,
		Dst:      dst.IP,
	}
	buf = ip.Marshal(buf)
	udp := UDP{SrcPort: src.Port, DstPort: dst.Port, Length: uint16(UDPHeaderLen + len(payload))}
	buf = udp.Marshal(buf)
	return append(buf, payload...)
}

// BuildTCPFrame assembles a complete inner Ethernet/IPv4/TCP frame carrying
// payload from src to dst with the given sequence number.
func BuildTCPFrame(src, dst FlowAddr, ipID uint16, seq, ack uint32, flags byte, payload []byte) []byte {
	buf := make([]byte, 0, EthernetHeaderLen+IPv4HeaderLen+TCPHeaderLen+len(payload))
	eth := Ethernet{Dst: dst.MAC, Src: src.MAC, EtherType: EtherTypeIPv4}
	buf = eth.Marshal(buf)
	ip := IPv4{
		TotalLen: uint16(IPv4HeaderLen + TCPHeaderLen + len(payload)),
		ID:       ipID,
		Flags:    FlagDF,
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      src.IP,
		Dst:      dst.IP,
	}
	buf = ip.Marshal(buf)
	tcp := TCP{SrcPort: src.Port, DstPort: dst.Port, Seq: seq, Ack: ack, Flags: flags, Window: 65535}
	buf = tcp.Marshal(buf)
	return append(buf, payload...)
}

// ParseInner decodes an inner Ethernet frame down to its transport payload,
// returning the headers encountered. tcp is meaningful only when
// ip.Protocol == ProtoTCP, udp only for ProtoUDP.
func ParseInner(frame []byte) (eth Ethernet, ip IPv4, tcp TCP, udp UDP, payload []byte, err error) {
	eth, p, err := ParseEthernet(frame)
	if err != nil {
		return
	}
	ip, p, err = ParseIPv4(p)
	if err != nil {
		return
	}
	switch ip.Protocol {
	case ProtoTCP:
		tcp, payload, err = ParseTCP(p)
	case ProtoUDP:
		udp, payload, err = ParseUDP(p)
	default:
		payload = p
	}
	return
}
