package packet

import "encoding/binary"

// IPv4 is a parsed IPv4 header (options are not used by the overlay).
type IPv4 struct {
	TOS      byte
	TotalLen uint16
	ID       uint16
	Flags    byte   // 3 bits: reserved, DF, MF
	FragOff  uint16 // 13 bits, in 8-byte units
	TTL      byte
	Protocol byte
	Src      IPv4Addr
	Dst      IPv4Addr
}

// IPv4 flag bits.
const (
	FlagDF = 0x2
	FlagMF = 0x1
)

// Checksum computes the Internet checksum (RFC 1071) over b, which must be
// the region to cover with its checksum field zeroed (or included, in which
// case a valid region sums to zero).
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Marshal appends the 20-byte header (with a freshly computed checksum) to
// buf and returns the extended slice. TotalLen must already be set.
func (h *IPv4) Marshal(buf []byte) []byte {
	start := len(buf)
	buf = append(buf,
		0x45, // version 4, IHL 5
		h.TOS,
	)
	buf = binary.BigEndian.AppendUint16(buf, h.TotalLen)
	buf = binary.BigEndian.AppendUint16(buf, h.ID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.Flags)<<13|h.FragOff&0x1fff)
	buf = append(buf, h.TTL, h.Protocol, 0, 0) // checksum placeholder
	buf = binary.BigEndian.AppendUint32(buf, uint32(h.Src))
	buf = binary.BigEndian.AppendUint32(buf, uint32(h.Dst))
	ck := Checksum(buf[start : start+IPv4HeaderLen])
	binary.BigEndian.PutUint16(buf[start+10:start+12], ck)
	return buf
}

// ParseIPv4 decodes and validates an IPv4 header, returning it along with
// the payload (bounded by TotalLen).
func ParseIPv4(b []byte) (IPv4, []byte, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4{}, nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return IPv4{}, nil, ErrBadVersion
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return IPv4{}, nil, ErrTruncated
	}
	if Checksum(b[:ihl]) != 0 {
		return IPv4{}, nil, ErrBadChecksum
	}
	var h IPv4
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = byte(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Src = IPv4Addr(binary.BigEndian.Uint32(b[12:16]))
	h.Dst = IPv4Addr(binary.BigEndian.Uint32(b[16:20]))
	if int(h.TotalLen) < ihl || int(h.TotalLen) > len(b) {
		return IPv4{}, nil, ErrTruncated
	}
	return h, b[ihl:h.TotalLen], nil
}
