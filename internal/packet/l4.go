package packet

import "encoding/binary"

// UDP is a parsed UDP header. The checksum is computed over the pseudo
// header as required by RFC 768 (a zero transmitted checksum means "none",
// which VxLAN commonly uses for the outer UDP header).
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// Marshal appends the header to buf. Length must already include the
// payload; Checksum is written as provided (0 = disabled).
func (u *UDP) Marshal(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, u.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, u.DstPort)
	buf = binary.BigEndian.AppendUint16(buf, u.Length)
	return binary.BigEndian.AppendUint16(buf, u.Checksum)
}

// ParseUDP decodes a UDP header and returns the payload bounded by Length.
func ParseUDP(b []byte) (UDP, []byte, error) {
	if len(b) < UDPHeaderLen {
		return UDP{}, nil, ErrTruncated
	}
	u := UDP{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Length:   binary.BigEndian.Uint16(b[4:6]),
		Checksum: binary.BigEndian.Uint16(b[6:8]),
	}
	if int(u.Length) < UDPHeaderLen || int(u.Length) > len(b) {
		return UDP{}, nil, ErrTruncated
	}
	return u, b[UDPHeaderLen:u.Length], nil
}

// TCP is a parsed TCP header (no options).
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   byte // FIN/SYN/RST/PSH/ACK/URG bits
	Window  uint16
}

// TCP flag bits.
const (
	TCPFin = 0x01
	TCPSyn = 0x02
	TCPRst = 0x04
	TCPPsh = 0x08
	TCPAck = 0x10
)

// Marshal appends the 20-byte header to buf.
func (t *TCP) Marshal(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, t.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, t.DstPort)
	buf = binary.BigEndian.AppendUint32(buf, t.Seq)
	buf = binary.BigEndian.AppendUint32(buf, t.Ack)
	buf = append(buf, 5<<4, t.Flags) // data offset 5 words
	buf = binary.BigEndian.AppendUint16(buf, t.Window)
	return append(buf, 0, 0, 0, 0) // checksum+urgent (checksum offloaded)
}

// ParseTCP decodes a TCP header and returns the payload.
func ParseTCP(b []byte) (TCP, []byte, error) {
	if len(b) < TCPHeaderLen {
		return TCP{}, nil, ErrTruncated
	}
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || len(b) < off {
		return TCP{}, nil, ErrTruncated
	}
	t := TCP{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:16]),
	}
	return t, b[off:], nil
}
