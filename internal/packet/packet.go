// Package packet implements the wire formats the container overlay network
// manipulates: Ethernet, IPv4 (with header checksums), UDP, TCP and VxLAN
// (RFC 7348). The overlay data path in this repository performs real
// encapsulation and decapsulation on these byte layouts — the simulator's
// cost model decides how long operations take, but correctness (headers,
// checksums, round-trips) is enforced on actual bytes so it can be tested.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header and address sizes in bytes.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20
	UDPHeaderLen      = 8
	TCPHeaderLen      = 20
	VXLANHeaderLen    = 8

	// VXLANPort is the IANA-assigned UDP destination port for VxLAN.
	VXLANPort = 4789

	// MTU is the standard Ethernet payload limit used throughout the
	// experiments (the paper's testbed uses 1500-byte MTU).
	MTU = 1500

	// OverlayOverhead is the extra bytes VxLAN encapsulation adds to every
	// frame: outer Ethernet + outer IPv4 + outer UDP + VxLAN header.
	OverlayOverhead = EthernetHeaderLen + IPv4HeaderLen + UDPHeaderLen + VXLANHeaderLen
)

// EtherType values used by the overlay.
const (
	EtherTypeIPv4 = 0x0800
)

// IP protocol numbers.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Errors returned by parsers.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrNotVXLAN    = errors.New("packet: not a VxLAN frame")
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String formats the address in the conventional colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4Addr is a 32-bit IPv4 address.
type IPv4Addr uint32

// Addr4 builds an IPv4Addr from dotted-quad components.
func Addr4(a, b, c, d byte) IPv4Addr {
	return IPv4Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String formats the address as a dotted quad.
func (ip IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Ethernet is a parsed Ethernet header.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// Marshal appends the header to buf and returns the extended slice.
func (e *Ethernet) Marshal(buf []byte) []byte {
	buf = append(buf, e.Dst[:]...)
	buf = append(buf, e.Src[:]...)
	return binary.BigEndian.AppendUint16(buf, e.EtherType)
}

// ParseEthernet decodes an Ethernet header and returns it with the payload.
func ParseEthernet(b []byte) (Ethernet, []byte, error) {
	if len(b) < EthernetHeaderLen {
		return Ethernet{}, nil, ErrTruncated
	}
	var e Ethernet
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return e, b[14:], nil
}
