package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x02, 0, 0, 0, 0, 0xaa}
	macB = MAC{0x02, 0, 0, 0, 0, 0xbb}
	ipA  = Addr4(10, 0, 0, 1)
	ipB  = Addr4(10, 0, 0, 2)
)

func TestEthernetRoundtrip(t *testing.T) {
	e := Ethernet{Dst: macB, Src: macA, EtherType: EtherTypeIPv4}
	buf := e.Marshal(nil)
	if len(buf) != EthernetHeaderLen {
		t.Fatalf("header len %d, want %d", len(buf), EthernetHeaderLen)
	}
	got, rest, err := ParseEthernet(append(buf, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("roundtrip mismatch: %+v vs %+v", got, e)
	}
	if !bytes.Equal(rest, []byte{1, 2, 3}) {
		t.Errorf("payload %v, want [1 2 3]", rest)
	}
}

func TestEthernetTruncated(t *testing.T) {
	if _, _, err := ParseEthernet(make([]byte, 13)); err != ErrTruncated {
		t.Errorf("got %v, want ErrTruncated", err)
	}
}

func TestIPv4Roundtrip(t *testing.T) {
	h := IPv4{
		TotalLen: IPv4HeaderLen + 4,
		ID:       0x1234,
		Flags:    FlagDF,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      ipA,
		Dst:      ipB,
	}
	buf := h.Marshal(nil)
	buf = append(buf, 0xde, 0xad, 0xbe, 0xef)
	got, payload, err := ParseIPv4(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, h)
	}
	if !bytes.Equal(payload, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Errorf("payload %x", payload)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	h := IPv4{TotalLen: IPv4HeaderLen, TTL: 64, Protocol: ProtoTCP, Src: ipA, Dst: ipB}
	buf := h.Marshal(nil)
	buf[8] ^= 0xff // corrupt TTL
	if _, _, err := ParseIPv4(buf); err != ErrBadChecksum {
		t.Errorf("got %v, want ErrBadChecksum", err)
	}
}

func TestIPv4BadVersion(t *testing.T) {
	h := IPv4{TotalLen: IPv4HeaderLen, TTL: 1, Src: ipA, Dst: ipB}
	buf := h.Marshal(nil)
	buf[0] = 0x65 // version 6
	if _, _, err := ParseIPv4(buf); err != ErrBadVersion {
		t.Errorf("got %v, want ErrBadVersion", err)
	}
}

func TestChecksumRFC1071Example(t *testing.T) {
	// RFC 1071 example bytes: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, ck 0x220d
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if ck := Checksum(b); ck != 0x220d {
		t.Errorf("checksum %04x, want 220d", ck)
	}
	// Odd length handled.
	if Checksum([]byte{0xff}) != ^uint16(0xff00) {
		t.Error("odd-length checksum wrong")
	}
}

func TestUDPRoundtrip(t *testing.T) {
	u := UDP{SrcPort: 5000, DstPort: VXLANPort, Length: UDPHeaderLen + 2, Checksum: 0}
	buf := u.Marshal(nil)
	buf = append(buf, 7, 8, 99) // 99 beyond Length — must be excluded
	got, payload, err := ParseUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Errorf("roundtrip mismatch: %+v vs %+v", got, u)
	}
	if !bytes.Equal(payload, []byte{7, 8}) {
		t.Errorf("payload %v, want [7 8]", payload)
	}
}

func TestTCPRoundtrip(t *testing.T) {
	h := TCP{SrcPort: 443, DstPort: 33000, Seq: 1 << 30, Ack: 77, Flags: TCPAck | TCPPsh, Window: 4096}
	buf := h.Marshal(nil)
	if len(buf) != TCPHeaderLen {
		t.Fatalf("header len %d, want %d", len(buf), TCPHeaderLen)
	}
	got, payload, err := ParseTCP(append(buf, 0xab))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip mismatch: %+v vs %+v", got, h)
	}
	if len(payload) != 1 || payload[0] != 0xab {
		t.Errorf("payload %v", payload)
	}
}

func TestVXLANRoundtrip(t *testing.T) {
	v := VXLAN{VNI: 0xabcdef}
	buf := v.Marshal(nil)
	got, inner, err := ParseVXLAN(append(buf, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.VNI != 0xabcdef {
		t.Errorf("VNI %06x, want abcdef", got.VNI)
	}
	if len(inner) != 1 {
		t.Errorf("inner %v", inner)
	}
}

func TestVXLANInvalidFlag(t *testing.T) {
	if _, _, err := ParseVXLAN(make([]byte, 8)); err != ErrNotVXLAN {
		t.Errorf("got %v, want ErrNotVXLAN", err)
	}
}

func TestEncapDecapVXLAN(t *testing.T) {
	src := FlowAddr{MAC: macA, IP: Addr4(172, 17, 0, 2), Port: 7777}
	dst := FlowAddr{MAC: macB, IP: Addr4(172, 17, 0, 3), Port: 8888}
	payload := []byte("hello overlay")
	inner := BuildUDPFrame(src, dst, 42, payload)

	frame := EncapVXLAN(macA, macB, ipA, ipB, 100, 7, inner)
	if len(frame) != len(inner)+OverlayOverhead {
		t.Errorf("frame len %d, want %d", len(frame), len(inner)+OverlayOverhead)
	}
	vni, gotInner, err := DecapVXLAN(frame)
	if err != nil {
		t.Fatal(err)
	}
	if vni != 100 {
		t.Errorf("vni %d, want 100", vni)
	}
	if !bytes.Equal(gotInner, inner) {
		t.Error("inner frame corrupted by encap/decap")
	}
	// And the inner parses down to the original payload.
	_, ih, _, uh, p, err := ParseInner(gotInner)
	if err != nil {
		t.Fatal(err)
	}
	if ih.Src != src.IP || ih.Dst != dst.IP || uh.DstPort != 8888 {
		t.Error("inner headers wrong after decap")
	}
	if !bytes.Equal(p, payload) {
		t.Errorf("payload %q, want %q", p, payload)
	}
}

func TestDecapRejectsNonVXLAN(t *testing.T) {
	src := FlowAddr{MAC: macA, IP: ipA, Port: 1}
	dst := FlowAddr{MAC: macB, IP: ipB, Port: 2}
	frame := BuildUDPFrame(src, dst, 0, []byte("plain")) // dst port 2 != 4789
	if _, _, err := DecapVXLAN(frame); err != ErrNotVXLAN {
		t.Errorf("got %v, want ErrNotVXLAN", err)
	}
	tcpFrame := BuildTCPFrame(src, dst, 0, 1, 0, TCPAck, nil)
	if _, _, err := DecapVXLAN(tcpFrame); err != ErrNotVXLAN {
		t.Errorf("tcp frame: got %v, want ErrNotVXLAN", err)
	}
}

func TestBuildTCPFrameParses(t *testing.T) {
	src := FlowAddr{MAC: macA, IP: ipA, Port: 50000}
	dst := FlowAddr{MAC: macB, IP: ipB, Port: 80}
	frame := BuildTCPFrame(src, dst, 9, 1000, 555, TCPAck, []byte("GET /"))
	_, ih, th, _, p, err := ParseInner(frame)
	if err != nil {
		t.Fatal(err)
	}
	if ih.Protocol != ProtoTCP || th.Seq != 1000 || th.Ack != 555 {
		t.Errorf("headers wrong: %+v %+v", ih, th)
	}
	if string(p) != "GET /" {
		t.Errorf("payload %q", p)
	}
}

func TestSourcePortEntropy(t *testing.T) {
	src := FlowAddr{MAC: macA, IP: ipA, Port: 1000}
	dst := FlowAddr{MAC: macB, IP: ipB, Port: 2000}
	f1 := BuildUDPFrame(src, dst, 0, []byte("x"))
	src2 := src
	src2.Port = 1001
	f2 := BuildUDPFrame(src2, dst, 0, []byte("x"))
	p1, p2 := SourcePortFor(f1), SourcePortFor(f2)
	if p1 < 49152 || p2 < 49152 {
		t.Errorf("source ports %d/%d below dynamic range", p1, p2)
	}
	if p1 == p2 {
		t.Error("different flows should (almost surely) hash to different ports")
	}
	if SourcePortFor(f1) != p1 {
		t.Error("source port must be deterministic per flow")
	}
}

// Property: encap/decap round-trips arbitrary payloads of any size.
func TestEncapDecapProperty(t *testing.T) {
	src := FlowAddr{MAC: macA, IP: ipA, Port: 1234}
	dst := FlowAddr{MAC: macB, IP: ipB, Port: 4321}
	f := func(payload []byte, vni uint32, id uint16) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		vni &= 0xffffff
		inner := BuildUDPFrame(src, dst, id, payload)
		frame := EncapVXLAN(macA, macB, ipA, ipB, vni, id, inner)
		gotVNI, gotInner, err := DecapVXLAN(frame)
		return err == nil && gotVNI == vni && bytes.Equal(gotInner, inner)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: IPv4 marshal/parse round-trips arbitrary header fields.
func TestIPv4RoundtripProperty(t *testing.T) {
	f := func(tos, ttl, proto byte, id uint16, src, dst uint32, payloadLen uint16) bool {
		pl := int(payloadLen % 512)
		h := IPv4{
			TOS: tos, TotalLen: uint16(IPv4HeaderLen + pl), ID: id,
			TTL: ttl, Protocol: proto,
			Src: IPv4Addr(src), Dst: IPv4Addr(dst),
		}
		buf := h.Marshal(nil)
		buf = append(buf, make([]byte, pl)...)
		got, payload, err := ParseIPv4(buf)
		return err == nil && got == h && len(payload) == pl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrFormatting(t *testing.T) {
	if s := Addr4(192, 168, 1, 20).String(); s != "192.168.1.20" {
		t.Errorf("IP string %q", s)
	}
	if s := macA.String(); s != "02:00:00:00:00:aa" {
		t.Errorf("MAC string %q", s)
	}
}
