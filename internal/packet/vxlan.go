package packet

import "encoding/binary"

// VXLAN is the 8-byte VxLAN header (RFC 7348): one valid-VNI flag bit and a
// 24-bit VxLAN Network Identifier.
type VXLAN struct {
	VNI uint32 // 24 bits
}

const vxlanFlagValidVNI = 0x08

// Marshal appends the header to buf.
func (v *VXLAN) Marshal(buf []byte) []byte {
	buf = append(buf, vxlanFlagValidVNI, 0, 0, 0)
	return binary.BigEndian.AppendUint32(buf, v.VNI<<8)
}

// ParseVXLAN decodes a VxLAN header and returns the inner frame.
func ParseVXLAN(b []byte) (VXLAN, []byte, error) {
	if len(b) < VXLANHeaderLen {
		return VXLAN{}, nil, ErrTruncated
	}
	if b[0]&vxlanFlagValidVNI == 0 {
		return VXLAN{}, nil, ErrNotVXLAN
	}
	return VXLAN{VNI: binary.BigEndian.Uint32(b[4:8]) >> 8}, b[8:], nil
}

// EncapVXLAN wraps an inner Ethernet frame in outer Ethernet/IPv4/UDP/VxLAN
// headers, exactly as the kernel's vxlan device does on transmit. The outer
// UDP source port is derived from a hash of the inner frame (flow entropy
// for RSS/ECMP, per RFC 7348 §5); the outer UDP checksum is zero as is
// conventional for VxLAN over IPv4.
func EncapVXLAN(outerSrcMAC, outerDstMAC MAC, outerSrc, outerDst IPv4Addr, vni uint32, ipID uint16, inner []byte) []byte {
	buf := make([]byte, OverlayOverhead+len(inner))
	copy(buf[OverlayOverhead:], inner)
	EncapVXLANInPlace(buf[:OverlayOverhead], outerSrcMAC, outerDstMAC, outerSrc, outerDst, vni, ipID, buf[OverlayOverhead:])
	return buf
}

// EncapVXLANInPlace writes the outer Ethernet/IPv4/UDP/VxLAN headers for
// inner into hdr — the marshal-into-prefix form of EncapVXLAN. hdr must be
// exactly OverlayOverhead bytes; on the zero-copy path it is the headroom
// an skb.Push(OverlayOverhead) just exposed immediately in front of inner,
// so encapsulation is pure offset arithmetic plus a 50-byte header write,
// with no allocation and no payload copy (the kernel's skb_push shape).
func EncapVXLANInPlace(hdr []byte, outerSrcMAC, outerDstMAC MAC, outerSrc, outerDst IPv4Addr, vni uint32, ipID uint16, inner []byte) {
	if len(hdr) != OverlayOverhead {
		panic("packet: EncapVXLANInPlace hdr must be OverlayOverhead bytes")
	}
	buf := hdr[:0:len(hdr)]
	eth := Ethernet{Dst: outerDstMAC, Src: outerSrcMAC, EtherType: EtherTypeIPv4}
	buf = eth.Marshal(buf)
	ip := IPv4{
		TotalLen: uint16(IPv4HeaderLen + UDPHeaderLen + VXLANHeaderLen + len(inner)),
		ID:       ipID,
		Flags:    FlagDF,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      outerSrc,
		Dst:      outerDst,
	}
	buf = ip.Marshal(buf)
	udp := UDP{
		SrcPort: SourcePortFor(inner),
		DstPort: VXLANPort,
		Length:  uint16(UDPHeaderLen + VXLANHeaderLen + len(inner)),
	}
	buf = udp.Marshal(buf)
	vx := VXLAN{VNI: vni}
	if buf = vx.Marshal(buf); len(buf) != OverlayOverhead {
		panic("packet: outer header marshal did not fill the prefix exactly")
	}
}

// DecapVXLAN validates and strips the outer Ethernet/IPv4/UDP/VxLAN headers
// of frame, returning the VNI and the inner Ethernet frame. It is the
// receive-side counterpart of EncapVXLAN.
func DecapVXLAN(frame []byte) (vni uint32, inner []byte, err error) {
	_, p, err := ParseEthernet(frame)
	if err != nil {
		return 0, nil, err
	}
	ih, p, err := ParseIPv4(p)
	if err != nil {
		return 0, nil, err
	}
	if ih.Protocol != ProtoUDP {
		return 0, nil, ErrNotVXLAN
	}
	uh, p, err := ParseUDP(p)
	if err != nil {
		return 0, nil, err
	}
	if uh.DstPort != VXLANPort {
		return 0, nil, ErrNotVXLAN
	}
	vh, p, err := ParseVXLAN(p)
	if err != nil {
		return 0, nil, err
	}
	return vh.VNI, p, nil
}

// SourcePortFor hashes an inner frame's first bytes into the dynamic port
// range, providing the per-flow entropy the outer header carries.
func SourcePortFor(inner []byte) uint16 {
	var h uint32 = 2166136261
	n := len(inner)
	if n > 38 { // inner eth + ip headers + L4 ports carry the flow identity
		n = 38
	}
	for _, b := range inner[:n] {
		h = (h ^ uint32(b)) * 16777619
	}
	return uint16(49152 + h%16384)
}
