package packet

// FrameLen returns the total length of the Ethernet frame at the start of
// b (Ethernet header + the IPv4 TotalLen), without validating checksums.
func FrameLen(b []byte) (int, error) {
	if len(b) < EthernetHeaderLen+IPv4HeaderLen {
		return 0, ErrTruncated
	}
	ipb := b[EthernetHeaderLen:]
	if ipb[0]>>4 != 4 {
		return 0, ErrBadVersion
	}
	total := int(uint16(ipb[2])<<8 | uint16(ipb[3]))
	if total < IPv4HeaderLen {
		return 0, ErrTruncated
	}
	n := EthernetHeaderLen + total
	if n > len(b) {
		return 0, ErrTruncated
	}
	return n, nil
}

// WalkFrames invokes fn for every back-to-back Ethernet frame in b (the
// layout GRO produces when it coalesces segments). It stops at the first
// malformed frame, returning the error.
func WalkFrames(b []byte, fn func(frame []byte) error) error {
	for len(b) > 0 {
		n, err := FrameLen(b)
		if err != nil {
			return err
		}
		if err := fn(b[:n]); err != nil {
			return err
		}
		b = b[n:]
	}
	return nil
}

// DecapVXLANAll decapsulates every back-to-back outer frame in b (a GRO
// super-packet of encapsulated segments), returning the concatenated inner
// frames. Every frame must carry the same VNI, which is returned.
func DecapVXLANAll(b []byte) (vni uint32, inner []byte, err error) {
	// Pre-size inner from a frame-length walk: every valid outer frame
	// sheds exactly OverlayOverhead bytes, so the output size is known
	// before any byte moves. (A bare append here re-copied the
	// accumulated prefix on every growth step — quadratic in segments.)
	frames := 0
	if err := WalkFrames(b, func([]byte) error { frames++; return nil }); err != nil {
		return 0, nil, err
	}
	if n := len(b) - frames*OverlayOverhead; n > 0 {
		inner = make([]byte, 0, n)
	}
	first := true
	err = WalkFrames(b, func(frame []byte) error {
		v, in, err := DecapVXLAN(frame)
		if err != nil {
			return err
		}
		if first {
			vni = v
			first = false
		} else if v != vni {
			return ErrNotVXLAN
		}
		inner = append(inner, in...)
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	return vni, inner, nil
}

// PayloadBytes walks the back-to-back inner frames in b and sums their
// transport payload lengths — the application bytes a receiver would copy
// to user space.
func PayloadBytes(b []byte) (int, error) {
	total := 0
	err := WalkFrames(b, func(frame []byte) error {
		_, _, _, _, payload, err := ParseInner(frame)
		if err != nil {
			return err
		}
		total += len(payload)
		return nil
	})
	return total, err
}
