package packet

import (
	"bytes"
	"testing"
)

func frames(t *testing.T, payloads ...string) []byte {
	t.Helper()
	src := FlowAddr{MAC: macA, IP: ipA, Port: 1111}
	dst := FlowAddr{MAC: macB, IP: ipB, Port: 2222}
	var buf []byte
	for i, p := range payloads {
		buf = append(buf, BuildUDPFrame(src, dst, uint16(i), []byte(p))...)
	}
	return buf
}

func TestFrameLen(t *testing.T) {
	b := frames(t, "hello")
	n, err := FrameLen(b)
	if err != nil {
		t.Fatal(err)
	}
	want := EthernetHeaderLen + IPv4HeaderLen + UDPHeaderLen + 5
	if n != want {
		t.Errorf("FrameLen=%d, want %d", n, want)
	}
	if _, err := FrameLen(b[:10]); err != ErrTruncated {
		t.Errorf("truncated: %v", err)
	}
	bad := append([]byte(nil), b...)
	bad[EthernetHeaderLen] = 0x60
	if _, err := FrameLen(bad); err != ErrBadVersion {
		t.Errorf("bad version: %v", err)
	}
}

func TestWalkFrames(t *testing.T) {
	b := frames(t, "one", "twotwo", "three33")
	var got []int
	err := WalkFrames(b, func(f []byte) error {
		got = append(got, len(f))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("walked %d frames, want 3", len(got))
	}
	// Truncated tail stops the walk with an error.
	if err := WalkFrames(b[:len(b)-2], func([]byte) error { return nil }); err == nil {
		t.Error("truncated walk should fail")
	}
}

func TestPayloadBytes(t *testing.T) {
	b := frames(t, "abc", "defgh")
	n, err := PayloadBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("payload %d bytes, want 8", n)
	}
}

func TestDecapVXLANAll(t *testing.T) {
	inner1 := BuildUDPFrame(FlowAddr{MAC: macA, IP: ipA, Port: 1}, FlowAddr{MAC: macB, IP: ipB, Port: 2}, 0, []byte("aa"))
	inner2 := BuildUDPFrame(FlowAddr{MAC: macA, IP: ipA, Port: 1}, FlowAddr{MAC: macB, IP: ipB, Port: 2}, 1, []byte("bbbb"))
	buf := EncapVXLAN(macA, macB, ipA, ipB, 9, 0, inner1)
	buf = append(buf, EncapVXLAN(macA, macB, ipA, ipB, 9, 1, inner2)...)

	vni, inner, err := DecapVXLANAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if vni != 9 {
		t.Errorf("vni=%d", vni)
	}
	if !bytes.Equal(inner, append(append([]byte(nil), inner1...), inner2...)) {
		t.Error("concatenated inner frames corrupted")
	}
	// Mixed VNIs must be rejected.
	mixed := EncapVXLAN(macA, macB, ipA, ipB, 9, 0, inner1)
	mixed = append(mixed, EncapVXLAN(macA, macB, ipA, ipB, 10, 1, inner2)...)
	if _, _, err := DecapVXLANAll(mixed); err == nil {
		t.Error("mixed VNIs should fail")
	}
}
