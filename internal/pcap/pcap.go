// Package pcap writes (and reads back) libpcap capture files so wire-mode
// simulations can be inspected with standard tooling (tcpdump/wireshark).
// Only the classic little-endian pcap format with Ethernet link type is
// implemented — all this repository needs.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mflow/internal/sim"
)

const (
	magicLE        = 0xa1b2c3d4
	versionMajor   = 2
	versionMinor   = 4
	linkEthernet   = 1
	defaultSnapLen = 65535
)

// ErrBadMagic reports a capture file that is not little-endian classic pcap.
var ErrBadMagic = errors.New("pcap: bad magic")

// Writer streams packets into a pcap capture.
type Writer struct {
	w       io.Writer
	snap    uint32
	started bool
	// Packets counts records written.
	Packets uint64
}

// NewWriter returns a Writer targeting w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, snap: defaultSnapLen}
}

func (w *Writer) header() error {
	var h [24]byte
	binary.LittleEndian.PutUint32(h[0:], magicLE)
	binary.LittleEndian.PutUint16(h[4:], versionMajor)
	binary.LittleEndian.PutUint16(h[6:], versionMinor)
	// thiszone=0, sigfigs=0
	binary.LittleEndian.PutUint32(h[16:], w.snap)
	binary.LittleEndian.PutUint32(h[20:], linkEthernet)
	_, err := w.w.Write(h[:])
	return err
}

// WritePacket appends one frame captured at the given simulated instant.
func (w *Writer) WritePacket(at sim.Time, frame []byte) error {
	if !w.started {
		if err := w.header(); err != nil {
			return err
		}
		w.started = true
	}
	capLen := uint32(len(frame))
	if capLen > w.snap {
		capLen = w.snap
	}
	var h [16]byte
	sec := uint32(int64(at) / int64(sim.Second))
	usec := uint32(int64(at) % int64(sim.Second) / 1000)
	binary.LittleEndian.PutUint32(h[0:], sec)
	binary.LittleEndian.PutUint32(h[4:], usec)
	binary.LittleEndian.PutUint32(h[8:], capLen)
	binary.LittleEndian.PutUint32(h[12:], uint32(len(frame)))
	if _, err := w.w.Write(h[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(frame[:capLen]); err != nil {
		return err
	}
	w.Packets++
	return nil
}

// Packet is one record read back from a capture.
type Packet struct {
	At      sim.Time
	OrigLen int
	Data    []byte
}

// Read parses an entire capture produced by Writer.
func Read(r io.Reader) ([]Packet, error) {
	var h [24]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(h[0:]) != magicLE {
		return nil, ErrBadMagic
	}
	if lt := binary.LittleEndian.Uint32(h[20:]); lt != linkEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	var out []Packet
	for {
		var ph [16]byte
		if _, err := io.ReadFull(r, ph[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		sec := binary.LittleEndian.Uint32(ph[0:])
		usec := binary.LittleEndian.Uint32(ph[4:])
		capLen := binary.LittleEndian.Uint32(ph[8:])
		origLen := binary.LittleEndian.Uint32(ph[12:])
		data := make([]byte, capLen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, err
		}
		out = append(out, Packet{
			At:      sim.Time(int64(sec)*int64(sim.Second) + int64(usec)*1000),
			OrigLen: int(origLen),
			Data:    data,
		})
	}
}
