package pcap

import (
	"bytes"
	"testing"
	"testing/quick"

	"mflow/internal/packet"
	"mflow/internal/sim"
)

func TestRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	src := packet.FlowAddr{MAC: packet.MAC{2, 0, 0, 0, 0, 1}, IP: packet.Addr4(10, 0, 0, 1), Port: 1}
	dst := packet.FlowAddr{MAC: packet.MAC{2, 0, 0, 0, 0, 2}, IP: packet.Addr4(10, 0, 0, 2), Port: 2}
	f1 := packet.BuildUDPFrame(src, dst, 1, []byte("hello"))
	f2 := packet.BuildUDPFrame(src, dst, 2, []byte("world!!"))

	if err := w.WritePacket(sim.Time(1_500_000), f1); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(sim.Time(2*sim.Second+3000), f2); err != nil {
		t.Fatal(err)
	}
	if w.Packets != 2 {
		t.Errorf("Packets=%d", w.Packets)
	}

	pkts, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 {
		t.Fatalf("read %d packets", len(pkts))
	}
	if !bytes.Equal(pkts[0].Data, f1) || !bytes.Equal(pkts[1].Data, f2) {
		t.Error("frame bytes corrupted")
	}
	// Timestamps survive at microsecond resolution.
	if pkts[0].At != sim.Time(1_500_000) {
		t.Errorf("t0=%v", pkts[0].At)
	}
	if pkts[1].At != sim.Time(2*sim.Second+3000) {
		t.Errorf("t1=%v, want 2s+3µs", pkts[1].At)
	}
	if pkts[1].OrigLen != len(f2) {
		t.Errorf("origLen=%d", pkts[1].OrigLen)
	}
}

func TestSnapLenTruncates(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.snap = 10
	frame := make([]byte, 100)
	if err := w.WritePacket(0, frame); err != nil {
		t.Fatal(err)
	}
	pkts, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts[0].Data) != 10 || pkts[0].OrigLen != 100 {
		t.Errorf("snap failed: cap=%d orig=%d", len(pkts[0].Data), pkts[0].OrigLen)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader(make([]byte, 24))); err != ErrBadMagic {
		t.Errorf("got %v, want ErrBadMagic", err)
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
}

func TestHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	h := buf.Bytes()
	if h[0] != 0xd4 || h[1] != 0xc3 || h[2] != 0xb2 || h[3] != 0xa1 {
		t.Error("magic not little-endian classic pcap")
	}
	if h[20] != 1 {
		t.Error("link type not Ethernet")
	}
}

// Property: any sequence of frames round-trips with preserved bytes/order.
func TestRoundtripProperty(t *testing.T) {
	f := func(frames [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i, fr := range frames {
			if err := w.WritePacket(sim.Time(i)*1000, fr); err != nil {
				return false
			}
		}
		if len(frames) == 0 {
			return true // nothing written, nothing to read
		}
		pkts, err := Read(&buf)
		if err != nil || len(pkts) != len(frames) {
			return false
		}
		for i := range frames {
			if !bytes.Equal(pkts[i].Data, frames[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
