// Package prof wires Go's pprof profilers into the command-line tools so a
// slow benchmark run can be diagnosed directly: mflowbench/mflowsim take
// -cpuprofile/-memprofile flags and hand the paths here.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a stop
// function that ends the CPU profile and writes an allocation profile to
// memPath (when non-empty). Call stop at the end of the phase being
// profiled — explicitly, before any os.Exit path, so the profiles are
// complete even when the command exits non-zero.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // flush recently freed objects before snapshotting
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		}
	}, nil
}
