package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to say.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	stop()
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestStartNoPathsIsNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop() // must not panic or write anything
}

func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "missing", "cpu.pprof"), ""); err == nil {
		t.Fatal("expected error for uncreatable profile path")
	}
}
