package proto

import (
	"testing"
	"testing/quick"

	"mflow/internal/netdev"
	"mflow/internal/sim"
	"mflow/internal/skb"
)

func seg(seq uint64, segs int) *skb.SKB {
	return &skb.SKB{FlowID: 1, Proto: skb.TCP, Seq: seq, Segs: segs, WireLen: 1500 * segs, PayloadLen: 1448 * segs}
}

func TestTCPReceiverInOrderPassthrough(t *testing.T) {
	var got []uint64
	r := &TCPReceiver{Deliver: func(s *skb.SKB) { got = append(got, s.Seq) }}
	for i := uint64(0); i < 5; i++ {
		r.Rx(seg(i, 1), nil)
	}
	if len(got) != 5 || r.OOOArrivals != 0 {
		t.Fatalf("got %v ooo=%d", got, r.OOOArrivals)
	}
	if r.Expected != 5 {
		t.Errorf("Expected=%d, want 5", r.Expected)
	}
}

func TestTCPReceiverReordersAndDrains(t *testing.T) {
	var got []uint64
	r := &TCPReceiver{Deliver: func(s *skb.SKB) { got = append(got, s.Seq) }}
	r.Rx(seg(2, 1), nil)
	r.Rx(seg(1, 1), nil)
	if len(got) != 0 {
		t.Fatal("nothing in order yet")
	}
	r.Rx(seg(0, 1), nil)
	want := []uint64{0, 1, 2}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", got, want)
		}
	}
	if r.OOOArrivals != 2 {
		t.Errorf("OOOArrivals=%d, want 2", r.OOOArrivals)
	}
	if r.OOOPeak != 2 {
		t.Errorf("OOOPeak=%d, want 2", r.OOOPeak)
	}
	if r.Pending() != 0 {
		t.Errorf("Pending=%d, want 0", r.Pending())
	}
}

func TestTCPReceiverMergedSKBRanges(t *testing.T) {
	var got []uint64
	r := &TCPReceiver{Deliver: func(s *skb.SKB) { got = append(got, s.Seq) }}
	r.Rx(seg(0, 4), nil) // covers 0-3
	r.Rx(seg(8, 2), nil) // ooo
	r.Rx(seg(4, 4), nil) // covers 4-7, drains 8-9
	if len(got) != 3 || r.Expected != 10 {
		t.Fatalf("got %v expected=%d", got, r.Expected)
	}
}

func TestTCPReceiverChargesOOOCost(t *testing.T) {
	s := sim.NewScheduler(1)
	core := sim.NewCore(1, s)
	r := &TCPReceiver{OOOQueueCost: 100, Deliver: func(*skb.SKB) {}}
	s.At(0, func() {
		r.Rx(seg(1, 1), core) // park: +100
		r.Rx(seg(0, 1), core) // deliver + drain: +100
	})
	s.Run()
	if core.BusyTotal() != 200 {
		t.Errorf("ooo cost charged %v, want 200", core.BusyTotal())
	}
	if core.BusyByTag()["tcp-ofo"] != 200 {
		t.Error("ooo cost not tagged tcp-ofo")
	}
}

// Property: any permutation of contiguous segments is delivered exactly
// once, in order — TCP's invariant under arbitrary reordering.
func TestTCPReceiverPermutationProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := sim.NewRand(seed)
		perm := r.Perm(n)
		var got []uint64
		rx := &TCPReceiver{Deliver: func(s *skb.SKB) { got = append(got, s.Seq) }}
		for _, p := range perm {
			rx.Rx(seg(uint64(p), 1), nil)
		}
		if len(got) != n || rx.Pending() != 0 {
			return false
		}
		for i, v := range got {
			if v != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUDPReceiverDeliversEverythingCountsOOO(t *testing.T) {
	var got []uint64
	r := &UDPReceiver{Deliver: func(s *skb.SKB) { got = append(got, s.Seq) }}
	for _, q := range []uint64{0, 2, 1, 3} {
		r.Rx(seg(q, 1), nil)
	}
	if len(got) != 4 {
		t.Fatalf("UDP must deliver all, got %d", len(got))
	}
	if got[1] != 2 || got[2] != 1 {
		t.Error("UDP must not reorder")
	}
	if r.OOOArrivals != 1 {
		t.Errorf("OOOArrivals=%d, want 1", r.OOOArrivals)
	}
}

func TestSocketDeliveryAndLatency(t *testing.T) {
	s := sim.NewScheduler(1)
	core := sim.NewCore(0, s)
	sock := NewSocket(skb.TCP, core, s, netdev.Cost{PerByte: 0.1}, 0)
	var acked uint64
	sock.Ack = func(end uint64, _ sim.Time) { acked = end }
	var msgs []uint64
	sock.OnMessage = func(id uint64, _ *skb.SKB, _ sim.Time) { msgs = append(msgs, id) }

	s.At(0, func() {
		a := seg(0, 1)
		a.SentAt = 0
		a.MsgID = 7
		a.MsgEnd = true
		sock.Enqueue(a)
	})
	s.Run()
	if sock.Bytes != 1448 || sock.Msgs != 1 || sock.Packets != 1 {
		t.Errorf("counters: %d bytes %d msgs %d pkts", sock.Bytes, sock.Msgs, sock.Packets)
	}
	if acked != 1 {
		t.Errorf("acked=%d, want 1", acked)
	}
	if len(msgs) != 1 || msgs[0] != 7 {
		t.Errorf("OnMessage got %v", msgs)
	}
	if sock.Latency.Count() != 1 {
		t.Error("latency not recorded")
	}
	// copy cost 0.1 ns/byte * 1500 wire bytes = 150ns busy on core0
	if core.BusyTotal() != 150 {
		t.Errorf("copy charged %v, want 150", core.BusyTotal())
	}
}

func TestSocketBoundedQueueDrops(t *testing.T) {
	s := sim.NewScheduler(1)
	core := sim.NewCore(0, s)
	sock := NewSocket(skb.UDP, core, s, netdev.Cost{PerSKB: 1000}, 4)
	s.At(0, func() {
		for i := uint64(0); i < 10; i++ {
			sock.Enqueue(seg(i, 1))
		}
	})
	s.Run()
	if sock.Dropped() != 6 {
		t.Errorf("Dropped=%d, want 6", sock.Dropped())
	}
}

func TestSocketNonFinalSegmentsNoMessage(t *testing.T) {
	s := sim.NewScheduler(1)
	core := sim.NewCore(0, s)
	sock := NewSocket(skb.TCP, core, s, netdev.Cost{}, 0)
	s.At(0, func() {
		sock.Enqueue(seg(0, 1)) // MsgEnd false
	})
	s.Run()
	if sock.Msgs != 0 || sock.Latency.Count() != 0 {
		t.Error("non-final segment must not complete a message")
	}
	if sock.Bytes != 1448 {
		t.Error("bytes still counted")
	}
}
