package proto

import (
	"mflow/internal/metrics"
	"mflow/internal/netdev"
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// Socket is the user-space boundary: a receive queue drained by the
// application's receiving thread, which copies payload out of kernel buffers
// at a per-byte cost. The thread is bonded to one core (conventionally core
// 0, per the paper's figures) and is deliberately not parallelized — the
// paper's conclusion names this single data-copying thread as the next
// bottleneck once MFLOW removes the softirq one.
type Socket struct {
	// Proto is the transport protocol the socket serves.
	Proto skb.Proto
	// Ack, when set (TCP), is invoked with the cumulative consumed
	// sequence after each delivery, clocking the sender's window open.
	Ack AckFn
	// OnMessage fires when a message's final segment reaches user space.
	OnMessage func(msgID uint64, s *skb.SKB, at sim.Time)
	// Verify, if set, checks each delivered skb (wire-mode integrity);
	// failures increment VerifyErrors and record FirstVerifyErr.
	Verify func(*skb.SKB) error
	// Tap, if set, observes every delivered skb (tracing).
	Tap func(*skb.SKB, sim.Time)
	// Recycle, if set, receives each skb after user-space delivery — the
	// pipeline's terminal ownership point — so the run's pool can reuse
	// it. Delivery callbacks (Tap, OnMessage) must not retain the skb.
	Recycle func(*skb.SKB)

	// VerifyErrors counts failed integrity checks.
	VerifyErrors   uint64
	FirstVerifyErr error

	// Latency records per-message delivery latency (ns).
	Latency *metrics.Histogram
	// Bytes / Msgs / Packets count delivered traffic.
	Bytes   uint64
	Msgs    uint64
	Packets uint64
	// OOODelivered counts skbs that reached user space with a sequence
	// below one already delivered — for TCP this must stay zero even
	// under fault injection (the in-order contract).
	OOODelivered uint64

	maxEnd uint64

	worker *sim.Worker[*skb.SKB]
	extra  []*sim.Worker[*skb.SKB]
	rr     int
	sched  *sim.Scheduler
}

// NewSocket builds a socket whose receiving thread runs on core with the
// given per-copy cost model. queueCap bounds the receive queue (0 =
// unbounded; UDP sockets drop beyond it like rmem overflow).
func NewSocket(proto skb.Proto, core *sim.Core, sched *sim.Scheduler, copyCost netdev.Cost, queueCap int) *Socket {
	s := &Socket{
		Proto:   proto,
		Latency: metrics.NewHistogram(),
		sched:   sched,
	}
	s.worker = sim.NewWorker("copy", core, sched,
		func(sk *skb.SKB) sim.Duration { return copyCost.Of(sk) },
		s.delivered)
	s.worker.Cap = queueCap
	return s
}

// Worker exposes the receive-queue worker so topologies can retarget or
// instrument it (e.g. MFLOW attaches its merge step to this thread).
func (s *Socket) Worker() *sim.Worker[*skb.SKB] { return s.worker }

// Workers returns every delivery-copy worker, primary first, so
// instrumentation (the causal profiler's sock-wait/copy split) can observe
// all copy threads.
func (s *Socket) Workers() []*sim.Worker[*skb.SKB] {
	return append([]*sim.Worker[*skb.SKB]{s.worker}, s.extra...)
}

// AddCopyThread adds a parallel delivery-copy thread on core with the same
// cost model — the paper's future-work extension for the single
// data-copying thread bottleneck. Deliveries round-robin across threads.
func (s *Socket) AddCopyThread(core *sim.Core, copyCost netdev.Cost, queueCap int) {
	w := sim.NewWorker("copy", core, s.sched,
		func(sk *skb.SKB) sim.Duration { return copyCost.Of(sk) },
		s.delivered)
	w.Cap = queueCap
	s.extra = append(s.extra, w)
}

// CopyThreads returns the number of delivery threads (>= 1).
func (s *Socket) CopyThreads() int { return 1 + len(s.extra) }

// Enqueue places an in-order skb on the receive queue (round-robin across
// copy threads when parallel delivery is enabled). It reports false if the
// bounded queue overflowed (datagram dropped).
func (s *Socket) Enqueue(sk *skb.SKB) bool {
	if len(s.extra) == 0 {
		return s.worker.Enqueue(sk)
	}
	n := 1 + len(s.extra)
	i := s.rr % n
	s.rr++
	if i == 0 {
		return s.worker.Enqueue(sk)
	}
	return s.extra[i-1].Enqueue(sk)
}

// Gate installs an admission gate on every copy-thread queue — fault
// injection's socket-drop point. Call after AddCopyThread.
func (s *Socket) Gate(g func(*skb.SKB) bool) {
	s.worker.Gate = g
	for _, w := range s.extra {
		w.Gate = g
	}
}

// Dropped returns the number of skbs lost to receive-queue overflow.
func (s *Socket) Dropped() uint64 {
	d := s.worker.Dropped
	for _, w := range s.extra {
		d += w.Dropped
	}
	return d
}

func (s *Socket) delivered(sk *skb.SKB, at sim.Time) {
	if s.Tap != nil {
		s.Tap(sk, at)
	}
	if s.Verify != nil {
		if err := s.Verify(sk); err != nil {
			s.VerifyErrors++
			if s.FirstVerifyErr == nil {
				s.FirstVerifyErr = err
			}
		}
	}
	if sk.Seq < s.maxEnd {
		s.OOODelivered++
	}
	if end := sk.EndSeq(); end > s.maxEnd {
		s.maxEnd = end
	}
	s.Bytes += uint64(sk.PayloadLen)
	s.Packets += uint64(sk.Segs)
	if sk.MsgEnd {
		s.Msgs++
		s.Latency.Record(int64(at.Sub(sk.SentAt)))
		if s.OnMessage != nil {
			s.OnMessage(sk.MsgID, sk, at)
		}
	}
	if s.Ack != nil {
		s.Ack(sk.EndSeq(), at)
	}
	if s.Recycle != nil {
		s.Recycle(sk)
	}
}
