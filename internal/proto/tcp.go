// Package proto implements the stateful tail of the receive path: the TCP
// receive machine (sequence tracking, the kernel-style out-of-order queue,
// cumulative acknowledgements and a sender window), the UDP receive path,
// and the socket delivery stage where a single application thread copies
// payload from kernel buffers to user space — the "core 0" thread that the
// paper identifies as MFLOW's residual bottleneck.
package proto

import (
	"sort"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

// AckFn informs a sender that the receiver has consumed all segments below
// endSeq (cumulative acknowledgement), opening its window.
type AckFn func(endSeq uint64, at sim.Time)

// TCPReceiver enforces TCP's in-order delivery contract: segments (or GRO
// super-packets) whose sequence matches the expected next sequence are
// delivered onward; anything else is parked in an out-of-order queue —
// which costs CPU per packet, the overhead MFLOW's batch reassembly avoids
// (paper §III-B). On a lossless run coverage is contiguous and
// non-overlapping; under fault injection the receiver additionally sheds
// duplicates (keeping the first copy of a parked segment), signals
// immediate duplicate ACKs for fast retransmit, and bounds the
// out-of-order queue with kernel-style pruning (tcp_prune_ofo_queue).
type TCPReceiver struct {
	// Expected is the next in-order segment sequence.
	Expected uint64
	// OOOQueueCost is charged per out-of-order insert and per drain on
	// the core handling the packet (the kernel's ofo-queue overhead).
	OOOQueueCost sim.Duration
	// Deliver receives in-order skbs (typically the socket stage).
	Deliver func(*skb.SKB)
	// DupAck, when set, is invoked with the current expected sequence
	// whenever a segment arrives that real TCP acknowledges immediately —
	// out-of-order or duplicate data. It is the receiver-side half of
	// fast retransmit; lossless runs leave it nil.
	DupAck func(expected uint64)
	// OFOCap bounds the out-of-order queue (skbs). When exceeded, the
	// highest-sequence parked skb is dropped, like the kernel pruning the
	// ofo queue under memory pressure; the sender retransmits it. Zero
	// means unbounded (the lossless-run default).
	OFOCap int
	// Recycle, if set, receives skbs the receiver discards (duplicates,
	// pruned out-of-order entries) so the run's pool can reuse them.
	Recycle func(*skb.SKB)
	// OnDeliverParked, if set, observes each parked skb as the OFO drain
	// releases it, together with the in-order arrival that filled the
	// hole — the blame for the parked skb's reorder-wait. Observation
	// only; nil in unprobed runs.
	OnDeliverParked func(parked, filler *skb.SKB)

	// OOOArrivals counts skbs that arrived ahead of sequence; OOOPeak is
	// the maximum depth the out-of-order queue reached.
	OOOArrivals uint64
	OOOPeak     int
	// DupSegments counts segments discarded as already-received
	// (spurious retransmissions and wire duplicates). OFOPruned counts
	// segments dropped by out-of-order queue pruning.
	DupSegments uint64
	OFOPruned   uint64

	ooo map[uint64]*skb.SKB
}

// Rx processes one skb arriving at the TCP layer on core (charged for any
// out-of-order queue work).
func (r *TCPReceiver) Rx(s *skb.SKB, core *sim.Core) {
	if s.Seq < r.Expected {
		// Already covered (a retransmission that lost the race, or a wire
		// duplicate). Like a BSD-lineage stack we discard the whole skb
		// even on partial overlap — any genuinely new tail is still
		// unacknowledged at the sender, and the duplicate ACK below
		// steers its retransmission to exactly r.Expected.
		r.DupSegments += uint64(s.Segs)
		if r.DupAck != nil {
			r.DupAck(r.Expected)
		}
		if r.Recycle != nil {
			r.Recycle(s)
		}
		return
	}
	if s.Seq != r.Expected {
		// Ahead of sequence: park it.
		if r.ooo == nil {
			r.ooo = make(map[uint64]*skb.SKB)
		}
		if _, dup := r.ooo[s.Seq]; dup {
			// Same hole retransmitted twice: keep the first copy.
			r.DupSegments += uint64(s.Segs)
			if r.DupAck != nil {
				r.DupAck(r.Expected)
			}
			if r.Recycle != nil {
				r.Recycle(s)
			}
			return
		}
		r.OOOArrivals++
		r.ooo[s.Seq] = s
		if r.OFOCap > 0 && len(r.ooo) > r.OFOCap {
			r.pruneOFO()
		}
		if len(r.ooo) > r.OOOPeak {
			r.OOOPeak = len(r.ooo)
		}
		if r.OOOQueueCost > 0 && core != nil {
			core.Exec(r.OOOQueueCost, "tcp-ofo")
		}
		if r.DupAck != nil {
			r.DupAck(r.Expected)
		}
		return
	}
	r.Expected = s.EndSeq()
	r.Deliver(s)
	// Drain any now-contiguous parked skbs.
	for {
		next, ok := r.ooo[r.Expected]
		if !ok {
			break
		}
		delete(r.ooo, r.Expected)
		if r.OOOQueueCost > 0 && core != nil {
			core.Exec(r.OOOQueueCost, "tcp-ofo")
		}
		r.Expected = next.EndSeq()
		if r.OnDeliverParked != nil {
			r.OnDeliverParked(next, s)
		}
		r.Deliver(next)
	}
	// A drained GRO super-packet can straddle a parked skb's range,
	// leaving entries keyed below Expected; sweep them as duplicates.
	if len(r.ooo) > 0 {
		for seq, parked := range r.ooo {
			if seq < r.Expected {
				r.DupSegments += uint64(parked.Segs)
				delete(r.ooo, seq)
				if r.Recycle != nil {
					r.Recycle(parked)
				}
			}
		}
	}
	// Data still parked means the fill exposed the next hole: acknowledge
	// immediately so the sender learns the new missing sequence without
	// waiting for further out-of-order arrivals (NewReno's partial-ACK
	// signal, which lets recovery proceed one hole per round trip).
	if len(r.ooo) > 0 && r.DupAck != nil {
		r.DupAck(r.Expected)
	}
}

// Missing returns up to max missing segment sequences between Expected and
// the highest sequence parked in the out-of-order queue — the hole map a
// real receiver advertises in SACK blocks. The sender's recovery sweep uses
// it to retransmit every known hole in one round trip instead of
// discovering them serially.
func (r *TCPReceiver) Missing(max int) []uint64 {
	if len(r.ooo) == 0 || max <= 0 {
		return nil
	}
	covered := make([][2]uint64, 0, len(r.ooo))
	for _, sk := range r.ooo {
		covered = append(covered, [2]uint64{sk.Seq, sk.EndSeq()})
	}
	sort.Slice(covered, func(i, j int) bool { return covered[i][0] < covered[j][0] })
	var missing []uint64
	next := r.Expected
	for _, iv := range covered {
		for ; next < iv[0]; next++ {
			missing = append(missing, next)
			if len(missing) >= max {
				return missing
			}
		}
		if iv[1] > next {
			next = iv[1]
		}
	}
	return missing
}

// pruneOFO drops the highest-sequence parked skb — the one furthest from
// being deliverable, whose retransmission costs the least extra wait.
func (r *TCPReceiver) pruneOFO() {
	var maxSeq uint64
	for seq := range r.ooo {
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	pruned := r.ooo[maxSeq]
	r.OFOPruned += uint64(pruned.Segs)
	delete(r.ooo, maxSeq)
	if r.Recycle != nil {
		r.Recycle(pruned)
	}
}

// Pending returns the current out-of-order queue depth.
func (r *TCPReceiver) Pending() int { return len(r.ooo) }

// UDPReceiver is the connectionless counterpart: it delivers every datagram
// immediately (no ordering contract) but records how many arrived out of
// order — the "poor user experience" the paper attributes to UDP reordering.
type UDPReceiver struct {
	// Deliver receives every skb.
	Deliver func(*skb.SKB)
	// OOOArrivals counts skbs whose sequence is below one already seen.
	OOOArrivals uint64

	maxEnd uint64
}

// Rx processes one skb arriving at the UDP layer.
func (r *UDPReceiver) Rx(s *skb.SKB, _ *sim.Core) {
	if s.Seq < r.maxEnd {
		r.OOOArrivals++
	}
	if end := s.EndSeq(); end > r.maxEnd {
		r.maxEnd = end
	}
	r.Deliver(s)
}
