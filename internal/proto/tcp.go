// Package proto implements the stateful tail of the receive path: the TCP
// receive machine (sequence tracking, the kernel-style out-of-order queue,
// cumulative acknowledgements and a sender window), the UDP receive path,
// and the socket delivery stage where a single application thread copies
// payload from kernel buffers to user space — the "core 0" thread that the
// paper identifies as MFLOW's residual bottleneck.
package proto

import (
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// AckFn informs a sender that the receiver has consumed all segments below
// endSeq (cumulative acknowledgement), opening its window.
type AckFn func(endSeq uint64, at sim.Time)

// TCPReceiver enforces TCP's in-order delivery contract: segments (or GRO
// super-packets) whose sequence matches the expected next sequence are
// delivered onward; anything else is parked in an out-of-order queue —
// which costs CPU per packet, the overhead MFLOW's batch reassembly avoids
// (paper §III-B). Coverage must be contiguous and non-overlapping, which the
// simulated link guarantees (no loss or retransmission on the testbed LAN).
type TCPReceiver struct {
	// Expected is the next in-order segment sequence.
	Expected uint64
	// OOOQueueCost is charged per out-of-order insert and per drain on
	// the core handling the packet (the kernel's ofo-queue overhead).
	OOOQueueCost sim.Duration
	// Deliver receives in-order skbs (typically the socket stage).
	Deliver func(*skb.SKB)

	// OOOArrivals counts skbs that arrived ahead of sequence; OOOPeak is
	// the maximum depth the out-of-order queue reached.
	OOOArrivals uint64
	OOOPeak     int

	ooo map[uint64]*skb.SKB
}

// Rx processes one skb arriving at the TCP layer on core (charged for any
// out-of-order queue work).
func (r *TCPReceiver) Rx(s *skb.SKB, core *sim.Core) {
	if s.Seq != r.Expected {
		// Ahead of sequence: park it.
		r.OOOArrivals++
		if r.ooo == nil {
			r.ooo = make(map[uint64]*skb.SKB)
		}
		r.ooo[s.Seq] = s
		if len(r.ooo) > r.OOOPeak {
			r.OOOPeak = len(r.ooo)
		}
		if r.OOOQueueCost > 0 && core != nil {
			core.Exec(r.OOOQueueCost, "tcp-ofo")
		}
		return
	}
	r.Expected = s.EndSeq()
	r.Deliver(s)
	// Drain any now-contiguous parked skbs.
	for {
		next, ok := r.ooo[r.Expected]
		if !ok {
			break
		}
		delete(r.ooo, r.Expected)
		if r.OOOQueueCost > 0 && core != nil {
			core.Exec(r.OOOQueueCost, "tcp-ofo")
		}
		r.Expected = next.EndSeq()
		r.Deliver(next)
	}
}

// Pending returns the current out-of-order queue depth.
func (r *TCPReceiver) Pending() int { return len(r.ooo) }

// UDPReceiver is the connectionless counterpart: it delivers every datagram
// immediately (no ordering contract) but records how many arrived out of
// order — the "poor user experience" the paper attributes to UDP reordering.
type UDPReceiver struct {
	// Deliver receives every skb.
	Deliver func(*skb.SKB)
	// OOOArrivals counts skbs whose sequence is below one already seen.
	OOOArrivals uint64

	maxEnd uint64
}

// Rx processes one skb arriving at the UDP layer.
func (r *UDPReceiver) Rx(s *skb.SKB, _ *sim.Core) {
	if s.Seq < r.maxEnd {
		r.OOOArrivals++
	}
	if end := s.EndSeq(); end > r.maxEnd {
		r.maxEnd = end
	}
	r.Deliver(s)
}
