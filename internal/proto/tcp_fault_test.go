package proto

import (
	"testing"

	"mflow/internal/skb"
)

func TestTCPReceiverKeepsFirstDuplicateParked(t *testing.T) {
	var delivered []*skb.SKB
	var dupAcks []uint64
	r := &TCPReceiver{
		Deliver: func(s *skb.SKB) { delivered = append(delivered, s) },
		DupAck:  func(e uint64) { dupAcks = append(dupAcks, e) },
	}
	first := seg(2, 1)
	second := seg(2, 1)
	r.Rx(first, nil)
	r.Rx(second, nil)
	if r.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", r.Pending())
	}
	if r.DupSegments != 1 || r.OOOArrivals != 1 {
		t.Fatalf("dup=%d ooo=%d, want 1/1", r.DupSegments, r.OOOArrivals)
	}
	r.Rx(seg(0, 2), nil) // fills [0,2): drains the parked skb
	if len(delivered) != 2 || delivered[1] != first {
		t.Fatalf("must deliver the FIRST parked copy, got %v", delivered)
	}
	// Every out-of-order or duplicate arrival must have signalled a dup ACK.
	if len(dupAcks) != 2 || dupAcks[0] != 0 || dupAcks[1] != 0 {
		t.Fatalf("dup acks %v, want [0 0]", dupAcks)
	}
}

func TestTCPReceiverDiscardsCoveredData(t *testing.T) {
	var delivered []*skb.SKB
	var dupAcks []uint64
	r := &TCPReceiver{
		Deliver: func(s *skb.SKB) { delivered = append(delivered, s) },
		DupAck:  func(e uint64) { dupAcks = append(dupAcks, e) },
	}
	r.Rx(seg(0, 2), nil)
	r.Rx(seg(0, 2), nil) // full duplicate
	r.Rx(seg(1, 2), nil) // partial overlap: discarded whole, dup-ACKed
	if len(delivered) != 1 {
		t.Fatalf("delivered %d skbs, want 1", len(delivered))
	}
	if r.DupSegments != 4 {
		t.Fatalf("DupSegments = %d, want 4", r.DupSegments)
	}
	if len(dupAcks) != 2 || dupAcks[0] != 2 || dupAcks[1] != 2 {
		t.Fatalf("dup acks %v, want [2 2] (steering retransmission to Expected)", dupAcks)
	}
	if r.Expected != 2 {
		t.Fatalf("Expected = %d, want 2", r.Expected)
	}
}

func TestTCPReceiverPrunesOFOQueue(t *testing.T) {
	r := &TCPReceiver{Deliver: func(*skb.SKB) {}, OFOCap: 2}
	r.Rx(seg(5, 1), nil)
	r.Rx(seg(3, 1), nil)
	r.Rx(seg(9, 1), nil) // exceeds the cap: the highest sequence goes
	if r.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", r.Pending())
	}
	if r.OFOPruned != 1 {
		t.Fatalf("OFOPruned = %d, want 1", r.OFOPruned)
	}
	if _, still := r.ooo[9]; still {
		t.Fatal("seq 9 should have been pruned")
	}
	for _, keep := range []uint64{3, 5} {
		if _, ok := r.ooo[keep]; !ok {
			t.Fatalf("seq %d should survive pruning", keep)
		}
	}
}

func TestTCPReceiverSweepsStraddledParked(t *testing.T) {
	var delivered []*skb.SKB
	r := &TCPReceiver{Deliver: func(s *skb.SKB) { delivered = append(delivered, s) }}
	r.Rx(seg(3, 2), nil) // parked [3,5)
	r.Rx(seg(4, 2), nil) // parked [4,6) — overlaps the first
	r.Rx(seg(0, 3), nil) // fills [0,3): drain delivers [3,5), straddling key 4
	if r.Pending() != 0 {
		t.Fatalf("pending = %d, want 0 (straddled entry swept)", r.Pending())
	}
	if r.DupSegments != 2 {
		t.Fatalf("DupSegments = %d, want 2 (the swept skb's segments)", r.DupSegments)
	}
	if len(delivered) != 2 || r.Expected != 5 {
		t.Fatalf("delivered %d skbs, Expected=%d; want 2 skbs and Expected 5", len(delivered), r.Expected)
	}
}

// TestTCPReceiverMissingEnumeratesHoles: the SACK-style scoreboard walks the
// out-of-order coverage from Expected, handling GRO super-packet ranges,
// overlap, and the result cap.
func TestTCPReceiverMissingEnumeratesHoles(t *testing.T) {
	r := &TCPReceiver{Deliver: func(*skb.SKB) {}}
	if got := r.Missing(10); got != nil {
		t.Fatalf("empty queue: Missing = %v, want nil", got)
	}
	r.Rx(seg(0, 2), nil) // Expected -> 2
	r.Rx(seg(3, 2), nil) // covers [3,5): hole {2}
	r.Rx(seg(7, 1), nil) // covers [7,8): holes {5,6}
	r.Rx(seg(4, 3), nil) // overlap [4,7): parks (different key), fills 5,6
	got := r.Missing(10)
	want := []uint64{2}
	if len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("Missing = %v, want %v", got, want)
	}
	// The cap truncates enumeration inside a wide hole.
	r.Rx(seg(20, 1), nil) // holes {2, 8..20}
	if got := r.Missing(3); len(got) != 3 || got[0] != 2 || got[1] != 8 || got[2] != 9 {
		t.Fatalf("capped Missing = %v, want [2 8 9]", got)
	}
	// Filling the front hole drains [3,5); the straddling [4,7) skb is
	// then below Expected and discarded whole (BSD semantics), reopening
	// holes {5,6} — which the scoreboard must re-advertise so the sender
	// retransmits them.
	r.Rx(seg(2, 1), nil)
	if r.Expected != 5 {
		t.Fatalf("Expected = %d after fill, want 5", r.Expected)
	}
	got = r.Missing(100)
	want = []uint64{5, 6}
	for s := uint64(8); s < 20; s++ {
		want = append(want, s)
	}
	if len(got) != len(want) {
		t.Fatalf("Missing after drain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Missing after drain = %v, want %v", got, want)
		}
	}
}
