package sim

import "testing"

func BenchmarkSchedulerEvent(b *testing.B) {
	s := NewScheduler(1)
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			s.After(10, fn)
		}
	}
	b.ResetTimer()
	s.At(0, fn)
	s.Run()
}

func BenchmarkSchedulerHeapChurn(b *testing.B) {
	// Many pending events stress heap sift operations.
	s := NewScheduler(1)
	for i := 0; i < 4096; i++ {
		s.At(Time(1_000_000_000+i), func() {})
	}
	count := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(Time(i%1000), func() { count++ })
	}
	s.RunUntil(999_999_999)
}

func BenchmarkCoreExec(b *testing.B) {
	s := NewScheduler(1)
	c := NewCore(0, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Exec(100, "bench")
	}
}

func BenchmarkCoreExecJittered(b *testing.B) {
	s := NewScheduler(1)
	c := NewCore(0, s)
	c.JitterAmp = 0.06
	c.InterferenceProb = 0.001
	c.InterferenceMean = 10000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Exec(100, "bench")
	}
}

func BenchmarkWorkerPipeline(b *testing.B) {
	s := NewScheduler(1)
	c := NewCore(0, s)
	w := NewWorker("bench", c, s, func(int) Duration { return 50 }, func(int, Time) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Enqueue(i)
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkRandNorm(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
