package sim

import "testing"

// BenchmarkScheduler is the engine's headline microbenchmark: one event
// scheduled and dispatched per iteration through the closure-free Handler
// path, over a standing queue deep enough to exercise the heap's sift
// paths. On the container/heap + closure engine this cost ~2 allocs/op;
// the typed heap plus Handler path must stay at 0 (gated in CI).
func BenchmarkScheduler(b *testing.B) {
	s := NewScheduler(1)
	h := &nopHandler{}
	arg := &struct{ x int }{}
	for i := 0; i < 256; i++ {
		s.AtHandler(Time(1_000_000_000+i), h, arg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := Time(i)
		s.AtHandler(at, h, arg)
		s.RunUntil(at)
	}
}

// BenchmarkSchedulerClosure is the same shape through the closure path, for
// comparison against BenchmarkScheduler (the closure capture and boxing are
// what the Handler path eliminates).
func BenchmarkSchedulerClosure(b *testing.B) {
	s := NewScheduler(1)
	n := 0
	for i := 0; i < 256; i++ {
		s.At(Time(1_000_000_000+i), func() { n++ })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := Time(i)
		s.At(at, func() { n++ })
		s.RunUntil(at)
	}
}

// BenchmarkCoreTags exercises tag accounting the way measurement snapshots
// do: hot Exec calls on already-seen tags plus a Tags() read. The sorted
// order is maintained incrementally on first sight of a tag, so Tags() is a
// straight copy rather than a sort per call.
func BenchmarkCoreTags(b *testing.B) {
	s := NewScheduler(1)
	c := NewCore(0, s)
	tags := []string{
		"rx-softirq", "gro", "vxlan", "bridge", "veth",
		"iptables", "tcp-ofo", "socket", "udp-send", "reasm",
	}
	for _, tag := range tags {
		c.Exec(10, tag)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Exec(10, tags[i%len(tags)])
		if len(c.Tags()) != len(tags) {
			b.Fatal("tag set changed")
		}
	}
}

func BenchmarkSchedulerEvent(b *testing.B) {
	s := NewScheduler(1)
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			s.After(10, fn)
		}
	}
	b.ResetTimer()
	s.At(0, fn)
	s.Run()
}

// BenchmarkSchedulerHeapChurn measures steady-state churn over a deep
// standing heap: each iteration dispatches one event and pushes one
// replacement, so pop's vacated tail slot is immediately reused by the
// next push and the heap slice never grows inside the loop. (An earlier
// version of this benchmark only pushed, so it measured amortized slice
// growth — hundreds of B/op of re-copying the whole event array — rather
// than churn; true churn through the Handler path allocates nothing.)
func BenchmarkSchedulerHeapChurn(b *testing.B) {
	const depth = 4096 // deep enough to exercise long sift paths
	s := NewScheduler(1)
	h := &nopHandler{}
	arg := &struct{ x int }{}
	for i := 0; i < depth; i++ {
		s.AtHandler(Time(1_000_000+i), h, arg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Dispatch the oldest standing event, then refill the heap to
		// the same depth: constant occupancy, pure sift work.
		s.RunUntil(Time(1_000_000 + i))
		s.AtHandler(Time(1_000_000+depth+i), h, arg)
	}
}

func BenchmarkCoreExec(b *testing.B) {
	s := NewScheduler(1)
	c := NewCore(0, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Exec(100, "bench")
	}
}

func BenchmarkCoreExecJittered(b *testing.B) {
	s := NewScheduler(1)
	c := NewCore(0, s)
	c.JitterAmp = 0.06
	c.InterferenceProb = 0.001
	c.InterferenceMean = 10000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Exec(100, "bench")
	}
}

func BenchmarkWorkerPipeline(b *testing.B) {
	s := NewScheduler(1)
	c := NewCore(0, s)
	w := NewWorker("bench", c, s, func(int) Duration { return 50 }, func(int, Time) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Enqueue(i)
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkRandNorm(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

// BenchmarkScheduleRun schedules and drains one 16-entry run per iteration:
// a single heap insert for the head, each successor re-inserted lazily with
// its pre-reserved seq when its predecessor fires. Pinned at 0 allocs/op by
// the bench gate.
func BenchmarkScheduleRun(b *testing.B) {
	s := NewScheduler(1)
	h := &nopHandler{}
	var links [16]runLink
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := s.Now()
		for j := 0; j < len(links)-1; j++ {
			links[j].SetNextRun(&links[j+1], now.Add(Duration(j+1)))
		}
		s.ScheduleRun(h, &links[0], now, len(links))
		s.Run()
	}
}

// BenchmarkCoreRun measures one Core.Run completion round-trip on the
// recycled carrier freelist. Pinned at 0 allocs/op by the bench gate.
func BenchmarkCoreRun(b *testing.B) {
	s := NewScheduler(1)
	c := NewCore(0, s)
	fn := func(end Time) {}
	c.Run(10, "bench", fn) // warm the tag map and carrier freelist
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(10, "bench", fn)
		s.Run()
	}
}
