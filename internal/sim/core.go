package sim

import (
	"math"
)

// Core models one CPU core. A core executes at most one piece of work at a
// time; work submitted while the core is busy starts when the core becomes
// free (FIFO, which matches how a softirq raised on a busy core waits for the
// currently running handler). Execution time can be perturbed by a
// multiplicative jitter and by occasional "interference" spikes that stand in
// for unrelated kernel work preempting the core — the effect the MFLOW paper
// identifies as the source of out-of-order completion across splitting cores.
type Core struct {
	// ID is the core number (purely informational; core 0 conventionally
	// runs the application/delivery thread as in the paper's figures).
	ID int

	// Speed scales all execution costs; 1.0 is nominal. A core with
	// Speed 0.9 takes 1/0.9 times as long for the same work.
	Speed float64

	// JitterAmp is the stddev of the log-normal multiplicative noise
	// applied to each execution (0 disables jitter).
	JitterAmp float64

	// InterferenceProb is the per-execution probability that the core is
	// preempted by unrelated work, adding an exponentially distributed
	// delay with mean InterferenceMean.
	InterferenceProb float64
	InterferenceMean Duration

	// ExecLog, when set, observes every execution interval charged to the
	// core (after speed/jitter/interference adjustment) — the hook the
	// observability layer's Perfetto exporter uses to reconstruct per-core
	// busy timelines. Nil costs nothing on the hot path beyond one branch.
	ExecLog func(coreID int, tag string, start, end Time)

	sched     *Scheduler
	busyUntil Time
	// runFree recycles Run's completion-event carriers: a carrier frees
	// itself before invoking its continuation, so a handful cover any
	// outstanding depth and steady-state Run calls schedule closure-free.
	runFree []*coreRunEvt
	// Tag accounting: tagIdx maps a tag to its slot in tagVals (stable,
	// insertion-ordered), and the (lastTag, lastIdx) memo skips even the
	// map lookup when consecutive Execs charge the same tag — batch loops
	// always do, and the constant tag strings make the equality check a
	// pointer compare.
	tagIdx  map[string]int
	tagVals []Duration
	lastTag string
	lastIdx int
	// tagsSorted mirrors the tag set in sorted order, maintained
	// incrementally on first sight of each tag. The working set of tags is
	// tiny (a handful of stage names) and almost every Exec hits an
	// existing tag, so keeping the list sorted here makes Tags() a copy
	// instead of an O(n log n) sort per call.
	tagsSorted []string
	busyTotal  Duration
}

// NewCore returns a core with nominal speed attached to sched.
func NewCore(id int, sched *Scheduler) *Core {
	return &Core{
		ID:      id,
		Speed:   1.0,
		sched:   sched,
		tagIdx:  make(map[string]int),
		lastIdx: -1,
	}
}

// NewCores returns n cores with IDs 0..n-1 attached to sched.
func NewCores(n int, sched *Scheduler) []*Core {
	cores := make([]*Core, n)
	for i := range cores {
		cores[i] = NewCore(i, sched)
	}
	return cores
}

// FreeAt returns the earliest instant at which the core can begin new work.
func (c *Core) FreeAt() Time {
	if c.busyUntil < c.sched.Now() {
		return c.sched.Now()
	}
	return c.busyUntil
}

// adjust applies speed, jitter and interference to a nominal cost.
func (c *Core) adjust(d Duration) Duration {
	if d <= 0 {
		return 0
	}
	f := 1.0 / c.Speed
	if c.JitterAmp > 0 {
		f *= math.Exp(c.JitterAmp * c.sched.Rand.NormFloat64())
	}
	out := Duration(float64(d) * f)
	if c.InterferenceProb > 0 && c.sched.Rand.Float64() < c.InterferenceProb {
		out += Duration(float64(c.InterferenceMean) * c.sched.Rand.ExpFloat64())
	}
	if out < 1 {
		out = 1
	}
	return out
}

// Exec reserves the core for a piece of work costing d (nominal) and returns
// the work's start and completion instants. The reservation begins when the
// core is next free, never before the current instant. The adjusted cost is
// charged to the accounting bucket tag.
func (c *Core) Exec(d Duration, tag string) (start, end Time) {
	start = c.FreeAt()
	adj := c.adjust(d)
	end = start.Add(adj)
	c.busyUntil = end
	if tag != c.lastTag || c.lastIdx < 0 {
		idx, seen := c.tagIdx[tag]
		if !seen {
			idx = len(c.tagVals)
			c.tagVals = append(c.tagVals, 0)
			c.tagIdx[tag] = idx
			c.insertTag(tag)
		}
		c.lastTag, c.lastIdx = tag, idx
	}
	c.tagVals[c.lastIdx] += adj
	c.busyTotal += adj
	if c.ExecLog != nil {
		c.ExecLog(c.ID, tag, start, end)
	}
	return start, end
}

// coreRunEvt carries one Run continuation through the scheduler's
// closure-free path. Handle returns the carrier to the core's freelist
// before invoking the continuation, so a continuation that itself calls Run
// reuses the same carrier instead of growing the list.
type coreRunEvt struct {
	c  *Core
	fn func(end Time)
}

// Handle implements Handler.
func (e *coreRunEvt) Handle(_ any, now Time) {
	fn := e.fn
	e.fn = nil
	e.c.runFree = append(e.c.runFree, e)
	fn(now)
}

// Run executes work costing d on the core and schedules fn at the completion
// instant. fn receives that instant. The completion event rides a recycled
// handler carrier, not a fresh closure: Run itself allocates nothing (the
// caller's fn may, if it captures state).
func (c *Core) Run(d Duration, tag string, fn func(end Time)) {
	_, end := c.Exec(d, tag)
	var e *coreRunEvt
	if n := len(c.runFree); n > 0 {
		e = c.runFree[n-1]
		c.runFree[n-1] = nil
		c.runFree = c.runFree[:n-1]
	} else {
		e = &coreRunEvt{c: c}
	}
	e.fn = fn
	c.sched.AtHandler(end, e, nil)
}

// BusyTotal returns the cumulative busy time charged to the core.
func (c *Core) BusyTotal() Duration { return c.busyTotal }

// BusyByTag returns a copy of the per-tag busy-time accounting.
func (c *Core) BusyByTag() map[string]Duration {
	out := make(map[string]Duration, len(c.tagIdx))
	for k, idx := range c.tagIdx {
		out[k] = c.tagVals[idx]
	}
	return out
}

// insertTag places a first-seen tag at its sorted position in tagsSorted
// (binary search + shift; the list holds a handful of stage names).
func (c *Core) insertTag(tag string) {
	lo, hi := 0, len(c.tagsSorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.tagsSorted[mid] < tag {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c.tagsSorted = append(c.tagsSorted, "")
	copy(c.tagsSorted[lo+1:], c.tagsSorted[lo:])
	c.tagsSorted[lo] = tag
}

// Tags returns the accounting tags seen so far, sorted.
func (c *Core) Tags() []string {
	return append([]string(nil), c.tagsSorted...)
}

// Utilization returns the fraction of the window [since, until] the core was
// busy, based on cumulative busy time captured by the caller: pass the value
// of BusyTotal() at the window start as busyAtSince.
func (c *Core) Utilization(busyAtSince Duration, since, until Time) float64 {
	if until <= since {
		return 0
	}
	return float64(c.busyTotal-busyAtSince) / float64(until.Sub(since))
}

// ResetAccounting zeroes the busy-time counters (used between warmup and
// measurement phases of an experiment).
func (c *Core) ResetAccounting() {
	c.busyTotal = 0
	for k := range c.tagIdx {
		delete(c.tagIdx, k)
	}
	c.tagVals = c.tagVals[:0]
	c.lastTag, c.lastIdx = "", -1
	c.tagsSorted = c.tagsSorted[:0]
}
