package sim

import (
	"math"
	"testing"
)

func TestCoreSerializesWork(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(1, s)
	s.At(0, func() {
		st1, en1 := c.Exec(100, "a")
		st2, en2 := c.Exec(50, "b")
		if st1 != 0 || en1 != 100 {
			t.Errorf("first exec [%v,%v], want [0,100]", st1, en1)
		}
		if st2 != 100 || en2 != 150 {
			t.Errorf("second exec [%v,%v], want [100,150]", st2, en2)
		}
	})
	s.Run()
	if c.BusyTotal() != 150 {
		t.Errorf("busy total %v, want 150", c.BusyTotal())
	}
	by := c.BusyByTag()
	if by["a"] != 100 || by["b"] != 50 {
		t.Errorf("per-tag accounting wrong: %v", by)
	}
}

func TestCoreStartsNoEarlierThanNow(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(1, s)
	s.At(0, func() { c.Exec(10, "a") }) // busy until 10
	s.At(500, func() {
		st, _ := c.Exec(10, "a")
		if st != 500 {
			t.Errorf("idle core started work at %v, want 500 (now)", st)
		}
	})
	s.Run()
}

func TestCoreSpeedScalesCost(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(1, s)
	c.Speed = 0.5
	s.At(0, func() {
		_, end := c.Exec(100, "a")
		if end != 200 {
			t.Errorf("half-speed core finished at %v, want 200", end)
		}
	})
	s.Run()
}

func TestCoreRunSchedulesCompletion(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(1, s)
	var doneAt Time = -1
	s.At(0, func() {
		c.Run(100, "a", func(end Time) { doneAt = s.Now() })
	})
	s.Run()
	if doneAt != 100 {
		t.Errorf("completion callback ran at %v, want 100", doneAt)
	}
}

func TestCoreJitterMeanRoughlyPreserved(t *testing.T) {
	s := NewScheduler(42)
	c := NewCore(1, s)
	c.JitterAmp = 0.1
	var total Duration
	s.At(0, func() {
		for i := 0; i < 10000; i++ {
			st, en := c.Exec(1000, "a")
			total += en.Sub(st)
		}
	})
	s.Run()
	mean := float64(total) / 10000
	// lognormal with sigma 0.1 has mean exp(sigma^2/2) ~= 1.005
	if math.Abs(mean-1000) > 50 {
		t.Errorf("jittered mean %.1f, want within 5%% of 1000", mean)
	}
}

func TestCoreInterferenceAddsDelay(t *testing.T) {
	s := NewScheduler(42)
	c := NewCore(1, s)
	c.InterferenceProb = 0.5
	c.InterferenceMean = 1000
	var total Duration
	s.At(0, func() {
		for i := 0; i < 2000; i++ {
			st, en := c.Exec(100, "a")
			total += en.Sub(st)
		}
	})
	s.Run()
	mean := float64(total) / 2000
	// expected: 100 + 0.5*1000 = 600
	if mean < 400 || mean > 800 {
		t.Errorf("interfered mean %.1f, want near 600", mean)
	}
}

func TestCoreUtilization(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(1, s)
	s.At(0, func() { c.Exec(250, "a") })
	s.Run()
	u := c.Utilization(0, 0, 1000)
	if math.Abs(u-0.25) > 1e-9 {
		t.Errorf("utilization %.3f, want 0.25", u)
	}
}

func TestCoreResetAccounting(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(1, s)
	s.At(0, func() { c.Exec(100, "a") })
	s.Run()
	c.ResetAccounting()
	if c.BusyTotal() != 0 || len(c.BusyByTag()) != 0 {
		t.Error("ResetAccounting did not clear counters")
	}
}

func TestNewCoresIDs(t *testing.T) {
	s := NewScheduler(1)
	cores := NewCores(4, s)
	for i, c := range cores {
		if c.ID != i {
			t.Errorf("core %d has ID %d", i, c.ID)
		}
		if c.Speed != 1.0 {
			t.Errorf("core %d speed %v, want 1.0", i, c.Speed)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	cdiff := NewRand(100)
	same := true
	a2 := NewRand(99)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != cdiff.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRandDistributions(t *testing.T) {
	r := NewRand(7)
	var sum, sumsq float64
	n := 50000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Errorf("normal deviates: mean %.4f var %.4f, want ~0/~1", mean, variance)
	}

	sum = 0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if m := sum / float64(n); math.Abs(m-1) > 0.05 {
		t.Errorf("exponential mean %.4f, want ~1", m)
	}

	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("Intn(10) bucket %d has %d hits, want ~%d", d, c, n/10)
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}
