package sim

import "testing"

// nopHandler is a minimal Handler for scheduling-path tests.
type nopHandler struct{ n int }

func (h *nopHandler) Handle(any, Time) { h.n++ }

// recHandler records each firing's time and argument.
type recHandler struct {
	times []Time
	args  []any
}

func (h *recHandler) Handle(arg any, now Time) {
	h.times = append(h.times, now)
	h.args = append(h.args, arg)
}

// A drained scheduler parks the clock where its last event ran rather than
// jumping to the horizon: Run on a scheduler whose last event fires at t=100
// must end at 100, and a later RunUntil with a generous horizon must not
// advance an idle clock either.
func TestRunUntilParksAtLastEvent(t *testing.T) {
	s := NewScheduler(1)
	s.At(100, func() {})
	if end := s.RunUntil(1000); end != 100 {
		t.Errorf("RunUntil(1000) on a queue ending at 100 returned %v, want 100", end)
	}
	if s.Now() != 100 {
		t.Errorf("clock at %v after drain, want parked at 100", s.Now())
	}
	if end := s.Run(); end != 100 {
		t.Errorf("Run() on a drained scheduler returned %v, want 100 (clock must not jump to the horizon)", end)
	}
}

// A horizon already in the past is a no-op: the clock never moves backwards
// and no pending events run.
func TestRunUntilHorizonInPast(t *testing.T) {
	s := NewScheduler(1)
	s.At(500, func() {})
	s.Run()
	ran := false
	s.At(600, func() { ran = true })
	if end := s.RunUntil(400); end != 500 {
		t.Errorf("RunUntil(400) with clock at 500 returned %v, want 500", end)
	}
	if ran {
		t.Error("RunUntil with a past horizon ran a future event")
	}
	if s.Pending() != 1 {
		t.Errorf("%d events pending, want 1", s.Pending())
	}
}

// Stop also parks the clock at the interrupted event, leaving the rest of
// the queue intact for a later resume.
func TestRunUntilStopParksClock(t *testing.T) {
	s := NewScheduler(1)
	s.At(100, func() { s.Stop() })
	s.At(900, func() {})
	if end := s.RunUntil(1000); end != 100 {
		t.Errorf("stopped RunUntil returned %v, want 100", end)
	}
	if s.Pending() != 1 {
		t.Errorf("%d events pending after Stop, want 1", s.Pending())
	}
	if end := s.Run(); end != 900 {
		t.Errorf("resumed Run returned %v, want 900", end)
	}
}

// With events beyond the horizon the clock advances exactly to the horizon.
func TestRunUntilAdvancesToHorizon(t *testing.T) {
	s := NewScheduler(1)
	s.At(2000, func() {})
	if end := s.RunUntil(1000); end != 1000 {
		t.Errorf("RunUntil(1000) returned %v, want 1000", end)
	}
	if s.Pending() != 1 {
		t.Errorf("%d events pending, want 1", s.Pending())
	}
}

// Handler events and closure events scheduled for the same instant share one
// FIFO: dispatch order is scheduling order regardless of which path was used.
func TestHandlerAndClosureShareFIFO(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	h := &recHandler{}
	s.At(100, func() { order = append(order, 0) })
	s.AtHandler(100, h, 1)
	s.At(100, func() { order = append(order, 2) })
	s.AtHandler(100, h, 3)
	s.Run()
	// Interleave the handler's recordings back by argument.
	if len(order) != 2 || len(h.args) != 2 {
		t.Fatalf("ran %d closures and %d handler events, want 2 and 2", len(order), len(h.args))
	}
	if order[0] != 0 || h.args[0] != 1 || order[1] != 2 || h.args[1] != 3 {
		t.Errorf("same-instant FIFO broken: closures %v, handler args %v", order, h.args)
	}
}

// Handle receives the event's fire time: the scheduled instant, or the
// clamped "now" for events scheduled into the past.
func TestHandlerFireTimeAndClamp(t *testing.T) {
	s := NewScheduler(1)
	h := &recHandler{}
	s.At(100, func() {
		s.AtHandler(10, h, "past")   // clamps to 100
		s.AfterHandler(25, h, "rel") // fires at 125
	})
	s.AtHandler(250, h, "abs")
	s.Run()
	want := []Time{100, 125, 250}
	if len(h.times) != len(want) {
		t.Fatalf("handler fired %d times, want %d", len(h.times), len(want))
	}
	for i, at := range want {
		if h.times[i] != at {
			t.Errorf("firing %d (%v) at %v, want %v", i, h.args[i], h.times[i], at)
		}
	}
}

// The handler fast path must not allocate: scheduling plus dispatching an
// event through a long-lived Handler with a pointer argument is free once
// the heap slice has grown. This is the property the whole engine refactor
// exists for, so it is pinned, not just benchmarked.
func TestHandlerPathDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s := NewScheduler(1)
	h := &nopHandler{}
	arg := &struct{ x int }{}
	// Grow the event slice past any capacity this test will need.
	for i := 0; i < 64; i++ {
		s.AtHandler(Time(i), h, arg)
	}
	s.Run()
	avg := testing.AllocsPerRun(1000, func() {
		s.AtHandler(s.Now().Add(1), h, arg)
		s.Run()
	})
	if avg != 0 {
		t.Errorf("handler schedule+dispatch averaged %.2f allocs/op, want 0", avg)
	}
}

// Core tag accounting must not allocate on the hot Exec path once every tag
// has been seen, and Tags() hands back an already-sorted copy.
func TestCoreTagAccounting(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(0, s)
	for _, tag := range []string{"veth", "bridge", "gro", "alpha"} {
		c.Exec(10, tag)
	}
	want := []string{"alpha", "bridge", "gro", "veth"}
	got := c.Tags()
	if len(got) != len(want) {
		t.Fatalf("Tags() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tags() = %v, want sorted %v", got, want)
		}
	}
	if !raceEnabled {
		avg := testing.AllocsPerRun(1000, func() { c.Exec(10, "gro") })
		if avg != 0 {
			t.Errorf("Exec on a seen tag averaged %.2f allocs/op, want 0", avg)
		}
	}
	c.ResetAccounting()
	if len(c.Tags()) != 0 {
		t.Errorf("Tags() after ResetAccounting = %v, want empty", c.Tags())
	}
}
