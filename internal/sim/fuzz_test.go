package sim

import (
	"testing"
)

// The differential fuzz harness drives the production scheduler and a naive
// reference implementation through the same randomized op tape — interleaved
// At/AtHandler/ScheduleRun/Stop/RunUntil issued both at the top level and
// from inside firing handlers — and asserts identical callback order, fire
// times, clock readings and pending counts. The reference materializes every
// run entry eagerly as its own event in a flat list popped by linear minimum
// scan: trivially correct, sharing no code with the heap, the inline slot or
// lazy run emission.

// fuzzEntry is one (id, at) run entry handed to either scheduler.
type fuzzEntry struct {
	id int
	at Time
}

// fuzzSched is the op surface the driver exercises on both implementations.
type fuzzSched interface {
	now() Time
	at(t Time, id int)
	scheduleRun(entries []fuzzEntry)
	runUntil(t Time) Time
	stop()
	pending() int
}

// fireRec is one observed dispatch.
type fireRec struct {
	id int
	at Time
}

// fuzzDriver decodes the op tape against one scheduler and records what it
// observes. Nested ops (issued when an event fires) are a pure function of
// the firing event's id, so both sides issue identical nested ops as long
// as their dispatch behaviour matches — and any divergence fails the
// comparison outright.
type fuzzDriver struct {
	data     []byte
	s        fuzzSched
	log      []fireRec
	clocks   []Time
	pendings []int
	nextID   int
}

// fire records a dispatch and possibly issues a nested op derived from the
// event's id.
func (d *fuzzDriver) fire(id int, now Time) {
	d.log = append(d.log, fireRec{id, now})
	if len(d.data) == 0 || len(d.log) > 4096 {
		return
	}
	b := d.data[id%len(d.data)]
	switch b % 8 {
	case 0:
		d.nextID++
		d.s.at(now.Add(Duration(b%16)), d.nextID)
	case 1:
		k := 2 + int(b%3)
		ents := make([]fuzzEntry, k)
		at := now
		for i := range ents {
			at = at.Add(Duration((int(b) + i) % 5))
			d.nextID++
			ents[i] = fuzzEntry{id: d.nextID, at: at}
		}
		d.s.scheduleRun(ents)
	case 2:
		d.s.stop()
	}
}

// run decodes and executes the tape, then drains.
func (d *fuzzDriver) run() {
	pos := 0
	next := func() byte {
		if pos >= len(d.data) {
			return 0
		}
		b := d.data[pos]
		pos++
		return b
	}
	for ops := 0; ops < 64 && pos < len(d.data); ops++ {
		switch next() % 4 {
		case 0:
			d.nextID++
			d.s.at(d.s.now().Add(Duration(next()%32)), d.nextID)
		case 1:
			k := 1 + int(next()%8)
			at := d.s.now().Add(Duration(next() % 8))
			ents := make([]fuzzEntry, k)
			for i := range ents {
				d.nextID++
				ents[i] = fuzzEntry{id: d.nextID, at: at}
				at = at.Add(Duration(next() % 8))
			}
			d.s.scheduleRun(ents)
		case 2:
			d.clocks = append(d.clocks, d.s.runUntil(d.s.now().Add(Duration(next()%64))))
			d.pendings = append(d.pendings, d.s.pending())
		case 3:
			d.s.stop()
		}
	}
	// Drain twice: a Stop fired by the final event leaves leftovers the
	// first call must park on and the second must clear.
	d.clocks = append(d.clocks, d.s.runUntil(Time(1<<40)))
	d.clocks = append(d.clocks, d.s.runUntil(Time(1<<40)))
	d.pendings = append(d.pendings, d.s.pending())
}

// realSched adapts the production Scheduler (heap + inline slot + lazy runs)
// to the fuzz surface.
type realSched struct {
	s *Scheduler
	d *fuzzDriver
}

// realFireH dispatches both single events (arg int) and run entries
// (arg *runLink) into the driver.
type realFireH struct{ r *realSched }

func (h realFireH) Handle(arg any, now Time) {
	switch v := arg.(type) {
	case int:
		h.r.d.fire(v, now)
	case *runLink:
		h.r.d.fire(v.id, now)
	}
}

func (r *realSched) now() Time            { return r.s.Now() }
func (r *realSched) at(t Time, id int)    { r.s.AtHandler(t, realFireH{r}, id) }
func (r *realSched) runUntil(t Time) Time { return r.s.RunUntil(t) }
func (r *realSched) stop()                { r.s.Stop() }
func (r *realSched) pending() int         { return r.s.Pending() }

func (r *realSched) scheduleRun(entries []fuzzEntry) {
	var head, tail *runLink
	var headAt Time
	for _, e := range entries {
		l := &runLink{id: e.id}
		if tail == nil {
			head, headAt = l, e.at
		} else {
			tail.SetNextRun(l, e.at)
		}
		tail = l
	}
	r.s.ScheduleRun(realFireH{r}, head, headAt, len(entries))
}

// refSched is the naive reference: a flat event list, one event per entry,
// popped by linear (at, seq) minimum scan.
type refSched struct {
	clock   Time
	seq     uint64
	evts    []fireRec // at carries the fire time; seq is the slice entry below
	seqs    []uint64
	stopped bool
	d       *fuzzDriver
}

func (r *refSched) now() Time { return r.clock }

func (r *refSched) at(t Time, id int) {
	if t < r.clock {
		t = r.clock
	}
	r.seq++
	r.evts = append(r.evts, fireRec{id, t})
	r.seqs = append(r.seqs, r.seq)
}

func (r *refSched) scheduleRun(entries []fuzzEntry) {
	for _, e := range entries {
		r.at(e.at, e.id)
	}
}

func (r *refSched) stop()        { r.stopped = true }
func (r *refSched) pending() int { return len(r.evts) }

func (r *refSched) runUntil(until Time) Time {
	r.stopped = false
	if until < r.clock {
		return r.clock
	}
	for len(r.evts) > 0 && !r.stopped {
		min := 0
		for i := 1; i < len(r.evts); i++ {
			if r.evts[i].at < r.evts[min].at ||
				(r.evts[i].at == r.evts[min].at && r.seqs[i] < r.seqs[min]) {
				min = i
			}
		}
		e := r.evts[min]
		if e.at > until {
			r.clock = until
			return r.clock
		}
		r.evts = append(r.evts[:min], r.evts[min+1:]...)
		r.seqs = append(r.seqs[:min], r.seqs[min+1:]...)
		r.clock = e.at
		r.d.fire(e.id, r.clock)
	}
	return r.clock
}

// FuzzSchedulerRuns differentially fuzzes run-coalesced scheduling against
// the naive reference.
func FuzzSchedulerRuns(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 5})
	f.Add([]byte{1, 3, 0, 2, 4, 2, 10})
	f.Add([]byte{1, 7, 0, 0, 0, 0, 0, 0, 0, 0, 2, 63, 1, 2, 1, 1, 1, 3, 20})
	f.Add([]byte{0, 9, 3, 1, 4, 0, 2, 2, 1, 3, 2, 8, 16, 24, 2, 40, 3, 0, 1})
	f.Add([]byte{2, 0, 2, 0, 1, 0, 0, 2, 5, 1, 5, 5, 5, 5, 5, 5, 2, 63, 2, 63})
	f.Fuzz(func(t *testing.T, data []byte) {
		real := &fuzzDriver{data: data}
		rs := &realSched{s: NewScheduler(1), d: real}
		real.s = rs
		real.run()

		ref := &fuzzDriver{data: data}
		fs := &refSched{d: ref}
		ref.s = fs
		ref.run()

		if len(real.log) != len(ref.log) {
			t.Fatalf("dispatch counts differ: real %d ref %d", len(real.log), len(ref.log))
		}
		for i := range real.log {
			if real.log[i] != ref.log[i] {
				t.Fatalf("dispatch %d differs: real %+v ref %+v", i, real.log[i], ref.log[i])
			}
		}
		for i := range real.clocks {
			if real.clocks[i] != ref.clocks[i] {
				t.Fatalf("clock %d differs: real %d ref %d", i, real.clocks[i], ref.clocks[i])
			}
		}
		for i := range real.pendings {
			if real.pendings[i] != ref.pendings[i] {
				t.Fatalf("pending %d differs: real %d ref %d", i, real.pendings[i], ref.pendings[i])
			}
		}
	})
}
