//go:build race

package sim

// raceEnabled gates allocation assertions: the race detector's
// instrumentation allocates, so allocs/op pins only hold in pure builds.
const raceEnabled = true
