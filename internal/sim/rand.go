package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random source
// (xoshiro256**, seeded via splitmix64). The simulation cannot use
// math/rand's global state because experiments must be reproducible and
// independent of each other; every scheduler owns its own Rand.
type Rand struct {
	s [4]uint64
	// cached spare normal deviate for Box-Muller
	haveSpare bool
	spare     float64
}

// NewRand returns a generator seeded from seed via splitmix64 so that even
// small or similar seeds produce well-mixed states.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal deviate (mean 0, stddev 1) using the
// Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.haveSpare = true
	return u * m
}

// ExpFloat64 returns an exponentially distributed deviate with mean 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
