package sim

import "testing"

// runLink is the test chain type: a minimal RunLink carrying an id so
// dispatch order can be asserted.
type runLink struct {
	id   int
	next *runLink
	at   Time
}

func (l *runLink) NextRun() (RunLink, Time) {
	if l.next == nil {
		return nil, 0
	}
	return l.next, l.at
}

func (l *runLink) SetNextRun(next RunLink, at Time) {
	if next == nil {
		l.next, l.at = nil, 0
		return
	}
	l.next, l.at = next.(*runLink), at
}

// chain builds a run from (id, at) pairs and returns its head plus the
// head's fire time.
func chain(entries ...[2]int) (*runLink, Time, int) {
	var head, tail *runLink
	var headAt Time
	for _, e := range entries {
		l := &runLink{id: e[0]}
		if tail == nil {
			head, headAt = l, Time(e[1])
		} else {
			tail.SetNextRun(l, Time(e[1]))
		}
		tail = l
	}
	return head, headAt, len(entries)
}

// logH records every dispatch as (arg id, fire time).
type logH struct {
	ids   []int
	times []Time
}

func (h *logH) Handle(arg any, now Time) {
	switch v := arg.(type) {
	case *runLink:
		h.ids = append(h.ids, v.id)
	case int:
		h.ids = append(h.ids, v)
	default:
		h.ids = append(h.ids, -1)
	}
	h.times = append(h.times, now)
}

// withCoalescing runs f under the given coalescing mode, restoring after.
func withCoalescing(on bool, f func()) {
	restore := SetCoalescing(on)
	defer restore()
	f()
}

// runScript drives one scheduler through a fixed mixed workload — single
// events, runs (including same-instant chains), an interleaved run scheduled
// from inside a handler, and a partial-horizon RunUntil — and returns the
// dispatch log and final clock.
func runScript() (ids []int, times []Time, now Time, pend int) {
	s := NewScheduler(1)
	h := &logH{}
	s.AtHandler(10, h, 1)
	head, at, n := chain([2]int{2, 10}, [2]int{3, 12}, [2]int{4, 12}, [2]int{5, 20})
	s.ScheduleRun(h, head, at, n)
	s.AtHandler(12, h, 6) // same instant as entries 3,4; scheduled later, fires after
	s.At(11, func() {
		// Scheduled from inside the horizon: a nested run landing between
		// pending run entries.
		h2, a2, n2 := chain([2]int{7, 11}, [2]int{8, 15})
		s.ScheduleRun(h, h2, a2, n2)
	})
	s.RunUntil(14)
	pend = s.Pending()
	now = s.RunUntil(100)
	return h.ids, h.times, now, pend
}

// TestScheduleRunMatchesEager pins the tentpole's core claim: lazy
// run-coalesced scheduling dispatches in exactly the order and at exactly
// the clock readings of the eager one-event-per-entry reference.
func TestScheduleRunMatchesEager(t *testing.T) {
	var lazyIDs, eagerIDs []int
	var lazyTimes, eagerTimes []Time
	var lazyNow, eagerNow Time
	var lazyPend, eagerPend int
	withCoalescing(true, func() { lazyIDs, lazyTimes, lazyNow, lazyPend = runScript() })
	withCoalescing(false, func() { eagerIDs, eagerTimes, eagerNow, eagerPend = runScript() })

	if len(lazyIDs) != len(eagerIDs) {
		t.Fatalf("dispatch counts differ: lazy %d eager %d", len(lazyIDs), len(eagerIDs))
	}
	for i := range lazyIDs {
		if lazyIDs[i] != eagerIDs[i] || lazyTimes[i] != eagerTimes[i] {
			t.Fatalf("dispatch %d differs: lazy (%d,%d) eager (%d,%d)",
				i, lazyIDs[i], lazyTimes[i], eagerIDs[i], eagerTimes[i])
		}
	}
	if lazyNow != eagerNow {
		t.Fatalf("final clock differs: lazy %d eager %d", lazyNow, eagerNow)
	}
	if lazyPend != eagerPend {
		t.Fatalf("mid-horizon Pending differs: lazy %d eager %d", lazyPend, eagerPend)
	}
	// And the order itself is the documented one: (at, seq) total order
	// with FIFO among same-instant events, run entries in chain order.
	want := []int{1, 2, 7, 3, 4, 6, 8, 5}
	for i, id := range want {
		if lazyIDs[i] != id {
			t.Fatalf("dispatch order %v, want %v", lazyIDs, want)
		}
	}
}

// TestScheduleRunPending pins exact Pending accounting under lazy emission:
// every reserved entry counts, materialized or not.
func TestScheduleRunPending(t *testing.T) {
	s := NewScheduler(1)
	h := &logH{}
	head, at, n := chain([2]int{1, 5}, [2]int{2, 10}, [2]int{3, 15})
	s.ScheduleRun(h, head, at, n)
	if got := s.Pending(); got != 3 {
		t.Fatalf("Pending after ScheduleRun = %d, want 3", got)
	}
	s.RunUntil(10)
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending after two entries fired = %d, want 1", got)
	}
	s.RunUntil(20)
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

// TestScheduleRunStopMidRun verifies Stop from a run entry's handler leaves
// the remaining entries pending and resumable.
func TestScheduleRunStopMidRun(t *testing.T) {
	s := NewScheduler(1)
	h := &logH{}
	stopper := &funcH{fn: func(arg any, now Time) {
		h.Handle(arg, now)
		s.Stop()
	}}
	head, at, n := chain([2]int{1, 5}, [2]int{2, 10}, [2]int{3, 15})
	s.ScheduleRun(stopper, head, at, n)
	if got := s.RunUntil(100); got != 5 {
		t.Fatalf("stopped clock = %d, want 5", got)
	}
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending after stop = %d, want 2", got)
	}
	s.RunUntil(100)
	s.RunUntil(100)
	if want := []int{1, 2, 3}; len(h.ids) != 3 || h.ids[0] != want[0] || h.ids[1] != want[1] || h.ids[2] != want[2] {
		t.Fatalf("dispatched %v, want %v", h.ids, want)
	}
}

// funcH adapts a func to Handler for tests.
type funcH struct{ fn func(any, Time) }

func (f *funcH) Handle(arg any, now Time) { f.fn(arg, now) }

// TestScheduleRunHorizonMidRun verifies RunUntil parks at the horizon with a
// run straddling it, and that the straddling entries fire on resume.
func TestScheduleRunHorizonMidRun(t *testing.T) {
	s := NewScheduler(1)
	h := &logH{}
	head, at, n := chain([2]int{1, 5}, [2]int{2, 20})
	s.ScheduleRun(h, head, at, n)
	if got := s.RunUntil(10); got != 10 {
		t.Fatalf("horizon park = %d, want 10", got)
	}
	if len(h.ids) != 1 || h.ids[0] != 1 {
		t.Fatalf("dispatched %v before horizon, want [1]", h.ids)
	}
	if got := s.RunUntil(30); got != 20 {
		t.Fatalf("drained clock = %d, want 20 (parked at last event)", got)
	}
	if len(h.ids) != 2 || h.ids[1] != 2 {
		t.Fatalf("dispatched %v, want [1 2]", h.ids)
	}
}

// TestScheduleRunPastClamp verifies a run whose head (or whole chain) is in
// the past fires at the current instant, like At/AtHandler.
func TestScheduleRunPastClamp(t *testing.T) {
	s := NewScheduler(1)
	h := &logH{}
	s.At(50, func() {
		head, at, n := chain([2]int{1, 5}, [2]int{2, 10})
		s.ScheduleRun(h, head, at, n)
	})
	s.Run()
	if len(h.times) != 2 || h.times[0] != 50 || h.times[1] != 50 {
		t.Fatalf("clamped fire times %v, want [50 50]", h.times)
	}
}

// TestSchedStats sanity-checks the telemetry counters on a known workload.
func TestSchedStats(t *testing.T) {
	s := NewScheduler(1)
	h := &logH{}
	head, at, n := chain([2]int{1, 5}, [2]int{2, 6}, [2]int{3, 7}, [2]int{4, 8})
	s.ScheduleRun(h, head, at, n)
	s.AtHandler(9, h, 5)
	s.Run()
	st := s.Stats()
	if st.Scheduled != 5 {
		t.Fatalf("Scheduled = %d, want 5", st.Scheduled)
	}
	if st.Coalesced != 3 {
		t.Fatalf("Coalesced = %d, want 3 (k-1 of the run)", st.Coalesced)
	}
	// With an otherwise empty pending set, the run head and each
	// materialized successor take the inline slot.
	if st.Inlined == 0 {
		t.Fatalf("Inlined = 0, want > 0")
	}
	if st.HeapOps() != st.HeapPushes+st.HeapPops {
		t.Fatalf("HeapOps inconsistent")
	}
	if st.HeapPushes != st.HeapPops {
		t.Fatalf("drained scheduler: pushes %d != pops %d", st.HeapPushes, st.HeapPops)
	}
	var merged SchedStats
	merged.Merge(st)
	merged.Merge(st)
	if merged.Scheduled != 2*st.Scheduled || merged.PeakHeap != st.PeakHeap {
		t.Fatalf("Merge: got %+v", merged)
	}
}

// TestInlineSlotOvertaken pins the slot's ordering guard: an event placed in
// the slot is still overtaken by a later-scheduled, earlier-firing event.
func TestInlineSlotOvertaken(t *testing.T) {
	s := NewScheduler(1)
	h := &logH{}
	s.At(10, func() {
		s.AtHandler(30, h, 1) // takes the slot (nothing else pending)
		s.AtHandler(20, h, 2) // heap; must still fire first
	})
	s.Run()
	if len(h.ids) != 2 || h.ids[0] != 2 || h.ids[1] != 1 {
		t.Fatalf("dispatch order %v, want [2 1]", h.ids)
	}
	if h.times[0] != 20 || h.times[1] != 30 {
		t.Fatalf("fire times %v, want [20 30]", h.times)
	}
}

// TestSetCoalescingRestore verifies the test toggle round-trips.
func TestSetCoalescingRestore(t *testing.T) {
	was := CoalescingEnabled()
	restore := SetCoalescing(!was)
	if CoalescingEnabled() == was {
		t.Fatalf("SetCoalescing did not flip the mode")
	}
	restore()
	if CoalescingEnabled() != was {
		t.Fatalf("restore did not return to the prior mode")
	}
}

// TestScheduleRunDoesNotAllocate pins the zero-allocation contract of the
// lazy run path end to end: scheduling a chain and draining it touches only
// pre-existing memory once the heap slice has grown.
func TestScheduleRunDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	s := NewScheduler(1)
	h := &logH{}
	h.ids = make([]int, 0, 4096)
	h.times = make([]Time, 0, 4096)
	links := [8]runLink{}
	avg := testing.AllocsPerRun(1000, func() {
		h.ids, h.times = h.ids[:0], h.times[:0]
		now := s.Now()
		for i := range links {
			links[i] = runLink{id: i}
		}
		for i := 0; i < len(links)-1; i++ {
			links[i].SetNextRun(&links[i+1], now.Add(Duration(i+2)))
		}
		s.ScheduleRun(h, &links[0], now.Add(1), len(links))
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("ScheduleRun+drain allocates %.1f/op, want 0", avg)
	}
}

// TestCoreRunDoesNotAllocate pins Core.Run's recycled completion carrier: a
// steady-state Run with a prebound continuation allocates nothing.
func TestCoreRunDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	s := NewScheduler(1)
	c := NewCore(0, s)
	fn := func(end Time) {}
	c.Run(10, "warm", fn) // warm the tag map and carrier freelist
	s.Run()
	avg := testing.AllocsPerRun(1000, func() {
		c.Run(10, "warm", fn)
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("Core.Run allocates %.1f/op, want 0", avg)
	}
}

// TestWorkerStealQueueRecyclesBuffer verifies StealQueue hands back the live
// queue buffer (no copy) and the worker keeps functioning afterwards.
func TestWorkerStealQueueRecyclesBuffer(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(0, s)
	var got []int
	w := NewWorker[int]("steal", c, s, func(int) Duration { return 1 }, func(v int, _ Time) { got = append(got, v) })
	for i := 0; i < 4; i++ {
		w.Enqueue(i)
	}
	stolen := w.StealQueue()
	if len(stolen) != 4 {
		t.Fatalf("stole %d items, want 4", len(stolen))
	}
	if w.Len() != 0 {
		t.Fatalf("queue depth after steal = %d, want 0", w.Len())
	}
	if raceEnabled == false {
		if avg := testing.AllocsPerRun(100, func() {
			for i := 0; i < 4; i++ {
				w.Enqueue(i)
			}
			w.StealQueue()
		}); avg != 0 {
			t.Fatalf("StealQueue allocates %.1f/op, want 0", avg)
		}
	}
	// The worker ping-pongs onto the recycled buffer and still delivers.
	w.Enqueue(40)
	w.Enqueue(41)
	s.Run()
	if len(got) != 2 || got[0] != 40 || got[1] != 41 {
		t.Fatalf("post-steal deliveries %v, want [40 41]", got)
	}
	if w.StealQueue() != nil {
		t.Fatalf("StealQueue on empty queue should return nil")
	}
}
