package sim

import "os"

// Handler is a pre-allocated callback target for the scheduler's
// closure-free fast path. Hot paths that schedule one event per packet
// (softirq polls, per-skb stage handoffs, sender completions) keep a
// long-lived object implementing Handler and pass the per-event state
// through arg — typically an *skb.SKB, whose pointer rides the interface
// word without allocating. Handle receives the event's fire time, which for
// an event scheduled at t is exactly t (or the clamped "now" for events
// scheduled into the past).
type Handler interface {
	Handle(arg any, now Time)
}

// RunLink is the intrusive chain a ScheduleRun emission rides: each entry
// knows its successor and the successor's fire time, so a whole poll batch
// of deliveries is one linked list threaded through the items themselves —
// no slice, no allocation. Implementations (skb.SKB, txpath's GSO unit)
// embed the two words directly.
//
// The scheduler consumes a link exactly once, when the entry that carries
// it fires: it reads the successor, then clears the link *before* invoking
// the entry's handler. By the time user code (delivery, pool Put, a new
// emission loop) can touch the item again its link is therefore always
// empty, which is what makes chaining pooled objects safe.
type RunLink interface {
	// NextRun returns the next entry in the run and its fire time, or
	// (nil, 0) at the end of the chain. The returned interface must be
	// untyped nil at chain end, never a typed-nil pointer.
	NextRun() (RunLink, Time)
	// SetNextRun links next (firing at) after this entry; SetNextRun(nil, 0)
	// clears the link.
	SetNextRun(next RunLink, at Time)
}

// disableCoalesce force-disables run coalescing and inline-slot delivery
// (every entry is inserted into the heap eagerly, one event apiece — the
// naive reference behaviour). Settable via the MFLOW_NOCOALESCE environment
// variable, mirroring MFLOW_NOPOOL: the fingerprint equivalence tests flip
// it to prove coalescing is timing-model-inert.
var disableCoalesce = os.Getenv("MFLOW_NOCOALESCE") != ""

// SetCoalescing enables or disables run coalescing process-wide and returns
// a restore function. Test-only: the flag is read by every scheduler in the
// process, so flip it only around serially-executed runs.
func SetCoalescing(on bool) (restore func()) {
	prev := disableCoalesce
	disableCoalesce = !on
	return func() { disableCoalesce = prev }
}

// CoalescingEnabled reports whether run coalescing is active.
func CoalescingEnabled() bool { return !disableCoalesce }

// event is a single pending callback in the simulation: a handler/argument
// pair. Closures scheduled through At ride the same shape via closureH
// (the func value travels in arg), keeping the struct at 56 bytes — worth
// real wall clock, since every sift copies events and the heap sees tens of
// millions of operations per figure sweep.
//
// An event with runEnd > seq is the materialized head of a lazily-emitted
// run (see ScheduleRun): arg implements RunLink, seqs seq..runEnd were
// reserved for the run when it was scheduled, and firing this event
// re-materializes the successor entry with seq+1 before the handler runs.
type event struct {
	at     Time
	seq    uint64 // tiebreaker: FIFO among events scheduled for the same instant
	runEnd uint64 // last reserved seq of this event's run (0 / <= seq: not a run)
	h      Handler
	arg    any
}

// closureH adapts At's closure path onto the handler dispatch: the func
// value rides in arg (pointer-shaped, so boxing it allocates nothing).
type closureH struct{}

func (closureH) Handle(arg any, _ Time) { arg.(func())() }

// before reports whether e fires strictly before o: earlier time, or FIFO
// scheduling order at the same instant.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// SchedStats are the scheduler's self-accounting counters: how many logical
// events it accepted, how much heap traffic coalescing and the inline slot
// saved, and how deep the heap got. Telemetry only — the counters never
// feed back into event ordering, timing, or any fingerprinted observable.
type SchedStats struct {
	// Scheduled counts logical events accepted (At/AtHandler calls plus
	// every entry of every run).
	Scheduled uint64
	// Coalesced counts run entries whose heap insert was deferred to fire
	// time (the k-1 tail entries of each lazily-emitted run).
	Coalesced uint64
	// Inlined counts events dispatched from the inline slot, bypassing the
	// heap entirely.
	Inlined uint64
	// HeapPushes / HeapPops count heap operations (each O(log n)).
	HeapPushes uint64
	HeapPops   uint64
	// PeakHeap is the maximum heap depth observed.
	PeakHeap int
}

// HeapOps returns the total number of O(log n) heap operations performed.
func (st SchedStats) HeapOps() uint64 { return st.HeapPushes + st.HeapPops }

// Merge folds o into st: counters add, peaks take the max.
func (st *SchedStats) Merge(o SchedStats) {
	st.Scheduled += o.Scheduled
	st.Coalesced += o.Coalesced
	st.Inlined += o.Inlined
	st.HeapPushes += o.HeapPushes
	st.HeapPops += o.HeapPops
	if o.PeakHeap > st.PeakHeap {
		st.PeakHeap = o.PeakHeap
	}
}

// Scheduler is the discrete-event simulation driver. It owns the virtual
// clock, the pending-event heap and the run's random source. A Scheduler is
// single-threaded by design: one simulation run is one goroutine, which keeps
// the model deterministic and race-free; parallelism across experiments is
// achieved by running independent Schedulers.
//
// The pending set is an inlined 4-ary min-heap over a flat []event ordered
// by (at, seq), plus a one-event inline slot that holds the pending minimum
// when it is known at insertion time (the common same-instant delivery
// case), sparing both the push and the pop. Compared to container/heap's
// interface-based binary heap this boxes nothing (pushing and popping an
// event performs zero heap allocations once the slice has grown) and does
// ~half the comparisons per sift on typical queue depths, which matters
// because every simulated packet crosses the pending set several times.
type Scheduler struct {
	now     Time
	seq     uint64
	events  []event
	stopped bool

	// slot is the inline fast path: it may hold at most one event, and
	// only one that fires before everything in the heap (checked at
	// placement; dispatch re-checks against the then-current heap head, so
	// ordering is identical to a pure heap — see trySlot and RunUntil).
	slot     event
	slotFull bool

	// deferred counts run entries reserved but not yet materialized, so
	// Pending stays exact under lazy emission.
	deferred int

	stats SchedStats

	// Rand is the run's deterministic random source.
	Rand *Rand
}

// NewScheduler returns a scheduler with its clock at zero and a random
// source derived from seed.
func NewScheduler(seed uint64) *Scheduler {
	return &Scheduler{Rand: NewRand(seed)}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Stats returns the scheduler's self-accounting counters. HeapPushes and
// PeakHeap are completed here from the live heap state (see push for why
// neither is counted inline).
func (s *Scheduler) Stats() SchedStats {
	st := s.stats
	st.HeapPushes = st.HeapPops + uint64(len(s.events))
	if n := len(s.events); n > st.PeakHeap {
		st.PeakHeap = n
	}
	return st
}

// At schedules fn to run at absolute time t. Events scheduled for a time in
// the past run at the current instant, after already-pending events for that
// instant (time never goes backwards). Events at the same instant run in
// scheduling order.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.stats.Scheduled++
	e := event{at: t, seq: s.seq, h: closureH{}, arg: fn}
	if !s.trySlot(&e) {
		s.push(e)
	}
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Duration, fn func()) {
	s.At(s.now.Add(d), fn)
}

// AtHandler schedules h.Handle(arg, t) at absolute time t with the same
// ordering semantics as At, but without the closure: a call site that would
// otherwise capture per-event state allocates nothing when h is a long-lived
// object and arg a pointer.
func (s *Scheduler) AtHandler(t Time, h Handler, arg any) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.stats.Scheduled++
	e := event{at: t, seq: s.seq, h: h, arg: arg}
	if !s.trySlot(&e) {
		s.push(e)
	}
}

// AfterHandler schedules h.Handle(arg, now+d) d after the current instant.
func (s *Scheduler) AfterHandler(d Duration, h Handler, arg any) {
	s.AtHandler(s.now.Add(d), h, arg)
}

// ScheduleRun schedules a whole emission run — n entries chained through
// head via RunLink, each firing h.Handle(entry, at) — as one logical batch.
// Entry fire times must be non-decreasing along the chain (emission loops
// get this for free: completion instants of FIFO core executions are
// monotone); the head's time is passed explicitly, each successor's rides
// the predecessor's link.
//
// Ordering is bit-identical to scheduling the n entries individually, in
// chain order, at the call instant: one contiguous seq per entry is
// reserved eagerly, so the (at, seq) total order — and therefore every
// downstream fingerprint — cannot observe the difference. What changes is
// heap traffic: only the head is materialized; when it fires, the successor
// is re-inserted with its pre-reserved seq, turning O(k log n) heap work
// per batch into O(log n + k).
//
// The scheduler owns each entry's link from this call until the entry
// fires, at which point the link is cleared before h.Handle runs — so the
// handler (and anything downstream, including a pool Put) always sees an
// unlinked item.
func (s *Scheduler) ScheduleRun(h Handler, head RunLink, headAt Time, n int) {
	if n <= 0 || head == nil {
		return
	}
	if headAt < s.now {
		headAt = s.now
	}
	s.stats.Scheduled += uint64(n)
	if disableCoalesce || n == 1 {
		// Reference path (and the trivial run): materialize every entry
		// eagerly, one heap insert apiece, seqs in chain order — the same
		// seq block the lazy path reserves, consumed identically.
		cur, at := head, headAt
		for cur != nil {
			if at < s.now {
				at = s.now
			}
			s.seq++
			e := event{at: at, seq: s.seq, h: h, arg: cur}
			if !s.trySlot(&e) {
				s.push(e)
			}
			next, nextAt := cur.NextRun()
			cur.SetNextRun(nil, 0)
			cur, at = next, nextAt
		}
		return
	}
	base := s.seq + 1
	s.seq += uint64(n)
	s.stats.Coalesced += uint64(n - 1)
	s.deferred += n - 1
	e := event{at: headAt, seq: base, runEnd: base + uint64(n-1), h: h, arg: head}
	if !s.trySlot(&e) {
		s.push(e)
	}
}

// advanceRun materializes the successor of a firing run entry: the link is
// read and cleared first (the handler about to run may recycle the entry),
// then the successor enters the pending set under its pre-reserved seq.
func (s *Scheduler) advanceRun(e *event) {
	link := e.arg.(RunLink)
	next, at := link.NextRun()
	link.SetNextRun(nil, 0)
	if next == nil {
		return
	}
	s.deferred--
	if at < s.now {
		at = s.now
	}
	ne := event{at: at, seq: e.seq + 1, runEnd: e.runEnd, h: e.h, arg: next}
	if !s.trySlot(&ne) {
		s.push(ne)
	}
}

// trySlot claims the inline slot for e if it provably fires before
// everything else currently pending (slot empty, and e before the heap
// minimum); the caller pushes *e to the heap when trySlot declines. When the
// slot is already held by a later-firing event, the two swap — e takes the
// slot and the displaced occupant is handed back through *e for the caller's
// push — so the slot tracks the pending minimum instead of being wedged by
// one far-future event. Either way the pending set is the same heap ∪ slot
// multiset, and dispatch always takes the minimum of slot and heap head by
// (at, seq), so ordering is identical to a pure heap — the slot is purely a
// heap-traffic bypass, never an ordering shortcut. trySlot and push are each
// within the inlining budget, so every schedule path constructs its event
// exactly once.
func (s *Scheduler) trySlot(e *event) bool {
	if disableCoalesce {
		return false
	}
	if s.slotFull {
		if e.before(&s.slot) {
			s.slot, *e = *e, s.slot
		}
		return false
	}
	if len(s.events) > 0 && !e.before(&s.events[0]) {
		return false
	}
	s.slot = *e
	s.slotFull = true
	return true
}

// push appends e and sifts it up to its heap position. Deliberately free of
// bookkeeping so it stays within the inlining budget of the hot schedule
// paths: HeapPushes is derived in Stats from the pop count plus the pending
// length (every heaped event pops exactly once), and PeakHeap is tracked at
// pop entry (any maximal heap length is immediately followed by a pop or is
// the final length, also folded in by Stats).
func (s *Scheduler) push(e event) {
	s.events = append(s.events, e)
	h := s.events
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !e.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
}

// pop removes and returns the earliest heap event. The vacated tail slot is
// zeroed so the heap does not retain closures, handlers or skbs beyond the
// event's lifetime.
func (s *Scheduler) pop() event {
	s.stats.HeapPops++
	if n := len(s.events); n > s.stats.PeakHeap {
		s.stats.PeakHeap = n
	}
	h := s.events
	root := h[0]
	n := len(h) - 1
	e := h[n]
	h[n] = event{}
	s.events = h[:n]
	if n > 0 {
		// Sift the former tail down from the root.
		h = s.events
		i := 0
		for {
			c := i*4 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&e) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = e
	}
	return root
}

// Pending reports the number of events waiting to run, counting every
// reserved entry of a lazily-emitted run (not just its materialized head).
func (s *Scheduler) Pending() int {
	n := len(s.events) + s.deferred
	if s.slotFull {
		n++
	}
	return n
}

// Stop makes the current Run/RunUntil call return after the event being
// processed completes. Further events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Run processes events until none remain or Stop is called. It returns the
// final simulated time.
func (s *Scheduler) Run() Time {
	return s.RunUntil(Time(int64(^uint64(0) >> 1)))
}

// RunUntil processes events with timestamps <= until, advancing the clock as
// it goes. When it returns, the clock reads `until` if events beyond the
// horizon remain, and otherwise parks where the last event ran: a drained
// (or stopped) scheduler never advances past its final event, so Run — which
// passes the maximum horizon — ends at the simulation's natural end time.
// A horizon already in the past is a no-op: time never goes backwards.
func (s *Scheduler) RunUntil(until Time) Time {
	s.stopped = false
	if until < s.now {
		return s.now
	}
	for (s.slotFull || len(s.events) > 0) && !s.stopped {
		// The next event is the minimum of the inline slot and the heap
		// head (both ordered by (at, seq)).
		useSlot := s.slotFull && (len(s.events) == 0 || s.slot.before(&s.events[0]))
		var e event
		if useSlot {
			if s.slot.at > until {
				s.now = until
				return s.now
			}
			e = s.slot
			s.slot = event{}
			s.slotFull = false
			s.stats.Inlined++
		} else {
			if s.events[0].at > until {
				s.now = until
				return s.now
			}
			e = s.pop()
		}
		s.now = e.at
		if e.runEnd > e.seq {
			// A run head/member: materialize its successor (with its
			// pre-reserved seq) before the handler can recycle the entry.
			s.advanceRun(&e)
		}
		e.h.Handle(e.arg, s.now)
	}
	// Drained or stopped before the horizon: park the clock where the
	// last event ran.
	return s.now
}
