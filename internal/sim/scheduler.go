package sim

import "container/heap"

// event is a single pending callback in the simulation.
type event struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among events scheduled for the same instant
	fn  func()
}

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Scheduler is the discrete-event simulation driver. It owns the virtual
// clock, the pending-event heap and the run's random source. A Scheduler is
// single-threaded by design: one simulation run is one goroutine, which keeps
// the model deterministic and race-free; parallelism across experiments is
// achieved by running independent Schedulers.
type Scheduler struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	// Rand is the run's deterministic random source.
	Rand *Rand
}

// NewScheduler returns a scheduler with its clock at zero and a random
// source derived from seed.
func NewScheduler(seed uint64) *Scheduler {
	return &Scheduler{Rand: NewRand(seed)}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Events scheduled for a time in
// the past run at the current instant, after already-pending events for that
// instant (time never goes backwards). Events at the same instant run in
// scheduling order.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Duration, fn func()) {
	s.At(s.now.Add(d), fn)
}

// Pending reports the number of events waiting to run.
func (s *Scheduler) Pending() int { return len(s.events) }

// Stop makes the current Run/RunUntil call return after the event being
// processed completes. Further events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Run processes events until none remain or Stop is called. It returns the
// final simulated time.
func (s *Scheduler) Run() Time {
	return s.RunUntil(Time(int64(^uint64(0) >> 1)))
}

// RunUntil processes events with timestamps <= until, advancing the clock as
// it goes. When it returns, the clock reads min(until, time of last event) or
// `until` if events beyond the horizon remain. Stop aborts early.
func (s *Scheduler) RunUntil(until Time) Time {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > until {
			s.now = until
			return s.now
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
	}
	if !s.stopped && s.now < until && len(s.events) == 0 {
		// Nothing left to do; park the clock where the last event ran.
		return s.now
	}
	return s.now
}
