package sim

// Handler is a pre-allocated callback target for the scheduler's
// closure-free fast path. Hot paths that schedule one event per packet
// (softirq polls, per-skb stage handoffs, sender completions) keep a
// long-lived object implementing Handler and pass the per-event state
// through arg — typically an *skb.SKB, whose pointer rides the interface
// word without allocating. Handle receives the event's fire time, which for
// an event scheduled at t is exactly t (or the clamped "now" for events
// scheduled into the past).
type Handler interface {
	Handle(arg any, now Time)
}

// event is a single pending callback in the simulation. It carries either a
// plain closure (fn, the flexible path) or a handler/argument pair (h+arg,
// the allocation-free path); exactly one of fn and h is set.
type event struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among events scheduled for the same instant
	fn  func()
	h   Handler
	arg any
}

// before reports whether e fires strictly before o: earlier time, or FIFO
// scheduling order at the same instant.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Scheduler is the discrete-event simulation driver. It owns the virtual
// clock, the pending-event heap and the run's random source. A Scheduler is
// single-threaded by design: one simulation run is one goroutine, which keeps
// the model deterministic and race-free; parallelism across experiments is
// achieved by running independent Schedulers.
//
// The pending set is an inlined 4-ary min-heap over a flat []event ordered
// by (at, seq). Compared to container/heap's interface-based binary heap
// this boxes nothing (pushing and popping an event performs zero heap
// allocations once the slice has grown) and does ~half the comparisons per
// sift on typical queue depths, which matters because every simulated
// packet crosses the heap several times.
type Scheduler struct {
	now     Time
	seq     uint64
	events  []event
	stopped bool

	// Rand is the run's deterministic random source.
	Rand *Rand
}

// NewScheduler returns a scheduler with its clock at zero and a random
// source derived from seed.
func NewScheduler(seed uint64) *Scheduler {
	return &Scheduler{Rand: NewRand(seed)}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Events scheduled for a time in
// the past run at the current instant, after already-pending events for that
// instant (time never goes backwards). Events at the same instant run in
// scheduling order.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Duration, fn func()) {
	s.At(s.now.Add(d), fn)
}

// AtHandler schedules h.Handle(arg, t) at absolute time t with the same
// ordering semantics as At, but without the closure: a call site that would
// otherwise capture per-event state allocates nothing when h is a long-lived
// object and arg a pointer.
func (s *Scheduler) AtHandler(t Time, h Handler, arg any) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, h: h, arg: arg})
}

// AfterHandler schedules h.Handle(arg, now+d) d after the current instant.
func (s *Scheduler) AfterHandler(d Duration, h Handler, arg any) {
	s.AtHandler(s.now.Add(d), h, arg)
}

// push appends e and sifts it up to its heap position.
func (s *Scheduler) push(e event) {
	s.events = append(s.events, e)
	h := s.events
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !e.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed so the heap does not retain closures, handlers or skbs beyond the
// event's lifetime.
func (s *Scheduler) pop() event {
	h := s.events
	root := h[0]
	n := len(h) - 1
	e := h[n]
	h[n] = event{}
	s.events = h[:n]
	if n > 0 {
		// Sift the former tail down from the root.
		h = s.events
		i := 0
		for {
			c := i*4 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&e) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = e
	}
	return root
}

// Pending reports the number of events waiting to run.
func (s *Scheduler) Pending() int { return len(s.events) }

// Stop makes the current Run/RunUntil call return after the event being
// processed completes. Further events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Run processes events until none remain or Stop is called. It returns the
// final simulated time.
func (s *Scheduler) Run() Time {
	return s.RunUntil(Time(int64(^uint64(0) >> 1)))
}

// RunUntil processes events with timestamps <= until, advancing the clock as
// it goes. When it returns, the clock reads `until` if events beyond the
// horizon remain, and otherwise parks where the last event ran: a drained
// (or stopped) scheduler never advances past its final event, so Run — which
// passes the maximum horizon — ends at the simulation's natural end time.
// A horizon already in the past is a no-op: time never goes backwards.
func (s *Scheduler) RunUntil(until Time) Time {
	s.stopped = false
	if until < s.now {
		return s.now
	}
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > until {
			s.now = until
			return s.now
		}
		e := s.pop()
		s.now = e.at
		if e.h != nil {
			e.h.Handle(e.arg, s.now)
		} else {
			e.fn()
		}
	}
	// Drained or stopped before the horizon: park the clock where the
	// last event ran.
	return s.now
}
