package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		s.At(at, func() { got = append(got, s.Now()) })
	}
	s.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d ran at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of order: %v", order)
		}
	}
}

func TestSchedulerPastEventsRunNow(t *testing.T) {
	s := NewScheduler(1)
	var ranAt Time = -1
	s.At(100, func() {
		// Scheduling into the past must clamp to "now".
		s.At(10, func() { ranAt = s.Now() })
	})
	s.Run()
	if ranAt != 100 {
		t.Fatalf("past event ran at %v, want clamped to 100", ranAt)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i*100), func() { count++ })
	}
	end := s.RunUntil(550)
	if count != 5 {
		t.Errorf("ran %d events, want 5", count)
	}
	if end != 550 {
		t.Errorf("clock at %v, want 550", end)
	}
	s.Run()
	if count != 10 {
		t.Errorf("after full run, ran %d events, want 10", count)
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("ran %d events after Stop, want 3", count)
	}
	if s.Pending() != 7 {
		t.Errorf("%d events pending, want 7", s.Pending())
	}
}

func TestSchedulerAfter(t *testing.T) {
	s := NewScheduler(1)
	var at Time
	s.At(100, func() {
		s.After(25, func() { at = s.Now() })
	})
	s.Run()
	if at != 125 {
		t.Errorf("After event ran at %v, want 125", at)
	}
}

// Property: for any set of timestamps, execution order is a non-decreasing
// sequence of times.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		s := NewScheduler(7)
		var seen []Time
		for _, st := range stamps {
			s.At(Time(st), func() { seen = append(seen, s.Now()) })
		}
		s.Run()
		if len(seen) != len(stamps) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{250, "250ns"},
		{2500, "2.500µs"},
		{2500000, "2.500ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(1000)
	if t0.Add(500) != 1500 {
		t.Error("Add failed")
	}
	if Time(1500).Sub(t0) != 500 {
		t.Error("Sub failed")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds failed")
	}
}
