// Package sim implements the discrete-event simulation (DES) substrate that
// everything else in this repository is built on: a simulated clock, an event
// scheduler, a deterministic pseudo-random source, CPU cores with serialized
// execution and per-tag busy-time accounting, and softirq-style batch workers.
//
// The simulation models the Linux in-kernel receive path at the granularity
// the MFLOW paper reasons about: packets are processed by stages (softirq
// handlers) that are bound to cores; a core executes at most one piece of
// work at a time; moving work between cores costs an inter-processor
// interrupt (IPI) and a wakeup delay. All time is virtual, expressed in
// nanoseconds, and every run is deterministic for a given seed.
package sim

import "fmt"

// Time is an absolute instant in simulated time, in nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring the time package but for simulated time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats a duration with an adaptive unit, e.g. "1.5ms" or "250ns".
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// String formats an absolute time the same way as the corresponding duration
// since simulation start.
func (t Time) String() string { return Duration(t).String() }
