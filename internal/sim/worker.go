package sim

// DefaultBudget is the number of items a worker processes per poll round
// before yielding, mirroring the kernel's NAPI budget of 64.
const DefaultBudget = 64

// Worker is a softirq-style batch consumer: a FIFO queue of items bound to a
// core. Enqueueing onto an idle worker schedules a poll (after WakeDelay,
// standing in for IPI/softirq-raise latency); each poll round drains up to
// Budget items, charges their processing cost to the core, and hands each
// item downstream at its completion instant. If items remain after a round
// the worker immediately reschedules itself, which is exactly how NAPI
// re-arms: the net effect is that multiple workers sharing one core
// interleave in batches, the paper's "stages multiplexed in a pipelined
// manner on the same core".
type Worker[T any] struct {
	// Name identifies the worker in accounting tags and diagnostics.
	Name string
	// Core is the CPU the worker's processing is charged to.
	Core *Core
	// Sched drives the worker's events.
	Sched *Scheduler
	// Budget is the max items per poll round (default DefaultBudget).
	Budget int
	// Cap bounds the queue; beyond it items are dropped (0 = unbounded).
	// This models fixed-size ring/backlog queues (netdev_max_backlog).
	Cap int
	// PollOverhead is a fixed cost charged once per poll round.
	PollOverhead Duration
	// WakeDelay is the latency between an enqueue onto an idle worker and
	// the start of its poll round (softirq raise / IPI propagation).
	WakeDelay Duration
	// IdleGrace keeps the worker armed for this long after its queue
	// drains before declaring it idle — NAPI/interrupt-moderation
	// behaviour that avoids paying WakeDelay (and the NIC an interrupt)
	// for every micro-burst. Zero disarms immediately.
	IdleGrace Duration
	// Cost returns the nominal processing cost of one item.
	Cost func(T) Duration
	// Then receives each item and its completion instant. It typically
	// enqueues the item onto the next stage. Required unless ProcessBatch
	// is set.
	Then func(T, Time)
	// ProcessBatch, if non-nil, replaces the per-item path: it receives
	// the drained batch and is responsible for charging the core (via
	// Core.Exec) and delivering results downstream. GRO uses this to
	// merge a batch before charging downstream stages.
	ProcessBatch func(batch []T)
	// Gate, if non-nil, is consulted before each enqueue: returning false
	// rejects the item without touching the queue or the Dropped counter
	// (the gate owns the accounting). Fault injection uses this to model
	// ring/backlog/socket admission loss independent of occupancy.
	Gate func(T) bool
	// ServeLog, if non-nil, observes each per-item execution window
	// [start, end) as it is charged to the core. Observation only — it
	// must not mutate the item or the worker. The causal profiler uses it
	// to split queue-wait from service time on workers it cannot wrap
	// (e.g. socket delivery-copy workers).
	ServeLog func(item T, start, end Time)

	queue     []T
	spare     []T // recycled backing buffer, ping-ponged with queue per poll
	scheduled bool
	pollTag   string // Name+"/poll", concatenated once
	chainKind int8   // 0 undecided, 1 T implements RunLink, 2 it doesn't

	// Closure-free scheduling: every poll and per-item delivery event is
	// scheduled through these fixed handler objects instead of a fresh
	// closure, so a worker's steady state allocates nothing per event.
	pollH workerPollH[T]
	thenH workerThenH[T]

	// Stats.
	Enqueued   uint64
	Processed  uint64
	Dropped    uint64
	MaxDepth   int
	PollRounds uint64
}

// workerPollH schedules a worker's poll rounds without closure allocation.
type workerPollH[T any] struct{ w *Worker[T] }

// Handle implements Handler.
func (p *workerPollH[T]) Handle(any, Time) { p.w.poll() }

// workerThenH delivers one processed item downstream at its completion
// instant; the item rides the event's arg slot.
type workerThenH[T any] struct{ w *Worker[T] }

// Handle implements Handler.
func (h *workerThenH[T]) Handle(arg any, now Time) { h.w.Then(arg.(T), now) }

// NewWorker returns a worker bound to core with a per-item cost function and
// downstream delivery fn.
func NewWorker[T any](name string, core *Core, sched *Scheduler, cost func(T) Duration, then func(T, Time)) *Worker[T] {
	return &Worker[T]{
		Name:  name,
		Core:  core,
		Sched: sched,
		Cost:  cost,
		Then:  then,
	}
}

// Len returns the current queue depth.
func (w *Worker[T]) Len() int { return len(w.queue) }

// StealQueue removes and returns every queued item (nil when empty). The
// overload watchdog uses it to re-steer work pending on a stalled core; any
// already-scheduled poll simply finds an empty queue and returns. Stolen
// items keep their Enqueued accounting — the thief re-enqueues them on
// another worker, which counts them there.
//
// The returned slice is the worker's own queue buffer (its ping-pong spare
// takes over as the live queue), not a copy: the caller must consume it
// before this worker next polls or is stolen from again, which the
// single-threaded simulation guarantees for any caller that drains the
// batch synchronously — as the watchdog does. Re-enqueueing onto a
// *different* worker while iterating is safe; re-enqueueing onto this one
// would append into the very buffer being iterated.
func (w *Worker[T]) StealQueue() []T {
	if len(w.queue) == 0 {
		return nil
	}
	out := w.queue
	w.queue = w.spare[:0]
	w.spare = out[:0] // recycle out's buffer once the caller is done with it
	return out
}

// Idle reports whether the worker has no queued items and no pending poll —
// i.e. the next enqueue will raise it from idle (costing an IRQ in stages
// that model interrupt-driven wakeup).
func (w *Worker[T]) Idle() bool { return len(w.queue) == 0 && !w.scheduled }

// Enqueue appends an item to the worker's queue, scheduling a poll round if
// the worker is idle. It reports whether the item was accepted (false means
// the bounded queue was full and the item was dropped).
func (w *Worker[T]) Enqueue(item T) bool {
	if w.Gate != nil && !w.Gate(item) {
		return false
	}
	if w.Cap > 0 && len(w.queue) >= w.Cap {
		w.Dropped++
		return false
	}
	w.queue = append(w.queue, item)
	w.Enqueued++
	if len(w.queue) > w.MaxDepth {
		w.MaxDepth = len(w.queue)
	}
	w.kick()
	return true
}

// pollHandler returns the worker's poll event handler, binding it lazily so
// literal-constructed workers work too.
func (w *Worker[T]) pollHandler() *workerPollH[T] {
	if w.pollH.w == nil {
		w.pollH.w = w
	}
	return &w.pollH
}

// kick schedules a poll round if one is not already pending.
func (w *Worker[T]) kick() {
	if w.scheduled || len(w.queue) == 0 {
		return
	}
	w.scheduled = true
	w.Sched.AfterHandler(w.WakeDelay, w.pollHandler(), nil)
}

func (w *Worker[T]) poll() {
	if f := w.Core.FreeAt(); f > w.Sched.Now() {
		// The core is still running earlier work (another softirq or an
		// earlier poll round): run when it frees up. The batch is then
		// snapshotted at execution time, so everything that accumulated
		// meanwhile is drained together — NAPI's natural batching under
		// load.
		w.Sched.AtHandler(f, w.pollHandler(), nil)
		return
	}
	w.scheduled = false
	if len(w.queue) == 0 {
		return
	}
	w.PollRounds++
	budget := w.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	n := len(w.queue)
	if n > budget {
		n = budget
	}
	// Ping-pong the queue's backing buffers: the drained prefix becomes
	// this round's batch, the remainder moves onto the spare buffer, and
	// the batch's buffer is recycled as the next spare — no per-poll
	// allocation once both buffers have grown. The batch slice is dead by
	// the time its buffer is reused (batches never outlive their poll).
	old := w.queue
	batch := old[:n:n]
	w.queue = append(w.spare[:0], old[n:]...)
	w.spare = old[:0]

	if w.PollOverhead > 0 {
		if w.pollTag == "" {
			w.pollTag = w.Name + "/poll"
		}
		w.Core.Exec(w.PollOverhead, w.pollTag)
	}
	if w.ProcessBatch != nil {
		w.ProcessBatch(batch)
	} else {
		if w.thenH.w == nil {
			w.thenH.w = w
		}
		// Chainable items (skbs, GSO units) deliver as one emission run:
		// completion instants within the batch are monotone (the core
		// executes FIFO), so the whole round costs the scheduler one heap
		// insert instead of one per item. Items whose type doesn't
		// implement RunLink keep the per-item path; that check is made
		// once on the zero value so value-typed items (ints in tests)
		// aren't boxed per item just to probe the interface.
		if w.chainKind == 0 {
			var zero T
			if _, ok := any(zero).(RunLink); ok {
				w.chainKind = 1
			} else {
				w.chainKind = 2
			}
		}
		var head, tail RunLink
		var headAt Time
		runN := 0
		for _, item := range batch {
			start, end := w.Core.Exec(w.Cost(item), w.Name)
			w.Processed++
			if w.ServeLog != nil {
				w.ServeLog(item, start, end)
			}
			if w.Then == nil {
				continue
			}
			if w.chainKind != 1 {
				w.Sched.AtHandler(end, &w.thenH, item)
				continue
			}
			link := any(item).(RunLink)
			if tail == nil {
				head, headAt = link, end
			} else {
				tail.SetNextRun(link, end)
			}
			tail = link
			runN++
		}
		if runN > 0 {
			w.Sched.ScheduleRun(&w.thenH, head, headAt, runN)
		}
	}
	switch {
	case len(w.queue) > 0:
		// NAPI re-arm: keep polling once the work charged so far is
		// done. The +1 yields to any sibling worker already waiting on
		// this core at the exact free instant, giving the round-robin
		// fairness softirqs have (without it a hot stage starves its
		// same-core neighbours).
		w.scheduled = true
		w.Sched.AtHandler(w.Core.FreeAt().Add(1), w.pollHandler(), nil)
	case w.IdleGrace > 0:
		// Stay armed briefly: arrivals within the grace window are
		// polled without a fresh wakeup (interrupt moderation).
		w.scheduled = true
		w.Sched.AtHandler(w.Core.FreeAt().Add(w.IdleGrace), w.pollHandler(), nil)
	}
}
