package sim

import (
	"testing"
	"testing/quick"
)

func TestWorkerProcessesFIFO(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(1, s)
	var got []int
	w := NewWorker("w", c, s, func(int) Duration { return 10 }, func(v int, _ Time) {
		got = append(got, v)
	})
	s.At(0, func() {
		for i := 0; i < 200; i++ {
			w.Enqueue(i)
		}
	})
	s.Run()
	if len(got) != 200 {
		t.Fatalf("processed %d items, want 200", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d processed out of order (got %d)", i, v)
		}
	}
	if w.Processed != 200 {
		t.Errorf("Processed=%d, want 200", w.Processed)
	}
}

func TestWorkerBudgetYields(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(1, s)
	w := NewWorker("w", c, s, func(int) Duration { return 10 }, func(int, Time) {})
	w.Budget = 16
	s.At(0, func() {
		for i := 0; i < 100; i++ {
			w.Enqueue(i)
		}
	})
	s.Run()
	// ceil(100/16) = 7 poll rounds
	if w.PollRounds != 7 {
		t.Errorf("PollRounds=%d, want 7", w.PollRounds)
	}
}

func TestWorkerBoundedQueueDrops(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(1, s)
	w := NewWorker("w", c, s, func(int) Duration { return 10 }, func(int, Time) {})
	w.Cap = 50
	accepted := 0
	s.At(0, func() {
		for i := 0; i < 100; i++ {
			if w.Enqueue(i) {
				accepted++
			}
		}
	})
	s.Run()
	if accepted != 50 {
		t.Errorf("accepted %d, want 50", accepted)
	}
	if w.Dropped != 50 {
		t.Errorf("Dropped=%d, want 50", w.Dropped)
	}
}

func TestWorkerWakeDelay(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(1, s)
	var doneAt Time
	w := NewWorker("w", c, s, func(int) Duration { return 10 }, func(_ int, end Time) {
		doneAt = end
	})
	w.WakeDelay = 500
	s.At(100, func() { w.Enqueue(1) })
	s.Run()
	// enqueue at 100, poll at 600, processing 10 -> 610
	if doneAt != 610 {
		t.Errorf("completion at %v, want 610", doneAt)
	}
}

func TestWorkerCompletionTimesSerializeOnCore(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(1, s)
	var ends []Time
	w := NewWorker("w", c, s, func(int) Duration { return 100 }, func(_ int, end Time) {
		ends = append(ends, end)
	})
	s.At(0, func() {
		for i := 0; i < 5; i++ {
			w.Enqueue(i)
		}
	})
	s.Run()
	for i, e := range ends {
		want := Time(100 * (i + 1))
		if e != want {
			t.Errorf("item %d completed at %v, want %v", i, e, want)
		}
	}
}

func TestTwoWorkersInterleaveOnOneCore(t *testing.T) {
	// Two stages sharing a core must interleave in batches, not run in
	// parallel: total elapsed equals the sum of all work.
	s := NewScheduler(1)
	c := NewCore(1, s)
	var lastEnd Time
	w2 := NewWorker("s2", c, s, func(int) Duration { return 30 }, func(_ int, end Time) {
		if end > lastEnd {
			lastEnd = end
		}
	})
	w1 := NewWorker("s1", c, s, func(int) Duration { return 20 }, func(v int, _ Time) {
		w2.Enqueue(v)
	})
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			w1.Enqueue(i)
		}
	})
	s.Run()
	if want := Time(10*20 + 10*30); lastEnd != want {
		t.Errorf("pipeline finished at %v, want %v (serialized on one core)", lastEnd, want)
	}
}

func TestTwoWorkersOverlapOnTwoCores(t *testing.T) {
	s := NewScheduler(1)
	c1, c2 := NewCore(1, s), NewCore(2, s)
	var lastEnd Time
	w2 := NewWorker("s2", c2, s, func(int) Duration { return 30 }, func(_ int, end Time) {
		if end > lastEnd {
			lastEnd = end
		}
	})
	w2.Budget = 1 // force per-item polls so overlap is visible
	w1 := NewWorker("s1", c1, s, func(int) Duration { return 20 }, func(v int, _ Time) {
		w2.Enqueue(v)
	})
	w1.Budget = 1
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			w1.Enqueue(i)
		}
	})
	s.Run()
	serialized := Time(10*20 + 10*30)
	if lastEnd >= serialized {
		t.Errorf("two-core pipeline finished at %v, want earlier than %v", lastEnd, serialized)
	}
	// Stage-2 core can only start after the first stage-1 completion.
	if lastEnd < Time(20+10*30) {
		t.Errorf("finished impossibly early at %v", lastEnd)
	}
}

func TestWorkerProcessBatchOverride(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(1, s)
	var batches [][]int
	w := &Worker[int]{Name: "b", Core: c, Sched: s, Budget: 8}
	w.ProcessBatch = func(batch []int) {
		cp := append([]int(nil), batch...)
		batches = append(batches, cp)
		c.Exec(Duration(len(batch))*5, "b")
	}
	s.At(0, func() {
		for i := 0; i < 20; i++ {
			w.Enqueue(i)
		}
	})
	s.Run()
	if len(batches) != 3 { // 8+8+4
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	if len(batches[0]) != 8 || len(batches[2]) != 4 {
		t.Errorf("batch sizes %d,%d,%d want 8,8,4", len(batches[0]), len(batches[1]), len(batches[2]))
	}
}

func TestWorkerPollOverheadCharged(t *testing.T) {
	s := NewScheduler(1)
	c := NewCore(1, s)
	w := NewWorker("w", c, s, func(int) Duration { return 10 }, func(int, Time) {})
	w.PollOverhead = 100
	w.Budget = 4
	s.At(0, func() {
		for i := 0; i < 8; i++ {
			w.Enqueue(i)
		}
	})
	s.Run()
	// 2 polls * 100 overhead + 8 items * 10
	if got := c.BusyTotal(); got != 280 {
		t.Errorf("busy %v, want 280", got)
	}
	if c.BusyByTag()["w/poll"] != 200 {
		t.Errorf("poll overhead tag = %v, want 200", c.BusyByTag()["w/poll"])
	}
}

// Property: a worker delivers every accepted item exactly once, in enqueue
// order, regardless of budget and batch pattern.
func TestWorkerDeliveryProperty(t *testing.T) {
	f := func(budget uint8, counts []uint8) bool {
		s := NewScheduler(11)
		c := NewCore(1, s)
		var got []int
		w := NewWorker("w", c, s, func(int) Duration { return 7 }, func(v int, _ Time) {
			got = append(got, v)
		})
		w.Budget = int(budget%32) + 1
		next := 0
		at := Time(0)
		for _, cnt := range counts {
			n := int(cnt % 16)
			at += 50
			start := next
			s.At(at, func() {
				for i := 0; i < n; i++ {
					w.Enqueue(start + i)
				}
			})
			next += n
		}
		s.Run()
		if len(got) != next {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
