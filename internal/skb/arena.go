package skb

// This file gives SKB a kernel-shaped buffer model. Like struct sk_buff's
// head/data/tail/end pointers, an SKB owns at most one backing array (the
// arena) and exposes a window into it:
//
//	buf:  [ headroom | Data window | tailroom ]
//	       ^0         ^off          ^off+len(Data)    ^len(buf)
//
// Reserve sizes the arena and positions an empty window; Push/Pull move the
// window's front edge (skb_push/skb_pull — encap and decap become O(1)
// offset arithmetic over reserved headroom instead of allocate-and-copy);
// Put/TrimFront move the tail/front without reallocating. GRO chains whole
// absorbed windows as frags (the kernel's frag-list shape) so a merge never
// copies payload; the single terminal reader walks Parts or materializes
// with Bytes.
//
// Compatibility: code may still assign a foreign slice directly
// (s.Data = b). Such a window has no arena (buf == nil, zero headroom);
// the first Push/Put adopts it into a fresh arena, so the operations are
// total either way.

// DefaultHeadroom is the front reserve granted when an operation must
// create an arena for a window that was not built via Reserve. It covers
// the overlay's worst case (50 bytes of outer headers) with slack, the same
// role NET_SKB_PAD plays in the kernel.
const DefaultHeadroom = 64

// minArena is the smallest arena allocated; sizes grow in powers of two so
// pooled arenas are interchangeable across slightly different frames.
const minArena = 256

// frag is one chained reference to bytes merged from an absorbed SKB:
// view is the logical byte run, arena the backing array stolen with it
// (nil when the view was foreign). The pool reclaims arenas on Put.
type frag struct {
	view  []byte
	arena []byte
}

// arenaFor returns a power-of-two sized backing array of at least need
// bytes.
func arenaFor(need int) []byte {
	n := minArena
	for n < need {
		n <<= 1
	}
	return make([]byte, n)
}

// Reserve arranges an empty Data window with at least headroom bytes in
// front of it and size bytes of tailroom behind it, reusing the current
// arena when it is large enough (the pooled steady state) and allocating a
// fresh one otherwise. Any previous window contents — frag chain included
// — are discarded.
func (s *SKB) Reserve(headroom, size int) {
	if headroom < 0 || size < 0 {
		panic("skb: Reserve with negative sizes")
	}
	for i := range s.frags {
		s.frags[i] = frag{}
	}
	s.frags = s.frags[:0]
	if need := headroom + size; cap(s.buf) < need {
		s.buf = arenaFor(need)
	} else {
		s.buf = s.buf[:cap(s.buf)]
	}
	s.off = headroom
	s.Data = s.buf[headroom:headroom]
}

// Headroom returns the bytes available in front of the window (0 for a
// foreign window).
func (s *SKB) Headroom() int {
	if s.buf == nil {
		return 0
	}
	return s.off
}

// Tailroom returns the bytes available behind the window (0 for a foreign
// window).
func (s *SKB) Tailroom() int {
	if s.buf == nil {
		return 0
	}
	return len(s.buf) - s.off - len(s.Data)
}

// grow reallocates the arena so the current window bytes survive with at
// least head bytes of headroom and tail bytes of tailroom. This is the
// cold path — steady-state callers Reserve enough room up front.
func (s *SKB) grow(head, tail int) {
	ln := len(s.Data)
	nb := arenaFor(head + ln + tail)
	copy(nb[head:], s.Data)
	s.buf = nb
	s.off = head
	s.Data = nb[head : head+ln]
}

// adopt moves a foreign window (s.Data set directly, no arena) into a
// fresh arena with the given headroom, preserving its bytes.
func (s *SKB) adopt(headroom int) {
	data := s.Data
	s.buf = arenaFor(headroom + len(data))
	s.off = headroom
	s.Data = s.buf[headroom : headroom+len(data)]
	copy(s.Data, data)
}

// Push extends the window n bytes at the front — skb_push — and returns
// the newly exposed front region for the caller to fill (it is not
// zeroed). O(1) while headroom suffices; otherwise the arena grows.
func (s *SKB) Push(n int) []byte {
	if n < 0 {
		panic("skb: Push with negative size")
	}
	if s.buf == nil {
		s.adopt(n + DefaultHeadroom)
	}
	if s.off < n {
		// Grow for the window and the requested headroom only. Deliberately
		// NOT preserving the current tailroom: arenaFor's power-of-two
		// rounding already leaves slack, and carrying existing slack into
		// the next size request would compound — repeated growing pushes
		// would double the arena each time regardless of how many bytes
		// are actually live.
		s.grow(n+DefaultHeadroom, 0)
	}
	ln := len(s.Data)
	s.off -= n
	s.Data = s.buf[s.off : s.off+ln+n]
	return s.Data[:n]
}

// Pull shrinks the window n bytes at the front — skb_pull — returning the
// removed front region (still aliasing the arena, valid until the next
// front operation). Always O(1). Panics if n exceeds the window: callers
// validate headers before pulling them.
func (s *SKB) Pull(n int) []byte {
	if n < 0 || n > len(s.Data) {
		panic("skb: Pull beyond window")
	}
	removed := s.Data[:n]
	if s.buf == nil {
		s.Data = s.Data[n:]
		return removed
	}
	ln := len(s.Data)
	s.off += n
	s.Data = s.buf[s.off : s.off+ln-n]
	return removed
}

// TrimFront drops n bytes from the front of the window (Pull without the
// returned region).
func (s *SKB) TrimFront(n int) { s.Pull(n) }

// Put extends the window n bytes at the tail — skb_put — and returns the
// newly exposed tail region for the caller to fill (it is not zeroed).
// O(1) while tailroom suffices; otherwise the arena grows.
func (s *SKB) Put(n int) []byte {
	if n < 0 {
		panic("skb: Put with negative size")
	}
	if s.buf == nil {
		if s.Data == nil {
			s.Reserve(DefaultHeadroom, n)
		} else {
			s.adopt(DefaultHeadroom)
		}
	}
	if s.Tailroom() < n {
		s.grow(s.off, n)
	}
	ln := len(s.Data)
	s.Data = s.buf[s.off : s.off+ln+n]
	return s.Data[ln:]
}

// Parts returns the number of discrete byte regions the SKB carries: the
// head window plus one per chained frag. Zero when the SKB carries no
// bytes at all (synthetic runs).
func (s *SKB) Parts() int {
	if s.Data == nil && len(s.frags) == 0 {
		return 0
	}
	return 1 + len(s.frags)
}

// Part returns the i'th byte region: 0 is the head window, 1..NFrags are
// the chained frags in merge order. Each part is one complete wire frame
// on the GRO path.
func (s *SKB) Part(i int) []byte {
	if i == 0 {
		return s.Data
	}
	return s.frags[i-1].view
}

// TrimPartFront drops n bytes from the front of part i — the per-frame
// decap primitive: after validating a frame's outer headers the caller
// trims them off with pointer arithmetic, head window and frags alike.
func (s *SKB) TrimPartFront(i, n int) {
	if i == 0 {
		s.TrimFront(n)
		return
	}
	s.frags[i-1].view = s.frags[i-1].view[n:]
}

// NFrags returns the number of chained frags (absorbed windows).
func (s *SKB) NFrags() int { return len(s.frags) }

// Bytes returns the SKB's logical byte stream. With no frag chain this is
// the head window itself — no copy; with frags the parts are materialized
// into a single fresh slice. Only terminal readers (socket verification
// fallbacks, captures, tests) should call it — the hot path walks Parts.
func (s *SKB) Bytes() []byte {
	if len(s.frags) == 0 {
		return s.Data
	}
	n := len(s.Data)
	for _, f := range s.frags {
		n += len(f.view)
	}
	out := make([]byte, 0, n)
	out = append(out, s.Data...)
	for _, f := range s.frags {
		out = append(out, f.view...)
	}
	return out
}

// SetBytes replaces the SKB's byte stream with a foreign slice, dropping
// the arena and any frag chain. Cold path for callers that rebuilt the
// stream elsewhere; pooled capacity is lost to the garbage collector.
func (s *SKB) SetBytes(b []byte) {
	s.buf = nil
	s.off = 0
	for i := range s.frags {
		s.frags[i] = frag{}
	}
	s.frags = s.frags[:0]
	s.Data = b
}

// Clone returns a deep copy of the SKB: metadata field-for-field, byte
// stream (head window plus any frag chain, linearized) copied into the
// clone's own arena with the head window's headroom preserved so the copy
// can be pushed/pulled like the original. CP is shared, matching the
// previous shallow-copy semantics.
func (s *SKB) Clone() *SKB {
	c := &SKB{}
	*c = *s
	c.buf, c.off, c.Data, c.frags = nil, 0, nil, nil
	// A clone is not part of any emission run its original rides.
	c.runNext, c.runAt = nil, 0
	if s.Parts() > 0 {
		total := len(s.Data)
		for _, f := range s.frags {
			total += len(f.view)
		}
		c.Reserve(s.Headroom(), total)
		b := c.Put(total)
		n := copy(b, s.Data)
		for _, f := range s.frags {
			n += copy(b[n:], f.view)
		}
	}
	return c
}
