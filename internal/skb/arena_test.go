package skb

import (
	"bytes"
	"testing"
)

func TestReservePositionsEmptyWindow(t *testing.T) {
	s := &SKB{}
	s.Reserve(50, 1400)
	if s.Data == nil || len(s.Data) != 0 {
		t.Fatalf("Reserve window = %v, want empty non-nil", s.Data)
	}
	if s.Headroom() != 50 {
		t.Errorf("Headroom = %d, want 50", s.Headroom())
	}
	if s.Tailroom() < 1400 {
		t.Errorf("Tailroom = %d, want >= 1400", s.Tailroom())
	}
}

func TestPushPullRoundTrip(t *testing.T) {
	s := &SKB{}
	s.Reserve(50, 100)
	copy(s.Put(4), "body")
	copy(s.Push(3), "hdr")
	if string(s.Data) != "hdrbody" {
		t.Fatalf("window after Push = %q", s.Data)
	}
	if s.Headroom() != 47 {
		t.Errorf("Headroom after Push(3) = %d, want 47", s.Headroom())
	}
	arena := &s.buf[0]
	if got := s.Pull(3); string(got) != "hdr" {
		t.Errorf("Pull returned %q, want hdr", got)
	}
	if string(s.Data) != "body" || s.Headroom() != 50 {
		t.Errorf("window after Pull = %q headroom %d", s.Data, s.Headroom())
	}
	if &s.buf[0] != arena {
		t.Error("Push/Pull reallocated the arena")
	}
}

func TestTrimFrontDropsBytes(t *testing.T) {
	s := &SKB{}
	s.Reserve(0, 8)
	copy(s.Put(6), "abcdef")
	s.TrimFront(2)
	if string(s.Data) != "cdef" {
		t.Errorf("window after TrimFront = %q", s.Data)
	}
}

func TestPushGrowsWhenHeadroomShort(t *testing.T) {
	s := &SKB{}
	s.Reserve(2, 4)
	copy(s.Put(4), "body")
	copy(s.Push(10), "0123456789") // headroom 2 < 10: must grow, keep bytes
	if string(s.Data) != "0123456789body" {
		t.Errorf("window after growing Push = %q", s.Data)
	}
}

func TestPutGrowsWhenTailroomShort(t *testing.T) {
	s := &SKB{}
	s.Reserve(4, 2)
	copy(s.Put(2), "ab")
	copy(s.Put(300), bytes.Repeat([]byte{'x'}, 300))
	if len(s.Data) != 302 || string(s.Data[:2]) != "ab" {
		t.Errorf("window after growing Put = %d bytes, head %q", len(s.Data), s.Data[:2])
	}
	if s.Headroom() != 4 {
		t.Errorf("grow lost headroom: %d, want 4", s.Headroom())
	}
}

// Direct assignment of a foreign slice (the pre-arena idiom) keeps
// working: the first Push adopts it into a fresh arena with default
// headroom, preserving bytes.
func TestForeignDataAdoptedOnPush(t *testing.T) {
	s := &SKB{Data: []byte("inner")}
	if s.Headroom() != 0 || s.Tailroom() != 0 {
		t.Fatal("foreign window must report zero head/tailroom")
	}
	copy(s.Push(4), "out:")
	if string(s.Data) != "out:inner" {
		t.Errorf("window after adopting Push = %q", s.Data)
	}
	if s.buf == nil {
		t.Error("Push did not adopt the foreign window into an arena")
	}
}

func TestForeignDataPullIsZeroCopy(t *testing.T) {
	backing := []byte("hdrpayload")
	s := &SKB{Data: backing}
	s.Pull(3)
	if string(s.Data) != "payload" {
		t.Fatalf("window after foreign Pull = %q", s.Data)
	}
	if &s.Data[0] != &backing[3] {
		t.Error("foreign Pull copied instead of reslicing")
	}
}

func TestPartsAndTrimPartFront(t *testing.T) {
	a, b := seg(1, 0), seg(1, 1)
	a.Data = []byte("xxAAA")
	b.Data = []byte("yyBBB")
	a.Merge(b)
	if a.Parts() != 2 {
		t.Fatalf("Parts = %d, want 2", a.Parts())
	}
	a.TrimPartFront(0, 2)
	a.TrimPartFront(1, 2)
	if string(a.Part(0)) != "AAA" || string(a.Part(1)) != "BBB" {
		t.Errorf("parts after trim: %q %q", a.Part(0), a.Part(1))
	}
	if string(a.Bytes()) != "AAABBB" {
		t.Errorf("stream after per-part trim: %q", a.Bytes())
	}
}

func TestPartsZeroWithoutBytes(t *testing.T) {
	s := seg(1, 0)
	if s.Parts() != 0 {
		t.Errorf("Parts on byte-less skb = %d, want 0", s.Parts())
	}
}

func TestBytesNoChainIsWindow(t *testing.T) {
	s := &SKB{}
	s.Reserve(0, 4)
	copy(s.Put(4), "abcd")
	if got := s.Bytes(); &got[0] != &s.Data[0] {
		t.Error("Bytes copied despite having no frag chain")
	}
}

func TestSetBytesDropsArenaAndChain(t *testing.T) {
	a, b := seg(1, 0), seg(1, 1)
	a.Data, b.Data = []byte{1}, []byte{2}
	a.Merge(b)
	a.SetBytes([]byte{9, 9})
	if a.Parts() != 1 || string(a.Bytes()) != "\x09\x09" {
		t.Errorf("SetBytes left state: parts=%d bytes=%v", a.Parts(), a.Bytes())
	}
	if a.buf != nil || a.off != 0 {
		t.Error("SetBytes kept the arena")
	}
}

func TestCloneDeepCopiesStream(t *testing.T) {
	a, b := seg(1, 0), seg(1, 1)
	a.Reserve(10, 4)
	copy(a.Put(3), "AAA")
	b.Data = []byte("BB")
	a.Merge(b)

	c := a.Clone()
	if string(c.Bytes()) != "AAABB" {
		t.Fatalf("clone stream = %q", c.Bytes())
	}
	if c.Headroom() != 10 {
		t.Errorf("clone headroom = %d, want 10 (preserved)", c.Headroom())
	}
	if c.NFrags() != 0 {
		t.Errorf("clone has %d frags, want linearized 0", c.NFrags())
	}
	// Mutating the clone must not touch the original and vice versa.
	c.Data[0] = 'Z'
	if a.Data[0] != 'A' {
		t.Error("clone shares bytes with the original")
	}
	if a.Segs != c.Segs || a.WireLen != c.WireLen || a.FlowID != c.FlowID {
		t.Error("clone metadata differs")
	}
}

func TestCloneByteLess(t *testing.T) {
	s := seg(4, 2)
	c := s.Clone()
	if c.Data != nil || c.Parts() != 0 {
		t.Errorf("byte-less clone grew bytes: %+v", c)
	}
	if c.FlowID != 4 || c.Seq != 2 {
		t.Error("byte-less clone lost metadata")
	}
}
