package skb

import (
	"bytes"
	"testing"
)

// refSKB is the naive copying reference model the arena implementation is
// checked against: the window and each chained frag are plain owned byte
// slices, and every operation copies. If the offset arithmetic in arena.go
// ever diverges from these semantics the fuzzer finds the byte where.
type refSKB struct {
	window []byte
	frags  [][]byte
}

func (r *refSKB) stream() []byte {
	out := append([]byte(nil), r.window...)
	for _, f := range r.frags {
		out = append(out, f...)
	}
	return out
}

// FuzzSKBArena drives random Reserve/Push/Pull/Put/TrimFront/Merge/Clone
// sequences against the copying reference model, asserting byte equality
// of the head window and the full logical stream after every operation,
// and periodically cycling the SKB through a Pool to check that reuse
// hands back a logically zero SKB and (in -race/skbdebug builds) that the
// full arena was poisoned.
func FuzzSKBArena(f *testing.F) {
	f.Add([]byte{0, 50, 14, 3, 5, 1, 8, 2, 3, 4, 7, 6})
	f.Add([]byte{0, 0, 0, 3, 200, 1, 255, 5, 1, 1, 200, 6})
	f.Add([]byte{5, 10, 5, 10, 5, 10, 6, 2, 30, 7, 0, 1})
	f.Add(bytes.Repeat([]byte{3, 40, 2, 20, 1, 60, 4, 9}, 8))

	f.Fuzz(func(t *testing.T, ops []byte) {
		pool := &Pool{}
		s := pool.Get()
		ref := &refSKB{}
		fill := byte(1) // deterministic content generator, never PoisonByte

		next := func(i *int) int {
			if *i >= len(ops) {
				return 0
			}
			v := int(ops[*i])
			*i++
			return v
		}
		fillBytes := func(b []byte) []byte {
			for i := range b {
				b[i] = fill
				fill++
				if PoisonEnabled && fill == PoisonByte {
					fill++
				}
			}
			return b
		}
		check := func(op string) {
			t.Helper()
			if ref.window == nil {
				if len(s.Data) != 0 {
					t.Fatalf("%s: window %v, reference empty", op, s.Data)
				}
			} else if !bytes.Equal(s.Data, ref.window) {
				t.Fatalf("%s: window %v, reference %v", op, s.Data, ref.window)
			}
			if got, want := s.Bytes(), ref.stream(); !bytes.Equal(got, want) {
				t.Fatalf("%s: stream %v, reference %v", op, got, want)
			}
			if s.NFrags() != len(ref.frags) {
				t.Fatalf("%s: %d frags, reference %d", op, s.NFrags(), len(ref.frags))
			}
			if s.buf != nil && s.Headroom()+len(s.Data)+s.Tailroom() != len(s.buf) {
				t.Fatalf("%s: headroom %d + window %d + tailroom %d != arena %d",
					op, s.Headroom(), len(s.Data), s.Tailroom(), len(s.buf))
			}
		}

		for i := 0; i < len(ops); {
			switch next(&i) % 8 {
			case 0: // Reserve
				h, n := next(&i), next(&i)*8
				s.Reserve(h, n)
				ref.window = []byte{}
				ref.frags = nil
				check("Reserve")
			case 1: // Push
				n := next(&i) % 64
				fill0 := fill
				fillBytes(s.Push(n))
				fill = fill0
				ref.window = append(fillBytes(make([]byte, n)), ref.window...)
				check("Push")
			case 2: // Pull
				if len(s.Data) == 0 {
					continue
				}
				n := next(&i) % len(s.Data)
				got := s.Pull(n)
				if !bytes.Equal(got, ref.window[:n]) {
					t.Fatalf("Pull returned %v, reference %v", got, ref.window[:n])
				}
				ref.window = ref.window[n:]
				check("Pull")
			case 3: // Put
				n := next(&i) % 256
				fill0 := fill
				fillBytes(s.Put(n))
				fill = fill0
				ref.window = append(ref.window, fillBytes(make([]byte, n))...)
				check("Put")
			case 4: // TrimFront
				if len(s.Data) == 0 {
					continue
				}
				n := next(&i) % len(s.Data)
				s.TrimFront(n)
				ref.window = ref.window[n:]
				check("TrimFront")
			case 5: // Merge a freshly built pooled SKB
				if s.Data == nil {
					continue // chaining onto a byte-less head takes over the window; keep models aligned
				}
				n := next(&i)%128 + 1
				other := pool.Get()
				other.Proto, other.Segs = TCP, 1
				other.Reserve(0, n)
				fill0 := fill
				fillBytes(other.Put(n))
				fill = fill0
				s.Merge(other)
				ref.frags = append(ref.frags, fillBytes(make([]byte, n)))
				pool.Put(other) // GRO's recycle of the absorbed skb
				check("Merge")
			case 6: // Clone must reproduce the stream without sharing bytes
				c := s.Clone()
				if !bytes.Equal(c.Bytes(), ref.stream()) {
					t.Fatalf("Clone stream %v, reference %v", c.Bytes(), ref.stream())
				}
				if len(c.Data) > 0 {
					old := c.Data[0]
					c.Data[0] ^= 0xFF
					if len(s.Data) > 0 && s.Data[0] != ref.window[0] {
						t.Fatal("Clone shares bytes with the original")
					}
					c.Data[0] = old
				}
			case 7: // pool round trip: reuse must be logically zero, arena poisoned
				arena := s.buf
				pool.Put(s)
				if PoisonEnabled {
					for j, b := range arena[:cap(arena)] {
						if b != PoisonByte {
							t.Fatalf("arena[%d] = %#x after Put, want PoisonByte", j, b)
						}
					}
				}
				s = pool.Get()
				if !logicallyZero(s) {
					t.Fatalf("pool reuse not logically zero: %+v", s)
				}
				ref.window = nil
				ref.frags = nil
				check("PoolCycle")
			}
		}
	})
}
