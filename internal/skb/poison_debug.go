//go:build race || skbdebug

package skb

import "mflow/internal/sim"

// PoisonEnabled reports whether Pool.Put scribbles over recycled SKBs.
// It is true under -race or the skbdebug build tag.
const PoisonEnabled = true

// Poison values chosen to be loud: a flow/seq/time of this magnitude never
// occurs in a real run, so a stale reference read after Put is unmistakable
// in test failures and trace output.
const (
	PoisonU64  = 0xdead_beef_dead_beef
	PoisonInt  = -0x5eed
	PoisonTime = sim.Time(-0x7fff_ffff_ffff)
	// PoisonByte fills every recycled arena byte: a frame read after Put
	// parses as garbage (bad checksums, bad lengths) instead of stale
	// wire bytes.
	PoisonByte = 0xA5
)

func poison(s *SKB) {
	s.FlowID = PoisonU64
	s.Proto = Proto(PoisonInt)
	s.Seq = PoisonU64
	s.Segs = PoisonInt
	s.WireLen = PoisonInt
	s.PayloadLen = PoisonInt
	s.Encap = true
	s.PktID = PoisonU64
	s.MsgID = PoisonU64
	s.MsgEnd = true
	s.MicroFlow = PoisonU64
	s.Branch = PoisonInt
	s.SentAt = PoisonTime
	s.ArrivedAt = PoisonTime
	s.LastStage = "POISONED"
	s.LastStageAt = PoisonTime
	s.QueuedAt = PoisonTime
	s.MemCharge = PoisonInt
	s.Accounted = true
	s.runAt = PoisonTime
	poisonArena(s.buf[:cap(s.buf)])
}

// poisonArena scribbles a full backing array (headroom and tailroom
// included) before the pool reclaims it.
func poisonArena(b []byte) {
	for i := range b {
		b[i] = PoisonByte
	}
}
