//go:build !race && !skbdebug

package skb

// PoisonEnabled reports whether Pool.Put scribbles over recycled SKBs.
// Release builds skip the scribble; Get fully zeroes on reuse either way.
const PoisonEnabled = false

// PoisonByte matches the debug builds' arena scribble value so code may
// reference it unconditionally; release builds never write it.
const PoisonByte = 0xA5

func poison(*SKB) {}

func poisonArena([]byte) {}
