//go:build !race && !skbdebug

package skb

// PoisonEnabled reports whether Pool.Put scribbles over recycled SKBs.
// Release builds skip the scribble; Get fully zeroes on reuse either way.
const PoisonEnabled = false

func poison(*SKB) {}
