//go:build race || skbdebug

package skb

import (
	"testing"
)

// In -race (or skbdebug) builds Put scribbles poison values over the SKB, so
// any stale reference that survives Put reads obviously-wrong values instead
// of plausible stale ones. Get still hands back fully zeroed SKBs, so the
// poisoning is invisible to correct code — pooled and unpooled runs stay
// bit-identical.
func TestPutPoisonsRecycledSKB(t *testing.T) {
	if !PoisonEnabled {
		t.Fatal("PoisonEnabled must be true under this build tag")
	}
	p := &Pool{}
	s := p.Get()
	s.FlowID = 7
	s.Seq = 42
	s.Segs = 3
	p.Put(s)

	// s is now a stale reference; every field must read as poison.
	if s.FlowID != PoisonU64 || s.Seq != PoisonU64 || s.MsgID != PoisonU64 {
		t.Errorf("stale u64 fields not poisoned: %+v", s)
	}
	if s.Segs != PoisonInt || s.WireLen != PoisonInt || s.Branch != PoisonInt {
		t.Errorf("stale int fields not poisoned: %+v", s)
	}
	if s.SentAt != PoisonTime || s.ArrivedAt != PoisonTime {
		t.Errorf("stale time fields not poisoned: %+v", s)
	}
	if s.LastStage != "POISONED" {
		t.Errorf("stale LastStage = %q, want POISONED", s.LastStage)
	}
	if s.Data != nil {
		t.Errorf("stale Data not dropped: %v", s.Data)
	}

	// The poison must never leak through Get.
	s2 := p.Get()
	if s2 != s {
		t.Fatal("Get did not reuse the poisoned SKB")
	}
	if !logicallyZero(s2) {
		t.Errorf("Get returned poison residue: %+v", s2)
	}
}

// Put scribbles the FULL arena — headroom, window and tailroom, plus every
// arena chained by GRO merges — so a stale view into recycled backing
// bytes reads PoisonByte, never plausible stale wire bytes.
func TestPutPoisonsFullArena(t *testing.T) {
	p := &Pool{}
	s := p.Get()
	s.Reserve(8, 8)
	copy(s.Put(8), "ABCDEFGH")
	window := s.Data // stale view kept past Put
	arena := s.buf[:cap(s.buf)]

	other := p.Get()
	other.Proto = TCP
	other.Segs = 1
	other.Seq = 1
	s.Proto = TCP
	s.Segs = 1
	other.Reserve(0, 4)
	copy(other.Put(4), "WXYZ")
	chained := other.Data
	s.Merge(other)
	p.Put(other)
	p.Put(s)

	for i, b := range arena {
		if b != PoisonByte {
			t.Fatalf("arena[%d] = %#x after Put, want PoisonByte", i, b)
		}
	}
	for i, b := range window {
		if b != PoisonByte {
			t.Fatalf("stale window[%d] = %#x after Put, want PoisonByte", i, b)
		}
	}
	for i, b := range chained {
		if b != PoisonByte {
			t.Fatalf("chained view[%d] = %#x after Put, want PoisonByte", i, b)
		}
	}
}
