package skb

import (
	"reflect"
	"testing"
)

func TestPoolReusesAndZeroes(t *testing.T) {
	p := &Pool{}
	s := p.Get()
	if p.Allocs != 1 {
		t.Fatalf("Allocs = %d after first Get, want 1", p.Allocs)
	}
	s.FlowID = 7
	s.Seq = 99
	s.Segs = 3
	s.MsgEnd = true
	s.LastStage = "gro"
	s.Data = []byte{1, 2, 3}
	p.Put(s)
	if p.Puts != 1 || p.Free() != 1 {
		t.Fatalf("Puts = %d, Free = %d after Put, want 1 and 1", p.Puts, p.Free())
	}

	s2 := p.Get()
	if s2 != s {
		t.Fatal("Get did not reuse the recycled SKB")
	}
	if p.Allocs != 1 {
		t.Errorf("Allocs = %d after reuse, want still 1", p.Allocs)
	}
	if p.Free() != 0 {
		t.Errorf("Free = %d after reuse, want 0", p.Free())
	}
	// Reuse must be logically indistinguishable from a fresh allocation:
	// every field zeroed, no matter what the previous owner (or the
	// poisoner) left. Only buffer capacity (arena, frag slice) survives.
	if !logicallyZero(s2) {
		t.Errorf("Get returned a non-zeroed SKB: %+v", s2)
	}
}

// logicallyZero reports whether the SKB is indistinguishable from &SKB{}
// to any reader of its logical state: all exported fields zero, no window,
// no frags. Retained capacity (arena bytes, frag slice capacity) is
// explicitly allowed — that is the pool's whole point.
func logicallyZero(s *SKB) bool {
	c := *s
	c.buf, c.off, c.frags = nil, 0, nil
	return len(s.Data) == 0 && len(s.frags) == 0 && s.off == 0 &&
		reflect.DeepEqual(c, SKB{Data: c.Data})
}

// Arena capacity survives Put/Get so the wire-mode steady state allocates
// nothing: a recycled SKB Reserves into the same backing array.
func TestPoolRetainsArenaAcrossReuse(t *testing.T) {
	p := &Pool{}
	s := p.Get()
	s.Reserve(50, 1400)
	copy(s.Put(3), []byte{1, 2, 3})
	arena := &s.buf[0]
	p.Put(s)

	s2 := p.Get()
	if s2 != s {
		t.Fatal("Get did not reuse the recycled SKB")
	}
	if !logicallyZero(s2) {
		t.Fatalf("recycled SKB not logically zero: %+v", s2)
	}
	s2.Reserve(50, 1400)
	if &s2.buf[0] != arena {
		t.Error("Reserve after reuse did not reuse the retained arena")
	}
}

// Put reclaims the arenas GRO chained onto a head (the absorbed SKBs'
// backing arrays) and Get re-arms arena-less SKBs from that reserve, so
// merge-heavy steady states stay allocation-free too.
func TestPoolReclaimsFragArenas(t *testing.T) {
	p := &Pool{}
	head, tail := p.Get(), p.Get()
	head.Proto, tail.Proto = TCP, TCP
	head.Segs, tail.Segs = 1, 1
	tail.Seq = 1
	head.Reserve(0, 4)
	copy(head.Put(4), "abcd")
	tail.Reserve(0, 4)
	copy(tail.Put(4), "efgh")
	tailArena := &tail.buf[0]

	head.Merge(tail)
	if tail.Data != nil || tail.buf != nil {
		t.Fatal("Merge left bytes on the absorbed SKB")
	}
	p.Put(tail) // GRO recycles the absorbed skb: no arena to reclaim
	p.Put(head) // terminal Put reclaims both head arena and chained arena
	if len(p.arenas) != 1 {
		t.Fatalf("pool reclaimed %d chained arenas, want 1", len(p.arenas))
	}

	// The arena-less SKB (tail went in bufferless) gets re-armed from the
	// reclaimed reserve on the next Get that needs one.
	var reArmed bool
	for i := 0; i < 2; i++ {
		s := p.Get()
		if s.buf != nil && &s.buf[0] == tailArena {
			reArmed = true
		}
	}
	if !reArmed {
		t.Error("no recycled SKB was re-armed with the reclaimed arena")
	}
}

func TestPoolDataDroppedOnPut(t *testing.T) {
	p := &Pool{}
	s := p.Get()
	s.Data = []byte{0xaa, 0xbb}
	p.Put(s)
	if got := p.Get(); got.Data != nil {
		t.Errorf("recycled SKB still holds wire bytes: %v", got.Data)
	}
}

// All Pool methods tolerate a nil receiver, so components can be wired with
// no pool at all and still call Get/Put unconditionally.
func TestPoolNilReceiver(t *testing.T) {
	var p *Pool
	s := p.Get()
	if s == nil {
		t.Fatal("nil pool Get returned nil")
	}
	p.Put(s) // must not panic
	if p.Free() != 0 {
		t.Errorf("nil pool Free = %d, want 0", p.Free())
	}
}

func TestPoolPutNil(t *testing.T) {
	p := &Pool{}
	p.Put(nil)
	if p.Puts != 0 || p.Free() != 0 {
		t.Errorf("Put(nil) counted: Puts = %d, Free = %d, want 0 and 0", p.Puts, p.Free())
	}
}
