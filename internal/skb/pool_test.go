package skb

import (
	"reflect"
	"testing"
)

func TestPoolReusesAndZeroes(t *testing.T) {
	p := &Pool{}
	s := p.Get()
	if p.Allocs != 1 {
		t.Fatalf("Allocs = %d after first Get, want 1", p.Allocs)
	}
	s.FlowID = 7
	s.Seq = 99
	s.Segs = 3
	s.MsgEnd = true
	s.LastStage = "gro"
	s.Data = []byte{1, 2, 3}
	p.Put(s)
	if p.Puts != 1 || p.Free() != 1 {
		t.Fatalf("Puts = %d, Free = %d after Put, want 1 and 1", p.Puts, p.Free())
	}

	s2 := p.Get()
	if s2 != s {
		t.Fatal("Get did not reuse the recycled SKB")
	}
	if p.Allocs != 1 {
		t.Errorf("Allocs = %d after reuse, want still 1", p.Allocs)
	}
	if p.Free() != 0 {
		t.Errorf("Free = %d after reuse, want 0", p.Free())
	}
	// Reuse must be indistinguishable from a fresh allocation: every field
	// zeroed, no matter what the previous owner (or the poisoner) left.
	if !reflect.DeepEqual(*s2, SKB{}) {
		t.Errorf("Get returned a non-zeroed SKB: %+v", s2)
	}
}

func TestPoolDataDroppedOnPut(t *testing.T) {
	p := &Pool{}
	s := p.Get()
	s.Data = []byte{0xaa, 0xbb}
	p.Put(s)
	if got := p.Get(); got.Data != nil {
		t.Errorf("recycled SKB still holds wire bytes: %v", got.Data)
	}
}

// All Pool methods tolerate a nil receiver, so components can be wired with
// no pool at all and still call Get/Put unconditionally.
func TestPoolNilReceiver(t *testing.T) {
	var p *Pool
	s := p.Get()
	if s == nil {
		t.Fatal("nil pool Get returned nil")
	}
	p.Put(s) // must not panic
	if p.Free() != 0 {
		t.Errorf("nil pool Free = %d, want 0", p.Free())
	}
}

func TestPoolPutNil(t *testing.T) {
	p := &Pool{}
	p.Put(nil)
	if p.Puts != 0 || p.Free() != 0 {
		t.Errorf("Put(nil) counted: Puts = %d, Free = %d, want 0 and 0", p.Puts, p.Free())
	}
}
