// Package skb models the kernel's socket buffer — the unit of work that
// travels through every stage of the simulated network stack, mirroring
// struct sk_buff. An SKB describes one on-wire segment (or, after GRO,
// a run of merged consecutive segments). MFLOW's splitter stamps each SKB
// with a micro-flow identifier, exactly as the kernel patch stores the ID
// in the skb data structure (paper §III-B, footnote 5).
package skb

import (
	"fmt"

	"mflow/internal/sim"
)

// Proto is the transport protocol of the flow an SKB belongs to.
type Proto int

// Transport protocols used in the experiments.
const (
	TCP Proto = iota
	UDP
)

// String names the protocol.
func (p Proto) String() string {
	if p == TCP {
		return "TCP"
	}
	return "UDP"
}

// SKB is one unit of packet-processing work. Before GRO it represents a
// single MTU-sized wire segment; after GRO it may represent several merged
// consecutive segments of the same flow (Segs > 1).
type SKB struct {
	// FlowID identifies the transport flow (5-tuple surrogate).
	FlowID uint64
	// Proto is the flow's transport protocol.
	Proto Proto

	// Seq is this segment's position in the flow's NIC arrival order,
	// counted in segments. After GRO the SKB covers [Seq, Seq+Segs).
	Seq uint64
	// Segs is the number of wire segments this SKB covers (>= 1).
	Segs int

	// WireLen is the total on-the-wire bytes covered, including all
	// headers (outer encapsulation too while Encap is true).
	WireLen int
	// PayloadLen is the application payload bytes covered.
	PayloadLen int
	// Encap reports whether the segment still carries the outer
	// VxLAN/UDP/IP/Ethernet headers (cleared by decapsulation).
	Encap bool

	// MsgID is the application message the segment belongs to, and
	// MsgEnd marks the final segment of that message (used to clock
	// request/response workloads and per-message latency).
	MsgID  uint64
	MsgEnd bool

	// MicroFlow is the micro-flow identifier assigned by MFLOW's
	// splitter: Seq/batchSize + 1. Zero means "not split". Branch is the
	// splitting-queue index the micro-flow was routed to (meaningful
	// when MicroFlow != 0).
	MicroFlow uint64
	Branch    int

	// PktID is the monotonic per-NIC arrival identifier, stamped when the
	// NIC accepts the frame. Unlike the SKB pointer (which skb.Pool reuse
	// aliases) or Seq (which a retransmission repeats), PktID is unique per
	// physical arrival for the lifetime of a run; 0 means "never arrived".
	// Journeys and causal attribution key on it.
	PktID uint64

	// SentAt is when the sender created the segment; ArrivedAt is when
	// the NIC received it. Latency is measured delivery-minus-SentAt.
	SentAt    sim.Time
	ArrivedAt sim.Time

	// LastStage / LastStageAt record the pipeline stage that last emitted
	// this skb and when — the provenance the observability layer uses to
	// attribute inter-stage queueing delay (stage_gap{from,to}). Empty/zero
	// unless a run has a registry attached.
	LastStage   string
	LastStageAt sim.Time

	// QueuedAt is when the skb last entered a backlog or splitting queue;
	// the CoDel-style AQM (internal/overload) measures queue sojourn as
	// dequeue-time minus QueuedAt. Zero unless overload control is wired.
	QueuedAt sim.Time

	// MemCharge / Accounted are the global skb memory account's stamp
	// (internal/overload): the bytes charged at NIC admission and whether
	// the charge is still outstanding. Release balances against MemCharge,
	// not WireLen, so GRO growth after admission cannot skew the account.
	MemCharge int
	Accounted bool

	// Data optionally holds the real wire bytes (nil in synthetic runs;
	// populated in wire-mode runs and correctness tests). When built via
	// Reserve/Push/Put it is a window into the SKB's pooled arena (see
	// arena.go); assigning a foreign slice directly also works, at the
	// cost of zero headroom until the first Push adopts it.
	Data []byte

	// buf is the backing arena Data windows into, off the window's start
	// offset within it (invariant: Data == buf[off:off+len(Data)] whenever
	// buf != nil). frags chains whole windows absorbed by GRO merges,
	// kernel frag-list style. All three are pool-managed capacity, not
	// logical state: Pool.Get hands them back zero-length but warm.
	buf   []byte
	off   int
	frags []frag

	// runNext / runAt chain this skb into a scheduler emission run
	// (sim.ScheduleRun): runNext is the run's following entry, runAt its
	// fire time. Pool-managed like the arena — the scheduler consumes and
	// clears the link before the skb's own delivery handler runs, Put
	// clears it defensively, and debug builds poison runAt.
	runNext *SKB
	runAt   sim.Time

	// CP is the causal profiler's per-packet attribution record (nil
	// unless a run is probed). Declared as any to keep skb free of an
	// internal/causal dependency; only the profiler reads or writes it.
	CP any
}

// String summarizes the SKB for diagnostics.
func (s *SKB) String() string {
	return fmt.Sprintf("skb{flow=%d seq=%d segs=%d bytes=%d mf=%d}",
		s.FlowID, s.Seq, s.Segs, s.WireLen, s.MicroFlow)
}

// NextRun implements sim.RunLink: the next entry of the emission run this
// skb heads, or (nil, 0) at chain end — returned as an untyped nil so the
// scheduler's nil check works.
func (s *SKB) NextRun() (sim.RunLink, sim.Time) {
	if s.runNext == nil {
		return nil, 0
	}
	return s.runNext, s.runAt
}

// SetNextRun implements sim.RunLink.
func (s *SKB) SetNextRun(next sim.RunLink, at sim.Time) {
	if next == nil {
		s.runNext, s.runAt = nil, 0
		return
	}
	s.runNext, s.runAt = next.(*SKB), at
}

// EndSeq returns the first segment sequence after this SKB's coverage.
func (s *SKB) EndSeq() uint64 { return s.Seq + uint64(s.Segs) }

// CanMerge reports whether other directly continues s within the same flow
// and message framing, i.e. GRO may coalesce them.
func (s *SKB) CanMerge(other *SKB) bool {
	return s.FlowID == other.FlowID &&
		s.Proto == TCP && other.Proto == TCP &&
		s.Encap == other.Encap &&
		!s.MsgEnd &&
		other.Seq == s.EndSeq()
}

// Merge absorbs other (which must satisfy CanMerge) into s, extending its
// coverage the way GRO grows a super-packet. Bytes are never copied:
// other's window (and any chain it already carries) is chained onto s as
// frag references, arenas included, and other is left byte-less so its
// Put cannot reclaim what s now owns. The merged stream is read via
// Parts/Bytes.
func (s *SKB) Merge(other *SKB) {
	s.Segs += other.Segs
	s.WireLen += other.WireLen
	s.PayloadLen += other.PayloadLen
	s.MsgID = other.MsgID
	s.MsgEnd = other.MsgEnd
	if other.Data != nil {
		if s.Data == nil && len(s.frags) == 0 {
			// Byte-less head: take over other's window outright.
			s.buf, s.off, s.Data = other.buf, other.off, other.Data
		} else {
			s.frags = append(s.frags, frag{view: other.Data, arena: other.buf})
		}
		other.buf, other.off, other.Data = nil, 0, nil
	}
	if len(other.frags) > 0 {
		s.frags = append(s.frags, other.frags...)
		for i := range other.frags {
			other.frags[i] = frag{}
		}
		other.frags = other.frags[:0]
	}
}

// Pool recycles SKBs to keep large simulations allocation-light. The
// simulator is single-goroutine per run, so a plain freelist suffices; a
// Pool must never be shared across Schedulers (one pool per simulated run),
// which preserves both determinism and race-freedom.
//
// Ownership rules (see DESIGN.md §8): exactly one component owns an SKB at a
// time, and only the owner at a terminal point — final socket delivery, a
// drop at an admission queue, a GRO merge that absorbs the segment, or a
// failed Deliver — may Put it back. A missed Put merely costs a pool miss;
// a double Put corrupts the freelist, so when in doubt the skb leaks to the
// garbage collector instead.
//
// All methods tolerate a nil receiver (Get falls back to plain allocation),
// so pooling can be disabled wholesale by wiring no pool at all.
type Pool struct {
	free []*SKB
	// arenas holds backing arrays reclaimed from frag chains on Put:
	// GRO strips an absorbed SKB of its arena, so Get re-arms
	// arena-less SKBs from this list to keep the steady state
	// allocation-free.
	arenas [][]byte
	// Allocs counts pool misses (fresh allocations).
	Allocs uint64
	// Puts counts SKBs returned for reuse.
	Puts uint64
}

// Get returns a logically zeroed SKB, reusing a recycled one when
// available. Buffer capacity is retained across reuse: the arena (and the
// frag chain's slice capacity) come back warm but empty — Data is nil,
// headroom/tailroom unclaimed — so wire-mode steady state allocates
// nothing.
func (p *Pool) Get() *SKB {
	if p == nil {
		return &SKB{}
	}
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		buf, frags := s.buf, s.frags[:0]
		*s = SKB{}
		s.buf, s.frags = buf, frags
		if s.buf == nil {
			if m := len(p.arenas); m > 0 {
				s.buf = p.arenas[m-1]
				p.arenas[m-1] = nil
				p.arenas = p.arenas[:m-1]
			}
		}
		return s
	}
	p.Allocs++
	return &SKB{}
}

// Put returns an SKB to the pool. The caller must not retain it. In -race
// (or skbdebug-tagged) builds the SKB's fields are poisoned — including
// every byte of its arena and of each chained arena — so any stale
// reference that survives Put reads obviously-wrong values instead of
// plausible stale ones. Chained arenas are reclaimed for reuse; chained
// views are dropped.
func (p *Pool) Put(s *SKB) {
	if p == nil || s == nil {
		return
	}
	for i := range s.frags {
		if a := s.frags[i].arena; a != nil {
			poisonArena(a)
			p.arenas = append(p.arenas, a)
		}
		s.frags[i] = frag{}
	}
	s.frags = s.frags[:0]
	poison(s)
	s.Data = nil
	s.off = 0
	s.CP = nil
	s.runNext, s.runAt = nil, 0
	p.Puts++
	p.free = append(p.free, s)
}

// Free returns the number of SKBs currently available for reuse.
func (p *Pool) Free() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}
