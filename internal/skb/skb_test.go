package skb

import (
	"testing"
	"testing/quick"
)

func seg(flow, seq uint64) *SKB {
	return &SKB{FlowID: flow, Proto: TCP, Seq: seq, Segs: 1, WireLen: 1500, PayloadLen: 1448}
}

func TestCanMergeConsecutiveSameFlow(t *testing.T) {
	a, b := seg(1, 0), seg(1, 1)
	if !a.CanMerge(b) {
		t.Fatal("consecutive same-flow TCP segments must merge")
	}
	a.Merge(b)
	if a.Segs != 2 || a.WireLen != 3000 || a.PayloadLen != 2896 {
		t.Errorf("merged skb wrong: %+v", a)
	}
	if a.EndSeq() != 2 {
		t.Errorf("EndSeq %d, want 2", a.EndSeq())
	}
}

func TestCannotMergeGapsOrOtherFlows(t *testing.T) {
	a := seg(1, 0)
	if a.CanMerge(seg(1, 2)) {
		t.Error("gap must not merge")
	}
	if a.CanMerge(seg(2, 1)) {
		t.Error("different flow must not merge")
	}
	udp := seg(1, 1)
	udp.Proto = UDP
	if a.CanMerge(udp) {
		t.Error("UDP must not merge (GRO ineffective for UDP, per the paper)")
	}
	encap := seg(1, 1)
	encap.Encap = true
	if a.CanMerge(encap) {
		t.Error("encapsulated segment must not merge with decapsulated")
	}
	end := seg(1, 0)
	end.MsgEnd = true
	if end.CanMerge(seg(1, 1)) {
		t.Error("message boundary must stop merging")
	}
}

func TestMergeChainsAccumulate(t *testing.T) {
	a := seg(1, 10)
	for i := uint64(11); i < 20; i++ {
		b := seg(1, i)
		if !a.CanMerge(b) {
			t.Fatalf("seq %d should merge", i)
		}
		a.Merge(b)
	}
	if a.Segs != 10 || a.Seq != 10 || a.EndSeq() != 20 {
		t.Errorf("chain merge wrong: %+v", a)
	}
}

func TestMergeCarriesData(t *testing.T) {
	a, b := seg(1, 0), seg(1, 1)
	a.Data = []byte{1, 2}
	b.Data = []byte{3}
	a.Merge(b)
	// The merge chains b's window as a frag reference — no copy — so the
	// head window keeps its own bytes and the logical stream is read via
	// Bytes (or part-wise via Parts/Part).
	if string(a.Bytes()) != "\x01\x02\x03" {
		t.Errorf("merged stream %v", a.Bytes())
	}
	if string(a.Data) != "\x01\x02" {
		t.Errorf("head window %v, want untouched {1,2}", a.Data)
	}
	if a.Parts() != 2 || string(a.Part(1)) != "\x03" {
		t.Errorf("parts wrong: n=%d", a.Parts())
	}
	if b.Data != nil {
		t.Errorf("absorbed skb still holds bytes: %v", b.Data)
	}
}

func TestMergeChainTransfersToNewHead(t *testing.T) {
	a, b, c := seg(1, 0), seg(1, 1), seg(1, 2)
	a.Data, b.Data, c.Data = []byte{1}, []byte{2}, []byte{3}
	b.Merge(c) // b now carries a chain
	a.Merge(b) // a must absorb both b's window and its chain, in order
	if string(a.Bytes()) != "\x01\x02\x03" {
		t.Errorf("stream after chained merge: %v", a.Bytes())
	}
	if b.NFrags() != 0 || b.Data != nil {
		t.Error("absorbed skb kept its chain")
	}
}

func TestPoolRecycles(t *testing.T) {
	var p Pool
	a := p.Get()
	a.FlowID = 99
	a.Data = []byte{1}
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Error("pool did not recycle")
	}
	if b.FlowID != 0 || b.Data != nil {
		t.Error("recycled skb not zeroed")
	}
	if p.Allocs != 1 {
		t.Errorf("Allocs=%d, want 1", p.Allocs)
	}
	if p.Get() == b {
		t.Error("second Get must allocate fresh")
	}
	p.Put(nil) // must not panic
}

// Property: merging any consecutive run preserves total segments and bytes.
func TestMergeConservationProperty(t *testing.T) {
	f := func(lens []uint16) bool {
		if len(lens) == 0 {
			return true
		}
		if len(lens) > 64 {
			lens = lens[:64]
		}
		var totalBytes, totalPayload int
		skbs := make([]*SKB, len(lens))
		seqNo := uint64(0)
		for i, l := range lens {
			b := int(l%1400) + 100
			skbs[i] = &SKB{FlowID: 7, Proto: TCP, Seq: seqNo, Segs: 1, WireLen: b, PayloadLen: b - 52}
			totalBytes += b
			totalPayload += b - 52
			seqNo++
		}
		head := skbs[0]
		for _, s := range skbs[1:] {
			if !head.CanMerge(s) {
				return false
			}
			head.Merge(s)
		}
		return head.Segs == len(lens) &&
			head.WireLen == totalBytes &&
			head.PayloadLen == totalPayload &&
			head.EndSeq() == uint64(len(lens))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProtoString(t *testing.T) {
	if TCP.String() != "TCP" || UDP.String() != "UDP" {
		t.Error("proto names wrong")
	}
}

func TestSKBString(t *testing.T) {
	s := seg(3, 14)
	if got := s.String(); got != "skb{flow=3 seq=14 segs=1 bytes=1500 mf=0}" {
		t.Errorf("String() = %q", got)
	}
}
