package steering

import (
	"testing"

	"mflow/internal/nic"
)

// chiSquared computes Pearson's statistic for observed counts against a
// uniform expectation.
func chiSquared(counts []int, total int) float64 {
	expected := float64(total) / float64(len(counts))
	x2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		x2 += d * d / expected
	}
	return x2
}

// chiSquaredCritical are the α=0.001 upper critical values for the degrees
// of freedom the mask sizes below produce. A uniform hash fails this about
// once in a thousand (seedless, deterministic inputs: never flaky).
var chiSquaredCritical = map[int]float64{
	1: 10.828,
	3: 16.266,
	7: 24.322,
}

// flowPopulations are the synthetic flow-ID sets steered through the
// tables: sequential IDs (the simulator's own surrogate scheme), strided
// IDs (many flows sharing low bits — the classic weak-hash failure mode),
// and high-entropy IDs.
func flowPopulations(n int) map[string][]uint64 {
	seq := make([]uint64, n)
	strided := make([]uint64, n)
	mixed := make([]uint64, n)
	for i := 0; i < n; i++ {
		seq[i] = uint64(i + 1)
		strided[i] = uint64(i+1) << 12
		mixed[i] = nic.Hash64(uint64(i)*2654435761 + 12345)
	}
	return map[string][]uint64{"sequential": seq, "strided": strided, "mixed": mixed}
}

// TestRPSTableDistributionUniform checks the software-steering hash: over
// every synthetic flow population and mask size, per-CPU assignment counts
// must pass a chi-squared uniformity test at α=0.001. A biased hash would
// concentrate flows on few cores and silently undo the inter-flow
// parallelism the RPS baseline models.
func TestRPSTableDistributionUniform(t *testing.T) {
	const flows = 4096
	for name, ids := range flowPopulations(flows) {
		for _, maskSize := range []int{2, 4, 8} {
			mask := make([]int, maskSize)
			for i := range mask {
				mask[i] = i + 3 // offset: CPUFor must return mask entries, not raw hashes
			}
			tab := &RPSTable{Mask: mask}
			counts := make([]int, maskSize)
			for _, id := range ids {
				cpu := tab.CPUFor(id)
				if cpu < 3 || cpu >= 3+maskSize {
					t.Fatalf("%s/mask=%d: CPUFor(%d) = %d, outside the mask", name, maskSize, id, cpu)
				}
				counts[cpu-3]++
			}
			x2 := chiSquared(counts, flows)
			if crit := chiSquaredCritical[maskSize-1]; x2 > crit {
				t.Errorf("%s/mask=%d: chi-squared %.2f exceeds %.2f (α=0.001); counts %v",
					name, maskSize, x2, crit, counts)
			}
		}
	}
}

// TestNICRSSDistributionUniform applies the same uniformity bar to the
// hardware-RSS stand-in (nic.Hash64 queue selection), which Fig. 4's
// multi-flow scenarios and the RPS/MFLOW topologies all depend on.
func TestNICRSSDistributionUniform(t *testing.T) {
	const flows = 4096
	for name, ids := range flowPopulations(flows) {
		for _, queues := range []int{2, 4, 8} {
			counts := make([]int, queues)
			for _, id := range ids {
				counts[nic.Hash64(id)%uint64(queues)]++
			}
			x2 := chiSquared(counts, flows)
			if crit := chiSquaredCritical[queues-1]; x2 > crit {
				t.Errorf("%s/queues=%d: chi-squared %.2f exceeds %.2f (α=0.001); counts %v",
					name, queues, x2, crit, counts)
			}
		}
	}
}

// TestRPSTableStability pins the steering contract RSS and RPS share: the
// same flow identity always lands on the same CPU — across repeated
// lookups and across table instances — and distinct mask sizes only remap,
// never crash. Per-flow stickiness is what limits these systems to
// inter-flow parallelism (the limitation MFLOW exists to lift), so the
// simulator must model it exactly.
func TestRPSTableStability(t *testing.T) {
	mask := []int{0, 1, 2, 3}
	tab := &RPSTable{Mask: mask}
	for id := uint64(1); id <= 1000; id++ {
		first := tab.CPUFor(id)
		for i := 0; i < 3; i++ {
			if got := tab.CPUFor(id); got != first {
				t.Fatalf("flow %d moved from cpu %d to %d on lookup %d", id, first, got, i)
			}
		}
		// A fresh table with the same mask is the same function.
		if got := (&RPSTable{Mask: mask}).CPUFor(id); got != first {
			t.Fatalf("flow %d: fresh table steered to %d, want %d", id, got, first)
		}
	}
	// Empty mask degrades to CPU 0 rather than dividing by zero.
	if got := (&RPSTable{}).CPUFor(7); got != 0 {
		t.Errorf("empty mask: CPUFor = %d, want 0", got)
	}
}
