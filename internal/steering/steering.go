// Package steering enumerates and describes the packet-steering systems the
// paper evaluates: the vanilla single-core path, Linux RPS, FALCON's device-
// and function-level softirq pipelining, and MFLOW. It provides the
// placement plans (which softirq stage group runs on which core) that the
// overlay topology builder realizes, plus the RPS hash table mechanism.
package steering

import (
	"fmt"

	"mflow/internal/nic"
	"mflow/internal/skb"
)

// System identifies a packet-processing configuration under test.
type System int

// The evaluated systems (paper §V: native, vanilla overlay, RPS, FALCON,
// MFLOW; FALCON in both its device-level and function-level modes).
const (
	Native System = iota
	Vanilla
	RPS
	FalconDev
	FalconFunc
	MFlow
	// Slim (NSDI'19) is an extension baseline from the paper's related
	// work: it bypasses the virtual bridge and network device entirely,
	// mapping container connections onto the host network — near-native
	// for TCP, but inapplicable to connectionless protocols (UDP falls
	// back to the standard overlay).
	Slim
)

// Systems lists every configuration the paper evaluates, in presentation
// order. Slim is an extension baseline, listed in ExtendedSystems.
var Systems = []System{Native, Vanilla, RPS, FalconDev, FalconFunc, MFlow}

// ExtendedSystems adds the related-work baselines implemented beyond the
// paper's own evaluation.
var ExtendedSystems = append(append([]System{}, Systems...), Slim)

// String names the system as the paper's figures do.
func (s System) String() string {
	switch s {
	case Native:
		return "native"
	case Vanilla:
		return "vanilla"
	case RPS:
		return "rps"
	case FalconDev:
		return "falcon-dev"
	case FalconFunc:
		return "falcon-func"
	case MFlow:
		return "mflow"
	case Slim:
		return "slim"
	}
	return fmt.Sprintf("system(%d)", int(s))
}

// ParseSystem resolves a name produced by String.
func ParseSystem(name string) (System, error) {
	for _, s := range ExtendedSystems {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("steering: unknown system %q", name)
}

// HandoffLabel describes how the system moves packets between pipeline
// stages — the mechanism behind any "handoff" segments in a causal latency
// breakdown (mflowinspect prints it under each system's table).
func HandoffLabel(s System) string {
	switch s {
	case Native, Slim:
		return "none (single softirq)"
	case Vanilla:
		return "softirq re-raise (same core)"
	case RPS:
		return "RPS steer + IPI"
	case FalconDev, FalconFunc:
		return "explicit pipeline handoff"
	case MFlow:
		return "split dispatch + IPI"
	}
	return "unknown"
}

// Stage names the softirq work units the plans place on cores. They map to
// the paper's Fig. 2/3 pipeline: the pNIC softirq (skb allocation, GRO,
// outer IP/UDP), the VxLAN softirq (decapsulation), and the veth softirq
// (bridge, veth crossing, inner IP + transport).
type Stage int

// Stage groups in pipeline order.
const (
	StageAlloc Stage = iota // driver poll + skb allocation
	StageGRO                // generic receive offload + outer IP/UDP parse
	StageVXLAN              // tunnel decapsulation
	StageInner              // bridge + veth + inner IP + L4
)

// String names the stage for CPU accounting.
func (st Stage) String() string {
	switch st {
	case StageAlloc:
		return "alloc"
	case StageGRO:
		return "gro"
	case StageVXLAN:
		return "vxlan"
	case StageInner:
		return "veth"
	}
	return fmt.Sprintf("stage(%d)", int(st))
}

// Group is a set of stages fused into one softirq worker on one core.
// CoreOff is an offset into the flow's kernel-core allocation (0 = the core
// its NIC queue IRQ lands on).
type Group struct {
	Stages  []Stage
	CoreOff int
}

// Plan is the per-flow stage placement for one baseline system. MFLOW is
// not expressed as a Plan — its splitting topology is built by the overlay
// package from an mflow configuration.
type Plan struct {
	System System
	Groups []Group
	// Handoff reports whether crossing between groups pays FALCON's
	// explicit per-skb pipeline handoff cost.
	Handoff bool
	// PreGROHandoff reports whether the first handoff happens before GRO
	// (per wire segment, FALCON-func's expensive edge).
	PreGROHandoff bool
}

// Width returns the number of distinct kernel cores the plan touches.
func (p Plan) Width() int {
	max := 0
	for _, g := range p.Groups {
		if g.CoreOff > max {
			max = g.CoreOff
		}
	}
	return max + 1
}

// PlanFor returns the placement for a baseline system. Overlay flows have
// the full four-stage pipeline; native flows collapse VXLAN away (the plan
// simply omits it).
//
//	slim        : like native for TCP (the overlay is bypassed); for UDP
//	              Slim does not apply and the plan degrades to vanilla
//	vanilla     : [alloc gro vxlan inner] on one core (the kernel default)
//	rps         : [alloc gro] on the IRQ core, [vxlan inner] on the RPS core
//	falcon-dev  : [alloc gro] | [vxlan] | [inner] on three cores
//	falcon-func : [alloc] | [gro] | [vxlan] | [inner] on four cores
func PlanFor(sys System, proto skb.Proto) Plan {
	switch sys {
	case Slim:
		if proto == skb.UDP {
			// Slim cannot carry connectionless protocols (paper §VI);
			// UDP traffic stays on the standard overlay.
			return PlanFor(Vanilla, proto)
		}
		return Plan{System: sys, Groups: []Group{
			{Stages: []Stage{StageAlloc, StageGRO, StageInner}, CoreOff: 0},
		}}
	case Native:
		return Plan{System: sys, Groups: []Group{
			{Stages: []Stage{StageAlloc, StageGRO, StageInner}, CoreOff: 0},
		}}
	case Vanilla:
		return Plan{System: sys, Groups: []Group{
			{Stages: []Stage{StageAlloc, StageGRO}, CoreOff: 0},
			{Stages: []Stage{StageVXLAN}, CoreOff: 0},
			{Stages: []Stage{StageInner}, CoreOff: 0},
		}}
	case RPS:
		return Plan{System: sys, Groups: []Group{
			{Stages: []Stage{StageAlloc, StageGRO}, CoreOff: 0},
			{Stages: []Stage{StageVXLAN}, CoreOff: 1},
			{Stages: []Stage{StageInner}, CoreOff: 1},
		}}
	case FalconDev:
		return Plan{System: sys, Handoff: true, Groups: []Group{
			{Stages: []Stage{StageAlloc, StageGRO}, CoreOff: 0},
			{Stages: []Stage{StageVXLAN}, CoreOff: 1},
			{Stages: []Stage{StageInner}, CoreOff: 2},
		}}
	case FalconFunc:
		return Plan{System: sys, Handoff: true, PreGROHandoff: true, Groups: []Group{
			{Stages: []Stage{StageAlloc}, CoreOff: 0},
			{Stages: []Stage{StageGRO}, CoreOff: 1},
			{Stages: []Stage{StageVXLAN}, CoreOff: 2},
			{Stages: []Stage{StageInner}, CoreOff: 3},
		}}
	default:
		_ = proto
		panic(fmt.Sprintf("steering: no static plan for %v", sys))
	}
}

// RPSTable is the software steering table (rps_cpus): a hash over the flow
// identity selects a CPU from the mask, in the first softirq's context —
// inter-flow parallelism only, exactly like hardware RSS.
type RPSTable struct {
	// Mask is the set of eligible core indices.
	Mask []int
}

// CPUFor returns the steered core index for a flow.
func (t *RPSTable) CPUFor(flowID uint64) int {
	if len(t.Mask) == 0 {
		return 0
	}
	return t.Mask[nic.Hash64(flowID^0x5bd1e995)%uint64(len(t.Mask))]
}
