package steering

import (
	"testing"

	"mflow/internal/skb"
)

func TestSystemStringsRoundtrip(t *testing.T) {
	for _, s := range Systems {
		got, err := ParseSystem(s.String())
		if err != nil || got != s {
			t.Errorf("roundtrip %v failed: %v %v", s, got, err)
		}
	}
	if _, err := ParseSystem("bogus"); err == nil {
		t.Error("bogus system must not parse")
	}
	if System(99).String() == "" {
		t.Error("unknown system should still format")
	}
}

func TestPlanShapes(t *testing.T) {
	cases := []struct {
		sys      System
		groups   int
		width    int
		handoff  bool
		preGRO   bool
		hasVXLAN bool
	}{
		{Native, 1, 1, false, false, false},
		{Vanilla, 3, 1, false, false, true},
		{RPS, 3, 2, false, false, true},
		{FalconDev, 3, 3, true, false, true},
		{FalconFunc, 4, 4, true, true, true},
	}
	for _, c := range cases {
		p := PlanFor(c.sys, skb.TCP)
		if len(p.Groups) != c.groups {
			t.Errorf("%v: %d groups, want %d", c.sys, len(p.Groups), c.groups)
		}
		if p.Width() != c.width {
			t.Errorf("%v: width %d, want %d", c.sys, p.Width(), c.width)
		}
		if p.Handoff != c.handoff || p.PreGROHandoff != c.preGRO {
			t.Errorf("%v: handoff flags %v/%v", c.sys, p.Handoff, p.PreGROHandoff)
		}
		found := false
		for _, g := range p.Groups {
			for _, st := range g.Stages {
				if st == StageVXLAN {
					found = true
				}
			}
		}
		if found != c.hasVXLAN {
			t.Errorf("%v: vxlan presence %v, want %v", c.sys, found, c.hasVXLAN)
		}
	}
}

func TestPlanForMFlowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PlanFor(MFlow) must panic — mflow is built dynamically")
		}
	}()
	PlanFor(MFlow, skb.TCP)
}

func TestVanillaAllOnOneCore(t *testing.T) {
	p := PlanFor(Vanilla, skb.UDP)
	for _, g := range p.Groups {
		if g.CoreOff != 0 {
			t.Fatal("vanilla must squeeze every stage onto one core")
		}
	}
}

func TestStageNames(t *testing.T) {
	want := map[Stage]string{StageAlloc: "alloc", StageGRO: "gro", StageVXLAN: "vxlan", StageInner: "veth"}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("%d name %q, want %q", st, st.String(), name)
		}
	}
}

func TestRPSTableStableAndSpread(t *testing.T) {
	tab := &RPSTable{Mask: []int{2, 3, 4, 5}}
	seen := map[int]int{}
	for f := uint64(0); f < 400; f++ {
		c := tab.CPUFor(f)
		if c != tab.CPUFor(f) {
			t.Fatal("steering must be stable per flow")
		}
		seen[c]++
	}
	if len(seen) != 4 {
		t.Errorf("RPS spread over %d cores, want 4", len(seen))
	}
	for c := range seen {
		if c < 2 || c > 5 {
			t.Errorf("steered to core %d outside mask", c)
		}
	}
	empty := &RPSTable{}
	if empty.CPUFor(1) != 0 {
		t.Error("empty mask should fall back to 0")
	}
}
