// Package trace records per-packet journeys through the simulated receive
// path: which stage handled each segment on which core at what simulated
// time. Traces are the debugging companion to the aggregate metrics — they
// show a micro-flow fanning out across splitting cores and re-converging at
// the merge point, or a FALCON pipeline hopping cores per device.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"mflow/internal/sim"
)

// Event is one observation of a packet at a pipeline point.
type Event struct {
	At sim.Time
	// Pkt is the NIC's monotonic arrival id (skb.PktID). It is the only
	// identity that survives skb.Pool reuse and distinguishes a
	// retransmission from the original: (FlowID, Seq) repeats across
	// both, a pooled *skb.SKB pointer aliases unrelated packets, but Pkt
	// is unique per physical arrival. 0 means the recording point had no
	// arrival id (synthetic events).
	Pkt    uint64
	FlowID uint64
	Seq    uint64
	Segs   int
	// Stage names the pipeline point ("nic", "alloc", "vxlan", "merge",
	// "socket", ...); Core is the CPU it ran on (-1 if not applicable).
	Stage string
	Core  int
}

// DefaultMaxEvents is the event cap applied when Tracer.MaxEvents is unset.
const DefaultMaxEvents = 65536

// Tracer collects events up to a cap (tracing every packet of a long run
// would dwarf the simulation itself). The zero value is a usable tracer
// with the default cap and no filters.
type Tracer struct {
	// MaxEvents bounds memory (<= 0 means DefaultMaxEvents); OnlyFlow,
	// when non-zero, restricts tracing to one flow; OnlySeqBelow, when
	// non-zero, restricts to the first packets of each flow.
	MaxEvents    int
	OnlyFlow     uint64
	OnlySeqBelow uint64

	events  []Event
	Skipped uint64

	// byFlow memoizes events grouped by flow and sorted by time, built on
	// first query (Journey, CoreOccupancy) and invalidated by Record.
	byFlow map[uint64][]Event
}

// New returns a tracer with the default cap.
func New() *Tracer { return &Tracer{} }

// cap returns the effective event cap.
func (t *Tracer) cap() int {
	if t.MaxEvents > 0 {
		return t.MaxEvents
	}
	return DefaultMaxEvents
}

// Record appends an event, subject to the tracer's filters and cap.
func (t *Tracer) Record(at sim.Time, pkt, flowID, seq uint64, segs int, stage string, core int) {
	if t == nil {
		return
	}
	if t.OnlyFlow != 0 && flowID != t.OnlyFlow {
		return
	}
	if t.OnlySeqBelow != 0 && seq >= t.OnlySeqBelow {
		return
	}
	if len(t.events) >= t.cap() {
		t.Skipped++
		return
	}
	t.byFlow = nil
	t.events = append(t.events, Event{At: at, Pkt: pkt, FlowID: flowID, Seq: seq, Segs: segs, Stage: stage, Core: core})
}

// Events returns everything recorded, in recording order.
func (t *Tracer) Events() []Event { return t.events }

// flowIndex returns events grouped by flow, each group sorted by time
// (stably, so same-instant events keep recording order). The index is built
// once and reused until the next Record.
func (t *Tracer) flowIndex() map[uint64][]Event {
	if t.byFlow == nil {
		m := make(map[uint64][]Event)
		for _, e := range t.events {
			m[e.FlowID] = append(m[e.FlowID], e)
		}
		for _, evs := range m {
			evs := evs
			sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		}
		t.byFlow = m
	}
	return t.byFlow
}

// Journey returns the events touching segment seq of a flow (an event
// covering [Seq, Seq+Segs) matches), in time order. Repeated queries reuse
// the memoized per-flow index instead of rescanning and re-sorting the full
// event log per call.
func (t *Tracer) Journey(flowID, seq uint64) []Event {
	var out []Event
	for _, e := range t.flowIndex()[flowID] {
		if seq >= e.Seq && seq < e.Seq+uint64(e.Segs) {
			out = append(out, e)
		}
	}
	return out
}

// JourneyPkt returns the events of one physical arrival, keyed by the
// monotonic packet id, in time order. Unlike Journey (a coverage query over
// (flow, seq), which conflates a retransmission with the original and any
// GRO super-packet spanning the seq), JourneyPkt never aliases: pool reuse
// hands the recycled skb a fresh PktID at the NIC.
func (t *Tracer) JourneyPkt(pkt uint64) []Event {
	if t == nil || pkt == 0 {
		return nil
	}
	var out []Event
	for _, e := range t.events {
		if e.Pkt == pkt {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// RenderJourneyPkt formats one physical arrival's journey as a timeline.
func (t *Tracer) RenderJourneyPkt(pkt uint64) string {
	events := t.JourneyPkt(pkt)
	if len(events) == 0 {
		return fmt.Sprintf("pkt %d: no events\n", pkt)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pkt %d (flow %d seq %d):\n", pkt, events[0].FlowID, events[0].Seq)
	t0 := events[0].At
	for _, e := range events {
		fmt.Fprintf(&b, "  +%-12v %-10s core %d\n", e.At.Sub(t0), e.Stage, e.Core)
	}
	return b.String()
}

// Stages returns the distinct stage names seen, sorted.
func (t *Tracer) Stages() []string {
	seen := map[string]bool{}
	for _, e := range t.events {
		seen[e.Stage] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// RenderJourney formats one segment's journey as a timeline.
func (t *Tracer) RenderJourney(flowID, seq uint64) string {
	events := t.Journey(flowID, seq)
	if len(events) == 0 {
		return fmt.Sprintf("flow %d seq %d: no events\n", flowID, seq)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flow %d seq %d:\n", flowID, seq)
	t0 := events[0].At
	for _, e := range events {
		fmt.Fprintf(&b, "  +%-12v %-10s core %d\n", e.At.Sub(t0), e.Stage, e.Core)
	}
	return b.String()
}

// CoreOccupancy counts events per core per stage — a quick view of where
// packets were handled. It shares Journey's memoized flow index.
func (t *Tracer) CoreOccupancy() map[int]map[string]int {
	out := map[int]map[string]int{}
	for _, evs := range t.flowIndex() {
		for _, e := range evs {
			m := out[e.Core]
			if m == nil {
				m = map[string]int{}
				out[e.Core] = m
			}
			m[e.Stage]++
		}
	}
	return out
}
