package trace

import (
	"strings"
	"testing"

	"mflow/internal/sim"
)

func TestTracerRecordAndJourney(t *testing.T) {
	tr := New()
	tr.Record(100, 0, 1, 0, 1, "nic", -1)
	tr.Record(200, 0, 1, 0, 1, "alloc", 2)
	tr.Record(150, 0, 1, 1, 1, "nic", -1)
	tr.Record(300, 0, 1, 0, 1, "socket", 0)

	j := tr.Journey(1, 0)
	if len(j) != 3 {
		t.Fatalf("journey has %d events, want 3", len(j))
	}
	for i := 1; i < len(j); i++ {
		if j[i].At < j[i-1].At {
			t.Fatal("journey not time-ordered")
		}
	}
	if j[0].Stage != "nic" || j[2].Stage != "socket" {
		t.Errorf("journey stages wrong: %+v", j)
	}
}

func TestTracerMergedCoverage(t *testing.T) {
	tr := New()
	tr.Record(100, 0, 1, 0, 4, "gro", 1) // covers seqs 0-3
	if len(tr.Journey(1, 3)) != 1 {
		t.Error("merged event should match covered seq")
	}
	if len(tr.Journey(1, 4)) != 0 {
		t.Error("seq beyond coverage should not match")
	}
}

func TestTracerFilters(t *testing.T) {
	tr := New()
	tr.OnlyFlow = 7
	tr.OnlySeqBelow = 10
	tr.Record(1, 0, 7, 5, 1, "a", 0)
	tr.Record(2, 0, 8, 5, 1, "a", 0)  // wrong flow
	tr.Record(3, 0, 7, 50, 1, "a", 0) // seq too high
	if len(tr.Events()) != 1 {
		t.Errorf("filters failed: %d events", len(tr.Events()))
	}
}

func TestTracerCap(t *testing.T) {
	tr := &Tracer{MaxEvents: 3}
	for i := 0; i < 10; i++ {
		tr.Record(1, 0, 1, uint64(i), 1, "x", 0)
	}
	if len(tr.Events()) != 3 || tr.Skipped != 7 {
		t.Errorf("cap failed: %d events, %d skipped", len(tr.Events()), tr.Skipped)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(1, 0, 1, 1, 1, "x", 0) // must not panic
}

func TestRenderAndOccupancy(t *testing.T) {
	tr := New()
	tr.Record(100, 0, 1, 0, 1, "nic", -1)
	tr.Record(250, 0, 1, 0, 1, "vxlan", 3)
	out := tr.RenderJourney(1, 0)
	if !strings.Contains(out, "vxlan") || !strings.Contains(out, "+150ns") {
		t.Errorf("render wrong:\n%s", out)
	}
	if !strings.Contains(tr.RenderJourney(9, 9), "no events") {
		t.Error("missing-journey render")
	}
	occ := tr.CoreOccupancy()
	if occ[3]["vxlan"] != 1 {
		t.Errorf("occupancy wrong: %v", occ)
	}
	stages := tr.Stages()
	if len(stages) != 2 || stages[0] != "nic" {
		t.Errorf("stages: %v", stages)
	}
}

func TestZeroValueTracerUsable(t *testing.T) {
	var tr Tracer
	for i := 0; i < DefaultMaxEvents+5; i++ {
		tr.Record(sim.Time(i), 0, 1, uint64(i), 1, "x", 0)
	}
	if len(tr.Events()) != DefaultMaxEvents || tr.Skipped != 5 {
		t.Errorf("zero-value cap: %d events, %d skipped", len(tr.Events()), tr.Skipped)
	}
}

func TestJourneyIndexInvalidatedByRecord(t *testing.T) {
	tr := New()
	tr.Record(100, 0, 1, 0, 1, "nic", -1)
	if len(tr.Journey(1, 0)) != 1 { // builds the memoized index
		t.Fatal("first journey wrong")
	}
	tr.Record(200, 0, 1, 0, 1, "socket", 0) // must invalidate it
	j := tr.Journey(1, 0)
	if len(j) != 2 || j[1].Stage != "socket" {
		t.Fatalf("stale index after Record: %+v", j)
	}
	// Out-of-order recording still yields time-ordered journeys, and
	// repeated queries agree with each other.
	tr.Record(50, 0, 1, 0, 1, "wire", -1)
	j = tr.Journey(1, 0)
	if len(j) != 3 || j[0].Stage != "wire" {
		t.Fatalf("index not re-sorted: %+v", j)
	}
	again := tr.Journey(1, 0)
	for i := range j {
		if j[i] != again[i] {
			t.Fatal("repeated queries diverged")
		}
	}
}

func TestJourneySameInstantStableOrder(t *testing.T) {
	tr := New()
	tr.Record(100, 0, 1, 0, 1, "a", 0)
	tr.Record(100, 0, 1, 0, 1, "b", 0)
	tr.Record(100, 0, 1, 0, 1, "c", 0)
	j := tr.Journey(1, 0)
	if len(j) != 3 || j[0].Stage != "a" || j[1].Stage != "b" || j[2].Stage != "c" {
		t.Errorf("same-instant events lost recording order: %+v", j)
	}
}

// TestJourneyPktNoPoolAliasing is the pool-reuse regression: a recycled skb
// carrying the same (flow, seq) — a retransmission through a reused buffer —
// aliases under the coverage-query Journey but stays two distinct arrivals
// under JourneyPkt, which keys on the monotonic packet id the NIC assigns
// per physical arrival.
func TestJourneyPktNoPoolAliasing(t *testing.T) {
	tr := New()
	// First arrival: pkt 7 travels nic -> socket.
	tr.Record(100, 7, 1, 0, 1, "nic", -1)
	tr.Record(300, 7, 1, 0, 1, "socket", 0)
	// Pool reuse: the same skb slot returns as a retransmission of the
	// same (flow, seq), handed fresh pkt 9 at the NIC.
	tr.Record(500, 9, 1, 0, 1, "nic", -1)
	tr.Record(900, 9, 1, 0, 1, "socket", 0)

	if n := len(tr.Journey(1, 0)); n != 4 {
		t.Fatalf("coverage query conflates the arrivals into %d events (expected 4: the documented aliasing)", n)
	}
	j7, j9 := tr.JourneyPkt(7), tr.JourneyPkt(9)
	if len(j7) != 2 || len(j9) != 2 {
		t.Fatalf("JourneyPkt split = %d + %d events, want 2 + 2", len(j7), len(j9))
	}
	if j7[1].At != 300 || j9[1].At != 900 {
		t.Errorf("journeys mixed up: pkt7 ends at %v, pkt9 at %v", j7[1].At, j9[1].At)
	}
	for i := 1; i < len(j9); i++ {
		if j9[i].At < j9[i-1].At {
			t.Fatal("JourneyPkt not time-ordered")
		}
	}

	if tr.JourneyPkt(0) != nil {
		t.Error("pkt 0 is the unassigned sentinel; JourneyPkt(0) must return nothing")
	}
	r := tr.RenderJourneyPkt(9)
	for _, want := range []string{"pkt 9", "nic", "socket"} {
		if !strings.Contains(r, want) {
			t.Errorf("render missing %q:\n%s", want, r)
		}
	}
}
