package traffic

// FillPattern writes the deterministic wire-mode payload for a segment
// with arrival sequence seq directly into buf — typically a tailroom
// region a sender just skb.Put into its headroom-reserved arena, so the
// application bytes are born in the buffer they will travel in and no
// staging copy ever exists. The pattern (seq+i per byte) is recognizable
// end to end: socket-side verification and capture tooling can spot a
// byte that moved.
func FillPattern(buf []byte, seq uint64) {
	for i := range buf {
		buf[i] = byte(seq + uint64(i))
	}
}
