// Package traffic generates the workloads of the paper's evaluation: the
// sockperf-like single- and multi-flow TCP/UDP message streams of the
// micro-benchmarks, and the application-level web-serving and data-caching
// workloads. Senders model the client machine's CPU explicitly because
// several of the paper's results hinge on client-side bottlenecks (UDP
// senders saturating their cores; 16-byte TCP messages limited by the
// client).
package traffic

import (
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// MSS is the TCP maximum segment payload with timestamps, matching a
// 1500-byte MTU.
const MSS = 1448

// UDPFragPayload is the payload carried per IP fragment of a large UDP
// datagram on a 1500-byte MTU.
const UDPFragPayload = 1472

// Ingress is where senders push wire segments — the receiving host's NIC.
type Ingress interface {
	Deliver(*skb.SKB) bool
}

// ClientCost models the sending machine's per-message, per-segment and
// per-byte CPU costs (syscall, stack traversal, copies).
type ClientCost struct {
	PerMsg  sim.Duration
	PerSeg  sim.Duration
	PerByte float64
}

// SeqAlloc hands out a flow's global segment sequence numbers. Multiple
// senders stressing the same flow (the paper's three UDP clients) share one
// allocator so receive-side ordering is well defined.
type SeqAlloc struct{ next uint64 }

// Next returns the next n sequence numbers' starting value.
func (a *SeqAlloc) Next(n int) uint64 {
	s := a.next
	a.next += uint64(n)
	return s
}

// Sent returns how many segments have been allocated.
func (a *SeqAlloc) Sent() uint64 { return a.next }
