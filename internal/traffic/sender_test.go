package traffic

import (
	"testing"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

// sink collects delivered skbs, optionally acking a TCP sender to model an
// instantly-consuming receiver.
type sink struct {
	got   []*skb.SKB
	acker func(end uint64, at sim.Time)
	sched *sim.Scheduler
	limit int // stop acking after limit skbs (0 = always ack)
}

func (s *sink) Deliver(sk *skb.SKB) bool {
	s.got = append(s.got, sk)
	if s.acker != nil && (s.limit == 0 || len(s.got) <= s.limit) {
		s.acker(sk.EndSeq(), s.sched.Now())
	}
	return true
}

func TestSeqAlloc(t *testing.T) {
	var a SeqAlloc
	if a.Next(3) != 0 || a.Next(2) != 3 || a.Sent() != 5 {
		t.Error("sequence allocation wrong")
	}
}

func TestTCPSenderSegmentsMessages(t *testing.T) {
	s := sim.NewScheduler(1)
	core := sim.NewCore(10, s)
	snk := &sink{sched: s}
	tx := &TCPSender{
		FlowID: 1, MsgSize: 4000, Window: 8,
		Core: core, Sched: s, Net: snk,
		Cost: ClientCost{PerSeg: 100},
	}
	snk.acker = tx.Ack
	s.At(0, func() { tx.Start() })
	s.RunUntil(sim.Time(2 * sim.Millisecond))

	if len(snk.got) == 0 {
		t.Fatal("nothing sent")
	}
	// 4000-byte messages = 2 full MSS + 1 partial (1104).
	var sizes []int
	for _, sk := range snk.got[:3] {
		sizes = append(sizes, sk.PayloadLen)
	}
	if sizes[0] != MSS || sizes[1] != MSS || sizes[2] != 4000-2*MSS {
		t.Errorf("segment payloads %v", sizes)
	}
	if !snk.got[2].MsgEnd || snk.got[0].MsgEnd {
		t.Error("MsgEnd marking wrong")
	}
	if snk.got[0].MsgID != snk.got[2].MsgID || snk.got[3].MsgID != snk.got[0].MsgID+1 {
		t.Error("MsgID framing wrong")
	}
	// Sequences must be contiguous from 0.
	for i, sk := range snk.got {
		if sk.Seq != uint64(i) {
			t.Fatalf("seq %d at position %d", sk.Seq, i)
		}
	}
}

func TestTCPSenderWindowLimits(t *testing.T) {
	s := sim.NewScheduler(1)
	core := sim.NewCore(10, s)
	snk := &sink{sched: s} // never acks
	tx := &TCPSender{
		FlowID: 1, MsgSize: MSS, Window: 16,
		Core: core, Sched: s, Net: snk,
		Cost: ClientCost{PerSeg: 10},
	}
	s.At(0, func() { tx.Start() })
	s.RunUntil(sim.Time(sim.Millisecond))
	if len(snk.got) != 16 {
		t.Fatalf("sent %d segments without acks, want window of 16", len(snk.got))
	}
	if tx.Outstanding() != 16 {
		t.Errorf("Outstanding=%d", tx.Outstanding())
	}
	// Acking opens the window again.
	s.At(s.Now(), func() { tx.Ack(8, s.Now()) })
	s.RunUntil(s.Now().Add(sim.Millisecond))
	if len(snk.got) != 24 {
		t.Errorf("after ack of 8, sent %d, want 24", len(snk.got))
	}
}

func TestTCPSenderClientCoreLimitsRate(t *testing.T) {
	s := sim.NewScheduler(1)
	core := sim.NewCore(10, s)
	snk := &sink{sched: s}
	tx := &TCPSender{
		FlowID: 1, MsgSize: 16, Window: 64,
		Core: core, Sched: s, Net: snk,
		Cost: ClientCost{PerMsg: 1000, PerSeg: 500},
	}
	snk.acker = tx.Ack
	s.At(0, func() { tx.Start() })
	s.RunUntil(sim.Time(1500 * sim.Microsecond))
	// 1500ns per 16B message -> one message per 1.5µs -> ~1000 in 1.5ms.
	n := len(snk.got)
	if n < 900 || n > 1100 {
		t.Errorf("client-limited sender sent %d messages, want ~1000", n)
	}
}

func TestTCPSenderStop(t *testing.T) {
	s := sim.NewScheduler(1)
	core := sim.NewCore(10, s)
	snk := &sink{sched: s}
	tx := &TCPSender{FlowID: 1, MsgSize: MSS, Window: 4, Core: core, Sched: s, Net: snk, Cost: ClientCost{PerSeg: 10}}
	snk.acker = tx.Ack
	s.At(0, func() { tx.Start() })
	s.At(100, func() { tx.Stop() })
	s.RunUntil(sim.Time(sim.Millisecond))
	sent := len(snk.got)
	s.RunUntil(sim.Time(2 * sim.Millisecond))
	if len(snk.got) != sent {
		t.Error("sender kept transmitting after Stop")
	}
}

func TestUDPSenderFragmentsLargeDatagrams(t *testing.T) {
	s := sim.NewScheduler(1)
	core := sim.NewCore(10, s)
	snk := &sink{sched: s}
	tx := &UDPSender{
		FlowID: 2, MsgSize: 65536,
		Core: core, Sched: s, Net: snk,
		Cost: ClientCost{PerSeg: 100},
	}
	s.At(0, func() { tx.Start() })
	s.At(sim.Time(500*sim.Microsecond), func() { tx.Stop() })
	s.Run()
	wantFrags := (65536 + UDPFragPayload - 1) / UDPFragPayload // 45
	if len(snk.got) < wantFrags {
		t.Fatalf("only %d fragments delivered", len(snk.got))
	}
	lastEnd := 0
	for i := 0; i < wantFrags; i++ {
		sk := snk.got[i]
		if sk.MsgID != snk.got[0].MsgID {
			t.Fatal("fragment crossed message")
		}
		if i == wantFrags-1 {
			if !sk.MsgEnd {
				t.Error("last fragment must carry MsgEnd")
			}
			if sk.PayloadLen != 65536-(wantFrags-1)*UDPFragPayload {
				t.Errorf("tail fragment payload %d", sk.PayloadLen)
			}
		} else if sk.MsgEnd {
			t.Error("non-final fragment marked MsgEnd")
		}
		lastEnd += sk.PayloadLen
	}
	if lastEnd != 65536 {
		t.Errorf("fragments cover %d bytes, want 65536", lastEnd)
	}
}

func TestUDPSenderSaturatesClientCore(t *testing.T) {
	s := sim.NewScheduler(1)
	core := sim.NewCore(10, s)
	snk := &sink{sched: s}
	tx := &UDPSender{
		FlowID: 2, MsgSize: 1024,
		Core: core, Sched: s, Net: snk,
		Cost: ClientCost{PerSeg: 1000},
	}
	s.At(0, func() { tx.Start() })
	s.At(sim.Time(sim.Millisecond), func() { tx.Stop() })
	s.Run()
	// 1000ns per datagram -> ~1000 datagrams in 1ms.
	if n := int(tx.MsgsSent); n < 900 || n > 1100 {
		t.Errorf("sent %d datagrams, want ~1000", n)
	}
	util := float64(core.BusyTotal()) / float64(sim.Millisecond)
	if util < 0.95 {
		t.Errorf("client core %.0f%% busy, want saturated", util*100)
	}
}

func TestThreeUDPClientsShareSequenceSpace(t *testing.T) {
	s := sim.NewScheduler(1)
	snk := &sink{sched: s}
	seq := &SeqAlloc{}
	for i := 0; i < 3; i++ {
		core := sim.NewCore(10+i, s)
		tx := &UDPSender{
			FlowID: 9, MsgSize: UDPFragPayload,
			Core: core, Sched: s, Net: snk,
			Cost: ClientCost{PerSeg: 500}, Seq: seq,
			MsgBase: uint64(i) << 32,
		}
		s.At(0, func() { tx.Start() })
		s.At(sim.Time(100*sim.Microsecond), tx.Stop)
	}
	s.Run()
	seen := map[uint64]bool{}
	for _, sk := range snk.got {
		if seen[sk.Seq] {
			t.Fatalf("duplicate sequence %d across clients", sk.Seq)
		}
		seen[sk.Seq] = true
	}
	if len(seen) < 500 {
		t.Errorf("only %d segments from 3 clients", len(seen))
	}
}
