package traffic

import (
	"testing"

	"mflow/internal/proto"
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// lossyLink drops selected first transmissions, then forwards everything
// (retransmissions included) to a TCP receiver that acks on consumption.
type lossyLink struct {
	drop map[uint64]int // seq -> remaining drops
	rx   *proto.TCPReceiver
}

func (l *lossyLink) Deliver(s *skb.SKB) bool {
	if n := l.drop[s.Seq]; n > 0 {
		l.drop[s.Seq] = n - 1
		return false
	}
	l.rx.Rx(s, nil)
	return true
}

// buildLossy wires sender → lossy link → TCP receiver → instant-consumption
// ACKs, with the dup-ACK path connected, all on one scheduler.
func buildLossy(s *sim.Scheduler, drop map[uint64]int, msgSize, window int) (*TCPSender, *proto.TCPReceiver, *[]uint64) {
	core := sim.NewCore(10, s)
	delivered := &[]uint64{}
	tx := &TCPSender{
		FlowID: 1, MsgSize: msgSize, Window: window,
		Core: core, Sched: s,
		NetDelay: 5 * sim.Microsecond,
		Cost:     ClientCost{PerSeg: 100},
		Reliable: true, InitialRTO: 300 * sim.Microsecond,
	}
	rx := &proto.TCPReceiver{}
	rx.Deliver = func(sk *skb.SKB) {
		*delivered = append(*delivered, sk.Seq)
		end := sk.EndSeq()
		s.After(sim.Microsecond, func() { tx.Ack(end, s.Now()) })
	}
	rx.DupAck = func(e uint64) { s.After(sim.Microsecond, func() { tx.DupAck(e) }) }
	tx.Net = &lossyLink{drop: drop, rx: rx}
	return tx, rx, delivered
}

func inOrder(seqs []uint64) bool {
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			return false
		}
	}
	return true
}

func TestFastRetransmitRecoversSingleLoss(t *testing.T) {
	s := sim.NewScheduler(1)
	tx, rx, delivered := buildLossy(s, map[uint64]int{5: 1}, 1448, 32)
	s.At(0, func() { tx.Start() })
	s.RunUntil(sim.Time(5 * sim.Millisecond))
	tx.Stop()

	if tx.FastRetransmits < 1 {
		t.Fatalf("fast retransmits = %d, want >= 1 (triple dup-ACK)", tx.FastRetransmits)
	}
	if tx.Retransmits < 1 {
		t.Fatalf("retransmits = %d, want >= 1", tx.Retransmits)
	}
	if !inOrder(*delivered) {
		t.Fatal("TCP delivery left order")
	}
	if rx.Expected < 100 {
		t.Fatalf("flow stalled: Expected = %d after 5ms", rx.Expected)
	}
	if rx.Pending() != 0 {
		t.Fatalf("ooo queue not drained: %d parked", rx.Pending())
	}
}

func TestRTORecoversTailLoss(t *testing.T) {
	s := sim.NewScheduler(1)
	// Drop the whole remaining window (seqs 3..6) on first transmission:
	// no later arrivals exist to generate dup ACKs, so only the
	// retransmission timer can restart the flow.
	drop := map[uint64]int{3: 1, 4: 1, 5: 1, 6: 1}
	tx, rx, delivered := buildLossy(s, drop, 1448, 4)
	s.At(0, func() { tx.Start() })
	s.RunUntil(sim.Time(20 * sim.Millisecond))
	tx.Stop()

	if tx.RTOTimeouts < 1 {
		t.Fatalf("RTO timeouts = %d, want >= 1", tx.RTOTimeouts)
	}
	if !inOrder(*delivered) {
		t.Fatal("TCP delivery left order")
	}
	if rx.Expected < 50 {
		t.Fatalf("flow stalled after tail loss: Expected = %d", rx.Expected)
	}
}

func TestBurstLossAllSegmentsEventuallyDelivered(t *testing.T) {
	s := sim.NewScheduler(1)
	// A 12-segment burst plus scattered singles, some dropped twice.
	drop := map[uint64]int{}
	for q := uint64(20); q < 32; q++ {
		drop[q] = 1
	}
	drop[25] = 2
	drop[40] = 1
	drop[80] = 2
	tx, rx, delivered := buildLossy(s, drop, 4000, 64)
	s.At(0, func() { tx.Start() })
	s.RunUntil(sim.Time(50 * sim.Millisecond))
	tx.Stop()

	if !inOrder(*delivered) {
		t.Fatal("TCP delivery left order")
	}
	if rx.Expected < 200 {
		t.Fatalf("flow did not recover from burst loss: Expected = %d", rx.Expected)
	}
	if rx.Pending() != 0 {
		t.Fatalf("ooo queue not drained: %d parked", rx.Pending())
	}
	// Coverage must be contiguous: count delivered segments == Expected.
	var segs uint64
	for range *delivered {
		segs++
	}
	if segs != rx.Expected {
		t.Fatalf("delivered %d skbs but Expected=%d (each skb is one segment here)", segs, rx.Expected)
	}
}

func TestReliableIdleWithoutLossMatchesPlain(t *testing.T) {
	run := func(reliable bool) (uint64, uint64) {
		s := sim.NewScheduler(1)
		core := sim.NewCore(10, s)
		snk := &sink{sched: s}
		tx := &TCPSender{
			FlowID: 1, MsgSize: 1448, Window: 8,
			Core: core, Sched: s, Net: snk,
			Cost:     ClientCost{PerSeg: 100},
			Reliable: reliable, InitialRTO: 2 * sim.Millisecond,
		}
		snk.acker = tx.Ack
		s.At(0, func() { tx.Start() })
		s.RunUntil(sim.Time(2 * sim.Millisecond))
		return tx.SegsSent, tx.Retransmits + tx.RTOTimeouts + tx.FastRetransmits
	}
	plainSegs, _ := run(false)
	relSegs, faults := run(true)
	if faults != 0 {
		t.Fatalf("lossless reliable run recovered %d times, want 0", faults)
	}
	if plainSegs != relSegs {
		t.Fatalf("reliable mode changed lossless throughput: %d vs %d segs", relSegs, plainSegs)
	}
}

// TestSACKSweepRepairsScatteredLossInOneRound: with the receiver's hole map
// wired (TCPSender.Missing), entering recovery once must repair every known
// hole without a timer expiry per hole — scattered 1%-style loss cannot
// serialize into one-RTO-per-segment recovery.
func TestSACKSweepRepairsScatteredLossInOneRound(t *testing.T) {
	s := sim.NewScheduler(1)
	drop := map[uint64]int{10: 1, 20: 1, 30: 1, 40: 1, 50: 1}
	tx, rx, delivered := buildLossy(s, drop, 1448, 64)
	tx.Missing = rx.Missing
	s.At(0, func() { tx.Start() })
	s.RunUntil(sim.Time(10 * sim.Millisecond))
	tx.Stop()

	if !inOrder(*delivered) {
		t.Fatal("TCP delivery left order")
	}
	if rx.Expected < 200 {
		t.Fatalf("flow stalled: Expected = %d", rx.Expected)
	}
	if rx.Pending() != 0 {
		t.Fatalf("ooo queue not drained: %d parked", rx.Pending())
	}
	if tx.Retransmits < 5 {
		t.Fatalf("retransmits = %d, want >= 5 (one per hole)", tx.Retransmits)
	}
	// The sweep repairs all holes from the first recovery trigger; the
	// timer may fire for the first hole but must not serialize the rest.
	if tx.RTOTimeouts > 2 {
		t.Fatalf("RTO timeouts = %d: holes recovered serially despite the scoreboard", tx.RTOTimeouts)
	}
}

// TestSACKSweepRetriesLostRetransmission: when a retransmission is itself
// lost, the RTO-driven sweep overrides the holdoff and resends it.
func TestSACKSweepRetriesLostRetransmission(t *testing.T) {
	s := sim.NewScheduler(1)
	drop := map[uint64]int{8: 3} // original + two retransmissions lost
	tx, rx, delivered := buildLossy(s, drop, 1448, 16)
	tx.Missing = rx.Missing
	s.At(0, func() { tx.Start() })
	s.RunUntil(sim.Time(20 * sim.Millisecond))
	tx.Stop()

	if !inOrder(*delivered) {
		t.Fatal("TCP delivery left order")
	}
	if rx.Expected < 100 {
		t.Fatalf("flow never recovered a thrice-lost segment: Expected = %d", rx.Expected)
	}
	if rx.Pending() != 0 {
		t.Fatalf("ooo queue not drained: %d parked", rx.Pending())
	}
}
