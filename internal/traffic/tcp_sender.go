package traffic

import (
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// Retransmission-timer bounds (RFC 6298 shape, scaled to the testbed's
// microsecond RTTs) and the backoff cap.
const (
	rtoMin     = 200 * sim.Microsecond
	rtoMax     = 20 * sim.Millisecond
	maxBackoff = 10
	// sackBudget caps how many holes one recovery sweep retransmits.
	sackBudget = 128
)

// segRec is the retransmit buffer's record of one unacknowledged segment.
type segRec struct {
	payload int
	msgID   uint64
	msgEnd  bool
	sentAt  sim.Time // first transmission (Karn: resends are never sampled)
	retx    bool     // has been retransmitted at least once
	retxAt  sim.Time // last retransmission (holds off spurious re-resends)
}

// TCPSender streams fixed-size messages over one TCP flow, window-limited
// like a real sender: at most Window segments may be outstanding
// (unacknowledged), and cumulative ACKs from the receiver's socket open the
// window. Throughput therefore emerges from whichever stage of the receive
// pipeline is slowest — including the receiver's user-space copy thread,
// because acknowledgements are clocked by consumption.
//
// With Reliable set (fault-injected runs) the sender also recovers from
// loss: every unacknowledged segment is held in a retransmit buffer, an
// adaptive retransmission timer (SRTT + 4×RTTVAR, exponential backoff,
// Karn's rule) resends the receiver's first missing segment on expiry, and
// a third duplicate ACK for the same hole triggers fast retransmit. The
// reverse (ACK) path is modeled lossless. Lossless runs leave Reliable
// false and take byte-for-byte the seed's code path.
type TCPSender struct {
	FlowID  uint64
	MsgSize int
	// Window is the maximum outstanding segments (the paper observes
	// ~2000 MTU packets outstanding at 30 Gbps; the default used by the
	// experiments is 512, plenty to cover the pipeline).
	Window int
	Core   *sim.Core
	Sched  *sim.Scheduler
	Net    Ingress
	// NetDelay is the one-way wire latency.
	NetDelay sim.Duration
	Cost     ClientCost
	Seq      *SeqAlloc

	// Reliable enables the retransmit buffer, the RTO timer and fast
	// retransmit. InitialRTO seeds the timer before any RTT sample
	// exists (required when Reliable).
	Reliable   bool
	InitialRTO sim.Duration
	// Missing, when set, is the receiver's hole map — the information
	// SACK blocks carry on real ACKs. During recovery the sender sweeps
	// it and retransmits every known hole at once (bounded by sackBudget
	// and a per-segment re-send holdoff) instead of discovering holes one
	// round trip at a time. Nil degrades to NewReno-style serial recovery.
	Missing func(max int) []uint64

	// Pool, when set, supplies the sender's SKBs (nil = plain allocation).
	Pool *skb.Pool

	// OnRTO, if set, observes each retransmission-timer expiry that
	// resent data (the anomaly flight-recorder trigger). Observation
	// only; nil in unprobed runs.
	OnRTO func()

	// Stats.
	MsgsSent  uint64
	SegsSent  uint64
	BytesSent uint64
	// Retransmits counts all resent segments; RTOTimeouts counts timer
	// expiries that resent data; FastRetransmits counts triple-dup-ACK
	// recoveries.
	Retransmits     uint64
	RTOTimeouts     uint64
	FastRetransmits uint64

	acked   uint64
	inMsg   int // bytes of the current message already segmented
	msgID   uint64
	stopped bool
	started bool

	// Reliable-mode state.
	sent         map[uint64]*segRec // unacked segments by sequence
	srtt, rttvar sim.Duration
	backoff      uint
	frontier     uint64 // receiver's receipt frontier (max dup-ACK seq seen)
	dupSeq       uint64 // hole the current dup-ACK run points at
	dupCount     int
	recoverSeq   uint64 // NewReno recovery point (Seq.Sent() at recovery entry)
	recovering   bool   // in loss recovery until acked reaches recoverSeq
	rtoGen       uint64 // invalidates superseded timer events
	rtoArmed     bool

	// Closure-free scheduling: per-event state (the segment record, the
	// retransmit sequence, the RTO generation) rides a pooled txEvt
	// through the event's arg slot, replacing the per-segment closures.
	doneH     tcpDoneH
	retxDoneH tcpRetxDoneH
	netH      tcpNetH
	rtoH      tcpRTOH
	evtFree   []*txEvt
}

// txEvt carries per-event state for the sender's scheduler events; instances
// are recycled on a sender-local freelist.
type txEvt struct {
	s   *skb.SKB
	rec *segRec
	n   uint64 // retransmit sequence, or RTO generation

	// runNext / runAt chain a pump burst's completion events into one
	// scheduler run (sim.RunLink); consumed and cleared at fire time.
	runNext *txEvt
	runAt   sim.Time
}

// NextRun implements sim.RunLink.
func (e *txEvt) NextRun() (sim.RunLink, sim.Time) {
	if e.runNext == nil {
		return nil, 0
	}
	return e.runNext, e.runAt
}

// SetNextRun implements sim.RunLink.
func (e *txEvt) SetNextRun(next sim.RunLink, at sim.Time) {
	if next == nil {
		e.runNext, e.runAt = nil, 0
		return
	}
	e.runNext, e.runAt = next.(*txEvt), at
}

func (t *TCPSender) getEvt() *txEvt {
	if n := len(t.evtFree); n > 0 {
		e := t.evtFree[n-1]
		t.evtFree = t.evtFree[:n-1]
		return e
	}
	return &txEvt{}
}

func (t *TCPSender) putEvt(e *txEvt) {
	*e = txEvt{}
	t.evtFree = append(t.evtFree, e)
}

// tcpDoneH fires at a first transmission's client-core completion: it stamps
// the send time (Karn's RTT baseline) and puts the segment on the wire. The
// record pointer is carried, not looked up, so an acknowledgement that
// already deleted the record still gets its (harmless) stamp, exactly as the
// closure it replaces did.
type tcpDoneH struct{ t *TCPSender }

// Handle implements sim.Handler.
func (h tcpDoneH) Handle(arg any, now sim.Time) {
	t := h.t
	e := arg.(*txEvt)
	if e.rec != nil {
		e.rec.sentAt = now
	}
	e.s.SentAt = now
	t.Sched.AtHandler(now.Add(t.NetDelay), t.netH, e.s)
	t.putEvt(e)
}

// tcpRetxDoneH fires at a retransmission's completion. The SKB is built here
// — not when the retransmission was issued — because rec.sentAt may only be
// stamped by the original transmission's completion event, which is
// guaranteed to precede this one (the client core is FIFO).
type tcpRetxDoneH struct{ t *TCPSender }

// Handle implements sim.Handler.
func (h tcpRetxDoneH) Handle(arg any, now sim.Time) {
	t := h.t
	e := arg.(*txEvt)
	rec, seq := e.rec, e.n
	t.putEvt(e)
	s := t.Pool.Get()
	s.FlowID = t.FlowID
	s.Proto = skb.TCP
	s.Seq = seq
	s.Segs = 1
	s.WireLen = rec.payload + 52
	s.PayloadLen = rec.payload
	s.MsgID = rec.msgID
	s.MsgEnd = rec.msgEnd
	s.SentAt = rec.sentAt // latency measured from first transmission
	t.Sched.AtHandler(now.Add(t.NetDelay), t.netH, s)
}

// tcpNetH fires when a segment reaches the receiver NIC.
type tcpNetH struct{ t *TCPSender }

// Handle implements sim.Handler.
func (h tcpNetH) Handle(arg any, _ sim.Time) {
	s := arg.(*skb.SKB)
	if !h.t.Net.Deliver(s) {
		h.t.Pool.Put(s)
	}
}

// tcpRTOH fires at a retransmission-timer expiry; the armed generation rides
// the event so superseded timers die on the generation check.
type tcpRTOH struct{ t *TCPSender }

// Handle implements sim.Handler.
func (h tcpRTOH) Handle(arg any, _ sim.Time) {
	e := arg.(*txEvt)
	gen := e.n
	h.t.putEvt(e)
	h.t.onRTO(gen)
}

// Start begins streaming. Safe to call once.
func (t *TCPSender) Start() {
	if t.started {
		return
	}
	t.started = true
	if t.Seq == nil {
		t.Seq = &SeqAlloc{}
	}
	if t.Reliable {
		t.sent = make(map[uint64]*segRec)
	}
	t.doneH = tcpDoneH{t}
	t.retxDoneH = tcpRetxDoneH{t}
	t.netH = tcpNetH{t}
	t.rtoH = tcpRTOH{t}
	t.pump()
}

// Stop ceases new transmissions (in-flight segments still arrive).
func (t *TCPSender) Stop() { t.stopped = true }

// Ack is the receiver's cumulative acknowledgement callback; wire it via
// the socket with the return-path delay applied by the caller.
func (t *TCPSender) Ack(endSeq uint64, at sim.Time) {
	if endSeq > t.acked {
		if t.Reliable {
			for s := t.acked; s < endSeq; s++ {
				rec, ok := t.sent[s]
				if !ok {
					continue
				}
				if !rec.retx {
					t.rttSample(at.Sub(rec.sentAt))
				}
				delete(t.sent, s)
			}
			if endSeq > t.frontier {
				t.frontier = endSeq
			}
			t.backoff = 0
			t.dupCount = 0
			// NewReno exit: recovery persists across partial ACKs and ends
			// only once everything outstanding at recovery entry is acked.
			if t.recovering && endSeq >= t.recoverSeq {
				t.recovering = false
			}
		}
		t.acked = endSeq
		if t.Reliable {
			// Restart the timer with the fresh (un-backed-off) RTO, or
			// cancel it when everything in flight has been acknowledged.
			if t.Outstanding() > 0 {
				t.armRTO()
			} else {
				t.disarmRTO()
			}
		}
	}
	t.pump()
}

// DupAck is the receiver's immediate-acknowledgement callback for
// out-of-order, duplicate, or hole-exposing arrivals; seq is the
// receiver's first missing sequence. Three duplicate ACKs for the same
// hole trigger fast retransmit and enter recovery; while recovery is in
// progress, every advance of the receipt frontier names the next hole and
// is retransmitted immediately — one hole per round trip, like NewReno's
// partial-ACK retransmission (the consumption-clocked cumulative ACK may
// lag the frontier, so the timer alone would chase already-received data).
func (t *TCPSender) DupAck(seq uint64) {
	if !t.Reliable || t.stopped || !t.started {
		return
	}
	if seq > t.frontier {
		t.frontier = seq
		t.dupSeq, t.dupCount = seq, 1
		if t.recovering {
			t.recoveryResend(seq)
		}
		return
	}
	if seq < t.frontier || seq < t.acked {
		return
	}
	if seq != t.dupSeq {
		t.dupSeq, t.dupCount = seq, 1
		return
	}
	t.dupCount++
	if t.dupCount == 3 && !t.recovering {
		t.recovering = true
		t.recoverSeq = t.Seq.Sent()
		t.FastRetransmits++
		t.recoveryResend(seq)
	}
}

// recoveryResend resends loss-recovery data: with a SACK scoreboard it
// sweeps every known hole at once; without one it resends only the named
// hole (serial NewReno recovery).
func (t *TCPSender) recoveryResend(seq uint64) {
	if t.Missing == nil {
		t.retransmit(seq)
		return
	}
	t.sackSweep(false)
}

// sackSweep queries the receiver's hole map and retransmits every missing
// segment that is not already being retried. The holdoff — rtoMin since the
// segment's last retransmission — keeps the sweep idempotent across the
// burst of duplicate ACKs a single loss event generates, while still
// allowing a retry when the retransmission itself was lost. An RTO-driven
// sweep sets force: the timer expiring is proof the previous attempt
// failed, so every known hole is resent regardless of holdoff.
func (t *TCPSender) sackSweep(force bool) {
	holes := t.Missing(sackBudget)
	if len(holes) == 0 {
		return
	}
	now := t.Sched.Now()
	for _, seq := range holes {
		if seq < t.acked {
			continue
		}
		rec, ok := t.sent[seq]
		if !ok {
			continue
		}
		if !force && rec.retx && now.Sub(rec.retxAt) < rtoMin {
			continue
		}
		t.retransmit(seq)
	}
}

// Outstanding returns the segments in flight.
func (t *TCPSender) Outstanding() int { return int(t.Seq.Sent() - t.acked) }

func (t *TCPSender) pump() {
	if t.stopped || !t.started {
		return
	}
	win := t.Window
	if win <= 0 {
		win = 512
	}
	// A window burst's completion events form one emission run (the FIFO
	// client core makes their instants monotone; the RTO armed by the
	// first reliable segment keeps its place because it is scheduled
	// inline, before the run's seq block is reserved).
	var head, tail *txEvt
	var headAt sim.Time
	n := 0
	for t.Outstanding() < win {
		e, end := t.sendSegment()
		if tail == nil {
			head, headAt = e, end
		} else {
			tail.SetNextRun(e, end)
		}
		tail = e
		n++
	}
	if n > 0 {
		t.Sched.ScheduleRun(t.doneH, head, headAt, n)
	}
}

func (t *TCPSender) sendSegment() (*txEvt, sim.Time) {
	payload := t.MsgSize - t.inMsg
	if payload > MSS {
		payload = MSS
	}
	first := t.inMsg == 0
	t.inMsg += payload
	last := t.inMsg >= t.MsgSize
	msgID := t.msgID
	if last {
		t.inMsg = 0
		t.msgID++
		t.MsgsSent++
	}

	seq := t.Seq.Next(1)
	cost := t.Cost.PerSeg + sim.Duration(t.Cost.PerByte*float64(payload))
	if first {
		cost += t.Cost.PerMsg
	}
	t.SegsSent++
	t.BytesSent += uint64(payload)
	var rec *segRec
	if t.Reliable {
		rec = &segRec{payload: payload, msgID: msgID, msgEnd: last}
		t.sent[seq] = rec
		if !t.rtoArmed {
			t.armRTO()
		}
	}
	_, end := t.Core.Exec(cost, "tcp-send")
	s := t.Pool.Get()
	s.FlowID = t.FlowID
	s.Proto = skb.TCP
	s.Seq = seq
	s.Segs = 1
	s.WireLen = payload + 52 // inner eth+ip+tcp headers
	s.PayloadLen = payload
	s.MsgID = msgID
	s.MsgEnd = last
	e := t.getEvt()
	e.s, e.rec = s, rec
	return e, end
}

// retransmit resends the buffered segment at seq, if still unacknowledged.
func (t *TCPSender) retransmit(seq uint64) {
	rec, ok := t.sent[seq]
	if !ok {
		return
	}
	rec.retx = true
	rec.retxAt = t.Sched.Now()
	t.Retransmits++
	t.SegsSent++
	cost := t.Cost.PerSeg + sim.Duration(t.Cost.PerByte*float64(rec.payload))
	_, end := t.Core.Exec(cost, "tcp-send")
	e := t.getEvt()
	e.rec, e.n = rec, seq
	t.Sched.AtHandler(end, t.retxDoneH, e)
	t.armRTO()
}

// rttSample folds one round-trip measurement into SRTT/RTTVAR (RFC 6298).
// The sample clock is consumption-based (ACKs fire when the application
// copies data), so the adaptive timeout automatically covers the
// receiver's full pipeline depth.
func (t *TCPSender) rttSample(rtt sim.Duration) {
	if rtt <= 0 {
		return
	}
	if t.srtt == 0 {
		t.srtt = rtt
		t.rttvar = rtt / 2
		return
	}
	diff := t.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	t.rttvar = (3*t.rttvar + diff) / 4
	t.srtt = (7*t.srtt + rtt) / 8
}

// currentRTO returns the timer duration with backoff applied.
func (t *TCPSender) currentRTO() sim.Duration {
	rto := t.InitialRTO
	if t.srtt > 0 {
		rto = t.srtt + 4*t.rttvar
	}
	if rto < rtoMin {
		rto = rtoMin
	}
	b := t.backoff
	if b > maxBackoff {
		b = maxBackoff
	}
	rto <<= b
	if rto > rtoMax {
		rto = rtoMax
	}
	return rto
}

// armRTO (re)starts the retransmission timer for the current RTO,
// invalidating any previously scheduled expiry (RFC 6298 restarts the
// timer on new ACKs and on retransmission). Stale events stay in the heap
// until their time but die on the generation check.
func (t *TCPSender) armRTO() {
	if !t.Reliable || t.stopped {
		return
	}
	t.rtoGen++
	t.rtoArmed = true
	e := t.getEvt()
	e.n = t.rtoGen
	t.Sched.AfterHandler(t.currentRTO(), t.rtoH, e)
}

// disarmRTO cancels the pending expiry (all data acknowledged).
func (t *TCPSender) disarmRTO() {
	t.rtoGen++
	t.rtoArmed = false
}

func (t *TCPSender) onRTO(gen uint64) {
	if gen != t.rtoGen || t.stopped {
		return
	}
	t.rtoArmed = false
	if t.Outstanding() == 0 {
		return
	}
	t.RTOTimeouts++
	if t.OnRTO != nil {
		t.OnRTO()
	}
	t.recovering = true
	t.recoverSeq = t.Seq.Sent()
	if t.backoff < maxBackoff {
		t.backoff++
	}
	// Resend the first segment the receiver is missing. The frontier
	// (from dup ACKs) can be ahead of acked, which only tracks
	// consumption; resending below it would be a guaranteed duplicate.
	seq := t.acked
	if t.frontier > seq {
		seq = t.frontier
	}
	t.retransmit(seq)
	if t.Missing != nil {
		// With a scoreboard, recover every other known hole in the same
		// timeout instead of one hole per expiry. The timer expiring is
		// proof earlier attempts failed, so holdoffs are overridden.
		t.sackSweep(true)
	}
	t.armRTO()
}
