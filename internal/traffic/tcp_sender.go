package traffic

import (
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// TCPSender streams fixed-size messages over one TCP flow, window-limited
// like a real sender: at most Window segments may be outstanding
// (unacknowledged), and cumulative ACKs from the receiver's socket open the
// window. Throughput therefore emerges from whichever stage of the receive
// pipeline is slowest — including the receiver's user-space copy thread,
// because acknowledgements are clocked by consumption.
type TCPSender struct {
	FlowID  uint64
	MsgSize int
	// Window is the maximum outstanding segments (the paper observes
	// ~2000 MTU packets outstanding at 30 Gbps; the default used by the
	// experiments is 512, plenty to cover the pipeline).
	Window int
	Core   *sim.Core
	Sched  *sim.Scheduler
	Net    Ingress
	// NetDelay is the one-way wire latency.
	NetDelay sim.Duration
	Cost     ClientCost
	Seq      *SeqAlloc

	// Stats.
	MsgsSent  uint64
	SegsSent  uint64
	BytesSent uint64

	acked   uint64
	inMsg   int // bytes of the current message already segmented
	msgID   uint64
	stopped bool
	started bool
}

// Start begins streaming. Safe to call once.
func (t *TCPSender) Start() {
	if t.started {
		return
	}
	t.started = true
	if t.Seq == nil {
		t.Seq = &SeqAlloc{}
	}
	t.pump()
}

// Stop ceases new transmissions (in-flight segments still arrive).
func (t *TCPSender) Stop() { t.stopped = true }

// Ack is the receiver's cumulative acknowledgement callback; wire it via
// the socket with the return-path delay applied by the caller.
func (t *TCPSender) Ack(endSeq uint64, _ sim.Time) {
	if endSeq > t.acked {
		t.acked = endSeq
	}
	t.pump()
}

// Outstanding returns the segments in flight.
func (t *TCPSender) Outstanding() int { return int(t.Seq.Sent() - t.acked) }

func (t *TCPSender) pump() {
	if t.stopped || !t.started {
		return
	}
	win := t.Window
	if win <= 0 {
		win = 512
	}
	for t.Outstanding() < win {
		t.sendSegment()
	}
}

func (t *TCPSender) sendSegment() {
	payload := t.MsgSize - t.inMsg
	if payload > MSS {
		payload = MSS
	}
	first := t.inMsg == 0
	t.inMsg += payload
	last := t.inMsg >= t.MsgSize
	msgID := t.msgID
	if last {
		t.inMsg = 0
		t.msgID++
		t.MsgsSent++
	}

	seq := t.Seq.Next(1)
	cost := t.Cost.PerSeg + sim.Duration(t.Cost.PerByte*float64(payload))
	if first {
		cost += t.Cost.PerMsg
	}
	t.SegsSent++
	t.BytesSent += uint64(payload)
	t.Core.Run(cost, "tcp-send", func(end sim.Time) {
		s := &skb.SKB{
			FlowID:     t.FlowID,
			Proto:      skb.TCP,
			Seq:        seq,
			Segs:       1,
			WireLen:    payload + 52, // inner eth+ip+tcp headers
			PayloadLen: payload,
			MsgID:      msgID,
			MsgEnd:     last,
			SentAt:     end,
		}
		t.Sched.At(end.Add(t.NetDelay), func() { t.Net.Deliver(s) })
	})
}
