package traffic

import (
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// UDPSender blasts fixed-size datagrams at the receiver as fast as its
// client core allows — UDP has no acknowledgement clock, so the sender is
// purely CPU-paced (and, as the paper observes, sockperf UDP clients
// overload their own cores; three clients are used to saturate one
// receive-side flow).
type UDPSender struct {
	FlowID   uint64
	MsgSize  int
	Core     *sim.Core
	Sched    *sim.Scheduler
	Net      Ingress
	NetDelay sim.Duration
	Cost     ClientCost
	// Seq is shared across the clients stressing one flow.
	Seq *SeqAlloc
	// MsgBase disambiguates message IDs across senders of one flow.
	MsgBase uint64
	// Pool, when set, supplies the sender's SKBs (nil = plain allocation).
	Pool *skb.Pool

	MsgsSent  uint64
	SegsSent  uint64
	BytesSent uint64

	stopped bool
	started bool

	// Fixed handler objects for the scheduler's closure-free path: one
	// send-complete event and one wire-delivery event per segment, plus
	// the loop continuation, all without per-event closures.
	doneH udpDoneH
	netH  udpNetH
	loopH udpLoopH
}

// udpDoneH fires at a segment's client-core completion instant and puts the
// segment on the wire.
type udpDoneH struct{ u *UDPSender }

// Handle implements sim.Handler.
func (h udpDoneH) Handle(arg any, now sim.Time) {
	u := h.u
	u.Sched.AtHandler(now.Add(u.NetDelay), u.netH, arg)
}

// udpNetH fires when a segment reaches the receiver NIC.
type udpNetH struct{ u *UDPSender }

// Handle implements sim.Handler.
func (h udpNetH) Handle(arg any, _ sim.Time) {
	s := arg.(*skb.SKB)
	if !h.u.Net.Deliver(s) {
		h.u.Pool.Put(s)
	}
}

// udpLoopH continues the send loop when the client core frees up.
type udpLoopH struct{ u *UDPSender }

// Handle implements sim.Handler.
func (h udpLoopH) Handle(any, sim.Time) { h.u.sendMsg() }

// Start begins the send loop. Safe to call once.
func (u *UDPSender) Start() {
	if u.started {
		return
	}
	u.started = true
	if u.Seq == nil {
		u.Seq = &SeqAlloc{}
	}
	u.doneH = udpDoneH{u}
	u.netH = udpNetH{u}
	u.loopH = udpLoopH{u}
	u.sendMsg()
}

// Stop ceases transmission.
func (u *UDPSender) Stop() { u.stopped = true }

func (u *UDPSender) sendMsg() {
	if u.stopped {
		return
	}
	// Fragment the datagram as IP would.
	frags := (u.MsgSize + UDPFragPayload - 1) / UDPFragPayload
	if frags < 1 {
		frags = 1
	}
	msgID := u.MsgBase + u.MsgsSent
	u.MsgsSent++
	remaining := u.MsgSize
	seq := u.Seq.Next(frags)
	// The datagram's fragments form one emission run: completion instants
	// are monotone on the FIFO client core, so the scheduler pays one heap
	// insert per datagram instead of one per fragment.
	var head, tail *skb.SKB
	var headAt sim.Time
	for i := 0; i < frags; i++ {
		payload := remaining
		if payload > UDPFragPayload {
			payload = UDPFragPayload
		}
		remaining -= payload
		cost := u.Cost.PerSeg + sim.Duration(u.Cost.PerByte*float64(payload))
		if i == 0 {
			cost += u.Cost.PerMsg
		}
		segSeq := seq + uint64(i)
		u.SegsSent++
		u.BytesSent += uint64(payload)
		_, end := u.Core.Exec(cost, "udp-send")
		s := u.Pool.Get()
		s.FlowID = u.FlowID
		s.Proto = skb.UDP
		s.Seq = segSeq
		s.Segs = 1
		s.WireLen = payload + 28 + 14 // ip+udp+eth headers
		s.PayloadLen = payload
		s.MsgID = msgID
		s.MsgEnd = i == frags-1
		s.SentAt = end
		if tail == nil {
			head, headAt = s, end
		} else {
			tail.SetNextRun(s, end)
		}
		tail = s
	}
	u.Sched.ScheduleRun(u.doneH, head, headAt, frags)
	// Next datagram as soon as the client core frees up: the sender
	// saturates its CPU, the paper's client-side bottleneck.
	u.Sched.AtHandler(u.Core.FreeAt(), u.loopH, nil)
}
