package traffic

import (
	"mflow/internal/sim"
	"mflow/internal/skb"
)

// UDPSender blasts fixed-size datagrams at the receiver as fast as its
// client core allows — UDP has no acknowledgement clock, so the sender is
// purely CPU-paced (and, as the paper observes, sockperf UDP clients
// overload their own cores; three clients are used to saturate one
// receive-side flow).
type UDPSender struct {
	FlowID   uint64
	MsgSize  int
	Core     *sim.Core
	Sched    *sim.Scheduler
	Net      Ingress
	NetDelay sim.Duration
	Cost     ClientCost
	// Seq is shared across the clients stressing one flow.
	Seq *SeqAlloc
	// MsgBase disambiguates message IDs across senders of one flow.
	MsgBase uint64

	MsgsSent  uint64
	SegsSent  uint64
	BytesSent uint64

	stopped bool
	started bool
}

// Start begins the send loop. Safe to call once.
func (u *UDPSender) Start() {
	if u.started {
		return
	}
	u.started = true
	if u.Seq == nil {
		u.Seq = &SeqAlloc{}
	}
	u.sendMsg()
}

// Stop ceases transmission.
func (u *UDPSender) Stop() { u.stopped = true }

func (u *UDPSender) sendMsg() {
	if u.stopped {
		return
	}
	// Fragment the datagram as IP would.
	frags := (u.MsgSize + UDPFragPayload - 1) / UDPFragPayload
	if frags < 1 {
		frags = 1
	}
	msgID := u.MsgBase + u.MsgsSent
	u.MsgsSent++
	remaining := u.MsgSize
	seq := u.Seq.Next(frags)
	for i := 0; i < frags; i++ {
		payload := remaining
		if payload > UDPFragPayload {
			payload = UDPFragPayload
		}
		remaining -= payload
		cost := u.Cost.PerSeg + sim.Duration(u.Cost.PerByte*float64(payload))
		if i == 0 {
			cost += u.Cost.PerMsg
		}
		last := i == frags-1
		segSeq := seq + uint64(i)
		u.SegsSent++
		u.BytesSent += uint64(payload)
		u.Core.Run(cost, "udp-send", func(end sim.Time) {
			s := &skb.SKB{
				FlowID:     u.FlowID,
				Proto:      skb.UDP,
				Seq:        segSeq,
				Segs:       1,
				WireLen:    payload + 28 + 14, // ip+udp+eth headers
				PayloadLen: payload,
				MsgID:      msgID,
				MsgEnd:     last,
				SentAt:     end,
			}
			u.Sched.At(end.Add(u.NetDelay), func() { u.Net.Deliver(s) })
		})
	}
	// Next datagram as soon as the client core frees up: the sender
	// saturates its CPU, the paper's client-side bottleneck.
	u.Sched.At(u.Core.FreeAt(), u.sendMsg)
}
