// Package txpath models the sending host's transmit pipeline — the side of
// the system the paper's conclusion points at ("one [bottleneck] lies in
// clients/senders... we seek to address these bottlenecks in our future
// work"). A transmit traverses the socket send path on an application core,
// then the container egress chain on a kernel core — GSO-sized super
// packets through veth, bridge and VxLAN encapsulation, a bounded qdisc,
// the NIC TX ring — and finally serializes onto the wire at link rate.
//
// The pipeline implements traffic.Ingress, so it slots transparently
// between a sender and the receiving host's NIC: enable it with
// overlay.Scenario.ModelTX. By default the overlay experiments keep the
// paper-calibrated aggregate client costs instead (the receive path is
// the paper's subject); txpath exists to study the sender side explicitly.
package txpath

import (
	"mflow/internal/netdev"
	"mflow/internal/sim"
	"mflow/internal/skb"
	"mflow/internal/traffic"
)

// Costs are the transmit-side stage costs. GSO keeps TCP segments fused
// until the NIC (TSO), so the per-skb stage costs amortize over segments
// for TCP the same way GRO amortizes receive costs; UDP pays per datagram.
type Costs struct {
	// Socket is the sendmsg path: syscall, socket locks and the
	// copy-in, charged on the application core.
	Socket netdev.Cost
	// GSO is segmentation bookkeeping (per wire segment, kernel core).
	GSO netdev.Cost
	// Veth / Bridge / Encap are the container egress chain (per skb).
	Veth   netdev.Cost
	Bridge netdev.Cost
	Encap  netdev.Cost
	// Qdisc is enqueue+dequeue on the traffic-control layer (per skb).
	Qdisc netdev.Cost
	// NICTx is descriptor posting + doorbell (per wire segment).
	NICTx netdev.Cost
	// WireBps is the link rate serializing frames (100 Gb/s testbed).
	WireBps float64
}

// DefaultCosts calibrates the transmit path so that its aggregate
// per-segment cost matches the receive-side cost table's client model:
// senders remain the bottleneck for small TCP messages and for UDP
// blasting, as the paper observes.
func DefaultCosts() Costs {
	return Costs{
		Socket:  netdev.Cost{PerSKB: 2600, PerByte: 0.004},
		GSO:     netdev.Cost{PerSeg: 45},
		Veth:    netdev.Cost{PerSKB: 180},
		Bridge:  netdev.Cost{PerSKB: 160},
		Encap:   netdev.Cost{PerSKB: 450, PerByte: 0.02},
		Qdisc:   netdev.Cost{PerSKB: 90},
		NICTx:   netdev.Cost{PerSeg: 55},
		WireBps: 100e9,
	}
}

// qdiscCap bounds the traffic-control queue (pfifo_fast default ~1000).
const qdiscCap = 1000

// Pipeline is one sender's transmit path. It accepts application messages
// as segment skbs (from traffic senders), charges the socket path on App,
// batches segments into GSO super-packets for TCP, runs the egress chain
// on Kernel behind a bounded qdisc, serializes on the wire and hands each
// original segment to Out in order.
type Pipeline struct {
	App    *sim.Core
	Kernel *sim.Core
	Out    traffic.Ingress
	Costs  Costs
	// Overlay charges VxLAN encapsulation (container egress); native
	// paths skip veth/bridge/encap.
	Overlay bool

	sched *sim.Scheduler
	wire  *sim.Core // the link, modeled as a serializing resource
	qdisc *sim.Worker[*txUnit]

	pending   *txUnit // GSO unit still accepting same-message segments
	lastMsg   uint64
	lastProto skb.Proto

	// Fixed handler objects for the closure-free scheduler path, plus a
	// freelist of GSO units (a unit dies as soon as its segments hit the
	// wire, so a handful cover any pipeline depth).
	outH     txOutH
	enqH     txEnqH
	unitFree []*txUnit

	// SentSegments / QdiscDrops count egress traffic and tail drops.
	SentSegments uint64
	QdiscDrops   uint64
}

// txUnit is a GSO super-packet in flight through the egress chain.
type txUnit struct {
	segs []*skb.SKB

	// runNext / runAt chain units into a qdisc delivery run
	// (sim.RunLink); the scheduler consumes and clears the link before
	// the unit's transmit handler runs.
	runNext *txUnit
	runAt   sim.Time
}

// NextRun implements sim.RunLink.
func (u *txUnit) NextRun() (sim.RunLink, sim.Time) {
	if u.runNext == nil {
		return nil, 0
	}
	return u.runNext, u.runAt
}

// SetNextRun implements sim.RunLink.
func (u *txUnit) SetNextRun(next sim.RunLink, at sim.Time) {
	if next == nil {
		u.runNext, u.runAt = nil, 0
		return
	}
	u.runNext, u.runAt = next.(*txUnit), at
}

// txOutH delivers one wire-serialized segment to the receiving NIC.
type txOutH struct{ p *Pipeline }

// Handle implements sim.Handler.
func (h txOutH) Handle(arg any, _ sim.Time) {
	h.p.Out.Deliver(arg.(*skb.SKB))
}

// txEnqH enqueues a closed GSO unit onto the qdisc at the socket path's
// completion instant.
type txEnqH struct{ p *Pipeline }

// Handle implements sim.Handler.
func (h txEnqH) Handle(arg any, _ sim.Time) {
	p := h.p
	u := arg.(*txUnit)
	if !p.qdisc.Enqueue(u) {
		p.QdiscDrops += uint64(len(u.segs))
		if p.pending == u {
			p.pending = nil
		}
		p.putUnit(u)
		return
	}
	if p.pending == u {
		p.pending = nil
	}
}

func (p *Pipeline) getUnit() *txUnit {
	if n := len(p.unitFree); n > 0 {
		u := p.unitFree[n-1]
		p.unitFree = p.unitFree[:n-1]
		return u
	}
	return &txUnit{}
}

func (p *Pipeline) putUnit(u *txUnit) {
	u.segs = u.segs[:0]
	u.runNext, u.runAt = nil, 0
	p.unitFree = append(p.unitFree, u)
}

// New builds a pipeline on the given cores delivering into out.
func New(app, kernel *sim.Core, sched *sim.Scheduler, costs Costs, overlay bool, out traffic.Ingress) *Pipeline {
	p := &Pipeline{
		App:     app,
		Kernel:  kernel,
		Out:     out,
		Costs:   costs,
		Overlay: overlay,
		sched:   sched,
		wire:    sim.NewCore(-1, sched),
	}
	p.qdisc = &sim.Worker[*txUnit]{
		Name:   "qdisc",
		Core:   kernel,
		Sched:  sched,
		Budget: sim.DefaultBudget,
		Cap:    qdiscCap,
		Cost:   p.unitCost,
		Then:   p.transmit,
	}
	p.outH = txOutH{p}
	p.enqH = txEnqH{p}
	return p
}

func (p *Pipeline) unitCost(u *txUnit) sim.Duration {
	head := u.segs[0]
	segs := 0
	bytes := 0
	for _, s := range u.segs {
		segs += s.Segs
		bytes += s.WireLen
	}
	agg := skb.SKB{Segs: segs, WireLen: bytes}
	c := p.Costs.GSO.Of(&agg) + p.Costs.Qdisc.Of(head) + p.Costs.NICTx.Of(&agg)
	if p.Overlay {
		c += p.Costs.Veth.Of(head) + p.Costs.Bridge.Of(head) + p.Costs.Encap.Of(&agg)
	}
	return c
}

// transmit serializes the unit's segments onto the wire, delivering each to
// the receiving NIC at its serialization completion instant. The unit's
// segments form one emission run (serialization completions are monotone on
// the wire core), costing the scheduler a single heap insert.
func (p *Pipeline) transmit(u *txUnit, _ sim.Time) {
	var head, tail *skb.SKB
	var headAt sim.Time
	n := 0
	for _, s := range u.segs {
		d := sim.Duration(float64(s.WireLen*8) / p.Costs.WireBps * 1e9)
		if d < 1 {
			d = 1
		}
		_, end := p.wire.Exec(d, "wire")
		p.SentSegments += uint64(s.Segs)
		if tail == nil {
			head, headAt = s, end
		} else {
			tail.SetNextRun(s, end)
		}
		tail = s
		n++
	}
	p.putUnit(u)
	if n > 0 {
		p.sched.ScheduleRun(p.outH, head, headAt, n)
	}
}

// Deliver implements traffic.Ingress: a sender's segment enters the socket
// send path. Consecutive same-message TCP segments fuse into one GSO unit
// (the socket cost is charged once per message).
func (p *Pipeline) Deliver(s *skb.SKB) bool {
	chargeSocket := s.Proto == skb.UDP || s.Seq == 0 || s.MsgID != p.lastMsg ||
		p.lastProto != s.Proto
	p.lastMsg, p.lastProto = s.MsgID, s.Proto

	var end sim.Time
	if chargeSocket {
		_, end = p.App.Exec(p.Costs.Socket.Of(s), "tx-socket")
	} else {
		_, end = p.App.Exec(p.Costs.Socket.Of(s)/8, "tx-socket") // within-message continuation
	}
	// GSO fuse: TCP segments of one message form one unit per enqueue
	// window; UDP datagram fragments travel as one unit per datagram.
	u := p.pending
	if u != nil && s.Proto == skb.TCP && len(u.segs) < 45 &&
		u.segs[len(u.segs)-1].MsgID == s.MsgID {
		u.segs = append(u.segs, s)
		return true
	}
	u = p.getUnit()
	u.segs = append(u.segs, s)
	p.pending = u
	p.sched.AtHandler(end, p.enqH, u)
	return true
}

var _ traffic.Ingress = (*Pipeline)(nil)
