package txpath

import (
	"testing"

	"mflow/internal/sim"
	"mflow/internal/skb"
)

type sink struct {
	got   []*skb.SKB
	times []sim.Time
	sched *sim.Scheduler
}

func (s *sink) Deliver(sk *skb.SKB) bool {
	s.got = append(s.got, sk)
	s.times = append(s.times, s.sched.Now())
	return true
}

func newPipe(t *testing.T, overlay bool) (*Pipeline, *sink, *sim.Scheduler) {
	t.Helper()
	s := sim.NewScheduler(1)
	app, kern := sim.NewCore(100, s), sim.NewCore(101, s)
	snk := &sink{sched: s}
	return New(app, kern, s, DefaultCosts(), overlay, snk), snk, s
}

func seg(msg uint64, seq uint64, last bool) *skb.SKB {
	return &skb.SKB{
		FlowID: 1, Proto: skb.TCP, Seq: seq, Segs: 1,
		WireLen: 1500, PayloadLen: 1448, MsgID: msg, MsgEnd: last,
	}
}

func TestPipelineDeliversInOrder(t *testing.T) {
	p, snk, s := newPipe(t, true)
	s.At(0, func() {
		for i := uint64(0); i < 90; i++ {
			p.Deliver(seg(i/45, i, (i+1)%45 == 0))
		}
	})
	s.Run()
	if len(snk.got) != 90 {
		t.Fatalf("delivered %d, want 90", len(snk.got))
	}
	for i, sk := range snk.got {
		if sk.Seq != uint64(i) {
			t.Fatalf("out of order at %d: seq %d", i, sk.Seq)
		}
	}
	if p.SentSegments != 90 {
		t.Errorf("SentSegments=%d", p.SentSegments)
	}
}

func TestWireSerializationSpacing(t *testing.T) {
	p, snk, s := newPipe(t, false)
	s.At(0, func() {
		for i := uint64(0); i < 45; i++ {
			p.Deliver(seg(0, i, i == 44))
		}
	})
	s.Run()
	// 1500B at 100 Gbps = 120 ns per frame on the wire.
	for i := 1; i < len(snk.times); i++ {
		gap := snk.times[i].Sub(snk.times[i-1])
		if gap < 119 { // 1500B/100Gbps = 120ns (floating-point floor 119)
			t.Fatalf("frames %d/%d spaced %v — faster than line rate", i-1, i, gap)
		}
	}
}

func TestGSOFusesTCPSegments(t *testing.T) {
	p, _, s := newPipe(t, true)
	app := p.App
	s.At(0, func() {
		for i := uint64(0); i < 45; i++ {
			p.Deliver(seg(0, i, i == 44))
		}
	})
	s.Run()
	// One full socket charge plus 44 continuations: app busy must be far
	// below 45 full socket charges.
	fullCharge := float64(DefaultCosts().Socket.Of(seg(0, 0, false)))
	if got := float64(app.BusyTotal()); got > 45*fullCharge/2 {
		t.Errorf("GSO did not amortize socket cost: busy %v", app.BusyTotal())
	}
}

func TestQdiscDropsWhenOverloaded(t *testing.T) {
	p, _, s := newPipe(t, true)
	// A crawling kernel core cannot drain the qdisc while UDP datagrams
	// (no GSO fuse) keep arriving: the bounded queue must tail-drop.
	p.Kernel.Speed = 0.01
	s.At(0, func() {
		for i := uint64(0); i < 3000; i++ {
			sk := seg(i, i, true)
			sk.Proto = skb.UDP
			p.Deliver(sk)
		}
	})
	s.RunUntil(sim.Time(20 * sim.Millisecond))
	if p.QdiscDrops == 0 {
		t.Error("overloaded qdisc never tail-dropped")
	}
}

func TestOverlayEgressCostsMore(t *testing.T) {
	po, _, so := newPipe(t, true)
	pn, _, sn := newPipe(t, false)
	load := func(p *Pipeline, s *sim.Scheduler) sim.Duration {
		s.At(0, func() {
			for i := uint64(0); i < 450; i++ {
				p.Deliver(seg(i/45, i, (i+1)%45 == 0))
			}
		})
		s.Run()
		return p.Kernel.BusyTotal()
	}
	ob := load(po, so)
	nb := load(pn, sn)
	if !(ob > nb) {
		t.Errorf("overlay egress (%v) should cost more kernel CPU than native (%v)", ob, nb)
	}
}
