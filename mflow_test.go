package mflow

import (
	"testing"

	"mflow/internal/sim"
)

func TestFacadeRun(t *testing.T) {
	res := Run(Scenario{
		System: MFlow, Proto: TCP, MsgSize: 65536,
		Warmup: 2 * sim.Millisecond, Measure: 4 * sim.Millisecond,
	})
	if res.Gbps <= 0 {
		t.Fatal("facade Run produced no throughput")
	}
}

func TestFacadeSystems(t *testing.T) {
	if len(Systems) != 6 {
		t.Errorf("expected 6 systems, got %d", len(Systems))
	}
	s, err := ParseSystem("mflow")
	if err != nil || s != MFlow {
		t.Errorf("ParseSystem failed: %v %v", s, err)
	}
	if MFlow.String() != "mflow" || Native.String() != "native" {
		t.Error("system names wrong")
	}
}

func TestFacadeCosts(t *testing.T) {
	c := DefaultCosts()
	if c.Alloc.PerSeg <= 0 || c.VXLAN.PerSKB <= 0 {
		t.Error("cost table not populated")
	}
	// Mutating a copy must not leak into later runs.
	c.VXLAN.PerSKB *= 10
	a := Run(Scenario{System: Vanilla, Proto: UDP, Warmup: sim.Millisecond, Measure: 2 * sim.Millisecond})
	b := Run(Scenario{System: Vanilla, Proto: UDP, Costs: c, Warmup: sim.Millisecond, Measure: 2 * sim.Millisecond})
	if !(b.Gbps < a.Gbps) {
		t.Errorf("10x VxLAN cost should reduce throughput (%.2f vs %.2f)", b.Gbps, a.Gbps)
	}
}

func TestFacadeApps(t *testing.T) {
	w := RunWebServing(WebConfig{
		System: MFlow, Users: 60,
		Warmup: 2 * sim.Millisecond, Measure: 6 * sim.Millisecond,
	})
	if w.TotalSuccessPerSec <= 0 {
		t.Error("web serving produced nothing")
	}
	c := RunDataCaching(CachingConfig{
		System: Vanilla, Clients: 1,
		Warmup: sim.Millisecond, Measure: 3 * sim.Millisecond,
	})
	if c.RequestsPerSec <= 0 {
		t.Error("data caching produced nothing")
	}
	if len(DefaultWebOps()) == 0 {
		t.Error("no web ops")
	}
}

func TestFacadeStack(t *testing.T) {
	st := NewStack(Scenario{System: Vanilla, Proto: TCP, Flows: 1})
	got := 0
	st.OnMessage(0, func(uint64, sim.Time) { got++ })
	st.Sched().At(0, func() { st.Send(0, 4096) })
	st.Sched().RunUntil(sim.Time(5 * sim.Millisecond))
	if got != 1 {
		t.Errorf("stack delivered %d messages, want 1", got)
	}
	if st.DeliveredBytes(0) != 4096 {
		t.Errorf("delivered %d bytes, want 4096", st.DeliveredBytes(0))
	}
}

func TestBenchRunnerFacade(t *testing.T) {
	r := NewBenchRunner()
	r.Warmup = 1 * sim.Millisecond
	r.Measure = 3 * sim.Millisecond
	tab := r.Fig7()
	if len(tab.Rows) == 0 || tab.Render() == "" {
		t.Error("bench runner facade broken")
	}
}
